(* Ablation benches for the design choices DESIGN.md calls out:

   A1  hop bound k on the edge-to-path semantics (k=1 is conventional
       edge-to-edge matching, k=∞ is the paper's p-hom)
   A2  Appendix-B optimizations (G1 partitioning, G2 compression)
   A3  direct algorithm vs naive product-graph vs exact branch-and-bound
   A4  greedyMatch candidate heuristic (best-similarity vs arbitrary)
   A5  SF cost model: materialized pairwise graph vs factorized products
   A6  extended baselines (Blondel vertex similarity, bag-of-paths) on the
       Exp-1 web data *)

module D = Phom_graph.Digraph
module G = Phom_graph.Generators
module TC = Phom_graph.Transitive_closure
module Bounded = Phom_graph.Bounded_closure
module Labelsim = Phom_sim.Labelsim
module SF = Phom_sim.Similarity_flooding
module CMC = Phom.Comp_max_card
module Dataset = Phom_web.Dataset
module Matcher = Phom_web.Matcher

let synthetic ~seed ~m ~noise =
  let rng = Random.State.make [| seed |] in
  let g1, pool = G.paper_pattern ~rng ~m in
  let g2 = G.paper_data ~rng ~pool ~noise g1 in
  let lsim = Labelsim.make ~pool ~seed in
  (g1, g2, Labelsim.matrix lsim g1 g2)

(* A1: quality of compMaxCard as the path bound k grows *)
let hop_bound ~seed =
  Util.heading "Ablation A1: edge-to-path hop bound k (m=120, noise=20%)";
  let g1, g2, mat = synthetic ~seed ~m:120 ~noise:0.20 in
  let quality k =
    let tc2 =
      match k with
      | None -> TC.compute g2
      | Some k -> Bounded.compute ~k g2
    in
    let t = Phom.Instance.make ~tc2 ~g1 ~g2 ~mat ~xi:0.75 () in
    let mapping, secs = Util.timed (fun () -> CMC.run t) in
    (Phom.Instance.qual_card t mapping, secs)
  in
  let rows =
    List.map
      (fun (label, k) ->
        let q, s = quality k in
        [ label; Printf.sprintf "%.2f" q; Util.seconds s ])
      [
        ("k=1 (edge-to-edge)", Some 1);
        ("k=2", Some 2);
        ("k=4", Some 4);
        ("k=8", Some 8);
        ("k=inf (p-hom)", None);
      ]
  in
  Util.table [ "hop bound"; "qualCard"; "time" ] rows;
  Util.note
    "with 20%% of edges subdivided into paths of up to 6 hops, edge-to-edge \
     matching loses the planted copy; the bound recovers it as k grows"

(* A2: Appendix-B optimizations *)
let appendix_b ~seed =
  Util.heading "Ablation A2: Appendix-B optimizations (m=200, noise=10%)";
  let g1, g2, mat = synthetic ~seed ~m:200 ~noise:0.10 in
  let t = Phom.Instance.make ~g1 ~g2 ~mat ~xi:0.75 () in
  let variants =
    [
      ("baseline", false, false);
      ("partition G1", true, false);
      ("compress G2", false, true);
      ("both", true, true);
    ]
  in
  let rows =
    List.map
      (fun (name, partition, compress) ->
        let r, secs =
          Util.timed (fun () -> Phom.Api.solve ~partition ~compress Phom.Api.CPH t)
        in
        [ name; Printf.sprintf "%.2f" r.Phom.Api.quality; Util.seconds secs ])
      variants
  in
  Util.table [ "configuration"; "qualCard"; "time" ] rows;
  (* and compression on a cyclic data graph, where it actually bites *)
  Util.note
    "on this near-acyclic synthetic G2, compression coarsens mat() (bag \
     maxima) and costs quality instead of helping — the optimization is for \
     cyclic data graphs:";
  let rng = Random.State.make [| seed + 1 |] in
  let cyclic =
    G.erdos_renyi ~rng ~n:2000 ~m:12000 ~labels:(fun i -> G.label_name (i mod 500))
  in
  let g1c = fst (D.induced cyclic (List.init 100 Fun.id)) in
  let matc = Phom_sim.Simmat.of_label_equality g1c cyclic in
  let cond = Phom_graph.Condensation.compress cyclic in
  Util.note "dense cyclic G2: %d nodes compress to %d SCC bags" (D.n cyclic)
    (D.n cond.Phom_graph.Condensation.graph);
  let r_plain, secs_plain =
    Util.timed (fun () ->
        Phom.Api.solve Phom.Api.CPH
          (Phom.Instance.make ~g1:g1c ~g2:cyclic ~mat:matc ~xi:1.0 ()))
  in
  let r_comp, secs_comp =
    Util.timed (fun () ->
        Phom.Api.solve ~compress:true Phom.Api.CPH
          (Phom.Instance.make ~g1:g1c ~g2:cyclic ~mat:matc ~xi:1.0 ()))
  in
  Util.note "matching: %.3fs at quality %.2f plain vs %.3fs at quality %.2f compressed"
    secs_plain r_plain.Phom.Api.quality secs_comp r_comp.Phom.Api.quality

(* A3: direct vs naive vs exact *)
let algorithms ~seed =
  Util.heading "Ablation A3: direct vs naive product vs exact (m=40, noise=10%)";
  let g1, g2, mat = synthetic ~seed ~m:40 ~noise:0.10 in
  let t = Phom.Instance.make ~g1 ~g2 ~mat ~xi:0.75 () in
  let rows =
    List.map
      (fun (name, algo) ->
        let r, secs = Util.timed (fun () -> Phom.Api.solve ~algorithm:algo Phom.Api.CPH t) in
        [ name; Printf.sprintf "%.2f" r.Phom.Api.quality; Util.seconds secs ])
      [
        ("compMaxCard (direct)", Phom.Api.Direct);
        ("naive product graph", Phom.Api.Naive_product);
        ("exact branch&bound", Phom.Api.Exact_bb);
      ]
  in
  Util.table [ "algorithm"; "qualCard"; "time" ] rows;
  Util.note
    "the direct algorithm avoids materializing the O(|V1||V2|)-node product \
     graph while keeping the same guarantee (Proposition 5.2)"

(* A4: pick heuristic *)
let pick_heuristic ~seed =
  Util.heading "Ablation A4: greedyMatch candidate heuristic (m=150)";
  let rows =
    List.map
      (fun noise ->
        let g1, g2, mat = synthetic ~seed ~m:150 ~noise in
        let t = Phom.Instance.make ~g1 ~g2 ~mat ~xi:0.75 () in
        let q pick = Phom.Instance.qual_card t (CMC.run ~pick t) in
        [
          Printf.sprintf "noise=%.0f%%" (100. *. noise);
          Printf.sprintf "%.2f" (q `Best_sim);
          Printf.sprintf "%.2f" (q `First);
        ])
      [ 0.02; 0.10; 0.20 ]
  in
  Util.table [ "workload"; "pick=best-sim"; "pick=first" ] rows;
  Util.note
    "the paper leaves the pick unspecified; on this workload the outer \
     conflict-removal loop makes greedyMatch insensitive to it — both reach \
     the planted mapping (one reason our Fig-5 accuracies saturate above the \
     paper's; see EXPERIMENTS.md)"

(* A5: SF implementations *)
let sf_cost ~seed =
  Util.heading "Ablation A5: similarity flooding cost model";
  let rng = Random.State.make [| seed |] in
  let rows =
    List.map
      (fun n ->
        let mk () =
          G.erdos_renyi ~rng ~n ~m:(4 * n)
            ~labels:(fun i -> "n" ^ string_of_int (i mod 30))
        in
        let g1 = mk () and g2 = mk () in
        let init = Phom_sim.Simmat.of_label_equality g1 g2 in
        let _, t_edge =
          Util.timed (fun () -> SF.flood ~impl:SF.Edge_pairs ~init g1 g2)
        in
        let _, t_fact =
          Util.timed (fun () -> SF.flood ~impl:SF.Factorized ~init g1 g2)
        in
        [ string_of_int n; Util.seconds t_edge; Util.seconds t_fact ])
      [ 30; 60; 120; 240 ]
  in
  Util.table [ "nodes"; "edge-pairs (Melnik)"; "factorized (ours)" ] rows;
  Util.note
    "identical fixpoints; the O(|E1||E2|) pairwise-graph walk is why the \
     paper's SF baseline deteriorates on large skeletons"

(* A6: extended baselines on Exp-1 data *)
let extended_baselines ~seed =
  Util.heading "Ablation A6: extended baselines on site 1 (top-20 skeletons)";
  let rng = Random.State.make [| seed |] in
  let spec = List.hd (Dataset.sites (Dataset.Reduced 20)) in
  let pattern, versions =
    Dataset.archive_skeletons ~rng ~versions:11 ~skeleton:(`Top 20) spec
  in
  let rows =
    List.map
      (fun m ->
        let acc, time = Matcher.accuracy ~mcs_time_limit:2.0 m ~pattern ~versions in
        [ Matcher.method_name m; Util.pct acc; Util.seconds time ])
      Matcher.extended_methods
  in
  Util.table [ "method"; "accuracy"; "mean time" ] rows;
  Util.note
    "blondel tracks SF (as the paper observed); bag-of-paths is brittle — it \
     ignores global connectivity (the paper's criticism citing [25,30]) and \
     its feature sets churn with content drift; assignment-GED matches well \
     here but, like vertex similarity, produces no edge-to-path witnesses"

(* A7: SPH weight schemes (Section 3.3's "hub, authority, or high degree") *)
let weight_schemes ~seed =
  Util.heading "Ablation A7: SPH node-importance weights (m=150, noise=10%)";
  let g1, g2, mat = synthetic ~seed ~m:150 ~noise:0.10 in
  let t = Phom.Instance.make ~g1 ~g2 ~mat ~xi:0.75 () in
  let rows =
    List.map
      (fun (name, weights) ->
        let m, secs =
          Util.timed (fun () -> Phom.Comp_max_sim.run ~weights t)
        in
        [
          name;
          Printf.sprintf "%.3f" (Phom.Instance.qual_sim ~weights t m);
          Printf.sprintf "%.2f" (Phom.Instance.qual_card t m);
          Util.seconds secs;
        ])
      [
        ("uniform (paper)", Phom.Weights.uniform g1);
        ("degree", Phom.Weights.degree g1);
        ("hub (HITS)", Phom.Weights.hub g1);
        ("authority (HITS)", Phom.Weights.authority g1);
      ]
  in
  Util.table [ "weights"; "qualSim"; "qualCard"; "time" ] rows;
  Util.note
    "non-uniform weights shift effort toward important nodes: qualSim stays \
     high while coverage (qualCard) may be traded away"

(* A8: arc-consistency prefiltering for the exact decision procedure *)
let prefilter ~seed =
  Util.heading "Ablation A8: decision-procedure prefiltering";
  let rng = Random.State.make [| seed |] in
  let make_negative m =
    (* patterns slightly too demanding for their data graph: decision is
       almost always "no", which is where pruning candidates pays *)
    let g1 =
      Phom_graph.Generators.erdos_renyi ~rng ~n:m ~m:(4 * m)
        ~labels:(fun i -> G.label_name (i mod (m / 2)))
    in
    let g2 =
      Phom_graph.Generators.erdos_renyi ~rng ~n:(2 * m) ~m:(3 * m)
        ~labels:(fun i -> G.label_name (i mod (m / 2)))
    in
    Phom.Instance.make ~g1 ~g2
      ~mat:(Phom_sim.Simmat.of_label_equality g1 g2)
      ~xi:1.0 ()
  in
  let pairs cands =
    Array.fold_left (fun acc row -> acc + Array.length row) 0 cands
  in
  let rows =
    List.map
      (fun m ->
        let instances = List.init 5 (fun _ -> make_negative m) in
        let before =
          List.fold_left
            (fun acc t -> acc + pairs (Phom.Instance.candidates t))
            0 instances
        in
        let after =
          List.fold_left
            (fun acc t -> acc + pairs (Phom.Prefilter.refine t))
            0 instances
        in
        let solved_outright =
          List.length
            (List.filter
               (fun t ->
                 Array.exists
                   (fun row -> Array.length row = 0)
                   (Phom.Prefilter.refine t))
               instances)
        in
        [
          Printf.sprintf "m=%d (5 instances)" m;
          string_of_int before;
          string_of_int after;
          Printf.sprintf "%d/5" solved_outright;
        ])
      [ 10; 16; 24 ]
  in
  Util.table
    [ "instances"; "candidate pairs"; "after prefilter"; "refuted outright" ]
    rows;
  Util.note
    "the surviving pairs are what the exponential search actually explores; \
     an emptied row refutes the instance with no search at all. Prefiltered \
     and plain decisions always agree (property-tested)."

let run ~seed =
  hop_bound ~seed;
  appendix_b ~seed;
  algorithms ~seed;
  pick_heuristic ~seed;
  sf_cost ~seed;
  extended_baselines ~seed;
  weight_schemes ~seed;
  prefilter ~seed
