(* Observability overhead bench: the <2% guard for the metrics layer.

   The workload is the daemon's warm-serve path — the hottest loop that
   crosses every instrumented seam (solver spans and counters, cache
   probes, request accounting) without artifact recomputation noise. The
   same batch of warm solves runs with the registry enabled and with
   [Obs.set_enabled false], in alternating rounds so clock drift and cache
   warmth cancel, and the overhead is computed from the two totals.

   Emits BENCH_obs.json and exits non-zero when the overhead exceeds the
   bound, so CI can hold the line. *)

module G = Phom_graph.Generators
module IO = Phom_graph.Graph_io
module Obs = Phom_obs.Obs
module Daemon = Phom_server.Daemon
module Protocol = Phom_server.Protocol

let request st line =
  match Protocol.parse line with
  | Error m -> failwith ("bench obs: bad request: " ^ m)
  | Ok req -> fst (Daemon.execute st req)

let expect_ok what reply =
  if String.length reply < 2 || String.sub reply 0 2 <> "ok" then
    failwith (Printf.sprintf "bench obs: %s failed: %s" what reply)

(* one timed batch of [iters] warm solves in the given registry mode *)
let batch st solve ~iters ~enabled =
  Obs.set_enabled enabled;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled true)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      for _ = 1 to iters do
        expect_ok "warm solve" (request st solve)
      done;
      Unix.gettimeofday () -. t0)

let run ~seed ~m ~noise ~rounds ~iters ~max_overhead ~out () =
  Util.heading "Observability: metrics overhead on the warm-serve path";
  Util.note "pattern m=%d, %d rounds x %d warm solves per mode, bound %.1f%%"
    m rounds iters max_overhead;
  let rng = Random.State.make [| seed |] in
  let g1, pool = G.paper_pattern ~rng ~m in
  let g2 = G.paper_data ~rng ~pool ~noise g1 in
  let save g =
    let path = Filename.temp_file "phom_obs_bench" ".phg" in
    IO.save path g;
    path
  in
  let p1 = save g1 and p2 = save g2 in
  let finally () =
    List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ p1; p2 ]
  in
  Fun.protect ~finally @@ fun () ->
  (* unbounded budget: a tripped answer would compare different work *)
  let config = { Daemon.default_config with Daemon.default_timeout = None } in
  let st = Daemon.make_state config in
  expect_ok "load pattern" (request st ("load graph obs.g1 " ^ p1));
  expect_ok "load data" (request st ("load graph obs.g2 " ^ p2));
  let solve = "solve card obs.g1 obs.g2 --sim shingles --xi 0.5" in
  (* cold solve fills the cache; one warm batch per mode warms the code *)
  expect_ok "cold solve" (request st solve);
  ignore (batch st solve ~iters ~enabled:true);
  ignore (batch st solve ~iters ~enabled:false);
  let on_total = ref 0. and off_total = ref 0. in
  for _ = 1 to rounds do
    on_total := !on_total +. batch st solve ~iters ~enabled:true;
    off_total := !off_total +. batch st solve ~iters ~enabled:false
  done;
  let n = float_of_int (rounds * iters) in
  let on_per = !on_total /. n and off_per = !off_total /. n in
  let overhead =
    if !off_total > 0. then (!on_total -. !off_total) /. !off_total *. 100.
    else 0.
  in
  Util.table
    [ "mode"; "total"; "per query" ]
    [
      [ "metrics on"; Util.seconds !on_total; Printf.sprintf "%.6f" on_per ];
      [ "metrics off"; Util.seconds !off_total; Printf.sprintf "%.6f" off_per ];
    ];
  Util.note "overhead: %.2f%% (bound %.1f%%)" overhead max_overhead;
  (* the stats surface stayed live through the run *)
  let stats = request st "stats" in
  expect_ok "stats" stats;
  let json =
    Printf.sprintf
      "{\n\
      \  \"pattern_m\": %d,\n\
      \  \"rounds\": %d,\n\
      \  \"iters_per_round\": %d,\n\
      \  \"enabled_total_seconds\": %.6f,\n\
      \  \"disabled_total_seconds\": %.6f,\n\
      \  \"enabled_seconds_per_query\": %.9f,\n\
      \  \"disabled_seconds_per_query\": %.9f,\n\
      \  \"overhead_percent\": %.3f,\n\
      \  \"max_overhead_percent\": %.1f,\n\
      \  \"within_bound\": %b\n\
       }\n"
      m rounds iters !on_total !off_total on_per off_per overhead max_overhead
      (overhead <= max_overhead)
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  Util.note "wrote %s" out;
  if overhead > max_overhead then begin
    Printf.eprintf "bench obs: %.2f%% overhead exceeds the %.1f%% bound\n"
      overhead max_overhead;
    exit 1
  end
