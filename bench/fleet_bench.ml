(* Fleet bench: the cost of the replica tier, measured. phomd replicas run
   as real subprocesses on loopback TCP and every request goes through the
   replica-aware router, so the numbers include dialing, consistent-hash
   placement and the failover machinery — nothing is mocked. Three phases:

   - warm routed latency against a single replica (the TCP floor),
   - the same workload against a full fleet (placement spreads the pairs,
     so per-replica caches stay disjoint and warm),
   - a kill -9 of the replica that owns one pair mid-workload: the next
     routed request for that pair must still succeed (the router fails
     over inside the request) and its duration is the failover blip.

   Emits BENCH_fleet.json (also printed as a table) and fails when any
   routed request errors or the blip exceeds the bound — CI also runs
   with an impossible bound to assert the guard is live. *)

module G = Phom_graph.Generators
module IO = Phom_graph.Graph_io
module Router = Phom_server.Router

type fleet_row = {
  replicas : int;
  requests : int;
  warm_p50 : float;
  warm_p99 : float;
}

let percentile p xs =
  (* nearest-rank on a sorted copy; p in [0,1] *)
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0.
  else
    a.(min (n - 1) (max 0 (int_of_float (Float.ceil (p *. float_of_int n)) - 1)))

(* the answer proper: the reply with its cache provenance field removed —
   a failover answer comes from a different replica's cache *)
let strip_cache reply =
  let marker = " cache=" in
  let rec find i =
    if i + String.length marker > String.length reply then None
    else if String.sub reply i (String.length marker) = marker then Some i
    else find (i + 1)
  in
  match find 0 with Some i -> String.sub reply 0 i | None -> reply

let expect_ok what reply =
  if String.length reply < 2 || String.sub reply 0 2 <> "ok" then
    failwith (Printf.sprintf "bench fleet: %s failed: %s" what reply)

let read_file path =
  try In_channel.with_open_bin path In_channel.input_all
  with Sys_error _ -> ""

(* "phomd <v> listening on 127.0.0.1:<port>" — first such line of the log *)
let addr_of_banner text =
  let marker = "listening on " in
  let m = String.length marker and n = String.length text in
  let rec find i =
    if i + m > n then None
    else if String.sub text i m = marker then
      let start = i + m in
      let stop = try String.index_from text start '\n' with Not_found -> n in
      Some (String.sub text start (stop - start))
    else find (i + 1)
  in
  find 0

type replica = { pid : int; addr : string; log : string }

let phomd_path () =
  let guess =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      (Filename.concat ".." (Filename.concat "bin" "phomd.exe"))
  in
  if Sys.file_exists guess then guess
  else failwith ("bench fleet: cannot find phomd.exe near " ^ guess)

let spawn_replica ~phomd ~jobs =
  let log = Filename.temp_file "phom_fleet_bench" ".log" in
  let fd = Unix.openfile log [ O_WRONLY; O_TRUNC ] 0o600 in
  let pid =
    Unix.create_process phomd
      [|
        phomd; "--listen"; "127.0.0.1:0"; "--jobs"; string_of_int jobs;
        "--default-timeout"; "0";
      |]
      Unix.stdin fd fd
  in
  Unix.close fd;
  let deadline = Unix.gettimeofday () +. 10. in
  let rec await () =
    match addr_of_banner (read_file log) with
    | Some addr -> { pid; addr; log }
    | None ->
        if Unix.gettimeofday () > deadline then (
          Unix.kill pid Sys.sigkill;
          failwith ("bench fleet: replica did not come up: " ^ read_file log))
        else (
          Unix.sleepf 0.05;
          await ())
  in
  await ()

let kill_replica r =
  (try Unix.kill r.pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] r.pid) with Unix.Unix_error _ -> ());
  try Sys.remove r.log with Sys_error _ -> ()

let with_fleet ~phomd ~n f =
  let fleet = List.init n (fun _ -> spawn_replica ~phomd ~jobs:2) in
  Fun.protect ~finally:(fun () -> List.iter kill_replica fleet) (fun () -> f fleet)

let router_for endpoints =
  match
    Router.create
      ~config:
        {
          Router.default_config with
          connect_timeout = Some 5.;
          read_timeout = Some 60.;
          cooldown = 0.2;
        }
      ~endpoints ()
  with
  | Ok r -> r
  | Error m -> failwith ("bench fleet: " ^ m)

let route r line =
  match Router.request r line with
  | Ok reply -> reply
  | Error m -> failwith ("bench fleet: routed " ^ line ^ ": " ^ m)

(* the workload: [pairs] independent synthetic graph pairs, so consistent
   hashing has something to spread across a fleet *)
let make_pairs ~rng ~m ~noise ~pairs =
  List.init pairs (fun i ->
      let g1, pool = G.paper_pattern ~rng ~m in
      let g2 = G.paper_data ~rng ~pool ~noise g1 in
      let save g =
        let path = Filename.temp_file "phom_fleet_bench" ".phg" in
        IO.save path g;
        path
      in
      (Printf.sprintf "p%d" i, save g1, save g2))

let load_pairs router pairs =
  List.iter
    (fun (name, p1, p2) ->
      expect_ok ("load " ^ name)
        (route router (Printf.sprintf "load graph %s.g1 %s" name p1));
      expect_ok ("load " ^ name)
        (route router (Printf.sprintf "load graph %s.g2 %s" name p2)))
    pairs

let solve_line name =
  Printf.sprintf "solve card %s.g1 %s.g2 --sim shingles --xi 0.5" name name

(* one warm measurement phase: a cold pass computes every artifact, then
   [rounds] timed passes over all pairs through the router *)
let measure_fleet router pairs ~rounds =
  List.iter
    (fun (name, _, _) -> expect_ok "cold solve" (route router (solve_line name)))
    pairs;
  let lat = ref [] in
  for _ = 1 to rounds do
    List.iter
      (fun (name, _, _) ->
        let reply, dt = Util.timed (fun () -> route router (solve_line name)) in
        expect_ok "warm solve" reply;
        lat := dt :: !lat)
      pairs
  done;
  !lat

let json_of ~pairs ~rounds rows ~blip ~blip_reply_ok ~max_blip =
  let row_json r =
    Printf.sprintf
      "    {\"replicas\": %d, \"requests\": %d, \"warm_p50_seconds\": %.6f, \
       \"warm_p99_seconds\": %.6f}"
      r.replicas r.requests r.warm_p50 r.warm_p99
  in
  Printf.sprintf
    "{\n\
    \  \"pairs\": %d,\n\
    \  \"warm_rounds\": %d,\n\
    \  \"fleets\": [\n\
     %s\n\
    \  ],\n\
    \  \"failover_blip_seconds\": %.6f,\n\
    \  \"failover_reply_ok\": %b,\n\
    \  \"max_blip_seconds\": %.6f\n\
     }\n"
    pairs rounds
    (String.concat ",\n" (List.map row_json rows))
    blip blip_reply_ok max_blip

let run ~seed ~m ~noise ~pairs ~rounds ~max_blip ~out () =
  Util.heading "Fleet tier: routed latency and the price of losing a replica";
  Util.note
    "phomd subprocesses on loopback TCP, %d graph pairs (m = %d, noise \
     %.2f), %d warm rounds per pair, every request through the router"
    pairs m noise rounds;
  let phomd = phomd_path () in
  let rng = Random.State.make [| seed |] in
  let pair_files = make_pairs ~rng ~m ~noise ~pairs in
  let cleanup_files () =
    List.iter
      (fun (_, p1, p2) ->
        List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ p1; p2 ])
      pair_files
  in
  Fun.protect ~finally:cleanup_files @@ fun () ->
  (* phase 1 + 2: the same warm workload against 1 replica and a fleet *)
  let measure_n n =
    with_fleet ~phomd ~n (fun fleet ->
        let router = router_for (List.map (fun r -> r.addr) fleet) in
        load_pairs router pair_files;
        let lat = measure_fleet router pair_files ~rounds in
        {
          replicas = n;
          requests = List.length lat;
          warm_p50 = percentile 0.50 lat;
          warm_p99 = percentile 0.99 lat;
        })
  in
  let rows = [ measure_n 1; measure_n 3 ] in
  (* phase 3: kill the owner of the first pair mid-workload; the very next
     routed request for that pair must fail over inside the request *)
  let victim_name, _, _ = List.hd pair_files in
  let blip, blip_reply_ok =
    with_fleet ~phomd ~n:3 (fun fleet ->
        let endpoints = List.map (fun r -> r.addr) fleet in
        let router = router_for endpoints in
        load_pairs router pair_files;
        List.iter
          (fun (name, _, _) ->
            expect_ok "cold solve" (route router (solve_line name)))
          pair_files;
        let owner =
          match
            Router.owner ~endpoints
              ~key:
                (Router.solve_key ~g1:(victim_name ^ ".g1")
                   ~g2:(victim_name ^ ".g2"))
              ()
          with
          | Some o -> o
          | None -> failwith "bench fleet: no owner"
        in
        let victim = List.find (fun r -> r.addr = owner) fleet in
        let reference = route router (solve_line victim_name) in
        kill_replica victim;
        let reply, blip =
          Util.timed (fun () -> route router (solve_line victim_name))
        in
        expect_ok "failover solve" reply;
        (blip, strip_cache reply = strip_cache reference))
  in
  Util.table
    [ "replicas"; "requests"; "warm p50"; "warm p99" ]
    (List.map
       (fun r ->
         [
           string_of_int r.replicas;
           string_of_int r.requests;
           Util.seconds r.warm_p50;
           Util.seconds r.warm_p99;
         ])
       rows);
  Util.note "failover blip %ss (reply identical to pre-kill: %b)"
    (Util.seconds blip) blip_reply_ok;
  let json = json_of ~pairs ~rounds rows ~blip ~blip_reply_ok ~max_blip in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  Util.note "wrote %s" out;
  if not blip_reply_ok then begin
    prerr_endline "failover changed the answer";
    exit 1
  end;
  if blip > max_blip then begin
    Printf.eprintf "failover blip %.6fs exceeds the %.6fs bound\n" blip max_blip;
    exit 1
  end
