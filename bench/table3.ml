(* Table 3: accuracy and scalability of all seven methods on the simulated
   real-life archives (Exp-1). *)

module Dataset = Phom_web.Dataset
module Matcher = Phom_web.Matcher

(* the paper's Table 3, accuracy % per (method, skeleton set, site) and
   seconds per the same key; None = N/A *)
let paper_accuracy =
  [
    ("compMaxCard", ([ Some 80.; Some 100.; Some 60. ], [ Some 80.; Some 100.; Some 60. ]));
    ("compMaxCard1-1", ([ Some 40.; Some 100.; Some 30. ], [ Some 80.; Some 100.; Some 40. ]));
    ("compMaxSim", ([ Some 80.; Some 100.; Some 50. ], [ Some 90.; Some 100.; Some 60. ]));
    ("compMaxSim1-1", ([ Some 20.; Some 80.; Some 10. ], [ Some 90.; Some 100.; Some 40. ]));
    ("SF", ([ Some 40.; Some 30.; Some 20. ], [ Some 80.; Some 80.; Some 70. ]));
    ("cdkMCS", ([ None; None; None ], [ Some 67.; Some 100.; Some 0. ]));
    ("graphSimulation", ([ Some 0.; Some 0.; Some 0. ], [ Some 0.; Some 0.; Some 0. ]));
  ]

let paper_times =
  [
    ("compMaxCard", ([ "3.128"; "0.108"; "1.062" ], [ "0.078"; "0.066"; "0.080" ]));
    ("compMaxCard1-1", ([ "2.847"; "0.097"; "0.840" ], [ "0.054"; "0.051"; "0.064" ]));
    ("compMaxSim", ([ "3.197"; "0.093"; "0.877" ], [ "0.051"; "0.051"; "0.062" ]));
    ("compMaxSim1-1", ([ "2.865"; "0.093"; "0.850" ], [ "0.053"; "0.049"; "0.039" ]));
    ("SF", ([ "60.275"; "3.873"; "7.812" ], [ "0.067"; "0.158"; "0.121" ]));
    ("cdkMCS", ([ "N/A"; "N/A"; "N/A" ], [ "156.931"; "189.16"; "0.82" ]));
    ("graphSimulation", ([ "-"; "-"; "-" ], [ "-"; "-"; "-" ]));
  ]

type cell = { acc : float option; time : float }

let measure ?pool ~rng ~versions ~mcs_time_limit ~sf_impl ~skeleton spec method_ =
  let rng = Random.State.copy rng in
  let pattern, later = Dataset.archive_skeletons ~rng ~versions ~skeleton spec in
  let acc, time =
    Matcher.accuracy ~mcs_time_limit ~sf_impl ?pool method_ ~pattern
      ~versions:later
  in
  { acc; time }

let run ?(sf_impl = Phom_sim.Similarity_flooding.Edge_pairs) ?pool ~scale ~seed
    ~versions ~mcs_time_limit () =
  Util.heading "Table 3: accuracy and scalability on (simulated) real-life data";
  (match scale with
  | Dataset.Full -> Util.note "scale: full"
  | Dataset.Reduced k -> Util.note "scale: reduced 1/%d (use --full for paper size)" k);
  Util.note "quality threshold 0.75, xi = 0.75, %d versions per site, MCS limit %.0fs"
    versions mcs_time_limit;
  let sites = Dataset.sites scale in
  let rng = Random.State.make [| seed |] in
  (* per-site archives are regenerated per skeleton rule from a fixed seed so
     every method sees the same data *)
  let sets = [ ("skeletons 1 (alpha=0.2)", `Alpha 0.2); ("skeletons 2 (top-20)", `Top 20) ] in
  let results =
    List.map
      (fun (set_name, skeleton) ->
        ( set_name,
          List.map
            (fun method_ ->
              ( method_,
                List.map
                  (fun spec ->
                    measure ?pool ~rng ~versions ~mcs_time_limit ~sf_impl
                      ~skeleton spec method_)
                  sites ))
            Matcher.all_methods ))
      sets
  in
  List.iteri
    (fun set_idx (set_name, per_method) ->
      Printf.printf "\n-- %s --\n\n" set_name;
      let rows =
        List.concat_map
          (fun (method_, cells) ->
            let name = Matcher.method_name method_ in
            let ours =
              (name ^ " (ours)")
              :: (List.map (fun c -> Util.pct c.acc) cells
                 @ List.map (fun c -> Util.seconds c.time) cells)
            in
            let paper =
              let acc1, acc2 = List.assoc name paper_accuracy in
              let t1, t2 = List.assoc name paper_times in
              let accs = if set_idx = 0 then acc1 else acc2 in
              let times = if set_idx = 0 then t1 else t2 in
              (name ^ " (paper)") :: (List.map Util.pct accs @ times)
            in
            [ ours; paper ])
          per_method
      in
      Util.table
        [ "algorithm"; "acc s1"; "acc s2"; "acc s3"; "time s1"; "time s2"; "time s3" ]
        rows)
    results
