(* Bechamel micro-benchmarks: one Test.make per core kernel, so regressions
   in the substrates are visible independently of the end-to-end tables. *)

open Bechamel
open Toolkit
module D = Phom_graph.Digraph
module G = Phom_graph.Generators
module TC = Phom_graph.Transitive_closure
module Labelsim = Phom_sim.Labelsim
module SF = Phom_sim.Similarity_flooding

let rng () = Random.State.make [| 17 |]

(* fixed inputs, built once *)
let er300 = G.erdos_renyi ~rng:(rng ()) ~n:300 ~m:1200 ~labels:(fun i -> "n" ^ string_of_int i)

let synth_instance m =
  let rng = rng () in
  let g1, pool = G.paper_pattern ~rng ~m in
  let g2 = G.paper_data ~rng ~pool ~noise:0.1 g1 in
  let lsim = Labelsim.make ~pool ~seed:17 in
  let mat = Labelsim.matrix lsim g1 g2 in
  Phom.Instance.make ~g1 ~g2 ~mat ~xi:0.75 ()

let inst100 = synth_instance 100

let sf_pair =
  let rng = rng () in
  let g1 = G.erdos_renyi ~rng ~n:60 ~m:150 ~labels:(fun i -> "n" ^ string_of_int (i mod 20)) in
  let g2 = G.erdos_renyi ~rng ~n:60 ~m:150 ~labels:(fun i -> "n" ^ string_of_int (i mod 20)) in
  (g1, g2, Phom_sim.Simmat.of_label_equality g1 g2)

let docs =
  let rng = rng () in
  let vocab = Phom_web.Page.vocabulary ~prefix:"w" 200 in
  Array.init 40 (fun _ -> Phom_web.Page.generate ~rng ~vocab ~length:60)

let tests =
  Test.make_grouped ~name:"phom"
    [
      Test.make ~name:"transitive-closure/er-300-1200"
        (Staged.stage (fun () -> ignore (TC.compute er300)));
      Test.make ~name:"scc/er-300-1200"
        (Staged.stage (fun () -> ignore (Phom_graph.Scc.compute er300)));
      Test.make ~name:"compMaxCard/synthetic-m100"
        (Staged.stage (fun () -> ignore (Phom.Comp_max_card.run inst100)));
      Test.make ~name:"compMaxCard1-1/synthetic-m100"
        (Staged.stage (fun () -> ignore (Phom.Comp_max_card.run ~injective:true inst100)));
      Test.make ~name:"compMaxSim/synthetic-m100"
        (Staged.stage (fun () -> ignore (Phom.Comp_max_sim.run inst100)));
      Test.make ~name:"exact-decide/synthetic-m100"
        (Staged.stage (fun () -> ignore (Phom.Exact.decide ~budget:(Phom_graph.Budget.create ~steps:200_000 ()) inst100)));
      Test.make ~name:"simulation/synthetic-m100"
        (Staged.stage (fun () ->
             ignore
               (Phom_baselines.Simulation.of_simmat
                  ~mat:inst100.Phom.Instance.mat ~xi:0.75
                  inst100.Phom.Instance.g1 inst100.Phom.Instance.g2)));
      (let g1, g2, mat = sf_pair in
       Test.make ~name:"sf-factorized/er-60"
         (Staged.stage (fun () -> ignore (SF.flood ~impl:SF.Factorized ~init:mat g1 g2))));
      (let g1, g2, mat = sf_pair in
       Test.make ~name:"sf-edge-pairs/er-60"
         (Staged.stage (fun () -> ignore (SF.flood ~impl:SF.Edge_pairs ~init:mat g1 g2))));
      Test.make ~name:"shingle-matrix/40x40-docs"
        (Staged.stage (fun () -> ignore (Phom_sim.Shingle.matrix docs docs)));
      (let small = synth_instance 25 in
       Test.make ~name:"naive-product/synthetic-m25"
         (Staged.stage (fun () -> ignore (Phom.Naive.max_card small))));
    ]

let run () =
  Util.heading "Micro-benchmarks (bechamel, ns per run)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> e
        | _ -> nan
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan
      in
      rows :=
        [ name; Printf.sprintf "%.0f" estimate; Printf.sprintf "%.4f" r2 ] :: !rows)
    results;
  let sorted = List.sort compare !rows in
  Util.table [ "benchmark"; "ns/run"; "r²" ] sorted
