(* Benchmark harness: one target per table and figure of the paper's
   evaluation section (see DESIGN.md's per-experiment index).

   dune exec bench/main.exe            -- everything, reduced scale
   dune exec bench/main.exe -- --full  -- everything, paper scale (slow!)
   dune exec bench/main.exe -- table3  -- a single experiment
   dune exec bench/main.exe -- fig5 --axis noise
   dune exec bench/main.exe -- micro   -- bechamel micro-benchmarks *)

open Cmdliner
module Dataset = Phom_web.Dataset

let full_arg =
  Arg.(value & flag & info [ "full" ] ~doc:"Run at the paper's scale (much slower).")

let seed_arg = Arg.(value & opt int 2010 & info [ "seed" ] ~doc:"Random seed.")

let scale_of_full full = if full then Dataset.Full else Dataset.Reduced 10

let versions_arg =
  Arg.(value & opt int 11 & info [ "versions" ] ~doc:"Archive snapshots per site.")

let mcs_limit_arg =
  Arg.(
    value & opt (some float) None
    & info [ "mcs-limit" ] ~doc:"cdkMCS time limit in seconds (default 3, 60 with --full).")

let mcs_limit full = function Some l -> l | None -> if full then 60. else 3.

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker domains for the parallel runtime. Default 1 \
              (sequential), so published numbers stay comparable unless \
              parallelism is asked for explicitly.")

let with_pool jobs f =
  if jobs < 1 then begin
    Printf.eprintf "bench: --jobs must be at least 1 (got %d)\n" jobs;
    exit 1
  end;
  if jobs = 1 then f None
  else Phom_parallel.Pool.with_pool ~domains:jobs (fun p -> f (Some p))

let axis_arg =
  let choices =
    Arg.enum [ ("size", Fig56.Size); ("noise", Fig56.Noise); ("xi", Fig56.Xi) ]
  in
  Arg.(
    value & opt choices Fig56.Size
    & info [ "axis" ] ~docv:"AXIS" ~doc:"Sweep axis: $(b,size), $(b,noise) or $(b,xi).")

let pick_arg =
  let choices = Arg.enum [ ("best", `Best_sim); ("first", `First) ] in
  Arg.(
    value & opt choices `Best_sim
    & info [ "pick" ] ~docv:"PICK"
        ~doc:"greedyMatch candidate heuristic: $(b,best) similarity (default) \
              or the paper-literal arbitrary $(b,first).")

let run_table2 full seed = Table2.run ~scale:(scale_of_full full) ~seed

let fast_sf_arg =
  Arg.(
    value & flag
    & info [ "fast-sf" ]
        ~doc:"Run the SF baseline with the factorized products instead of \
              Melnik's pairwise-graph walk (same results, much faster; see \
              ablation A5).")

let sf_impl_of fast =
  if fast then Phom_sim.Similarity_flooding.Factorized
  else Phom_sim.Similarity_flooding.Edge_pairs

let run_table3 full seed versions limit fast_sf jobs =
  with_pool jobs (fun pool ->
      Table3.run ~sf_impl:(sf_impl_of fast_sf) ?pool ~scale:(scale_of_full full)
        ~seed ~versions ~mcs_time_limit:(mcs_limit full limit) ())

let run_fig ~figure full seed axis pick jobs =
  let cfg = Fig56.default_cfg ~pick ~full ~axis ~seed () in
  let results = with_pool jobs (fun pool -> Fig56.sweep ?pool ~cfg ~axis ()) in
  match figure with
  | `Five -> Fig56.print_accuracy ~axis results
  | `Six -> Fig56.print_time ~axis results

let run_all full seed versions limit jobs =
  with_pool jobs @@ fun pool ->
  Table2.run ~scale:(scale_of_full full) ~seed;
  Table3.run ?pool ~scale:(scale_of_full full) ~seed ~versions
    ~mcs_time_limit:(mcs_limit full limit) ();
  List.iter
    (fun axis ->
      let cfg = Fig56.default_cfg ~full ~axis ~seed () in
      let results = Fig56.sweep ?pool ~cfg ~axis () in
      Fig56.print_accuracy ~axis results;
      Fig56.print_time ~axis results)
    [ Fig56.Size; Fig56.Noise; Fig56.Xi ];
  Ablations.run ~seed;
  Micro.run ()

let table2_cmd =
  Cmd.v (Cmd.info "table2" ~doc:"Reproduce Table 2 (web graphs and skeletons).")
    Term.(const run_table2 $ full_arg $ seed_arg)

let table3_cmd =
  Cmd.v
    (Cmd.info "table3" ~doc:"Reproduce Table 3 (accuracy/scalability, real-life data).")
    Term.(
      const run_table3 $ full_arg $ seed_arg $ versions_arg $ mcs_limit_arg
      $ fast_sf_arg $ jobs_arg)

let fig5_cmd =
  Cmd.v
    (Cmd.info "fig5" ~doc:"Reproduce Figure 5 (accuracy on synthetic data).")
    Term.(
      const (fun f s a p j -> run_fig ~figure:`Five f s a p j)
      $ full_arg $ seed_arg $ axis_arg $ pick_arg $ jobs_arg)

let fig6_cmd =
  Cmd.v
    (Cmd.info "fig6" ~doc:"Reproduce Figure 6 (scalability on synthetic data).")
    Term.(
      const (fun f s a p j -> run_fig ~figure:`Six f s a p j)
      $ full_arg $ seed_arg $ axis_arg $ pick_arg $ jobs_arg)

let micro_cmd =
  Cmd.v (Cmd.info "micro" ~doc:"Bechamel micro-benchmarks of the kernels.")
    Term.(const (fun () -> Micro.run ()) $ const ())

let ablations_cmd =
  Cmd.v
    (Cmd.info "ablations" ~doc:"Ablation benches for the design choices.")
    Term.(const (fun seed -> Ablations.run ~seed) $ seed_arg)

let parallel_cmd =
  let out_arg =
    Arg.(
      value & opt string "BENCH_parallel.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the JSON report.")
  in
  let components_arg =
    Arg.(
      value & opt int 8
      & info [ "components" ] ~doc:"Pattern components in the fan-out workload.")
  in
  let m_arg =
    Arg.(value & opt int 40 & info [ "size" ] ~doc:"Nodes per pattern component.")
  in
  let require_speedup_arg =
    Arg.(
      value & opt float 0.0
      & info [ "require-speedup" ] ~docv:"X"
          ~doc:"Fail unless every workload reaches X times sequential speed \
                (default 0: report only — pool wins depend on machine shape).")
  in
  let run seed jobs components m versions require_speedup out =
    let jobs =
      if jobs >= 1 then jobs
      else begin
        Printf.eprintf "bench: --jobs must be at least 1 (got %d)\n" jobs;
        exit 1
      end
    in
    Parallel_bench.run ~jobs ~seed ~components ~m ~versions ~out
      ~min_speedup:require_speedup ()
  in
  Cmd.v
    (Cmd.info "parallel"
       ~doc:"Sequential vs --jobs N wall-clock on the pool-accelerated \
             workloads; writes BENCH_parallel.json.")
    Term.(
      const run $ seed_arg
      $ Arg.(
          value
          & opt int (Domain.recommended_domain_count ())
          & info [ "jobs"; "j" ] ~docv:"N"
              ~doc:"Worker domains for the parallel side of the comparison.")
      $ components_arg $ m_arg $ versions_arg $ require_speedup_arg $ out_arg)

let serve_cmd =
  let out_arg =
    Arg.(
      value & opt string "BENCH_serve.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the JSON report.")
  in
  let sizes_arg =
    Arg.(
      value & opt (list int) [ 20; 40; 80 ]
      & info [ "sizes" ] ~docv:"M,M,..."
          ~doc:"Pattern sizes (paper generator parameter m) to query at.")
  in
  let noise_arg =
    Arg.(value & opt float 0.1 & info [ "noise" ] ~doc:"Noise rate for the data graphs.")
  in
  let repeats_arg =
    Arg.(value & opt int 5 & info [ "repeats" ] ~doc:"Warm queries per pair.")
  in
  let clients_arg =
    Arg.(
      value & opt (list int) [ 1; 4; 8 ]
      & info [ "clients" ] ~docv:"N,N,..."
          ~doc:"Concurrent client counts for the socket latency phase.")
  in
  let run seed sizes noise repeats clients out =
    if List.exists (fun m -> m < 1) sizes then begin
      prerr_endline "bench: --sizes must all be at least 1";
      exit 1
    end;
    if repeats < 1 then begin
      Printf.eprintf "bench: --repeats must be at least 1 (got %d)\n" repeats;
      exit 1
    end;
    if clients = [] || List.exists (fun c -> c < 1) clients then begin
      prerr_endline "bench: --clients must name at least one count >= 1";
      exit 1
    end;
    Serve_bench.run ~seed ~sizes ~noise ~repeats ~clients ~out ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Daemon cold vs warm query latency on the Fig. 5/6 synthetic \
             graphs, plus p50/p99 latency under concurrent socket clients; \
             writes BENCH_serve.json.")
    Term.(
      const run $ seed_arg $ sizes_arg $ noise_arg $ repeats_arg $ clients_arg
      $ out_arg)

let recovery_cmd =
  let out_arg =
    Arg.(
      value & opt string "BENCH_recovery.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the JSON report.")
  in
  let m_arg =
    Arg.(
      value & opt int 80
      & info [ "size" ] ~doc:"Pattern size (generator parameter m).")
  in
  let noise_arg =
    Arg.(
      value & opt float 0.1 & info [ "noise" ] ~doc:"Noise rate for the data graph.")
  in
  let repeats_arg =
    Arg.(
      value & opt int 3
      & info [ "repeats" ] ~doc:"Cold/recovered daemon-life pairs to time.")
  in
  let min_speedup_arg =
    Arg.(
      value & opt float 1.0
      & info [ "min-speedup" ] ~docv:"X"
          ~doc:"Fail unless the recovered start is X times cheaper than the \
                cold start (default 1: strictly cheaper).")
  in
  let run seed m noise repeats min_speedup out =
    if m < 1 || repeats < 1 then begin
      prerr_endline "bench: --size and --repeats must be at least 1";
      exit 1
    end;
    Recovery_bench.run ~seed ~m ~noise ~repeats ~out ~min_speedup ()
  in
  Cmd.v
    (Cmd.info "recovery"
       ~doc:"Durable-daemon restart cost: cold start (load + compute) vs \
             recovered start (snapshot + journal replay) to the first \
             answer; writes BENCH_recovery.json and fails unless recovery \
             is strictly cheaper.")
    Term.(
      const run $ seed_arg $ m_arg $ noise_arg $ repeats_arg $ min_speedup_arg
      $ out_arg)

let incr_cmd =
  let out_arg =
    Arg.(
      value & opt string "BENCH_incr.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the JSON report.")
  in
  let sizes_arg =
    Arg.(
      value & opt (list int) [ 20; 40; 80 ]
      & info [ "sizes" ] ~docv:"M,M,..."
          ~doc:"Pattern sizes (paper generator parameter m) to edit at.")
  in
  let noise_arg =
    Arg.(
      value & opt float 0.1
      & info [ "noise" ] ~doc:"Noise rate for the data graphs.")
  in
  let edits_arg =
    Arg.(
      value & opt int 6
      & info [ "edits" ] ~doc:"Single-edge edits per tracked instance.")
  in
  let repeats_arg =
    Arg.(
      value & opt int 3
      & info [ "repeats" ] ~doc:"Timed passes per instance (mean reported).")
  in
  let min_speedup_arg =
    Arg.(
      value & opt float 1.0
      & info [ "min-speedup" ] ~docv:"X"
          ~doc:"Fail unless edit + warm re-solve beats unload + reload + cold \
                solve by X times on every tracked instance (default 1: \
                strictly faster).")
  in
  let check_arg =
    Arg.(
      value & opt (some file) None
      & info [ "check-against" ] ~docv:"FILE"
          ~doc:"Baseline BENCH_incr.json to gate against: fail when any \
                tracked instance regresses on edit+re-solve wall-time.")
  in
  let time_regress_arg =
    Arg.(
      value & opt float 0.50
      & info [ "max-time-regress" ] ~docv:"FRAC"
          ~doc:"Baseline gate: allowed fractional wall-time regression, on \
                top of the absolute slack of $(b,--time-floor).")
  in
  let time_floor_arg =
    Arg.(
      value & opt float 0.25
      & info [ "time-floor" ] ~docv:"SECONDS"
          ~doc:"Baseline gate: absolute wall-time slack added to the \
                fractional bound (CI runners are noisy; the speedup guard is \
                the primary signal).")
  in
  let run seed sizes noise edits repeats min_speedup out check time_r floor =
    if sizes = [] || List.exists (fun m -> m < 1) sizes then begin
      prerr_endline "bench: --sizes must name at least one size >= 1";
      exit 1
    end;
    if edits < 1 || repeats < 1 then begin
      prerr_endline "bench: --edits and --repeats must be at least 1";
      exit 1
    end;
    Incr_bench.run ~seed ~sizes ~noise ~edits ~repeats ~min_speedup ~out ?check
      ~max_time_regress:time_r ~time_floor:floor ()
  in
  Cmd.v
    (Cmd.info "incr"
       ~doc:"Dynamic-graph bench: addedge/deledge + warm re-solve vs unload + \
             reload + cold solve on the tracked seeded instances; writes \
             BENCH_incr.json, fails unless the incremental path wins on every \
             instance and both paths agree on every answer, and optionally \
             gates against a checked-in baseline.")
    Term.(
      const run $ seed_arg $ sizes_arg $ noise_arg $ edits_arg $ repeats_arg
      $ min_speedup_arg $ out_arg $ check_arg $ time_regress_arg
      $ time_floor_arg)

let exact_cmd =
  let seed_arg =
    (* the exact bench pins its own seed: the tracked instances (and the
       checked-in baseline) are defined by it, unlike the survey benches
       where the seed only flavours the workload *)
    Arg.(value & opt int 2 & info [ "seed" ] ~doc:"Random seed.")
  in
  let out_arg =
    Arg.(
      value & opt string "BENCH_exact.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the JSON report.")
  in
  let check_arg =
    Arg.(
      value & opt (some file) None
      & info [ "check-against" ] ~docv:"FILE"
          ~doc:"Baseline BENCH_exact.json to gate against: fail when any \
                tracked instance regresses on steps-to-optimum or wall-time.")
  in
  let min_speedup_arg =
    Arg.(
      value & opt float 10.0
      & info [ "min-step-speedup" ] ~docv:"X"
          ~doc:"Fail unless the MWC engine takes at least X times fewer B&B \
                steps than the legacy engine on the tracked instances.")
  in
  let step_regress_arg =
    Arg.(
      value & opt float 0.20
      & info [ "max-step-regress" ] ~docv:"FRAC"
          ~doc:"Baseline gate: allowed fractional step regression (steps are \
                deterministic, so this is effectively exact).")
  in
  let time_regress_arg =
    Arg.(
      value & opt float 0.20
      & info [ "max-time-regress" ] ~docv:"FRAC"
          ~doc:"Baseline gate: allowed fractional wall-time regression, on \
                top of the absolute slack of $(b,--time-floor).")
  in
  let time_floor_arg =
    Arg.(
      value & opt float 0.25
      & info [ "time-floor" ] ~docv:"SECONDS"
          ~doc:"Baseline gate: absolute wall-time slack added to the \
                fractional bound (CI runners are noisy; steps are the exact \
                signal).")
  in
  let run seed jobs min_speedup out check step_r time_r floor =
    if jobs < 1 then begin
      Printf.eprintf "bench: --jobs must be at least 1 (got %d)\n" jobs;
      exit 1
    end;
    Exact_bench.run ~seed ~jobs ~min_step_speedup:min_speedup ~out ?check
      ~max_step_regress:step_r ~max_time_regress:time_r ~time_floor:floor ()
  in
  Cmd.v
    (Cmd.info "exact"
       ~doc:"Exact-path engine bench: legacy colouring B&B vs the bitset MWC \
             engine on seeded product-graph instances, steps-to-optimum and \
             wall-clock; writes BENCH_exact.json, fails below the speedup \
             guard, and optionally gates against a checked-in baseline.")
    Term.(
      const run $ seed_arg $ jobs_arg $ min_speedup_arg $ out_arg $ check_arg
      $ step_regress_arg $ time_regress_arg $ time_floor_arg)

let dp_cmd =
  let seed_arg =
    (* like `bench exact`: the tracked instances and the checked-in
       baseline are defined by the seed *)
    Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Random seed.")
  in
  let out_arg =
    Arg.(
      value & opt string "BENCH_dp.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the JSON report.")
  in
  let check_arg =
    Arg.(
      value & opt (some file) None
      & info [ "check-against" ] ~docv:"FILE"
          ~doc:"Baseline BENCH_dp.json to gate against: fail when any \
                tracked instance regresses on steps-to-optimum or wall-time.")
  in
  let min_speedup_arg =
    Arg.(
      value & opt float 2.0
      & info [ "min-step-speedup" ] ~docv:"X"
          ~doc:"Fail unless the DP takes at least X times fewer budget steps \
                than the MWC engine on the tracked low-treewidth instances.")
  in
  let step_regress_arg =
    Arg.(
      value & opt float 0.20
      & info [ "max-step-regress" ] ~docv:"FRAC"
          ~doc:"Baseline gate: allowed fractional step regression (steps are \
                deterministic, so this is effectively exact).")
  in
  let time_regress_arg =
    Arg.(
      value & opt float 0.20
      & info [ "max-time-regress" ] ~docv:"FRAC"
          ~doc:"Baseline gate: allowed fractional wall-time regression, on \
                top of the absolute slack of $(b,--time-floor).")
  in
  let time_floor_arg =
    Arg.(
      value & opt float 0.25
      & info [ "time-floor" ] ~docv:"SECONDS"
          ~doc:"Baseline gate: absolute wall-time slack added to the \
                fractional bound (CI runners are noisy; steps are the exact \
                signal).")
  in
  let run seed jobs min_speedup out check step_r time_r floor =
    if jobs < 1 then begin
      Printf.eprintf "bench: --jobs must be at least 1 (got %d)\n" jobs;
      exit 1
    end;
    Dp_bench.run ~seed ~jobs ~min_step_speedup:min_speedup ~out ?check
      ~max_step_regress:step_r ~max_time_regress:time_r ~time_floor:floor ()
  in
  Cmd.v
    (Cmd.info "dp"
       ~doc:"Tree-decomposition DP vs the MWC engine on seeded low-treewidth \
             instances, steps-to-optimum and wall-clock; writes \
             BENCH_dp.json, fails below the speedup guard, and optionally \
             gates against a checked-in baseline.")
    Term.(
      const run $ seed_arg $ jobs_arg $ min_speedup_arg $ out_arg $ check_arg
      $ step_regress_arg $ time_regress_arg $ time_floor_arg)

let obs_cmd =
  let out_arg =
    Arg.(
      value & opt string "BENCH_obs.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the JSON report.")
  in
  let m_arg =
    Arg.(value & opt int 60 & info [ "size" ] ~doc:"Pattern size (generator parameter m).")
  in
  let noise_arg =
    Arg.(value & opt float 0.1 & info [ "noise" ] ~doc:"Noise rate for the data graph.")
  in
  let rounds_arg =
    Arg.(
      value & opt int 12
      & info [ "rounds" ] ~doc:"Alternating enabled/disabled measurement rounds.")
  in
  let iters_arg =
    Arg.(
      value & opt int 200
      & info [ "iters" ] ~doc:"Warm solves per round and mode.")
  in
  let max_overhead_arg =
    Arg.(
      value & opt float 2.0
      & info [ "max-overhead" ] ~docv:"PCT"
          ~doc:"Fail when metrics overhead exceeds this many percent.")
  in
  let run seed m noise rounds iters max_overhead out =
    if m < 1 || rounds < 1 || iters < 1 then begin
      prerr_endline "bench: --size, --rounds and --iters must be at least 1";
      exit 1
    end;
    Obs_bench.run ~seed ~m ~noise ~rounds ~iters ~max_overhead ~out ()
  in
  Cmd.v
    (Cmd.info "obs"
       ~doc:"Metrics-on vs metrics-off wall-clock on the daemon's warm-serve \
             path; writes BENCH_obs.json and fails above the overhead bound.")
    Term.(
      const run $ seed_arg $ m_arg $ noise_arg $ rounds_arg $ iters_arg
      $ max_overhead_arg $ out_arg)

let fleet_cmd =
  let out_arg =
    Arg.(
      value & opt string "BENCH_fleet.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the JSON report.")
  in
  let m_arg =
    Arg.(
      value & opt int 20
      & info [ "size" ] ~doc:"Pattern size (generator parameter m).")
  in
  let noise_arg =
    Arg.(
      value & opt float 0.1
      & info [ "noise" ] ~doc:"Noise rate for the data graphs.")
  in
  let pairs_arg =
    Arg.(
      value & opt int 4
      & info [ "pairs" ] ~docv:"N"
          ~doc:"Independent graph pairs, so consistent hashing has keys to \
                spread across the fleet.")
  in
  let rounds_arg =
    Arg.(
      value & opt int 20
      & info [ "rounds" ] ~doc:"Warm routed rounds over every pair.")
  in
  let max_blip_arg =
    Arg.(
      value & opt float 10.0
      & info [ "max-blip" ] ~docv:"SECS"
          ~doc:"Fail when the failover blip (the one routed request that \
                spans the kill -9 of its owner) exceeds $(docv) seconds.")
  in
  let run seed m noise pairs rounds max_blip out =
    if m < 1 || pairs < 1 || rounds < 1 then begin
      prerr_endline "bench: --size, --pairs and --rounds must be at least 1";
      exit 1
    end;
    Fleet_bench.run ~seed ~m ~noise ~pairs ~rounds ~max_blip ~out ()
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"Routed latency against 1 vs 3 phomd replicas over loopback TCP, \
             plus the failover blip when a replica is killed -9 mid-workload; \
             writes BENCH_fleet.json and fails when any routed request errors \
             or the blip exceeds the bound.")
    Term.(
      const run $ seed_arg $ m_arg $ noise_arg $ pairs_arg $ rounds_arg
      $ max_blip_arg $ out_arg)

let all_term = Term.(const run_all $ full_arg $ seed_arg $ versions_arg $ mcs_limit_arg $ jobs_arg)

let all_cmd = Cmd.v (Cmd.info "all" ~doc:"Every table and figure (default).") all_term

let () =
  let doc = "reproduce every table and figure of Fan et al., VLDB 2010" in
  let info = Cmd.info "bench" ~doc in
  exit
    (Cmd.eval
       (Cmd.group ~default:all_term info
          [ table2_cmd; table3_cmd; fig5_cmd; fig6_cmd; ablations_cmd; micro_cmd;
            parallel_cmd; serve_cmd; recovery_cmd; obs_cmd; exact_cmd; dp_cmd;
            incr_cmd; fleet_cmd; all_cmd ]))
