(* Shared helpers for the bench harness. *)

let timed f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let pct = function None -> "N/A" | Some a -> Printf.sprintf "%.0f%%" a

let seconds s = Printf.sprintf "%.3f" s

let heading title =
  let bar = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n=== %s ===\n%s\n" bar title bar

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n" s) fmt

let table header rows =
  (* simple fixed-width text table: column widths from content *)
  let all = header :: rows in
  let ncols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let print_row row =
    List.iteri
      (fun c cell -> Printf.printf "%-*s  " (List.nth widths c) cell)
      row;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
