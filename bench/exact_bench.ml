(* Exact-path bench and CI perf-regression gate.

   Seeded product-graph instances (the paper generator's pattern/data pairs
   pushed through the Theorem-5.1 compatibility-graph construction) solved
   to proven optimality by the legacy colouring B&B and the bitset MWC
   engine. Two guards, both exit non-zero so CI cannot pass a regression
   silently:

   - the engine guard: across the tracked cardinality instances the MWC
     engine must take >= --min-step-speedup fewer B&B steps (default 10x)
     than the legacy engine, and strictly less total wall-time;
   - the baseline gate (--check-against FILE): every tracked (name, engine)
     row of the checked-in BENCH_exact.json must be reproduced within
     --max-step-regress (steps are deterministic, so this is an exact
     comparison with a tolerance) and --max-time-regress plus an absolute
     --time-floor (wall-time is noisy across runners).

   The JSON this writes doubles as the next baseline: refresh it by copying
   the artifact over bench/baselines/BENCH_exact.json when an intentional
   engine change moves the numbers. *)

module D = Phom_graph.Digraph
module G = Phom_graph.Generators
module Budget = Phom_graph.Budget
module Labelsim = Phom_sim.Labelsim
module Ungraph = Phom_wis.Ungraph
module Wis = Phom_wis.Wis
module Pool = Phom_parallel.Pool

type row = {
  name : string;
  engine : string;  (** "legacy" or "mwc" *)
  nodes : int;
  edges : int;
  optimum : float;
  steps : int;
  seconds : float;
}

(* a tracked instance: the product graph of a seeded Erdős–Rényi
   pattern/data pair over a small label pool with graded similarities.
   Unlike the paper generator's pattern⊆data pairs (where greedy finds the
   planted optimum immediately and both engines terminate in a handful of
   nodes), independent pattern/data graphs leave many incomparable
   near-optimal mappings — the regime where the branch and bound actually
   branches. *)
let product_instance ~seed ~n1 ~m1 ~n2 ~m2 ~nlabels ~xi ~injective ~weighted =
  let rng = Random.State.make [| seed; n1; n2; (if injective then 1 else 0) |] in
  let labels = [| "A"; "B"; "C"; "D"; "E" |] in
  let lbl _ = labels.(Random.State.int rng (min nlabels (Array.length labels))) in
  let g1 = G.erdos_renyi ~rng ~n:n1 ~m:m1 ~labels:lbl in
  (* the data graph is a DAG: acyclic reachability keeps tc2 sparse enough
     that no full embedding of the (cyclic, dense) pattern exists, so the
     optimum sits strictly below n1 and neither engine closes at the root *)
  let g2 = G.random_dag ~rng ~n:n2 ~m:m2 ~labels:lbl in
  (* graded similarity: same-label pairs clear xi at one of four grades,
     cross-label pairs rarely do — candidate rows stay wide enough to force
     real search *)
  let mat =
    Phom_sim.Simmat.of_fun ~n1 ~n2 (fun v u ->
        let base = if D.label g1 v = D.label g2 u then 0.55 else 0.2 in
        min 1. (base +. (0.15 *. float_of_int (Random.State.int rng 4))))
  in
  let t = Phom.Instance.make ~g1 ~g2 ~mat ~xi () in
  let weights =
    if weighted then
      Some (Array.init (D.n g1) (fun i -> 0.5 +. (float_of_int (i mod 4) /. 4.)))
    else None
  in
  (Phom_wis.Product.build ~injective ?weights ~g1:t.Phom.Instance.g1
     ~tc2:t.Phom.Instance.tc2 ~mat:t.Phom.Instance.mat ~xi:t.Phom.Instance.xi
     ())
    .Phom_wis.Product.graph

(* the tracked sizes: large enough that the legacy engine sweats for its
   proof, small enough that it still reaches optimality in CI minutes *)
let tracked ~seed =
  [
    ( "card-12x20",
      product_instance ~seed ~n1:12 ~m1:34 ~n2:20 ~m2:44 ~nlabels:2 ~xi:0.5
        ~injective:false ~weighted:false );
    ( "card-14x20",
      product_instance ~seed ~n1:14 ~m1:60 ~n2:20 ~m2:34 ~nlabels:1 ~xi:0.5
        ~injective:false ~weighted:false );
    ( "card11-12x20",
      product_instance ~seed ~n1:12 ~m1:36 ~n2:20 ~m2:42 ~nlabels:2 ~xi:0.5
        ~injective:true ~weighted:false );
    ( "card11-13x22",
      product_instance ~seed ~n1:13 ~m1:42 ~n2:22 ~m2:46 ~nlabels:2 ~xi:0.5
        ~injective:true ~weighted:false );
    ( "card11-14x20",
      product_instance ~seed ~n1:14 ~m1:64 ~n2:20 ~m2:32 ~nlabels:1 ~xi:0.5
        ~injective:true ~weighted:false );
    ( "card11-16x22",
      product_instance ~seed ~n1:16 ~m1:84 ~n2:22 ~m2:36 ~nlabels:1 ~xi:0.5
        ~injective:true ~weighted:false );
  ]

let weighted_tracked ~seed =
  [
    ( "sim-14x20",
      product_instance ~seed ~n1:14 ~m1:60 ~n2:20 ~m2:34 ~nlabels:1 ~xi:0.5
        ~injective:false ~weighted:true );
    ( "sim11-16x22",
      product_instance ~seed ~n1:16 ~m1:84 ~n2:22 ~m2:36 ~nlabels:1 ~xi:0.5
        ~injective:true ~weighted:true );
  ]

(* generous safety net: every tracked instance finishes well under 10⁵
   steps on either engine; the cap only exists so a future regression
   fails loudly instead of hanging CI *)
let step_cap = 20_000_000

let run_engine name engine g solve =
  Printf.eprintf "bench exact: %-12s %-6s %3d nodes %5d edges...\n%!" name
    engine (Ungraph.n g) (Ungraph.nb_edges g);
  let b = Budget.create ~steps:step_cap () in
  let (value, status), seconds = Util.timed (fun () -> solve b g) in
  if status <> Budget.Complete then begin
    Printf.eprintf
      "bench exact: %s engine did not prove optimality on %s within %d steps\n"
      engine name step_cap;
    exit 1
  end;
  {
    name;
    engine;
    nodes = Ungraph.n g;
    edges = Ungraph.nb_edges g;
    optimum = value;
    steps = Budget.steps_used b;
    seconds;
  }

let legacy_solve b g =
  let c, status = Wis.exact_max_clique_legacy ~budget:b g in
  (float_of_int (List.length c), status)

let mwc_solve ?pool b g =
  let c, status = Wis.exact_max_clique ?pool ~budget:b g in
  (float_of_int (List.length c), status)

let mwc_weight_solve ?pool b g =
  let _, w, status = Wis.exact_max_weight_clique ?pool ~budget:b g in
  (w, status)

let json_of ~seed ~jobs rows ~legacy_steps ~mwc_steps ~legacy_seconds
    ~mwc_seconds =
  let row_json r =
    Printf.sprintf
      "    {\"name\": %S, \"engine\": %S, \"nodes\": %d, \"edges\": %d, \
       \"optimum\": %.6f, \"steps\": %d, \"seconds\": %.6f}"
      r.name r.engine r.nodes r.edges r.optimum r.steps r.seconds
  in
  Printf.sprintf
    "{\n\
    \  \"seed\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"legacy_steps\": %d,\n\
    \  \"mwc_steps\": %d,\n\
    \  \"steps_speedup\": %.3f,\n\
    \  \"legacy_seconds\": %.6f,\n\
    \  \"mwc_seconds\": %.6f,\n\
    \  \"time_speedup\": %.3f,\n\
    \  \"instances\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    seed jobs legacy_steps mwc_steps
    (if mwc_steps > 0 then float_of_int legacy_steps /. float_of_int mwc_steps
     else 0.)
    legacy_seconds mwc_seconds
    (if mwc_seconds > 0. then legacy_seconds /. mwc_seconds else 0.)
    (String.concat ",\n" (List.map row_json rows))

(* ---- the baseline gate ---- *)

(* minimal field extraction from the flat per-instance lines this bench
   itself writes (the repo deliberately has no JSON dependency) *)
let parse_baseline file =
  let ic = open_in file in
  let rows = ref [] in
  let field line key =
    let pat = Printf.sprintf "\"%s\": " key in
    let plen = String.length pat in
    let rec find i =
      if i + plen > String.length line then None
      else if String.sub line i plen = pat then Some (i + plen)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some start ->
        let stop = ref start in
        let len = String.length line in
        while !stop < len && not (List.mem line.[!stop] [ ','; '}'; '\n' ]) do
          incr stop
        done;
        Some (String.trim (String.sub line start (!stop - start)))
  in
  let unquote s =
    if String.length s >= 2 && s.[0] = '"' then String.sub s 1 (String.length s - 2)
    else s
  in
  (try
     while true do
       let line = input_line ic in
       match (field line "name", field line "engine", field line "steps",
              field line "seconds")
       with
       | Some n, Some e, Some st, Some sec ->
           rows :=
             (unquote n, unquote e, int_of_string st, float_of_string sec)
             :: !rows
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

let check_against ~baseline_file ~max_step_regress ~max_time_regress
    ~time_floor rows =
  let baseline = parse_baseline baseline_file in
  if baseline = [] then begin
    Printf.eprintf "bench exact: no instance rows parsed from %s\n"
      baseline_file;
    exit 1
  end;
  let violations = ref 0 in
  List.iter
    (fun (name, engine, base_steps, base_seconds) ->
      match
        List.find_opt (fun r -> r.name = name && r.engine = engine) rows
      with
      | None ->
          Printf.eprintf
            "bench exact: tracked instance %s/%s missing from this run\n" name
            engine;
          incr violations
      | Some r ->
          let step_limit =
            int_of_float (ceil (float_of_int base_steps *. (1. +. max_step_regress)))
          in
          if r.steps > step_limit then begin
            Printf.eprintf
              "bench exact: %s/%s regressed on steps: %d > %d (baseline %d, \
               +%.0f%% allowed)\n"
              name engine r.steps step_limit base_steps
              (max_step_regress *. 100.);
            incr violations
          end;
          let time_limit = (base_seconds *. (1. +. max_time_regress)) +. time_floor in
          if r.seconds > time_limit then begin
            Printf.eprintf
              "bench exact: %s/%s regressed on wall-time: %.6fs > %.6fs \
               (baseline %.6fs, +%.0f%% and %.2fs slack)\n"
              name engine r.seconds time_limit base_seconds
              (max_time_regress *. 100.) time_floor;
            incr violations
          end)
    baseline;
  if !violations > 0 then begin
    Printf.eprintf "bench exact: %d perf-gate violation(s) vs %s\n" !violations
      baseline_file;
    exit 1
  end;
  Util.note "perf gate: every tracked instance within bounds of %s"
    baseline_file

let run ~seed ~jobs ~min_step_speedup ~out ?check ~max_step_regress
    ~max_time_regress ~time_floor () =
  Util.heading "Exact path: legacy colouring B&B vs bitset MWC engine";
  let with_pool f =
    if jobs <= 1 then f None
    else Pool.with_pool ~domains:jobs (fun p -> f (Some p))
  in
  with_pool @@ fun pool ->
  let rows = ref [] in
  let add r = rows := r :: !rows in
  (* cardinality instances: both engines, same optimum required *)
  List.iter
    (fun (name, g) ->
      let legacy = run_engine name "legacy" g legacy_solve in
      let mwc = run_engine name "mwc" g (mwc_solve ?pool) in
      if legacy.optimum <> mwc.optimum then begin
        Printf.eprintf
          "bench exact: engines disagree on %s: legacy %.0f vs mwc %.0f\n" name
          legacy.optimum mwc.optimum;
        exit 1
      end;
      add legacy;
      add mwc)
    (tracked ~seed);
  (* weighted instances: the new engine only (the legacy engine has no
     weight objective); tracked by the baseline gate all the same *)
  List.iter
    (fun (name, g) -> add (run_engine name "mwc" g (mwc_weight_solve ?pool)))
    (weighted_tracked ~seed);
  let rows = List.rev !rows in
  let sum f pred =
    List.fold_left (fun acc r -> if pred r then acc +. f r else acc) 0. rows
  in
  let is_card_legacy r = r.engine = "legacy" in
  let is_card_mwc r =
    r.engine = "mwc" && List.exists (fun b -> b.name = r.name && b.engine = "legacy") rows
  in
  let legacy_steps = int_of_float (sum (fun r -> float_of_int r.steps) is_card_legacy) in
  let mwc_steps = int_of_float (sum (fun r -> float_of_int r.steps) is_card_mwc) in
  let legacy_seconds = sum (fun r -> r.seconds) is_card_legacy in
  let mwc_seconds = sum (fun r -> r.seconds) is_card_mwc in
  Util.table
    [ "instance"; "engine"; "nodes"; "edges"; "optimum"; "steps"; "seconds" ]
    (List.map
       (fun r ->
         [
           r.name;
           r.engine;
           string_of_int r.nodes;
           string_of_int r.edges;
           Printf.sprintf "%.2f" r.optimum;
           string_of_int r.steps;
           Util.seconds r.seconds;
         ])
       rows);
  let steps_speedup =
    if mwc_steps > 0 then float_of_int legacy_steps /. float_of_int mwc_steps
    else infinity
  in
  Util.note "steps: legacy %d vs mwc %d (%.1fx); time: %ss vs %ss (%.1fx)"
    legacy_steps mwc_steps steps_speedup
    (Util.seconds legacy_seconds) (Util.seconds mwc_seconds)
    (if mwc_seconds > 0. then legacy_seconds /. mwc_seconds else 0.);
  let json =
    json_of ~seed ~jobs rows ~legacy_steps ~mwc_steps ~legacy_seconds
      ~mwc_seconds
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  Util.note "wrote %s" out;
  (* engine guard *)
  if steps_speedup < min_step_speedup then begin
    Printf.eprintf
      "bench exact: MWC engine is only %.2fx fewer steps than legacy \
       (required %.1fx)\n"
      steps_speedup min_step_speedup;
    exit 1
  end;
  if mwc_seconds >= legacy_seconds then begin
    Printf.eprintf
      "bench exact: MWC engine wall-time %.6fs is not strictly faster than \
       legacy %.6fs\n"
      mwc_seconds legacy_seconds;
    exit 1
  end;
  (* baseline gate *)
  match check with
  | None -> ()
  | Some baseline_file ->
      check_against ~baseline_file ~max_step_regress ~max_time_regress
        ~time_floor rows
