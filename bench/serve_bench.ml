(* Daemon cold-vs-warm bench: the amortization argument for the matching
   service, measured. For each Fig. 5/6 synthetic pattern/data pair the
   daemon state answers the same solve request twice — the cold query
   computes every artifact (G2 closure, similarity matrix, candidate
   table), the warm ones are served from the LRU cache. Requests go through
   Daemon.execute (the exact per-request pipeline of the socket loop,
   without socket noise), and the warm reply must equal the cold one modulo
   the cache provenance field.

   Emits BENCH_serve.json (also printed as a table) so CI can assert the
   warm path is measurably faster than the cold one. *)

module D = Phom_graph.Digraph
module G = Phom_graph.Generators
module IO = Phom_graph.Graph_io
module Daemon = Phom_server.Daemon
module Protocol = Phom_server.Protocol
module Client = Phom_server.Client

type row = {
  name : string;
  n1 : int;
  n2 : int;
  cold_seconds : float;
  warm_seconds : float;  (** mean over the warm repeats *)
  warm_hits : bool;  (** every artifact of the warm replies was a cache hit *)
  equal_output : bool;
}

let request st line =
  match Protocol.parse line with
  | Error m -> failwith ("bench serve: bad request: " ^ m)
  | Ok req -> fst (Daemon.execute st req)

let expect_ok what reply =
  if String.length reply < 2 || String.sub reply 0 2 <> "ok" then
    failwith (Printf.sprintf "bench serve: %s failed: %s" what reply)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* the answer proper: the reply with its cache provenance field removed *)
let strip_cache reply =
  let marker = " cache=" in
  let rec find i =
    if i + String.length marker > String.length reply then None
    else if String.sub reply i (String.length marker) = marker then Some i
    else find (i + 1)
  in
  match find 0 with Some i -> String.sub reply 0 i | None -> reply

let bench_pair ~rng ~m ~noise ~repeats st =
  let g1, pool = G.paper_pattern ~rng ~m in
  let g2 = G.paper_data ~rng ~pool ~noise g1 in
  let save g =
    let path = Filename.temp_file "phom_serve_bench" ".phg" in
    IO.save path g;
    path
  in
  let p1 = save g1 and p2 = save g2 in
  let finally () = List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ p1; p2 ] in
  Fun.protect ~finally (fun () ->
      let name = Printf.sprintf "fig5-m%d" m in
      expect_ok "load pattern" (request st (Printf.sprintf "load graph %s.g1 %s" name p1));
      expect_ok "load data" (request st (Printf.sprintf "load graph %s.g2 %s" name p2));
      let solve =
        Printf.sprintf "solve card %s.g1 %s.g2 --sim shingles --xi 0.5" name name
      in
      let cold, cold_seconds = Util.timed (fun () -> request st solve) in
      expect_ok "cold solve" cold;
      let warm = ref cold and warm_hits = ref true and warm_total = ref 0. in
      for _ = 1 to repeats do
        let reply, dt = Util.timed (fun () -> request st solve) in
        expect_ok "warm solve" reply;
        warm := reply;
        warm_total := !warm_total +. dt;
        if not (contains ~needle:"cache=closure:hit,mat:hit,cands:hit" reply) then
          warm_hits := false
      done;
      {
        name;
        n1 = D.n g1;
        n2 = D.n g2;
        cold_seconds;
        warm_seconds = !warm_total /. float_of_int repeats;
        warm_hits = !warm_hits;
        equal_output = strip_cache cold = strip_cache !warm;
      })

(* Concurrency phase: the same solve through a real socket under client
   load. The daemon runs in its own domain with a worker pool; for each
   client count we reset the artifact cache, fire a cold burst (one solve
   per client, artifacts computed under contention) and then warm rounds
   (cache-served solves), and report p50/p99 latency for both. This is the
   multiplexing claim measured: adding peers must not multiply the warm
   tail. *)

type conc_row = {
  clients : int;
  cold_p50 : float;
  cold_p99 : float;
  warm_p50 : float;
  warm_p99 : float;
}

let percentile p xs =
  (* nearest-rank on a sorted copy; p in [0,1] *)
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0.
  else a.(min (n - 1) (max 0 (int_of_float (Float.ceil (p *. float_of_int n)) - 1)))

(* shed/teardown races are expected under load; retry patiently *)
let conc_backoff = { Client.retries = 20; delay = 0.05; max_delay = 0.5 }

let oneshot sockaddr line =
  match Client.request ~backoff:conc_backoff sockaddr line with
  | Ok reply -> reply
  | Error m -> failwith ("bench serve: " ^ m)

let with_socket_daemon ~jobs f =
  let sock = Filename.temp_file "phom_serve_bench" ".sock" in
  Sys.remove sock;
  let config =
    {
      Daemon.default_config with
      Daemon.socket_path = Some sock;
      jobs;
      (* unbounded per-request budget, same reasoning as the in-process
         phase: a tripped answer is cheaper than a complete one and would
         skew the latency comparison *)
      default_timeout = None;
    }
  in
  let ready_m = Mutex.create () and ready_c = Condition.create () in
  let ready = ref false in
  let server =
    Domain.spawn (fun () ->
        Daemon.serve
          ~ready:(fun _ ->
            Mutex.lock ready_m;
            ready := true;
            Condition.signal ready_c;
            Mutex.unlock ready_m)
          config)
  in
  Mutex.lock ready_m;
  while not !ready do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  let sockaddr = Unix.ADDR_UNIX sock in
  let finally () =
    (try ignore (Client.request ~backoff:conc_backoff sockaddr "shutdown")
     with _ -> ());
    Domain.join server;
    try Sys.remove sock with Sys_error _ -> ()
  in
  Fun.protect ~finally (fun () -> f sockaddr)

(* one burst: [clients] domains, each connecting once and timing [rounds]
   solves; returns every per-request latency *)
let burst ~clients ~rounds sockaddr solve =
  let worker () =
    match Client.connect sockaddr with
    | Error m -> failwith ("bench serve: " ^ m)
    | Ok conn ->
        Fun.protect
          ~finally:(fun () -> Client.close conn)
          (fun () ->
            List.init rounds (fun _ ->
                let reply, dt = Util.timed (fun () -> Client.send conn solve) in
                (match reply with
                | Ok r -> expect_ok "concurrent solve" r
                | Error m -> failwith ("bench serve: " ^ m));
                dt))
  in
  let domains = List.init clients (fun _ -> Domain.spawn worker) in
  List.concat_map Domain.join domains

let bench_concurrency ~rng ~m ~noise ~jobs ~clients_list ~warm_rounds =
  let g1, pool = G.paper_pattern ~rng ~m in
  let g2 = G.paper_data ~rng ~pool ~noise g1 in
  let save g =
    let path = Filename.temp_file "phom_serve_bench" ".phg" in
    IO.save path g;
    path
  in
  let p1 = save g1 and p2 = save g2 in
  let finally () =
    List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ p1; p2 ]
  in
  Fun.protect ~finally (fun () ->
      with_socket_daemon ~jobs (fun sockaddr ->
          expect_ok "load pattern"
            (oneshot sockaddr (Printf.sprintf "load graph conc.g1 %s" p1));
          expect_ok "load data"
            (oneshot sockaddr (Printf.sprintf "load graph conc.g2 %s" p2));
          let solve = "solve card conc.g1 conc.g2 --sim shingles --xi 0.5" in
          List.map
            (fun clients ->
              (* evict every artifact so the cold burst really is cold *)
              expect_ok "reset cache" (oneshot sockaddr "unload conc.g2");
              expect_ok "reload data"
                (oneshot sockaddr (Printf.sprintf "load graph conc.g2 %s" p2));
              let cold = burst ~clients ~rounds:1 sockaddr solve in
              let warm = burst ~clients ~rounds:warm_rounds sockaddr solve in
              {
                clients;
                cold_p50 = percentile 0.50 cold;
                cold_p99 = percentile 0.99 cold;
                warm_p50 = percentile 0.50 warm;
                warm_p99 = percentile 0.99 warm;
              })
            clients_list))

let json_of_rows ~repeats ~jobs ~warm_rounds rows conc_rows =
  let row_json r =
    Printf.sprintf
      "    {\"name\": %S, \"n1\": %d, \"n2\": %d, \"cold_seconds\": %.6f, \
       \"warm_seconds\": %.6f, \"speedup\": %.3f, \"warm_hits\": %b, \
       \"equal_output\": %b}"
      r.name r.n1 r.n2 r.cold_seconds r.warm_seconds
      (if r.warm_seconds > 0. then r.cold_seconds /. r.warm_seconds else 0.)
      r.warm_hits r.equal_output
  in
  let conc_json r =
    Printf.sprintf
      "    {\"clients\": %d, \"cold_p50_seconds\": %.6f, \"cold_p99_seconds\": \
       %.6f, \"warm_p50_seconds\": %.6f, \"warm_p99_seconds\": %.6f}"
      r.clients r.cold_p50 r.cold_p99 r.warm_p50 r.warm_p99
  in
  Printf.sprintf
    "{\n\
    \  \"warm_repeats\": %d,\n\
    \  \"queries\": [\n\
     %s\n\
    \  ],\n\
    \  \"concurrency_jobs\": %d,\n\
    \  \"concurrency_warm_rounds\": %d,\n\
    \  \"concurrency\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    repeats
    (String.concat ",\n" (List.map row_json rows))
    jobs warm_rounds
    (String.concat ",\n" (List.map conc_json conc_rows))

let run ~seed ~sizes ~noise ~repeats ~clients ~out () =
  Util.heading "Matching service: cold vs warm query latency";
  Util.note "paper synthetic pairs (Fig. 5 generator), noise %.2f, %d warm \
             repeats per query"
    noise repeats;
  let rng = Random.State.make [| seed |] in
  (* unbounded per-request budget: the bench must never trade a slow cold
     query for an exhausted answer, or cold vs warm would compare different
     work *)
  let config = { Daemon.default_config with Daemon.default_timeout = None } in
  let st = Daemon.make_state config in
  let rows = List.map (fun m -> bench_pair ~rng ~m ~noise ~repeats st) sizes in
  Util.table
    [ "query"; "|G1|"; "|G2|"; "cold"; "warm"; "speedup"; "warm hits"; "same answer" ]
    (List.map
       (fun r ->
         [
           r.name;
           string_of_int r.n1;
           string_of_int r.n2;
           Util.seconds r.cold_seconds;
           Util.seconds r.warm_seconds;
           Printf.sprintf "%.1fx"
             (if r.warm_seconds > 0. then r.cold_seconds /. r.warm_seconds else 0.);
           string_of_bool r.warm_hits;
           string_of_bool r.equal_output;
         ])
       rows);
  let conc_jobs = 4 and warm_rounds = 10 in
  Util.heading "Matching service: latency under concurrent clients";
  Util.note "one daemon over a Unix socket, %d solve workers, %d warm rounds \
             per client"
    conc_jobs warm_rounds;
  let conc_m = List.fold_left max 1 sizes in
  let conc_rows =
    bench_concurrency ~rng ~m:conc_m ~noise ~jobs:conc_jobs
      ~clients_list:clients ~warm_rounds
  in
  Util.table
    [ "clients"; "cold p50"; "cold p99"; "warm p50"; "warm p99" ]
    (List.map
       (fun r ->
         [
           string_of_int r.clients;
           Util.seconds r.cold_p50;
           Util.seconds r.cold_p99;
           Util.seconds r.warm_p50;
           Util.seconds r.warm_p99;
         ])
       conc_rows);
  let json = json_of_rows ~repeats ~jobs:conc_jobs ~warm_rounds rows conc_rows in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  Util.note "wrote %s" out;
  if List.exists (fun r -> not (r.warm_hits && r.equal_output)) rows then begin
    prerr_endline "warm queries missed the cache or changed the answer";
    exit 1
  end
