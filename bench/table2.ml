(* Table 2: Web graphs and skeletons of the (simulated) real-life data. *)

module Dataset = Phom_web.Dataset

(* the paper's measured values, for side-by-side comparison *)
let paper_rows =
  [
    [ "site 1 (paper)"; "20000"; "42000"; "4.20"; "510"; "250"; "10841"; "20"; "207" ];
    [ "site 2 (paper)"; "5400"; "33114"; "12.31"; "644"; "44"; "214"; "20"; "20" ];
    [ "site 3 (paper)"; "7000"; "16800"; "4.80"; "500"; "142"; "4260"; "20"; "37" ];
  ]

let run ~scale ~seed =
  Util.heading "Table 2: Web graphs and skeletons";
  (match scale with
  | Dataset.Full -> Util.note "scale: full (paper-size sites)"
  | Dataset.Reduced k -> Util.note "scale: reduced 1/%d (use --full for paper size)" k);
  let rng = Random.State.make [| seed |] in
  let measured =
    List.map
      (fun spec ->
        let r = Dataset.table2_row ~rng spec in
        [
          r.Dataset.site ^ " (ours)";
          string_of_int r.Dataset.nodes;
          string_of_int r.Dataset.edges;
          Printf.sprintf "%.2f" r.Dataset.avg_deg;
          string_of_int r.Dataset.max_deg;
          string_of_int r.Dataset.skel1_nodes;
          string_of_int r.Dataset.skel1_edges;
          string_of_int r.Dataset.skel2_nodes;
          string_of_int r.Dataset.skel2_edges;
        ])
      (Dataset.sites scale)
  in
  Util.table
    [ "web site"; "nodes"; "edges"; "avgDeg"; "maxDeg";
      "skel1 n"; "skel1 m"; "top20 n"; "top20 m" ]
    (measured @ paper_rows)
