(* Recovery bench: the payoff of crash durability, measured. A durable
   daemon (--state-dir) that restarts recovers its catalog and artifact
   cache from the checksummed snapshot + journal instead of reloading and
   recomputing, so "restart to first answer" must be strictly cheaper than
   the cold start it replaces.

   Each repeat runs two daemon lives over one state directory: the cold
   life starts empty (load both graphs, compute every artifact for a small
   query workload — the same pair at several hop bounds), serves a warm
   reference round, and closes gracefully (final snapshot); the recovered
   life restarts on the populated state directory, must report a clean
   `health`, and must serve the same replies byte-identically at warm-path
   latency on its very first round.

   Emits BENCH_recovery.json (also printed as a table) and fails when the
   recovered start is not strictly cheaper than the cold one. *)

module D = Phom_graph.Digraph
module G = Phom_graph.Generators
module IO = Phom_graph.Graph_io
module Daemon = Phom_server.Daemon
module Protocol = Phom_server.Protocol
module Journal = Phom_server.Journal

type row = {
  repeat : int;
  cold_seconds : float;  (** empty state dir: start + loads + first solve *)
  warm_seconds : float;
  snapshot_seconds : float;  (** graceful close: final snapshot + rotate *)
  recovery_seconds : float;  (** restart on the populated state dir *)
  recovered_solve_seconds : float;  (** first solve after recovery *)
  recovered_hits : bool;
  identical : bool;  (** recovered reply = pre-crash warm reply, byte for byte *)
}

let request st line =
  match Protocol.parse line with
  | Error m -> failwith ("bench recovery: bad request: " ^ m)
  | Ok req -> fst (Daemon.execute st req)

let expect_ok what reply =
  if String.length reply < 2 || String.sub reply 0 2 <> "ok" then
    failwith (Printf.sprintf "bench recovery: %s failed: %s" what reply)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let count_substring ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i acc =
    if i + n > h then acc
    else if String.sub hay i n = needle then go (i + n) (acc + 1)
    else go (i + 1) acc
  in
  if n = 0 then 0 else go 0 0

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_tmpdir f =
  let dir = Filename.temp_file "phom_recovery_bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let bench_once ~rng ~m ~noise ~repeat =
  let g1, pool = G.paper_pattern ~rng ~m in
  let g2 = G.paper_data ~rng ~pool ~noise g1 in
  with_tmpdir (fun dir ->
      let p1 = Filename.concat dir "g1.phg"
      and p2 = Filename.concat dir "g2.phg" in
      IO.save p1 g1;
      IO.save p2 g2;
      let config =
        {
          Daemon.default_config with
          (* unbounded budget: a tripped answer is cheaper than a complete
             one and is never cached, which would skew the comparison *)
          Daemon.default_timeout = None;
          state_dir = Some (Filename.concat dir "state");
          fsync = Journal.Always;
        }
      in
      (* the query workload: the same pair at several hop bounds. Every
         bound is its own closure + candidate-table artifact, so the cold
         path pays one derivation per bound while the recovered path pays
         only a (much smaller) snapshot restore per bound *)
      let solves =
        List.map
          (fun hops ->
            "solve card rec.g1 rec.g2 --sim shingles --xi 0.5" ^ hops)
          [ ""; " --hops 1"; " --hops 2"; " --hops 3" ]
      in
      let run_all st what =
        String.concat "\n"
          (List.map
             (fun line ->
               let reply = request st line in
               expect_ok what reply;
               reply)
             solves)
      in
      (* cold life: empty state directory to first answers *)
      let held = ref None in
      let (), cold_seconds =
        Util.timed (fun () ->
            let st = Daemon.make_state config in
            expect_ok "load g1" (request st ("load graph rec.g1 " ^ p1));
            expect_ok "load g2" (request st ("load graph rec.g2 " ^ p2));
            ignore (run_all st "cold solve");
            held := Some st)
      in
      let st = Option.get !held in
      let warm_replies, warm_seconds =
        Util.timed (fun () -> run_all st "warm solve")
      in
      let (), snapshot_seconds = Util.timed (fun () -> Daemon.close_state st) in
      (* recovered life: populated state directory to the same answers *)
      let held2 = ref None in
      let (), recovery_seconds =
        Util.timed (fun () -> held2 := Some (Daemon.make_state config))
      in
      let st2 = Option.get !held2 in
      let health = request st2 "health" in
      expect_ok "health" health;
      if not (contains ~needle:"state=ready" health
              && contains ~needle:"quarantined=0" health) then
        failwith ("bench recovery: recovered daemon is not clean: " ^ health);
      let replies, recovered_solve_seconds =
        Util.timed (fun () -> run_all st2 "recovered solve")
      in
      Daemon.close_state st2;
      {
        repeat;
        cold_seconds;
        warm_seconds;
        snapshot_seconds;
        recovery_seconds;
        recovered_solve_seconds;
        recovered_hits =
          count_substring ~needle:"cache=closure:hit,mat:hit,cands:hit" replies
          = List.length solves;
        identical = replies = warm_replies;
      })

let json_of_rows ~m ~noise rows ~cold ~recovered =
  let row_json r =
    Printf.sprintf
      "    {\"repeat\": %d, \"cold_seconds\": %.6f, \"warm_seconds\": %.6f, \
       \"snapshot_seconds\": %.6f, \"recovery_seconds\": %.6f, \
       \"recovered_solve_seconds\": %.6f, \"recovered_hits\": %b, \
       \"identical\": %b}"
      r.repeat r.cold_seconds r.warm_seconds r.snapshot_seconds
      r.recovery_seconds r.recovered_solve_seconds r.recovered_hits r.identical
  in
  Printf.sprintf
    "{\n\
    \  \"size\": %d,\n\
    \  \"noise\": %.3f,\n\
    \  \"cold_start_seconds\": %.6f,\n\
    \  \"recovered_start_seconds\": %.6f,\n\
    \  \"speedup\": %.3f,\n\
    \  \"repeats\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    m noise cold recovered
    (if recovered > 0. then cold /. recovered else 0.)
    (String.concat ",\n" (List.map row_json rows))

let run ~seed ~m ~noise ~repeats ~out ?(min_speedup = 1.) () =
  Util.heading "Matching service: cold start vs recovered start";
  Util.note
    "paper synthetic pair (m = %d, noise %.2f), %d repeats; recovered = \
     restart on a populated --state-dir"
    m noise repeats;
  let rng = Random.State.make [| seed |] in
  let rows =
    List.init repeats (fun i -> bench_once ~rng ~m ~noise ~repeat:(i + 1))
  in
  Util.table
    [
      "repeat"; "cold start"; "warm"; "snapshot"; "recovery"; "first solve";
      "warm hits"; "same answer";
    ]
    (List.map
       (fun r ->
         [
           string_of_int r.repeat;
           Util.seconds r.cold_seconds;
           Util.seconds r.warm_seconds;
           Util.seconds r.snapshot_seconds;
           Util.seconds r.recovery_seconds;
           Util.seconds r.recovered_solve_seconds;
           string_of_bool r.recovered_hits;
           string_of_bool r.identical;
         ])
       rows);
  (* min over repeats on both sides: the comparison is between the best
     achievable cold start and the best achievable recovered start *)
  let min_by f = List.fold_left (fun acc r -> Float.min acc (f r)) infinity rows in
  let cold = min_by (fun r -> r.cold_seconds) in
  let recovered =
    min_by (fun r -> r.recovery_seconds +. r.recovered_solve_seconds)
  in
  Util.note "cold start %ss vs recovered start %ss (%.1fx)"
    (Util.seconds cold) (Util.seconds recovered)
    (if recovered > 0. then cold /. recovered else 0.);
  let json = json_of_rows ~m ~noise rows ~cold ~recovered in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  Util.note "wrote %s" out;
  if List.exists (fun r -> not (r.recovered_hits && r.identical)) rows then begin
    prerr_endline
      "recovered solves missed the cache or changed the answer";
    exit 1
  end;
  (* min_speedup 1.0 is the historical "strictly cheaper" bound; CI also
     runs with an impossible threshold to assert the guard is live *)
  if not (recovered *. min_speedup < cold) then begin
    Printf.eprintf
      "recovered start (%.6fs) is not %.1fx cheaper than a cold start \
       (%.6fs)\n"
      recovered min_speedup cold;
    exit 1
  end
