(* Incremental-matching bench and CI gate.

   For each tracked seeded pattern/data pair the daemon absorbs a fixed
   script of single-edge edits against the data graph and re-solves after
   every step, two ways:

   - the incremental path: [addedge]/[deledge] verbs mutate the loaded
     graph in place, cached closures are maintained incrementally and
     re-keyed by content signature, and the re-solve reuses every artifact
     the edit provably did not change;
   - the rebuild path: [unload] the data graph, [load] the edited file from
     disk, solve cold — what a daemon without edit verbs would have to do.

   Both paths must produce byte-identical answers at every step (the
   differential assertion from the oracle suite, repeated here so the bench
   cannot silently measure two different computations), and the incremental
   path must be faster on every tracked instance — that is the win the
   dynamic-graph subsystem exists for, so CI fails when it evaporates.

   The JSON this writes doubles as the next baseline: refresh
   bench/baselines/BENCH_incr.json from the artifact when an intentional
   change moves the numbers. *)

module D = Phom_graph.Digraph
module G = Phom_graph.Generators
module IO = Phom_graph.Graph_io
module Daemon = Phom_server.Daemon
module Protocol = Phom_server.Protocol

type row = {
  name : string;
  n1 : int;
  n2 : int;
  edits : int;
  incr_seconds : float;  (** mean over repeats: sum of edit + warm re-solve *)
  rebuild_seconds : float;  (** mean over repeats: sum of unload + reload + cold solve *)
  closures_maintained : int;
      (** closure artifacts carried across edits by incremental maintenance
          (per run, not per repeat) *)
  equal_output : bool;
}

let request st line =
  match Protocol.parse line with
  | Error m -> failwith ("bench incr: bad request: " ^ m)
  | Ok req -> fst (Daemon.execute st req)

let expect_ok what reply =
  if String.length reply < 2 || String.sub reply 0 2 <> "ok" then
    failwith (Printf.sprintf "bench incr: %s failed: %s" what reply);
  reply

let strip_cache reply =
  let marker = " cache=" in
  let rec find i =
    if i + String.length marker > String.length reply then None
    else if String.sub reply i (String.length marker) = marker then Some i
    else find (i + 1)
  in
  match find 0 with Some i -> String.sub reply 0 i | None -> reply

(* "... closures=N" -> N *)
let closures_of reply =
  let marker = " closures=" in
  let n = String.length reply and m = String.length marker in
  let rec find i =
    if i + m > n then 0
    else if String.sub reply i m = marker then
      let stop = ref (i + m) in
      while !stop < n && reply.[!stop] <> ' ' do
        incr stop
      done;
      int_of_string (String.sub reply (i + m) (!stop - i - m))
    else find (i + 1)
  in
  find 0

let save_tmp g =
  let path = Filename.temp_file "phom_incr_bench" ".phg" in
  IO.save path g;
  path

let rm path = try Sys.remove path with Sys_error _ -> ()

(* the edit script: [edits] applicable single-edge edits, deletions of
   existing edges alternating with additions of fresh ones, derived
   deterministically from the seed *)
let edit_script ~rng ~edits g0 =
  let g = ref g0 in
  let acc = ref [] in
  for i = 1 to edits do
    let n = D.n !g in
    let step =
      if i mod 2 = 1 then begin
        (* delete a pseudo-random existing edge *)
        let es = ref [] in
        D.iter_edges (fun u v -> es := (u, v) :: !es) !g;
        let es = Array.of_list !es in
        let u, v = es.(Random.State.int rng (Array.length es)) in
        (`Del, u, v)
      end
      else begin
        let rec pick () =
          let u = Random.State.int rng n and v = Random.State.int rng n in
          if D.has_edge !g u v then pick () else (u, v)
        in
        let u, v = pick () in
        (`Add, u, v)
      end
    in
    let op, u, v = step in
    g := (match op with `Add -> D.add_edge !g u v | `Del -> D.remove_edge !g u v);
    acc := (op, u, v, !g) :: !acc
  done;
  List.rev !acc

let fresh_state () =
  (* unbounded per-request budget: a tripped answer is cheaper than a
     complete one and would corrupt the comparison *)
  Daemon.make_state { Daemon.default_config with Daemon.default_timeout = None }

let solve_line = "solve card g1 g2 --sim shingles --xi 0.5"

(* one timed pass over the script on the incremental path: edit in place,
   re-solve warm. Returns (seconds, per-step stripped replies, closures
   maintained). *)
let run_incremental ~p1 ~p2 script =
  let st = fresh_state () in
  Fun.protect ~finally:(fun () -> Daemon.close_state st) @@ fun () ->
  ignore (expect_ok "load g1" (request st ("load graph g1 " ^ p1)));
  ignore (expect_ok "load g2" (request st ("load graph g2 " ^ p2)));
  ignore (expect_ok "priming solve" (request st solve_line));
  let replies = ref [] and closures = ref 0 in
  let (), seconds =
    Util.timed (fun () ->
        List.iter
          (fun (op, u, v, _) ->
            let verb = match op with `Add -> "addedge" | `Del -> "deledge" in
            let er =
              expect_ok verb
                (request st (Printf.sprintf "%s g2 %d %d" verb u v))
            in
            closures := !closures + closures_of er;
            replies :=
              strip_cache (expect_ok "warm re-solve" (request st solve_line))
              :: !replies)
          script)
  in
  (seconds, List.rev !replies, !closures)

(* the same script on the rebuild path: every step unloads the data graph,
   reloads the pre-saved edited file, and solves cold *)
let run_rebuild ~p1 ~p2 ~step_files script =
  let st = fresh_state () in
  Fun.protect ~finally:(fun () -> Daemon.close_state st) @@ fun () ->
  ignore (expect_ok "load g1" (request st ("load graph g1 " ^ p1)));
  ignore (expect_ok "load g2" (request st ("load graph g2 " ^ p2)));
  ignore (expect_ok "priming solve" (request st solve_line));
  let replies = ref [] in
  let (), seconds =
    Util.timed (fun () ->
        List.iteri
          (fun i _ ->
            ignore (expect_ok "unload g2" (request st "unload g2"));
            ignore
              (expect_ok "reload g2"
                 (request st ("load graph g2 " ^ List.nth step_files i)));
            replies :=
              strip_cache (expect_ok "cold re-solve" (request st solve_line))
              :: !replies)
          script)
  in
  (seconds, List.rev !replies)

let bench_pair ~rng ~m ~noise ~edits ~repeats =
  let g1, pool = G.paper_pattern ~rng ~m in
  let g2 = G.paper_data ~rng ~pool ~noise g1 in
  let script = edit_script ~rng ~edits g2 in
  let p1 = save_tmp g1 and p2 = save_tmp g2 in
  let step_files = List.map (fun (_, _, _, g) -> save_tmp g) script in
  let finally () = List.iter rm (p1 :: p2 :: step_files) in
  Fun.protect ~finally (fun () ->
      let name = Printf.sprintf "incr-m%d" m in
      Printf.eprintf "bench incr: %-10s |G1|=%d |G2|=%d %d edits...\n%!" name
        (D.n g1) (D.n g2) edits;
      let incr_runs = ref [] and rebuild_runs = ref [] in
      let closures = ref 0 and equal = ref true in
      for _ = 1 to repeats do
        let si, ri, ci = run_incremental ~p1 ~p2 script in
        let sr, rr = run_rebuild ~p1 ~p2 ~step_files script in
        incr_runs := si :: !incr_runs;
        rebuild_runs := sr :: !rebuild_runs;
        closures := ci;
        if ri <> rr then equal := false
      done;
      {
        name;
        n1 = D.n g1;
        n2 = D.n g2;
        edits;
        incr_seconds = Util.mean !incr_runs;
        rebuild_seconds = Util.mean !rebuild_runs;
        closures_maintained = !closures;
        equal_output = !equal;
      })

let json_of ~seed ~edits ~repeats rows =
  let row_json r =
    Printf.sprintf
      "    {\"name\": %S, \"n1\": %d, \"n2\": %d, \"edits\": %d, \
       \"incr_seconds\": %.6f, \"rebuild_seconds\": %.6f, \"speedup\": %.3f, \
       \"closures_maintained\": %d, \"equal_output\": %b}"
      r.name r.n1 r.n2 r.edits r.incr_seconds r.rebuild_seconds
      (if r.incr_seconds > 0. then r.rebuild_seconds /. r.incr_seconds else 0.)
      r.closures_maintained r.equal_output
  in
  let total f = List.fold_left (fun acc r -> acc +. f r) 0. rows in
  let ti = total (fun r -> r.incr_seconds)
  and tr = total (fun r -> r.rebuild_seconds) in
  Printf.sprintf
    "{\n\
    \  \"seed\": %d,\n\
    \  \"edits\": %d,\n\
    \  \"repeats\": %d,\n\
    \  \"incr_seconds\": %.6f,\n\
    \  \"rebuild_seconds\": %.6f,\n\
    \  \"speedup\": %.3f,\n\
    \  \"instances\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    seed edits repeats ti tr
    (if ti > 0. then tr /. ti else 0.)
    (String.concat ",\n" (List.map row_json rows))

(* ---- the baseline gate (same scheme as `bench exact`) ---- *)

let parse_baseline file =
  let ic = open_in file in
  let rows = ref [] in
  let field line key =
    let pat = Printf.sprintf "\"%s\": " key in
    let plen = String.length pat in
    let rec find i =
      if i + plen > String.length line then None
      else if String.sub line i plen = pat then Some (i + plen)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some start ->
        let stop = ref start in
        let len = String.length line in
        while !stop < len && not (List.mem line.[!stop] [ ','; '}'; '\n' ]) do
          incr stop
        done;
        Some (String.trim (String.sub line start (!stop - start)))
  in
  let unquote s =
    if String.length s >= 2 && s.[0] = '"' then
      String.sub s 1 (String.length s - 2)
    else s
  in
  (try
     while true do
       let line = input_line ic in
       match (field line "name", field line "incr_seconds") with
       | Some n, Some s ->
           rows := (unquote n, float_of_string s) :: !rows
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  (* the summary object carries incr_seconds but no name field, so only
     per-instance lines parse *)
  List.rev !rows

let check_against ~baseline_file ~max_time_regress ~time_floor rows =
  let baseline = parse_baseline baseline_file in
  if baseline = [] then begin
    Printf.eprintf "bench incr: no instance rows parsed from %s\n" baseline_file;
    exit 1
  end;
  let violations = ref 0 in
  List.iter
    (fun (name, base_seconds) ->
      match List.find_opt (fun r -> r.name = name) rows with
      | None ->
          Printf.eprintf "bench incr: tracked instance %s missing from this run\n"
            name;
          incr violations
      | Some r ->
          let limit = (base_seconds *. (1. +. max_time_regress)) +. time_floor in
          if r.incr_seconds > limit then begin
            Printf.eprintf
              "bench incr: %s regressed on edit+re-solve time: %.6fs > %.6fs \
               (baseline %.6fs, +%.0f%% and %.2fs slack)\n"
              name r.incr_seconds limit base_seconds (max_time_regress *. 100.)
              time_floor;
            incr violations
          end)
    baseline;
  if !violations > 0 then begin
    Printf.eprintf "bench incr: %d perf-gate violation(s) vs %s\n" !violations
      baseline_file;
    exit 1
  end;
  Util.note "perf gate: every tracked instance within bounds of %s" baseline_file

let run ~seed ~sizes ~noise ~edits ~repeats ~min_speedup ~out ?check
    ~max_time_regress ~time_floor () =
  Util.heading "Dynamic graphs: edit + warm re-solve vs unload + reload + cold solve";
  Util.note "paper synthetic pairs, noise %.2f, %d edits per instance, %d repeats"
    noise edits repeats;
  let rng = Random.State.make [| seed |] in
  let rows = List.map (fun m -> bench_pair ~rng ~m ~noise ~edits ~repeats) sizes in
  Util.table
    [ "instance"; "|G1|"; "|G2|"; "edits"; "incremental"; "rebuild"; "speedup";
      "closures kept"; "same answer" ]
    (List.map
       (fun r ->
         [
           r.name;
           string_of_int r.n1;
           string_of_int r.n2;
           string_of_int r.edits;
           Util.seconds r.incr_seconds;
           Util.seconds r.rebuild_seconds;
           Printf.sprintf "%.1fx"
             (if r.incr_seconds > 0. then r.rebuild_seconds /. r.incr_seconds
              else 0.);
           string_of_int r.closures_maintained;
           string_of_bool r.equal_output;
         ])
       rows);
  let json = json_of ~seed ~edits ~repeats rows in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  Util.note "wrote %s" out;
  (* differential assertion: both paths answered identically at every step *)
  if List.exists (fun r -> not r.equal_output) rows then begin
    prerr_endline
      "bench incr: the incremental and rebuild paths disagree on an answer";
    exit 1
  end;
  (* the win guard: every tracked instance must clear the speedup floor *)
  List.iter
    (fun r ->
      let speedup =
        if r.incr_seconds > 0. then r.rebuild_seconds /. r.incr_seconds
        else infinity
      in
      if speedup < min_speedup then begin
        Printf.eprintf
          "bench incr: %s: edit+re-solve is only %.2fx the rebuild path \
           (required %.2fx)\n"
          r.name speedup min_speedup;
        exit 1
      end)
    rows;
  (* baseline gate *)
  match check with
  | None -> ()
  | Some baseline_file ->
      check_against ~baseline_file ~max_time_regress ~time_floor rows
