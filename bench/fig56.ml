(* Figures 5 and 6: accuracy and scalability on synthetic data (Exp-2).

   For each point of a sweep we generate a pattern G1 (m nodes, 4m edges),
   several data graphs G2 (edge→path and attached-subgraph noise), compute
   the grouped-label similarity matrix, and run the four approximation
   algorithms plus the graphSimulation baseline. Accuracy is the percentage
   of data graphs matched at quality ≥ 0.75. *)

module D = Phom_graph.Digraph
module G = Phom_graph.Generators
module Labelsim = Phom_sim.Labelsim
module Api = Phom.Api
module Simulation = Phom_baselines.Simulation

type axis = Size | Noise | Xi

let axis_name = function Size -> "size" | Noise -> "noise" | Xi -> "xi"

type sweep_cfg = {
  points : float list;  (** x values of the sweep *)
  per_point : int;  (** data graphs per point (paper: 15) *)
  base_m : int;
  base_noise : float;
  base_xi : float;
  seed : int;
  pick : [ `Best_sim | `First ];
      (** greedyMatch candidate heuristic; the paper leaves it unspecified *)
}

let default_cfg ?(pick = `Best_sim) ~full ~axis ~seed () =
  let base =
    if full then
      { points = []; per_point = 15; base_m = 500; base_noise = 0.10;
        base_xi = 0.75; seed; pick }
    else
      { points = []; per_point = 5; base_m = 150; base_noise = 0.10;
        base_xi = 0.75; seed; pick }
  in
  let points =
    match (axis, full) with
    | Size, true -> List.init 8 (fun i -> float_of_int ((i + 1) * 100))
    | Size, false -> [ 50.; 100.; 150.; 200. ]
    | Noise, true -> List.init 10 (fun i -> float_of_int (2 * (i + 1)) /. 100.)
    | Noise, false -> [ 0.02; 0.06; 0.10; 0.14; 0.20 ]
    | Xi, _ -> [ 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]
  in
  { base with points }

(* each algorithm is judged by its own metric, as in the paper: qualCard for
   the compMaxCard family, qualSim (uniform weights) for compMaxSim *)
let qual_card (t : Phom.Instance.t) m = Phom.Instance.qual_card t m

let qual_sim (t : Phom.Instance.t) m =
  Phom.Instance.qual_sim
    ~weights:(Array.make (D.n t.Phom.Instance.g1) 1.)
    t m

let algorithms pick =
  [
    ("compMaxCard", (fun t -> Phom.Comp_max_card.run ~pick t), qual_card);
    ( "compMaxCard1-1",
      (fun t -> Phom.Comp_max_card.run ~injective:true ~pick t),
      qual_card );
    ("compMaxSim", (fun t -> Phom.Comp_max_sim.run ~pick t), qual_sim);
    ( "compMaxSim1-1",
      (fun t -> Phom.Comp_max_sim.run ~injective:true ~pick t),
      qual_sim );
  ]

type point_result = {
  x : float;
  accuracy : (string * float) list;  (** per algorithm, percent *)
  time : (string * float) list;  (** per algorithm + graphSimulation, seconds *)
}

let run_point ~cfg ~axis x =
  let m, noise, xi =
    match axis with
    | Size -> (int_of_float x, cfg.base_noise, cfg.base_xi)
    | Noise -> (cfg.base_m, x, cfg.base_xi)
    | Xi -> (cfg.base_m, cfg.base_noise, x)
  in
  let rng = Random.State.make [| cfg.seed; int_of_float (x *. 1000.) |] in
  let g1, pool = G.paper_pattern ~rng ~m in
  let lsim = Labelsim.make ~pool ~seed:cfg.seed in
  let datasets =
    List.init cfg.per_point (fun _ -> G.paper_data ~rng ~pool ~noise g1)
  in
  let hits = Hashtbl.create 8 and times = Hashtbl.create 8 in
  let record tbl name v =
    Hashtbl.replace tbl name (v :: Option.value ~default:[] (Hashtbl.find_opt tbl name))
  in
  let algos = algorithms cfg.pick in
  List.iter
    (fun g2 ->
      let mat = Labelsim.matrix lsim g1 g2 in
      List.iter
        (fun (name, algo, quality) ->
          let result, secs =
            Util.timed (fun () ->
                let t = Phom.Instance.make ~g1 ~g2 ~mat ~xi () in
                (t, algo t))
          in
          let t, mapping = result in
          record times name secs;
          record hits name (if quality t mapping >= 0.75 then 1. else 0.))
        algos;
      (* graphSimulation: timing series of Fig 6 (it finds 0% matches) *)
      let sim, secs =
        Util.timed (fun () -> Simulation.of_simmat ~mat ~xi g1 g2)
      in
      record times "graphSimulation" secs;
      record hits "graphSimulation"
        (if Simulation.matches_whole_graph sim then 1. else 0.))
    datasets;
  let names = List.map (fun (n, _, _) -> n) algos @ [ "graphSimulation" ] in
  {
    x;
    accuracy = List.map (fun n -> (n, 100. *. Util.mean (Hashtbl.find hits n))) names;
    time = List.map (fun n -> (n, Util.mean (Hashtbl.find times n))) names;
  }

(* the points of a sweep are independent: each seeds its own RNG from
   (cfg.seed, x), so fanning them out across domains reproduces the
   sequential numbers point for point *)
let sweep ?pool ~cfg ~axis () =
  match pool with
  | Some p when Phom_parallel.Pool.size p > 1 ->
      Phom_parallel.Pool.map_list p (run_point ~cfg ~axis) cfg.points
  | _ -> List.map (run_point ~cfg ~axis) cfg.points

let x_label axis x =
  match axis with
  | Size -> Printf.sprintf "m=%.0f" x
  | Noise -> Printf.sprintf "%.0f%%" (100. *. x)
  | Xi -> Printf.sprintf "xi=%.2f" x

let print_accuracy ~axis results =
  Util.heading
    (Printf.sprintf "Figure 5(%s): accuracy vs %s"
       (match axis with Size -> "a" | Noise -> "b" | Xi -> "c")
       (axis_name axis));
  let names = List.map fst (List.hd results).accuracy in
  let rows =
    List.map
      (fun r ->
        x_label axis r.x
        :: List.map (fun n -> Printf.sprintf "%.0f%%" (List.assoc n r.accuracy)) names)
      results
  in
  Util.table ((axis_name axis) :: names) rows;
  (match axis with
  | Size ->
      Util.note
        "paper reference: all four algorithms ≥65%%, roughly flat in m; graphSimulation 0%%"
  | Noise ->
      Util.note
        "paper reference: decreasing with noise, still ≥50%% at noise=20%%; graphSimulation 0%%"
  | Xi ->
      Util.note
        "paper reference: ≥70%% throughout, mild dip for xi in [0.6,0.8]; graphSimulation 0%%")

let print_time ~axis results =
  Util.heading
    (Printf.sprintf "Figure 6(%s): scalability vs %s"
       (match axis with Size -> "a" | Noise -> "b" | Xi -> "c")
       (axis_name axis));
  let names = List.map fst (List.hd results).time in
  let rows =
    List.map
      (fun r ->
        x_label axis r.x
        :: List.map (fun n -> Util.seconds (List.assoc n r.time)) names)
      results
  in
  Util.table ((axis_name axis) :: names) rows;
  (match axis with
  | Size ->
      Util.note
        "paper reference: growth with m, up to ~90s at m=800 (2010 Java/hardware); shape matters, not absolutes"
  | Noise -> Util.note "paper reference: mild growth in noise for all algorithms"
  | Xi -> Util.note "paper reference: essentially flat in xi")
