(* Tree-decomposition DP bench and CI perf-regression gate.

   Seeded low-treewidth instances — tree and series-parallel patterns
   against graded-similarity DAG data graphs — solved to proven optimality
   by both exact paths: the Theorem-5.1 product-graph reduction into the
   bitset MWC engine, and the tree-decomposition DP the width router picks
   on narrow patterns. Two guards, both exit non-zero so CI cannot pass a
   regression silently:

   - the engine guard: across the tracked instances the DP must take
     >= --min-step-speedup fewer budget steps (DP table rows vs B&B search
     nodes) than the MWC engine — the whole point of routing tree-like
     patterns away from the clique solver;
   - the baseline gate (--check-against FILE): every tracked (name, engine)
     row of the checked-in BENCH_dp.json must be reproduced within
     --max-step-regress and --max-time-regress plus --time-floor, exactly
     like `bench exact`.

   Refresh the baseline by copying the written artifact over
   bench/baselines/BENCH_dp.json when an intentional change moves the
   numbers. *)

module D = Phom_graph.Digraph
module G = Phom_graph.Generators
module Budget = Phom_graph.Budget
module Simmat = Phom_sim.Simmat
module Ungraph = Phom_wis.Ungraph
module Wis = Phom_wis.Wis
module Mapping = Phom.Mapping
module Pool = Phom_parallel.Pool

type row = {
  name : string;
  engine : string;  (** "dp" or "mwc" *)
  nodes : int;  (** pattern nodes (the DP's input scale) *)
  edges : int;
  optimum : float;
  steps : int;
  seconds : float;
}

(* a tracked instance: a seeded low-treewidth pattern (tree or
   series-parallel) against a DAG data graph under graded similarities.
   Wide candidate rows make the product graph big and clique-heavy while
   the DP's tables stay polynomial — the regime the router exists for. *)
let low_tw_instance ~seed ~kind ~n1 ~n2 ~m2 ~xi ~weighted =
  let rng = Random.State.make [| seed; n1; n2; (match kind with `Tree -> 0 | `Sp -> 1) |] in
  let labels = [| "A"; "B"; "C" |] in
  let lbl _ = labels.(Random.State.int rng (Array.length labels)) in
  let g1 =
    match kind with
    | `Tree -> G.random_tree ~rng ~n:n1 ~labels:lbl
    | `Sp -> G.series_parallel ~rng ~n:n1 ~labels:lbl
  in
  let g2 = G.random_dag ~rng ~n:n2 ~m:m2 ~labels:lbl in
  let mat =
    Simmat.of_fun ~n1 ~n2 (fun v u ->
        let base = if D.label g1 v = D.label g2 u then 0.55 else 0.25 in
        min 1. (base +. (0.15 *. float_of_int (Random.State.int rng 4))))
  in
  let t = Phom.Instance.make ~g1 ~g2 ~mat ~xi () in
  let weights =
    if weighted then
      Some (Array.init n1 (fun i -> 0.5 +. (float_of_int (i mod 4) /. 4.)))
    else None
  in
  (t, weights)

let tracked ~seed =
  [
    ("tree-16x24", low_tw_instance ~seed ~kind:`Tree ~n1:16 ~n2:24 ~m2:52 ~xi:0.5 ~weighted:false);
    ("tree-20x26", low_tw_instance ~seed ~kind:`Tree ~n1:20 ~n2:26 ~m2:58 ~xi:0.5 ~weighted:false);
    ("sp-14x24", low_tw_instance ~seed ~kind:`Sp ~n1:14 ~n2:24 ~m2:52 ~xi:0.5 ~weighted:false);
    ("sp-16x26", low_tw_instance ~seed ~kind:`Sp ~n1:16 ~n2:26 ~m2:56 ~xi:0.5 ~weighted:false);
    (* the weighted proof is much harder for the clique engine, so the
       weighted rows stay small enough that it still closes under the cap *)
    ("sim-tree-12x20", low_tw_instance ~seed ~kind:`Tree ~n1:12 ~n2:20 ~m2:44 ~xi:0.5 ~weighted:true);
    ("sim-sp-10x20", low_tw_instance ~seed ~kind:`Sp ~n1:10 ~n2:20 ~m2:44 ~xi:0.5 ~weighted:true);
  ]

(* safety net only: every tracked instance finishes in far fewer steps on
   both engines; the cap turns a future regression into a loud failure
   instead of a hung CI job *)
let step_cap = 50_000_000

let raw_sim ~weights ~mat m =
  List.fold_left (fun acc (v, u) -> acc +. (weights.(v) *. Simmat.get mat v u)) 0. m

let run_dp ?pool name (t : Phom.Instance.t) weights =
  Printf.eprintf "bench dp: %-16s %-4s %3d pattern nodes...\n%!" name "dp"
    (D.n t.Phom.Instance.g1);
  let b = Budget.create ~steps:step_cap () in
  let objective =
    match weights with
    | None -> Phom.Exact.Cardinality
    | Some w -> Phom.Exact.Similarity w
  in
  let r, seconds =
    Util.timed (fun () -> Phom.Dp.solve ~budget:b ?pool ~objective t)
  in
  if r.Phom.Exact.status <> Budget.Complete then begin
    Printf.eprintf "bench dp: DP did not complete on %s within %d steps\n" name
      step_cap;
    exit 1
  end;
  let optimum =
    match weights with
    | None -> float_of_int (Mapping.size r.Phom.Exact.mapping)
    | Some w -> raw_sim ~weights:w ~mat:t.Phom.Instance.mat r.Phom.Exact.mapping
  in
  {
    name;
    engine = "dp";
    nodes = D.n t.Phom.Instance.g1;
    edges = D.nb_edges t.Phom.Instance.g1;
    seconds;
    steps = Budget.steps_used b;
    optimum;
  }

let run_mwc ?pool name (t : Phom.Instance.t) weights =
  Printf.eprintf "bench dp: %-16s %-4s %3d pattern nodes...\n%!" name "mwc"
    (D.n t.Phom.Instance.g1);
  let p =
    Phom_wis.Product.build ~injective:false ?weights ~g1:t.Phom.Instance.g1
      ~tc2:t.Phom.Instance.tc2 ~mat:t.Phom.Instance.mat ~xi:t.Phom.Instance.xi
      ()
  in
  let g = p.Phom_wis.Product.graph in
  let b = Budget.create ~steps:step_cap () in
  let (optimum, status), seconds =
    Util.timed (fun () ->
        match weights with
        | None ->
            let c, status = Wis.exact_max_clique ?pool ~budget:b g in
            (float_of_int (List.length c), status)
        | Some _ ->
            let _, w, status = Wis.exact_max_weight_clique ?pool ~budget:b g in
            (w, status))
  in
  if status <> Budget.Complete then begin
    Printf.eprintf
      "bench dp: MWC engine did not prove optimality on %s within %d steps\n"
      name step_cap;
    exit 1
  end;
  {
    name;
    engine = "mwc";
    nodes = D.n t.Phom.Instance.g1;
    edges = D.nb_edges t.Phom.Instance.g1;
    seconds;
    steps = Budget.steps_used b;
    optimum;
  }

let json_of ~seed ~jobs rows ~dp_steps ~mwc_steps ~dp_seconds ~mwc_seconds =
  let row_json r =
    Printf.sprintf
      "    {\"name\": %S, \"engine\": %S, \"nodes\": %d, \"edges\": %d, \
       \"optimum\": %.6f, \"steps\": %d, \"seconds\": %.6f}"
      r.name r.engine r.nodes r.edges r.optimum r.steps r.seconds
  in
  Printf.sprintf
    "{\n\
    \  \"seed\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"mwc_steps\": %d,\n\
    \  \"dp_steps\": %d,\n\
    \  \"steps_speedup\": %.3f,\n\
    \  \"mwc_seconds\": %.6f,\n\
    \  \"dp_seconds\": %.6f,\n\
    \  \"instances\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    seed jobs mwc_steps dp_steps
    (if dp_steps > 0 then float_of_int mwc_steps /. float_of_int dp_steps
     else 0.)
    mwc_seconds dp_seconds
    (String.concat ",\n" (List.map row_json rows))

let check_against ~baseline_file ~max_step_regress ~max_time_regress
    ~time_floor rows =
  let baseline = Exact_bench.parse_baseline baseline_file in
  if baseline = [] then begin
    Printf.eprintf "bench dp: no instance rows parsed from %s\n" baseline_file;
    exit 1
  end;
  let violations = ref 0 in
  List.iter
    (fun (name, engine, base_steps, base_seconds) ->
      match
        List.find_opt (fun r -> r.name = name && r.engine = engine) rows
      with
      | None ->
          Printf.eprintf
            "bench dp: tracked instance %s/%s missing from this run\n" name
            engine;
          incr violations
      | Some r ->
          let step_limit =
            int_of_float
              (ceil (float_of_int base_steps *. (1. +. max_step_regress)))
          in
          if r.steps > step_limit then begin
            Printf.eprintf
              "bench dp: %s/%s regressed on steps: %d > %d (baseline %d, \
               +%.0f%% allowed)\n"
              name engine r.steps step_limit base_steps
              (max_step_regress *. 100.);
            incr violations
          end;
          let time_limit =
            (base_seconds *. (1. +. max_time_regress)) +. time_floor
          in
          if r.seconds > time_limit then begin
            Printf.eprintf
              "bench dp: %s/%s regressed on wall-time: %.6fs > %.6fs \
               (baseline %.6fs, +%.0f%% and %.2fs slack)\n"
              name engine r.seconds time_limit base_seconds
              (max_time_regress *. 100.) time_floor;
            incr violations
          end)
    baseline;
  if !violations > 0 then begin
    Printf.eprintf "bench dp: %d perf-gate violation(s) vs %s\n" !violations
      baseline_file;
    exit 1
  end;
  Util.note "perf gate: every tracked instance within bounds of %s"
    baseline_file

let run ~seed ~jobs ~min_step_speedup ~out ?check ~max_step_regress
    ~max_time_regress ~time_floor () =
  Util.heading "Low-treewidth patterns: tree-decomposition DP vs MWC engine";
  let with_pool f =
    if jobs <= 1 then f None
    else Pool.with_pool ~domains:jobs (fun p -> f (Some p))
  in
  with_pool @@ fun pool ->
  let eps = 1e-6 in
  let rows = ref [] in
  List.iter
    (fun (name, (t, weights)) ->
      let dp = run_dp ?pool name t weights in
      let mwc = run_mwc ?pool name t weights in
      if Float.abs (dp.optimum -. mwc.optimum) > eps then begin
        Printf.eprintf
          "bench dp: engines disagree on %s: dp %.6f vs mwc %.6f\n" name
          dp.optimum mwc.optimum;
        exit 1
      end;
      rows := mwc :: dp :: !rows)
    (tracked ~seed);
  let rows = List.rev !rows in
  let sum f pred =
    List.fold_left (fun acc r -> if pred r then acc +. f r else acc) 0. rows
  in
  let dp_steps =
    int_of_float (sum (fun r -> float_of_int r.steps) (fun r -> r.engine = "dp"))
  in
  let mwc_steps =
    int_of_float (sum (fun r -> float_of_int r.steps) (fun r -> r.engine = "mwc"))
  in
  let dp_seconds = sum (fun r -> r.seconds) (fun r -> r.engine = "dp") in
  let mwc_seconds = sum (fun r -> r.seconds) (fun r -> r.engine = "mwc") in
  Util.table
    [ "instance"; "engine"; "g1 nodes"; "g1 edges"; "optimum"; "steps"; "seconds" ]
    (List.map
       (fun r ->
         [
           r.name;
           r.engine;
           string_of_int r.nodes;
           string_of_int r.edges;
           Printf.sprintf "%.2f" r.optimum;
           string_of_int r.steps;
           Util.seconds r.seconds;
         ])
       rows);
  let steps_speedup =
    if dp_steps > 0 then float_of_int mwc_steps /. float_of_int dp_steps
    else infinity
  in
  Util.note "steps: mwc %d vs dp %d (%.1fx); time: %ss vs %ss" mwc_steps
    dp_steps steps_speedup
    (Util.seconds mwc_seconds) (Util.seconds dp_seconds);
  let json =
    json_of ~seed ~jobs rows ~dp_steps ~mwc_steps ~dp_seconds ~mwc_seconds
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  Util.note "wrote %s" out;
  (* engine guard: the router's reason to exist *)
  if steps_speedup < min_step_speedup then begin
    Printf.eprintf
      "bench dp: DP is only %.2fx fewer steps than the MWC engine (required \
       %.1fx)\n"
      steps_speedup min_step_speedup;
    exit 1
  end;
  match check with
  | None -> ()
  | Some baseline_file ->
      check_against ~baseline_file ~max_step_regress ~max_time_regress
        ~time_floor rows
