(* Parallel-runtime smoke bench: sequential vs --jobs N wall-clock on the
   two workloads the domain pool accelerates end to end —

   - component fan-out: a pattern made of many weakly connected components
     solved under [Api.solve_within ~partition:true], one component per
     domain;
   - web matcher: per-version match jobs of [Matcher.accuracy] spread
     across domains.

   Emits BENCH_parallel.json (also printed to stdout) so CI can upload the
   numbers as an artifact and the acceptance speedup is machine-checkable.
   Both workloads assert that the parallel run returns the same answer as
   the sequential one before reporting any timing. *)

module D = Phom_graph.Digraph
module G = Phom_graph.Generators
module Labelsim = Phom_sim.Labelsim
module Api = Phom.Api
module Pool = Phom_parallel.Pool
module Dataset = Phom_web.Dataset
module Matcher = Phom_web.Matcher

type row = {
  name : string;
  seq_seconds : float;
  par_seconds : float;
  equal_output : bool;
}

let disjoint_union gs =
  let labels =
    Array.concat (List.map (fun g -> Array.init (D.n g) (D.label g)) gs)
  in
  let _, edges =
    List.fold_left
      (fun (off, acc) g ->
        let es = List.map (fun (v, w) -> (v + off, w + off)) (D.edges g) in
        (off + D.n g, List.rev_append es acc))
      (0, []) gs
  in
  D.make ~labels ~edges

(* [components] disjoint pattern/data pairs over one shared label pool: the
   union pattern's weakly connected components are exactly the pieces the
   Appendix-B partitioning fans out across the pool *)
let component_workload ~seed ~components ~m () =
  let rng = Random.State.make [| seed |] in
  let g1_0, pool = G.paper_pattern ~rng ~m in
  let fresh_pattern () =
    G.erdos_renyi ~rng ~n:m ~m:(4 * m)
      ~labels:(fun _ -> G.label_name (Random.State.int rng pool.G.nlabels))
  in
  let patterns = g1_0 :: List.init (components - 1) (fun _ -> fresh_pattern ()) in
  let datas = List.map (G.paper_data ~rng ~pool ~noise:0.10) patterns in
  let g1 = disjoint_union patterns and g2 = disjoint_union datas in
  let lsim = Labelsim.make ~pool ~seed in
  let mat = Labelsim.matrix lsim g1 g2 in
  Phom.Instance.make ~g1 ~g2 ~mat ~xi:0.75 ()

let time_one f =
  let x, s = Util.timed f in
  (* one repetition is enough for a smoke bench: both sides run the same
     workload, and CI only checks the ratio *)
  (x, s)

let bench_components ~seed ~components ~m pool =
  let t = component_workload ~seed ~components ~m () in
  let solve p () = Api.solve_within ~partition:true ?pool:p Api.CPH t in
  let r_seq, seq_seconds = time_one (solve None) in
  let r_par, par_seconds = time_one (solve (Some pool)) in
  {
    name = "component-fanout";
    seq_seconds;
    par_seconds;
    equal_output =
      r_seq.Api.quality = r_par.Api.quality
      && r_seq.Api.mapping = r_par.Api.mapping;
  }

let bench_matcher ~seed ~versions pool =
  let rng = Random.State.make [| seed; 1 |] in
  let spec = List.hd (Dataset.sites (Dataset.Reduced 10)) in
  let pattern, later =
    Dataset.archive_skeletons ~rng ~versions ~skeleton:(`Alpha 0.2) spec
  in
  let accuracy p () =
    Matcher.accuracy ?pool:p Matcher.CompMaxCard ~pattern ~versions:later
  in
  let (acc_seq, _), seq_seconds = time_one (accuracy None) in
  let (acc_par, _), par_seconds = time_one (accuracy (Some pool)) in
  {
    name = "web-matcher";
    seq_seconds;
    par_seconds;
    equal_output = acc_seq = acc_par;
  }

let json_of_rows ~jobs rows =
  let row_json r =
    Printf.sprintf
      "    {\"name\": %S, \"seq_seconds\": %.6f, \"par_seconds\": %.6f, \
       \"speedup\": %.3f, \"equal_output\": %b}"
      r.name r.seq_seconds r.par_seconds
      (if r.par_seconds > 0. then r.seq_seconds /. r.par_seconds else 0.)
      r.equal_output
  in
  Printf.sprintf
    "{\n\
    \  \"jobs\": %d,\n\
    \  \"recommended_domains\": %d,\n\
    \  \"workloads\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    jobs
    (Domain.recommended_domain_count ())
    (String.concat ",\n" (List.map row_json rows))

let run ~jobs ~seed ~components ~m ~versions ~out ?(min_speedup = 0.) () =
  Util.heading "Parallel runtime: sequential vs domain pool";
  Util.note "jobs %d (recommended for this machine: %d)" jobs
    (Domain.recommended_domain_count ());
  let rows =
    Pool.with_pool ~domains:jobs (fun pool ->
        [
          bench_components ~seed ~components ~m pool;
          bench_matcher ~seed ~versions pool;
        ])
  in
  Util.table
    [ "workload"; "sequential"; Printf.sprintf "--jobs %d" jobs; "speedup"; "same output" ]
    (List.map
       (fun r ->
         [
           r.name;
           Util.seconds r.seq_seconds;
           Util.seconds r.par_seconds;
           Printf.sprintf "%.2fx"
             (if r.par_seconds > 0. then r.seq_seconds /. r.par_seconds else 0.);
           string_of_bool r.equal_output;
         ])
       rows);
  let json = json_of_rows ~jobs rows in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  Util.note "wrote %s" out;
  if List.exists (fun r -> not r.equal_output) rows then begin
    prerr_endline "parallel output diverged from sequential output";
    exit 1
  end;
  (* optional speedup guard (off by default: pool wins depend on machine
     shape). CI uses an impossible threshold to assert the guard is live. *)
  List.iter
    (fun r ->
      let speedup =
        if r.par_seconds > 0. then r.seq_seconds /. r.par_seconds else 0.
      in
      if speedup < min_speedup then begin
        Printf.eprintf
          "bench parallel: %s speedup %.2fx below the %.2fx guard\n" r.name
          speedup min_speedup;
        exit 1
      end)
    rows
