module D = Phom_graph.Digraph
module Budget = Phom_graph.Budget

type outcome = Found of Phom.Mapping.t | Not_found_ | Gave_up of Phom.Mapping.t

let default_compat g1 g2 v u = String.equal (D.label g1 v) (D.label g2 u)

let find ?node_compat ?budget g1 g2 =
  let budget =
    match budget with Some b -> b | None -> Budget.create ~steps:5_000_000 ()
  in
  let compat =
    match node_compat with Some f -> f | None -> default_compat g1 g2
  in
  let n1 = D.n g1 and n2 = D.n g2 in
  let cands =
    Array.init n1 (fun v ->
        let out = ref [] in
        for u = n2 - 1 downto 0 do
          if
            compat v u
            && D.out_degree g2 u >= D.out_degree g1 v
            && D.in_degree g2 u >= D.in_degree g1 v
            && (not (D.has_edge g1 v v) || D.has_edge g2 u u)
          then out := u :: !out
        done;
        Array.of_list !out)
  in
  if Array.exists (fun row -> Array.length row = 0) cands then Not_found_
  else begin
    let order = Array.init n1 (fun i -> i) in
    Array.sort (fun a b -> compare (Array.length cands.(a)) (Array.length cands.(b))) order;
    let assigned = Array.make n1 (-1) in
    let used = Array.make n2 false in
    (* deepest consistent partial assignment seen — the anytime answer when
       the budget trips (every prefix along [order] is a partial embedding) *)
    let best_depth = ref 0 in
    let best = ref [] in
    let exception Done in
    let consistent v u =
      (not used.(u))
      && Array.for_all
           (fun v' -> assigned.(v') < 0 || D.has_edge g2 u assigned.(v'))
           (D.succ g1 v)
      && Array.for_all
           (fun v' -> assigned.(v') < 0 || D.has_edge g2 assigned.(v') u)
           (D.pred g1 v)
    in
    let rec go k =
      Budget.tick_exn budget;
      if k > !best_depth then begin
        best_depth := k;
        best := List.init k (fun i -> (order.(i), assigned.(order.(i))))
      end;
      if k = n1 then raise Done
      else begin
        let v = order.(k) in
        Array.iter
          (fun u ->
            if consistent v u then begin
              assigned.(v) <- u;
              used.(u) <- true;
              go (k + 1);
              assigned.(v) <- -1;
              used.(u) <- false
            end)
          cands.(v)
      end
    in
    try
      go 0;
      Not_found_
    with
    | Done ->
        Found (Phom.Mapping.normalize (List.init n1 (fun v -> (v, assigned.(v)))))
    | Budget.Exhausted_budget -> Gave_up (Phom.Mapping.normalize !best)
  end

let exists ?node_compat ?budget g1 g2 =
  match find ?node_compat ?budget g1 g2 with
  | Found _ -> Some true
  | Not_found_ -> Some false
  | Gave_up _ -> None

let is_embedding g1 g2 m =
  Phom.Mapping.size m = D.n g1
  && Phom.Mapping.is_injective m
  && List.for_all
       (fun (v, u) ->
         Array.for_all
           (fun v' ->
             match Phom.Mapping.apply m v' with
             | None -> false
             | Some u' -> D.has_edge g2 u u')
           (D.succ g1 v))
       m

let is_partial_embedding g1 g2 m =
  Phom.Mapping.is_injective m
  && List.for_all
       (fun (v, u) ->
         Array.for_all
           (fun v' ->
             match Phom.Mapping.apply m v' with
             | None -> true
             | Some u' -> D.has_edge g2 u u')
           (D.succ g1 v))
       m
