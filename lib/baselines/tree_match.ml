module D = Phom_graph.Digraph
module BM = Phom_graph.Bitmatrix
module Bitset = Phom_graph.Bitset
module Instance = Phom.Instance

let is_tree g =
  let ok = ref (Phom_graph.Traversal.is_dag g) in
  for v = 0 to D.n g - 1 do
    if D.in_degree g v > 1 then ok := false
  done;
  !ok

(* children before parents: reverse topological order of the forest *)
let bottom_up_order g =
  match Phom_graph.Traversal.topological_order g with
  | Some order -> List.rev order
  | None -> invalid_arg "Tree_match: pattern is not a forest"

let supports (t : Instance.t) =
  if not (is_tree t.g1) then invalid_arg "Tree_match: pattern is not a forest";
  let n1 = D.n t.g1 and n2 = D.n t.g2 in
  let cands = Instance.candidates t in
  let supp = Array.init n1 (fun _ -> Bitset.create n2) in
  List.iter
    (fun v ->
      Array.iter
        (fun u ->
          let children_ok =
            Array.for_all
              (fun v' ->
                Bitset.fold
                  (fun u' ok -> ok || BM.get t.tc2 u u')
                  supp.(v') false)
              (D.succ t.g1 v)
          in
          if children_ok then Bitset.add supp.(v) u)
        cands.(v))
    (bottom_up_order t.g1);
  supp

let roots g =
  List.filter (fun v -> D.in_degree g v = 0) (List.init (D.n g) Fun.id)

let decide (t : Instance.t) =
  let supp = supports t in
  (* a total mapping exists iff every node has a supporter; for forests it
     is enough to check the roots, since a root supporter certifies the
     whole subtree — but nodes unreachable from any root do not exist in a
     forest, so check roots only *)
  List.for_all (fun r -> not (Bitset.is_empty supp.(r))) (roots t.g1)

let witness (t : Instance.t) =
  let supp = supports t in
  if not (List.for_all (fun r -> not (Bitset.is_empty supp.(r))) (roots t.g1))
  then None
  else begin
    let mapping = ref [] in
    (* top-down: give each node a supporter reachable from its parent's
       choice (choose the smallest; any works) *)
    let rec assign v u =
      mapping := (v, u) :: !mapping;
      Array.iter
        (fun v' ->
          let chosen =
            Bitset.fold
              (fun u' acc ->
                match acc with
                | Some _ -> acc
                | None -> if BM.get t.tc2 u u' then Some u' else None)
              supp.(v') None
          in
          match chosen with
          | Some u' -> assign v' u'
          | None -> assert false (* contradicts v ∈ supp *))
        (D.succ t.g1 v)
    in
    List.iter
      (fun r ->
        match Bitset.choose supp.(r) with
        | Some u -> assign r u
        | None -> assert false)
      (roots t.g1);
    Some (Phom.Mapping.normalize !mapping)
  end

let count_embeddings (t : Instance.t) =
  if not (is_tree t.g1) then invalid_arg "Tree_match: pattern is not a forest";
  let n1 = D.n t.g1 and n2 = D.n t.g2 in
  let cands = Instance.candidates t in
  (* count.(v).(u) = number of total mappings of v's subtree with σ(v)=u *)
  let count = Array.make_matrix n1 n2 0. in
  List.iter
    (fun v ->
      Array.iter
        (fun u ->
          let product =
            Array.fold_left
              (fun acc v' ->
                let reachable_total = ref 0. in
                for u' = 0 to n2 - 1 do
                  if BM.get t.tc2 u u' then
                    reachable_total := !reachable_total +. count.(v').(u')
                done;
                acc *. !reachable_total)
              1. (D.succ t.g1 v)
          in
          count.(v).(u) <- product)
        cands.(v))
    (bottom_up_order t.g1);
  List.fold_left
    (fun acc r -> acc *. Array.fold_left ( +. ) 0. count.(r))
    1. (roots t.g1)
