module D = Phom_graph.Digraph
module Bitset = Phom_graph.Bitset
module Budget = Phom_graph.Budget

let default_compat g1 g2 v u = String.equal (D.label g1 v) (D.label g2 u)

type engine = Naive | Hhk

let resolve = function Some b -> b | None -> Budget.unlimited ()

(* All three fixpoints refine downward from the full compatibility relation,
   so stopping early returns an over-approximation of the greatest
   simulation: every truly simulating pair is still present, but some pairs
   that further rounds would prune may remain. Conservative for the match
   rule (no missed matches, possibly spurious ones) — the mirror image of
   the closure under-approximation. *)

(* HHK counting refinement: cnt.(v).(u) = |succ2(u) ∩ sim(v)|; a pair (v,u)
   dies when some pattern child v' of v has cnt.(v').(u) = 0, and every
   death decrements the counters of the data predecessors. *)
let compute_hhk ?budget compat g1 g2 =
  let budget = resolve budget in
  let n1 = D.n g1 and n2 = D.n g2 in
  let sim =
    Array.init n1 (fun v ->
        let s = Bitset.create n2 in
        for u = 0 to n2 - 1 do
          if compat v u then Bitset.add s u
        done;
        s)
  in
  let cnt = Array.make_matrix n1 n2 0 in
  for v = 0 to n1 - 1 do
    for u = 0 to n2 - 1 do
      Array.iter
        (fun u' -> if Bitset.mem sim.(v) u' then cnt.(v).(u) <- cnt.(v).(u) + 1)
        (D.succ g2 u)
    done
  done;
  let queue = Queue.create () in
  (* kill is idempotent, so every pair enters the queue at most once and the
     counters decrement exactly once per genuine removal *)
  let kill v u =
    if Bitset.mem sim.(v) u then begin
      Bitset.remove sim.(v) u;
      Queue.add (v, u) queue
    end
  in
  (try
     (* initial sweep: pairs whose children are unsupported from the start *)
     for v = 0 to n1 - 1 do
       Budget.tick_exn budget;
       let victims =
         Bitset.fold
           (fun u acc ->
             if Array.exists (fun v' -> cnt.(v').(u) = 0) (D.succ g1 v) then
               u :: acc
             else acc)
           sim.(v) []
       in
       List.iter (fun u -> kill v u) victims
     done;
     while not (Queue.is_empty queue) do
       Budget.tick_exn budget;
       let v', u' = Queue.pop queue in
       (* (v',u') has left sim: data predecessors of u' lose one supporter of
          pattern node v' *)
       Array.iter
         (fun u ->
           cnt.(v').(u) <- cnt.(v').(u) - 1;
           if cnt.(v').(u) = 0 then Array.iter (fun v -> kill v u) (D.pred g1 v'))
         (D.pred g2 u')
     done
   with Budget.Exhausted_budget -> ());
  sim

let compute_with ?budget compat g1 g2 =
  let budget = resolve budget in
  let n1 = D.n g1 and n2 = D.n g2 in
  let sim =
    Array.init n1 (fun v ->
        let s = Bitset.create n2 in
        for u = 0 to n2 - 1 do
          if compat v u then Bitset.add s u
        done;
        s)
  in
  (* prune u from sim(v) when some child of v has no simulating successor of
     u; iterate to the greatest fixpoint *)
  (try
     let changed = ref true in
     while !changed do
       changed := false;
       for v = 0 to n1 - 1 do
         Budget.tick_exn budget;
         let bad = ref [] in
         Bitset.iter
           (fun u ->
             let ok =
               Array.for_all
                 (fun v' ->
                   Array.exists (fun u' -> Bitset.mem sim.(v') u') (D.succ g2 u))
                 (D.succ g1 v)
             in
             if not ok then bad := u :: !bad)
           sim.(v);
         if !bad <> [] then begin
           changed := true;
           List.iter (Bitset.remove sim.(v)) !bad
         end
       done
     done
   with Budget.Exhausted_budget -> ());
  sim

let compute ?(engine = Hhk) ?node_compat ?budget g1 g2 =
  let compat =
    match node_compat with Some f -> f | None -> default_compat g1 g2
  in
  match engine with
  | Naive -> compute_with ?budget compat g1 g2
  | Hhk -> compute_hhk ?budget compat g1 g2

let of_simmat ?budget ~mat ~xi g1 g2 =
  compute_hhk ?budget (fun v u -> Phom_sim.Simmat.get mat v u >= xi) g1 g2

let dual ?node_compat ?budget g1 g2 =
  let compat =
    match node_compat with Some f -> f | None -> default_compat g1 g2
  in
  let budget = resolve budget in
  let n1 = D.n g1 and n2 = D.n g2 in
  let sim =
    Array.init n1 (fun v ->
        let s = Bitset.create n2 in
        for u = 0 to n2 - 1 do
          if compat v u then Bitset.add s u
        done;
        s)
  in
  (try
     let changed = ref true in
     while !changed do
       changed := false;
       for v = 0 to n1 - 1 do
         Budget.tick_exn budget;
         let bad =
           Bitset.fold
             (fun u acc ->
               let child_ok =
                 Array.for_all
                   (fun v' ->
                     Array.exists (fun u' -> Bitset.mem sim.(v') u') (D.succ g2 u))
                   (D.succ g1 v)
               in
               let parent_ok =
                 Array.for_all
                   (fun v'' ->
                     Array.exists (fun u'' -> Bitset.mem sim.(v'') u'') (D.pred g2 u))
                   (D.pred g1 v)
               in
               if child_ok && parent_ok then acc else u :: acc)
             sim.(v) []
         in
         if bad <> [] then begin
           changed := true;
           List.iter (Bitset.remove sim.(v)) bad
         end
       done
     done
   with Budget.Exhausted_budget -> ());
  sim

let matches_whole_graph sim =
  Array.for_all (fun s -> not (Bitset.is_empty s)) sim

let is_simulation ?node_compat g1 g2 sim =
  let compat =
    match node_compat with Some f -> f | None -> default_compat g1 g2
  in
  let ok = ref (Array.length sim = D.n g1) in
  Array.iteri
    (fun v s ->
      Bitset.iter
        (fun u ->
          if not (compat v u) then ok := false;
          Array.iter
            (fun v' ->
              if
                not
                  (Array.exists (fun u' -> Bitset.mem sim.(v') u') (D.succ g2 u))
              then ok := false)
            (D.succ g1 v))
        s)
    sim;
  !ok
