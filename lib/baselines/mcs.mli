(** Maximum common (induced) subgraph — our stand-in for the cdkMCS baseline
    [1] of the experiments.

    Implemented the classical way: build the modular product of the two
    graphs (label-compatible node pairs; two pairs adjacent iff they agree
    on edges in both directions) and find a {e maximum clique} exactly with
    branch and bound. Exact and exponential — on the α=0.2 skeletons it
    exhausts any reasonable budget, reproducing the paper's "cdkMCS did not
    run to completion"; on top-20 skeletons it finishes. *)

type outcome =
  | Completed of Phom.Mapping.t
      (** node pairs of a maximum common induced subgraph *)
  | Timed_out of Phom.Mapping.t
      (** budget exhausted; carries the largest common subgraph found so
          far (valid per {!is_common_subgraph}, possibly empty) *)

val run :
  ?node_compat:(int -> int -> bool) ->
  ?budget:Phom_graph.Budget.t ->
  Phom_graph.Digraph.t ->
  Phom_graph.Digraph.t ->
  outcome
(** [budget] covers both the modular-product construction (one tick per
    product row) and the clique search (one tick per search node); defaults
    to a fresh 10⁷-step token. [node_compat] defaults to label equality.
    Pass [Budget.create ~timeout:secs ()] to reproduce the old
    [time_limit] behaviour. *)

val quality : Phom_graph.Digraph.t -> Phom.Mapping.t -> float
(** [|mapping| / |V1|] — the MCS instance of [qualCard] (MCS is the special
    case of CPH¹⁻¹, Section 3.3). *)

val is_common_subgraph :
  Phom_graph.Digraph.t -> Phom_graph.Digraph.t -> Phom.Mapping.t -> bool
(** Test oracle: the mapping is injective and edge-agreeing in both
    directions (induced-subgraph isomorphism between the two sides). *)
