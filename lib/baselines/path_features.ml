module D = Phom_graph.Digraph

let fnv_prime = 0x100000001b3

let hash_extend h label =
  let h = ref h in
  String.iter (fun c -> h := (!h lxor Char.code c) * fnv_prime) label;
  (!h lxor 0xff) * fnv_prime

let seed_hash = 0x4bf29ce484222325

let features ?(max_len = 3) ?(cap = 200_000) g =
  let out = Hashtbl.create 1024 in
  let budget = ref cap in
  let rec walk v h len =
    if !budget > 0 then begin
      decr budget;
      let h = hash_extend h (D.label g v) in
      Hashtbl.replace out (h land max_int) ();
      if len < max_len then Array.iter (fun w -> walk w h (len + 1)) (D.succ g v)
    end
  in
  for v = 0 to D.n g - 1 do
    walk v seed_hash 1
  done;
  let arr = Array.of_seq (Hashtbl.to_seq_keys out) in
  Array.sort compare arr;
  arr

let similarity ?max_len ?cap g1 g2 =
  Phom_sim.Shingle.jaccard (features ?max_len ?cap g1) (features ?max_len ?cap g2)

let matches ?max_len ?(threshold = 0.75) g1 g2 =
  similarity ?max_len g1 g2 >= threshold
