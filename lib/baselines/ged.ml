module D = Phom_graph.Digraph
module Assignment = Phom_wis.Assignment

type costs = {
  node_sub : int -> int -> float;
  node_indel : float;
  edge_indel : float;
}

let default_costs g1 g2 =
  {
    node_sub =
      (fun v u -> if String.equal (D.label g1 v) (D.label g2 u) then 0. else 1.);
    node_indel = 1.;
    edge_indel = 1.;
  }

let costs_of_simmat mat =
  {
    node_sub = (fun v u -> 1. -. Phom_sim.Simmat.get mat v u);
    node_indel = 1.;
    edge_indel = 1.;
  }

(* (n1+n2) × (n2+n1) cost matrix:
     top-left      n1×n2  substitutions (label + local edge mismatch)
     top-right     n1×n1  deletions (diagonal; ∞ off it)
     bottom-left   n2×n2  insertions (diagonal; ∞ off it)
     bottom-right  n2×n1  zeros (ε → ε)                          *)
let approx ?costs ?budget g1 g2 =
  let c = match costs with Some c -> c | None -> default_costs g1 g2 in
  let n1 = D.n g1 and n2 = D.n g2 in
  if n1 = 0 && n2 = 0 then 0.
  else begin
    let big = 1e9 in
    let deg_out g v = float_of_int (D.out_degree g v) in
    let deg_in g v = float_of_int (D.in_degree g v) in
    let size = n1 + n2 in
    let cost = Array.make_matrix size size 0. in
    for v = 0 to n1 - 1 do
      for u = 0 to n2 - 1 do
        (* local edge term: unmatched degree differences, each mismatched
           edge end charged half an edge operation on each side *)
        let edge_term =
          c.edge_indel
          *. (Float.abs (deg_out g1 v -. deg_out g2 u)
             +. Float.abs (deg_in g1 v -. deg_in g2 u))
          /. 2.
        in
        cost.(v).(u) <- c.node_sub v u +. edge_term
      done;
      for j = 0 to n1 - 1 do
        cost.(v).(n2 + j) <-
          (if j = v then
             c.node_indel +. (c.edge_indel *. (deg_out g1 v +. deg_in g1 v) /. 2.)
           else big)
      done
    done;
    for i = 0 to n2 - 1 do
      for u = 0 to n2 - 1 do
        cost.(n1 + i).(u) <-
          (if u = i then
             c.node_indel +. (c.edge_indel *. (deg_out g2 u +. deg_in g2 u) /. 2.)
           else big)
      done
      (* bottom-right block stays 0 *)
    done;
    (* A half-finished assignment has no usable partial answer; fall back to
       the trivial upper bound (delete one graph, insert the other) when the
       budget trips — still an upper bound on the true edit distance, so
       [similarity] degrades monotonically towards 0. *)
    match Assignment.minimize ?budget cost with
    | _, total -> total
    | exception Phom_graph.Budget.Exhausted_budget ->
        (c.node_indel *. float_of_int (n1 + n2))
        +. (c.edge_indel *. float_of_int (D.nb_edges g1 + D.nb_edges g2))
  end

let ged_max ?costs g1 g2 =
  let c = match costs with Some c -> c | None -> default_costs g1 g2 in
  (c.node_indel *. float_of_int (D.n g1 + D.n g2))
  +. (c.edge_indel *. float_of_int (D.nb_edges g1 + D.nb_edges g2))

let similarity ?costs ?budget g1 g2 =
  if D.n g1 = 0 && D.n g2 = 0 then 1.0
  else begin
    let mx = ged_max ?costs g1 g2 in
    if mx <= 0. then 1.0
    else Float.max 0. (1. -. (approx ?costs ?budget g1 g2 /. mx))
  end

let matches ?costs ?budget ?(threshold = 0.75) g1 g2 =
  similarity ?costs ?budget g1 g2 >= threshold
