(** Approximate graph edit distance (Riesen–Bunke bipartite/assignment GED)
    — the edit-distance similarity measure of Zeng et al. [31] that the
    paper's Related Work classifies under structure-based approaches
    ("essentially based on subgraph isomorphism").

    Exact GED is itself NP-hard, so the standard practical algorithm
    assigns nodes by a minimum-cost bipartite assignment over
    substitution/insertion/deletion costs (with local edge-degree terms
    standing in for the quadratic edge costs) — an upper bound on the true
    edit distance, computed in O(n³). *)

type costs = {
  node_sub : int -> int -> float;
      (** cost of substituting pattern node [v] by data node [u] *)
  node_indel : float;  (** node insertion/deletion cost, per node *)
  edge_indel : float;  (** edge insertion/deletion cost, per edge *)
}

val default_costs :
  Phom_graph.Digraph.t -> Phom_graph.Digraph.t -> costs
(** Label equality: substitution is free on equal labels and costs 1
    otherwise; insert/delete cost 1 each. *)

val costs_of_simmat : Phom_sim.Simmat.t -> costs
(** Substitution cost [1 − mat(v, u)] — the similarity-aware variant. *)

val approx :
  ?costs:costs ->
  ?budget:Phom_graph.Budget.t ->
  Phom_graph.Digraph.t ->
  Phom_graph.Digraph.t ->
  float
(** The assignment-based GED upper bound. 0 for identical graphs. An
    exhausted [budget] falls back to the trivial upper bound (delete one
    graph, insert the other) — still an upper bound, never raises. *)

val similarity :
  ?costs:costs ->
  ?budget:Phom_graph.Budget.t ->
  Phom_graph.Digraph.t ->
  Phom_graph.Digraph.t ->
  float
(** [1 − ged / ged_max] where [ged_max] deletes one graph and inserts the
    other; in [[0, 1]], 1.0 for identical graphs. Under an exhausted
    [budget] this degrades towards 0 (never above the unbudgeted value). *)

val matches :
  ?costs:costs ->
  ?budget:Phom_graph.Budget.t ->
  ?threshold:float ->
  Phom_graph.Digraph.t ->
  Phom_graph.Digraph.t ->
  bool
(** [similarity ≥ threshold] (default 0.75). *)
