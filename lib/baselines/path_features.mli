(** The feature-based similarity approach (Joshi et al.'s bag-of-paths [18])
    — named by the paper's conclusion as the comparison left to future work,
    implemented here so the comparison can actually run.

    A graph's features are the label sequences of its walks of length
    1..[max_len]; two graphs are similar when their feature sets overlap
    (Jaccard). As the paper (citing [25, 30]) predicts, the measure ignores
    global connectivity: graphs with the same local paths but different
    wiring score 1.0 — see the ablation bench. *)

val features : ?max_len:int -> ?cap:int -> Phom_graph.Digraph.t -> int array
(** Sorted distinct hashes of the label paths of length 1..[max_len]
    (default 3). Enumeration stops after [cap] (default 200,000) walks —
    feature extraction must stay cheap or the approach loses its one
    advantage. *)

val similarity :
  ?max_len:int -> ?cap:int -> Phom_graph.Digraph.t -> Phom_graph.Digraph.t -> float
(** Jaccard coefficient of the two feature sets (1.0 when both empty). *)

val matches :
  ?max_len:int -> ?threshold:float -> Phom_graph.Digraph.t -> Phom_graph.Digraph.t -> bool
(** [similarity ≥ threshold] (default 0.75). *)
