(** Exact polynomial-time p-hom matching for {e tree} (and forest) patterns
    — the tractable fragment behind the stack-based DAG matching of Chen et
    al. [10] and the fragment-based XML retrieval of Sanz et al. [24].

    For a tree pattern the plain p-hom decision collapses to a bottom-up
    fixpoint: [u] supports [v] iff [mat(v,u) ≥ ξ] and every child of [v] has
    a supporter reachable from [u] by a non-empty path. Siblings impose no
    mutual constraints (a plain p-hom mapping may reuse data nodes), so the
    supports are exact — giving a PTIME decision, witness extraction and
    embedding counting.

    This makes the paper's complexity landscape tangible: plain p-hom for
    tree patterns is in P (this module), while {e 1-1} p-hom is NP-hard
    already for a tree pattern and a DAG data graph (Theorem 4.1(b), the X3C
    gadget of {!Phom.Reductions}). *)

val is_tree : Phom_graph.Digraph.t -> bool
(** Is the pattern a forest of rooted trees (every node has in-degree ≤ 1,
    no cycles)? *)

val supports : Phom.Instance.t -> Phom_graph.Bitset.t array
(** [supports t].(v) = the exact set of data nodes that can be [σ(v)] in
    some total p-hom mapping of the subtree rooted at [v]. Raises
    [Invalid_argument] if [t.g1] is not a forest. *)

val decide : Phom.Instance.t -> bool
(** [G1 ⪯(e,p) G2] for a forest pattern, in O(|V1|·|V2|² + closure) time. *)

val witness : Phom.Instance.t -> Phom.Mapping.t option
(** A total p-hom mapping when one exists (top-down extraction). *)

val count_embeddings : Phom.Instance.t -> float
(** Number of distinct total p-hom mappings (as a float — counts explode
    combinatorially). 1.0 for the empty pattern. *)
