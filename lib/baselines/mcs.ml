module D = Phom_graph.Digraph
module Budget = Phom_graph.Budget
module Ungraph = Phom_wis.Ungraph
module Wis = Phom_wis.Wis

type outcome = Completed of Phom.Mapping.t | Timed_out of Phom.Mapping.t

let default_compat g1 g2 v u = String.equal (D.label g1 v) (D.label g2 u)

let modular_product budget compat g1 g2 =
  let n2 = D.n g2 in
  let pairs = ref [] in
  for v = D.n g1 - 1 downto 0 do
    for u = n2 - 1 downto 0 do
      if compat v u && D.has_edge g1 v v = D.has_edge g2 u u then
        pairs := (v, u) :: !pairs
    done
  done;
  let pairs = Array.of_list !pairs in
  let np = Array.length pairs in
  let edges = ref [] in
  (* Budget trips mid-construction leave a prefix of the edge rows: the
     partial product is a subgraph of the full one, so any clique found in
     it is still a valid (if smaller) common subgraph. *)
  (try
     for i = 0 to np - 1 do
       Budget.tick_exn budget;
       let v1, u1 = pairs.(i) in
       for j = i + 1 to np - 1 do
         let v2, u2 = pairs.(j) in
         if
           v1 <> v2 && u1 <> u2
           && D.has_edge g1 v1 v2 = D.has_edge g2 u1 u2
           && D.has_edge g1 v2 v1 = D.has_edge g2 u2 u1
         then edges := (i, j) :: !edges
       done
     done
   with Budget.Exhausted_budget -> ());
  (Ungraph.create np !edges, pairs)

let run ?node_compat ?budget g1 g2 =
  let budget =
    match budget with Some b -> b | None -> Budget.create ~steps:10_000_000 ()
  in
  let compat =
    match node_compat with Some f -> f | None -> default_compat g1 g2
  in
  let product, pairs = modular_product budget compat g1 g2 in
  let clique, status = Wis.exact_max_clique ~budget product in
  let m = Phom.Mapping.normalize (List.map (fun i -> pairs.(i)) clique) in
  match status with
  | Budget.Complete -> Completed m
  | Budget.Exhausted _ -> Timed_out m

let quality g1 m =
  if D.n g1 = 0 then 1.0
  else float_of_int (Phom.Mapping.size m) /. float_of_int (D.n g1)

let is_common_subgraph g1 g2 m =
  Phom.Mapping.is_function m && Phom.Mapping.is_injective m
  && List.for_all
       (fun (v1, u1) ->
         List.for_all
           (fun (v2, u2) ->
             v1 = v2
             || (D.has_edge g1 v1 v2 = D.has_edge g2 u1 u2
                && D.has_edge g1 v2 v1 = D.has_edge g2 u2 u1))
           m)
       m
