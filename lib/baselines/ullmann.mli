(** Subgraph isomorphism (Ullmann-style backtracking with forward checking)
    — the conventional 1-1 edge-to-edge matching notion [9] that 1-1 p-hom
    relaxes.

    Semantics: an injective mapping of {e all} of [G1]'s nodes such that
    every edge of [G1] maps to an edge of [G2] (non-induced: extra [G2]
    edges between images are allowed). *)

type outcome =
  | Found of Phom.Mapping.t
  | Not_found_
  | Gave_up of Phom.Mapping.t
      (** budget exhausted; carries the deepest consistent {e partial}
          embedding reached (valid per {!is_partial_embedding}, possibly
          empty) *)

val find :
  ?node_compat:(int -> int -> bool) ->
  ?budget:Phom_graph.Budget.t ->
  Phom_graph.Digraph.t ->
  Phom_graph.Digraph.t ->
  outcome
(** [node_compat] defaults to label equality; [budget] defaults to a fresh
    5·10⁶-step token (one tick per search node). *)

val exists :
  ?node_compat:(int -> int -> bool) ->
  ?budget:Phom_graph.Budget.t ->
  Phom_graph.Digraph.t ->
  Phom_graph.Digraph.t ->
  bool option
(** [Some true/false], or [None] when the budget ran out. *)

val is_embedding :
  Phom_graph.Digraph.t -> Phom_graph.Digraph.t -> Phom.Mapping.t -> bool
(** Test oracle: total, injective, edge-preserving. *)

val is_partial_embedding :
  Phom_graph.Digraph.t -> Phom_graph.Digraph.t -> Phom.Mapping.t -> bool
(** Test oracle for anytime results: injective and edge-preserving on the
    mapped nodes only (edges with an unmapped endpoint are unconstrained). *)
