(** Graph simulation (Henzinger, Henzinger, Kopke — FOCS 1995 [17]), the
    "graphSimulation" baseline of the experiments.

    A relation [R ⊆ V1 × V2] is a simulation iff [v R u] implies (a) the
    nodes are compatible and (b) for every edge [v → v'] of [G1] there is an
    edge [u → u'] of [G2] with [v' R u']. The {e maximal} simulation is the
    greatest fixpoint of candidate refinement; we compute it by iterated
    pruning. Edges map to {e edges} — which is exactly why this baseline
    finds no matches once an edge is replaced by a path. *)

(** Fixpoint engine. [Naive] re-scans every pair per round (easy to audit,
    O(n²·m) worst case); [Hhk] is the Henzinger–Henzinger–Kopke
    counting-based refinement the paper cites — per candidate pair it
    maintains, for every [G2] successor, the number of its children still
    simulating, and propagates removals through a worklist, giving
    O(|V1|·|E2| + |E1|·|V2|)-ish behaviour. Both compute the same greatest
    simulation (property-tested). *)
type engine = Naive | Hhk

val compute :
  ?engine:engine ->
  ?node_compat:(int -> int -> bool) ->
  ?budget:Phom_graph.Budget.t ->
  Phom_graph.Digraph.t ->
  Phom_graph.Digraph.t ->
  Phom_graph.Bitset.t array
(** [compute g1 g2].(v) is the set of [G2] nodes that simulate [v].
    [node_compat] defaults to label equality; [engine] to [Hhk].

    The fixpoint refines downward from full compatibility, so an exhausted
    [budget] (one tick per worklist pop / fixpoint row) stops the pruning
    early and returns an {e over-approximation} of the greatest simulation:
    no truly simulating pair is ever missing, some doomed pairs may remain
    — conservative for {!matches_whole_graph}. *)

val of_simmat :
  ?budget:Phom_graph.Budget.t ->
  mat:Phom_sim.Simmat.t ->
  xi:float ->
  Phom_graph.Digraph.t ->
  Phom_graph.Digraph.t ->
  Phom_graph.Bitset.t array
(** Same, with [mat(v,u) ≥ ξ] as the compatibility predicate — simulation on
    the same footing the p-hom algorithms get. *)

val dual :
  ?node_compat:(int -> int -> bool) ->
  ?budget:Phom_graph.Budget.t ->
  Phom_graph.Digraph.t ->
  Phom_graph.Digraph.t ->
  Phom_graph.Bitset.t array
(** {e Dual} simulation (an extension beyond the paper, from the same
    group's follow-up work): the child condition of plain simulation plus
    the symmetric parent condition — every incoming pattern edge must also
    be matched by an incoming data edge. Strictly contained in {!compute}'s
    relation; still an edge-to-edge notion, so subdivisions break it too. *)

val matches_whole_graph : Phom_graph.Bitset.t array -> bool
(** The baseline's match rule: every [G1] node is simulated by some node. *)

val is_simulation :
  ?node_compat:(int -> int -> bool) ->
  Phom_graph.Digraph.t ->
  Phom_graph.Digraph.t ->
  Phom_graph.Bitset.t array ->
  bool
(** Test oracle: does the relation satisfy the simulation conditions? *)
