module D = Phom_graph.Digraph
module BM = Phom_graph.Bitmatrix
module Simmat = Phom_sim.Simmat

(* Repair a mapping found against an earlier version of the instance so it
   is valid for the current one. Local by construction: pairs the edit did
   not disturb survive untouched, so the repaired incumbent keeps most of
   the previous answer's quality after a small edit.

   1. drop pairs that are no longer admissible candidates (out of range,
      below the similarity threshold, or a self-looped pattern node mapped
      to a node off every cycle);
   2. make it a function again (first pair per pattern node wins; under
      injectivity first pair per data node too);
   3. while some pattern edge between mapped nodes has no non-empty path
      between the images, drop the mapped node breaking the most edges
      (ties: the smallest node id, so repair is deterministic). *)

let repair ?(injective = false) (t : Instance.t) m =
  let admissible (v, u) =
    v >= 0
    && v < D.n t.g1
    && u >= 0
    && u < D.n t.g2
    && Simmat.get t.mat v u >= t.xi
    && ((not (D.has_edge t.g1 v v)) || BM.get t.tc2 u u)
  in
  let sorted = List.stable_sort compare (List.filter admissible m) in
  let used = Hashtbl.create 16 in
  let _, rev =
    List.fold_left
      (fun (prev, acc) (v, u) ->
        if v = prev || (injective && Hashtbl.mem used u) then (prev, acc)
        else begin
          if injective then Hashtbl.add used u ();
          (v, (v, u) :: acc)
        end)
      (-1, []) sorted
  in
  let rec fix m =
    let viol = Hashtbl.create 16 in
    let bump v =
      Hashtbl.replace viol v
        (1 + Option.value ~default:0 (Hashtbl.find_opt viol v))
    in
    List.iter
      (fun (v, u) ->
        List.iter
          (fun (v', u') ->
            if D.has_edge t.g1 v v' && not (BM.get t.tc2 u u') then begin
              bump v;
              bump v'
            end)
          m)
      m;
    if Hashtbl.length viol = 0 then m
    else begin
      let worst, _ =
        Hashtbl.fold
          (fun v c (bv, bc) ->
            if c > bc || (c = bc && v < bv) then (v, c) else (bv, bc))
          viol (max_int, 0)
      in
      fix (List.filter (fun (v, _) -> v <> worst) m)
    end
  in
  fix (List.rev rev)
