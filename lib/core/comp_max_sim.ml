module ML = Matching_list
module D = Phom_graph.Digraph
module Simmat = Phom_sim.Simmat

let pair_weight (t : Instance.t) weights v u = weights.(v) *. Simmat.get t.mat v u

let weight_groups (t : Instance.t) weights cands =
  let n1 = D.n t.g1 and n2 = D.n t.g2 in
  let w_max = ref 0. in
  Array.iteri
    (fun v row ->
      Array.iter (fun u -> w_max := Float.max !w_max (pair_weight t weights v u)) row)
    cands;
  if !w_max <= 0. then []
  else begin
    let total = max 2 (n1 * n2) in
    let classes = max 1 (int_of_float (ceil (log (float_of_int total) /. log 2.))) in
    let floor_w = !w_max /. float_of_int total in
    let groups = Array.make classes [] in
    Array.iteri
      (fun v row ->
        Array.iter
          (fun u ->
            let w = pair_weight t weights v u in
            if w >= floor_w then begin
              let i =
                min (classes - 1) (max 0 (int_of_float (log (!w_max /. w) /. log 2.)))
              in
              groups.(i) <- (v, u) :: groups.(i)
            end)
          row)
      cands;
    Array.to_list groups |> List.filter (fun g -> g <> [])
  end

let matching_list_of_pairs pairs =
  List.fold_left
    (fun h (v, u) ->
      Matching_list.set_good h v (ML.Int_set.add u (Matching_list.good h v)))
    ML.empty pairs

let run ?(injective = false) ?budget ?weights ?pick (t : Instance.t) =
  let budget =
    match budget with Some b -> b | None -> Phom_graph.Budget.unlimited ()
  in
  let weights =
    match weights with None -> Array.make (D.n t.g1) 1. | Some w -> w
  in
  if Array.length weights <> D.n t.g1 then
    invalid_arg "Comp_max_sim.run: weights length mismatch";
  Phom_obs.Obs.span "comp_max_sim" (fun () ->
      let cands = Instance.candidates t in
      let full = ML.of_candidates cands in
      let groups = weight_groups t weights cands in
      Phom_obs.Obs.add
        (Phom_obs.Obs.counter "phom_solver_sim_groups_total")
        (List.length groups);
      let candidates_lists = full :: List.map matching_list_of_pairs groups in
      let score = Instance.qual_sim ~weights t in
      (* the weight groups share one token; once it trips, the remaining
         groups are skipped and the best mapping scored so far is returned *)
      List.fold_left
        (fun best h ->
          if Phom_graph.Budget.exhausted budget then best
          else begin
            let m = Comp_max_card.run_on ~injective ~budget ?pick t h in
            if score m > score best then m else best
          end)
        [] candidates_lists)
