(** The tree-decomposition DP as an exact solver over an {!Instance.t} —
    the thin adapter between {!Phom_treedecomp.Dp_exact} (which works on
    raw graphs and candidate rows) and the rest of the core.

    For p-hom problems the DP is exact on its own and runs in
    O(Σ_bags |cands|^{bag+1}) — polynomial for bounded-width patterns,
    which is why {!Api.solve_within} auto-selects it when the computed
    width is small. For the 1-1 problems the DP solves the non-injective
    relaxation first: when the witness happens to be injective it is
    provably optimal for the 1-1 problem too (the relaxation bounds it
    from above and the witness is feasible); otherwise the call falls back
    to the branch-and-bound on the same budget. *)

val width : ?heuristic:Phom_treedecomp.Treedecomp.heuristic -> Instance.t -> int
(** Width of the greedy decomposition of [g1] — the auto-selection probe.
    [-1] for an empty pattern. *)

val solve :
  ?injective:bool ->
  ?budget:Phom_graph.Budget.t ->
  ?pool:Phom_parallel.Pool.t ->
  objective:Exact.objective ->
  Instance.t ->
  Exact.outcome
(** Same contract as {!Exact.solve}: the optimal (1-1 when [injective])
    p-hom mapping, one budget tick per DP table row (per search node in
    the 1-1 fallback), anytime best-so-far on a trip. A tripped DP
    surrenders the empty mapping — valid, but carrying no quality. *)

type count_result = {
  count : int;  (** total valid p-hom mappings, saturating at [max_int] *)
  exact : bool;  (** false when saturated or the budget tripped *)
  width : int;  (** computed decomposition width of [g1] *)
  status : Phom_graph.Budget.status;
}

val count :
  ?budget:Phom_graph.Budget.t ->
  ?pool:Phom_parallel.Pool.t ->
  Instance.t ->
  count_result
(** Number of total valid p-hom mappings of the whole pattern (every node
    mapped within its candidate row, every edge into [tc2]) — see
    {!Phom_treedecomp.Dp_exact.count}. [count > 0] iff {!Api.decide_phom}
    holds; the empty pattern counts exactly one mapping. A tripped count
    is [0, exact = false] and must never be cached. *)
