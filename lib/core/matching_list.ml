module Int_set = Set.Make (Int)
module Int_map = Map.Make (Int)

type entry = { good : Int_set.t; minus : Int_set.t }
type t = entry Int_map.t

let empty = Int_map.empty
let is_empty = Int_map.is_empty

let of_candidates cands =
  let h = ref Int_map.empty in
  Array.iteri
    (fun v row ->
      if Array.length row > 0 then
        h :=
          Int_map.add v
            { good = Int_set.of_list (Array.to_list row); minus = Int_set.empty }
            !h)
    cands;
  !h

let size = Int_map.cardinal

let nb_pairs h =
  Int_map.fold
    (fun _ e acc -> acc + Int_set.cardinal e.good + Int_set.cardinal e.minus)
    h 0

let mem h v = Int_map.mem v h

let good h v =
  match Int_map.find_opt v h with None -> Int_set.empty | Some e -> e.good

let minus h v =
  match Int_map.find_opt v h with None -> Int_set.empty | Some e -> e.minus

let nodes h = List.map fst (Int_map.bindings h)

let put h v entry =
  if Int_set.is_empty entry.good && Int_set.is_empty entry.minus then
    Int_map.remove v h
  else Int_map.add v entry h

let set_good h v good =
  match Int_map.find_opt v h with
  | None -> if Int_set.is_empty good then h else Int_map.add v { good; minus = Int_set.empty } h
  | Some e -> put h v { e with good }

let move_to_minus h v bad =
  match Int_map.find_opt v h with
  | None -> h
  | Some e ->
      let moved, kept = Int_set.partition bad e.good in
      if Int_set.is_empty moved then h
      else put h v { good = kept; minus = Int_set.union e.minus moved }

let pick h =
  Int_map.fold
    (fun v e best ->
      let c = Int_set.cardinal e.good in
      if c = 0 then best
      else
        match best with
        | Some (_, g) when Int_set.cardinal g >= c -> best
        | _ -> Some (v, e.good))
    h None

let split h =
  Int_map.fold
    (fun v e (hplus, hminus) ->
      let hplus =
        if Int_set.is_empty e.good then hplus
        else Int_map.add v { good = e.good; minus = Int_set.empty } hplus
      in
      let hminus =
        if Int_set.is_empty e.minus then hminus
        else Int_map.add v { good = e.minus; minus = Int_set.empty } hminus
      in
      (hplus, hminus))
    h (Int_map.empty, Int_map.empty)

let remove_pairs h pairs =
  List.fold_left
    (fun h (v, u) ->
      match Int_map.find_opt v h with
      | None -> h
      | Some e ->
          put h v { good = Int_set.remove u e.good; minus = Int_set.remove u e.minus })
    h pairs

let pp ppf h =
  Format.fprintf ppf "@[<v>";
  Int_map.iter
    (fun v e ->
      Format.fprintf ppf "%d: good=%a minus=%a@," v
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Format.pp_print_int)
        (Int_set.elements e.good)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Format.pp_print_int)
        (Int_set.elements e.minus))
    h;
  Format.fprintf ppf "@]"
