module D = Phom_graph.Digraph
module BM = Phom_graph.Bitmatrix

let trim ~g1 ~tc2 ~v ~u h =
  let h =
    Array.fold_left
      (fun h v' ->
        Matching_list.move_to_minus h v' (fun u' -> not (BM.get tc2 u' u)))
      h (D.pred g1 v)
  in
  Array.fold_left
    (fun h v' ->
      Matching_list.move_to_minus h v' (fun u' -> not (BM.get tc2 u u')))
    h (D.succ g1 v)
