let close_instance ?budget (t : Instance.t) =
  let g1_plus = Phom_graph.Transitive_closure.graph ?budget t.g1 in
  Instance.make ~tc2:t.tc2 ~g1:g1_plus ~g2:t.g2 ~mat:t.mat ~xi:t.xi ()

let decide ?injective ?budget t =
  Exact.decide ?injective ?budget (close_instance ?budget t)

let max_card ?injective ?budget t =
  Comp_max_card.run ?injective ?budget (close_instance ?budget t)

let max_sim ?injective ?budget ?weights t =
  Comp_max_sim.run ?injective ?budget ?weights (close_instance ?budget t)
