module D = Phom_graph.Digraph
module Product = Phom_wis.Product
module Wis = Phom_wis.Wis

let build ?injective ?weights (t : Instance.t) =
  Product.build ?injective ?weights ~g1:t.g1 ~tc2:t.tc2 ~mat:t.mat ~xi:t.xi ()

let max_card ?(injective = false) ?budget t =
  let p = build ~injective t in
  Mapping.normalize
    (Product.mapping_of_clique p (Wis.max_clique ?budget p.Product.graph))

let max_sim ?(injective = false) ?budget ?weights (t : Instance.t) =
  let weights =
    match weights with None -> Array.make (D.n t.g1) 1. | Some w -> w
  in
  let p = build ~injective ~weights t in
  Mapping.normalize
    (Product.mapping_of_clique p (Wis.max_weight_clique ?budget p.Product.graph))
