module D = Phom_graph.Digraph
module Budget = Phom_graph.Budget
module Obs = Phom_obs.Obs

type problem = CPH | CPH11 | SPH | SPH11

type algorithm = Direct | Naive_product | Exact_bb | Dp_td

let algorithm_label = function
  | Direct -> "direct"
  | Naive_product -> "naive"
  | Exact_bb -> "exact"
  | Dp_td -> "dp"

(* exact answers become polynomial once the pattern decomposes this
   narrowly; above it the DP tables outgrow the B&B's pruning *)
let default_max_width = 4

type result = {
  problem : problem;
  mapping : Mapping.t;
  quality : float;
  status : Budget.status;
}

let injective = function CPH | SPH -> false | CPH11 | SPH11 -> true

let problem_name = function
  | CPH -> "CPH"
  | CPH11 -> "CPH1-1"
  | SPH -> "SPH"
  | SPH11 -> "SPH1-1"

let default_weights (t : Instance.t) = Array.make (D.n t.g1) 1.

let solve_within ?(algorithm = Direct) ?weights ?(partition = false)
    ?(compress = false) ?(max_width = default_max_width) ?budget ?pool
    ?warm_start problem (t : Instance.t) =
  let inj = injective problem in
  let weights = match weights with Some w -> w | None -> default_weights t in
  (* a previous mapping, repaired against the (possibly edited) instance,
     becomes the anytime floor: a budget-tripped search never returns worse
     than the salvage of what was already known. Complete results are left
     alone — they are proven optimal, so the floor cannot beat them and the
     answer stays identical to a cold solve. *)
  let warm =
    match warm_start with
    | None -> None
    | Some w -> (
        match Warm.repair ~injective:inj t w with
        | [] -> None
        | r ->
            Obs.incr (Obs.counter "phom_warm_seeds_total");
            Some r)
  in
  (* Exact_bb without an explicit budget runs on its own default token;
     record a trip so the caller still learns the result may be partial.
     Atomic because partitioned components may report from worker domains. *)
  let inner_status = Atomic.make Budget.Complete in
  let exact ?budget sub objective =
    let o = Exact.solve ~injective:inj ?budget ~objective sub in
    (match o.Exact.status with
    | Budget.Exhausted _ as s -> Atomic.set inner_status s
    | Budget.Complete -> ());
    o.Exact.mapping
  in
  let dp ?budget sub objective =
    let o = Dp.solve ~injective:inj ?budget ?pool ~objective sub in
    (match o.Exact.status with
    | Budget.Exhausted _ as s -> Atomic.set inner_status s
    | Budget.Complete -> ());
    o.Exact.mapping
  in
  (* [w] below is always re-indexed to the g1 of the sub-instance at hand
     (partitioning renumbers g1 nodes; compression leaves g1 intact); the
     budget is passed down explicitly so the partitioned path can hand each
     component its own forked child token *)
  let base_algo ?budget (sub : Instance.t) w =
    let objective =
      match problem with
      | CPH | CPH11 -> Exact.Cardinality
      | SPH | SPH11 -> Exact.Similarity w
    in
    match (algorithm, problem) with
    | Direct, (CPH | CPH11) -> Comp_max_card.run ~injective:inj ?budget sub
    | Direct, (SPH | SPH11) ->
        Comp_max_sim.run ~injective:inj ?budget ~weights:w sub
    | Naive_product, (CPH | CPH11) -> Naive.max_card ~injective:inj ?budget sub
    | Naive_product, (SPH | SPH11) ->
        Naive.max_sim ~injective:inj ?budget ~weights:w sub
    | Dp_td, _ -> dp ?budget sub objective
    (* narrow patterns get the polynomial DP even when the caller asked
       for the B&B: same optimum, tabulation instead of search *)
    | Exact_bb, _ when Dp.width sub <= max_width -> dp ?budget sub objective
    | Exact_bb, _ -> exact ?budget sub objective
  in
  let compressed_algo ?budget sub w =
    if compress then
      match (algorithm, problem) with
      | Direct, (CPH | CPH11) ->
          (* thread clique capacities through the direct algorithm *)
          let c = Opts.compress sub in
          let m =
            Comp_max_card.run ~injective:inj ?budget
              ~capacities:c.Opts.capacities c.Opts.sub
          in
          Opts.decompress ~injective:inj c m
      | _ ->
          Opts.with_compression ~injective:inj
            (fun s -> base_algo ?budget s w)
            sub
    else base_algo ?budget sub w
  in
  let algo_label = algorithm_label algorithm in
  Obs.incr
    (Obs.counter
       ~labels:[ ("problem", problem_name problem); ("algorithm", algo_label) ]
       "phom_solver_solves_total");
  let span_name = "solve_" ^ algo_label in
  let steps_before = Option.fold ~none:0 ~some:Budget.steps_used budget in
  let mapping =
    Obs.span span_name (fun () ->
        if partition && not inj then
          Opts.partitioned ?pool ?budget
            (fun ?budget sub old_of_new ->
              compressed_algo ?budget sub
                (Array.map (fun ov -> weights.(ov)) old_of_new))
            t
        else compressed_algo ?budget t weights)
  in
  Obs.span_steps span_name
    (Option.fold ~none:0 ~some:Budget.steps_used budget - steps_before);
  let qual m =
    match problem with
    | CPH | CPH11 -> Instance.qual_card t m
    | SPH | SPH11 -> Instance.qual_sim ~weights t m
  in
  let quality = qual mapping in
  let status =
    match budget with
    | Some b -> (
        match Budget.status b with
        | Budget.Exhausted _ as s -> s
        | Budget.Complete -> Atomic.get inner_status)
    | None -> Atomic.get inner_status
  in
  let mapping, quality =
    match (status, warm) with
    | Budget.Exhausted _, Some w ->
        let wq = qual w in
        if wq > quality then begin
          Obs.incr (Obs.counter "phom_warm_rescued_total");
          (w, wq)
        end
        else (mapping, quality)
    | _ -> (mapping, quality)
  in
  (match status with
  | Budget.Complete -> ()
  | Budget.Exhausted reason ->
      Obs.incr
        (Obs.counter
           ~labels:[ ("reason", Budget.string_of_reason reason) ]
           "phom_solver_budget_trips_total"));
  { problem; mapping; quality; status }

let solve ?algorithm ?weights ?partition ?compress problem t =
  solve_within ?algorithm ?weights ?partition ?compress problem t

let matches ?(threshold = 0.75) r = r.quality >= threshold

(* iterate the pattern edges whose endpoints are both mapped *)
let iter_mapped_edges (t : Instance.t) mapping f =
  List.iter
    (fun (v, u) ->
      Array.iter
        (fun v' ->
          match Mapping.apply mapping v' with
          | Some u' -> f v v' u u'
          | None -> ())
        (D.succ t.g1 v))
    mapping

let report (t : Instance.t) r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s: quality %.4f over %d of %d pattern nodes\n"
       (problem_name r.problem) r.quality
       (Mapping.size r.mapping)
       (D.n t.g1));
  (match r.status with
  | Budget.Complete -> ()
  | Budget.Exhausted reason ->
      Buffer.add_string buf
        (Printf.sprintf "  (budget exhausted: %s — best result found so far)\n"
           (Budget.string_of_reason reason)));
  List.iter
    (fun (v, u) ->
      Buffer.add_string buf
        (Printf.sprintf "  %d [%s] -> %d [%s]  (similarity %.2f)\n" v
           (D.label t.g1 v) u (D.label t.g2 u)
           (Phom_sim.Simmat.get t.mat v u)))
    r.mapping;
  let unmapped =
    List.filter
      (fun v -> Mapping.apply r.mapping v = None)
      (List.init (D.n t.g1) Fun.id)
  in
  if unmapped <> [] then begin
    Buffer.add_string buf "  unmapped pattern nodes:";
    List.iter
      (fun v -> Buffer.add_string buf (Printf.sprintf " %d [%s]" v (D.label t.g1 v)))
      unmapped;
    Buffer.add_char buf '\n'
  end;
  Buffer.add_string buf "edge witnesses:\n";
  iter_mapped_edges t r.mapping (fun v v' u u' ->
      match Phom_graph.Traversal.shortest_path t.g2 u u' with
      | Some path ->
          Buffer.add_string buf
            (Printf.sprintf "  (%s -> %s) maps to %s\n" (D.label t.g1 v)
               (D.label t.g1 v')
               (String.concat " / " (List.map (D.label t.g2) path)))
      | None ->
          Buffer.add_string buf
            (Printf.sprintf "  (%s -> %s): NO PATH — invalid mapping!\n"
               (D.label t.g1 v) (D.label t.g1 v')));
  Buffer.contents buf

let decide_phom ?budget t = Exact.decide ~injective:false ?budget t

let decide_one_one_phom ?budget t = Exact.decide ~injective:true ?budget t

let count ?budget ?pool t =
  Obs.incr (Obs.counter "phom_solver_counts_total");
  Obs.span "count" @@ fun () -> Dp.count ?budget ?pool t
