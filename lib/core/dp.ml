module Budget = Phom_graph.Budget
module Td = Phom_treedecomp.Treedecomp
module Dpx = Phom_treedecomp.Dp_exact

let width ?heuristic (t : Instance.t) = Td.width ?heuristic t.Instance.g1

let pair_value objective (t : Instance.t) =
  match objective with
  | Exact.Cardinality -> fun _ _ -> 1.
  | Exact.Similarity w -> fun v u -> w.(v) *. Phom_sim.Simmat.get t.mat v u

let relaxed ?budget ?pool ~objective (t : Instance.t) =
  let nice = Td.nice (Td.compute t.Instance.g1) in
  Dpx.solve ?budget ?pool ~g1:t.Instance.g1 ~tc2:t.Instance.tc2
    ~cands:(Instance.candidates t)
    ~pair_value:(pair_value objective t)
    nice

let solve ?(injective = false) ?budget ?pool ~objective (t : Instance.t) =
  let o = relaxed ?budget ?pool ~objective t in
  let witness_ok =
    (not injective) || Mapping.is_injective o.Dpx.mapping
  in
  if witness_ok || o.Dpx.status <> Budget.Complete then
    (* an injective witness of the non-injective relaxation is optimal for
       the 1-1 problem too: the relaxation bounds it from above and the
       witness is feasible. A tripped DP keeps its (empty) anytime answer —
       the budget is spent either way. *)
    { Exact.mapping = Mapping.normalize o.Dpx.mapping; status = o.Dpx.status }
  else Exact.solve ~injective:true ?budget ~objective t

type count_result = {
  count : int;
  exact : bool;
  width : int;
  status : Budget.status;
}

let count ?budget ?pool (t : Instance.t) =
  let td = Td.compute t.Instance.g1 in
  let c =
    Dpx.count ?budget ?pool ~g1:t.Instance.g1 ~tc2:t.Instance.tc2
      ~cands:(Instance.candidates t)
      (Td.nice td)
  in
  {
    count = c.Dpx.count;
    exact = c.Dpx.exact;
    width = td.Td.width;
    status = c.Dpx.status;
  }
