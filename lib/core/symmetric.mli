(** Symmetric (path-to-path) matching, per the Remark of Section 3.2:
    instead of mapping {e edges} of [G1] to paths of [G2], map {e paths} to
    paths by first replacing [G1] with its transitive closure [G1⁺] and then
    asking whether [G1⁺ ⪯(e,p) G2]. *)

val close_instance : ?budget:Phom_graph.Budget.t -> Instance.t -> Instance.t
(** Same instance with [g1] replaced by [G1⁺] (labels and node ids are
    preserved, so mappings and metrics transfer unchanged). A truncated
    closure (exhausted [budget]) under-approximates [G1⁺]: matching then
    enforces only the closed-so-far paths — still a superset of plain
    edge-to-path semantics. *)

val decide :
  ?injective:bool -> ?budget:Phom_graph.Budget.t -> Instance.t -> bool option
(** [G1⁺ ⪯(e,p) G2] (resp. 1-1), by the exact procedure. *)

val max_card :
  ?injective:bool -> ?budget:Phom_graph.Budget.t -> Instance.t -> Mapping.t
(** compMaxCard on the closed instance. *)

val max_sim :
  ?injective:bool ->
  ?budget:Phom_graph.Budget.t ->
  ?weights:float array ->
  Instance.t ->
  Mapping.t
(** compMaxSim on the closed instance ([G1⁺] has the same nodes, so weights
    transfer verbatim). *)
