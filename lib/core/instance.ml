module D = Phom_graph.Digraph
module BM = Phom_graph.Bitmatrix
module TC = Phom_graph.Transitive_closure
module Simmat = Phom_sim.Simmat

type t = {
  g1 : D.t;
  g2 : D.t;
  mat : Simmat.t;
  xi : float;
  tc2 : BM.t;
  cands_memo : int array array option Atomic.t;
}

let make ?budget ?tc2 ~g1 ~g2 ~mat ~xi () =
  if Simmat.n1 mat <> D.n g1 || Simmat.n2 mat <> D.n g2 then
    invalid_arg "Instance.make: mat dimensions do not match the graphs";
  if not (xi >= 0. && xi <= 1.) then invalid_arg "Instance.make: xi outside [0,1]";
  let tc2 =
    match tc2 with
    | Some m ->
        if BM.rows m <> D.n g2 || BM.cols m <> D.n g2 then
          invalid_arg "Instance.make: tc2 dimensions do not match g2";
        m
    | None -> TC.compute ?budget g2
  in
  { g1; g2; mat; xi; tc2; cands_memo = Atomic.make None }

let compute_candidates t =
  let base = Simmat.candidates t.mat ~xi:t.xi in
  Array.mapi
    (fun v row ->
      if D.has_edge t.g1 v v then
        Array.of_list
          (List.filter (fun u -> BM.get t.tc2 u u) (Array.to_list row))
      else row)
    base

let candidates t =
  match Atomic.get t.cands_memo with
  | Some c -> c
  | None ->
      let c = Phom_obs.Obs.span "candidates" (fun () -> compute_candidates t) in
      let pairs = Array.fold_left (fun acc r -> acc + Array.length r) 0 c in
      Phom_obs.Obs.observe
        (Phom_obs.Obs.histogram
           ~buckets:[| 1.; 4.; 16.; 64.; 256.; 1024.; 4096.; 16384. |]
           "phom_solver_candidate_pairs")
        (float_of_int pairs);
      (* concurrent computes produce equal tables; whichever lands is fine *)
      Atomic.set t.cands_memo (Some c);
      c

let preset_candidates t c =
  if Array.length c <> D.n t.g1 then
    invalid_arg "Instance.preset_candidates: wrong number of rows";
  Atomic.set t.cands_memo (Some c)

let choose_best t v goods =
  let best = ref (-1) and best_sim = ref neg_infinity in
  Matching_list.Int_set.iter
    (fun u ->
      let s = Simmat.get t.mat v u in
      if s > !best_sim then begin
        best := u;
        best_sim := s
      end)
    goods;
  if !best < 0 then invalid_arg "Instance.choose_best: empty candidate set";
  !best

let qual_card t m = Mapping.qual_card ~n1:(D.n t.g1) m

let qual_sim ~weights t m = Mapping.qual_sim ~weights ~mat:t.mat m

let is_valid ?(injective = false) t m =
  if injective then Mapping.is_one_one_phom ~g1:t.g1 ~tc2:t.tc2 ~mat:t.mat ~xi:t.xi m
  else Mapping.is_phom ~g1:t.g1 ~tc2:t.tc2 ~mat:t.mat ~xi:t.xi m
