(** Ready-made node-importance vectors [w(v)] for the overall-similarity
    problems SPH / SPH¹⁻¹ (Section 3.3: "whether v is a hub, authority, or a
    node with a high degree"). All vectors are positive and scaled to a
    maximum of 1 so thresholds stay comparable across choices. *)

val uniform : Phom_graph.Digraph.t -> float array
(** All ones — the paper's experimental setting. *)

val degree : Phom_graph.Digraph.t -> float array
(** [(deg v + 1) / (maxDeg + 1)]. *)

val hub : Phom_graph.Digraph.t -> float array
(** HITS hub score, max-normalized (floor 1e-6 so weights stay positive). *)

val authority : Phom_graph.Digraph.t -> float array
(** HITS authority score, max-normalized (floor 1e-6). *)
