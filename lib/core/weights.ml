module D = Phom_graph.Digraph

let uniform g = Array.make (D.n g) 1.

let degree g =
  let mx = float_of_int (D.max_degree g + 1) in
  Array.init (D.n g) (fun v -> float_of_int (D.degree g v + 1) /. mx)

let max_normalized ?(floor = 1e-6) v =
  let mx = Array.fold_left Float.max 0. v in
  if mx <= 0. then Array.map (fun _ -> 1.) v
  else Array.map (fun x -> Float.max floor (x /. mx)) v

let hub g = max_normalized (Phom_sim.Hits.compute g).Phom_sim.Hits.hub

let authority g =
  max_normalized (Phom_sim.Hits.compute g).Phom_sim.Hits.authority
