(** The matching list [H] of algorithm compMaxCard (paper Fig. 3).

    For every still-active [G1] node [v], [H[v].good] holds the candidate
    [G2] matches and [H[v].minus] the candidates ruled out under the current
    hypothesis. The structure is {e persistent}: the H⁺/H⁻ split inside
    [greedyMatch] shares substructure instead of copying, which is what
    makes the (defunctionalized) recursion affordable.

    Invariant maintained by every operation: a node present in the map has
    [good ∪ minus ≠ ∅]; nodes whose last candidate disappears are dropped
    (they can never be matched, mirroring the paper's partitioning
    optimization). *)

module Int_set : Set.S with type elt = int
module Int_map : Map.S with type key = int

type entry = { good : Int_set.t; minus : Int_set.t }
type t = entry Int_map.t

val empty : t
val is_empty : t -> bool

val of_candidates : int array array -> t
(** [of_candidates cands] builds the initial [H]: [H[v].good = cands.(v)],
    [H[v].minus = ∅]. Rows with no candidates are dropped. *)

val size : t -> int
(** Number of nodes in [H] — the [sizeof(H)] of the paper's main loop. *)

val nb_pairs : t -> int
(** Total number of (good + minus) candidate pairs. *)

val mem : t -> int -> bool
val good : t -> int -> Int_set.t
(** Empty set when the node is absent. *)

val minus : t -> int -> Int_set.t

val nodes : t -> int list

val set_good : t -> int -> Int_set.t -> t
(** Replace [good] (dropping the node if both sets become empty). *)

val move_to_minus : t -> int -> (int -> bool) -> t
(** [move_to_minus h v bad] moves every [u ∈ good(v)] with [bad u] into
    [minus(v)]. No-op when [v] is absent. *)

val pick : t -> (int * Int_set.t) option
(** The node with the largest [good] set (ties: smallest id), with its
    candidates — the selection of [greedyMatch] line 2. [None] if no node
    has a non-empty [good]. *)

val split : t -> t * t
(** The H⁺/H⁻ partition of [greedyMatch] lines 5–9: H⁺ keeps non-empty
    [good] sets (minus reset), H⁻ turns non-empty [minus] sets into [good]. *)

val remove_pairs : t -> (int * int) list -> t
(** [H \ I]: delete each pair from both sets, dropping exhausted nodes. *)

val pp : Format.formatter -> t -> unit
