(** The optimization techniques of Appendix B.

    {b Partitioning G1.} Nodes without any candidate cannot contribute to a
    mapping; after dropping them, each weakly connected component of the
    remainder is matched independently and the mappings are unioned
    (Proposition 1). Singleton components short-circuit to their best
    candidate. {e p-hom only}: unioning per-component 1-1 mappings could
    reuse a target across components, so injective matching must not use
    {!partitioned}.

    {b Compressing G2.} Every SCC of [G2] is a clique of [G2⁺]; replace it
    with a single bag-labelled node carrying a self-loop ({!
    Phom_graph.Condensation}). Matching runs against the much smaller
    compressed graph, and the result is translated back by assigning
    concrete clique members (for 1-1 mappings, by maximum bipartite matching
    inside each clique). Translation may have to drop a pair when a clique
    contains fewer ξ-eligible members than the capacity the matcher assumed;
    the result is always a valid mapping, very occasionally a slightly
    smaller one. *)

val matchable_nodes : Instance.t -> int list
(** [G1] nodes with at least one candidate (the complement of the paper's
    set [S1]). *)

val partitioned :
  ?pool:Phom_parallel.Pool.t ->
  ?budget:Phom_graph.Budget.t ->
  (?budget:Phom_graph.Budget.t -> Instance.t -> int array -> Mapping.t) ->
  Instance.t ->
  Mapping.t
(** [partitioned algo t] applies [algo] per weak component of the matchable
    part of [g1] and unions the results. [algo] receives sub-instances that
    share [t.g2]/[t.tc2], plus the [old_of_new] node map of the component
    (so callers can re-index per-node data such as SPH weights).

    With a [pool] of size > 1, the components are solved across domains
    ({!Phom_parallel.Pool.map}; result order, and hence the merged mapping,
    is identical to the sequential run). [budget] is forked into one
    domain-safe child per component ({!Phom_graph.Budget.fork}) and joined
    back, so a pool-wide allowance still trips every worker and the
    returned mapping keeps anytime best-so-far semantics. Without a pool
    (or with a size-1 pool) the components run sequentially on the calling
    domain, sharing [budget] directly — bit-identical to the historical
    behavior. *)

type compressed = {
  orig : Instance.t;  (** the instance that was compressed *)
  sub : Instance.t;  (** instance against the compressed [G2*] *)
  cond : Phom_graph.Condensation.t;
  capacities : int Matching_list.Int_map.t;
      (** clique sizes, keyed by compressed node *)
}

val compress : Instance.t -> compressed
(** [mat'] of the sub-instance is the member-wise maximum of [mat]. *)

val decompress : ?injective:bool -> compressed -> Mapping.t -> Mapping.t
(** Translate a mapping into [G2*] back to concrete [G2] nodes. *)

val with_compression :
  ?injective:bool -> (Instance.t -> Mapping.t) -> Instance.t -> Mapping.t
(** [compress], run, [decompress]. *)
