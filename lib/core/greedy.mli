(** Procedure greedyMatch (paper Fig. 4), defunctionalized.

    The paper's procedure is a binary recursion: pick a candidate pair
    [(v, u)], trim, recurse on H⁺ (the world where [(v, u)] holds) and on
    H⁻ (the world where it doesn't), and keep the better mapping of the two
    — simultaneously building the set [I] of pairwise-contradictory pairs
    that the outer loop removes. Its recursion depth is bounded only by the
    number of candidate pairs, which reaches ~10⁶ at paper scale, so we run
    it as an explicit work-stack machine over the persistent
    {!Matching_list} (semantically identical, heap-bounded).

    [mode] generalizes the paper's two variants:
    - [`Free] — plain p-hom;
    - [`Capacitated caps] — when [(v, u)] is fixed and [u]'s remaining
      capacity drops to 0, [u] moves out of every other node's [good]
      (the paper's 1-1 extra step, with capacity 1; Appendix-B compressed
      [G2] nodes carry their clique size). *)

type result = {
  sigma : Mapping.t;  (** the p-hom mapping found *)
  conflict : (int * int) list;
      (** the pairwise-contradictory pair set [I]; non-empty whenever the
          input list is non-empty *)
}

val run :
  ?budget:Phom_graph.Budget.t ->
  g1:Phom_graph.Digraph.t ->
  tc2:Phom_graph.Bitmatrix.t ->
  choose_u:(int -> Matching_list.Int_set.t -> int) ->
  mode:[ `Free | `Capacitated of int Matching_list.Int_map.t ] ->
  Matching_list.t ->
  result
(** [choose_u v goods] selects the candidate to try first (compMaxCard uses
    highest similarity). It must return a member of [goods].

    One [budget] tick per evaluated sub-list. An exhausted budget makes the
    remaining branches evaluate to the empty mapping, so [sigma] is still a
    valid mapping — assembled from whatever was explored before the trip —
    and [run] returns promptly instead of raising. *)
