(** Arc-consistency prefiltering for the decision problems — the
    indexing/filtering direction the paper's conclusion points at ([10, 27,
    30]).

    A {e full} p-hom mapping must map every [G1] node, so a candidate [u]
    for [v] is useless unless every [G1] edge at [v] can be continued:
    for each child [v'] some candidate [u'] of [v'] with a path [u → u'],
    and symmetrically for parents. Iterating this pruning to a fixpoint
    (AC-3 style) shrinks the exact search space — often to the point of
    deciding the instance outright (an empty row proves non-existence).

    {b Soundness caveat:} this is only sound for the {e decision} problems
    (total mappings). The optimization problems map induced subgraphs, where
    a pair can be useful even when a neighbour has no compatible candidate
    (the neighbour simply stays unmapped) — so {!Comp_max_card} must not
    use it, and doesn't. *)

val refine : ?budget:Phom_graph.Budget.t -> Instance.t -> int array array
(** The greatest arc-consistent subsets of {!Instance.candidates}. Every
    total (1-1) p-hom mapping only uses surviving pairs. An exhausted
    [budget] interrupts the fixpoint, leaving a sound superset (less
    pruned, never wrong). *)

val decide :
  ?injective:bool -> ?budget:Phom_graph.Budget.t -> Instance.t -> bool option
(** {!refine}, answer [Some false] on an empty row, otherwise
    {!Exact.decide} over the surviving candidates. Always agrees with
    {!Exact.decide} (tested), usually much faster on negative instances. *)
