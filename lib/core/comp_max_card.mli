(** Algorithm compMaxCard (paper Fig. 3) and its 1-1 variant
    compMaxCard¹⁻¹: approximation algorithms for the maximum-cardinality
    problems CPH and CPH¹⁻¹ with the O(log²(n1·n2)/(n1·n2)) guarantee of
    Theorem 5.1/Proposition 5.2.

    The main loop alternates {!Greedy.run} with the removal of the
    contradictory pair set [I] it returns, keeping the best mapping seen,
    until the remaining matching list cannot beat it. *)

val run :
  ?injective:bool ->
  ?budget:Phom_graph.Budget.t ->
  ?capacities:int Matching_list.Int_map.t ->
  ?pick:[ `Best_sim | `First ] ->
  Instance.t ->
  Mapping.t
(** The returned mapping is always a valid (1-1 when [injective]) p-hom
    mapping from an induced subgraph of [g1] to [g2] — also under an
    exhausted [budget], which stops the greedyMatch iteration early and
    returns the best mapping found so far (check
    {!Phom_graph.Budget.status} on the token to distinguish).

    [capacities] (only meaningful with [injective]) overrides the per-target
    capacity of 1 — the hook used when [g2] is an Appendix-B compressed
    graph whose nodes stand for whole cliques.

    [pick] selects the candidate heuristic of greedyMatch line 2, which the
    paper leaves unspecified: [`Best_sim] (default) tries the most similar
    candidate first, [`First] takes an arbitrary (smallest-id) candidate —
    the paper-faithful choice, and measurably less accurate (see the Fig. 5
    ablation in EXPERIMENTS.md). Both enjoy the same worst-case guarantee. *)

val run_on :
  ?injective:bool ->
  ?budget:Phom_graph.Budget.t ->
  ?capacities:int Matching_list.Int_map.t ->
  ?pick:[ `Best_sim | `First ] ->
  Instance.t ->
  Matching_list.t ->
  Mapping.t
(** Run the main loop from an explicit initial matching list — the hook
    {!Comp_max_sim} uses to process its weight groups. Candidate sets in
    the list must be subsets of {!Instance.candidates}. *)
