(** High-level entry points, organized around Table 1's four optimization
    problems.

    Typical use:
    {[
      let t = Phom.Instance.make ~g1 ~g2 ~mat ~xi:0.75 () in
      let r = Phom.Api.solve Phom.Api.CPH t in
      if Phom.Api.matches r then ...
    ]} *)

(** The four optimization problems of Table 1. *)
type problem =
  | CPH  (** maximum cardinality, p-hom *)
  | CPH11  (** maximum cardinality, 1-1 p-hom *)
  | SPH  (** maximum overall similarity, p-hom *)
  | SPH11  (** maximum overall similarity, 1-1 p-hom *)

(** Which algorithm answers it. *)
type algorithm =
  | Direct  (** compMaxCard / compMaxSim — the paper's main algorithms *)
  | Naive_product  (** Section 5's naive reduction through the product graph *)
  | Exact_bb  (** branch and bound; exponential, small inputs only *)

type result = {
  problem : problem;
  mapping : Mapping.t;
  quality : float;  (** [qualCard] or [qualSim] of the mapping *)
}

val injective : problem -> bool
val problem_name : problem -> string
(** ["CPH"], ["CPH1-1"], ["SPH"], ["SPH1-1"]. *)

val solve :
  ?algorithm:algorithm ->
  ?weights:float array ->
  ?partition:bool ->
  ?compress:bool ->
  problem ->
  Instance.t ->
  result
(** [weights] applies to SPH/SPH¹⁻¹ (default all ones). [partition] enables
    the Appendix-B G1 partitioning (p-hom problems only — ignored for the
    1-1 problems, whose mappings cannot be unioned safely); [compress]
    enables the Appendix-B G2 compression. Both default to [false]. *)

val matches : ?threshold:float -> result -> bool
(** The experiments' match rule: quality ≥ [threshold] (default 0.75). *)

val report : Instance.t -> result -> string
(** A human-readable account of a matching result: every mapped pair with
    its similarity, and for every pattern edge inside the mapping's domain
    the shortest witness path of [g2] it maps to. The explainability
    surface of the library — what a reviewer checks before believing a
    match. *)

val decide_phom : ?budget:int -> Instance.t -> bool option
(** [G1 ⪯(e,p) G2] — exact, exponential worst case. *)

val decide_one_one_phom : ?budget:int -> Instance.t -> bool option
(** [G1 ⪯¹⁻¹(e,p) G2]. *)
