(** High-level entry points, organized around Table 1's four optimization
    problems.

    Typical use:
    {[
      let t = Phom.Instance.make ~g1 ~g2 ~mat ~xi:0.75 () in
      let r = Phom.Api.solve Phom.Api.CPH t in
      if Phom.Api.matches r then ...
    ]}

    With a resource budget (anytime use — e.g. answer within 100ms):
    {[
      let budget = Phom_graph.Budget.create ~timeout:0.1 () in
      let r = Phom.Api.solve_within ~budget Phom.Api.CPH t in
      match r.Phom.Api.status with
      | Phom_graph.Budget.Complete -> ...      (* full-quality answer *)
      | Phom_graph.Budget.Exhausted _ -> ...   (* valid, best found so far *)
    ]} *)

(** The four optimization problems of Table 1. *)
type problem =
  | CPH  (** maximum cardinality, p-hom *)
  | CPH11  (** maximum cardinality, 1-1 p-hom *)
  | SPH  (** maximum overall similarity, p-hom *)
  | SPH11  (** maximum overall similarity, 1-1 p-hom *)

(** Which algorithm answers it. *)
type algorithm =
  | Direct  (** compMaxCard / compMaxSim — the paper's main algorithms *)
  | Naive_product  (** Section 5's naive reduction through the product graph *)
  | Exact_bb  (** branch and bound; exponential, small inputs only *)
  | Dp_td
      (** exact DP over a tree decomposition of [g1]; polynomial for
          bounded-width patterns. [Exact_bb] routes here automatically
          when the computed width is at most [max_width]. *)

type result = {
  problem : problem;
  mapping : Mapping.t;
  quality : float;  (** [qualCard] or [qualSim] of the mapping *)
  status : Phom_graph.Budget.status;
      (** [Complete] when the solver ran to its natural end; [Exhausted _]
          when the budget tripped and [mapping] is the (valid) best found
          so far *)
}

val injective : problem -> bool
val problem_name : problem -> string
(** ["CPH"], ["CPH1-1"], ["SPH"], ["SPH1-1"]. *)

val solve_within :
  ?algorithm:algorithm ->
  ?weights:float array ->
  ?partition:bool ->
  ?compress:bool ->
  ?max_width:int ->
  ?budget:Phom_graph.Budget.t ->
  ?pool:Phom_parallel.Pool.t ->
  ?warm_start:Mapping.t ->
  problem ->
  Instance.t ->
  result
(** [warm_start] re-seeds the solve from a previous answer — typically the
    mapping found before an [addedge]/[deledge] edit of one of the graphs.
    The mapping is repaired against the current instance ({!Warm.repair})
    and acts as an anytime incumbent: when the budget trips, the result is
    never worse than the repaired seed. A [Complete] result is returned
    unchanged (it is proven optimal), so warm-started solves that run to
    completion stay byte-identical to cold ones.

    [max_width] (default 4) is the decomposition-width ceiling up to which
    [Exact_bb] requests are answered by the tree-decomposition DP
    ({!Dp.solve}) instead of the branch and bound; [Dp_td] forces the DP
    regardless of width, with the budget as the guard rail. [pool]
    additionally fans the DP's join subtrees out across domains.

    [weights] applies to SPH/SPH¹⁻¹ (default all ones). [partition] enables
    the Appendix-B G1 partitioning (p-hom problems only — ignored for the
    1-1 problems, whose mappings cannot be unioned safely); [compress]
    enables the Appendix-B G2 compression. Both default to [false].

    [budget] is a single token shared by every phase the call runs
    (prefilters, clique search, branch and bound); when it trips, the
    returned [mapping] is still a valid (1-1) p-hom mapping — the best
    found so far — and [status] is [Exhausted _]. Without [budget] the
    approximation algorithms run to completion; [Exact_bb] retains its
    internal safety budget (a 5·10⁶-step token) and reports through
    [status] if it tripped.

    Repeated solves against the same {!Instance.t} are cheap to multiplex:
    the candidate structure every solver starts from is memoized inside the
    instance ({!Instance.candidates}), so a resident service can preload an
    instance once and answer many queries against it without re-deriving
    shared state per request (see {!Instance.preset_candidates} for priming
    it from an artifact cache).

    [pool] parallelizes the [partition] fan-out: each weakly connected
    component of the trimmed [G1] is solved on a pool domain, with [budget]
    forked into domain-safe children ({!Phom_graph.Budget.fork}) whose
    first trip stops every worker. Results are merged in deterministic
    component order, so without a budget trip the mapping is identical to
    the sequential one; a size-1 pool (or no pool) runs the historical
    sequential code path, bit for bit. *)

val solve :
  ?algorithm:algorithm ->
  ?weights:float array ->
  ?partition:bool ->
  ?compress:bool ->
  problem ->
  Instance.t ->
  result
(** {!solve_within} without a budget. *)

val matches : ?threshold:float -> result -> bool
(** The experiments' match rule: quality ≥ [threshold] (default 0.75). *)

val report : Instance.t -> result -> string
(** A human-readable account of a matching result: every mapped pair with
    its similarity, and for every pattern edge inside the mapping's domain
    the shortest witness path of [g2] it maps to. The explainability
    surface of the library — what a reviewer checks before believing a
    match. Notes an exhausted budget when [status] is [Exhausted _]. *)

val decide_phom :
  ?budget:Phom_graph.Budget.t -> Instance.t -> bool option
(** [G1 ⪯(e,p) G2] — exact, exponential worst case. [None] when the budget
    tripped before an answer was reached. *)

val decide_one_one_phom :
  ?budget:Phom_graph.Budget.t -> Instance.t -> bool option
(** [G1 ⪯¹⁻¹(e,p) G2]. *)

val count :
  ?budget:Phom_graph.Budget.t ->
  ?pool:Phom_parallel.Pool.t ->
  Instance.t ->
  Dp.count_result
(** How many total valid p-hom mappings the instance admits — the counting
    workload, answered by the tree-decomposition DP regardless of width
    (the budget bounds wide patterns). [count > 0] iff {!decide_phom}
    holds. A tripped count reports [0, exact = false, Exhausted _] and
    must never be cached. *)
