(** Algorithms compMaxSim and compMaxSim¹⁻¹: approximations for the
    maximum-overall-similarity problems SPH and SPH¹⁻¹.

    Following Halldórsson's weighted-independent-set strategy [16] as the
    paper prescribes: candidate pairs with weight [w(v)·mat(v,u)] below
    [W/(n1·n2)] are discarded, the remaining pairs are bucketed into
    [log(n1·n2)] geometric weight groups, compMaxCard runs on each group's
    matching list, and the mapping with the best [qualSim] wins. We also
    evaluate the ungrouped matching list as one extra candidate — a strict
    quality improvement that preserves the guarantee (documented in
    DESIGN.md). *)

val run :
  ?injective:bool ->
  ?budget:Phom_graph.Budget.t ->
  ?weights:float array ->
  ?pick:[ `Best_sim | `First ] ->
  Instance.t ->
  Mapping.t
(** [weights] are the node-importance weights [w(v)] of Section 3.3
    (hub/authority/degree); they default to all ones, as in the paper's
    experiments. [pick] as in {!Comp_max_card.run}. The weight groups draw
    on a single [budget] token; exhaustion skips the remaining groups and
    returns the best (still valid) mapping scored so far. *)
