(** Warm-start repair: adapt the mapping of a previous solve to an edited
    instance.

    After an [addedge]/[deledge] most of the previous answer is still right;
    {!repair} salvages it instead of starting over — it drops pairs that are
    no longer admissible, restores functionality (and injectivity when
    asked), then deterministically evicts the mapped nodes that break
    pattern edges until the rest is a valid (1-1) p-hom mapping. The result
    always satisfies [Instance.is_valid] and can be handed to
    [Api.solve_within ~warm_start] as an anytime incumbent. *)

val repair : ?injective:bool -> Instance.t -> Mapping.t -> Mapping.t
(** [repair ~injective t m] is a valid mapping for [t] obtained from [m] by
    local deletions only (never additions), sorted and duplicate-free.
    Cost is O(|m|²) per evicted node — independent of the graph sizes. *)
