module D = Phom_graph.Digraph
module BM = Phom_graph.Bitmatrix
module Budget = Phom_graph.Budget
module Simmat = Phom_sim.Simmat

type objective = Cardinality | Similarity of float array

type outcome = { mapping : Mapping.t; status : Budget.status }

let pair_value objective (t : Instance.t) v u =
  match objective with
  | Cardinality -> 1.
  | Similarity w -> w.(v) *. Simmat.get t.mat v u

exception Solved

(* preserve the historical safety net: an un-budgeted call still stops after
   5M search nodes rather than running away on an adversarial instance *)
let default_budget () = Budget.create ~steps:5_000_000 ()

let resolve_budget = function Some b -> b | None -> default_budget ()

let solve ?(injective = false) ?budget ~objective (t : Instance.t) =
  let budget = resolve_budget budget in
  let steps0 = Budget.steps_used budget in
  let finish outcome =
    let d = Budget.steps_used budget - steps0 in
    Phom_obs.Obs.add (Phom_obs.Obs.counter "phom_solver_exact_steps_total") d;
    Phom_obs.Obs.span_steps "exact" d;
    outcome
  in
  Phom_obs.Obs.span "exact" @@ fun () ->
  let n1 = D.n t.g1 in
  let cands = Instance.candidates t in
  (* process scarce nodes first: fail early, prune hard *)
  let order = Array.init n1 (fun i -> i) in
  Array.sort
    (fun a b -> compare (Array.length cands.(a)) (Array.length cands.(b)))
    order;
  let best_pair_value =
    Array.map
      (fun v ->
        Array.fold_left
          (fun acc u -> Float.max acc (pair_value objective t v u))
          0. cands.(v))
      (Array.init n1 (fun i -> i))
  in
  (* suffix_bound.(k) = most value positions k.. of [order] can still add *)
  let suffix_bound = Array.make (n1 + 1) 0. in
  for k = n1 - 1 downto 0 do
    suffix_bound.(k) <- suffix_bound.(k + 1) +. best_pair_value.(order.(k))
  done;
  let target = suffix_bound.(0) in
  let assigned = Array.make n1 (-1) in
  let used = Hashtbl.create 97 in
  let best = ref [] and best_value = ref neg_infinity in
  let consistent v u =
    (not (injective && Hashtbl.mem used u))
    && Array.for_all
         (fun v' -> assigned.(v') < 0 || BM.get t.tc2 u assigned.(v'))
         (D.succ t.g1 v)
    && Array.for_all
         (fun v' -> assigned.(v') < 0 || BM.get t.tc2 assigned.(v') u)
         (D.pred t.g1 v)
  in
  let record value =
    if value > !best_value then begin
      best_value := value;
      let pairs = ref [] in
      for v = n1 - 1 downto 0 do
        if assigned.(v) >= 0 then pairs := (v, assigned.(v)) :: !pairs
      done;
      best := !pairs;
      if !best_value >= target then raise Solved
    end
  in
  let rec go k value =
    Budget.tick_exn budget;
    if k = n1 then record value
    else if value +. suffix_bound.(k) <= !best_value then ()
    else begin
      let v = order.(k) in
      Array.iter
        (fun u ->
          if consistent v u then begin
            assigned.(v) <- u;
            if injective then Hashtbl.add used u ();
            go (k + 1) (value +. pair_value objective t v u);
            assigned.(v) <- -1;
            if injective then Hashtbl.remove used u
          end)
        cands.(v);
      (* skip v *)
      go (k + 1) value
    end
  in
  let status =
    try
      go 0 0.;
      Budget.Complete
    with
    | Budget.Exhausted_budget -> Budget.status budget
    | Solved -> Budget.Complete
  in
  finish { mapping = Mapping.normalize !best; status }

let enumerate_optimal ?(injective = false) ?budget ?(limit = 100)
    ~objective (t : Instance.t) =
  (* one token covers both the optimization and the enumeration pass *)
  let budget = resolve_budget budget in
  let opt = solve ~injective ~budget ~objective t in
  let target_value =
    match objective with
    | Cardinality -> float_of_int (Mapping.size opt.mapping)
    | Similarity w ->
        List.fold_left
          (fun acc (v, u) -> acc +. (w.(v) *. Simmat.get t.mat v u))
          0. opt.mapping
  in
  let eps = 1e-9 in
  let n1 = D.n t.g1 in
  let cands = Instance.candidates t in
  let order = Array.init n1 (fun i -> i) in
  Array.sort
    (fun a b -> compare (Array.length cands.(a)) (Array.length cands.(b)))
    order;
  let suffix_bound = Array.make (n1 + 1) 0. in
  for k = n1 - 1 downto 0 do
    let v = order.(k) in
    let best =
      Array.fold_left
        (fun acc u -> Float.max acc (pair_value objective t v u))
        0. cands.(v)
    in
    suffix_bound.(k) <- suffix_bound.(k + 1) +. best
  done;
  let assigned = Array.make n1 (-1) in
  let used = Hashtbl.create 97 in
  let found = ref [] and count = ref 0 in
  let truncated = ref (opt.status <> Budget.Complete) in
  let consistent v u =
    (not (injective && Hashtbl.mem used u))
    && Array.for_all
         (fun v' -> assigned.(v') < 0 || BM.get t.tc2 u assigned.(v'))
         (D.succ t.g1 v)
    && Array.for_all
         (fun v' -> assigned.(v') < 0 || BM.get t.tc2 assigned.(v') u)
         (D.pred t.g1 v)
  in
  let exception Stop in
  let rec go k value =
    if not (Budget.tick budget) then begin
      truncated := true;
      raise Stop
    end;
    if k = n1 then begin
      if value >= target_value -. eps then begin
        let pairs = ref [] in
        for v = n1 - 1 downto 0 do
          if assigned.(v) >= 0 then pairs := (v, assigned.(v)) :: !pairs
        done;
        found := !pairs :: !found;
        incr count;
        if !count >= limit then begin
          truncated := true;
          raise Stop
        end
      end
    end
    else if value +. suffix_bound.(k) < target_value -. eps then ()
    else begin
      let v = order.(k) in
      Array.iter
        (fun u ->
          if consistent v u then begin
            assigned.(v) <- u;
            if injective then Hashtbl.add used u ();
            go (k + 1) (value +. pair_value objective t v u);
            assigned.(v) <- -1;
            if injective then Hashtbl.remove used u
          end)
        cands.(v);
      go (k + 1) value
    end
  in
  (try go 0 0. with Stop -> ());
  let mappings = List.sort_uniq compare (List.rev !found) in
  (mappings, not !truncated)

let decide ?(injective = false) ?budget ?candidates (t : Instance.t) =
  let budget = resolve_budget budget in
  let n1 = D.n t.g1 in
  let cands =
    match candidates with Some c -> c | None -> Instance.candidates t
  in
  if Array.exists (fun row -> Array.length row = 0) cands then Some false
  else begin
    let order = Array.init n1 (fun i -> i) in
    Array.sort
      (fun a b -> compare (Array.length cands.(a)) (Array.length cands.(b)))
      order;
    let assigned = Array.make n1 (-1) in
    let used = Hashtbl.create 97 in
    let consistent v u =
      (not (injective && Hashtbl.mem used u))
      && Array.for_all
           (fun v' -> assigned.(v') < 0 || BM.get t.tc2 u assigned.(v'))
           (D.succ t.g1 v)
      && Array.for_all
           (fun v' -> assigned.(v') < 0 || BM.get t.tc2 assigned.(v') u)
           (D.pred t.g1 v)
    in
    let exception Found in
    let rec go k =
      Budget.tick_exn budget;
      if k = n1 then raise Found
      else begin
        let v = order.(k) in
        Array.iter
          (fun u ->
            if consistent v u then begin
              assigned.(v) <- u;
              if injective then Hashtbl.add used u ();
              go (k + 1);
              assigned.(v) <- -1;
              if injective then Hashtbl.remove used u
            end)
          cands.(v)
      end
    in
    try
      go 0;
      Some false
    with
    | Found -> Some true
    | Budget.Exhausted_budget -> None
  end
