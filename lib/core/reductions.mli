(** The hardness-proof gadgets of Appendix A, as executable constructions.

    These serve two purposes: they are end-to-end tests of the decision
    procedures (a satisfiable 3SAT instance must yield [G1 ⪯(e,p) G2], an
    exact cover must yield a 1-1 p-hom mapping, and conversely), and they
    document precisely how p-hom matching encodes NP-hard structure. *)

(** {1 3SAT → p-hom (Theorem 4.1(a))} *)

type literal = { var : int; positive : bool }
(** Variable index in [0 .. nvars-1]. *)

type cnf3 = { nvars : int; clauses : (literal * literal * literal) array }
(** Each clause must mention three {e distinct} variables (as in the paper's
    construction). *)

val phom_of_3sat : cnf3 -> Instance.t
(** Both graphs are DAGs; [ξ = 1]. [G1 ⪯(e,p) G2] iff the formula is
    satisfiable. Raises [Invalid_argument] on repeated variables in a
    clause. *)

val assignment_of_mapping : cnf3 -> Mapping.t -> bool array
(** Read the truth assignment off a full p-hom mapping (the [Xi ↦ XTi/XFi]
    choices). *)

val eval_cnf3 : cnf3 -> bool array -> bool

val brute_force_sat : cnf3 -> bool
(** Oracle for tests: try all assignments ([nvars ≤ 20] or so). *)

(** {1 X3C → 1-1 p-hom (Theorem 4.1(b))} *)

type x3c = { universe : int; triples : (int * int * int) array }
(** [universe = 3q] elements [0 .. 3q-1]; each triple is a 3-element subset
    with distinct members. *)

val one_one_phom_of_x3c : x3c -> Instance.t
(** [G1] is a tree, [G2] a DAG; [ξ = 1]. [G1 ⪯¹⁻¹(e,p) G2] iff an exact
    cover exists. *)

val brute_force_x3c : x3c -> bool
(** Oracle for tests: search all sub-collections (small instances only). *)

(** {1 p-hom → maximum cardinality/similarity (Corollary 4.2)} *)

val mcp_of_phom : Instance.t -> Instance.t
(** The reduction proving the optimization problems NP-complete: boost
    every pair at or above the threshold to similarity 1 (leaving the rest
    untouched). A (1-1) p-hom mapping of the whole [G1] exists in the input
    iff the output instance has a mapping of [qualCard = 1] (equivalently
    [qualSim = 1] under unit weights). *)

(** {1 WIS → SPH (Theorem 4.3)} *)

val sph_of_wis : Phom_wis.Ungraph.t -> Instance.t * float array
(** Function [f] of the AFP-reduction: [G1] is an arbitrary orientation of
    the input, [G2] has the same nodes and {e no} edges, [mat] is the
    identity, [ξ = 1]; returns the instance and the node weights. The
    optimal SPH value times the total weight is the optimal WIS weight. *)

val independent_set_of_mapping : Mapping.t -> int list
(** Function [g]: a solution to the SPH instance is an independent set. *)
