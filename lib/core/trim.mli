(** Procedure trimMatching (paper Fig. 4): assuming the candidate match
    [(v, u)], prune candidates of [v]'s parents and children in [G1] that
    cannot coexist with it — a parent's candidate [u'] needs a non-empty
    path [u' → u] in [G2], a child's candidate needs [u → u']. Pruned
    candidates move from [good] to [minus], so the H⁻ branch can still
    explore them. *)

val trim :
  g1:Phom_graph.Digraph.t ->
  tc2:Phom_graph.Bitmatrix.t ->
  v:int ->
  u:int ->
  Matching_list.t ->
  Matching_list.t
