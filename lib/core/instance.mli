(** A matching instance: the tuple [(G1, G2, mat(), ξ)] every problem in the
    paper takes as input, plus the transitive closure of [G2] that all
    algorithms share. Build it once and pass it around — the closure is the
    single most expensive piece of shared state. *)

type t = {
  g1 : Phom_graph.Digraph.t;
  g2 : Phom_graph.Digraph.t;
  mat : Phom_sim.Simmat.t;
  xi : float;
  tc2 : Phom_graph.Bitmatrix.t;  (** transitive closure of [g2] *)
  cands_memo : int array array option Atomic.t;
      (** memo for {!candidates} — do not read directly; populated lazily
          (or via {!preset_candidates}) so a preloaded instance answers many
          queries without re-deriving its shared candidate structure *)
}

val make :
  ?budget:Phom_graph.Budget.t ->
  ?tc2:Phom_graph.Bitmatrix.t ->
  g1:Phom_graph.Digraph.t ->
  g2:Phom_graph.Digraph.t ->
  mat:Phom_sim.Simmat.t ->
  xi:float ->
  unit ->
  t
(** Validates dimensions ([mat] must be [n1 × n2], [ξ ∈ [0,1]]) and computes
    [tc2] unless provided. The closure computation draws on [budget] (see
    {!Phom_graph.Transitive_closure.compute}); a truncated closure is a
    sound under-approximation, so anytime results remain valid. *)

val candidates : t -> int array array
(** Initial candidate lists: [u ∈ cands.(v)] iff [mat(v,u) ≥ ξ] and, when
    [v] carries a self-loop, [u] lies on a cycle of [g2] (so the loop edge
    has a path to map to). Rows are sorted by decreasing similarity.

    Memoized per instance: the first call derives the table from [mat] and
    [tc2], later calls (from any solver, on any domain) return the same
    table. Callers must treat the rows as read-only. *)

val preset_candidates : t -> int array array -> unit
(** Install a candidate table computed earlier for an identical
    [(g1, g2, mat, ξ, tc2)] — the matching daemon's artifact cache uses
    this so warm queries skip the derivation entirely. The table must have
    one row per [g1] node.

    @raise Invalid_argument on a row-count mismatch. *)

val choose_best : t -> int -> Matching_list.Int_set.t -> int
(** The candidate of maximum similarity (ties: smallest id) — the [choose_u]
    policy of the implemented algorithms. *)

val qual_card : t -> Mapping.t -> float
val qual_sim : weights:float array -> t -> Mapping.t -> float

val is_valid : ?injective:bool -> t -> Mapping.t -> bool
(** Validity of a mapping for this instance. *)
