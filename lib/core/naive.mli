(** The naive approximation algorithms of Section 5: materialize the product
    graph of the AFP-reduction (Theorem 5.1), find an approximately maximum
    (weighted) clique with the Boppana–Halldórsson machinery, and translate
    the clique back into a mapping.

    Same approximation guarantee as compMaxCard/compMaxSim but
    O(|V1|³·|V2|³)-ish cost through the explicit product graph — exactly the
    cost the direct algorithms avoid. Kept as a reference implementation:
    tests cross-check the direct algorithms against it, and the benches
    show the gap. *)

val max_card : ?injective:bool -> ?budget:Phom_graph.Budget.t -> Instance.t -> Mapping.t
(** Approximate CPH / CPH¹⁻¹ via unweighted clique (ISRemoval). An
    exhausted [budget] truncates the clique search; the translated mapping
    is the (valid) best found so far. *)

val max_sim :
  ?injective:bool ->
  ?budget:Phom_graph.Budget.t ->
  ?weights:float array ->
  Instance.t ->
  Mapping.t
(** Approximate SPH / SPH¹⁻¹ via Halldórsson's weighted clique; anytime as
    {!max_card}. *)
