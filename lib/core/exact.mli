(** Exact solver: optimal (1-1) p-hom mappings and the NP-complete decision
    problems, by branch-and-bound.

    Exponential in the worst case — Theorems 4.1/4.3 say nothing better is
    possible — but practical on small graphs. It serves three roles: the
    optimality oracle for the approximation algorithms' quality tests, the
    decision procedure [G1 ⪯(e,p) G2] / [G1 ⪯¹⁻¹(e,p) G2], and the
    end-to-end check of the Appendix-A reductions. *)

type objective =
  | Cardinality  (** maximize [qualCard] — CPH / CPH¹⁻¹ *)
  | Similarity of float array  (** maximize [qualSim] with these node weights — SPH / SPH¹⁻¹ *)

type outcome = {
  mapping : Mapping.t;
  optimal : bool;
      (** [false] when the search-node budget ran out; [mapping] is then
          only the best found so far *)
}

val solve : ?injective:bool -> ?budget:int -> objective:objective -> Instance.t -> outcome
(** [budget] caps explored search nodes (default 5,000,000). *)

val enumerate_optimal :
  ?injective:bool ->
  ?budget:int ->
  ?limit:int ->
  objective:objective ->
  Instance.t ->
  Mapping.t list * bool
(** All optimal mappings (up to [limit], default 100), lexicographically
    de-duplicated, and whether the enumeration is exhaustive (false when
    the budget or the limit truncated it). Applications use this to present
    every witness — e.g. all maximal plagiarism correspondences. *)

val decide :
  ?injective:bool ->
  ?budget:int ->
  ?candidates:int array array ->
  Instance.t ->
  bool option
(** Does a (1-1) p-hom mapping of the {e entire} [G1] exist? [None] when the
    budget ran out before the answer was determined. [candidates] overrides
    {!Instance.candidates} — the hook {!Prefilter} uses to hand over its
    pruned candidate sets. *)
