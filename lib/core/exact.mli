(** Exact solver: optimal (1-1) p-hom mappings and the NP-complete decision
    problems, by branch-and-bound.

    Exponential in the worst case — Theorems 4.1/4.3 say nothing better is
    possible — but practical on small graphs. It serves three roles: the
    optimality oracle for the approximation algorithms' quality tests, the
    decision procedure [G1 ⪯(e,p) G2] / [G1 ⪯¹⁻¹(e,p) G2], and the
    end-to-end check of the Appendix-A reductions. *)

type objective =
  | Cardinality  (** maximize [qualCard] — CPH / CPH¹⁻¹ *)
  | Similarity of float array  (** maximize [qualSim] with these node weights — SPH / SPH¹⁻¹ *)

type outcome = {
  mapping : Mapping.t;
      (** always a valid (1-1 when [injective]) p-hom mapping — the best
          found so far when the budget ran out *)
  status : Phom_graph.Budget.status;
      (** [Complete] when the search finished (so [mapping] is optimal);
          [Exhausted _] when the budget tripped first *)
}

val solve :
  ?injective:bool ->
  ?budget:Phom_graph.Budget.t ->
  objective:objective ->
  Instance.t ->
  outcome
(** One budget tick per explored search node. When [budget] is omitted a
    fresh 5,000,000-step token is used — the historical safety net. *)

val enumerate_optimal :
  ?injective:bool ->
  ?budget:Phom_graph.Budget.t ->
  ?limit:int ->
  objective:objective ->
  Instance.t ->
  Mapping.t list * bool
(** All optimal mappings (up to [limit], default 100), lexicographically
    de-duplicated, and whether the enumeration is exhaustive (false when
    the budget or the limit truncated it). Applications use this to present
    every witness — e.g. all maximal plagiarism correspondences. *)

val decide :
  ?injective:bool ->
  ?budget:Phom_graph.Budget.t ->
  ?candidates:int array array ->
  Instance.t ->
  bool option
(** Does a (1-1) p-hom mapping of the {e entire} [G1] exist? [None] when the
    budget ran out before the answer was determined. [candidates] overrides
    {!Instance.candidates} — the hook {!Prefilter} uses to hand over its
    pruned candidate sets. *)
