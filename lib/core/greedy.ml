module ML = Matching_list
module Int_set = ML.Int_set
module Int_map = ML.Int_map

type result = { sigma : Mapping.t; conflict : (int * int) list }

(* Sized lists so that max() comparisons are O(1). *)
type sized = { size : int; items : (int * int) list }

let sized_empty = { size = 0; items = [] }
let cons pair s = { size = s.size + 1; items = pair :: s.items }

type caps = int Int_map.t option

type work =
  | Eval of ML.t * caps
  | Combine of int * int  (* the pair (v, u) whose two branches to merge *)

let m_runs = lazy (Phom_obs.Obs.counter "phom_solver_greedy_runs_total")

let run ?budget ~g1 ~tc2 ~choose_u ~mode h0 =
  Phom_obs.Obs.incr (Lazy.force m_runs);
  Phom_obs.Obs.span "greedy" @@ fun () ->
  let budget =
    match budget with Some b -> b | None -> Phom_graph.Budget.unlimited ()
  in
  let caps0 = match mode with `Free -> None | `Capacitated c -> Some c in
  let work = ref [ Eval (h0, caps0) ] in
  let results : (sized * sized) list ref = ref [] in
  let push_result r = results := r :: !results in
  let pop_result () =
    match !results with
    | r :: rest ->
        results := rest;
        r
    | [] -> assert false
  in
  while !work <> [] do
    match !work with
    | [] -> ()
    | Combine (v, u) :: rest ->
        work := rest;
        (* H⁻ was evaluated second, so its result is on top *)
        let s2, i2 = pop_result () in
        let s1, i1 = pop_result () in
        let sigma = if s1.size + 1 >= s2.size then cons (v, u) s1 else s2 in
        let conflict = if i1.size >= i2.size + 1 then i1 else cons (v, u) i2 in
        push_result (sigma, conflict)
    | Eval (h, caps) :: rest -> (
        work := rest;
        (* one tick per evaluated sub-list. When the budget trips, every
           pending branch evaluates to the empty mapping/conflict pair;
           the Combine frames still run, so the overall result is the best
           mapping assembled from the branches explored so far — always a
           valid (capacitated) p-hom mapping, just possibly smaller. *)
        if not (Phom_graph.Budget.tick budget) then
          push_result (sized_empty, sized_empty)
        else if ML.is_empty h then push_result (sized_empty, sized_empty)
        else
          match ML.pick h with
          | None ->
              (* every good set is empty: promote the minus sets (this is
                 what the recursion does implicitly via the H⁻ branch) *)
              let _, hminus = ML.split h in
              work := Eval (hminus, caps) :: !work
          | Some (v, goods) ->
              let u = choose_u v goods in
              if not (Int_set.mem u goods) then
                invalid_arg "Greedy.run: choose_u returned a non-candidate";
              (* line 3: H[v].minus := good \ {u}; H[v].good := ∅ *)
              let h = ML.move_to_minus h v (fun u' -> u' <> u) in
              let h = ML.set_good h v Int_set.empty in
              (* line 4: prune neighbours against (v, u) *)
              let h = Trim.trim ~g1 ~tc2 ~v ~u h in
              (* 1-1 / capacitated step: if u is exhausted under the
                 hypothesis (v, u), no other node may keep it in good *)
              let h, caps_plus =
                match caps with
                | None -> (h, None)
                | Some c ->
                    let remaining = Option.value ~default:1 (Int_map.find_opt u c) - 1 in
                    let c' = Some (Int_map.add u remaining c) in
                    if remaining > 0 then (h, c')
                    else
                      ( List.fold_left
                          (fun h v' ->
                            if v' = v then h
                            else ML.move_to_minus h v' (fun u' -> u' = u))
                          h (ML.nodes h),
                        c' )
              in
              let hplus, hminus = ML.split h in
              work :=
                Eval (hplus, caps_plus)
                :: Eval (hminus, caps)
                :: Combine (v, u)
                :: !work)
  done;
  match !results with
  | [ (sigma, conflict) ] ->
      { sigma = Mapping.normalize sigma.items; conflict = conflict.items }
  | _ -> assert false
