module D = Phom_graph.Digraph
module Simmat = Phom_sim.Simmat
module Ungraph = Phom_wis.Ungraph

(* ------------------------------------------------------------------ *)
(* 3SAT → p-hom                                                        *)
(* ------------------------------------------------------------------ *)

type literal = { var : int; positive : bool }

type cnf3 = { nvars : int; clauses : (literal * literal * literal) array }

let check_cnf phi =
  Array.iter
    (fun (l1, l2, l3) ->
      List.iter
        (fun l ->
          if l.var < 0 || l.var >= phi.nvars then
            invalid_arg "Reductions: literal variable out of range")
        [ l1; l2; l3 ];
      if l1.var = l2.var || l1.var = l3.var || l2.var = l3.var then
        invalid_arg "Reductions: clause variables must be distinct")
    phi.clauses

let literal_satisfied l value = value = l.positive

let rho_satisfies (l1, l2, l3) rho =
  (* bit k of rho assigns the variable in position k *)
  literal_satisfied l1 (rho land 1 <> 0)
  || literal_satisfied l2 (rho land 2 <> 0)
  || literal_satisfied l3 (rho land 4 <> 0)

let eval_cnf3 phi assignment =
  Array.for_all
    (fun (l1, l2, l3) ->
      List.exists (fun l -> literal_satisfied l assignment.(l.var)) [ l1; l2; l3 ])
    phi.clauses

let brute_force_sat phi =
  let m = phi.nvars in
  let rec try_mask mask =
    if mask >= 1 lsl m then false
    else begin
      let assignment = Array.init m (fun i -> mask land (1 lsl i) <> 0) in
      eval_cnf3 phi assignment || try_mask (mask + 1)
    end
  in
  try_mask 0

let phom_of_3sat phi =
  check_cnf phi;
  let m = phi.nvars and n = Array.length phi.clauses in
  (* G1: 0 = R1, 1+i = Xi, 1+m+j = Cj *)
  let x1 i = 1 + i and c1 j = 1 + m + j in
  let labels1 =
    Array.init (1 + m + n) (fun id ->
        if id = 0 then "R1"
        else if id <= m then "X" ^ string_of_int (id - 1)
        else "C" ^ string_of_int (id - 1 - m))
  in
  let edges1 = ref [] in
  for i = 0 to m - 1 do
    edges1 := (0, x1 i) :: !edges1
  done;
  Array.iteri
    (fun j (l1, l2, l3) ->
      List.iter (fun l -> edges1 := (x1 l.var, c1 j) :: !edges1) [ l1; l2; l3 ])
    phi.clauses;
  let g1 = D.make ~labels:labels1 ~edges:!edges1 in
  (* G2: 0 = R2, 1 = T, 2 = F, 3+2i = XTi, 4+2i = XFi, 3+2m+8j+rho = Cj(rho) *)
  let xt i = 3 + (2 * i) and xf i = 4 + (2 * i) in
  let cl j rho = 3 + (2 * m) + (8 * j) + rho in
  let n2 = 3 + (2 * m) + (8 * n) in
  let labels2 =
    Array.init n2 (fun id ->
        if id = 0 then "R2"
        else if id = 1 then "T"
        else if id = 2 then "F"
        else if id < 3 + (2 * m) then begin
          let i = (id - 3) / 2 in
          if (id - 3) mod 2 = 0 then "XT" ^ string_of_int i else "XF" ^ string_of_int i
        end
        else begin
          let off = id - 3 - (2 * m) in
          Printf.sprintf "C%d(%d)" (off / 8) (off mod 8)
        end)
  in
  let edges2 = ref [ (0, 1); (0, 2) ] in
  for i = 0 to m - 1 do
    edges2 := (1, xt i) :: (2, xf i) :: !edges2
  done;
  Array.iteri
    (fun j ((l1, l2, l3) as clause) ->
      for rho = 0 to 7 do
        if rho_satisfies clause rho then
          List.iteri
            (fun k l ->
              let bit = rho land (1 lsl k) <> 0 in
              let src = if bit then xt l.var else xf l.var in
              edges2 := (src, cl j rho) :: !edges2)
            [ l1; l2; l3 ]
      done)
    phi.clauses;
  let g2 = D.make ~labels:labels2 ~edges:!edges2 in
  let mat = Simmat.create ~n1:(D.n g1) ~n2 in
  Simmat.set mat 0 0 1.;
  for i = 0 to m - 1 do
    Simmat.set mat (x1 i) (xt i) 1.;
    Simmat.set mat (x1 i) (xf i) 1.
  done;
  for j = 0 to n - 1 do
    for rho = 0 to 7 do
      Simmat.set mat (c1 j) (cl j rho) 1.
    done
  done;
  Instance.make ~g1 ~g2 ~mat ~xi:1.0 ()

let assignment_of_mapping phi mapping =
  let m = phi.nvars in
  Array.init m (fun i ->
      match Mapping.apply mapping (1 + i) with
      | Some u -> u = 3 + (2 * i) (* XTi *)
      | None -> false)

(* ------------------------------------------------------------------ *)
(* X3C → 1-1 p-hom                                                     *)
(* ------------------------------------------------------------------ *)

type x3c = { universe : int; triples : (int * int * int) array }

let check_x3c inst =
  if inst.universe mod 3 <> 0 then invalid_arg "Reductions: universe must be 3q";
  Array.iter
    (fun (a, b, c) ->
      if a = b || a = c || b = c then invalid_arg "Reductions: triple not distinct";
      List.iter
        (fun e ->
          if e < 0 || e >= inst.universe then
            invalid_arg "Reductions: triple element out of range")
        [ a; b; c ])
    inst.triples

let one_one_phom_of_x3c inst =
  check_x3c inst;
  let q = inst.universe / 3 and n = Array.length inst.triples in
  (* G1 (a tree): 0 = R1, 1+i = C'i, 1+q+3i+k = leaves of C'i *)
  let ci i = 1 + i and leaf i k = 1 + q + (3 * i) + k in
  let labels1 =
    Array.init (1 + (4 * q)) (fun id ->
        if id = 0 then "R1"
        else if id <= q then "C'" ^ string_of_int (id - 1)
        else "X'" ^ string_of_int (id - 1 - q))
  in
  let edges1 = ref [] in
  for i = 0 to q - 1 do
    edges1 := (0, ci i) :: !edges1;
    for k = 0 to 2 do
      edges1 := (ci i, leaf i k) :: !edges1
    done
  done;
  let g1 = D.make ~labels:labels1 ~edges:!edges1 in
  (* G2 (a DAG): 0 = R2, 1+j = Cj, 1+n+e = element e *)
  let cj j = 1 + j and elt e = 1 + n + e in
  let labels2 =
    Array.init (1 + n + inst.universe) (fun id ->
        if id = 0 then "R2"
        else if id <= n then "C" ^ string_of_int (id - 1)
        else "X" ^ string_of_int (id - 1 - n))
  in
  let edges2 = ref [] in
  Array.iteri
    (fun j (a, b, c) ->
      edges2 := (0, cj j) :: !edges2;
      List.iter (fun e -> edges2 := (cj j, elt e) :: !edges2) [ a; b; c ])
    inst.triples;
  let g2 = D.make ~labels:labels2 ~edges:!edges2 in
  let mat = Simmat.create ~n1:(D.n g1) ~n2:(D.n g2) in
  Simmat.set mat 0 0 1.;
  for i = 0 to q - 1 do
    for j = 0 to n - 1 do
      Simmat.set mat (ci i) (cj j) 1.
    done;
    for k = 0 to 2 do
      for e = 0 to inst.universe - 1 do
        Simmat.set mat (leaf i k) (elt e) 1.
      done
    done
  done;
  Instance.make ~g1 ~g2 ~mat ~xi:1.0 ()

let brute_force_x3c inst =
  check_x3c inst;
  if inst.universe > 60 then invalid_arg "Reductions.brute_force_x3c: too large";
  let full = (1 lsl inst.universe) - 1 in
  let masks =
    Array.map (fun (a, b, c) -> (1 lsl a) lor (1 lsl b) lor (1 lsl c)) inst.triples
  in
  let n = Array.length masks in
  let rec go j covered =
    if covered = full then true
    else if j >= n then false
    else if masks.(j) land covered <> 0 then go (j + 1) covered
    else go (j + 1) (covered lor masks.(j)) || go (j + 1) covered
  in
  go 0 0

(* ------------------------------------------------------------------ *)
(* p-hom → MCP/MSP (Corollary 4.2)                                     *)
(* ------------------------------------------------------------------ *)

let mcp_of_phom (t : Instance.t) =
  let mat' =
    Simmat.of_fun ~n1:(D.n t.Instance.g1) ~n2:(D.n t.Instance.g2) (fun v u ->
        let s = Simmat.get t.Instance.mat v u in
        if s >= t.Instance.xi then 1. else s)
  in
  Instance.make ~tc2:t.Instance.tc2 ~g1:t.Instance.g1 ~g2:t.Instance.g2
    ~mat:mat' ~xi:t.Instance.xi ()

(* ------------------------------------------------------------------ *)
(* WIS → SPH                                                           *)
(* ------------------------------------------------------------------ *)

let sph_of_wis g =
  let n = Ungraph.n g in
  let labels = Array.init n (fun i -> "N" ^ string_of_int i) in
  (* orient each undirected edge from the smaller to the larger endpoint *)
  let edges = ref [] in
  for u = 0 to n - 1 do
    Phom_graph.Bitset.iter
      (fun v -> if v > u then edges := (u, v) :: !edges)
      (Ungraph.neighbors g u)
  done;
  let g1 = D.make ~labels ~edges:!edges in
  let g2 = D.make ~labels ~edges:[] in
  let mat = Simmat.of_label_equality g1 g2 in
  let weights = Array.init n (Ungraph.weight g) in
  (Instance.make ~g1 ~g2 ~mat ~xi:1.0 (), weights)

let independent_set_of_mapping mapping = List.map fst mapping
