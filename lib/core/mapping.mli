(** (1-1) p-hom mappings and the two quality metrics of Section 3.3.

    A mapping is a finite function from [G1] nodes to [G2] nodes, represented
    as an association list sorted by [G1] node with distinct keys. The domain
    is the subgraph of [G1] {e induced} by the mapped nodes: validity
    requires every [G1] edge {e between mapped nodes} to map to a non-empty
    [G2] path. *)

type t = (int * int) list

val normalize : (int * int) list -> t
(** Sort by [G1] node; raises [Invalid_argument] on duplicate keys. *)

val domain : t -> int list
val size : t -> int

val is_function : (int * int) list -> bool
(** No [G1] node mapped twice. *)

val is_injective : t -> bool
(** No [G2] node used twice. *)

val is_phom :
  g1:Phom_graph.Digraph.t ->
  tc2:Phom_graph.Bitmatrix.t ->
  mat:Phom_sim.Simmat.t ->
  xi:float ->
  t ->
  bool
(** Definition 3.2 checked literally: every pair clears the similarity
    threshold, and every [G1] edge with both endpoints in the domain
    (including self-loops) maps to a non-empty path of [G2], i.e. an edge of
    the transitive closure [tc2]. *)

val is_one_one_phom :
  g1:Phom_graph.Digraph.t ->
  tc2:Phom_graph.Bitmatrix.t ->
  mat:Phom_sim.Simmat.t ->
  xi:float ->
  t ->
  bool
(** {!is_phom} plus injectivity. *)

val qual_card : n1:int -> t -> float
(** [|dom σ| / |V1|]; defined as 1.0 when [n1 = 0]. *)

val qual_sim : weights:float array -> mat:Phom_sim.Simmat.t -> t -> float
(** [Σ_{v ∈ dom} w(v)·mat(v, σv) / Σ_{v ∈ V1} w(v)]; 1.0 when the total
    weight is 0. *)

val apply : t -> int -> int option

val pp : Format.formatter -> t -> unit
