module D = Phom_graph.Digraph
module BM = Phom_graph.Bitmatrix
module Budget = Phom_graph.Budget
module Pool = Phom_parallel.Pool
module Simmat = Phom_sim.Simmat
module Components = Phom_graph.Components
module Condensation = Phom_graph.Condensation
module TC = Phom_graph.Transitive_closure

let matchable_nodes (t : Instance.t) =
  let cands = Instance.candidates t in
  List.filter
    (fun v -> Array.length cands.(v) > 0)
    (List.init (D.n t.g1) Fun.id)

let best_candidate (t : Instance.t) v =
  let cands = Instance.candidates t in
  match Array.to_list cands.(v) with
  | [] -> None
  | u :: _ -> Some u (* rows are sorted by decreasing similarity *)

let partitioned ?pool ?budget algo (t : Instance.t) =
  let kept = matchable_nodes t in
  let groups = Components.of_subset t.g1 kept in
  let solve_group b group =
    match group with
    | [ v ] -> (
        match best_candidate t v with None -> [] | Some u -> [ (v, u) ])
    | _ ->
        let g1c, old_of_new = D.induced t.g1 group in
        let mat_c =
          Simmat.restrict t.mat ~rows:old_of_new
            ~cols:(Array.init (D.n t.g2) Fun.id)
        in
        let sub =
          Instance.make ~tc2:t.tc2 ~g1:g1c ~g2:t.g2 ~mat:mat_c ~xi:t.xi ()
        in
        List.map (fun (v, u) -> (old_of_new.(v), u)) (algo ?budget:b sub old_of_new)
  in
  let mappings =
    match pool with
    | Some p when Pool.size p > 1 && List.length groups > 1 ->
        (* one forked budget per component, pre-forked in this domain so the
           pool tasks never mutate the parent token; joined back below so
           the parent reflects the family's consumption and first trip *)
        let tagged =
          List.map (fun g -> (Option.map Budget.fork budget, g)) groups
        in
        let out = Pool.map_list p (fun (b, g) -> solve_group b g) tagged in
        List.iter
          (fun (b, _) ->
            match (budget, b) with
            | Some parent, Some child -> Budget.join parent child
            | _ -> ())
          tagged;
        out
    | _ -> List.map (solve_group budget) groups
  in
  Mapping.normalize (List.concat mappings)

type compressed = {
  orig : Instance.t;
  sub : Instance.t;
  cond : Condensation.t;
  capacities : int Matching_list.Int_map.t;
}

let compress (t : Instance.t) =
  let cond = Condensation.compress t.g2 in
  let count = D.n cond.Condensation.graph in
  let mat' =
    Simmat.of_fun ~n1:(D.n t.g1) ~n2:count (fun v c ->
        List.fold_left
          (fun acc u -> Float.max acc (Simmat.get t.mat v u))
          0. cond.Condensation.members.(c))
  in
  let sub =
    Instance.make ~g1:t.g1 ~g2:cond.Condensation.graph ~mat:mat' ~xi:t.xi ()
  in
  let capacities =
    Array.to_seq (Array.mapi (fun c ms -> (c, List.length ms)) cond.Condensation.members)
    |> Matching_list.Int_map.of_seq
  in
  { orig = t; sub; cond; capacities }

(* Maximum bipartite matching (Kuhn's augmenting paths) of G1 nodes to the
   eligible members of one clique. *)
let assign_within_clique (t : Instance.t) members vs =
  let members = Array.of_list members in
  let eligible v =
    let out = ref [] in
    Array.iteri
      (fun j u -> if Simmat.get t.mat v u >= t.xi then out := (j, Simmat.get t.mat v u) :: !out)
      members;
    (* try high-similarity members first *)
    List.sort (fun (_, a) (_, b) -> compare b a) !out |> List.map fst
  in
  let owner = Array.make (Array.length members) (-1) in
  let assignment = Hashtbl.create 16 in
  let rec augment v visited =
    List.exists
      (fun j ->
        if visited.(j) then false
        else begin
          visited.(j) <- true;
          if owner.(j) < 0 || augment owner.(j) visited then begin
            owner.(j) <- v;
            Hashtbl.replace assignment v members.(j);
            true
          end
          else false
        end)
      (eligible v)
  in
  List.iter (fun v -> ignore (augment v (Array.make (Array.length members) false))) vs;
  assignment

let decompress ?(injective = false) c mapping =
  let mat = c.orig.Instance.mat and xi = c.orig.Instance.xi in
  let members = c.cond.Condensation.members in
  if not injective then
    Mapping.normalize
      (List.filter_map
         (fun (v, comp) ->
           let best = ref (-1) and best_sim = ref neg_infinity in
           List.iter
             (fun u ->
               let s = Simmat.get mat v u in
               if s >= xi && s > !best_sim then begin
                 best := u;
                 best_sim := s
               end)
             members.(comp);
           if !best < 0 then None else Some (v, !best))
         mapping)
  else begin
    (* group by clique, run a bipartite assignment inside each *)
    let by_comp = Hashtbl.create 16 in
    List.iter
      (fun (v, comp) ->
        Hashtbl.replace by_comp comp
          (v :: Option.value ~default:[] (Hashtbl.find_opt by_comp comp)))
      mapping;
    let out = ref [] in
    Hashtbl.iter
      (fun comp vs ->
        let assignment = assign_within_clique c.orig members.(comp) (List.rev vs) in
        Hashtbl.iter (fun v u -> out := (v, u) :: !out) assignment)
      by_comp;
    Mapping.normalize !out
  end

let with_compression ?injective algo t =
  let c = compress t in
  decompress ?injective c (algo c.sub)
