module ML = Matching_list

let initial_caps h =
  (* every G2 node occurring as a candidate gets capacity 1 *)
  ML.Int_map.fold
    (fun _ e acc ->
      let add u acc = ML.Int_map.add u 1 acc in
      ML.Int_set.fold add e.ML.minus (ML.Int_set.fold add e.ML.good acc))
    h ML.Int_map.empty

let run_on ?(injective = false) ?budget ?capacities ?(pick = `Best_sim)
    (t : Instance.t) h0 =
  let budget =
    match budget with Some b -> b | None -> Phom_graph.Budget.unlimited ()
  in
  let mode =
    if injective then
      `Capacitated (Option.value capacities ~default:(initial_caps h0))
    else `Free
  in
  let choose_u =
    match pick with
    | `Best_sim -> Instance.choose_best t
    | `First -> fun _ goods -> ML.Int_set.min_elt goods
  in
  let rounds = Phom_obs.Obs.counter "phom_solver_greedy_rounds_total" in
  let rec loop h best =
    if ML.size h <= Mapping.size best || Phom_graph.Budget.exhausted budget then
      best
    else begin
      Phom_obs.Obs.incr rounds;
      let { Greedy.sigma; conflict } =
        Greedy.run ~budget ~g1:t.g1 ~tc2:t.tc2 ~choose_u ~mode h
      in
      let best = if Mapping.size sigma > Mapping.size best then sigma else best in
      (* [conflict] is non-empty whenever [h] is, so the loop shrinks [h];
         the guard is pure defensive programming *)
      if conflict = [] then best else loop (ML.remove_pairs h conflict) best
    end
  in
  loop h0 []

let run ?injective ?budget ?capacities ?pick t =
  Phom_obs.Obs.span "comp_max_card" (fun () ->
      run_on ?injective ?budget ?capacities ?pick t
        (ML.of_candidates (Instance.candidates t)))
