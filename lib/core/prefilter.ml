module D = Phom_graph.Digraph
module BM = Phom_graph.Bitmatrix
module Budget = Phom_graph.Budget

let refine ?budget (t : Instance.t) =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let n1 = D.n t.g1 in
  let cands = Array.map (fun row -> ref (Array.to_list row)) (Instance.candidates t) in
  let supported v u =
    (* u supports v iff every G1 edge at v can be continued from u *)
    Array.for_all
      (fun v' -> List.exists (fun u' -> BM.get t.tc2 u u') !(cands.(v')))
      (D.succ t.g1 v)
    && Array.for_all
         (fun v' -> List.exists (fun u' -> BM.get t.tc2 u' u) !(cands.(v')))
         (D.pred t.g1 v)
  in
  (* An interrupted fixpoint leaves a superset of the arc-consistent
     candidates — still sound (no valid pair is ever dropped), just less
     pruned. *)
  begin
    try
      let changed = ref true in
      while !changed do
        changed := false;
        for v = 0 to n1 - 1 do
          Budget.tick_exn budget;
          let kept, dropped = List.partition (supported v) !(cands.(v)) in
          if dropped <> [] then begin
            cands.(v) := kept;
            changed := true
          end
        done
      done
    with Budget.Exhausted_budget -> ()
  end;
  Array.map (fun r -> Array.of_list !r) cands

let decide ?injective ?budget (t : Instance.t) =
  let candidates = refine ?budget t in
  if Array.exists (fun row -> Array.length row = 0) candidates then Some false
  else Exact.decide ?injective ?budget ~candidates t
