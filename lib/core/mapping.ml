module D = Phom_graph.Digraph
module BM = Phom_graph.Bitmatrix
module Simmat = Phom_sim.Simmat

type t = (int * int) list

let is_function pairs =
  let seen = Hashtbl.create 16 in
  List.for_all
    (fun (v, _) ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.add seen v ();
        true
      end)
    pairs

let normalize pairs =
  if not (is_function pairs) then invalid_arg "Mapping.normalize: duplicate key";
  List.sort compare pairs

let domain t = List.map fst t
let size = List.length

let is_injective t =
  let seen = Hashtbl.create 16 in
  List.for_all
    (fun (_, u) ->
      if Hashtbl.mem seen u then false
      else begin
        Hashtbl.add seen u ();
        true
      end)
    t

let is_phom ~g1 ~tc2 ~mat ~xi t =
  is_function t
  && begin
       let image = Hashtbl.create 16 in
       List.iter (fun (v, u) -> Hashtbl.replace image v u) t;
       List.for_all
         (fun (v, u) ->
           Simmat.get mat v u >= xi
           && Array.for_all
                (fun v' ->
                  match Hashtbl.find_opt image v' with
                  | None -> true
                  | Some u' -> BM.get tc2 u u')
                (D.succ g1 v))
         t
     end

let is_one_one_phom ~g1 ~tc2 ~mat ~xi t =
  is_injective t && is_phom ~g1 ~tc2 ~mat ~xi t

let qual_card ~n1 t =
  if n1 = 0 then 1.0 else float_of_int (size t) /. float_of_int n1

let qual_sim ~weights ~mat t =
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then 1.0
  else begin
    let gained =
      List.fold_left
        (fun acc (v, u) -> acc +. (weights.(v) *. Simmat.get mat v u))
        0. t
    in
    gained /. total
  end

let apply t v = List.assoc_opt v t

let pp ppf t =
  Format.fprintf ppf "@[<h>{%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (v, u) -> Format.fprintf ppf "%d↦%d" v u))
    t
