(* One global registry. The hot paths (incr/add/observe) touch only
   Atomics so Domain workers never contend on a lock; the mutex guards
   the name->instrument table, taken on first registration and on dump. *)

let enabled_flag = Atomic.make true
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

type counter = int Atomic.t
type gauge = int Atomic.t

type histogram = {
  bounds : float array; (* strictly increasing upper bounds, no +Inf *)
  buckets : int Atomic.t array; (* length bounds + 1; last is overflow *)
  sum_micro : int Atomic.t; (* fixed-point sum, 1e-6 units *)
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Probe of (unit -> float) ref

(* identity = name + labels sorted by key, rendered once at creation *)
let render_name name labels =
  match List.sort compare labels with
  | [] -> name
  | ls ->
      let quote v =
        let b = Buffer.create (String.length v + 2) in
        String.iter
          (fun c ->
            match c with
            | '"' -> Buffer.add_string b "\\\""
            | '\\' -> Buffer.add_string b "\\\\"
            | '\n' -> Buffer.add_string b "\\n"
            | c -> Buffer.add_char b c)
          v;
        Buffer.contents b
      in
      Printf.sprintf "%s{%s}" name
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (quote v)) ls))

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let get_or_create key make =
  with_lock (fun () ->
      match Hashtbl.find_opt registry key with
      | Some i -> i
      | None ->
          let i = make () in
          Hashtbl.replace registry key i;
          i)

let counter ?(labels = []) name =
  match
    get_or_create (render_name name labels) (fun () -> Counter (Atomic.make 0))
  with
  | Counter c -> c
  | _ -> invalid_arg (name ^ ": registered as a non-counter")

let incr c = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c 1)

let add c n =
  if n > 0 && Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c n)

let counter_value = Atomic.get

let gauge ?(labels = []) name =
  match
    get_or_create (render_name name labels) (fun () -> Gauge (Atomic.make 0))
  with
  | Gauge g -> g
  | _ -> invalid_arg (name ^ ": registered as a non-gauge")

let set_gauge g v = if Atomic.get enabled_flag then Atomic.set g v

let add_gauge g n =
  if n <> 0 && Atomic.get enabled_flag then ignore (Atomic.fetch_and_add g n)

let gauge_value = Atomic.get

let register_probe ?(labels = []) name f =
  let key = render_name name labels in
  with_lock (fun () ->
      match Hashtbl.find_opt registry key with
      | Some (Probe r) -> r := f
      | Some _ -> invalid_arg (name ^ ": registered as a non-probe")
      | None -> Hashtbl.replace registry key (Probe (ref f)))

let default_buckets =
  [| 1e-5; 1e-4; 1e-3; 5e-3; 0.01; 0.05; 0.1; 0.5; 1.0; 5.0; 10.0 |]

let histogram ?(labels = []) ?(buckets = default_buckets) name =
  match
    get_or_create (render_name name labels) (fun () ->
        Array.iteri
          (fun i b ->
            if i > 0 && buckets.(i - 1) >= b then
              invalid_arg (name ^ ": bucket bounds must be strictly increasing"))
          buckets;
        Histogram
          {
            bounds = Array.copy buckets;
            buckets =
              Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
            sum_micro = Atomic.make 0;
          })
  with
  | Histogram h -> h
  | _ -> invalid_arg (name ^ ": registered as a non-histogram")

let bucket_index h v =
  let n = Array.length h.bounds in
  let rec go lo hi =
    (* first bound >= v, else the overflow bucket *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if h.bounds.(mid) >= v then go lo mid else go (mid + 1) hi
  in
  go 0 n

let observe h v =
  if Atomic.get enabled_flag then begin
    ignore (Atomic.fetch_and_add h.buckets.(bucket_index h v) 1);
    let micro = int_of_float (Float.round (v *. 1e6)) in
    if micro <> 0 then ignore (Atomic.fetch_and_add h.sum_micro micro)
  end

let histogram_count h =
  Array.fold_left (fun acc b -> acc + Atomic.get b) 0 h.buckets

let histogram_sum h = float_of_int (Atomic.get h.sum_micro) *. 1e-6

let quantile h q =
  let counts = Array.map Atomic.get h.buckets in
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then Float.nan
  else
    let rank =
      (* nearest-rank: smallest k with cumulative >= ceil(q * total) *)
      max 1 (int_of_float (Float.ceil (q *. float_of_int total)))
    in
    let n = Array.length counts in
    let rec go i cum =
      if i >= n then Float.infinity
      else
        let cum = cum + counts.(i) in
        if cum >= rank then
          if i < Array.length h.bounds then h.bounds.(i) else Float.infinity
        else go (i + 1) cum
    in
    go 0 0

(* --- spans ------------------------------------------------------------ *)

(* spans fire on solver hot paths, so their instruments resolve through a
   lock-free memo (a CAS'd association list — span names are few and
   static) instead of paying the registry's label rendering and mutex on
   every call; the memo holds the same instruments the registry dumps *)
let memoized memo make name =
  match List.assoc_opt name (Atomic.get memo) with
  | Some i -> i
  | None ->
      let i = make name in
      let rec publish () =
        let cur = Atomic.get memo in
        if not (List.mem_assoc name cur) then
          if not (Atomic.compare_and_set memo cur ((name, i) :: cur)) then
            publish ()
      in
      publish ();
      i

let span_hists : (string * histogram) list Atomic.t = Atomic.make []

let span_hist =
  memoized span_hists (fun name ->
      histogram ~labels:[ ("span", name) ] "phom_span_seconds")

let span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let h = span_hist name in
    let t0 = Unix.gettimeofday () in
    match f () with
    | x ->
        observe h (Unix.gettimeofday () -. t0);
        x
    | exception e ->
        observe h (Unix.gettimeofday () -. t0);
        raise e
  end

let span_counters : (string * counter) list Atomic.t = Atomic.make []

let span_counter =
  memoized span_counters (fun name ->
      counter ~labels:[ ("span", name) ] "phom_span_budget_steps_total")

let span_steps name n = add (span_counter name) n

(* --- readout ---------------------------------------------------------- *)

let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%d" (int_of_float v)
  else Printf.sprintf "%.9g" v

let le_repr b =
  if b = Float.infinity then "+Inf"
  else if Float.is_integer b && Float.abs b < 1e15 then
    Printf.sprintf "%d" (int_of_float b)
  else Printf.sprintf "%.9g" b

(* a rendered key split back into (name, label body) so suffixes can attach
   to the name and extra labels can join the body *)
let split_key key =
  match String.index_opt key '{' with
  | None -> (key, "")
  | Some i ->
      (String.sub key 0 i, String.sub key (i + 1) (String.length key - i - 2))

let render_key ?(suffix = "") ?extra key =
  let name, body = split_key key in
  let body =
    match (body, extra) with
    | b, None -> b
    | "", Some e -> e
    | b, Some e -> b ^ "," ^ e
  in
  if body = "" then name ^ suffix
  else Printf.sprintf "%s%s{%s}" name suffix body

let histogram_lines key h =
  let counts = Array.map Atomic.get h.buckets in
  let total = Array.fold_left ( + ) 0 counts in
  let cum = ref 0 in
  let bucket_lines =
    List.init
      (Array.length counts)
      (fun i ->
        cum := !cum + counts.(i);
        let le =
          if i < Array.length h.bounds then h.bounds.(i) else Float.infinity
        in
        Printf.sprintf "%s %d"
          (render_key ~suffix:"_bucket"
             ~extra:(Printf.sprintf "le=\"%s\"" (le_repr le))
             key)
          !cum)
  in
  bucket_lines
  @ [
      Printf.sprintf "%s %d" (render_key ~suffix:"_count" key) total;
      Printf.sprintf "%s %s"
        (render_key ~suffix:"_sum" key)
        (float_repr (histogram_sum h));
    ]
  @ List.map
      (fun q ->
        Printf.sprintf "%s %s"
          (render_key ~extra:(Printf.sprintf "quantile=\"%g\"" q) key)
          (float_repr (quantile h q)))
      [ 0.5; 0.9; 0.99 ]

let dump_lines () =
  let entries =
    with_lock (fun () ->
        Hashtbl.fold (fun k i acc -> (k, i) :: acc) registry [])
  in
  let entries = List.sort (fun (a, _) (b, _) -> compare a b) entries in
  List.concat_map
    (fun (key, i) ->
      match i with
      | Counter c -> [ Printf.sprintf "%s %d" key (Atomic.get c) ]
      | Gauge g -> [ Printf.sprintf "%s %d" key (Atomic.get g) ]
      | Probe r -> [ Printf.sprintf "%s %s" key (float_repr (!r ())) ]
      | Histogram h -> histogram_lines key h)
    entries

let dump () = String.concat "\n" (dump_lines ()) ^ "\n"

let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ i ->
          match i with
          | Counter c | Gauge c -> Atomic.set c 0
          | Probe _ -> ()
          | Histogram h ->
              Array.iter (fun b -> Atomic.set b 0) h.buckets;
              Atomic.set h.sum_micro 0)
        registry)
