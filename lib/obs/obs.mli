(** A dependency-free metrics registry for the matching stack.

    One global registry holds three instrument kinds — monotonic counters,
    gauges, and fixed-bucket histograms with p50/p90/p99 readout — plus
    sampled probes (callbacks read at dump time, for values that already
    live elsewhere, e.g. the LRU cache's own atomic counters). Every
    instrument's hot path is a single [Atomic] operation, so Domain workers
    record concurrently without locks; the registry mutex is only taken on
    first registration and on [dump].

    Instruments are identified by (name, sorted labels). Creation is
    get-or-create: asking twice for the same identity returns the same
    instrument, so modules can create their instruments at init or lazily
    at first use without coordination. Registering a probe under an
    existing identity {e replaces} it — a fresh daemon state re-points the
    daemon-family probes at itself.

    [dump] renders the whole registry as Prometheus text-format lines
    ([name{label="v"} value]), sorted by name for deterministic output. *)

(** {1 Global switch} *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** When disabled, every record operation is a no-op (one atomic load);
    instruments keep their values. The switch exists so the overhead bench
    can compare metrics-on vs metrics-off on identical work. *)

(** {1 Counters} *)

type counter

val counter : ?labels:(string * string) list -> string -> counter
(** Get or create the monotonic counter [name{labels}]. *)

val incr : counter -> unit

val add : counter -> int -> unit
(** Negative deltas are ignored: counters are monotone. *)

val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : ?labels:(string * string) list -> string -> gauge

val set_gauge : gauge -> int -> unit

val add_gauge : gauge -> int -> unit
(** Deltas may be negative (queue depths, in-flight counts). *)

val gauge_value : gauge -> int

(** {1 Probes} *)

val register_probe : ?labels:(string * string) list -> string -> (unit -> float) -> unit
(** [register_probe name f] samples [f ()] at every [dump]. Registering an
    existing identity replaces the callback. The callback runs outside the
    registry lock, so it may take its own locks; it must not call back into
    the registry. *)

(** {1 Histograms} *)

type histogram

val default_buckets : float array
(** Latency buckets in seconds: 10µs .. 10s, roughly log-spaced. *)

val histogram :
  ?labels:(string * string) list -> ?buckets:float array -> string -> histogram
(** Get or create. [buckets] are strictly increasing upper bounds; an
    implicit [+Inf] bucket is appended. [buckets] is only consulted on
    creation — later callers inherit the creator's bounds. *)

val observe : histogram -> float -> unit
(** Record one observation. The bucket count is exact; the running sum is
    kept in fixed-point microunits (1e-6), ample for latencies and sizes. *)

val histogram_count : histogram -> int

val histogram_sum : histogram -> float

val quantile : histogram -> float -> float
(** Nearest-rank quantile estimated from the bucket bounds: the upper bound
    of the bucket holding the rank ([infinity] when it lands in the
    overflow bucket, [nan] when the histogram is empty). *)

(** {1 Spans} *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] times [f ()] (even when it raises) and records the wall
    time into the histogram [phom_span_seconds{span=name}]. When metrics
    are disabled this is exactly [f ()]. *)

val span_steps : string -> int -> unit
(** Record budget steps consumed under span [name] into the counter
    [phom_span_budget_steps_total{span=name}]. Callers that run under a
    budget pair this with {!span}: the registry is dependency-free, so it
    cannot read budget tokens itself. *)

(** {1 Readout} *)

val dump_lines : unit -> string list
(** Prometheus text-format lines, sorted by metric name. Counters and
    gauges render as [name{labels} value]; histograms render cumulative
    [_bucket{le="..."}] lines, [_count], [_sum], and p50/p90/p99
    [{quantile="..."}] lines. *)

val dump : unit -> string
(** [dump_lines] joined with newlines, trailing newline included. *)

val reset : unit -> unit
(** Zero every counter, gauge, and histogram (probes are left alone — they
    sample live state owned elsewhere). For tests and benches. *)
