module D = Phom_graph.Digraph

let similarity ?(iters = 20) g1 g2 =
  let iters = if iters mod 2 = 0 then iters else iters + 1 in
  let n1 = D.n g1 and n2 = D.n g2 in
  let s = ref (Matops.init ~rows:n1 ~cols:n2 (fun _ _ -> 1.)) in
  for _ = 1 to iters do
    let child = Matops.right_mul (Matops.left_mul `A g1 !s) `AT g2 in
    let parent = Matops.right_mul (Matops.left_mul `AT g1 !s) `A g2 in
    s := Matops.normalize_frobenius (Matops.add child parent)
  done;
  Matops.to_simmat (Matops.normalize_max !s)
