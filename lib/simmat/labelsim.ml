type t = { pool : Phom_graph.Generators.label_pool; seed : int }

let make ~pool ~seed = { pool; seed }

(* splitmix64 finalizer over the pair hash; stable across runs. *)
let mix z =
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 in
  let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb in
  z lxor (z lsr 31)

let string_hash s =
  let h = ref 0x4bf29ce484222325 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001b3) s;
  !h

let sim t a b =
  if String.equal a b then 1.0
  else begin
    let ga = Phom_graph.Generators.group_of_label t.pool a in
    let gb = Phom_graph.Generators.group_of_label t.pool b in
    if ga <> gb then 0.0
    else begin
      let lo, hi = if compare a b <= 0 then (a, b) else (b, a) in
      let h = mix (string_hash lo lxor mix (string_hash hi lxor mix t.seed)) in
      float_of_int (h land 0xfffffff) /. float_of_int 0xfffffff
    end
  end

let matrix t g1 g2 = Simmat.of_label_sim (sim t) g1 g2
