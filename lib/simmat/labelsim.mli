(** The synthetic-data label similarity of the paper's Section 6.

    The pattern generator draws labels from a pool of [5m] labels split into
    [√(5m)] groups. "Labels in different groups were considered totally
    different, while labels in the same group were assigned similarities
    randomly drawn from [0,1]" — and a label is fully similar to itself.

    The random draw is implemented as a pure hash of the (unordered) label
    pair and a seed, so the similarity table never needs to be materialized
    and generation is replayable. *)

type t

val make : pool:Phom_graph.Generators.label_pool -> seed:int -> t

val sim : t -> string -> string -> float
(** 1.0 for equal labels; a pair-deterministic pseudo-random value in
    [[0, 1]] for distinct labels of the same group; 0.0 across groups. *)

val matrix : t -> Phom_graph.Digraph.t -> Phom_graph.Digraph.t -> Simmat.t
(** Tabulated over two graphs labelled from the pool. *)
