module D = Phom_graph.Digraph

type t = { rows : int; cols : int; a : float array }

let zero ~rows ~cols =
  { rows; cols; a = Array.make (max 1 (rows * cols)) 0. }

let init ~rows ~cols f =
  let m = zero ~rows ~cols in
  for v = 0 to rows - 1 do
    for u = 0 to cols - 1 do
      m.a.((v * cols) + u) <- f v u
    done
  done;
  m

let check m v u =
  if v < 0 || v >= m.rows || u < 0 || u >= m.cols then
    invalid_arg "Matops: index out of bounds"

let get m v u =
  check m v u;
  m.a.((v * m.cols) + u)

let set m v u x =
  check m v u;
  m.a.((v * m.cols) + u) <- x

let copy m = { m with a = Array.copy m.a }

let same_dims a b op =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg ("Matops." ^ op ^ ": dimension mismatch")

let entrywise f a b =
  same_dims a b "entrywise";
  { a with a = Array.init (Array.length a.a) (fun i -> f a.a.(i) b.a.(i)) }

let add a b = entrywise ( +. ) a b

let map f m = { m with a = Array.map f m.a }

let scale_rows_cols ~row ~col x =
  if Array.length row <> x.rows || Array.length col <> x.cols then
    invalid_arg "Matops.scale_rows_cols: dimension mismatch";
  let out = zero ~rows:x.rows ~cols:x.cols in
  for v = 0 to x.rows - 1 do
    let rv = row.(v) in
    for u = 0 to x.cols - 1 do
      out.a.((v * x.cols) + u) <- rv *. col.(u) *. x.a.((v * x.cols) + u)
    done
  done;
  out

(* y(v, ·) = Σ_{v' ∈ neigh(v)} x(v', ·), one row-add per sparse entry *)
let left_mul dir g x =
  if D.n g <> x.rows then invalid_arg "Matops.left_mul: graph size mismatch";
  let neigh = match dir with `A -> D.succ g | `AT -> D.pred g in
  let out = zero ~rows:x.rows ~cols:x.cols in
  for v = 0 to x.rows - 1 do
    let base = v * x.cols in
    Array.iter
      (fun v' ->
        let src = v' * x.cols in
        for u = 0 to x.cols - 1 do
          out.a.(base + u) <- out.a.(base + u) +. x.a.(src + u)
        done)
      (neigh v)
  done;
  out

(* y(·, u) = Σ_{u' ∈ neigh(u)} x(·, u') *)
let right_mul x dir g =
  if D.n g <> x.cols then invalid_arg "Matops.right_mul: graph size mismatch";
  (* x·A sums over predecessors of u; x·Aᵀ over successors *)
  let neigh = match dir with `A -> D.pred g | `AT -> D.succ g in
  let out = zero ~rows:x.rows ~cols:x.cols in
  for u = 0 to x.cols - 1 do
    Array.iter
      (fun u' ->
        for v = 0 to x.rows - 1 do
          out.a.((v * x.cols) + u) <- out.a.((v * x.cols) + u) +. x.a.((v * x.cols) + u')
        done)
      (neigh u)
  done;
  out

let max_abs_diff a b =
  same_dims a b "max_abs_diff";
  let best = ref 0. in
  for i = 0 to Array.length a.a - 1 do
    best := Float.max !best (Float.abs (a.a.(i) -. b.a.(i)))
  done;
  !best

let normalize_max m =
  let mx = Array.fold_left Float.max 0. m.a in
  if mx <= 0. then copy m else map (fun x -> x /. mx) m

let normalize_frobenius m =
  let norm = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. m.a) in
  if norm = 0. then copy m else map (fun x -> x /. norm) m

let to_simmat m =
  let s = Simmat.create ~n1:m.rows ~n2:m.cols in
  for v = 0 to m.rows - 1 do
    for u = 0 to m.cols - 1 do
      let x = m.a.((v * m.cols) + u) in
      Simmat.set s v u (if x < 0. then 0. else if x > 1. then 1. else x)
    done
  done;
  s

let of_simmat s =
  init ~rows:(Simmat.n1 s) ~cols:(Simmat.n2 s) (Simmat.get s)
