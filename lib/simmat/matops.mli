(** Dense n1×n2 float matrices with sparse-adjacency products.

    Shared kernel of the two vertex-similarity baselines
    ({!Similarity_flooding}, {!Blondel}): both iterate maps of the form
    [X ↦ A·X·B] where [A], [B] are graph adjacency matrices. Multiplying a
    dense [X] by a sparse adjacency costs O(|E|·cols) instead of O(n²·cols),
    which is what makes the fixpoints tractable on skeleton-sized graphs. *)

type t = { rows : int; cols : int; a : float array }
(** Row-major. The array is owned by the value; helpers never alias. *)

val zero : rows:int -> cols:int -> t
val init : rows:int -> cols:int -> (int -> int -> float) -> t
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t

val add : t -> t -> t
(** Entry-wise sum; dimensions must agree. *)

val entrywise : (float -> float -> float) -> t -> t -> t

val map : (float -> float) -> t -> t

val scale_rows_cols : row:float array -> col:float array -> t -> t
(** [scale_rows_cols ~row ~col x] multiplies entry [(v,u)] by
    [row.(v) *. col.(u)] — used for factorized propagation coefficients. *)

val left_mul : [ `A | `AT ] -> Phom_graph.Digraph.t -> t -> t
(** [left_mul `A g x] is [A·x] with [A(v,v') = 1] iff [g] has edge [v → v'];
    [`AT] multiplies by the transpose. [g] must have [x.rows] nodes. *)

val right_mul : t -> [ `A | `AT ] -> Phom_graph.Digraph.t -> t
(** [right_mul x `A g] is [x·A]; [`AT] is [x·Aᵀ]. [g] must have [x.cols]
    nodes. *)

val max_abs_diff : t -> t -> float

val normalize_max : t -> t
(** Divide by the maximum entry (no-op when the maximum is ≤ 0). *)

val normalize_frobenius : t -> t
(** Divide by the Frobenius norm (no-op when the norm is 0). *)

val to_simmat : t -> Simmat.t
(** Clamp entries into [[0, 1]] and convert. *)

val of_simmat : Simmat.t -> t
