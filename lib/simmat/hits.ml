module D = Phom_graph.Digraph

type scores = { hub : float array; authority : float array }

let l2_normalize v =
  let norm = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. v) in
  if norm > 0. then Array.map (fun x -> x /. norm) v else v

let compute ?(iters = 50) g =
  let n = D.n g in
  if n = 0 then { hub = [||]; authority = [||] }
  else begin
    let hub = ref (Array.make n 1.) and auth = ref (Array.make n 1.) in
    for _ = 1 to iters do
      let auth' = Array.make n 0. in
      for v = 0 to n - 1 do
        Array.iter (fun w -> auth'.(w) <- auth'.(w) +. !hub.(v)) (D.succ g v)
      done;
      let auth' = l2_normalize auth' in
      let hub' = Array.make n 0. in
      for v = 0 to n - 1 do
        Array.iter (fun w -> hub'.(v) <- hub'.(v) +. auth'.(w)) (D.succ g v)
      done;
      hub := l2_normalize hub';
      auth := auth'
    done;
    let uniform v =
      if Array.for_all (fun x -> x = 0.) v then
        Array.make n (1. /. sqrt (float_of_int n))
      else v
    in
    { hub = uniform !hub; authority = uniform !auth }
  end

let role_similarity s1 s2 =
  let n1 = Array.length s1.hub and n2 = Array.length s2.hub in
  Simmat.of_fun ~n1 ~n2 (fun v u ->
      1.
      -. ((Float.abs (s1.hub.(v) -. s2.hub.(u))
          +. Float.abs (s1.authority.(v) -. s2.authority.(u)))
         /. 2.))
