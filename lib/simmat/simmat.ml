type t = { rows : int; cols : int; data : float array }

let create ~n1 ~n2 =
  if n1 < 0 || n2 < 0 then invalid_arg "Simmat.create";
  { rows = n1; cols = n2; data = Array.make (max 1 (n1 * n2)) 0. }

let n1 m = m.rows
let n2 m = m.cols

let byte_size m =
  (* record + float-array payload, for byte-accounted artifact caches *)
  (3 + 1 + Array.length m.data) * (Sys.word_size / 8)

let check m v u =
  if v < 0 || v >= m.rows || u < 0 || u >= m.cols then
    invalid_arg "Simmat: index out of bounds"

let get m v u =
  check m v u;
  m.data.((v * m.cols) + u)

let set m v u x =
  check m v u;
  if not (x >= 0. && x <= 1.) then invalid_arg "Simmat.set: value outside [0,1]";
  m.data.((v * m.cols) + u) <- x

let clamp x = if x < 0. then 0. else if x > 1. then 1. else x

let of_fun ~n1 ~n2 f =
  let m = create ~n1 ~n2 in
  for v = 0 to n1 - 1 do
    for u = 0 to n2 - 1 do
      m.data.((v * n2) + u) <- clamp (f v u)
    done
  done;
  m

let of_label_sim f g1 g2 =
  let module D = Phom_graph.Digraph in
  of_fun ~n1:(D.n g1) ~n2:(D.n g2) (fun v u -> f (D.label g1 v) (D.label g2 u))

let of_label_equality g1 g2 =
  of_label_sim (fun a b -> if String.equal a b then 1. else 0.) g1 g2

let candidates m ~xi =
  Array.init m.rows (fun v ->
      let cand = ref [] in
      for u = m.cols - 1 downto 0 do
        let s = m.data.((v * m.cols) + u) in
        if s >= xi then cand := (u, s) :: !cand
      done;
      let arr = Array.of_list !cand in
      Array.sort
        (fun (u1, s1) (u2, s2) ->
          if s1 <> s2 then compare s2 s1 else compare u1 u2)
        arr;
      Array.map fst arr)

let candidate_count m ~xi =
  let c = ref 0 in
  Array.iter (fun x -> if x >= xi then incr c) m.data;
  !c

let scale k m =
  { m with data = Array.map (fun x -> clamp (k *. x)) m.data }

let pointwise_max a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Simmat.pointwise_max: dimension mismatch";
  { a with data = Array.init (Array.length a.data) (fun i -> Float.max a.data.(i) b.data.(i)) }

let restrict m ~rows ~cols =
  let out = create ~n1:(Array.length rows) ~n2:(Array.length cols) in
  Array.iteri
    (fun i v ->
      Array.iteri (fun j u -> set out i j (get m v u)) cols)
    rows;
  out

let max_value m = Array.fold_left Float.max 0. m.data

let to_string m =
  let buf = Buffer.create (16 * m.rows * m.cols) in
  Buffer.add_string buf "phs 1\n";
  Buffer.add_string buf (Printf.sprintf "%d %d\n" m.rows m.cols);
  for v = 0 to m.rows - 1 do
    for u = 0 to m.cols - 1 do
      if u > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (Printf.sprintf "%.6g" m.data.((v * m.cols) + u))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* refuse to allocate a matrix the file cannot plausibly back: a forged
   dimension line like "1000000 1000000" must not OOM the process *)
let max_cells = 100_000_000

let of_string s =
  let err fmt = Printf.ksprintf (fun msg -> Error msg) fmt in
  match String.split_on_char '\n' s with
  | header :: dims :: rest -> (
      if String.trim header <> "phs 1" then err "missing 'phs 1' header"
      else
        match String.split_on_char ' ' (String.trim dims) with
        | [ a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some n1, Some n2 when n1 > 0 && n2 > 0 && n2 > max_cells / n1 ->
                err "matrix too large (%d x %d; limit %d cells)" n1 n2 max_cells
            | Some n1, Some n2 when n1 >= 0 && n2 >= 0 -> (
                let m = create ~n1 ~n2 in
                let problem = ref None in
                List.iteri
                  (fun v line ->
                    if !problem = None && v < n1 then begin
                      let cells =
                        String.split_on_char ' ' (String.trim line)
                        |> List.filter (fun c -> c <> "")
                      in
                      if List.length cells <> n2 then
                        problem := Some (Printf.sprintf "row %d: expected %d values" v n2)
                      else
                        List.iteri
                          (fun u cell ->
                            match float_of_string_opt cell with
                            | Some x when x >= 0. && x <= 1. -> set m v u x
                            | Some _ ->
                                problem :=
                                  Some (Printf.sprintf "row %d: value outside [0,1]" v)
                            | None ->
                                problem := Some (Printf.sprintf "row %d: bad float" v))
                          cells
                    end)
                  rest;
                if
                  n2 > 0
                  && List.length (List.filter (fun l -> String.trim l <> "") rest)
                     < n1
                then err "missing rows"
                else match !problem with Some e -> Error e | None -> Ok m)
            | _ -> err "bad dimension line")
        | _ -> err "bad dimension line")
  | _ -> err "truncated input"

let save path m =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string m))

let default_max_bytes = 64 * 1024 * 1024

(* mirrors Graph_io.load: refuse oversized files before reading them, and
   report every failure as "<file>: <what>" (parse errors keep their line
   from of_string) *)
let load ?(max_bytes = default_max_bytes) path =
  try
    if Sys.is_directory path then Error (path ^ ": is a directory")
    else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        if len > max_bytes then
          Error
            (Printf.sprintf "%s: file too large (%d bytes; limit %d bytes)" path
               len max_bytes)
        else
          Result.map_error
            (fun m -> path ^ ": " ^ m)
            (of_string (really_input_string ic len)))
  with
  | Sys_error msg -> Error msg
  | End_of_file -> Error (path ^ ": truncated read")

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for v = 0 to m.rows - 1 do
    for u = 0 to m.cols - 1 do
      Format.fprintf ppf "%.2f " m.data.((v * m.cols) + u)
    done;
    if v < m.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
