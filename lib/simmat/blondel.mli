(** Blondel et al.'s vertex similarity (SIAM Review 2004 [6]) — the second
    vertex-similarity measure the paper mentions (its experiments note it
    "had results similar to those of SF").

    The iteration is [S ← normalize_F(A·S·Bᵀ + Aᵀ·S·B)] from the all-ones
    matrix, where [A]/[B] are the adjacency matrices of [G1]/[G2]; the even
    subsequence converges, so we run an even number of steps. The score of
    [(v, u)] grows when [v]'s children resemble [u]'s children and [v]'s
    parents resemble [u]'s parents — the hub/authority structural similarity
    described in Section 3.1. *)

val similarity :
  ?iters:int ->
  Phom_graph.Digraph.t ->
  Phom_graph.Digraph.t ->
  Simmat.t
(** [similarity g1 g2] runs [iters] steps (default 20; forced up to the next
    even number) and rescales the result so the maximum entry is 1 — making
    it usable directly as a [mat()] with a threshold. *)
