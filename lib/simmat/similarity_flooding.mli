(** Similarity flooding (Melnik, Garcia-Molina, Rahm — ICDE 2002 [21]), the
    vertex-similarity baseline ("SF") of the paper's experiments.

    Similarities propagate over the pairwise connectivity graph: pair
    [(v, u)] feeds pair [(v', u')] whenever [v → v'] in [G1] and [u → u'] in
    [G2], with propagation coefficient [1/(outdeg v · outdeg u)] (and
    symmetrically backwards over predecessors). We never materialize the
    pairwise graph — one flooding step is two sparse-adjacency products over
    the dense pair matrix (see {!Matops}), which is what makes SF runnable
    at all on the larger skeletons (and still visibly slower than the p-hom
    algorithms, reproducing Table 3's shape).

    The iteration is Melnik's "basic" fixpoint:
    [σ_{i+1} = normalize(σ_i + σ⁰ + flood(σ_i + σ⁰))]. *)

type config = {
  max_iters : int;  (** default 100 *)
  eps : float;  (** residual threshold on the max-norm, default 1e-4 *)
}

val default_config : config

(** How a flooding step is computed. Both produce the same matrix.

    [Edge_pairs] walks every pair of edges [(E1 × E2)] per iteration — the
    cost profile of Melnik's published algorithm over the pairwise
    connectivity graph, and the reason the paper's SF baseline "deteriorated
    rapidly" on large skeletons. [Factorized] computes the identical update
    as two sparse-adjacency matrix products (O(|E1|·n2 + n1·|E2|)); it
    exists to show how much of SF's cost is incidental. The Table-3 bench
    uses [Edge_pairs], as the baseline deserves. *)
type impl = Edge_pairs | Factorized

val flood :
  ?config:config ->
  ?impl:impl ->
  init:Simmat.t ->
  Phom_graph.Digraph.t ->
  Phom_graph.Digraph.t ->
  Simmat.t
(** [flood ~init g1 g2] runs SF from initial similarities [init] (e.g. label
    equality or shingle similarity) and returns the flooded, max-normalized
    matrix. [impl] defaults to [Factorized]. *)

val greedy_assignment : Simmat.t -> (int * int) list
(** Best-first 1-1 assignment: repeatedly pick the globally most similar
    unassigned pair with positive similarity. Pairs are returned sorted by
    [G1] node id. *)

val match_quality : init:Simmat.t -> flooded:Simmat.t -> xi:float -> float
(** The match-decision statistic we use for the SF baseline (the paper does
    not spell this rule out; see DESIGN.md): rank pairs by the {e flooded}
    similarities, assign greedily 1-1, and count a [G1] node as matched when
    its assigned partner's {e initial} similarity clears [xi] — i.e. SF is
    judged on whether its structural propagation ranks a genuinely similar
    partner first. Returns the matched fraction of [G1] nodes. *)
