module D = Phom_graph.Digraph

type config = { max_iters : int; eps : float }

let default_config = { max_iters = 100; eps = 1e-4 }

let inv_degrees g degree =
  Array.init (D.n g) (fun v ->
      let d = degree g v in
      if d = 0 then 0. else 1. /. float_of_int d)

type impl = Edge_pairs | Factorized

let flood ?(config = default_config) ?(impl = Factorized) ~init g1 g2 =
  if Simmat.n1 init <> D.n g1 || Simmat.n2 init <> D.n g2 then
    invalid_arg "Similarity_flooding.flood: matrix/graph size mismatch";
  let sigma0 = Matops.of_simmat init in
  let inv_out1 = inv_degrees g1 D.out_degree and inv_out2 = inv_degrees g2 D.out_degree in
  let inv_in1 = inv_degrees g1 D.in_degree and inv_in2 = inv_degrees g2 D.in_degree in
  let factorized_step x =
    (* forward: mass at (v,u) splits over its (succ v × succ u) pairs *)
    let fwd =
      Matops.right_mul
        (Matops.left_mul `AT g1 (Matops.scale_rows_cols ~row:inv_out1 ~col:inv_out2 x))
        `A g2
    in
    (* backward: mass at (v',u') splits over its (pred v' × pred u') pairs *)
    let bwd =
      Matops.right_mul
        (Matops.left_mul `A g1 (Matops.scale_rows_cols ~row:inv_in1 ~col:inv_in2 x))
        `AT g2
    in
    Matops.add fwd bwd
  in
  let edges1 = Array.of_list (D.edges g1) and edges2 = Array.of_list (D.edges g2) in
  let edge_pairs_step (x : Matops.t) =
    (* one pass over the pairwise connectivity graph's edges: the pcg edge
       ((v,u),(v',u')) exists per (v→v') ∈ E1, (u→u') ∈ E2 *)
    let out = Matops.zero ~rows:x.Matops.rows ~cols:x.Matops.cols in
    Array.iter
      (fun (v, v') ->
        Array.iter
          (fun (u, u') ->
            (* forward propagation along the pcg edge *)
            Matops.set out v' u'
              (Matops.get out v' u'
              +. (inv_out1.(v) *. inv_out2.(u) *. Matops.get x v u));
            (* backward propagation against it *)
            Matops.set out v u
              (Matops.get out v u
              +. (inv_in1.(v') *. inv_in2.(u') *. Matops.get x v' u')))
          edges2)
      edges1;
    out
  in
  let flood_step =
    match impl with Edge_pairs -> edge_pairs_step | Factorized -> factorized_step
  in
  let rec iterate sigma k =
    if k >= config.max_iters then sigma
    else begin
      let base = Matops.add sigma sigma0 in
      let next = Matops.normalize_max (Matops.add base (flood_step base)) in
      if Matops.max_abs_diff next sigma < config.eps then next
      else iterate next (k + 1)
    end
  in
  Matops.to_simmat (iterate (Matops.copy sigma0) 0)

let greedy_assignment m =
  let n1 = Simmat.n1 m and n2 = Simmat.n2 m in
  let pairs = ref [] in
  for v = 0 to n1 - 1 do
    for u = 0 to n2 - 1 do
      let s = Simmat.get m v u in
      if s > 0. then pairs := (s, v, u) :: !pairs
    done
  done;
  let sorted =
    List.sort (fun (s1, v1, u1) (s2, v2, u2) ->
        if s1 <> s2 then compare s2 s1 else compare (v1, u1) (v2, u2))
      !pairs
  in
  let used1 = Array.make n1 false and used2 = Array.make n2 false in
  let out = ref [] in
  List.iter
    (fun (_, v, u) ->
      if (not used1.(v)) && not used2.(u) then begin
        used1.(v) <- true;
        used2.(u) <- true;
        out := (v, u) :: !out
      end)
    sorted;
  List.sort compare !out

let match_quality ~init ~flooded ~xi =
  let n1 = Simmat.n1 flooded in
  if n1 = 0 then 1.0
  else begin
    let assigned = greedy_assignment flooded in
    let good =
      List.fold_left
        (fun acc (v, u) -> if Simmat.get init v u >= xi then acc + 1 else acc)
        0 assigned
    in
    float_of_int good /. float_of_int n1
  end
