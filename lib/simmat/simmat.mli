(** Node-similarity matrices (Section 3.1 of the paper).

    [mat(v, u) ∈ [0, 1]] says how close node [v] of [G1] is to node [u] of
    [G2]. The matrix is dense (row-major floats); the graphs the paper
    matches after skeleton extraction have at most a few thousand nodes, so
    density is the right trade-off and keeps lookups O(1) inside the hot
    matching loops. *)

type t

val create : n1:int -> n2:int -> t
(** All-zeros matrix. *)

val of_fun : n1:int -> n2:int -> (int -> int -> float) -> t
(** Tabulate; values are clamped to [[0, 1]]. *)

val n1 : t -> int
val n2 : t -> int

val byte_size : t -> int
(** Heap footprint in bytes (dense payload plus headers). Used for
    byte-accounted caching of similarity-matrix artifacts. *)

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
(** Raises [Invalid_argument] when the value is outside [[0, 1]] or indices
    are out of bounds. *)

val of_label_equality : Phom_graph.Digraph.t -> Phom_graph.Digraph.t -> t
(** The conventional-matching matrix: 1.0 on equal labels, 0.0 otherwise. *)

val of_label_sim :
  (string -> string -> float) ->
  Phom_graph.Digraph.t ->
  Phom_graph.Digraph.t ->
  t
(** Tabulate a label-level similarity over two graphs. *)

val candidates : t -> xi:float -> int array array
(** [candidates m ~xi].(v) lists the nodes [u] with [mat(v,u) ≥ xi], sorted
    by decreasing similarity (ties by ascending id). This is the initial
    [H[v].good] of algorithm compMaxCard. *)

val candidate_count : t -> xi:float -> int
(** Total number of pairs at or above the threshold. *)

val scale : float -> t -> t
(** Multiply every entry (result clamped to [[0,1]]). *)

val pointwise_max : t -> t -> t
(** Entry-wise maximum; dimensions must agree. *)

val restrict : t -> rows:int array -> cols:int array -> t
(** [restrict m ~rows ~cols] is the submatrix [m.(rows.(i)).(cols.(j))] —
    used to project a full-graph matrix onto skeleton nodes. *)

val max_value : t -> float

(** {1 Serialization}

    Text format ("phs 1"): a header line, a dimension line [n1 n2], then
    [n1] lines of [n2] space-separated floats. Lets externally computed
    matrices (a real page checker, a learned model) drive the matchers via
    the CLI. *)

val to_string : t -> string
val of_string : string -> (t, string) result
val save : string -> t -> unit

val load : ?max_bytes:int -> string -> (t, string) result
(** Files larger than [max_bytes] (default 64 MiB) are rejected before
    being read into memory. Every error names the offending file exactly
    once (parse errors keep their line number), matching
    {!Phom_graph.Graph_io.load} — callers print the message as is. *)

val pp : Format.formatter -> t -> unit
