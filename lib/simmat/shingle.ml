let is_alnum c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let tokenize s =
  let buf = Buffer.create 16 in
  let out = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c -> if is_alnum c then Buffer.add_char buf (Char.lowercase_ascii c) else flush ())
    s;
  flush ();
  List.rev !out

(* FNV-1a over a token window, masked to a non-negative OCaml int *)
let fnv_offset = 0x4bf29ce484222325
let fnv_prime = 0x100000001b3

let hash_tokens tokens =
  let h = ref fnv_offset in
  List.iter
    (fun tok ->
      String.iter
        (fun c ->
          h := (!h lxor Char.code c) * fnv_prime)
        tok;
      (* separator so ["ab"; "c"] <> ["a"; "bc"] *)
      h := (!h lxor 0xff) * fnv_prime)
    tokens;
  !h land max_int

let sort_dedup arr =
  Array.sort compare arr;
  let n = Array.length arr in
  if n = 0 then arr
  else begin
    let k = ref 1 in
    for i = 1 to n - 1 do
      if arr.(i) <> arr.(!k - 1) then begin
        arr.(!k) <- arr.(i);
        incr k
      end
    done;
    Array.sub arr 0 !k
  end

let shingles ?(w = 4) doc =
  if w <= 0 then invalid_arg "Shingle.shingles: w must be positive";
  let tokens = Array.of_list (tokenize doc) in
  let n = Array.length tokens in
  if n = 0 then [||]
  else if n < w then [| hash_tokens (Array.to_list tokens) |]
  else begin
    let out = Array.make (n - w + 1) 0 in
    for i = 0 to n - w do
      out.(i) <- hash_tokens (Array.to_list (Array.sub tokens i w))
    done;
    sort_dedup out
  end

let jaccard a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 && nb = 0 then 1.0
  else begin
    let i = ref 0 and j = ref 0 and inter = ref 0 in
    while !i < na && !j < nb do
      if a.(!i) = b.(!j) then begin
        incr inter;
        incr i;
        incr j
      end
      else if a.(!i) < b.(!j) then incr i
      else incr j
    done;
    let union = na + nb - !inter in
    float_of_int !inter /. float_of_int union
  end

let similarity ?w a b = jaccard (shingles ?w a) (shingles ?w b)

let sketch ?(k = 64) sh =
  if Array.length sh <= k then Array.copy sh else Array.sub sh 0 k

(* Bottom-k estimator: among the k smallest hashes of the union, count the
   fraction present in both sketches. Exact when |A ∪ B| ≤ k. *)
let sketch_jaccard a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 && nb = 0 then 1.0
  else begin
    let k = max na nb in
    let i = ref 0 and j = ref 0 and seen = ref 0 and both = ref 0 in
    while !seen < k && (!i < na || !j < nb) do
      if !i < na && !j < nb && a.(!i) = b.(!j) then begin
        incr both;
        incr i;
        incr j
      end
      else if !j >= nb || (!i < na && a.(!i) < b.(!j)) then incr i
      else incr j;
      incr seen
    done;
    float_of_int !both /. float_of_int !seen
  end

let matrix ?w docs1 docs2 =
  let s1 = Array.map (shingles ?w) docs1 and s2 = Array.map (shingles ?w) docs2 in
  Simmat.of_fun ~n1:(Array.length docs1) ~n2:(Array.length docs2) (fun v u ->
      jaccard s1.(v) s2.(u))
