(** Kleinberg's HITS hub/authority scores.

    Section 3.1/3.3 of the paper repeatedly wants to know "whether [v] is a
    hub, authority, or a node with a high degree": node similarity may
    require two pages to play a similar role, skeletons keep important
    nodes, and the SPH weights [w(v)] rank node importance. HITS provides
    the hub/authority half of that; see {!Phom.Weights} for the ready-made
    weight vectors. *)

type scores = { hub : float array; authority : float array }
(** Both vectors are L2-normalized; all entries in [[0, 1]]. *)

val compute : ?iters:int -> Phom_graph.Digraph.t -> scores
(** Power iteration ([iters] default 50): [auth ← Aᵀ·hub], [hub ← A·auth],
    normalizing each round. Graphs without edges get uniform scores. *)

val role_similarity : scores -> scores -> Simmat.t
(** [role_similarity s1 s2].(v,u) = 1 − (|hub₁(v) − hub₂(u)| +
    |auth₁(v) − auth₂(u)|)/2 — a structural-role [mat()] in the spirit of
    the hub/authority similarity the paper cites from Blondel et al. [6]. *)
