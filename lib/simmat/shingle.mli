(** Broder-style w-shingling for textual page similarity [8].

    A document is lowercased, tokenized on non-alphanumeric characters, and
    every window of [w] consecutive tokens is hashed (FNV-1a) into a shingle.
    Two documents' similarity is the Jaccard coefficient of their shingle
    sets — the paper's "common shingles" page checker. A min-hash [sketch]
    is provided for cheap approximate Jaccard on large documents. *)

val tokenize : string -> string list
(** Lowercased alphanumeric tokens, in document order. *)

val shingles : ?w:int -> string -> int array
(** Sorted distinct shingle hashes; [w] defaults to 4. A document with fewer
    than [w] tokens contributes a single shingle over all of its tokens
    (none if it has no tokens). *)

val jaccard : int array -> int array -> float
(** Jaccard coefficient of two sorted distinct arrays; 1.0 when both empty. *)

val similarity : ?w:int -> string -> string -> float
(** [jaccard (shingles a) (shingles b)]. *)

val sketch : ?k:int -> int array -> int array
(** The [k] (default 64) smallest shingle hashes — a min-hash sketch. *)

val sketch_jaccard : int array -> int array -> float
(** Approximate Jaccard from two sketches (exact when the union fits the
    sketch size). *)

val matrix : ?w:int -> string array -> string array -> Simmat.t
(** Pairwise similarities of two document collections — the paper's [mat()]
    for Web graphs, where documents are page contents. *)
