(** The Ramsey procedure and the clique/independent-set removal algorithms of
    Boppana and Halldórsson [7] (paper Fig. 9).

    [ramsey] returns simultaneously a clique and an independent set of the
    graph; on an n-node graph at least one of them has size Ω(log n), which
    is what yields the O(n / log² n) performance guarantee of
    [clique_removal] / [is_removal] — and, through the AFP-reduction of
    Theorem 5.1, the O(log²(n1·n2)/(n1·n2)) guarantee of the paper's
    matching algorithms. *)

val ramsey :
  ?pool:Phom_parallel.Pool.t ->
  ?budget:Phom_graph.Budget.t ->
  Ungraph.t ->
  Phom_graph.Bitset.t ->
  int list * int list
(** [ramsey g subset] is [(clique, independent)] within [subset]. Pivots are
    chosen with maximum degree inside the current subset (any choice
    preserves the guarantee; this one helps in practice). One [budget] tick
    per recursion node; truncated subtrees contribute empty sets, so the
    answer stays a valid clique/IS pair, only possibly smaller.

    The two branches of each recursion node are independent; with a [pool]
    the top levels fan out across its domains, each branch drawing on a
    forked child of [budget] ({!Phom_graph.Budget.fork}). With an untripped
    budget the parallel result equals the sequential one (the combination
    step is a pure function of the branch results); no pool, or a size-1
    pool, runs the sequential recursion unchanged. *)

val clique_removal :
  ?pool:Phom_parallel.Pool.t ->
  ?budget:Phom_graph.Budget.t ->
  Ungraph.t ->
  int list
(** Approximate {b maximum independent set}: repeatedly run {!ramsey} and
    remove the clique found; return the largest independent set seen —
    the best so far when [budget] trips. [pool] parallelizes each inner
    {!ramsey} call. *)

val is_removal :
  ?pool:Phom_parallel.Pool.t ->
  ?budget:Phom_graph.Budget.t ->
  Ungraph.t ->
  int list
(** Approximate {b maximum clique}: the dual (paper Fig. 9, ISRemoval) —
    repeatedly remove the independent set found; return the largest
    clique seen — the best so far when [budget] trips. *)
