(* Hungarian algorithm with row/column potentials (the classic e-maxx
   formulation, 1-indexed internally). *)

module Budget = Phom_graph.Budget

let minimize ?budget cost =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let n = Array.length cost in
  if n = 0 then ([||], 0.)
  else begin
    let m = Array.length cost.(0) in
    if n > m then invalid_arg "Assignment.minimize: more rows than columns";
    Array.iter
      (fun row ->
        if Array.length row <> m then invalid_arg "Assignment.minimize: ragged matrix")
      cost;
    let a i j = cost.(i - 1).(j - 1) in
    let u = Array.make (n + 1) 0. and v = Array.make (m + 1) 0. in
    let p = Array.make (m + 1) 0 (* column -> row *) in
    let way = Array.make (m + 1) 0 in
    for i = 1 to n do
      p.(0) <- i;
      let j0 = ref 0 in
      let minv = Array.make (m + 1) infinity in
      let used = Array.make (m + 1) false in
      let continue = ref true in
      while !continue do
        Budget.tick_exn budget;
        used.(!j0) <- true;
        let i0 = p.(!j0) in
        let delta = ref infinity and j1 = ref 0 in
        for j = 1 to m do
          if not used.(j) then begin
            let cur = a i0 j -. u.(i0) -. v.(j) in
            if cur < minv.(j) then begin
              minv.(j) <- cur;
              way.(j) <- !j0
            end;
            if minv.(j) < !delta then begin
              delta := minv.(j);
              j1 := j
            end
          end
        done;
        for j = 0 to m do
          if used.(j) then begin
            u.(p.(j)) <- u.(p.(j)) +. !delta;
            v.(j) <- v.(j) -. !delta
          end
          else minv.(j) <- minv.(j) -. !delta
        done;
        j0 := !j1;
        if p.(!j0) = 0 then continue := false
      done;
      let j0 = ref !j0 in
      while !j0 <> 0 do
        let j1 = way.(!j0) in
        p.(!j0) <- p.(j1);
        j0 := j1
      done
    done;
    let assignment = Array.make n (-1) in
    for j = 1 to m do
      if p.(j) > 0 then assignment.(p.(j) - 1) <- j - 1
    done;
    let total =
      Array.to_list assignment
      |> List.mapi (fun i j -> cost.(i).(j))
      |> List.fold_left ( +. ) 0.
    in
    (assignment, total)
  end

let maximize ?budget cost =
  let neg = Array.map (Array.map (fun x -> -.x)) cost in
  let assignment, total = minimize ?budget neg in
  (assignment, -.total)
