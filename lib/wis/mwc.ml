(* Bitset-native exact maximum-weight-clique engine.

   Jain & Obermayer's equivalence makes the exact p-hom/1-1 p-hom path a
   maximum-weight-clique problem on the Theorem-5.1 compatibility graph, so
   this engine is the quality ceiling of the whole exact tier. The design is
   the modern MWC recipe (Tomita's colouring-bounded branch and bound,
   specialized to weights, in the style of WLMC/TSM):

   - adjacency lives in bitset rows in a vertex order computed once per
     instance (weight-degeneracy: repeatedly peel the vertex minimizing its
     own weight plus its remaining neighbourhood weight), so every candidate
     set is an incremental bitset intersection;
   - every search node greedily colours its candidate set — classes are
     pairwise non-adjacent, so a clique takes at most one vertex per class —
     and sums the running per-class weight maxima into a per-prefix upper
     bound; branches whose bound cannot beat the incumbent are cut;
   - before the search, deterministic greedy restarts (budgeted probes from
     the heaviest vertices, then tick-free greedy dives from every
     degeneracy root and degree-guided dives from the densest core) raise
     the incumbent, usually to the optimum, so the search is mostly proof
     and even a first-tick budget trip returns a non-trivial clique;
   - one {!Phom_graph.Budget} tick per search node preserves the repo-wide
     anytime contract: a trip unwinds with the best clique found so far and
     an [Exhausted] status, exactly like the legacy engine.

   Parallelism: the whole vertex set is coloured once and the top-level
   branches of the single search tree (branch k owns the cliques containing
   the k-th emitted vertex and none emitted later) are independent, so
   contiguous branch chunks fan out across the domain pool on forked budget
   tokens and the chunk results are combined first-strictly-better in the
   sequential visit order (highest emission positions first). Each chunk
   starts from the restart incumbent, never from a sibling's — with an
   untripped budget the combined answer is bit-identical to the sequential
   one (a chunk's final clique is the first optimum-weight clique in its
   DFS order, which does not depend on the starting incumbent as long as
   that incumbent is below the chunk optimum), so [--jobs 1] and [--jobs N]
   agree. *)

module Bitset = Phom_graph.Bitset
module Budget = Phom_graph.Budget
module Pool = Phom_parallel.Pool
module Obs = Phom_obs.Obs

type result = { clique : int list; weight : float; status : Budget.status }

let m_branches = lazy (Obs.counter "phom_solver_mwc_branches_total")
let m_cuts = lazy (Obs.counter "phom_solver_mwc_bound_cuts_total")
let m_colourings = lazy (Obs.counter "phom_solver_mwc_colouring_rounds_total")
let m_restarts = lazy (Obs.counter "phom_solver_mwc_restarts_total")

let m_branches_per_solve =
  lazy
    (Obs.histogram
       ~buckets:[| 1.; 10.; 100.; 1_000.; 10_000.; 100_000.; 1_000_000. |]
       "phom_solver_mwc_branches_per_solve")

(* local tallies flushed to the registry once per solve: the hot loop must
   not pay an atomic per node *)
type tally = {
  mutable branches : int;
  mutable cuts : int;
  mutable colourings : int;
}

(* weight-degeneracy ordering: repeatedly remove the vertex minimizing
   w(v) + w(N(v) ∩ remaining); ties break on the smaller index so the order
   is a pure function of the graph. O(n²) with bitset rows. *)
let degeneracy_order g w =
  let n = Ungraph.n g in
  let remaining = Bitset.full n in
  let nbw = Array.init n (fun v ->
      Bitset.fold (fun u acc -> acc +. w.(u)) (Ungraph.neighbors g v) 0.)
  in
  let order = Array.make n 0 in
  for k = 0 to n - 1 do
    let best = ref (-1) and best_score = ref infinity in
    Bitset.iter
      (fun v ->
        let score = w.(v) +. nbw.(v) in
        if score < !best_score then begin
          best := v;
          best_score := score
        end)
      remaining;
    let v = !best in
    order.(k) <- v;
    Bitset.remove remaining v;
    Bitset.iter
      (fun u -> if Bitset.mem remaining u then nbw.(u) <- nbw.(u) -. w.(v))
      (Ungraph.neighbors g v)
  done;
  order

(* the instance the search runs on. Vertices keep their original ids: the
   product-graph builder emits them row-major (one row per pattern vertex),
   and rows are independent sets, so first-fit colouring in id order is
   near-optimal — renumbering would wreck the bound. The degeneracy order
   instead drives the incumbent machinery: probe starts, one greedy dive
   per root (vertex [order.(k)] over [adj ∩ later.(k)]), and the
   densest-core tie-breaks ([pos]). *)
type inst = {
  n : int;
  adj : Bitset.t array;  (** bitset adjacency rows, original ids *)
  w : float array;
  order : int array;  (** degeneracy order: order.(k) = k-th peeled vertex *)
  pos : int array;  (** inverse of [order]: pos.(v) = peel position of v *)
  later : Bitset.t array;  (** later.(k) = {v | peeled after position k} *)
}

let build_inst g weights =
  let n = Ungraph.n g in
  let order = degeneracy_order g weights in
  let adj = Array.init n (Ungraph.neighbors g) in
  let later = Array.make n (Bitset.create n) in
  let remaining = Bitset.full n in
  for k = 0 to n - 1 do
    Bitset.remove remaining order.(k);
    later.(k) <- Bitset.copy remaining
  done;
  let pos = Array.make n 0 in
  Array.iteri (fun k v -> pos.(v) <- k) order;
  { n; adj; w = Array.copy weights; order; pos; later }

(* per-depth hot-loop buffers: the colouring emission ([vs]/[bnd]) and the
   two candidate sets of the branch loop. Created lazily the first time a
   depth is reached, then reused for every node at that depth — the search
   itself allocates nothing, which matters under OCaml 5 where a single
   allocation-heavy domain drags every other domain through its minor
   collections. *)
type scratch = {
  vs : int array;
  bnd : float array;
  cur : Bitset.t;
  nxt : Bitset.t;
}

(* mutable search state: one per sequential run / per parallel chunk *)
type state = {
  inst : inst;
  stack : int array;  (** current clique, stack.(0..depth-1) *)
  mutable best : int list;  (** best clique found so far *)
  mutable best_w : float;
  t : tally;
  levels : scratch option array;  (** per-depth buffers, lazily built *)
  cls : Bitset.t array;  (** colour classes, lazily built, cleared on exit *)
  mutable cls_alloc : int;  (** classes materialized in [cls] so far *)
  cls_head : int array;  (** first member of class c, -1 when empty *)
  cls_tail : int array;  (** last member of class c *)
  nxt_member : int array;  (** intrusive member chain, -1-terminated *)
}

let make_state inst ~seed ~seed_w =
  let n = max 1 inst.n in
  {
    inst;
    stack = Array.make n 0;
    best = seed;
    best_w = seed_w;
    t = { branches = 0; cuts = 0; colourings = 0 };
    levels = Array.make n None;
    cls = Array.make n (Bitset.create 0);
    cls_alloc = 0;
    cls_head = Array.make n (-1);
    cls_tail = Array.make n 0;
    nxt_member = Array.make n (-1);
  }

let level st depth =
  match st.levels.(depth) with
  | Some sc -> sc
  | None ->
      let n = st.inst.n in
      let sc =
        {
          vs = Array.make n 0;
          bnd = Array.make n 0.;
          cur = Bitset.create n;
          nxt = Bitset.create n;
        }
      in
      st.levels.(depth) <- Some sc;
      sc

let record st depth cw =
  st.best_w <- cw;
  let c = ref [] in
  for i = depth - 1 downto 0 do
    c := st.stack.(i) :: !c
  done;
  st.best <- !c

(* greedy weighted colouring of [cand]: classes are independent sets built
   first-fit in index order; emits the vertices class by class together with
   the admissible per-prefix bound (sum of closed-class maxima plus the
   running maximum of the open class). Returns the emission count. All the
   working storage lives in the state — class bitsets are reused across
   calls (cleared on the way out) and members chain through the intrusive
   [nxt_member] array in insertion order. *)
let colour st cand vs bnd =
  let inst = st.inst in
  let n_classes = ref 0 in
  Bitset.iter
    (fun v ->
      let rec place c =
        if c = !n_classes then begin
          if c = st.cls_alloc then begin
            st.cls.(c) <- Bitset.create inst.n;
            st.cls_alloc <- st.cls_alloc + 1
          end;
          Bitset.add st.cls.(c) v;
          st.cls_head.(c) <- v;
          st.cls_tail.(c) <- v;
          st.nxt_member.(v) <- -1;
          incr n_classes
        end
        else if Bitset.disjoint inst.adj.(v) st.cls.(c) then begin
          Bitset.add st.cls.(c) v;
          st.nxt_member.(st.cls_tail.(c)) <- v;
          st.cls_tail.(c) <- v;
          st.nxt_member.(v) <- -1
        end
        else place (c + 1)
      in
      place 0)
    cand;
  let pos = ref 0 and closed = ref 0. in
  for c = 0 to !n_classes - 1 do
    let running = ref 0. in
    let v = ref st.cls_head.(c) in
    while !v >= 0 do
      running := Float.max !running inst.w.(!v);
      vs.(!pos) <- !v;
      bnd.(!pos) <- !closed +. !running;
      incr pos;
      v := st.nxt_member.(!v)
    done;
    closed := !closed +. !running;
    Bitset.clear st.cls.(c);
    st.cls_head.(c) <- -1
  done;
  !pos

exception Cut

let rec expand st budget depth cw cand =
  st.t.branches <- st.t.branches + 1;
  Budget.tick_exn budget;
  if cw > st.best_w then record st depth cw;
  if not (Bitset.is_empty cand) then begin
    let inst = st.inst in
    st.t.colourings <- st.t.colourings + 1;
    let sc = level st depth in
    let len = colour st cand sc.vs sc.bnd in
    Bitset.copy_into ~into:sc.cur cand;
    (try
       for k = len - 1 downto 0 do
         let v = sc.vs.(k) in
         if cw +. sc.bnd.(k) <= st.best_w then begin
           st.t.cuts <- st.t.cuts + 1;
           raise Cut
         end;
         Bitset.remove sc.cur v;
         Bitset.copy_into ~into:sc.nxt sc.cur;
         Bitset.inter_into ~into:sc.nxt inst.adj.(v);
         st.stack.(depth) <- v;
         (* the child only reads [sc.nxt] (it copies into its own depth+1
            buffers before mutating), and we overwrite it only after the
            child returns *)
         expand st budget (depth + 1) (cw +. inst.w.(v)) sc.nxt
       done
     with Cut -> ())
  end

(* deterministic greedy restarts: grow a maximal clique from each of the
   heaviest [rounds] vertices, keep the best. Ties (all of them, under unit
   weights) break towards the latest-peeled vertex — the densest core of the
   graph, where the big cliques live — so the starts stay diverse instead of
   clustering in one product row. One budget tick per probe, so even the
   probes honour the anytime contract. *)
let restart_probes st budget rounds =
  let inst = st.inst in
  let by_weight = Array.init inst.n (fun i -> i) in
  Array.sort
    (fun a b ->
      match compare inst.w.(b) inst.w.(a) with
      | 0 -> compare inst.pos.(b) inst.pos.(a)
      | c -> c)
    by_weight;
  let rounds = min rounds inst.n in
  (try
     for r = 0 to rounds - 1 do
       Budget.tick_exn budget;
       Obs.incr (Lazy.force m_restarts);
       let start = by_weight.(r) in
       let clique = ref [ start ] and cw = ref inst.w.(start) in
       let cand = Bitset.copy inst.adj.(start) in
       let depth = ref 1 in
       while not (Bitset.is_empty cand) do
         let best = ref (-1) and best_w = ref neg_infinity in
         Bitset.iter
           (fun v ->
             if
               inst.w.(v) > !best_w
               || (inst.w.(v) = !best_w && (!best < 0 || inst.pos.(v) > inst.pos.(!best)))
             then begin
               best := v;
               best_w := inst.w.(v)
             end)
           cand;
         clique := !best :: !clique;
         cw := !cw +. !best_w;
         incr depth;
         Bitset.inter_into ~into:cand inst.adj.(!best)
       done;
       if !cw > st.best_w then begin
         st.best_w <- !cw;
         st.best <- List.rev !clique
       end
     done
   with Budget.Exhausted_budget -> ())

(* tick-free greedy dive from [v] over [cand]: deepest-first max-weight
   extension, ties towards the densest core. Polynomial preprocessing in the
   same spirit as the ordering itself — it raises the incumbent before any
   budget is spent so the colouring bound starts sharp. *)
let dive st v cand =
  let inst = st.inst in
  let cw = ref inst.w.(v) and depth = ref 1 in
  st.stack.(0) <- v;
  let cur = Bitset.copy cand in
  while not (Bitset.is_empty cur) do
    let best = ref (-1) and best_w = ref neg_infinity in
    Bitset.iter
      (fun u ->
        if
          inst.w.(u) > !best_w
          || (inst.w.(u) = !best_w
             && (!best < 0 || inst.pos.(u) > inst.pos.(!best)))
        then begin
          best := u;
          best_w := inst.w.(u)
        end)
      cur;
    st.stack.(!depth) <- !best;
    cw := !cw +. !best_w;
    incr depth;
    Bitset.inter_into ~into:cur inst.adj.(!best)
  done;
  if !cw > st.best_w then record st !depth !cw

(* degree-guided dive: like [dive] but each step picks the candidate
   maximizing weight × (1 + neighbourhood size inside the remaining
   candidates) — the classic max-clique greedy, costlier per step
   ([Bitset.inter_count] per candidate) but much better at landing on the
   optimum, so it runs from a few core starts rather than every root. *)
let dive_deg st v cand =
  let inst = st.inst in
  let cw = ref inst.w.(v) and depth = ref 1 in
  st.stack.(0) <- v;
  let cur = Bitset.copy cand in
  while not (Bitset.is_empty cur) do
    let best = ref (-1) and best_s = ref neg_infinity in
    Bitset.iter
      (fun u ->
        let s =
          inst.w.(u)
          *. float_of_int (1 + Bitset.inter_count cur inst.adj.(u))
        in
        if
          s > !best_s
          || (s = !best_s && (!best < 0 || inst.pos.(u) > inst.pos.(!best)))
        then begin
          best := u;
          best_s := s
        end)
      cur;
    st.stack.(!depth) <- !best;
    cw := !cw +. inst.w.(!best);
    incr depth;
    Bitset.inter_into ~into:cur inst.adj.(!best)
  done;
  if !cw > st.best_w then record st !depth !cw

(* the top level of the single search tree: the whole vertex set is coloured
   once ([vs]/[bnd], emission length [inst.n]) and the branches at emission
   positions [lo..hi-1] are expanded highest position first, exactly as
   [expand] would — branch k owns the cliques containing vs.(k) and none of
   vs.(k+1..). Both the sequential run (lo=0, hi=n) and each pool chunk
   execute this same loop with a private incumbent seeded at [seed], so the
   two compositions traverse tick-identical trees. *)
let solve_branches inst budget ~seed_w ~seed ~vs ~bnd lo hi =
  let st = make_state inst ~seed ~seed_w in
  let cur = Bitset.full inst.n in
  for j = hi to inst.n - 1 do
    Bitset.remove cur vs.(j)
  done;
  let nxt = Bitset.create inst.n in
  (try
     (try
        for k = hi - 1 downto lo do
          let v = vs.(k) in
          if bnd.(k) <= st.best_w then begin
            st.t.cuts <- st.t.cuts + 1;
            raise Cut
          end;
          Bitset.remove cur v;
          Bitset.copy_into ~into:nxt cur;
          Bitset.inter_into ~into:nxt inst.adj.(v);
          st.stack.(0) <- v;
          expand st budget 1 inst.w.(v) nxt
        done
      with Cut -> ())
   with Budget.Exhausted_budget -> ());
  st

let flush_tally t =
  Obs.add (Lazy.force m_branches) t.branches;
  Obs.add (Lazy.force m_cuts) t.cuts;
  Obs.add (Lazy.force m_colourings) t.colourings;
  Obs.observe (Lazy.force m_branches_per_solve) (float_of_int t.branches)

(* below this many vertices a pool fan-out costs more than it saves *)
let par_cutoff = 64

let solve_weights ?pool ?budget g weights =
  let budget =
    match budget with Some b -> b | None -> Budget.create ~steps:10_000_000 ()
  in
  let n = Ungraph.n g in
  if n = 0 then { clique = []; weight = 0.; status = Budget.status budget }
  else begin
    let inst = build_inst g weights in
    let probe_st = make_state inst ~seed:[] ~seed_w:0. in
    restart_probes probe_st budget (max 1 (min 8 (n / 32)));
    (* tick-free dive pass: one greedy maximal clique per degeneracy root,
       strongest incumbent the polynomial tier can provide *)
    for k = n - 1 downto 0 do
      let v = inst.order.(k) in
      dive probe_st v (Bitset.inter inst.adj.(v) inst.later.(k))
    done;
    (* a few degree-guided dives from the densest-core starts *)
    for i = 0 to min 31 (n - 1) do
      let v = inst.order.(n - 1 - i) in
      dive_deg probe_st v inst.adj.(v)
    done;
    let seed = probe_st.best and seed_w = probe_st.best_w in
    (* one colouring of the whole vertex set defines the top-level branches
       shared by the sequential loop and every pool chunk *)
    let vs = Array.make n 0 and bnd = Array.make n 0. in
    let len = colour probe_st (Bitset.full n) vs bnd in
    assert (len = n);
    let best, best_w =
      match pool with
      | Some p when Pool.size p > 1 && n >= par_cutoff ->
          (* contiguous branch chunks across the pool, one forked token
             each; processed and folded highest positions first — the order
             the sequential loop visits them — so completion results are
             bit-identical to [--jobs 1] *)
          let chunks = min n (4 * Pool.size p) in
          let bounds =
            List.init chunks (fun c ->
                let c = chunks - 1 - c in
                (c * n / chunks, (c + 1) * n / chunks))
          in
          let tagged =
            List.map (fun (lo, hi) -> (Budget.fork budget, lo, hi)) bounds
          in
          let sts =
            Pool.map_list p
              (fun (b, lo, hi) ->
                solve_branches inst b ~seed_w ~seed ~vs ~bnd lo hi)
              tagged
          in
          List.iter (fun (b, _, _) -> Budget.join budget b) tagged;
          List.fold_left
            (fun (best, best_w) st ->
              flush_tally st.t;
              if st.best_w > best_w then (st.best, st.best_w)
              else (best, best_w))
            (seed, seed_w) sts
      | _ ->
          let st = solve_branches inst budget ~seed_w ~seed ~vs ~bnd 0 n in
          flush_tally st.t;
          (st.best, st.best_w)
    in
    {
      clique = List.sort compare best;
      weight = best_w;
      status = Budget.status budget;
    }
  end

let solve ?pool ?budget g =
  let n = Ungraph.n g in
  solve_weights ?pool ?budget g (Array.init n (Ungraph.weight g))

let solve_cardinality ?pool ?budget g =
  solve_weights ?pool ?budget g (Array.make (Ungraph.n g) 1.)
