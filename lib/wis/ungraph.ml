module Bitset = Phom_graph.Bitset

type t = { size : int; adj : Bitset.t array; weights : float array; m : int }

let create ?weights size edges =
  let weights =
    match weights with
    | None -> Array.make size 1.
    | Some w ->
        if Array.length w <> size then invalid_arg "Ungraph.create: weights length";
        Array.copy w
  in
  let adj = Array.init size (fun _ -> Bitset.create size) in
  let m = ref 0 in
  List.iter
    (fun (u, v) ->
      if u = v then invalid_arg "Ungraph.create: self-loop";
      if u < 0 || u >= size || v < 0 || v >= size then
        invalid_arg "Ungraph.create: node out of range";
      if not (Bitset.mem adj.(u) v) then begin
        Bitset.add adj.(u) v;
        Bitset.add adj.(v) u;
        incr m
      end)
    edges;
  { size; adj; weights; m = !m }

let n g = g.size
let nb_edges g = g.m

let check g v =
  if v < 0 || v >= g.size then invalid_arg "Ungraph: node out of range"

let weight g v =
  check g v;
  g.weights.(v)

let adjacent g u v =
  check g u;
  check g v;
  Bitset.mem g.adj.(u) v

let neighbors g v =
  check g v;
  g.adj.(v)

let degree g v = Bitset.count (neighbors g v)

let complement g =
  let edges = ref [] in
  for u = 0 to g.size - 1 do
    for v = u + 1 to g.size - 1 do
      if not (Bitset.mem g.adj.(u) v) then edges := (u, v) :: !edges
    done
  done;
  create ~weights:g.weights g.size !edges

let induced g keep =
  let old_of_new = Array.of_list (Bitset.to_list keep) in
  let new_of_old = Array.make g.size (-1) in
  Array.iteri (fun i v -> new_of_old.(v) <- i) old_of_new;
  let k = Array.length old_of_new in
  let edges = ref [] in
  Array.iteri
    (fun i v ->
      Bitset.iter
        (fun w -> if new_of_old.(w) > i then edges := (i, new_of_old.(w)) :: !edges)
        g.adj.(v))
    old_of_new;
  let weights = Array.map (fun v -> g.weights.(v)) old_of_new in
  (create ~weights k !edges, old_of_new)

let pairwise p g nodes =
  let rec go = function
    | [] -> true
    | v :: rest -> List.for_all (fun w -> v <> w && p g v w) rest && go rest
  in
  go nodes

let is_clique g nodes = pairwise adjacent g nodes

let is_independent g nodes =
  pairwise (fun g u v -> not (adjacent g u v)) g nodes

let total_weight g nodes =
  List.fold_left (fun acc v -> acc +. weight g v) 0. nodes

let pp ppf g =
  Format.fprintf ppf "@[<v>ungraph (%d nodes, %d edges)" g.size g.m;
  for v = 0 to g.size - 1 do
    Format.fprintf ppf "@,%d (w=%.2f):" v g.weights.(v);
    Bitset.iter (fun w -> if w > v then Format.fprintf ppf " %d" w) g.adj.(v)
  done;
  Format.fprintf ppf "@]"
