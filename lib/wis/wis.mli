(** Approximate maximum (weighted) independent sets and cliques.

    Unweighted: Boppana–Halldórsson removal ({!Ramsey}). Weighted:
    Halldórsson's reduction [16] — drop nodes lighter than [W/n], bucket the
    rest into ⌈log₂ n⌉ geometric weight classes [(W/2ⁱ, W/2ⁱ⁻¹]], solve each
    class unweighted, return the heaviest answer. The paper's compMaxSim
    borrows exactly this trick at the matching-list level. *)

val max_independent_set : Ungraph.t -> int list
(** Cardinality objective; sorted ascending. *)

val max_clique : Ungraph.t -> int list

val max_weight_independent_set : Ungraph.t -> int list
(** Weight objective. Never returns worse than the single heaviest node. *)

val max_weight_clique : Ungraph.t -> int list

val exact_max_clique :
  ?budget:int -> ?should_stop:(unit -> bool) -> Ungraph.t -> int list option
(** Exact branch-and-bound (greedy colouring bound). [budget] caps the
    number of search nodes (default 10⁷) and [should_stop] is polled
    periodically (e.g. a wall-clock deadline); [None] when either fires —
    this is how the cdkMCS baseline "does not run to completion". *)
