(** Approximate maximum (weighted) independent sets and cliques.

    Unweighted: Boppana–Halldórsson removal ({!Ramsey}). Weighted:
    Halldórsson's reduction [16] — drop nodes lighter than [W/n], bucket the
    rest into ⌈log₂ n⌉ geometric weight classes [(W/2ⁱ, W/2ⁱ⁻¹]], solve each
    class unweighted, return the heaviest answer. The paper's compMaxSim
    borrows exactly this trick at the matching-list level. *)

val max_independent_set :
  ?pool:Phom_parallel.Pool.t ->
  ?budget:Phom_graph.Budget.t ->
  Ungraph.t ->
  int list
(** Cardinality objective; sorted ascending. All four approximations are
    anytime: an exhausted [budget] yields the best valid set found so far
    (check the token's {!Phom_graph.Budget.status} to distinguish).

    All four take an optional [pool]: the independent subproblems (the
    branches of the Ramsey recursion; for the weighted variants also the
    geometric weight classes) are then evaluated across its domains, with
    [budget] forked into domain-safe children. Without a pool, or with a
    size-1 pool, the historical sequential code path runs unchanged. *)

val max_clique :
  ?pool:Phom_parallel.Pool.t ->
  ?budget:Phom_graph.Budget.t ->
  Ungraph.t ->
  int list

val max_weight_independent_set :
  ?pool:Phom_parallel.Pool.t ->
  ?budget:Phom_graph.Budget.t ->
  Ungraph.t ->
  int list
(** Weight objective. Never returns worse than the single heaviest node,
    even under an exhausted budget. *)

val max_weight_clique :
  ?pool:Phom_parallel.Pool.t ->
  ?budget:Phom_graph.Budget.t ->
  Ungraph.t ->
  int list
(** As {!max_weight_independent_set} for cliques, with one upgrade: on
    graphs of at most a few hundred nodes the answer is additionally
    refined by the exact {!Mwc} engine under a bounded step allowance (the
    caller's [budget] when given, a small private token otherwise), keeping
    whichever clique is heavier. Never worse than the approximation. *)

val exact_max_clique :
  ?pool:Phom_parallel.Pool.t ->
  ?budget:Phom_graph.Budget.t ->
  Ungraph.t ->
  int list * Phom_graph.Budget.status
(** Exact maximum-cardinality clique via the bitset MWC engine ({!Mwc}) on
    unit weights: weight-degeneracy vertex order, greedy weighted-colouring
    upper bounds, one budget tick per search node (default: a fresh
    10⁷-step token). Always returns the best clique found; [Exhausted _]
    marks it possibly suboptimal — this is how the cdkMCS baseline "does
    not run to completion" while still reporting its partial answer.
    [pool] splits the root branches across domains with forked budgets;
    with an untripped budget the result is identical to the sequential
    one. *)

val exact_max_weight_clique :
  ?pool:Phom_parallel.Pool.t ->
  ?budget:Phom_graph.Budget.t ->
  Ungraph.t ->
  int list * float * Phom_graph.Budget.status
(** Exact maximum-weight clique on the graph's node weights — the
    Jain–Obermayer form of the exact p-hom path. Returns the clique, its
    total weight, and the anytime status. *)

val exact_max_clique_legacy :
  ?budget:Phom_graph.Budget.t ->
  Ungraph.t ->
  int list * Phom_graph.Budget.status
(** The pre-MWC exact engine (Tomita branch and bound, unweighted colouring
    bound, list-backed classes). Reference implementation for the
    [bench exact] old-vs-new comparison and the agreement property tests;
    new code wants {!exact_max_clique}. *)
