module Bitset = Phom_graph.Bitset
module Budget = Phom_graph.Budget
module Pool = Phom_parallel.Pool

let max_independent_set ?pool ?budget g = Ramsey.clique_removal ?pool ?budget g
let max_clique ?pool ?budget g = Ramsey.is_removal ?pool ?budget g

let weight_classes g =
  let n = Ungraph.n g in
  let w_max = ref 0. in
  for v = 0 to n - 1 do
    w_max := Float.max !w_max (Ungraph.weight g v)
  done;
  if !w_max <= 0. then []
  else begin
    let classes = max 1 (int_of_float (ceil (log (float_of_int (max 2 n)) /. log 2.))) in
    let buckets = Array.init classes (fun _ -> Bitset.create n) in
    for v = 0 to n - 1 do
      let w = Ungraph.weight g v in
      if w >= !w_max /. float_of_int n then begin
        (* class i holds weights in (W/2^{i+1}, W/2^i]; clamp the tail *)
        let ratio = !w_max /. w in
        let i = min (classes - 1) (max 0 (int_of_float (log ratio /. log 2.))) in
        Bitset.add buckets.(i) v
      end
    done;
    Array.to_list buckets |> List.filter (fun b -> not (Bitset.is_empty b))
  end

let heaviest_node g =
  let best = ref (-1) and best_w = ref neg_infinity in
  for v = 0 to Ungraph.n g - 1 do
    if Ungraph.weight g v > !best_w then begin
      best := v;
      best_w := Ungraph.weight g v
    end
  done;
  if !best < 0 then [] else [ !best ]

let weighted ?pool ?budget solve g =
  (* the weight classes are independent candidate subproblems: with a pool
     each class is solved on its own domain and forked budget token;
     sequentially they share one token — once it trips, the remaining
     classes contribute nothing. Either way the heaviest-node fallback
     (always computed, cheap) guarantees a non-trivial valid answer *)
  let classes = weight_classes g in
  let solve_class b bucket =
    match b with
    | Some bb when Budget.exhausted bb -> []
    | _ ->
        let sub, old_of_new = Ungraph.induced g bucket in
        List.map (fun v -> old_of_new.(v)) (solve ?budget:b sub)
  in
  let candidates =
    match pool with
    | Some p when Pool.size p > 1 && List.length classes > 1 ->
        let tagged =
          List.map (fun c -> (Option.map Budget.fork budget, c)) classes
        in
        let out = Pool.map_list p (fun (b, c) -> solve_class b c) tagged in
        List.iter
          (fun (b, _) ->
            match (budget, b) with
            | Some parent, Some child -> Budget.join parent child
            | _ -> ())
          tagged;
        out
    | _ -> List.map (solve_class budget) classes
  in
  let candidates = heaviest_node g :: candidates in
  let best =
    List.fold_left
      (fun acc sol ->
        if Ungraph.total_weight g sol > Ungraph.total_weight g acc then sol else acc)
      [] candidates
  in
  List.sort compare best

let max_weight_independent_set ?pool ?budget g =
  weighted ?pool ?budget
    (fun ?budget sub -> Ramsey.clique_removal ?pool ?budget sub)
    g

(* below this size the exact MWC engine is cheap enough to refine the
   Halldórsson approximation; above it the product graphs are the domain of
   the heuristic tier and we keep the historical polynomial path *)
let mwc_refine_max_n = 350
let mwc_refine_default_steps = 200_000

let max_weight_clique ?pool ?budget g =
  let approx =
    weighted ?pool ?budget
      (fun ?budget sub -> Ramsey.is_removal ?pool ?budget sub)
      g
  in
  if Ungraph.n g > mwc_refine_max_n || (match budget with Some b -> Budget.exhausted b | None -> false)
  then approx
  else begin
    let b =
      match budget with
      | Some b -> b
      | None -> Budget.create ~steps:mwc_refine_default_steps ()
    in
    let r = Mwc.solve ?pool ~budget:b g in
    if r.Mwc.weight > Ungraph.total_weight g approx then r.Mwc.clique
    else approx
  end

(* Exact maximum clique — the bitset-parallel MWC engine on unit weights
   (cardinality objective), anytime under [budget], root branches split
   across [pool]. *)
let exact_max_clique ?pool ?budget g =
  let budget =
    match budget with Some b -> b | None -> Budget.create ~steps:10_000_000 ()
  in
  let r = Mwc.solve_cardinality ?pool ~budget g in
  (r.Mwc.clique, r.Mwc.status)

(* Exact maximum-weight clique on the graph's own node weights. *)
let exact_max_weight_clique ?pool ?budget g =
  let budget =
    match budget with Some b -> b | None -> Budget.create ~steps:10_000_000 ()
  in
  let r = Mwc.solve ?pool ~budget g in
  (r.Mwc.clique, r.Mwc.weight, r.Mwc.status)

(* The pre-MWC engine: Tomita-style branch and bound with an unweighted
   greedy-colouring bound and list-backed colour classes. Kept as the
   reference implementation the bench harness and the agreement property
   tests measure the bitset engine against. *)
let exact_max_clique_legacy ?budget g =
  let budget =
    match budget with Some b -> b | None -> Budget.create ~steps:10_000_000 ()
  in
  let n = Ungraph.n g in
  let best = ref [] in
  let colour_bound cand =
    (* greedy colouring of the candidate set: #colours bounds the clique *)
    let colours = ref [] in
    Bitset.iter
      (fun v ->
        let rec place = function
          | [] -> colours := [ ref [ v ] ] @ !colours
          | cl :: rest ->
              if List.exists (fun w -> Ungraph.adjacent g v w) !cl then place rest
              else cl := v :: !cl
        in
        place !colours)
      cand;
    List.length !colours
  in
  let rec expand clique cand =
    Budget.tick_exn budget;
    if Bitset.is_empty cand then begin
      if List.length clique > List.length !best then best := clique
    end
    else if List.length clique + colour_bound cand <= List.length !best then ()
    else begin
      match Bitset.choose cand with
      | None -> ()
      | Some v ->
          (* branch 1: v in the clique *)
          let cand_v = Bitset.copy cand in
          Bitset.inter_into ~into:cand_v (Ungraph.neighbors g v);
          expand (v :: clique) cand_v;
          if List.length clique + Bitset.count cand - 1 > List.length !best then begin
            (* branch 2: v excluded *)
            let cand' = Bitset.copy cand in
            Bitset.remove cand' v;
            expand clique cand'
          end
    end
  in
  let status =
    try
      expand [] (Bitset.full n);
      Budget.Complete
    with Budget.Exhausted_budget -> Budget.status budget
  in
  (List.sort compare !best, status)
