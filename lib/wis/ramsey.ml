module Bitset = Phom_graph.Bitset
module Budget = Phom_graph.Budget
module Pool = Phom_parallel.Pool

let pick_pivot g subset =
  (* max degree within [subset] *)
  let best = ref (-1) and best_deg = ref (-1) in
  Bitset.iter
    (fun v ->
      let nb = Bitset.copy (Ungraph.neighbors g v) in
      Bitset.inter_into ~into:nb subset;
      let d = Bitset.count nb in
      if d > !best_deg then begin
        best := v;
        best_deg := d
      end)
    subset;
  !best

let split g subset =
  let v = pick_pivot g subset in
  let nbrs = Bitset.copy (Ungraph.neighbors g v) in
  let inside = Bitset.copy subset in
  Bitset.inter_into ~into:inside nbrs;
  (* non-neighbours of v inside the subset, minus v itself *)
  let outside = Bitset.copy subset in
  Bitset.diff_into ~into:outside nbrs;
  Bitset.remove outside v;
  (v, inside, outside)

let combine v (c1, i1) (c2, i2) =
  let clique = if List.length c1 + 1 >= List.length c2 then v :: c1 else c2 in
  let indep = if List.length i2 + 1 >= List.length i1 then v :: i2 else i1 in
  (clique, indep)

let rec ramsey_budgeted budget g subset =
  (* an exhausted budget makes unexplored subtrees contribute the empty
     clique/IS pair; the combination step below still yields a valid clique
     and a valid independent set (a pivot alone is both), so truncation
     degrades quality, never validity *)
  if Bitset.is_empty subset || not (Budget.tick budget) then ([], [])
  else begin
    let v, inside, outside = split g subset in
    let r1 = ramsey_budgeted budget g inside in
    let r2 = ramsey_budgeted budget g outside in
    combine v r1 r2
  end

(* don't bother shipping a subtree to another domain below this size *)
let par_cutoff = 64

(* Parallel variant: the two recursive branches are independent, so the top
   [depth] levels of the recursion fan out across the pool ([Pool.both]),
   each branch on its own forked budget token. With an untripped budget the
   result is identical to the sequential recursion (the combination is a
   pure function of the two branch results); under a budget trip the
   partition of the remaining allowance differs from the sequential
   depth-first sharing, but validity and anytime semantics are preserved. *)
let rec ramsey_parallel pool depth budget g subset =
  if depth <= 0 || Bitset.count subset < par_cutoff then
    ramsey_budgeted budget g subset
  else if Bitset.is_empty subset || not (Budget.tick budget) then ([], [])
  else begin
    let v, inside, outside = split g subset in
    let b1 = Budget.fork budget and b2 = Budget.fork budget in
    let r1, r2 =
      Pool.both pool
        (fun () -> ramsey_parallel pool (depth - 1) b1 g inside)
        (fun () -> ramsey_parallel pool (depth - 1) b2 g outside)
    in
    Budget.join budget b1;
    Budget.join budget b2;
    combine v r1 r2
  end

(* enough levels to occupy every domain, plus one for load balancing *)
let depth_for pool =
  let size = Pool.size pool in
  let rec levels n acc = if n <= 1 then acc else levels (n / 2) (acc + 1) in
  levels size 0 + 1

let run ?pool budget g subset =
  match pool with
  | Some p when Pool.size p > 1 ->
      ramsey_parallel p (depth_for p) budget g subset
  | _ -> ramsey_budgeted budget g subset

let m_calls = lazy (Phom_obs.Obs.counter "phom_solver_ramsey_calls_total")
let m_rounds = lazy (Phom_obs.Obs.counter "phom_solver_removal_rounds_total")

let ramsey ?pool ?budget g subset =
  Phom_obs.Obs.incr (Lazy.force m_calls);
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  run ?pool budget g subset

let removal ~keep ?pool ?budget g =
  (* Repeatedly run ramsey, drop one of the two sets from the graph, and keep
     the best instance of the other. [keep] selects which set is collected:
     `Clique removes independent sets (ISRemoval), `Indep removes cliques
     (CliqueRemoval). *)
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let remaining = Bitset.full (Ungraph.n g) in
  let best = ref [] in
  let continue = ref true in
  while !continue do
    if Bitset.is_empty remaining || Budget.exhausted budget then
      continue := false
    else begin
      Phom_obs.Obs.incr (Lazy.force m_rounds);
      Phom_obs.Obs.incr (Lazy.force m_calls);
      let clique, indep = run ?pool budget g remaining in
      let collected, removed =
        match keep with `Clique -> (clique, indep) | `Indep -> (indep, clique)
      in
      if List.length collected > List.length !best then best := collected;
      List.iter (Bitset.remove remaining) removed;
      (* ramsey on a non-empty set always returns a non-empty clique and a
         non-empty independent set (the pivot belongs to one of each), so
         the loop strictly shrinks [remaining] *)
      if removed = [] then continue := false
    end
  done;
  List.sort compare !best

let clique_removal ?pool ?budget g = removal ~keep:`Indep ?pool ?budget g
let is_removal ?pool ?budget g = removal ~keep:`Clique ?pool ?budget g
