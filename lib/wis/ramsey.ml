module Bitset = Phom_graph.Bitset
module Budget = Phom_graph.Budget

let pick_pivot g subset =
  (* max degree within [subset] *)
  let best = ref (-1) and best_deg = ref (-1) in
  Bitset.iter
    (fun v ->
      let nb = Bitset.copy (Ungraph.neighbors g v) in
      Bitset.inter_into ~into:nb subset;
      let d = Bitset.count nb in
      if d > !best_deg then begin
        best := v;
        best_deg := d
      end)
    subset;
  !best

let rec ramsey_budgeted budget g subset =
  (* an exhausted budget makes unexplored subtrees contribute the empty
     clique/IS pair; the combination step below still yields a valid clique
     and a valid independent set (a pivot alone is both), so truncation
     degrades quality, never validity *)
  if Bitset.is_empty subset || not (Budget.tick budget) then ([], [])
  else begin
    let v = pick_pivot g subset in
    let nbrs = Bitset.copy (Ungraph.neighbors g v) in
    let inside = Bitset.copy subset in
    Bitset.inter_into ~into:inside nbrs;
    (* non-neighbours of v inside the subset, minus v itself *)
    let outside = Bitset.copy subset in
    Bitset.diff_into ~into:outside nbrs;
    Bitset.remove outside v;
    let c1, i1 = ramsey_budgeted budget g inside in
    let c2, i2 = ramsey_budgeted budget g outside in
    let clique = if List.length c1 + 1 >= List.length c2 then v :: c1 else c2 in
    let indep = if List.length i2 + 1 >= List.length i1 then v :: i2 else i1 in
    (clique, indep)
  end

let ramsey ?budget g subset =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  ramsey_budgeted budget g subset

let removal ~keep ?budget g =
  (* Repeatedly run ramsey, drop one of the two sets from the graph, and keep
     the best instance of the other. [keep] selects which set is collected:
     `Clique removes independent sets (ISRemoval), `Indep removes cliques
     (CliqueRemoval). *)
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let remaining = Bitset.full (Ungraph.n g) in
  let best = ref [] in
  let continue = ref true in
  while !continue do
    if Bitset.is_empty remaining || Budget.exhausted budget then
      continue := false
    else begin
      let clique, indep = ramsey_budgeted budget g remaining in
      let collected, removed =
        match keep with `Clique -> (clique, indep) | `Indep -> (indep, clique)
      in
      if List.length collected > List.length !best then best := collected;
      List.iter (Bitset.remove remaining) removed;
      (* ramsey on a non-empty set always returns a non-empty clique and a
         non-empty independent set (the pivot belongs to one of each), so
         the loop strictly shrinks [remaining] *)
      if removed = [] then continue := false
    end
  done;
  List.sort compare !best

let clique_removal ?budget g = removal ~keep:`Indep ?budget g
let is_removal ?budget g = removal ~keep:`Clique ?budget g
