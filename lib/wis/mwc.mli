(** Bitset-native exact maximum-weight-clique engine.

    The exact p-hom/1-1 p-hom path is maximum-weight clique on the
    Theorem-5.1 compatibility graph (Jain & Obermayer); this engine is its
    solver: weight-degeneracy vertex ordering computed once per instance,
    bitset adjacency rows with incremental candidate-set intersection,
    greedy weighted-colouring upper bounds (sum of per-colour-class weight
    maxima) pruning the branch and bound, and deterministic greedy restarts
    that raise the incumbent before the search so the anytime floor is
    never the empty clique.

    Requires non-negative node weights. One {!Phom_graph.Budget} tick per
    search node (and per restart probe); a trip returns the best clique
    found so far with an [Exhausted] status. With [pool], contiguous
    chunks of the single search tree's top-level branches (one colouring
    of the whole vertex set) fan out across domains on forked budget
    tokens; under an untripped budget the result is bit-identical to the
    sequential run. *)

type result = {
  clique : int list;  (** sorted ascending *)
  weight : float;  (** total weight of [clique] under the solved objective *)
  status : Phom_graph.Budget.status;
}

val solve :
  ?pool:Phom_parallel.Pool.t ->
  ?budget:Phom_graph.Budget.t ->
  Ungraph.t ->
  result
(** Maximum-weight clique under the graph's node weights. Default budget:
    a fresh 10⁷-step token (the historical exact-path safety net). *)

val solve_cardinality :
  ?pool:Phom_parallel.Pool.t ->
  ?budget:Phom_graph.Budget.t ->
  Ungraph.t ->
  result
(** Maximum clique by cardinality: the same engine on unit weights, so
    [weight] equals the clique size. *)
