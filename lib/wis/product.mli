(** The product (compatibility) graph of the AFP-reduction in Theorem 5.1.

    Nodes are the candidate pairs [[v, u]] with [mat(v, u) ≥ ξ] (and, when
    [v] has a self-loop, [u] on a cycle of [G2]). Two pairs are {e adjacent}
    iff they can coexist in one p-hom mapping:
    - [v1 ≠ v2] (a mapping is a function),
    - [(v1, v2) ∈ E1 ⟹ (u1, u2) ∈ E2⁺] and symmetrically for [(v2, v1)],
    - for 1-1 mappings additionally [u1 ≠ u2].

    Cliques of this graph are exactly the (1-1) p-hom mappings from induced
    subgraphs of [G1] to [G2] (Claim 2 in the paper's appendix); independent
    sets of its complement are the same thing, which is how the paper phrases
    the reduction to WIS. Node weights are [w(v) · mat(v, u)] so that a
    maximum-weight clique is a maximum-overall-similarity mapping. *)

type t = {
  graph : Ungraph.t;  (** compatibility graph; weights as described above *)
  pairs : (int * int) array;  (** product node → (v in G1, u in G2) *)
}

val build :
  ?injective:bool ->
  ?weights:float array ->
  g1:Phom_graph.Digraph.t ->
  tc2:Phom_graph.Bitmatrix.t ->
  mat:Phom_sim.Simmat.t ->
  xi:float ->
  unit ->
  t
(** [weights] are the [G1] node weights [w(v)], default all ones; pass
    [Array.make (Digraph.n g1) 1.] and a [mat] of 0/1 values to express the
    cardinality objective. [tc2] is the transitive closure of [G2]
    ({!Phom_graph.Transitive_closure.compute}). *)

val mapping_of_clique : t -> int list -> (int * int) list
(** Translate product nodes back to a mapping, sorted by [G1] node
    (function [g] of the reduction). *)

val is_compatible : t -> g1:Phom_graph.Digraph.t -> tc2:Phom_graph.Bitmatrix.t -> int -> int -> bool
(** Recheck the adjacency definition for two product nodes — used by tests
    as an oracle. *)
