(** Undirected, node-weighted graphs with bitset adjacency.

    The substrate of the (weighted) independent-set and clique algorithms of
    Boppana–Halldórsson [7] and Halldórsson [16]: bitset rows make the
    neighbourhood intersections inside {!Ramsey} cheap. Self-loops are not
    representable (the product graphs of Theorem 5.1 exclude them). *)

type t

val create : ?weights:float array -> int -> (int * int) list -> t
(** [create n edges] builds an undirected graph on nodes [0 .. n-1]; each
    pair is stored symmetrically, self-loops are rejected. [weights]
    defaults to all ones; it must have length [n]. *)

val n : t -> int
val nb_edges : t -> int
val weight : t -> int -> float
val adjacent : t -> int -> int -> bool

val neighbors : t -> int -> Phom_graph.Bitset.t
(** The adjacency row of a node. Owned by the graph — do not mutate. *)

val degree : t -> int -> int

val complement : t -> t
(** Same nodes and weights; [u ~ v] iff they were non-adjacent ([u ≠ v]). *)

val induced : t -> Phom_graph.Bitset.t -> t * int array
(** Subgraph induced by a node set, with the old id of each new node. *)

val is_clique : t -> int list -> bool
(** All nodes pairwise adjacent (and distinct). *)

val is_independent : t -> int list -> bool
(** All nodes pairwise non-adjacent (and distinct). *)

val total_weight : t -> int list -> float

val pp : Format.formatter -> t -> unit
