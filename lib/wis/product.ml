module D = Phom_graph.Digraph
module BM = Phom_graph.Bitmatrix
module Simmat = Phom_sim.Simmat

type t = { graph : Ungraph.t; pairs : (int * int) array }

let pair_ok ~g1 ~tc2 ~mat ~xi v u =
  Simmat.get mat v u >= xi && ((not (D.has_edge g1 v v)) || BM.get tc2 u u)

let edge_ok ~injective ~g1 ~tc2 (v1, u1) (v2, u2) =
  v1 <> v2
  && ((not injective) || u1 <> u2)
  && ((not (D.has_edge g1 v1 v2)) || BM.get tc2 u1 u2)
  && ((not (D.has_edge g1 v2 v1)) || BM.get tc2 u2 u1)

let build ?(injective = false) ?weights ~g1 ~tc2 ~mat ~xi () =
  let n1 = D.n g1 and n2 = Simmat.n2 mat in
  if Simmat.n1 mat <> n1 then invalid_arg "Product.build: mat/g1 size mismatch";
  if BM.rows tc2 <> n2 then invalid_arg "Product.build: tc2/mat size mismatch";
  let w1 =
    match weights with
    | None -> Array.make n1 1.
    | Some w ->
        if Array.length w <> n1 then invalid_arg "Product.build: weights length";
        w
  in
  let pairs = ref [] in
  for v = n1 - 1 downto 0 do
    for u = n2 - 1 downto 0 do
      if pair_ok ~g1 ~tc2 ~mat ~xi v u then pairs := (v, u) :: !pairs
    done
  done;
  let pairs = Array.of_list !pairs in
  let np = Array.length pairs in
  let edges = ref [] in
  for i = 0 to np - 1 do
    for j = i + 1 to np - 1 do
      if edge_ok ~injective ~g1 ~tc2 pairs.(i) pairs.(j) then edges := (i, j) :: !edges
    done
  done;
  let node_weights =
    Array.map (fun (v, u) -> w1.(v) *. Simmat.get mat v u) pairs
  in
  { graph = Ungraph.create ~weights:node_weights np !edges; pairs }

let mapping_of_clique t clique =
  List.sort compare (List.map (fun i -> t.pairs.(i)) clique)

let is_compatible t ~g1 ~tc2 i j =
  (* the oracle ignores the injectivity flag baked into the graph: callers
     compare against both variants explicitly *)
  edge_ok ~injective:false ~g1 ~tc2 t.pairs.(i) t.pairs.(j)
