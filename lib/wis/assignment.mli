(** Minimum-cost assignment (the Hungarian algorithm with potentials,
    O(n²·m)).

    Substrate for the assignment-based graph-edit-distance baseline
    ({!Phom_baselines.Ged}) and anywhere a best 1-1 pairing under a cost
    matrix is needed. *)

val minimize : float array array -> int array * float
(** [minimize cost] for an [n × m] matrix with [n ≤ m] returns
    [(assignment, total)] where [assignment.(i)] is the column assigned to
    row [i] (all distinct) and [total] the minimum total cost. Raises
    [Invalid_argument] when [n > m] or rows are ragged. *)

val maximize : float array array -> int array * float
(** Same with profit maximization (negates the matrix). *)
