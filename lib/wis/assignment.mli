(** Minimum-cost assignment (the Hungarian algorithm with potentials,
    O(n²·m)).

    Substrate for the assignment-based graph-edit-distance baseline
    ({!Phom_baselines.Ged}) and anywhere a best 1-1 pairing under a cost
    matrix is needed. *)

val minimize :
  ?budget:Phom_graph.Budget.t -> float array array -> int array * float
(** [minimize cost] for an [n × m] matrix with [n ≤ m] returns
    [(assignment, total)] where [assignment.(i)] is the column assigned to
    row [i] (all distinct) and [total] the minimum total cost. Raises
    [Invalid_argument] when [n > m] or rows are ragged.

    One [budget] tick per augmenting step. Unlike the search algorithms, a
    half-finished assignment has no meaningful "best so far", so exhaustion
    {e raises} {!Phom_graph.Budget.Exhausted_budget} — callers substitute
    their own fallback (e.g. {!Phom_baselines.Ged} falls back to the
    trivial upper bound). *)

val maximize :
  ?budget:Phom_graph.Budget.t -> float array array -> int array * float
(** Same with profit maximization (negates the matrix). *)
