(** The daemon's warm state: a catalog of named graphs and similarity
    matrices loaded once, plus a byte-accounted {!Lru} artifact cache for
    the derived structures every query needs — closure matrices of [G2⁺]
    (keyed by graph name, content signature and hop bound), computed
    similarity matrices (keyed by the graph pair, similarity kind and
    label signatures), and candidate tables (keyed by pair, kind, hop
    bound, ξ and the signature of the {e relevant} components).

    This is the amortization the paper's optimizations assume: the
    closure/compression structures of a data graph are computed once and
    reused across many patterns, instead of being rebuilt by every process
    invocation.

    {b Content signatures.} Every loaded graph carries CRCs of its content
    — per weak component, for the label array, and for the whole graph —
    and every cache key embeds the signature of the content it was derived
    from. Mutating a graph ({!edit}) therefore invalidates {e implicitly}:
    keys carrying the old signature are simply never looked up again (and
    age out of the LRU), while an edit that exactly undoes a previous one
    restores the old signatures and resurrects the still-valid artifacts.
    Candidate and count keys embed only the signatures of components that
    contain threshold-clearing nodes, so edits confined to irrelevant
    components keep those artifacts warm.

    All operations are domain-safe (catalog tables and cache each sit
    behind a mutex), so solve jobs running on pool workers can consult the
    cache while the accept loop stays responsive.

    {b Budget rule:} artifact computations draw on the requesting query's
    budget. An artifact whose computation was cut short by a tripped budget
    is a sound under-approximation for {e that} query's anytime answer, but
    it is {e never inserted into the cache} — a later, fully-budgeted query
    must not be poisoned by a truncated closure. *)

type t

val create :
  ?max_graph_bytes:int ->
  ?max_mat_bytes:int ->
  ?cache_bytes:int ->
  unit ->
  t
(** Size caps default to the hardened 64 MiB {!Phom_graph.Graph_io} /
    {!Phom_sim.Simmat} limits; [cache_bytes] defaults to 256 MiB. *)

val valid_name : string -> bool
(** Catalog names: 1–64 chars from [A–Z a–z 0–9 _ . -]. The protocol is
    space-delimited, so names can never contain whitespace. *)

(** {1 The catalog proper} *)

val load_graph :
  t -> name:string -> path:string -> (Phom_graph.Digraph.t, string) result
(** Parse the phg file at [path] (under the size cap) and register it under
    [name]. Names are a single namespace shared with matrices. Loading over
    an existing name is idempotent when the file's canonical content is
    byte-identical to what is loaded (the call succeeds and changes
    nothing — this is what lets a failover router replay [load] lines to a
    recovered replica); a name collision with {e different} content is
    refused — [unload] it first. *)

val load_mat :
  t -> name:string -> path:string -> (Phom_sim.Simmat.t, string) result
(** Same, for a phs similarity-matrix file. *)

val unload : t -> string -> (int, string) result
(** Remove a graph or matrix by name and invalidate every cached artifact
    that was derived from it. Returns the number of artifacts dropped;
    [Error] if the name is not loaded. Warm-start solutions involving the
    name are dropped too. An in-flight solve that pinned the name before
    the unload still completes from its snapshot, but can no longer insert
    into the cache (the unload bumps an internal generation counter that
    insertion checks), so purged state is never resurrected. *)

val list :
  t ->
  (string * Phom_graph.Digraph.t) list
  * (string * Phom_sim.Simmat.t) list
(** Loaded graphs and matrices, each sorted by name. *)

val graph : t -> string -> (Phom_graph.Digraph.t, string) result
val mat : t -> string -> (Phom_sim.Simmat.t, string) result

(** {1 Single-edge edits} *)

type edit_result = {
  applied : bool;
      (** [false] when [expect_crc] already matched the live state — the
          edit had been applied before (a replayed or retried line) and
          nothing changed *)
  edges : int;  (** edge count after the call *)
  crc : string;  (** content signature ([graph_sig]) after the call *)
  closures : int;
      (** cached closure artifacts carried across the edit by incremental
          maintenance instead of being dropped *)
}

val edit :
  ?expect_crc:string ->
  t ->
  name:string ->
  op:[ `Add | `Del ] ->
  v:int ->
  w:int ->
  (edit_result, string) result
(** Apply one edge edit to the loaded graph [name], in place (the catalog
    entry is replaced; other snapshots of the old value stay valid). The
    graph's signatures are recomputed, and every cached closure of [name]
    is {e maintained incrementally} ({!Phom_graph.Incremental.update}) and
    re-keyed under the new signature — an edit costs work proportional to
    the affected region, not a full rebuild.

    Adding an edge that is already present, deleting one that is absent,
    or naming an endpoint out of range is an [Error] and changes nothing.

    [expect_crc] makes the edit idempotent for replay: when it equals the
    {e current} signature the call is a no-op success ([applied = false]);
    when the post-edit signature would differ from it, the edit is refused
    before committing. Routers and journal replay use this so re-delivered
    edit lines converge instead of double-applying. *)

val graph_sig : t -> string -> string option
(** The current content signature of a loaded graph ([None] for matrices
    and unknown names). This is the [crc] that {!edit} reports and
    verifies. *)

(** {1 Similarity specification} *)

type sim =
  | Equality  (** label equality (the conventional-matching matrix) *)
  | Shingles  (** w-shingling over labels *)
  | Named of string  (** a preloaded matrix from the catalog *)

val sim_to_string : sim -> string
(** ["equality"], ["shingles"], ["mat:<name>"]. *)

(** {1 Pinned snapshots}

    A request that computes on pool workers concurrently with edits and
    unloads must not read one version of a graph and key its artifacts
    against another. {!pin} captures a graph's value and signatures
    atomically; the [_pinned] artifact functions compute against the pin
    and key against its signatures, so a mutation between prepare and job
    makes lookups miss (and, for an unload, insertion refuse) rather than
    corrupt. *)

type pin = {
  pin_name : string;
  pin_graph : Phom_graph.Digraph.t;
  pin_sig : string;  (** whole-content signature at pin time *)
  pin_lsig : string;  (** label signature at pin time *)
  pin_rep : int array;  (** node → weak-component representative *)
  pin_crc : string array;  (** node → its component's content CRC *)
}

val pin : t -> string -> (pin, string) result
val pin_mat : t -> string -> (Phom_sim.Simmat.t * string, string) result
(** A named matrix and its content CRC (matrices are immutable, so the
    value itself is the snapshot). *)

(** {1 Cached artifacts} *)

type provenance = Hit | Miss | Catalog
(** [Catalog] marks state served straight from the catalog proper (a named
    matrix), which is neither a cache hit nor a recomputation. *)

val provenance_name : provenance -> string
(** ["hit"], ["miss"], ["catalog"]. *)

val closure_pinned :
  ?budget:Phom_graph.Budget.t ->
  t ->
  pin:pin ->
  hops:int option ->
  Phom_graph.Bitmatrix.t * provenance
(** The closure artifact of the pinned graph, via the unified
    {!Phom_graph.Bounded_closure.relation} entry point ([hops = None] is
    the full transitive closure), keyed by the pin's signature. *)

val closure :
  ?budget:Phom_graph.Budget.t ->
  t ->
  name:string ->
  hops:int option ->
  (Phom_graph.Bitmatrix.t * provenance, string) result
(** {!closure_pinned} against a pin taken now. *)

val similarity_pinned :
  ?matv:Phom_sim.Simmat.t * string ->
  t ->
  p1:pin ->
  p2:pin ->
  sim:sim ->
  (Phom_sim.Simmat.t * provenance, string) result
(** The similarity artifact for the pinned pair, keyed by their label
    signatures. [Named] similarities require [matv] (from {!pin_mat}) and
    come back with provenance [Catalog] after a dimension check. *)

val similarity :
  t ->
  g1:string ->
  g2:string ->
  sim:sim ->
  (Phom_sim.Simmat.t * provenance, string) result
(** {!similarity_pinned} against pins taken now. *)

val candidates_pinned :
  ?budget:Phom_graph.Budget.t ->
  ?matv:Phom_sim.Simmat.t * string ->
  t ->
  instance:Phom.Instance.t ->
  p1:pin ->
  p2:pin ->
  sim:sim ->
  hops:int option ->
  provenance
(** Prime [instance] with the candidate table keyed by pair, kind, hops, ξ
    and the pair's {e relevant-component} signature: on a hit the table is
    installed via {!Phom.Instance.preset_candidates}; on a miss it is
    derived from the instance and cached. The instance must have been built
    from the pins' own graphs and artifacts for the key to be truthful. *)

val candidates :
  ?budget:Phom_graph.Budget.t ->
  t ->
  instance:Phom.Instance.t ->
  g1:string ->
  g2:string ->
  sim:sim ->
  hops:int option ->
  provenance
(** {!candidates_pinned} against pins taken now; if a name vanished
    mid-call the instance still gets its table but nothing is cached. *)

val count_pinned :
  ?budget:Phom_graph.Budget.t ->
  ?pool:Phom_parallel.Pool.t ->
  ?matv:Phom_sim.Simmat.t * string ->
  t ->
  instance:Phom.Instance.t ->
  p1:pin ->
  p2:pin ->
  sim:sim ->
  hops:int option ->
  Phom.Dp.count_result * provenance
(** The mapping-count artifact (the [count] verb's answer, a few machine
    words), same keying as {!candidates_pinned}. On a miss the
    tree-decomposition DP runs under [budget]; only a [Complete] run is
    cached, so a hit can honestly report [Complete]. A tripped run returns
    its anytime [count = 0] result and is never inserted. *)

val count :
  ?budget:Phom_graph.Budget.t ->
  ?pool:Phom_parallel.Pool.t ->
  t ->
  instance:Phom.Instance.t ->
  g1:string ->
  g2:string ->
  sim:sim ->
  hops:int option ->
  Phom.Dp.count_result * provenance
(** {!count_pinned} against pins taken now. *)

val cache_stats : t -> Lru.stats
val clear_cache : t -> unit

(** {1 The warm-start solution store}

    The daemon remembers the last mapping per solve shape so a re-solve
    after an {!edit} can seed {!Phom.Api.solve_within}'s [warm_start].
    Keys are chosen by the caller (the daemon uses the request shape
    {e without} signatures, precisely so recall works across edits).
    Bounded; dropped for names an {!unload} removes. *)

val remember_solution :
  t -> key:string -> g1:string -> g2:string -> Phom.Mapping.t -> unit

val recall_solution : t -> key:string -> Phom.Mapping.t option

(** {1 Durability}

    The daemon persists the catalog as checksummed {!Persist} snapshots
    plus a {!Journal} of mutations since the last snapshot. Restore layers
    its own defenses on top of Persist's CRC verification: payloads must
    decode, names must validate, artifacts must match their key's shape
    {e and signature} against the already-restored graphs. Anything that
    fails any check is quarantined (skipped and counted), never served. *)

val set_on_event : t -> (Journal.event -> unit) option -> unit
(** Install (or clear) the journal hook. Every successful [load_graph] /
    [load_mat] / [unload] / applied [edit] and every cache insertion emits
    one event {e after} the mutation lands. The daemon sets this once,
    after recovery, so replay does not journal itself. *)

val export : t -> Persist.record list
(** The catalog's full warm state as snapshot records: graphs and matrices
    first (restore validates artifacts against them), then cache artifacts
    in least-recently-used-first order so re-insertion reproduces recency. *)

val restore_record : t -> Persist.record -> (unit, string) result
(** Restore one snapshot record. [Error] means the record is quarantined:
    undecodable payload, invalid or duplicate name, unknown artifact key,
    or an artifact whose shape or signature contradicts the restored
    graphs. *)

val apply_event : t -> Journal.event -> (unit, string) result
(** Replay one journal event. Load events re-read the source file and
    verify its canonical serialization still matches the journaled
    checksum — a drifted file is unloaded again and reported, never served
    under the stale name. Edit events re-apply the edit and verify the
    resulting signature converges to the journaled one (idempotently, via
    {!edit}'s [expect_crc]). Artifact events recompute the artifact through
    the normal serving path (deterministic, so the warm cache converges to
    its pre-crash contents). *)
