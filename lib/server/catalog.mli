(** The daemon's warm state: a catalog of named graphs and similarity
    matrices loaded once, plus a byte-accounted {!Lru} artifact cache for
    the derived structures every query needs — closure matrices of [G2⁺]
    (keyed by graph name and hop bound), computed similarity matrices
    (keyed by the graph pair and similarity kind), and candidate tables
    (keyed by pair, kind, hop bound and ξ).

    This is the amortization the paper's optimizations assume: the
    closure/compression structures of a data graph are computed once and
    reused across many patterns, instead of being rebuilt by every process
    invocation.

    All operations are domain-safe (catalog tables and cache each sit
    behind a mutex), so solve jobs running on pool workers can consult the
    cache while the accept loop stays responsive.

    {b Budget rule:} artifact computations draw on the requesting query's
    budget. An artifact whose computation was cut short by a tripped budget
    is a sound under-approximation for {e that} query's anytime answer, but
    it is {e never inserted into the cache} — a later, fully-budgeted query
    must not be poisoned by a truncated closure. *)

type t

val create :
  ?max_graph_bytes:int ->
  ?max_mat_bytes:int ->
  ?cache_bytes:int ->
  unit ->
  t
(** Size caps default to the hardened 64 MiB {!Phom_graph.Graph_io} /
    {!Phom_sim.Simmat} limits; [cache_bytes] defaults to 256 MiB. *)

val valid_name : string -> bool
(** Catalog names: 1–64 chars from [A–Z a–z 0–9 _ . -]. The protocol is
    space-delimited, so names can never contain whitespace. *)

(** {1 The catalog proper} *)

val load_graph :
  t -> name:string -> path:string -> (Phom_graph.Digraph.t, string) result
(** Parse the phg file at [path] (under the size cap) and register it under
    [name]. Names are a single namespace shared with matrices. Loading over
    an existing name is idempotent when the file's canonical content is
    byte-identical to what is loaded (the call succeeds and changes
    nothing — this is what lets a failover router replay [load] lines to a
    recovered replica); a name collision with {e different} content is
    refused — [unload] it first. *)

val load_mat :
  t -> name:string -> path:string -> (Phom_sim.Simmat.t, string) result
(** Same, for a phs similarity-matrix file. *)

val unload : t -> string -> (int, string) result
(** Remove a graph or matrix by name and invalidate every cached artifact
    that was derived from it. Returns the number of artifacts dropped;
    [Error] if the name is not loaded. *)

val list :
  t ->
  (string * Phom_graph.Digraph.t) list
  * (string * Phom_sim.Simmat.t) list
(** Loaded graphs and matrices, each sorted by name. *)

val graph : t -> string -> (Phom_graph.Digraph.t, string) result
val mat : t -> string -> (Phom_sim.Simmat.t, string) result

(** {1 Similarity specification} *)

type sim =
  | Equality  (** label equality (the conventional-matching matrix) *)
  | Shingles  (** w-shingling over labels *)
  | Named of string  (** a preloaded matrix from the catalog *)

val sim_to_string : sim -> string
(** ["equality"], ["shingles"], ["mat:<name>"]. *)

(** {1 Cached artifacts} *)

type provenance = Hit | Miss | Catalog
(** [Catalog] marks state served straight from the catalog proper (a named
    matrix), which is neither a cache hit nor a recomputation. *)

val provenance_name : provenance -> string
(** ["hit"], ["miss"], ["catalog"]. *)

val closure :
  ?budget:Phom_graph.Budget.t ->
  t ->
  name:string ->
  hops:int option ->
  (Phom_graph.Bitmatrix.t * provenance, string) result
(** The [(graph, hops)]-keyed closure artifact, via the unified
    {!Phom_graph.Bounded_closure.relation} entry point ([hops = None] is
    the full transitive closure). *)

val similarity :
  t ->
  g1:string ->
  g2:string ->
  sim:sim ->
  (Phom_sim.Simmat.t * provenance, string) result
(** The [(g1, g2, sim)]-keyed similarity artifact. [Named] matrices come
    from the catalog (provenance [Catalog]) after a dimension check against
    the two graphs. *)

val candidates :
  ?budget:Phom_graph.Budget.t ->
  t ->
  instance:Phom.Instance.t ->
  g1:string ->
  g2:string ->
  sim:sim ->
  hops:int option ->
  provenance
(** Prime [instance] with the [(g1, g2, sim, hops, ξ)]-keyed candidate
    table: on a hit the table is installed via
    {!Phom.Instance.preset_candidates}; on a miss it is derived from the
    instance (drawing on [budget] indirectly through the instance's shared
    state) and cached. The instance must have been built from the catalog's
    own graphs and artifacts for the key to be truthful. *)

val count :
  ?budget:Phom_graph.Budget.t ->
  ?pool:Phom_parallel.Pool.t ->
  t ->
  instance:Phom.Instance.t ->
  g1:string ->
  g2:string ->
  sim:sim ->
  hops:int option ->
  Phom.Dp.count_result * provenance
(** The [(g1, g2, sim, hops, ξ)]-keyed mapping-count artifact (the [count]
    verb's answer, a few machine words). On a miss the tree-decomposition
    DP runs under [budget]; only a [Complete] run is cached, so a hit can
    honestly report [Complete]. A tripped run returns its anytime
    [count = 0] result and is never inserted. *)

val cache_stats : t -> Lru.stats
val clear_cache : t -> unit

(** {1 Durability}

    The daemon persists the catalog as checksummed {!Persist} snapshots
    plus a {!Journal} of mutations since the last snapshot. Restore layers
    its own defenses on top of Persist's CRC verification: payloads must
    decode, names must validate, artifacts must match their key's shape
    against the already-restored graphs. Anything that fails any check is
    quarantined (skipped and counted), never served. *)

val set_on_event : t -> (Journal.event -> unit) option -> unit
(** Install (or clear) the journal hook. Every successful [load_graph] /
    [load_mat] / [unload] and every cache insertion emits one event {e
    after} the mutation lands. The daemon sets this once, after recovery,
    so replay does not journal itself. *)

val export : t -> Persist.record list
(** The catalog's full warm state as snapshot records: graphs and matrices
    first (restore validates artifacts against them), then cache artifacts
    in least-recently-used-first order so re-insertion reproduces recency. *)

val restore_record : t -> Persist.record -> (unit, string) result
(** Restore one snapshot record. [Error] means the record is quarantined:
    undecodable payload, invalid or duplicate name, unknown artifact key,
    or an artifact whose shape contradicts its key. *)

val apply_event : t -> Journal.event -> (unit, string) result
(** Replay one journal event. Load events re-read the source file and
    verify its canonical serialization still matches the journaled
    checksum — a drifted file is unloaded again and reported, never served
    under the stale name. Artifact events recompute the artifact through
    the normal serving path (deterministic, so the warm cache converges to
    its pre-crash contents). *)
