(** Durable, checksummed state snapshots.

    A snapshot serializes the daemon's warm state as a sequence of
    independently CRC-32-checksummed records inside one file:
    {v
    phomd-snapshot 1
    record <kind> <name> <len> <crc32-hex>
    <len payload bytes>
    ...
    end <record count>
    v}

    {b Atomicity:} {!write_snapshot} writes to [<path>.tmp], fsyncs, then
    renames over [path] and fsyncs the directory, so a crash at any instant
    leaves either the old complete snapshot or the new one — never a torn
    blend. All bytes ride {!Faults.fwrite}, so tests can inject torn
    writes, short writes and [ENOSPC] at exact points.

    {b Quarantine:} {!read_snapshot} verifies every record's checksum
    {e before} returning its payload. A record that fails its CRC, is
    truncated, or has an unparseable header is quarantined — counted and
    skipped, never returned — and damage the scan cannot resync past stops
    it with the remainder quarantined. Callers layer their own decode
    checks on top; this module guarantees no corrupt payload reaches them. *)

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3 / zlib polynomial). *)

val crc32_hex : string -> string
(** Eight lowercase hex digits — the checksum form used on disk and in
    journal lines. *)

type record = { kind : string; name : string; payload : string }
(** [kind] and [name] are single tokens (no whitespace or control bytes);
    [payload] is arbitrary bytes. *)

val write_snapshot : path:string -> record list -> (int, string) result
(** Atomically replace [path] with a snapshot of [records]; returns the
    byte size written. [Error] carries the path and the OS message; the
    [.tmp] file is removed on failure, and [path] still holds whatever it
    held before.

    @raise Invalid_argument if a record's kind or name is not a clean
    token. *)

val read_snapshot : path:string -> (record list * int, string) result
(** [Ok (records, quarantined)]: every returned record passed its
    checksum; [quarantined] counts entries (or a torn tail) that did not.
    [Error] means the file is unreadable or is not a snapshot at all —
    the caller should treat that as one quarantined snapshot. *)

val write_file_atomic : path:string -> string -> (unit, string) result
(** The tmp + fsync + rename discipline by itself, for callers that manage
    their own format (e.g. the daemon's final Prometheus metrics dump):
    after this returns, [path] holds either its previous content or
    exactly [content], and [<path>.tmp] is gone either way. *)
