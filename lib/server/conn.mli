(** One multiplexed daemon connection: a non-blocking socket wrapped in a
    bounded line reader, a buffered writer and an idle deadline.

    The module is purely mechanical — it moves bytes and tracks deadlines;
    parsing, execution and scheduling stay in {!Daemon}. The loop asks each
    connection what it wants ({!want_read}/{!want_write}), builds the
    [select] sets from the answers, and feeds events back through
    {!handle_read}/{!handle_write}. All I/O goes through {!Faults}, so the
    robustness grid can perturb any byte of the lifecycle. *)

type t

val create :
  ?transport:Faults.kind ->
  max_line:int ->
  idle_timeout:float option ->
  now:float ->
  Unix.file_descr ->
  t
(** Wrap an accepted (non-blocking) socket. [max_line] bounds a single
    request line; [idle_timeout] arms the eviction deadline (None = never
    evict). [transport] names the listener the socket was accepted on
    (default [Unix_sock]) so {!Faults} injections can be scoped to one
    listener's traffic. *)

val fd : t -> Unix.file_descr
val is_open : t -> bool

val is_draining : t -> bool
(** {!close_after_flush} was called: the connection only flushes and
    closes; no further requests are read. *)

val want_read : t -> bool
(** Open, not draining, not overflowed, and with room in the pipelined
    request queue (reading pauses past 16 queued lines so a flooding peer
    is backpressured by its own socket buffer, not by daemon memory). *)

val want_write : t -> bool
(** Unflushed reply bytes are pending. *)

val deadline : t -> float
(** Absolute idle deadline ([infinity] when [idle_timeout] is [None]). *)

val touch : t -> now:float -> unit
(** Re-arm the idle deadline; called when a request completes. *)

val expired : t -> now:float -> bool

type read_outcome =
  | Progress  (** bytes consumed (possibly completing queued lines) *)
  | Line_too_long  (** the bounded reader overflowed [max_line] *)
  | Peer_closed  (** EOF or a hard socket error *)

val handle_read : t -> read_outcome
(** Consume readable bytes (one bounded chunk per call; [select] re-arms).
    [EAGAIN]/[EINTR] are absorbed as [Progress]. *)

val next_line : t -> string option
(** Pop the oldest complete request line (newline and a trailing ['\r']
    stripped), or [None] when no full line is buffered. *)

val send_line : t -> string -> unit
(** Queue one reply line (newline appended). No-op on a closed
    connection. *)

val handle_write : t -> unit
(** Flush as much pending output as the socket accepts. Transient errors
    are absorbed; hard errors (the peer vanished) close the connection.
    When the buffer drains on a draining connection, the socket is
    closed. *)

val close_after_flush : t -> unit
(** Stop reading; close as soon as the pending output is flushed (now, if
    none is pending). *)

val close : t -> unit
(** Close immediately, discarding unflushed output. Idempotent. *)
