module Obs = Phom_obs.Obs
module D = Phom_graph.Digraph
module BM = Phom_graph.Bitmatrix
module Budget = Phom_graph.Budget
module Simmat = Phom_sim.Simmat
module Shingle = Phom_sim.Shingle

type sim = Equality | Shingles | Named of string

let sim_to_string = function
  | Equality -> "equality"
  | Shingles -> "shingles"
  | Named n -> "mat:" ^ n

type provenance = Hit | Miss | Catalog

let provenance_name = function Hit -> "hit" | Miss -> "miss" | Catalog -> "catalog"

(* ---- content signatures ----

   Every loaded graph carries content-derived signatures so cache keys can
   say precisely which state they were computed against:

   - a per-weak-component CRC of the component's canonical content (member
     ids, labels, and edges — an edge's endpoints always share a weak
     component, so edges belong to exactly one);
   - the graph signature [gsig]: a CRC over the sorted per-component
     (representative, crc) pairs — the whole graph's content in one token;
   - the label signature [lsig]: a CRC of the label array alone, which
     single-edge edits never change.

   Being content-derived (not a counter), signatures survive restarts and
   snapshot restores, and an edit that perfectly undoes another restores
   them exactly — cached artifacts keyed under the old signature become
   valid again instead of being lost. Invalidation is implicit: a key whose
   signature no longer matches the live state is simply never looked up
   again, and the LRU evicts it under pressure. *)

type gentry = {
  g : D.t;
  gsig : string;  (** whole-content signature *)
  lsig : string;  (** label-only signature (edit-invariant) *)
  rep : int array;  (** node -> smallest node id of its weak component *)
  comp_crc : string array;  (** node -> its weak component's content CRC *)
}

let analyze g =
  let n = D.n g in
  let comps = Phom_graph.Components.compute g in
  let reps = Array.make comps.Phom_graph.Components.count max_int in
  let comp_of = comps.Phom_graph.Components.comp in
  for v = 0 to n - 1 do
    if v < reps.(comp_of.(v)) then reps.(comp_of.(v)) <- v
  done;
  let bufs =
    Array.init comps.Phom_graph.Components.count (fun _ -> Buffer.create 64)
  in
  for v = 0 to n - 1 do
    Buffer.add_string bufs.(comp_of.(v))
      (Printf.sprintf "n %d %s\n" v (D.label g v))
  done;
  D.iter_edges
    (fun u v ->
      Buffer.add_string bufs.(comp_of.(u)) (Printf.sprintf "e %d %d\n" u v))
    g;
  let crcs = Array.map (fun b -> Persist.crc32_hex (Buffer.contents b)) bufs in
  let order = Array.init (Array.length crcs) Fun.id in
  Array.sort (fun a b -> compare reps.(a) reps.(b)) order;
  let summary =
    String.concat ";"
      (Array.to_list
         (Array.map (fun c -> Printf.sprintf "%d:%s" reps.(c) crcs.(c)) order))
  in
  let lbuf = Buffer.create (16 * n) in
  for v = 0 to n - 1 do
    Buffer.add_string lbuf (D.label g v);
    Buffer.add_char lbuf '\x00'
  done;
  {
    g;
    gsig = Persist.crc32_hex summary;
    lsig = Persist.crc32_hex (Buffer.contents lbuf);
    rep = Array.init n (fun v -> reps.(comp_of.(v)));
    comp_crc = Array.init n (fun v -> crcs.(comp_of.(v)));
  }

(* cache keys carry catalog names plus content signatures: a name says
   what the artifact is for, the signature says which content it was
   computed from, so edits invalidate implicitly (stale-signature keys are
   never looked up) and an unload still purges by name *)
type key =
  | K_closure of string * string * int option  (** graph, gsig, hops *)
  | K_matrix of string * string * string * string
      (** g1, g2, sim_to_string, signature (lsig pair / named-mat crc) *)
  | K_cands of string * string * string * int option * float * string
      (** g1, g2, sim, hops, ξ, pair signature (relevant components) *)
  | K_count of string * string * string * int option * float * string
      (** g1, g2, sim, hops, ξ, pair signature — the count answer itself *)

type artifact =
  | A_closure of BM.t
  | A_matrix of Simmat.t
  | A_cands of int array array
  | A_count of { count : int; exact : bool; width : int }

let artifact_weight = function
  | A_closure m -> BM.byte_size m
  | A_matrix m -> Simmat.byte_size m
  | A_cands rows ->
      let words = Array.fold_left (fun acc r -> acc + 1 + Array.length r) 1 rows in
      words * (Sys.word_size / 8)
  | A_count _ -> 4 * (Sys.word_size / 8)

type entry = Graph of gentry | Mat of { m : Simmat.t; crc : string }

type t = {
  entries : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  cache : (key, artifact) Lru.t;
  max_graph_bytes : int;
  max_mat_bytes : int;
  mutable gen : int;
      (** invalidation generation, bumped by every [unload]: an artifact
          computed against an older generation is stale and must not enter
          the cache *)
  solutions : (string, string * string * Phom.Mapping.t) Hashtbl.t;
      (** last mapping per solve shape (the warm-start store); the value
          carries the two graph names so [unload] can drop what refers to
          them *)
  mutable on_event : (Journal.event -> unit) option;
      (** the daemon's journal hook; set once before serving starts *)
}

let default_max_bytes = 64 * 1024 * 1024

(* the cache metrics are probes over the Lru's own atomic counters — the
   registry reads the very cells reply provenance increments, so the two
   views cannot drift (a fresh catalog re-points the probes at itself) *)
let register_metrics t =
  let fi f = fun () -> float_of_int (f ()) in
  Obs.register_probe "phom_cache_hits_total" (fi (fun () -> Lru.hits t.cache));
  Obs.register_probe "phom_cache_misses_total"
    (fi (fun () -> Lru.misses t.cache));
  Obs.register_probe "phom_cache_evictions_total"
    (fi (fun () -> Lru.evictions t.cache));
  Obs.register_probe "phom_cache_entries"
    (fi (fun () -> (Lru.stats t.cache).entries));
  Obs.register_probe "phom_cache_bytes"
    (fi (fun () -> (Lru.stats t.cache).bytes));
  Obs.register_probe "phom_cache_capacity_bytes"
    (fi (fun () -> (Lru.stats t.cache).capacity_bytes));
  let count pred () =
    Mutex.lock t.lock;
    let n = Hashtbl.fold (fun _ e acc -> if pred e then acc + 1 else acc) t.entries 0 in
    Mutex.unlock t.lock;
    float_of_int n
  in
  Obs.register_probe "phom_catalog_graphs"
    (count (function Graph _ -> true | Mat _ -> false));
  Obs.register_probe "phom_catalog_mats"
    (count (function Mat _ -> true | Graph _ -> false))

let create ?(max_graph_bytes = default_max_bytes)
    ?(max_mat_bytes = default_max_bytes)
    ?(cache_bytes = 256 * 1024 * 1024) () =
  let t =
    {
      entries = Hashtbl.create 16;
      lock = Mutex.create ();
      cache = Lru.create ~capacity_bytes:cache_bytes ~weight:artifact_weight ();
      max_graph_bytes;
      max_mat_bytes;
      gen = 0;
      solutions = Hashtbl.create 16;
      on_event = None;
    }
  in
  register_metrics t;
  t

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let set_on_event t f = t.on_event <- f
let emit t e = match t.on_event with Some f -> f e | None -> ()
let generation t = locked t (fun () -> t.gen)

let valid_name name =
  let ok_char = function
    | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '.' | '-' -> true
    | _ -> false
  in
  let n = String.length name in
  n >= 1 && n <= 64 && String.for_all ok_char name

(* [same old v] returns the already-loaded value when [v] is
   content-identical to it — a reload of the same bytes is idempotent
   (a failover router replays [load] lines to a recovered replica), while
   a name collision with *different* content is still refused *)
let register t ~name ~what ~same make =
  if not (valid_name name) then
    Error
      (Printf.sprintf
         "invalid name %S (1-64 chars from A-Z a-z 0-9 _ . -)" name)
  else
    match make () with
    | Error _ as e -> e
    | Ok v ->
        locked t (fun () ->
            match Hashtbl.find_opt t.entries name with
            | None ->
                Hashtbl.replace t.entries name (what v);
                Ok (`Fresh v)
            | Some old -> (
                match same old v with
                | Some existing -> Ok (`Same existing)
                | None ->
                    Error
                      (Printf.sprintf
                         "name %s is already loaded (unload it first)" name)))

(* journal load events carry a checksum of the loaded value's canonical
   serialization, so replay can refuse a source file that drifted *)
let graph_crc g = Persist.crc32_hex (Phom_graph.Graph_io.to_string g)
let mat_crc m = Persist.crc32_hex (Simmat.to_string m)

let load_graph t ~name ~path =
  match
    register t ~name
      ~what:(fun g -> Graph (analyze g))
      ~same:(fun old g ->
        match old with
        | Graph o when graph_crc o.g = graph_crc g -> Some o.g
        | _ -> None)
      (fun () -> Phom_graph.Graph_io.load ~max_bytes:t.max_graph_bytes path)
  with
  | Ok (`Fresh g) ->
      emit t (Journal.Load_graph { name; path; crc = graph_crc g });
      Ok g
  (* same-content reload: state unchanged, so no journal event *)
  | Ok (`Same g) -> Ok g
  | Error _ as e -> e

let load_mat t ~name ~path =
  match
    register t ~name
      ~what:(fun m -> Mat { m; crc = mat_crc m })
      ~same:(fun old m ->
        match old with
        | Mat o when o.crc = mat_crc m -> Some o.m
        | _ -> None)
      (fun () -> Simmat.load ~max_bytes:t.max_mat_bytes path)
  with
  | Ok (`Fresh m) ->
      emit t (Journal.Load_mat { name; path; crc = mat_crc m });
      Ok m
  | Ok (`Same m) -> Ok m
  | Error _ as e -> e

let derived_from name = function
  | K_closure (g, _, _) -> g = name
  | K_matrix (a, b, s, _) | K_cands (a, b, s, _, _, _) | K_count (a, b, s, _, _, _)
    ->
      a = name || b = name || s = "mat:" ^ name

let unload t name =
  let result =
    locked t (fun () ->
        if Hashtbl.mem t.entries name then begin
          Hashtbl.remove t.entries name;
          (* the invalidation barrier: an in-flight solve that resolved
             [name] before this point fails its generation check and can
             never re-insert (resurrect) an artifact derived from it *)
          t.gen <- t.gen + 1;
          Hashtbl.iter
            (fun k (g1, g2, _) ->
              if g1 = name || g2 = name then Hashtbl.remove t.solutions k)
            (Hashtbl.copy t.solutions);
          Ok (Lru.remove_if t.cache (derived_from name))
        end
        else Error (Printf.sprintf "name %s is not loaded" name))
  in
  (match result with Ok _ -> emit t (Journal.Unload name) | Error _ -> ());
  result

(* ---- pinned snapshots ----

   [pin] captures one graph's value and signatures under the lock; jobs
   that run later (on pool workers, concurrently with edits and unloads)
   compute against the pinned value and look up / insert cache entries
   under the pinned signature. A catalog mutation between prepare and job
   can therefore never make a job read one version and key another: its
   lookups miss (signature mismatch) and it recomputes from its own
   snapshot. Entries are immutable once installed — edits install a fresh
   [gentry] — so sharing the arrays is safe. *)

type pin = {
  pin_name : string;
  pin_graph : D.t;
  pin_sig : string;
  pin_lsig : string;
  pin_rep : int array;
  pin_crc : string array;
}

let pin_of_gentry name ge =
  {
    pin_name = name;
    pin_graph = ge.g;
    pin_sig = ge.gsig;
    pin_lsig = ge.lsig;
    pin_rep = ge.rep;
    pin_crc = ge.comp_crc;
  }

let pin t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | Some (Graph ge) -> Ok (pin_of_gentry name ge)
      | Some (Mat _) ->
          Error (Printf.sprintf "%s is a similarity matrix, not a graph" name)
      | None -> Error (Printf.sprintf "unknown graph %s (load it first)" name))

let pin_mat t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | Some (Mat { m; crc }) -> Ok (m, crc)
      | Some (Graph _) ->
          Error (Printf.sprintf "%s is a graph, not a similarity matrix" name)
      | None ->
          Error (Printf.sprintf "unknown matrix %s (load it first)" name))

let graph t name = Result.map (fun p -> p.pin_graph) (pin t name)
let mat t name = Result.map fst (pin_mat t name)

(* ---- artifact key tokens (the journal's and snapshot's key form) ---- *)

let hops_token = function None -> "full" | Some k -> string_of_int k

let hops_of_token = function
  | "full" -> Some None
  | s -> (
      match int_of_string_opt s with
      | Some k when k >= 1 -> Some (Some k)
      | _ -> None)

(* '/' as separator is unambiguous: catalog names cannot contain it, the
   sim token is "equality", "shingles" or "mat:<name>", and signatures are
   built from hex CRCs and the separators ':' ',' ';' '|' '.'; ξ uses the
   hexadecimal float form for an exact round trip *)
let token_of_key = function
  | K_closure (g, s, hops) ->
      Printf.sprintf "closure/%s/%s/%s" g (hops_token hops) s
  | K_matrix (g1, g2, sim, s) ->
      Printf.sprintf "matrix/%s/%s/%s/%s" g1 g2 sim s
  | K_cands (g1, g2, sim, hops, xi, s) ->
      Printf.sprintf "cands/%s/%s/%s/%s/%h/%s" g1 g2 sim (hops_token hops) xi s
  | K_count (g1, g2, sim, hops, xi, s) ->
      Printf.sprintf "count/%s/%s/%s/%s/%h/%s" g1 g2 sim (hops_token hops) xi s

let key_of_token token =
  match String.split_on_char '/' token with
  | [ "closure"; g; h; s ] ->
      Option.map (fun hops -> K_closure (g, s, hops)) (hops_of_token h)
  | [ "matrix"; g1; g2; sim; s ] -> Some (K_matrix (g1, g2, sim, s))
  | [ "cands"; g1; g2; sim; h; xi; s ] -> (
      match (hops_of_token h, float_of_string_opt xi) with
      | Some hops, Some xi when xi >= 0. && xi <= 1. ->
          Some (K_cands (g1, g2, sim, hops, xi, s))
      | _ -> None)
  | [ "count"; g1; g2; sim; h; xi; s ] -> (
      match (hops_of_token h, float_of_string_opt xi) with
      | Some hops, Some xi when xi >= 0. && xi <= 1. ->
          Some (K_count (g1, g2, sim, hops, xi, s))
      | _ -> None)
  | _ -> None

let sim_of_string = function
  | "equality" -> Some Equality
  | "shingles" -> Some Shingles
  | s ->
      if String.length s > 4 && String.sub s 0 4 = "mat:" then
        Some (Named (String.sub s 4 (String.length s - 4)))
      else None

(* a pin is live when the catalog still carries the same name with the
   same content signature (call under the lock) *)
let pin_live_unlocked t p =
  match Hashtbl.find_opt t.entries p.pin_name with
  | Some (Graph ge) -> ge.gsig = p.pin_sig
  | Some (Mat _) | None -> false

(* cache insertion point for computed artifacts: refused when an unload has
   bumped the generation since the computation began, or when any pin the
   artifact was derived from is no longer the live state (the name was
   unloaded or edited after the job pinned its snapshot). The job's own
   answer is unaffected — it computed against an immutable snapshot — but
   its byproducts must not repopulate the cache for purged or superseded
   content. *)
let put_artifact t ~gen0 ~pins key art =
  locked t (fun () ->
      if t.gen = gen0 && List.for_all (pin_live_unlocked t) pins then begin
        Lru.put t.cache key art;
        emit t (Journal.Artifact (token_of_key key))
      end)

let list t =
  locked t (fun () ->
      let gs = ref [] and ms = ref [] in
      Hashtbl.iter
        (fun name -> function
          | Graph ge -> gs := (name, ge.g) :: !gs
          | Mat { m; _ } -> ms := (name, m) :: !ms)
        t.entries;
      let by_name (a, _) (b, _) = String.compare a b in
      (List.sort by_name !gs, List.sort by_name !ms))

(* only artifacts computed to their natural end are cached: a budget that
   tripped mid-computation leaves a sound under-approximation for the
   current query, which must not poison later ones *)
let cacheable budget =
  match budget with None -> true | Some b -> not (Budget.exhausted b)

let closure_pinned ?budget t ~pin ~hops =
  let gen0 = generation t in
  let key = K_closure (pin.pin_name, pin.pin_sig, hops) in
  match Lru.find t.cache key with
  | Some (A_closure m) -> (m, Hit)
  | Some _ | None ->
      let before = Option.fold ~none:0 ~some:Budget.steps_used budget in
      let m =
        Obs.span "closure" (fun () ->
            Phom_graph.Bounded_closure.relation ?budget ?hops pin.pin_graph)
      in
      Obs.span_steps "closure"
        (Option.fold ~none:0 ~some:Budget.steps_used budget - before);
      if cacheable budget then put_artifact t ~gen0 ~pins:[ pin ] key (A_closure m);
      (m, Miss)

let closure ?budget t ~name ~hops =
  match pin t name with
  | Error _ as e -> e
  | Ok p -> Ok (closure_pinned ?budget t ~pin:p ~hops)

let similarity_pinned ?matv t ~p1 ~p2 ~sim =
  let gen0 = generation t in
  match sim with
  | Named n -> (
      match matv with
      | None -> Error (Printf.sprintf "matrix %s was not pinned" n)
      | Some (m, _) ->
          if
            Simmat.n1 m <> D.n p1.pin_graph || Simmat.n2 m <> D.n p2.pin_graph
          then
            Error
              (Printf.sprintf "matrix %s is %dx%d but graphs %s/%s are %dx%d" n
                 (Simmat.n1 m) (Simmat.n2 m) p1.pin_name p2.pin_name
                 (D.n p1.pin_graph) (D.n p2.pin_graph))
          else Ok (m, Catalog))
  | Equality | Shingles -> (
      let key =
        K_matrix
          ( p1.pin_name,
            p2.pin_name,
            sim_to_string sim,
            p1.pin_lsig ^ "." ^ p2.pin_lsig )
      in
      match Lru.find t.cache key with
      | Some (A_matrix m) -> Ok (m, Hit)
      | Some _ | None ->
          let m =
            Obs.span "similarity" (fun () ->
                match sim with
                | Equality -> Simmat.of_label_equality p1.pin_graph p2.pin_graph
                | Shingles ->
                    Shingle.matrix (D.labels p1.pin_graph) (D.labels p2.pin_graph)
                | Named _ -> assert false)
          in
          put_artifact t ~gen0 ~pins:[ p1; p2 ] key (A_matrix m);
          Ok (m, Miss))

let similarity t ~g1 ~g2 ~sim =
  match (pin t g1, pin t g2) with
  | (Error _ as e), _ | _, (Error _ as e) -> e
  | Ok p1, Ok p2 -> (
      match sim with
      | Named n -> (
          match pin_mat t n with
          | Error _ as e -> e
          | Ok mv -> similarity_pinned ~matv:mv t ~p1 ~p2 ~sim)
      | Equality | Shingles -> similarity_pinned t ~p1 ~p2 ~sim)

(* the pair signature: which loaded content a candidate table (or count)
   was derived from. A weak component is relevant when it contains a node
   that clears the similarity threshold against the other graph — paths
   never leave a weak component and threshold-failing nodes are
   unmatchable whatever the structure, so content changes confined to
   irrelevant components cannot change the artifact, and their signature
   is deliberately left out: edits there keep these keys warm. *)
let pair_sig ~p1 ~p2 ~sim ~matv ~mat ~xi =
  let simtag =
    match (sim, matv) with
    | Named _, Some (_, crc) -> "m:" ^ crc
    | _ -> "l:" ^ p1.pin_lsig ^ "." ^ p2.pin_lsig
  in
  let n1 = D.n p1.pin_graph and n2 = D.n p2.pin_graph in
  let rel1 = Array.make n1 false and rel2 = Array.make n2 false in
  for v = 0 to n1 - 1 do
    for u = 0 to n2 - 1 do
      if Simmat.get mat v u >= xi then begin
        rel1.(v) <- true;
        rel2.(u) <- true
      end
    done
  done;
  let side p rel =
    let seen = Hashtbl.create 8 in
    Array.iteri
      (fun v r ->
        if r && not (Hashtbl.mem seen p.pin_rep.(v)) then
          Hashtbl.add seen p.pin_rep.(v) p.pin_crc.(v))
      rel;
    let comps = Hashtbl.fold (fun r c acc -> (r, c) :: acc) seen [] in
    match List.sort compare comps with
    | [] -> "-"
    | cs ->
        String.concat ","
          (List.map (fun (r, c) -> Printf.sprintf "%d:%s" r c) cs)
  in
  Printf.sprintf "%s|%s|%s" simtag (side p1 rel1) (side p2 rel2)

let candidates_pinned ?budget ?matv t ~instance ~p1 ~p2 ~sim ~hops =
  let gen0 = generation t in
  let xi = instance.Phom.Instance.xi in
  let psig = pair_sig ~p1 ~p2 ~sim ~matv ~mat:instance.Phom.Instance.mat ~xi in
  let key =
    K_cands (p1.pin_name, p2.pin_name, sim_to_string sim, hops, xi, psig)
  in
  match Lru.find t.cache key with
  | Some (A_cands c) ->
      Phom.Instance.preset_candidates instance c;
      Hit
  | Some _ | None ->
      let c = Phom.Instance.candidates instance in
      if cacheable budget then
        put_artifact t ~gen0 ~pins:[ p1; p2 ] key (A_cands c);
      Miss

let candidates ?budget t ~instance ~g1 ~g2 ~sim ~hops =
  let pins =
    match (pin t g1, pin t g2) with
    | Ok p1, Ok p2 -> (
        match sim with
        | Named n -> (
            match pin_mat t n with
            | Ok mv -> Some (p1, p2, Some mv)
            | Error _ -> None)
        | Equality | Shingles -> Some (p1, p2, None))
    | _ -> None
  in
  match pins with
  | Some (p1, p2, matv) ->
      candidates_pinned ?budget ?matv t ~instance ~p1 ~p2 ~sim ~hops
  | None ->
      (* a graph vanished mid-call: answer from the instance, cache nothing *)
      ignore (Phom.Instance.candidates instance);
      Miss

(* the count verb's answer is itself a (tiny) cacheable artifact: the DP
   is deterministic, so a completed count for the same key is the answer.
   Only Complete runs are cached — a tripped count is a partial table, not
   an under-approximation — and a hit legitimately reports Complete *)
let count_pinned ?budget ?pool ?matv t ~instance ~p1 ~p2 ~sim ~hops =
  let gen0 = generation t in
  let xi = instance.Phom.Instance.xi in
  let psig = pair_sig ~p1 ~p2 ~sim ~matv ~mat:instance.Phom.Instance.mat ~xi in
  let key =
    K_count (p1.pin_name, p2.pin_name, sim_to_string sim, hops, xi, psig)
  in
  match Lru.find t.cache key with
  | Some (A_count { count; exact; width }) ->
      ({ Phom.Dp.count; exact; width; status = Budget.Complete }, Hit)
  | Some _ | None ->
      let r = Phom.Api.count ?budget ?pool instance in
      if r.Phom.Dp.status = Budget.Complete && cacheable budget then
        put_artifact t ~gen0 ~pins:[ p1; p2 ] key
          (A_count
             {
               count = r.Phom.Dp.count;
               exact = r.Phom.Dp.exact;
               width = r.Phom.Dp.width;
             });
      (r, Miss)

let count ?budget ?pool t ~instance ~g1 ~g2 ~sim ~hops =
  let pins =
    match (pin t g1, pin t g2) with
    | Ok p1, Ok p2 -> (
        match sim with
        | Named n -> (
            match pin_mat t n with
            | Ok mv -> Some (p1, p2, Some mv)
            | Error _ -> None)
        | Equality | Shingles -> Some (p1, p2, None))
    | _ -> None
  in
  match pins with
  | Some (p1, p2, matv) ->
      count_pinned ?budget ?pool ?matv t ~instance ~p1 ~p2 ~sim ~hops
  | None -> (Phom.Api.count ?budget ?pool instance, Miss)

(* ---- single-edge edits ---- *)

type edit_result = {
  applied : bool;  (** [false]: the target signature already held (no-op) *)
  edges : int;  (** edge count after the call *)
  crc : string;  (** content signature ([gsig]) after the call *)
  closures : int;  (** closure artifacts maintained incrementally *)
}

let op_name = function `Add -> "add" | `Del -> "del"

(* move every cached closure of [name] from the old signature to the new
   one, updating the matrix incrementally instead of recomputing it.
   Runs under the catalog lock, so no unload can interleave; the cache
   insertions go straight to the Lru (the journal event for the edit
   subsumes them — replay re-applies the edit and re-maintains). *)
let maintain_closures t ~name ~before ~after ~op ~v ~w =
  let moved = ref 0 in
  List.iter
    (fun (k, art) ->
      match (k, art) with
      | K_closure (n, s, hops), A_closure m
        when n = name && s = before.gsig ->
          let m' =
            Obs.span "closure_incremental" (fun () ->
                Phom_graph.Incremental.update ~hops ~before:before.g
                  ~after:after.g ~op ~u:v ~v:w m)
          in
          ignore (Lru.remove_if t.cache (fun k' -> k' = k));
          Lru.put t.cache (K_closure (n, after.gsig, hops)) (A_closure m');
          incr moved
      | _ -> ())
    (Lru.bindings t.cache);
  !moved

let edit ?expect_crc t ~name ~op ~v ~w =
  let result =
    locked t (fun () ->
        match Hashtbl.find_opt t.entries name with
        | None -> Error (Printf.sprintf "unknown graph %s (load it first)" name)
        | Some (Mat _) ->
            Error (Printf.sprintf "%s is a similarity matrix, not a graph" name)
        | Some (Graph ge) ->
            let n = D.n ge.g in
            if v < 0 || v >= n || w < 0 || w >= n then
              Error
                (Printf.sprintf
                   "edge %d->%d out of range (graph %s has %d nodes)" v w name
                   n)
            else if expect_crc = Some ge.gsig then
              (* the state already carries the target signature: the edit
                 was applied before (a router replay, a retried line) —
                 succeed without changing anything *)
              Ok
                ( {
                    applied = false;
                    edges = D.nb_edges ge.g;
                    crc = ge.gsig;
                    closures = 0;
                  },
                  None )
            else if op = `Add && D.has_edge ge.g v w then
              Error
                (Printf.sprintf "edge %d->%d is already present in %s" v w name)
            else if op = `Del && not (D.has_edge ge.g v w) then
              Error (Printf.sprintf "no edge %d->%d in %s" v w name)
            else begin
              let g' =
                match op with
                | `Add -> D.add_edge ge.g v w
                | `Del -> D.remove_edge ge.g v w
              in
              let ge' = analyze g' in
              match expect_crc with
              | Some c when c <> ge'.gsig ->
                  (* the caller pinned a target state and this edit does
                     not produce it: refuse before committing anything *)
                  Error
                    (Printf.sprintf
                       "%s: edit yields signature %s, caller expected %s" name
                       ge'.gsig c)
              | _ ->
                  let closures =
                    maintain_closures t ~name ~before:ge ~after:ge' ~op ~v ~w
                  in
                  Hashtbl.replace t.entries name (Graph ge');
                  Ok
                    ( {
                        applied = true;
                        edges = D.nb_edges g';
                        crc = ge'.gsig;
                        closures;
                      },
                      Some
                        (Journal.Edit
                           { name; op = op_name op; v; w; crc = ge'.gsig }) )
            end)
  in
  match result with
  | Error _ as e -> e
  | Ok (r, ev) ->
      Option.iter (emit t) ev;
      Ok r

let graph_sig t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | Some (Graph ge) -> Some ge.gsig
      | _ -> None)

(* ---- the warm-start solution store ---- *)

(* bounded: a runaway key space (many distinct solve shapes) must not
   grow without limit; the store is an optimization, so dropping it
   wholesale is always safe *)
let max_solutions = 1024

let remember_solution t ~key ~g1 ~g2 mapping =
  locked t (fun () ->
      if
        Hashtbl.length t.solutions >= max_solutions
        && not (Hashtbl.mem t.solutions key)
      then Hashtbl.reset t.solutions;
      Hashtbl.replace t.solutions key (g1, g2, mapping))

let recall_solution t ~key =
  locked t (fun () ->
      Option.map (fun (_, _, m) -> m) (Hashtbl.find_opt t.solutions key))

let cache_stats t = Lru.stats t.cache

let clear_cache t = Lru.clear t.cache

(* ---- durability: snapshot export / restore, journal replay ---- *)

let export t =
  let graphs, mats = list t in
  let rec_of_graph (name, g) =
    { Persist.kind = "graph"; name; payload = Phom_graph.Graph_io.to_string g }
  in
  let rec_of_mat (name, m) =
    { Persist.kind = "mat"; name; payload = Simmat.to_string m }
  in
  let rec_of_artifact (k, a) =
    {
      Persist.kind = "artifact";
      name = token_of_key k;
      payload = Marshal.to_string a [];
    }
  in
  (* graphs and matrices first (artifacts are validated against them on
     restore); artifacts in LRU order so re-insertion reproduces recency *)
  List.map rec_of_graph graphs
  @ List.map rec_of_mat mats
  @ List.map rec_of_artifact (Lru.bindings t.cache)

(* a decoded artifact must still agree with its key and with the restored
   graphs before it is trusted — a corrupt snapshot whose CRC happens to
   pass (or a stale key) is quarantined here, not served. Signatures are
   content-derived, so a consistent snapshot's closure keys match the
   restored graphs exactly; a closure whose signature contradicts the
   restored content is stale and rejected. *)
let artifact_plausible t key art =
  match (key, art) with
  | K_closure (g, s, _), A_closure m -> (
      match pin t g with
      | Ok p ->
          BM.rows m = D.n p.pin_graph
          && BM.cols m = D.n p.pin_graph
          && s = p.pin_sig
      | Error _ -> false)
  | K_matrix (g1, g2, _, _), A_matrix m -> (
      match (graph t g1, graph t g2) with
      | Ok a, Ok b -> Simmat.n1 m = D.n a && Simmat.n2 m = D.n b
      | _ -> false)
  | K_cands (g1, g2, _, _, _, _), A_cands rows -> (
      match (graph t g1, graph t g2) with
      | Ok a, Ok b ->
          Array.length rows = D.n a
          && Array.for_all
               (Array.for_all (fun u -> u >= 0 && u < D.n b))
               rows
      | _ -> false)
  | K_count (g1, g2, _, _, _, _), A_count { count; width; _ } -> (
      match (graph t g1, graph t g2) with
      | Ok a, Ok _ -> count >= 0 && width >= -1 && width < D.n a
      | _ -> false)
  | (K_closure _ | K_matrix _ | K_cands _ | K_count _), _ -> false

let restore_record t (r : Persist.record) =
  let insert_entry name e =
    if not (valid_name name) then
      Error (Printf.sprintf "%s: invalid catalog name" name)
    else
      locked t (fun () ->
          if Hashtbl.mem t.entries name then
            Error (Printf.sprintf "%s: already restored" name)
          else begin
            Hashtbl.replace t.entries name e;
            Ok ()
          end)
  in
  match r.Persist.kind with
  | "graph" -> (
      if String.length r.payload > t.max_graph_bytes then
        Error (r.name ^ ": snapshot graph exceeds the size cap")
      else
        match Phom_graph.Graph_io.of_string r.payload with
        | Ok g -> insert_entry r.name (Graph (analyze g))
        | Error e -> Error (r.name ^ ": " ^ e))
  | "mat" -> (
      if String.length r.payload > t.max_mat_bytes then
        Error (r.name ^ ": snapshot matrix exceeds the size cap")
      else
        match Simmat.of_string r.payload with
        | Ok m -> insert_entry r.name (Mat { m; crc = mat_crc m })
        | Error e -> Error (r.name ^ ": " ^ e))
  | "artifact" -> (
      match key_of_token r.name with
      | None -> Error (r.name ^ ": unknown artifact key")
      | Some key -> (
          (* the payload's CRC was verified by Persist before it got here,
             so unmarshalling is safe against torn bytes; the guard below
             rejects a payload that decodes but lies about its shape *)
          match (Marshal.from_string r.payload 0 : artifact) with
          | exception _ -> Error (r.name ^ ": undecodable artifact payload")
          | art ->
              if artifact_plausible t key art then begin
                Lru.put t.cache key art;
                Ok ()
              end
              else Error (r.name ^ ": artifact does not match its key")))
  | kind -> Error (Printf.sprintf "%s: unknown record kind %s" r.name kind)

(* recompute one artifact by key — the replay path for journaled artifact
   events, reusing the exact serving-path derivations. The journaled
   signature is informational: the recomputation keys itself against the
   replayed catalog's current signatures, which is where the state has
   converged by this point of the replay. *)
let warm t key =
  let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
  match key with
  | K_closure (name, _, hops) -> (
      match closure t ~name ~hops with Ok _ -> Ok () | Error e -> Error e)
  | K_matrix (g1, g2, sim_s, _) -> (
      match sim_of_string sim_s with
      | None -> Error (sim_s ^ ": unknown similarity kind")
      | Some sim -> (
          match similarity t ~g1 ~g2 ~sim with
          | Ok _ -> Ok ()
          | Error e -> Error e))
  | K_cands (g1, g2, sim_s, hops, xi, _) -> (
      match sim_of_string sim_s with
      | None -> Error (sim_s ^ ": unknown similarity kind")
      | Some sim -> (
          let* ga = graph t g1 in
          let* gb = graph t g2 in
          let* tc2, _ = closure t ~name:g2 ~hops in
          let* mat, _ = similarity t ~g1 ~g2 ~sim in
          match Phom.Instance.make ~tc2 ~g1:ga ~g2:gb ~mat ~xi () with
          | instance ->
              ignore (candidates t ~instance ~g1 ~g2 ~sim ~hops);
              Ok ()
          | exception Invalid_argument m -> Error m))
  | K_count (g1, g2, sim_s, hops, xi, _) -> (
      match sim_of_string sim_s with
      | None -> Error (sim_s ^ ": unknown similarity kind")
      | Some sim -> (
          let* ga = graph t g1 in
          let* gb = graph t g2 in
          let* tc2, _ = closure t ~name:g2 ~hops in
          let* mat, _ = similarity t ~g1 ~g2 ~sim in
          match Phom.Instance.make ~tc2 ~g1:ga ~g2:gb ~mat ~xi () with
          | instance ->
              ignore (candidates t ~instance ~g1 ~g2 ~sim ~hops);
              ignore (count t ~instance ~g1 ~g2 ~sim ~hops);
              Ok ()
          | exception Invalid_argument m -> Error m))

let apply_event t = function
  | Journal.Load_graph { name; path; crc } -> (
      match load_graph t ~name ~path with
      | Error e -> Error e
      | Ok g ->
          if graph_crc g = crc then Ok ()
          else begin
            (* the file drifted since the journaled load: a replay must
               not serve different bytes under the same name *)
            ignore (unload t name);
            Error
              (Printf.sprintf "%s: %s changed since it was journaled" name
                 path)
          end)
  | Journal.Load_mat { name; path; crc } -> (
      match load_mat t ~name ~path with
      | Error e -> Error e
      | Ok m ->
          if mat_crc m = crc then Ok ()
          else begin
            ignore (unload t name);
            Error
              (Printf.sprintf "%s: %s changed since it was journaled" name
                 path)
          end)
  | Journal.Unload name -> (
      match unload t name with Ok _ -> Ok () | Error e -> Error e)
  | Journal.Edit { name; op; v; w; crc } -> (
      let op' =
        match op with
        | "add" -> Ok `Add
        | "del" -> Ok `Del
        | s -> Error (Printf.sprintf "%s: unknown edit op %s" name s)
      in
      match op' with
      | Error _ as e -> e
      | Ok op -> (
          (* [expect_crc] both verifies convergence (the replayed edit must
             reproduce the journaled signature) and makes replay idempotent
             (a state already carrying it is a clean no-op) *)
          match edit ~expect_crc:crc t ~name ~op ~v ~w with
          | Ok _ -> Ok ()
          | Error e -> Error e))
  | Journal.Artifact token -> (
      match key_of_token token with
      | None -> Error (token ^ ": unknown artifact key")
      | Some key -> warm t key)
