module Obs = Phom_obs.Obs
module D = Phom_graph.Digraph
module BM = Phom_graph.Bitmatrix
module Budget = Phom_graph.Budget
module Simmat = Phom_sim.Simmat
module Shingle = Phom_sim.Shingle

type sim = Equality | Shingles | Named of string

let sim_to_string = function
  | Equality -> "equality"
  | Shingles -> "shingles"
  | Named n -> "mat:" ^ n

type provenance = Hit | Miss | Catalog

let provenance_name = function Hit -> "hit" | Miss -> "miss" | Catalog -> "catalog"

(* cache keys carry catalog names, not structures: unload invalidates by
   name, and equal names mean equal structures while loaded (loading over
   an existing name is refused) *)
type key =
  | K_closure of string * int option  (** graph, hops *)
  | K_matrix of string * string * string  (** g1, g2, sim_to_string *)
  | K_cands of string * string * string * int option * float
      (** g1, g2, sim, hops, ξ *)
  | K_count of string * string * string * int option * float
      (** g1, g2, sim, hops, ξ — the mapping-count answer itself *)

type artifact =
  | A_closure of BM.t
  | A_matrix of Simmat.t
  | A_cands of int array array
  | A_count of { count : int; exact : bool; width : int }

let artifact_weight = function
  | A_closure m -> BM.byte_size m
  | A_matrix m -> Simmat.byte_size m
  | A_cands rows ->
      let words = Array.fold_left (fun acc r -> acc + 1 + Array.length r) 1 rows in
      words * (Sys.word_size / 8)
  | A_count _ -> 4 * (Sys.word_size / 8)

type entry = Graph of D.t | Mat of Simmat.t

type t = {
  entries : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  cache : (key, artifact) Lru.t;
  max_graph_bytes : int;
  max_mat_bytes : int;
  mutable gen : int;
      (** invalidation generation, bumped by every [unload]: an artifact
          computed against an older generation is stale and must not enter
          the cache *)
  mutable on_event : (Journal.event -> unit) option;
      (** the daemon's journal hook; set once before serving starts *)
}

let default_max_bytes = 64 * 1024 * 1024

(* the cache metrics are probes over the Lru's own atomic counters — the
   registry reads the very cells reply provenance increments, so the two
   views cannot drift (a fresh catalog re-points the probes at itself) *)
let register_metrics t =
  let fi f = fun () -> float_of_int (f ()) in
  Obs.register_probe "phom_cache_hits_total" (fi (fun () -> Lru.hits t.cache));
  Obs.register_probe "phom_cache_misses_total"
    (fi (fun () -> Lru.misses t.cache));
  Obs.register_probe "phom_cache_evictions_total"
    (fi (fun () -> Lru.evictions t.cache));
  Obs.register_probe "phom_cache_entries"
    (fi (fun () -> (Lru.stats t.cache).entries));
  Obs.register_probe "phom_cache_bytes"
    (fi (fun () -> (Lru.stats t.cache).bytes));
  Obs.register_probe "phom_cache_capacity_bytes"
    (fi (fun () -> (Lru.stats t.cache).capacity_bytes));
  let count pred () =
    Mutex.lock t.lock;
    let n = Hashtbl.fold (fun _ e acc -> if pred e then acc + 1 else acc) t.entries 0 in
    Mutex.unlock t.lock;
    float_of_int n
  in
  Obs.register_probe "phom_catalog_graphs"
    (count (function Graph _ -> true | Mat _ -> false));
  Obs.register_probe "phom_catalog_mats"
    (count (function Mat _ -> true | Graph _ -> false))

let create ?(max_graph_bytes = default_max_bytes)
    ?(max_mat_bytes = default_max_bytes)
    ?(cache_bytes = 256 * 1024 * 1024) () =
  let t =
    {
      entries = Hashtbl.create 16;
      lock = Mutex.create ();
      cache = Lru.create ~capacity_bytes:cache_bytes ~weight:artifact_weight ();
      max_graph_bytes;
      max_mat_bytes;
      gen = 0;
      on_event = None;
    }
  in
  register_metrics t;
  t

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let set_on_event t f = t.on_event <- f
let emit t e = match t.on_event with Some f -> f e | None -> ()
let generation t = locked t (fun () -> t.gen)

let valid_name name =
  let ok_char = function
    | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '.' | '-' -> true
    | _ -> false
  in
  let n = String.length name in
  n >= 1 && n <= 64 && String.for_all ok_char name

(* [same old v] returns the already-loaded value when [v] is
   content-identical to it — a reload of the same bytes is idempotent
   (a failover router replays [load] lines to a recovered replica), while
   a name collision with *different* content is still refused *)
let register t ~name ~what ~same make =
  if not (valid_name name) then
    Error
      (Printf.sprintf
         "invalid name %S (1-64 chars from A-Z a-z 0-9 _ . -)" name)
  else
    match make () with
    | Error _ as e -> e
    | Ok v ->
        locked t (fun () ->
            match Hashtbl.find_opt t.entries name with
            | None ->
                Hashtbl.replace t.entries name (what v);
                Ok (`Fresh v)
            | Some old -> (
                match same old v with
                | Some existing -> Ok (`Same existing)
                | None ->
                    Error
                      (Printf.sprintf
                         "name %s is already loaded (unload it first)" name)))

(* journal load events carry a checksum of the loaded value's canonical
   serialization, so replay can refuse a source file that drifted *)
let graph_crc g = Persist.crc32_hex (Phom_graph.Graph_io.to_string g)
let mat_crc m = Persist.crc32_hex (Simmat.to_string m)

let load_graph t ~name ~path =
  match
    register t ~name
      ~what:(fun g -> Graph g)
      ~same:(fun old g ->
        match old with
        | Graph o when graph_crc o = graph_crc g -> Some o
        | _ -> None)
      (fun () -> Phom_graph.Graph_io.load ~max_bytes:t.max_graph_bytes path)
  with
  | Ok (`Fresh g) ->
      emit t (Journal.Load_graph { name; path; crc = graph_crc g });
      Ok g
  (* same-content reload: state unchanged, so no journal event *)
  | Ok (`Same g) -> Ok g
  | Error _ as e -> e

let load_mat t ~name ~path =
  match
    register t ~name
      ~what:(fun m -> Mat m)
      ~same:(fun old m ->
        match old with Mat o when mat_crc o = mat_crc m -> Some o | _ -> None)
      (fun () -> Simmat.load ~max_bytes:t.max_mat_bytes path)
  with
  | Ok (`Fresh m) ->
      emit t (Journal.Load_mat { name; path; crc = mat_crc m });
      Ok m
  | Ok (`Same m) -> Ok m
  | Error _ as e -> e

let derived_from name = function
  | K_closure (g, _) -> g = name
  | K_matrix (a, b, s) | K_cands (a, b, s, _, _) | K_count (a, b, s, _, _) ->
      a = name || b = name || s = "mat:" ^ name

let unload t name =
  let result =
    locked t (fun () ->
        if Hashtbl.mem t.entries name then begin
          Hashtbl.remove t.entries name;
          (* the invalidation barrier: an in-flight solve that resolved
             [name] before this point fails its generation check and can
             never re-insert (resurrect) an artifact derived from it *)
          t.gen <- t.gen + 1;
          Ok (Lru.remove_if t.cache (derived_from name))
        end
        else Error (Printf.sprintf "name %s is not loaded" name))
  in
  (match result with Ok _ -> emit t (Journal.Unload name) | Error _ -> ());
  result

(* ---- artifact key tokens (the journal's and snapshot's key form) ---- *)

let hops_token = function None -> "full" | Some k -> string_of_int k

let hops_of_token = function
  | "full" -> Some None
  | s -> (
      match int_of_string_opt s with
      | Some k when k >= 1 -> Some (Some k)
      | _ -> None)

(* '/' as separator is unambiguous: catalog names cannot contain it and
   the sim token is "equality", "shingles" or "mat:<name>"; ξ uses the
   hexadecimal float form for an exact round trip *)
let token_of_key = function
  | K_closure (g, hops) -> Printf.sprintf "closure/%s/%s" g (hops_token hops)
  | K_matrix (g1, g2, sim) -> Printf.sprintf "matrix/%s/%s/%s" g1 g2 sim
  | K_cands (g1, g2, sim, hops, xi) ->
      Printf.sprintf "cands/%s/%s/%s/%s/%h" g1 g2 sim (hops_token hops) xi
  | K_count (g1, g2, sim, hops, xi) ->
      Printf.sprintf "count/%s/%s/%s/%s/%h" g1 g2 sim (hops_token hops) xi

let key_of_token token =
  match String.split_on_char '/' token with
  | [ "closure"; g; h ] ->
      Option.map (fun hops -> K_closure (g, hops)) (hops_of_token h)
  | [ "matrix"; g1; g2; sim ] -> Some (K_matrix (g1, g2, sim))
  | [ "cands"; g1; g2; sim; h; xi ] -> (
      match (hops_of_token h, float_of_string_opt xi) with
      | Some hops, Some xi when xi >= 0. && xi <= 1. ->
          Some (K_cands (g1, g2, sim, hops, xi))
      | _ -> None)
  | [ "count"; g1; g2; sim; h; xi ] -> (
      match (hops_of_token h, float_of_string_opt xi) with
      | Some hops, Some xi when xi >= 0. && xi <= 1. ->
          Some (K_count (g1, g2, sim, hops, xi))
      | _ -> None)
  | _ -> None

let sim_of_string = function
  | "equality" -> Some Equality
  | "shingles" -> Some Shingles
  | s ->
      if String.length s > 4 && String.sub s 0 4 = "mat:" then
        Some (Named (String.sub s 4 (String.length s - 4)))
      else None

(* cache insertion point for computed artifacts: refused when an unload
   has bumped the generation since the computation began, so a purged
   name can never be resurrected by a racing in-flight solve *)
let put_artifact t ~gen0 key art =
  locked t (fun () ->
      if t.gen = gen0 then begin
        Lru.put t.cache key art;
        emit t (Journal.Artifact (token_of_key key))
      end)

let list t =
  locked t (fun () ->
      let gs = ref [] and ms = ref [] in
      Hashtbl.iter
        (fun name -> function
          | Graph g -> gs := (name, g) :: !gs
          | Mat m -> ms := (name, m) :: !ms)
        t.entries;
      let by_name (a, _) (b, _) = String.compare a b in
      (List.sort by_name !gs, List.sort by_name !ms))

let graph t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | Some (Graph g) -> Ok g
      | Some (Mat _) ->
          Error (Printf.sprintf "%s is a similarity matrix, not a graph" name)
      | None -> Error (Printf.sprintf "unknown graph %s (load it first)" name))

let mat t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | Some (Mat m) -> Ok m
      | Some (Graph _) ->
          Error (Printf.sprintf "%s is a graph, not a similarity matrix" name)
      | None ->
          Error (Printf.sprintf "unknown matrix %s (load it first)" name))

(* only artifacts computed to their natural end are cached: a budget that
   tripped mid-computation leaves a sound under-approximation for the
   current query, which must not poison later ones *)
let cacheable budget =
  match budget with None -> true | Some b -> not (Budget.exhausted b)

let closure ?budget t ~name ~hops =
  let gen0 = generation t in
  match graph t name with
  | Error _ as e -> e
  | Ok g -> (
      let key = K_closure (name, hops) in
      match Lru.find t.cache key with
      | Some (A_closure m) -> Ok (m, Hit)
      | Some _ | None ->
          let before = Option.fold ~none:0 ~some:Budget.steps_used budget in
          let m =
            Obs.span "closure" (fun () ->
                Phom_graph.Bounded_closure.relation ?budget ?hops g)
          in
          Obs.span_steps "closure"
            (Option.fold ~none:0 ~some:Budget.steps_used budget - before);
          if cacheable budget then put_artifact t ~gen0 key (A_closure m);
          Ok (m, Miss))

let similarity t ~g1 ~g2 ~sim =
  let gen0 = generation t in
  match (graph t g1, graph t g2) with
  | (Error _ as e), _ | _, (Error _ as e) -> e
  | Ok ga, Ok gb -> (
      match sim with
      | Named n -> (
          match mat t n with
          | Error _ as e -> e
          | Ok m ->
              if Simmat.n1 m <> D.n ga || Simmat.n2 m <> D.n gb then
                Error
                  (Printf.sprintf
                     "matrix %s is %dx%d but graphs %s/%s are %dx%d" n
                     (Simmat.n1 m) (Simmat.n2 m) g1 g2 (D.n ga) (D.n gb))
              else Ok (m, Catalog))
      | Equality | Shingles -> (
          let key = K_matrix (g1, g2, sim_to_string sim) in
          match Lru.find t.cache key with
          | Some (A_matrix m) -> Ok (m, Hit)
          | Some _ | None ->
              let m =
                Obs.span "similarity" (fun () ->
                    match sim with
                    | Equality -> Simmat.of_label_equality ga gb
                    | Shingles -> Shingle.matrix (D.labels ga) (D.labels gb)
                    | Named _ -> assert false)
              in
              put_artifact t ~gen0 key (A_matrix m);
              Ok (m, Miss)))

let candidates ?budget t ~instance ~g1 ~g2 ~sim ~hops =
  let gen0 = generation t in
  let key =
    K_cands (g1, g2, sim_to_string sim, hops, instance.Phom.Instance.xi)
  in
  match Lru.find t.cache key with
  | Some (A_cands c) ->
      Phom.Instance.preset_candidates instance c;
      Hit
  | Some _ | None ->
      let c = Phom.Instance.candidates instance in
      if cacheable budget then put_artifact t ~gen0 key (A_cands c);
      Miss

(* the count verb's answer is itself a (tiny) cacheable artifact: the DP
   is deterministic, so a completed count for the same key is the answer.
   Only Complete runs are cached — a tripped count is a partial table, not
   an under-approximation — and a hit legitimately reports Complete *)
let count ?budget ?pool t ~instance ~g1 ~g2 ~sim ~hops =
  let gen0 = generation t in
  let key =
    K_count (g1, g2, sim_to_string sim, hops, instance.Phom.Instance.xi)
  in
  match Lru.find t.cache key with
  | Some (A_count { count; exact; width }) ->
      ({ Phom.Dp.count; exact; width; status = Budget.Complete }, Hit)
  | Some _ | None ->
      let r = Phom.Api.count ?budget ?pool instance in
      if r.Phom.Dp.status = Budget.Complete && cacheable budget then
        put_artifact t ~gen0 key
          (A_count
             {
               count = r.Phom.Dp.count;
               exact = r.Phom.Dp.exact;
               width = r.Phom.Dp.width;
             });
      (r, Miss)

let cache_stats t = Lru.stats t.cache

let clear_cache t = Lru.clear t.cache

(* ---- durability: snapshot export / restore, journal replay ---- *)

let export t =
  let graphs, mats = list t in
  let rec_of_graph (name, g) =
    { Persist.kind = "graph"; name; payload = Phom_graph.Graph_io.to_string g }
  in
  let rec_of_mat (name, m) =
    { Persist.kind = "mat"; name; payload = Simmat.to_string m }
  in
  let rec_of_artifact (k, a) =
    {
      Persist.kind = "artifact";
      name = token_of_key k;
      payload = Marshal.to_string a [];
    }
  in
  (* graphs and matrices first (artifacts are validated against them on
     restore); artifacts in LRU order so re-insertion reproduces recency *)
  List.map rec_of_graph graphs
  @ List.map rec_of_mat mats
  @ List.map rec_of_artifact (Lru.bindings t.cache)

(* a decoded artifact must still agree with its key and with the restored
   graphs before it is trusted — a corrupt snapshot whose CRC happens to
   pass (or a stale key) is quarantined here, not served *)
let artifact_plausible t key art =
  match (key, art) with
  | K_closure (g, _), A_closure m -> (
      match graph t g with
      | Ok dg -> BM.rows m = D.n dg && BM.cols m = D.n dg
      | Error _ -> false)
  | K_matrix (g1, g2, _), A_matrix m -> (
      match (graph t g1, graph t g2) with
      | Ok a, Ok b -> Simmat.n1 m = D.n a && Simmat.n2 m = D.n b
      | _ -> false)
  | K_cands (g1, g2, _, _, _), A_cands rows -> (
      match (graph t g1, graph t g2) with
      | Ok a, Ok b ->
          Array.length rows = D.n a
          && Array.for_all
               (Array.for_all (fun u -> u >= 0 && u < D.n b))
               rows
      | _ -> false)
  | K_count (g1, g2, _, _, _), A_count { count; width; _ } -> (
      match (graph t g1, graph t g2) with
      | Ok a, Ok _ -> count >= 0 && width >= -1 && width < D.n a
      | _ -> false)
  | (K_closure _ | K_matrix _ | K_cands _ | K_count _), _ -> false

let restore_record t (r : Persist.record) =
  let insert_entry name e =
    if not (valid_name name) then
      Error (Printf.sprintf "%s: invalid catalog name" name)
    else
      locked t (fun () ->
          if Hashtbl.mem t.entries name then
            Error (Printf.sprintf "%s: already restored" name)
          else begin
            Hashtbl.replace t.entries name e;
            Ok ()
          end)
  in
  match r.Persist.kind with
  | "graph" -> (
      if String.length r.payload > t.max_graph_bytes then
        Error (r.name ^ ": snapshot graph exceeds the size cap")
      else
        match Phom_graph.Graph_io.of_string r.payload with
        | Ok g -> insert_entry r.name (Graph g)
        | Error e -> Error (r.name ^ ": " ^ e))
  | "mat" -> (
      if String.length r.payload > t.max_mat_bytes then
        Error (r.name ^ ": snapshot matrix exceeds the size cap")
      else
        match Simmat.of_string r.payload with
        | Ok m -> insert_entry r.name (Mat m)
        | Error e -> Error (r.name ^ ": " ^ e))
  | "artifact" -> (
      match key_of_token r.name with
      | None -> Error (r.name ^ ": unknown artifact key")
      | Some key -> (
          (* the payload's CRC was verified by Persist before it got here,
             so unmarshalling is safe against torn bytes; the guard below
             rejects a payload that decodes but lies about its shape *)
          match (Marshal.from_string r.payload 0 : artifact) with
          | exception _ -> Error (r.name ^ ": undecodable artifact payload")
          | art ->
              if artifact_plausible t key art then begin
                Lru.put t.cache key art;
                Ok ()
              end
              else Error (r.name ^ ": artifact does not match its key")))
  | kind -> Error (Printf.sprintf "%s: unknown record kind %s" r.name kind)

(* recompute one artifact by key — the replay path for journaled artifact
   events, reusing the exact serving-path derivations *)
let warm t key =
  let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
  match key with
  | K_closure (name, hops) -> (
      match closure t ~name ~hops with Ok _ -> Ok () | Error e -> Error e)
  | K_matrix (g1, g2, sim_s) -> (
      match sim_of_string sim_s with
      | None -> Error (sim_s ^ ": unknown similarity kind")
      | Some sim -> (
          match similarity t ~g1 ~g2 ~sim with
          | Ok _ -> Ok ()
          | Error e -> Error e))
  | K_cands (g1, g2, sim_s, hops, xi) -> (
      match sim_of_string sim_s with
      | None -> Error (sim_s ^ ": unknown similarity kind")
      | Some sim -> (
          let* ga = graph t g1 in
          let* gb = graph t g2 in
          let* tc2, _ = closure t ~name:g2 ~hops in
          let* mat, _ = similarity t ~g1 ~g2 ~sim in
          match Phom.Instance.make ~tc2 ~g1:ga ~g2:gb ~mat ~xi () with
          | instance ->
              ignore (candidates t ~instance ~g1 ~g2 ~sim ~hops);
              Ok ()
          | exception Invalid_argument m -> Error m))
  | K_count (g1, g2, sim_s, hops, xi) -> (
      match sim_of_string sim_s with
      | None -> Error (sim_s ^ ": unknown similarity kind")
      | Some sim -> (
          let* ga = graph t g1 in
          let* gb = graph t g2 in
          let* tc2, _ = closure t ~name:g2 ~hops in
          let* mat, _ = similarity t ~g1 ~g2 ~sim in
          match Phom.Instance.make ~tc2 ~g1:ga ~g2:gb ~mat ~xi () with
          | instance ->
              ignore (candidates t ~instance ~g1 ~g2 ~sim ~hops);
              ignore (count t ~instance ~g1 ~g2 ~sim ~hops);
              Ok ()
          | exception Invalid_argument m -> Error m))

let apply_event t = function
  | Journal.Load_graph { name; path; crc } -> (
      match load_graph t ~name ~path with
      | Error e -> Error e
      | Ok g ->
          if graph_crc g = crc then Ok ()
          else begin
            (* the file drifted since the journaled load: a replay must
               not serve different bytes under the same name *)
            ignore (unload t name);
            Error
              (Printf.sprintf "%s: %s changed since it was journaled" name
                 path)
          end)
  | Journal.Load_mat { name; path; crc } -> (
      match load_mat t ~name ~path with
      | Error e -> Error e
      | Ok m ->
          if mat_crc m = crc then Ok ()
          else begin
            ignore (unload t name);
            Error
              (Printf.sprintf "%s: %s changed since it was journaled" name
                 path)
          end)
  | Journal.Unload name -> (
      match unload t name with Ok _ -> Ok () | Error e -> Error e)
  | Journal.Artifact token -> (
      match key_of_token token with
      | None -> Error (token ^ ": unknown artifact key")
      | Some key -> warm t key)
