module Obs = Phom_obs.Obs
module D = Phom_graph.Digraph
module BM = Phom_graph.Bitmatrix
module Budget = Phom_graph.Budget
module Simmat = Phom_sim.Simmat
module Shingle = Phom_sim.Shingle

type sim = Equality | Shingles | Named of string

let sim_to_string = function
  | Equality -> "equality"
  | Shingles -> "shingles"
  | Named n -> "mat:" ^ n

type provenance = Hit | Miss | Catalog

let provenance_name = function Hit -> "hit" | Miss -> "miss" | Catalog -> "catalog"

(* cache keys carry catalog names, not structures: unload invalidates by
   name, and equal names mean equal structures while loaded (loading over
   an existing name is refused) *)
type key =
  | K_closure of string * int option  (** graph, hops *)
  | K_matrix of string * string * string  (** g1, g2, sim_to_string *)
  | K_cands of string * string * string * int option * float
      (** g1, g2, sim, hops, ξ *)

type artifact =
  | A_closure of BM.t
  | A_matrix of Simmat.t
  | A_cands of int array array

let artifact_weight = function
  | A_closure m -> BM.byte_size m
  | A_matrix m -> Simmat.byte_size m
  | A_cands rows ->
      let words = Array.fold_left (fun acc r -> acc + 1 + Array.length r) 1 rows in
      words * (Sys.word_size / 8)

type entry = Graph of D.t | Mat of Simmat.t

type t = {
  entries : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  cache : (key, artifact) Lru.t;
  max_graph_bytes : int;
  max_mat_bytes : int;
}

let default_max_bytes = 64 * 1024 * 1024

(* the cache metrics are probes over the Lru's own atomic counters — the
   registry reads the very cells reply provenance increments, so the two
   views cannot drift (a fresh catalog re-points the probes at itself) *)
let register_metrics t =
  let fi f = fun () -> float_of_int (f ()) in
  Obs.register_probe "phom_cache_hits_total" (fi (fun () -> Lru.hits t.cache));
  Obs.register_probe "phom_cache_misses_total"
    (fi (fun () -> Lru.misses t.cache));
  Obs.register_probe "phom_cache_evictions_total"
    (fi (fun () -> Lru.evictions t.cache));
  Obs.register_probe "phom_cache_entries"
    (fi (fun () -> (Lru.stats t.cache).entries));
  Obs.register_probe "phom_cache_bytes"
    (fi (fun () -> (Lru.stats t.cache).bytes));
  Obs.register_probe "phom_cache_capacity_bytes"
    (fi (fun () -> (Lru.stats t.cache).capacity_bytes));
  let count pred () =
    Mutex.lock t.lock;
    let n = Hashtbl.fold (fun _ e acc -> if pred e then acc + 1 else acc) t.entries 0 in
    Mutex.unlock t.lock;
    float_of_int n
  in
  Obs.register_probe "phom_catalog_graphs"
    (count (function Graph _ -> true | Mat _ -> false));
  Obs.register_probe "phom_catalog_mats"
    (count (function Mat _ -> true | Graph _ -> false))

let create ?(max_graph_bytes = default_max_bytes)
    ?(max_mat_bytes = default_max_bytes)
    ?(cache_bytes = 256 * 1024 * 1024) () =
  let t =
    {
      entries = Hashtbl.create 16;
      lock = Mutex.create ();
      cache = Lru.create ~capacity_bytes:cache_bytes ~weight:artifact_weight ();
      max_graph_bytes;
      max_mat_bytes;
    }
  in
  register_metrics t;
  t

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let valid_name name =
  let ok_char = function
    | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '.' | '-' -> true
    | _ -> false
  in
  let n = String.length name in
  n >= 1 && n <= 64 && String.for_all ok_char name

let register t ~name ~what make =
  if not (valid_name name) then
    Error
      (Printf.sprintf
         "invalid name %S (1-64 chars from A-Z a-z 0-9 _ . -)" name)
  else
    match make () with
    | Error _ as e -> e
    | Ok v ->
        locked t (fun () ->
            if Hashtbl.mem t.entries name then
              Error
                (Printf.sprintf "name %s is already loaded (unload it first)"
                   name)
            else begin
              Hashtbl.replace t.entries name (what v);
              Ok v
            end)

let load_graph t ~name ~path =
  register t ~name
    ~what:(fun g -> Graph g)
    (fun () -> Phom_graph.Graph_io.load ~max_bytes:t.max_graph_bytes path)

let load_mat t ~name ~path =
  register t ~name
    ~what:(fun m -> Mat m)
    (fun () -> Simmat.load ~max_bytes:t.max_mat_bytes path)

let derived_from name = function
  | K_closure (g, _) -> g = name
  | K_matrix (a, b, s) | K_cands (a, b, s, _, _) ->
      a = name || b = name || s = "mat:" ^ name

let unload t name =
  let removed =
    locked t (fun () ->
        if Hashtbl.mem t.entries name then begin
          Hashtbl.remove t.entries name;
          true
        end
        else false)
  in
  if removed then Ok (Lru.remove_if t.cache (derived_from name))
  else Error (Printf.sprintf "name %s is not loaded" name)

let list t =
  locked t (fun () ->
      let gs = ref [] and ms = ref [] in
      Hashtbl.iter
        (fun name -> function
          | Graph g -> gs := (name, g) :: !gs
          | Mat m -> ms := (name, m) :: !ms)
        t.entries;
      let by_name (a, _) (b, _) = String.compare a b in
      (List.sort by_name !gs, List.sort by_name !ms))

let graph t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | Some (Graph g) -> Ok g
      | Some (Mat _) ->
          Error (Printf.sprintf "%s is a similarity matrix, not a graph" name)
      | None -> Error (Printf.sprintf "unknown graph %s (load it first)" name))

let mat t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | Some (Mat m) -> Ok m
      | Some (Graph _) ->
          Error (Printf.sprintf "%s is a graph, not a similarity matrix" name)
      | None ->
          Error (Printf.sprintf "unknown matrix %s (load it first)" name))

(* only artifacts computed to their natural end are cached: a budget that
   tripped mid-computation leaves a sound under-approximation for the
   current query, which must not poison later ones *)
let cacheable budget =
  match budget with None -> true | Some b -> not (Budget.exhausted b)

let closure ?budget t ~name ~hops =
  match graph t name with
  | Error _ as e -> e
  | Ok g -> (
      let key = K_closure (name, hops) in
      match Lru.find t.cache key with
      | Some (A_closure m) -> Ok (m, Hit)
      | Some _ | None ->
          let before = Option.fold ~none:0 ~some:Budget.steps_used budget in
          let m =
            Obs.span "closure" (fun () ->
                Phom_graph.Bounded_closure.relation ?budget ?hops g)
          in
          Obs.span_steps "closure"
            (Option.fold ~none:0 ~some:Budget.steps_used budget - before);
          if cacheable budget then Lru.put t.cache key (A_closure m);
          Ok (m, Miss))

let similarity t ~g1 ~g2 ~sim =
  match (graph t g1, graph t g2) with
  | (Error _ as e), _ | _, (Error _ as e) -> e
  | Ok ga, Ok gb -> (
      match sim with
      | Named n -> (
          match mat t n with
          | Error _ as e -> e
          | Ok m ->
              if Simmat.n1 m <> D.n ga || Simmat.n2 m <> D.n gb then
                Error
                  (Printf.sprintf
                     "matrix %s is %dx%d but graphs %s/%s are %dx%d" n
                     (Simmat.n1 m) (Simmat.n2 m) g1 g2 (D.n ga) (D.n gb))
              else Ok (m, Catalog))
      | Equality | Shingles -> (
          let key = K_matrix (g1, g2, sim_to_string sim) in
          match Lru.find t.cache key with
          | Some (A_matrix m) -> Ok (m, Hit)
          | Some _ | None ->
              let m =
                Obs.span "similarity" (fun () ->
                    match sim with
                    | Equality -> Simmat.of_label_equality ga gb
                    | Shingles -> Shingle.matrix (D.labels ga) (D.labels gb)
                    | Named _ -> assert false)
              in
              Lru.put t.cache key (A_matrix m);
              Ok (m, Miss)))

let candidates ?budget t ~instance ~g1 ~g2 ~sim ~hops =
  let key =
    K_cands (g1, g2, sim_to_string sim, hops, instance.Phom.Instance.xi)
  in
  match Lru.find t.cache key with
  | Some (A_cands c) ->
      Phom.Instance.preset_candidates instance c;
      Hit
  | Some _ | None ->
      let c = Phom.Instance.candidates instance in
      if cacheable budget then Lru.put t.cache key (A_cands c);
      Miss

let cache_stats t = Lru.stats t.cache

let clear_cache t = Lru.clear t.cache
