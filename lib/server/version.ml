(* The one version constant: the phom CLI (--version), the phomd daemon
   (--version and its startup banner) and the wire protocol's `version`
   command all read it from here, so the three can never disagree. *)
let string = "1.7.0"

(* line-protocol revision; bump on any incompatible grammar change
   (2: `stats` became a multi-line Prometheus reply, `ok stats <n>` + n lines;
    3: `ping`/`health` verbs, durability counters in `health` and `stats`;
    4: `count` verb via the tree-decomposition DP, `--algorithm dp`;
    5: `addedge`/`deledge` single-edge edits with `--crc` idempotency) *)
let protocol = 5
