(* Durable, checksummed state snapshots for phomd.

   A snapshot is a single file holding the whole warm state of a daemon
   (catalog graphs and matrices, cached artifacts) as a sequence of
   records, each independently CRC-32-checksummed so a reader can verify
   every entry before trusting a byte of it. Writes go to a sibling .tmp
   file, are fsynced, and land via rename(2), so a crash at any instant
   leaves either the previous snapshot or the new one — never a blend.

   The reader is the paranoid half: a record whose checksum fails, whose
   payload is truncated, or whose header does not parse is quarantined
   (counted, skipped, never returned), and structural damage past which the
   scan cannot resync stops the scan with the remainder quarantined. The
   caller decides what quarantine means; this module only promises that no
   corrupt payload ever reaches it. *)

(* ---- CRC-32 (IEEE 802.3, the zlib polynomial) ---- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i =
        Int32.to_int
          (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor t.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let crc32_hex s = Printf.sprintf "%08lx" (crc32 s)

(* ---- low-level file plumbing (all writes ride the fault seam) ---- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go pos =
    if pos < n then begin
      match Faults.fwrite fd b pos (n - pos) with
      | 0 -> raise (Unix.Unix_error (Unix.EIO, "write", ""))
      | k -> go (pos + k)
    end
  in
  go 0

let fsync_dir path =
  (* the rename itself must survive a crash: sync the directory entry *)
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let unix_message = function
  | Unix.Unix_error (e, _, _) -> Unix.error_message e
  | Sys_error m | Failure m -> m
  | e -> Printexc.to_string e

let write_file_atomic ~path content =
  let tmp = path ^ ".tmp" in
  let attempt () =
    let fd =
      Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    (try
       write_all fd content;
       Unix.fsync fd;
       Unix.close fd
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    Unix.rename tmp path;
    fsync_dir path
  in
  match attempt () with
  | () -> Ok ()
  | exception e ->
      (* never leave a half-written tmp file behind *)
      (try Sys.remove tmp with Sys_error _ -> ());
      Error (Printf.sprintf "%s: %s" path (unix_message e))

let read_file path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> Ok s
          | exception (End_of_file | Sys_error _) ->
              Error (path ^ ": truncated while reading"))

(* ---- the snapshot container ---- *)

type record = { kind : string; name : string; payload : string }

let header = "phomd-snapshot 1"

let token_ok s =
  s <> ""
  && String.for_all (fun c -> c > ' ' && c <> '\x7f' && c <> '\n') s

let render records =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      if not (token_ok r.kind && token_ok r.name) then
        invalid_arg
          (Printf.sprintf "Persist.write_snapshot: bad record header %S %S"
             r.kind r.name);
      Buffer.add_string buf
        (Printf.sprintf "record %s %s %d %s\n" r.kind r.name
           (String.length r.payload)
           (crc32_hex r.payload));
      Buffer.add_string buf r.payload;
      Buffer.add_char buf '\n')
    records;
  Buffer.add_string buf (Printf.sprintf "end %d\n" (List.length records));
  Buffer.contents buf

let write_snapshot ~path records =
  let content = render records in
  match write_file_atomic ~path content with
  | Ok () -> Ok (String.length content)
  | Error _ as e -> e

(* scan one line starting at [pos]; None when the file ends mid-line
   (a torn tail has no newline) *)
let take_line s pos =
  if pos >= String.length s then None
  else
    match String.index_from_opt s pos '\n' with
    | None -> None
    | Some i -> Some (String.sub s pos (i - pos), i + 1)

let read_snapshot ~path =
  match read_file path with
  | Error m -> Error m
  | Ok content -> (
      match take_line content 0 with
      | Some (h, pos) when h = header ->
          let records = ref [] and quarantined = ref 0 in
          let rec scan pos =
            match take_line content pos with
            | None ->
                (* no end trailer: the tail was torn off *)
                incr quarantined
            | Some (line, pos') -> (
                match String.split_on_char ' ' line with
                | [ "end"; n ] ->
                    (* trailer count guards against silently dropped whole
                       records (each bad record already counted itself) *)
                    let seen = List.length !records + !quarantined in
                    (match int_of_string_opt n with
                    | Some k when k = seen -> ()
                    | _ -> incr quarantined)
                | [ "record"; kind; name; len; crc ] -> (
                    match int_of_string_opt len with
                    | Some len
                      when len >= 0 && pos' + len + 1 <= String.length content
                      ->
                        let payload = String.sub content pos' len in
                        let next = pos' + len + 1 in
                        if
                          crc32_hex payload = crc
                          && content.[pos' + len] = '\n'
                        then begin
                          records := { kind; name; payload } :: !records;
                          scan next
                        end
                        else begin
                          (* checksum or separator mismatch: quarantine the
                             record, resync at its declared end *)
                          incr quarantined;
                          scan next
                        end
                    | _ ->
                        (* unusable length: cannot resync past this point *)
                        incr quarantined)
                | _ -> incr quarantined)
          in
          scan pos;
          Ok (List.rev !records, !quarantined)
      | Some _ | None -> Error (path ^ ": not a phomd snapshot (bad header)"))
