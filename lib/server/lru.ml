type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;
  capacity_bytes : int;
}

type 'v entry = { value : 'v; weight : int; mutable last_use : int }

type ('k, 'v) t = {
  capacity : int;
  weight : 'v -> int;
  table : ('k, 'v entry) Hashtbl.t;
  lock : Mutex.t;
  mutable clock : int;  (** monotone use counter; orders recency *)
  mutable bytes : int;
  (* atomics, not lock-guarded ints: the metrics registry samples these
     through lock-free probes while workers mutate them under the lock,
     so both views read the very same cells *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
}

let create ~capacity_bytes ~weight () =
  if capacity_bytes < 0 then invalid_arg "Lru.create: negative capacity";
  {
    capacity = capacity_bytes;
    weight;
    table = Hashtbl.create 16;
    lock = Mutex.create ();
    clock = 0;
    bytes = 0;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some e ->
          e.last_use <- tick t;
          ignore (Atomic.fetch_and_add t.hits 1);
          Some e.value
      | None ->
          ignore (Atomic.fetch_and_add t.misses 1);
          None)

(* caller holds the lock *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, oldest) when oldest.last_use <= e.last_use -> ()
      | _ -> victim := Some (k, e))
    t.table;
  match !victim with
  | None -> ()
  | Some (k, e) ->
      Hashtbl.remove t.table k;
      t.bytes <- t.bytes - e.weight;
      ignore (Atomic.fetch_and_add t.evictions 1)

(* caller holds the lock *)
let put_locked t k v =
  let w = t.weight v in
  if w < 0 then invalid_arg "Lru: negative weight";
  (match Hashtbl.find_opt t.table k with
  | Some old ->
      Hashtbl.remove t.table k;
      t.bytes <- t.bytes - old.weight
  | None -> ());
  if w <= t.capacity then begin
    Hashtbl.replace t.table k { value = v; weight = w; last_use = tick t };
    t.bytes <- t.bytes + w;
    while t.bytes > t.capacity do
      evict_lru t
    done
  end

let put t k v = locked t (fun () -> put_locked t k v)

let find_or_add t k f =
  match find t k with
  | Some v -> (v, true)
  | None -> (
      let v = f () in
      (* re-check under the lock: a racing domain may have filled the slot
         while we computed; its resident value wins *)
      locked t (fun () ->
          match Hashtbl.find_opt t.table k with
          | Some e ->
              e.last_use <- tick t;
              (e.value, false)
          | None ->
              put_locked t k v;
              (v, false)))

let remove_if t pred =
  locked t (fun () ->
      let doomed =
        Hashtbl.fold (fun k e acc -> if pred k then (k, e) :: acc else acc) t.table []
      in
      List.iter
        (fun (k, (e : _ entry)) ->
          Hashtbl.remove t.table k;
          t.bytes <- t.bytes - e.weight)
        doomed;
      List.length doomed)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.bytes <- 0)

let bindings t =
  locked t (fun () ->
      let all = Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.table [] in
      let by_recency (_, a) (_, b) = compare a.last_use b.last_use in
      List.map (fun (k, e) -> (k, e.value)) (List.sort by_recency all))

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let evictions t = Atomic.get t.evictions

let stats t =
  locked t (fun () ->
      {
        hits = Atomic.get t.hits;
        misses = Atomic.get t.misses;
        evictions = Atomic.get t.evictions;
        entries = Hashtbl.length t.table;
        bytes = t.bytes;
        capacity_bytes = t.capacity;
      })
