(** The phomd matching service: a resident process owning warm state (a
    {!Catalog} with its artifact cache) and a request loop multiplexing
    bounded queries over a shared {!Phom_parallel.Pool}.

    Each [solve] request becomes one pool job ({!Phom_parallel.Pool.submit})
    executed under a per-request {!Phom_graph.Budget} (defaulting to the
    daemon's [default_timeout]/[default_steps]), so a slow query returns an
    anytime best-so-far answer instead of starving the loop, and the reply
    carries the PR-1 [complete]/[exhausted(...)] status plus cache-hit
    provenance for every artifact it touched. *)

type config = {
  socket_path : string option;  (** Unix-domain listening socket *)
  tcp_port : int option;
      (** optional TCP listener on 127.0.0.1; [Some 0] picks an ephemeral
          port (reported through [ready]) *)
  jobs : int;  (** pool domains; 1 = fully sequential *)
  cache_bytes : int;  (** artifact-cache capacity *)
  max_graph_bytes : int;
  max_mat_bytes : int;
  default_timeout : float option;
      (** per-request wall-clock budget when the request names none *)
  default_steps : int option;
}

val default_config : config
(** No listeners, [jobs = 1], 256 MiB cache, 64 MiB file caps, 5 s default
    timeout, no step cap. *)

(** {1 Request execution (socket-free)}

    Exposed so tests and in-process embeddings can drive the daemon without
    a socket. *)

type state

val make_state : ?pool:Phom_parallel.Pool.t -> config -> state
(** The pool is borrowed, not owned: {!serve} creates (and shuts down) its
    own when none is given; callers embedding a state keep control of
    theirs. *)

val requests_served : state -> int

val execute : state -> Protocol.request -> string * [ `Continue | `Quit | `Shutdown ]
(** Run one request against the warm state and return the one-line reply
    (without the trailing newline) plus what the connection should do next.
    Never raises on user-level errors — they become [error ...] replies. *)

(** {1 The socket loop} *)

val serve : ?ready:(string list -> unit) -> config -> unit
(** Listen on the configured sockets and answer requests until a
    [shutdown] request arrives; then close every listener, unlink the Unix
    socket path, and return. [ready] is called once with a human-readable
    description of each bound listener (e.g. ["phomd.sock"],
    ["127.0.0.1:4271"]) after listening has started — the daemon binary
    prints these as its startup banner, and tests use the callback to learn
    an ephemeral TCP port.

    Connections are accepted one at a time and served until the peer closes
    (or sends [quit]); each request is answered with exactly one line.

    @raise Invalid_argument if the config names no listener or
    [jobs < 1]. *)
