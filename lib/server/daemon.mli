(** The phomd matching service: a resident process owning warm state (a
    {!Catalog} with its artifact cache) and a select-multiplexed request
    loop serving many connections over a shared {!Phom_parallel.Pool}.

    Each [solve] request becomes one pool job ({!Phom_parallel.Pool.submit})
    executed under a per-request {!Phom_graph.Budget} (defaulting to the
    daemon's [default_timeout]/[default_steps]), so a slow query returns an
    anytime best-so-far answer instead of starving the loop, and the reply
    carries the PR-1 [complete]/[exhausted(...)] status plus cache-hit
    provenance for every artifact it touched.

    The loop never blocks on any single peer: sockets are non-blocking,
    request lines are read through a bounded reader (an over-long line gets
    [error line-too-long] and a close), stalled peers are evicted at their
    idle deadline, and admission control sheds excess connections and
    excess pending solves with [error busy retry-after=<s>]. SIGTERM and
    SIGINT start a graceful drain: accepting stops, in-flight solves are
    budget-tripped (their anytime replies still flush), and the socket path
    is unlinked before {!serve} returns. *)

type config = {
  socket_path : string option;  (** Unix-domain listening socket *)
  tcp_port : int option;
      (** optional TCP listener on 127.0.0.1; [Some 0] picks an ephemeral
          port (reported through [ready]) *)
  listen : string list;
      (** extra TCP listeners as [HOST:PORT] specs ([""] or ["*"] as host =
          all interfaces; port [0] = ephemeral, reported through [ready]).
          All listeners — Unix, loopback TCP and these — feed one event
          loop over one catalog; this is the fleet-facing transport the
          replica router dials. *)
  jobs : int;  (** pool domains; 1 = fully sequential *)
  cache_bytes : int;  (** artifact-cache capacity *)
  max_graph_bytes : int;
  max_mat_bytes : int;
  default_timeout : float option;
      (** per-request wall-clock budget when the request names none *)
  default_steps : int option;
  max_conns : int;
      (** admission control: connections beyond this are answered
          [error busy retry-after=<s>] and closed *)
  max_pending : int;
      (** solves in flight beyond this are shed with the same busy reply
          (the connection stays open) *)
  idle_timeout : float option;
      (** a connection idle past this many seconds is evicted with
          [error idle-timeout]; [None] = never evict *)
  max_line_bytes : int;
      (** bound on one request line; longer gets [error line-too-long] *)
  retry_after : float;  (** the hint carried by busy replies, seconds *)
  drain_grace : float;
      (** how long a drain waits for in-flight replies to flush before
          cutting stragglers *)
  state_dir : string option;
      (** durability root. [Some dir] makes the daemon crash-durable: on
          start it recovers the latest checksummed {!Persist} snapshot from
          [dir], replays the {!Journal} on top (quarantining anything that
          fails a checksum or decode — counted, never served), then keeps
          journaling and snapshotting while serving. [None] (the default)
          is the historical ephemeral daemon. *)
  fsync : Journal.fsync;  (** journal durability policy *)
  snapshot_interval : float;  (** seconds between periodic snapshots *)
}

val default_config : config
(** No listeners, [jobs = 1], 256 MiB cache, 64 MiB file caps, 5 s default
    timeout, no step cap; 64 connections, 32 pending solves, 300 s idle
    timeout, 8 KiB line bound, 1 s retry hint, 5 s drain grace; no state
    dir, [Interval] fsync, 60 s snapshot interval. *)

(** {1 Request execution (socket-free)}

    Exposed so tests and in-process embeddings can drive the daemon without
    a socket. *)

type state

val make_state : ?pool:Phom_parallel.Pool.t -> config -> state
(** The pool is borrowed, not owned: {!serve} creates (and shuts down) its
    own when none is given; callers embedding a state keep control of
    theirs.

    When [config.state_dir] is set, this is also the recovery point: the
    latest snapshot is restored (every record checksum-verified; failures
    quarantined), the journal replayed on top, and the journal hooked up
    for appending — so a state built over a previous run's dir starts
    warm. A fresh post-recovery snapshot is written only when recovery
    changed anything (journal events replayed, records quarantined, or no
    snapshot yet); a clean boot is read-only.

    @raise Sys_error if the state dir cannot be created or written —
    failing fast beats a daemon that silently persists nothing. *)

val close_state : state -> unit
(** Final snapshot plus journal close for an embedded state (no-op without
    a state dir). {!serve} calls this itself at the end of its drain. *)

val requests_served : state -> int

val execute : state -> Protocol.request -> string * [ `Continue | `Quit | `Shutdown ]
(** Run one request against the warm state and return the one-line reply
    (without the trailing newline) plus what the connection should do next.
    Solves block until done (tests and the bench use this path). Never
    raises: user-level errors ([Invalid_argument], [Failure], [Sys_error])
    keep their message; any other exception becomes an opaque
    [error internal] reply. Every reply passes {!Protocol.sanitize}. *)

(** {1 The socket loop} *)

val listen_unix : string -> Unix.file_descr * string
(** Bind and listen on a Unix-domain socket path with owner-only (0600)
    permissions, independent of the process umask. An existing socket at
    the path is connect-probed first: if a live daemon answers [ping]
    there, binding is refused ([Invalid_argument]); a socket nobody
    answers on — the leftover of a [kill -9] — is removed and replaced.
    Any other existing file is refused ([Invalid_argument]). If binding or
    listening fails partway, the descriptor is closed and the path
    unlinked before the exception propagates. Exposed for tests. *)

val serve : ?ready:(string list -> unit) -> config -> unit
(** Listen on the configured sockets and answer requests until a
    [shutdown] request or a SIGTERM/SIGINT arrives; then drain — stop
    accepting, budget-trip in-flight solves, flush their replies — and
    close every listener, unlink the Unix socket path, and return. [ready]
    is called once with a human-readable description of each bound
    listener (e.g. ["phomd.sock"], ["127.0.0.1:4271"]) after listening has
    started — the daemon binary prints these as its startup banner, and
    tests use the callback to learn an ephemeral TCP port.

    Connections are multiplexed: a peer holding its line open, trickling
    bytes, or never reading its reply delays nobody else. Each parsed
    request is answered with exactly one line.

    @raise Invalid_argument if the config names no listener, [jobs < 1],
    [max_conns < 1], [max_pending < 1] or [max_line_bytes < 1]. *)
