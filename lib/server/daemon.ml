module D = Phom_graph.Digraph
module Budget = Phom_graph.Budget
module Simmat = Phom_sim.Simmat
module Api = Phom.Api
module Pool = Phom_parallel.Pool
module Obs = Phom_obs.Obs

type config = {
  socket_path : string option;
  tcp_port : int option;
  listen : string list;
      (** extra TCP listeners as [HOST:PORT] specs (port [0] = ephemeral);
          all listeners share one event loop and one catalog *)
  jobs : int;
  cache_bytes : int;
  max_graph_bytes : int;
  max_mat_bytes : int;
  default_timeout : float option;
  default_steps : int option;
  max_conns : int;
  max_pending : int;
  idle_timeout : float option;
  max_line_bytes : int;
  retry_after : float;
  drain_grace : float;
  state_dir : string option;
      (** durability root: snapshots and the recovery journal live here *)
  fsync : Journal.fsync;
  snapshot_interval : float;  (** seconds between periodic snapshots *)
}

let default_config =
  {
    socket_path = None;
    tcp_port = None;
    listen = [];
    jobs = 1;
    cache_bytes = 256 * 1024 * 1024;
    max_graph_bytes = 64 * 1024 * 1024;
    max_mat_bytes = 64 * 1024 * 1024;
    default_timeout = Some 5.;
    default_steps = None;
    max_conns = 64;
    max_pending = 32;
    idle_timeout = Some 300.;
    max_line_bytes = 8192;
    retry_after = 1.;
    drain_grace = 5.;
    state_dir = None;
    fsync = Journal.Interval;
    snapshot_interval = 60.;
  }

(* the durability side-car: where the snapshots and journal live, plus the
   recovery counters health and the metrics registry report *)
type persist = {
  snapshot_path : string;
  mutable journal : Journal.t option;  (** None if the open failed *)
  mutable snapshots : int;
  mutable snapshot_seconds : float;  (** duration of the last snapshot *)
  mutable snapshot_bytes : int;  (** size of the last snapshot *)
  mutable persist_errors : int;  (** failed snapshot/journal operations *)
  mutable recovered_graphs : int;
  mutable recovered_mats : int;
  mutable recovered_artifacts : int;
  mutable journal_replayed : int;  (** events replayed on top of a snapshot *)
  mutable quarantined : int;  (** corrupt records/lines skipped, never served *)
  mutable last_snapshot : float;
}

type state = {
  config : config;
  catalog : Catalog.t;
  pool : Pool.t option;  (** borrowed; None = sequential daemon *)
  persist : persist option;  (** None = ephemeral daemon (no --state-dir) *)
  mutable draining : bool;  (** the loop's drain, surfaced through health *)
  mutable requests : int;
  mutable busy_rejected : int;  (** admission-control sheds *)
  mutable idle_evicted : int;  (** stalled peers cut by the idle deadline *)
  mutable conns_accepted : int;
  mutable line_too_long : int;  (** bounded-reader rejections *)
  mutable drain_seconds : float;  (** wall time of the last graceful drain *)
}

(* the daemon metrics are probes over the state's own mutable fields: the
   loop keeps counting in plain fields (single-writer, the loop's domain)
   and the registry samples them at dump time; a fresh state re-points the
   probes at itself, so tests that build many daemons read the live one *)
let register_metrics st =
  let fi f = fun () -> float_of_int (f ()) in
  Obs.register_probe "phom_daemon_requests_total" (fi (fun () -> st.requests));
  Obs.register_probe "phom_daemon_connections_shed_total"
    (fi (fun () -> st.busy_rejected));
  Obs.register_probe "phom_daemon_connections_evicted_total"
    (fi (fun () -> st.idle_evicted));
  Obs.register_probe "phom_daemon_connections_accepted_total"
    (fi (fun () -> st.conns_accepted));
  Obs.register_probe "phom_daemon_line_too_long_total"
    (fi (fun () -> st.line_too_long));
  Obs.register_probe "phom_daemon_drain_seconds" (fun () -> st.drain_seconds);
  Obs.register_probe
    ~labels:[ ("version", Version.string) ]
    "phom_build_info"
    (fun () -> 1.);
  match st.persist with
  | None -> ()
  | Some p ->
      let journal_errors () =
        match p.journal with Some j -> Journal.errors j | None -> 0
      in
      let journal_events () =
        match p.journal with Some j -> Journal.appended j | None -> 0
      in
      Obs.register_probe "phom_persist_snapshot_total"
        (fi (fun () -> p.snapshots));
      Obs.register_probe "phom_persist_snapshot_seconds" (fun () ->
          p.snapshot_seconds);
      Obs.register_probe "phom_persist_snapshot_bytes"
        (fi (fun () -> p.snapshot_bytes));
      Obs.register_probe "phom_persist_errors_total"
        (fi (fun () -> p.persist_errors + journal_errors ()));
      Obs.register_probe "phom_journal_events_total" (fi journal_events);
      Obs.register_probe "phom_journal_replayed_total"
        (fi (fun () -> p.journal_replayed));
      Obs.register_probe "phom_recovery_quarantined_total"
        (fi (fun () -> p.quarantined))

(* ---- durability: recovery at start, snapshots while serving ---- *)

let snapshot_file = "state.snap"
let journal_file = "state.journal"

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

(* write a fresh snapshot of the whole catalog and rotate the journal it
   supersedes; a failed snapshot degrades health instead of raising *)
let snapshot_now st =
  match st.persist with
  | None -> ()
  | Some p ->
      let t0 = Unix.gettimeofday () in
      (match
         Persist.write_snapshot ~path:p.snapshot_path
           (Catalog.export st.catalog)
       with
      | Ok bytes ->
          p.snapshots <- p.snapshots + 1;
          p.snapshot_seconds <- Unix.gettimeofday () -. t0;
          p.snapshot_bytes <- bytes;
          Option.iter Journal.rotate p.journal
      | Error _ -> p.persist_errors <- p.persist_errors + 1);
      p.last_snapshot <- Unix.gettimeofday ()

(* the loop's periodic durability work: sync the journal (under the
   interval policy) and take a snapshot when the interval has elapsed *)
let persist_tick st =
  match st.persist with
  | None -> ()
  | Some p ->
      Option.iter Journal.flush p.journal;
      if
        Unix.gettimeofday () -. p.last_snapshot
        >= st.config.snapshot_interval
      then snapshot_now st

(* recovery: restore the latest snapshot (quarantining anything that fails
   its checksum or decode), replay the journal on top, then open the
   journal for appending. Raises [Sys_error] if the state dir is unusable —
   a daemon that looks healthy but silently persists nothing is worse than
   one that refuses to start. *)
let recover catalog ~dir ~fsync =
  (match mkdir_p dir with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
      raise
        (Sys_error
           (dir ^ ": cannot create state directory: " ^ Unix.error_message e)));
  let probe = Filename.concat dir ".writable" in
  (* a plain write, not write_file_atomic: the probe checks writability,
     durability fsyncs would only slow every restart down *)
  (match
     let oc = open_out probe in
     output_string oc "phomd\n";
     close_out oc;
     Sys.remove probe
   with
  | () -> ()
  | exception Sys_error e ->
      raise (Sys_error (dir ^ ": state directory is not writable: " ^ e)));
  let p =
    {
      snapshot_path = Filename.concat dir snapshot_file;
      journal = None;
      snapshots = 0;
      snapshot_seconds = 0.;
      snapshot_bytes = 0;
      persist_errors = 0;
      recovered_graphs = 0;
      recovered_mats = 0;
      recovered_artifacts = 0;
      journal_replayed = 0;
      quarantined = 0;
      last_snapshot = Unix.gettimeofday ();
    }
  in
  if Sys.file_exists p.snapshot_path then begin
    match Persist.read_snapshot ~path:p.snapshot_path with
    | Ok (records, quarantined) ->
        p.quarantined <- p.quarantined + quarantined;
        List.iter
          (fun (r : Persist.record) ->
            match Catalog.restore_record catalog r with
            | Ok () -> (
                match r.kind with
                | "graph" -> p.recovered_graphs <- p.recovered_graphs + 1
                | "mat" -> p.recovered_mats <- p.recovered_mats + 1
                | _ -> p.recovered_artifacts <- p.recovered_artifacts + 1)
            | Error _ -> p.quarantined <- p.quarantined + 1)
          records
    | Error _ ->
        (* unreadable or not a snapshot at all: one quarantined snapshot *)
        p.quarantined <- p.quarantined + 1
  end;
  let journal_path = Filename.concat dir journal_file in
  if Sys.file_exists journal_path then begin
    match Journal.replay ~path:journal_path with
    | Ok (events, quarantined) ->
        p.quarantined <- p.quarantined + quarantined;
        List.iter
          (fun e ->
            match Catalog.apply_event catalog e with
            | Ok () -> p.journal_replayed <- p.journal_replayed + 1
            | Error _ -> p.quarantined <- p.quarantined + 1)
          events
    | Error _ -> p.quarantined <- p.quarantined + 1
  end;
  (match Journal.open_append ~path:journal_path ~fsync with
  | Ok j -> p.journal <- Some j
  | Error _ -> p.persist_errors <- p.persist_errors + 1);
  p

let make_state ?pool config =
  let catalog =
    Catalog.create ~max_graph_bytes:config.max_graph_bytes
      ~max_mat_bytes:config.max_mat_bytes ~cache_bytes:config.cache_bytes ()
  in
  let persist =
    Option.map
      (fun dir -> recover catalog ~dir ~fsync:config.fsync)
      config.state_dir
  in
  let st =
    {
      config;
      catalog;
      pool;
      persist;
      draining = false;
      requests = 0;
      busy_rejected = 0;
      idle_evicted = 0;
      conns_accepted = 0;
      line_too_long = 0;
      drain_seconds = 0.;
    }
  in
  (* the journal hook goes live only after recovery, so replay does not
     journal itself; the fresh snapshot then supersedes (and rotates away)
     everything the old journal recorded. A clean boot — snapshot present,
     nothing replayed, nothing quarantined — skips the rewrite: the on-disk
     snapshot is already exact, and rewriting it would burn the restart
     latency recovery exists to save *)
  (match persist with
  | Some { journal = Some j; _ } ->
      Catalog.set_on_event catalog (Some (fun e -> Journal.append j e))
  | _ -> ());
  (match persist with
  | None -> ()
  | Some p ->
      if
        p.journal_replayed > 0 || p.quarantined > 0
        || not (Sys.file_exists p.snapshot_path)
      then snapshot_now st);
  register_metrics st;
  st

(* final snapshot + journal close; the socket loop calls this as the last
   act of a drain, embedders (tests, the bench) call it directly *)
let close_state st =
  match st.persist with
  | None -> ()
  | Some p ->
      snapshot_now st;
      Catalog.set_on_event st.catalog None;
      Option.iter Journal.close p.journal;
      p.journal <- None

let requests_served st = st.requests

(* ---- replies ---- *)

let ok fmt = Printf.ksprintf (fun s -> "ok " ^ s) fmt
let error fmt = Printf.ksprintf (fun s -> "error " ^ s) fmt

let busy_reply st = error "busy retry-after=%g" st.config.retry_after

let status_token = function
  | Budget.Complete -> "complete"
  | Budget.Exhausted reason ->
      Printf.sprintf "exhausted(%s)" (Budget.string_of_reason reason)

let list_reply st =
  let graphs, mats = Catalog.list st.catalog in
  let g_item (name, g) =
    Printf.sprintf "%s:%dn/%de" name (D.n g) (D.nb_edges g)
  in
  let m_item (name, m) =
    Printf.sprintf "%s:%dx%d" name (Simmat.n1 m) (Simmat.n2 m)
  in
  ok "graphs=[%s] mats=[%s]"
    (String.concat "," (List.map g_item graphs))
    (String.concat "," (List.map m_item mats))

(* Prometheus text over the wire: a header line carrying the line count, so
   single-line clients know how much more to read, then the registry dump.
   The daemon-family values come from probes over [st]'s own fields and the
   cache family from the Lru's own atomics, so this reply and per-reply
   provenance can never disagree. [_st] keeps the probes' target alive. *)
let stats_reply _st =
  let lines = Obs.dump_lines () in
  String.concat "\n" (ok "stats %d" (List.length lines) :: lines)

(* readiness in one line of k=v counters: [ready] serves normally,
   [degraded] serves but has quarantined state or persistence failures
   behind it, [draining] answers but is on its way down *)
let health_reply st =
  let get f = match st.persist with None -> 0 | Some p -> f p in
  let journal_errors =
    match st.persist with
    | Some { journal = Some j; _ } -> Journal.errors j
    | _ -> 0
  in
  let quarantined = get (fun p -> p.quarantined) in
  let persist_errors = get (fun p -> p.persist_errors) + journal_errors in
  let state =
    if st.draining then "draining"
    else if quarantined > 0 || persist_errors > 0 then "degraded"
    else "ready"
  in
  ok
    "health state=%s persist=%b snapshots=%d snapshot_bytes=%d \
     journal_events=%d journal_replayed=%d recovered_graphs=%d \
     recovered_mats=%d recovered_artifacts=%d quarantined=%d \
     persist_errors=%d requests=%d"
    state
    (Option.is_some st.persist)
    (get (fun p -> p.snapshots))
    (get (fun p -> p.snapshot_bytes))
    (get (fun p ->
         match p.journal with Some j -> Journal.appended j | None -> 0))
    (get (fun p -> p.journal_replayed))
    (get (fun p -> p.recovered_graphs))
    (get (fun p -> p.recovered_mats))
    (get (fun p -> p.recovered_artifacts))
    quarantined persist_errors st.requests

(* ---- solve / count ---- *)

let budget_for st ~timeout ~steps =
  let timeout =
    match timeout with Some _ as t -> t | None -> st.config.default_timeout
  in
  let steps =
    match steps with Some _ as n -> n | None -> st.config.default_steps
  in
  (* the drain path cancels in-flight requests from the loop's domain while
     a pool worker is ticking the budget, so cancellation must ride the
     budget's hook over an atomic rather than Budget.cancel's plain field *)
  let flag = Atomic.make false in
  let budget =
    Budget.create ?timeout ?steps ~cancel:(fun () -> Atomic.get flag) ()
  in
  (budget, fun () -> Atomic.set flag true)

(* a named matrix is pinned alongside the graphs, so a job never mixes a
   pre-edit graph with a matrix reloaded after its unload *)
let pin_sim st (sim : Catalog.sim) =
  match sim with
  | Catalog.Named n -> Result.map Option.some (Catalog.pin_mat st.catalog n)
  | Catalog.Equality | Catalog.Shingles -> Ok None

(* the warm-start store is keyed by request shape WITHOUT content
   signatures: that is the point — after an edit the shape is unchanged,
   so the previous answer is recalled and repaired into a seed *)
let solve_key (s : Protocol.solve) =
  Printf.sprintf "%s/%s/%s/%s/%h/%s"
    (Protocol.problem_token s.Protocol.problem)
    s.Protocol.g1 s.Protocol.g2
    (Catalog.sim_to_string s.Protocol.sim)
    s.Protocol.xi
    (match s.Protocol.hops with None -> "full" | Some k -> string_of_int k)

(* split one solve request into what must run on the loop's domain (name
   resolution, snapshot pinning, budget anchoring at receipt) and the job
   proper, which a pool worker executes; [cancel] budget-trips the job
   from outside. Pinning at prepare is the edit/unload race fix: the job
   computes against the pinned snapshot and keys artifacts against its
   signatures, so a catalog mutation mid-flight makes lookups miss rather
   than serve mismatched state. *)
let prepare_solve st (s : Protocol.solve) =
  let ( let* ) r f =
    match r with Error e -> Error (error "%s" e) | Ok v -> f v
  in
  let* p1 = Catalog.pin st.catalog s.Protocol.g1 in
  let* p2 = Catalog.pin st.catalog s.Protocol.g2 in
  let* matv = pin_sim st s.Protocol.sim in
  let wkey = solve_key s in
  let warm_start = Catalog.recall_solution st.catalog ~key:wkey in
  (* the budget is anchored at request receipt: artifact building, solving
     and reply formatting all draw on the same allowance *)
  let budget, cancel =
    budget_for st ~timeout:s.Protocol.timeout ~steps:s.Protocol.steps
  in
  let pool = if s.Protocol.sequential then None else st.pool in
  let job () =
    Faults.solve_delay ();
    let ( let* ) r f = match r with Error e -> error "%s" e | Ok v -> f v in
    let g1 = p1.Catalog.pin_graph and g2 = p2.Catalog.pin_graph in
    let tc2, closure_prov =
      Catalog.closure_pinned ~budget st.catalog ~pin:p2 ~hops:s.Protocol.hops
    in
    let* mat, mat_prov =
      Catalog.similarity_pinned ?matv st.catalog ~p1 ~p2 ~sim:s.Protocol.sim
    in
    let t = Phom.Instance.make ~tc2 ~g1 ~g2 ~mat ~xi:s.Protocol.xi () in
    let cands_prov =
      Catalog.candidates_pinned ~budget ?matv st.catalog ~instance:t ~p1 ~p2
        ~sim:s.Protocol.sim ~hops:s.Protocol.hops
    in
    let r =
      Api.solve_within ~algorithm:s.Protocol.algorithm
        ~partition:s.Protocol.partition ~compress:s.Protocol.compress ~budget
        ?pool ?warm_start s.Protocol.problem t
    in
    Catalog.remember_solution st.catalog ~key:wkey ~g1:s.Protocol.g1
      ~g2:s.Protocol.g2 r.Api.mapping;
    (* fast paths can finish between poll points; a final poll makes the
       deadline (and a drain cancellation) part of the reply contract *)
    let status =
      match r.Api.status with
      | Budget.Exhausted _ as st -> st
      | Budget.Complete ->
          if Budget.poll budget then Budget.Complete else Budget.status budget
    in
    ok
      "solve problem=%s quality=%.4f mapped=%d/%d matched=%b status=%s \
       cache=closure:%s,mat:%s,cands:%s"
      (Api.problem_name r.Api.problem)
      r.Api.quality
      (Phom.Mapping.size r.Api.mapping)
      (D.n g1) (Api.matches r) (status_token status)
      (Catalog.provenance_name closure_prov)
      (Catalog.provenance_name mat_prov)
      (Catalog.provenance_name cands_prov)
  in
  Ok (cancel, job)

(* a count request: same two-phase shape as solve (resolve names and anchor
   the budget on the loop's domain, run the DP as the job), same artifact
   chain plus the count artifact itself *)
let prepare_count st (c : Protocol.count) =
  let ( let* ) r f =
    match r with Error e -> Error (error "%s" e) | Ok v -> f v
  in
  let* p1 = Catalog.pin st.catalog c.Protocol.g1 in
  let* p2 = Catalog.pin st.catalog c.Protocol.g2 in
  let* matv = pin_sim st c.Protocol.sim in
  let budget, cancel =
    budget_for st ~timeout:c.Protocol.timeout ~steps:c.Protocol.steps
  in
  let pool = if c.Protocol.sequential then None else st.pool in
  let job () =
    Faults.solve_delay ();
    let ( let* ) r f = match r with Error e -> error "%s" e | Ok v -> f v in
    let g1 = p1.Catalog.pin_graph and g2 = p2.Catalog.pin_graph in
    let tc2, closure_prov =
      Catalog.closure_pinned ~budget st.catalog ~pin:p2 ~hops:c.Protocol.hops
    in
    let* mat, mat_prov =
      Catalog.similarity_pinned ?matv st.catalog ~p1 ~p2 ~sim:c.Protocol.sim
    in
    let t = Phom.Instance.make ~tc2 ~g1 ~g2 ~mat ~xi:c.Protocol.xi () in
    let cands_prov =
      Catalog.candidates_pinned ~budget ?matv st.catalog ~instance:t ~p1 ~p2
        ~sim:c.Protocol.sim ~hops:c.Protocol.hops
    in
    let r, count_prov =
      Catalog.count_pinned ~budget ?pool ?matv st.catalog ~instance:t ~p1 ~p2
        ~sim:c.Protocol.sim ~hops:c.Protocol.hops
    in
    let status =
      match r.Phom.Dp.status with
      | Budget.Exhausted _ as st -> st
      | Budget.Complete ->
          if Budget.poll budget then Budget.Complete else Budget.status budget
    in
    ok "count value=%d exact=%b width=%d status=%s cache=closure:%s,mat:%s,cands:%s,count:%s"
      r.Phom.Dp.count r.Phom.Dp.exact r.Phom.Dp.width (status_token status)
      (Catalog.provenance_name closure_prov)
      (Catalog.provenance_name mat_prov)
      (Catalog.provenance_name cands_prov)
      (Catalog.provenance_name count_prov)
  in
  Ok (cancel, job)

(* the exception guard: user-level errors keep their message; any other
   exception from a handler or solver job must neither kill the daemon nor
   leak internals — it becomes an opaque [error internal] reply *)
let guard f =
  try f () with
  | Invalid_argument m | Failure m | Sys_error m -> error "%s" m
  | _ -> error "internal"

let job_reply st ~sequential prepared =
  match prepared with
  | Error reply -> reply
  | Ok (_cancel, job) -> (
      (* the request rides the shared pool so the loop's own domain does
         not run unbounded solver code; --jobs 1 keeps the historical
         sequential path *)
      match (if sequential then None else st.pool) with
      | Some p -> Pool.await (Pool.submit p (fun () -> guard job))
      | None -> guard job)

let solve_reply st (s : Protocol.solve) =
  job_reply st ~sequential:s.Protocol.sequential (prepare_solve st s)

let count_reply st (c : Protocol.count) =
  job_reply st ~sequential:c.Protocol.sequential (prepare_count st c)

let dispatch st req =
  match req with
  | Protocol.Version -> ok "phomd %s protocol %d" Version.string Version.protocol
  | Protocol.Ping -> ok "pong"
  | Protocol.Health ->
      (* the flap seam simulates a replica whose probe endpoint is sick
         while its data plane still works — what drives a router's breaker
         through open/half-open without killing the process *)
      if Faults.health_flap () then error "unavailable" else health_reply st
  | Protocol.List -> list_reply st
  | Protocol.Stats -> stats_reply st
  | Protocol.Load_graph { name; path } -> (
      match Catalog.load_graph st.catalog ~name ~path with
      | Ok g -> ok "loaded graph %s nodes=%d edges=%d" name (D.n g) (D.nb_edges g)
      | Error e -> error "%s" e)
  | Protocol.Load_mat { name; path } -> (
      match Catalog.load_mat st.catalog ~name ~path with
      | Ok m -> ok "loaded mat %s dims=%dx%d" name (Simmat.n1 m) (Simmat.n2 m)
      | Error e -> error "%s" e)
  | Protocol.Unload name -> (
      match Catalog.unload st.catalog name with
      | Ok artifacts -> ok "unloaded %s artifacts=%d" name artifacts
      | Error e -> error "%s" e)
  | Protocol.Edit e -> (
      let op_token = match e.Protocol.op with `Add -> "add" | `Del -> "del" in
      match
        Catalog.edit ?expect_crc:e.Protocol.crc st.catalog
          ~name:e.Protocol.name ~op:e.Protocol.op ~v:e.Protocol.v
          ~w:e.Protocol.w
      with
      | Ok r ->
          (* [crc=] is the post-edit content signature: a client (or the
             router's replay log) hands it back as [--crc] to make
             re-delivery idempotent; [closures=] counts the cached closure
             matrices carried across the edit incrementally *)
          ok "edited %s op=%s v=%d w=%d edges=%d crc=%s applied=%d closures=%d"
            e.Protocol.name op_token e.Protocol.v e.Protocol.w r.Catalog.edges
            r.Catalog.crc
            (if r.Catalog.applied then 1 else 0)
            r.Catalog.closures
      | Error e -> error "%s" e)
  | Protocol.Solve s -> solve_reply st s
  | Protocol.Count c -> count_reply st c
  | Protocol.Shutdown -> ok "shutting down"
  | Protocol.Quit -> ok "bye"

let execute st req =
  st.requests <- st.requests + 1;
  let reply =
    guard (fun () ->
        Faults.execute_hook ();
        dispatch st req)
  in
  let next =
    match req with
    | Protocol.Shutdown -> `Shutdown
    | Protocol.Quit -> `Quit
    | _ -> `Continue
  in
  (Protocol.sanitize reply, next)

(* like [execute], but a solve comes back as a schedulable job instead of
   blocking the caller; only the multiplexed loop uses this *)
type executed =
  | Reply of string * [ `Continue | `Quit | `Shutdown ]
  | Solve_job of { cancel : unit -> unit; job : unit -> string }

(* only Solve/Count ride the pool; every probe and control verb (health,
   stats, ping, version, list, load/unload) is answered inline on the event
   loop below, so a router's health probe is never queued behind a saturated
   worker pool — a replica with all workers busy still reports [ready] *)
let execute_async st req =
  match req with
  | Protocol.Solve _ | Protocol.Count _ -> (
      st.requests <- st.requests + 1;
      let prepared =
        try
          Faults.execute_hook ();
          match req with
          | Protocol.Solve s -> prepare_solve st s
          | Protocol.Count c -> prepare_count st c
          | _ -> assert false
        with
        | Invalid_argument m | Failure m | Sys_error m -> Error (error "%s" m)
        | _ -> Error (error "internal")
      in
      match prepared with
      | Error reply -> Reply (Protocol.sanitize reply, `Continue)
      | Ok (cancel, job) ->
          Solve_job { cancel; job = (fun () -> Protocol.sanitize (guard job)) })
  | _ ->
      let reply, next = execute st req in
      Reply (reply, next)

(* ---- listeners ---- *)

(* a connect-probe distinguishes a crashed daemon's leftover socket from a
   live one: only a live daemon answers ping (any reply counts — even an
   older daemon's unknown-command error proves someone is listening) *)
let socket_in_use path =
  match Client.connect ~timeout:1.0 (Unix.ADDR_UNIX path) with
  | Error _ -> false
  | Ok conn ->
      let alive = Result.is_ok (Client.send ~timeout:1.0 conn "ping") in
      Client.close conn;
      alive

let listen_unix path =
  (* refuse to clobber a foreign file or a live daemon's socket; replace
     only a socket nobody answers on (the kill -9 leftover) *)
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
      if socket_in_use path then
        invalid_arg (path ^ ": a live daemon is already listening here")
      else Unix.unlink path
  | _ -> invalid_arg (path ^ ": exists and is not a socket")
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  (try
     (* the socket must not be world-connectable regardless of the umask
        the daemon inherited; chmod after bind pins it to owner-only *)
     Unix.chmod path 0o600;
     Unix.listen fd 16
   with e ->
     (* don't leave a half-made socket behind *)
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try Unix.unlink path with Unix.Unix_error _ -> ());
     raise e);
  (fd, path)

let listen_tcp_addr ip port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (ip, port));
    Unix.listen fd 16;
    let bound =
      (* getsockname, not the request: port 0 asks the kernel for an
         ephemeral port and the banner must name the one it granted *)
      match Unix.getsockname fd with
      | Unix.ADDR_INET (addr, port) ->
          Printf.sprintf "%s:%d" (Unix.string_of_inet_addr addr) port
      | Unix.ADDR_UNIX p -> p
    in
    (fd, bound)
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

(* "HOST:PORT" (numeric IP or resolvable name; "" or "*" = all interfaces)
   for --listen; port 0 binds an ephemeral port announced via [ready] *)
let parse_listen spec =
  match String.rindex_opt spec ':' with
  | None -> invalid_arg (spec ^ ": expected HOST:PORT")
  | Some i -> (
      let host = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt rest with
      | Some port when port >= 0 && port <= 65535 ->
          let ip =
            if host = "" || host = "*" then Unix.inet_addr_any
            else
              match Unix.inet_addr_of_string host with
              | ip -> ip
              | exception Failure _ -> (
                  match Unix.gethostbyname host with
                  | { Unix.h_addr_list = [||]; _ } ->
                      invalid_arg (spec ^ ": no address for host " ^ host)
                  | h -> h.Unix.h_addr_list.(0)
                  | exception Not_found ->
                      invalid_arg (spec ^ ": unknown host " ^ host))
          in
          (ip, port)
      | _ -> invalid_arg (spec ^ ": port out of range"))

(* ---- the multiplexed socket loop ---- *)

type inflight = {
  future : string Pool.future;
  result : string option Atomic.t;
      (* the reply, published by the worker just before it wakes the loop.
         [Pool.peek] alone would race: the wake write happens inside the
         task, before the pool marks the future resolved, so a woken loop
         could peek [None] and sleep a whole poll interval on a job that is
         already done. *)
  cancel : unit -> unit;
}

type cstate = {
  c : Conn.t;
  mutable job : inflight option;
  mutable dead : bool;  (* peer vanished while a job was in flight *)
  reject : bool;  (* admission-control shed: busy reply then close *)
}

let serve ?(ready = fun _ -> ()) config =
  if config.jobs < 1 then invalid_arg "Daemon.serve: jobs must be >= 1";
  if config.socket_path = None && config.tcp_port = None && config.listen = []
  then invalid_arg "Daemon.serve: no listener configured (socket or TCP)";
  if config.max_conns < 1 then invalid_arg "Daemon.serve: max_conns must be >= 1";
  if config.max_pending < 1 then
    invalid_arg "Daemon.serve: max_pending must be >= 1";
  if config.max_line_bytes < 1 then
    invalid_arg "Daemon.serve: max_line_bytes must be >= 1";
  (* a dying client must not kill the daemon with SIGPIPE; writes then fail
     with EPIPE, which the connection machinery absorbs *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* the --listen specs must parse before any descriptor is bound, so a
     typo'd endpoint can't leave half the fleet's listeners behind *)
  let extra_addrs = List.map parse_listen config.listen in
  let unix_listener = Option.map listen_unix config.socket_path in
  let tcp_listeners =
    let opened = ref [] in
    try
      let tcp addr =
        let l = listen_tcp_addr (fst addr) (snd addr) in
        opened := l :: !opened;
        l
      in
      let loopback =
        Option.to_list
          (Option.map (fun p -> (Unix.inet_addr_loopback, p)) config.tcp_port)
      in
      List.map tcp (loopback @ extra_addrs)
    with e ->
      (* don't leak the bound unix socket (or earlier TCP binds) when a
         later TCP bind fails *)
      List.iter
        (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ())
        !opened;
      Option.iter
        (fun (fd, path) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          try Unix.unlink path with Unix.Unix_error _ -> ())
        unix_listener;
      raise e
  in
  let listeners =
    (match unix_listener with
    | Some (fd, p) -> [ (fd, p, Faults.Unix_sock) ]
    | None -> [])
    @ List.map (fun (fd, b) -> (fd, b, Faults.Tcp)) tcp_listeners
  in
  List.iter
    (fun (fd, _, _) -> try Unix.set_nonblock fd with Unix.Unix_error _ -> ())
    listeners;
  (* self-pipe: pool workers (job done) and signal handlers (drain) wake
     the select loop without a race against its blocking wait *)
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let wake () =
    try ignore (Unix.write wake_w (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()
  in
  let drain_requested = Atomic.make false in
  let install signal =
    match
      Sys.signal signal
        (Sys.Signal_handle
           (fun _ ->
             Atomic.set drain_requested true;
             wake ()))
    with
    | old -> Some (signal, old)
    | exception (Invalid_argument _ | Sys_error _) -> None
  in
  let installed = List.filter_map install [ Sys.sigterm; Sys.sigint ] in
  let finish () =
    List.iter
      (fun (s, old) ->
        try Sys.set_signal s old with Invalid_argument _ | Sys_error _ -> ())
      installed;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ wake_r; wake_w ];
    List.iter
      (fun (fd, _, _) -> try Unix.close fd with Unix.Unix_error _ -> ())
      listeners;
    Option.iter
      (fun (_, path) -> try Unix.unlink path with Unix.Unix_error _ -> ())
      unix_listener
  in
  Fun.protect ~finally:finish (fun () ->
      let run pool =
        let st = make_state ?pool config in
        ready (List.map (fun (_, b, _) -> b) listeners);
        let listener_fds = List.map (fun (fd, _, k) -> (fd, k)) listeners in
        let conns : (Unix.file_descr, cstate) Hashtbl.t = Hashtbl.create 32 in
        (* mutation discipline: the table is only ever modified outside
           iteration — iterations run over this snapshot *)
        let snapshot () = Hashtbl.fold (fun _ cs acc -> cs :: acc) conns [] in
        let in_flight = ref 0 in
        let accepting = ref true in
        let draining = ref false in
        let drain_deadline = ref infinity in
        let live_count () =
          Hashtbl.fold
            (fun _ cs n ->
              if (not cs.reject) && Conn.is_open cs.c then n + 1 else n)
            conns 0
        in
        Obs.register_probe "phom_daemon_connections_open" (fun () ->
            float_of_int (live_count ()));
        let sweep_closed () =
          let gone =
            Hashtbl.fold
              (fun fd cs acc -> if Conn.is_open cs.c then acc else fd :: acc)
              conns []
          in
          List.iter (Hashtbl.remove conns) gone
        in
        let send cs reply =
          Conn.send_line cs.c reply;
          Conn.handle_write cs.c
        in
        let drain_started = ref nan in
        let start_drain () =
          if not !draining then begin
            draining := true;
            st.draining <- true;
            accepting := false;
            drain_started := Unix.gettimeofday ();
            drain_deadline := !drain_started +. config.drain_grace;
            (* budget-trip the in-flight solves (each still flushes its
               best-so-far anytime reply) and flush-close everyone else *)
            List.iter
              (fun cs ->
                match cs.job with
                | Some j -> j.cancel ()
                | None -> Conn.close_after_flush cs.c)
              (snapshot ())
          end
        in
        let rec process_conn cs =
          if
            Conn.is_open cs.c
            && (not (Conn.is_draining cs.c))
            && cs.job = None && (not cs.dead) && (not !draining)
            && not cs.reject
          then
            match Conn.next_line cs.c with
            | None -> ()
            | Some line ->
                let line = String.trim line in
                if line = "" then process_conn cs
                else begin
                  Conn.touch cs.c ~now:(Unix.gettimeofday ());
                  (match Protocol.parse line with
                  | Error e -> send cs (Protocol.sanitize ("error " ^ e))
                  | Ok req -> (
                      match execute_async st req with
                      | Reply (reply, next) -> (
                          send cs reply;
                          match next with
                          | `Continue -> ()
                          | `Quit -> Conn.close_after_flush cs.c
                          | `Shutdown ->
                              Conn.close_after_flush cs.c;
                              start_drain ())
                      | Solve_job { cancel; job } -> (
                          if !in_flight >= config.max_pending then begin
                            (* pending-solve queue is full: shed with a
                               hint instead of queueing unboundedly *)
                            st.busy_rejected <- st.busy_rejected + 1;
                            send cs (busy_reply st)
                          end
                          else
                            match st.pool with
                            | None ->
                                (* sequential daemon (--jobs 1): the
                                   historical blocking path *)
                                send cs (job ())
                            | Some p ->
                                incr in_flight;
                                let result = Atomic.make None in
                                let future =
                                  Pool.submit p (fun () ->
                                      let r = job () in
                                      Atomic.set result (Some r);
                                      wake ();
                                      r)
                                in
                                cs.job <- Some { future; result; cancel })));
                  process_conn cs
                end
        in
        let finish_job cs reply =
          cs.job <- None;
          decr in_flight;
          if cs.dead || not (Conn.is_open cs.c) then Conn.close cs.c
          else begin
            send cs reply;
            Conn.touch cs.c ~now:(Unix.gettimeofday ());
            if !draining then Conn.close_after_flush cs.c else process_conn cs
          end
        in
        let poll_jobs () =
          List.iter
            (fun cs ->
              match cs.job with
              | None -> ()
              | Some j -> (
                  match Atomic.get j.result with
                  | Some reply -> finish_job cs reply
                  | None -> (
                      (* belt and braces: the job guard means the task
                         cannot raise, but a future that failed anyway must
                         still retire its connection *)
                      match Pool.peek j.future with
                      | None -> ()
                      | Some reply -> finish_job cs reply
                      | exception _ -> finish_job cs (error "internal"))))
            (snapshot ())
        in
        let evict_stalled now =
          List.iter
            (fun cs ->
              if Conn.is_open cs.c && cs.job = None && Conn.expired cs.c ~now
              then
                if Conn.is_draining cs.c || cs.reject || cs.dead then
                  (* already told to go away and still not reading *)
                  Conn.close cs.c
                else begin
                  st.idle_evicted <- st.idle_evicted + 1;
                  send cs "error idle-timeout";
                  Conn.close_after_flush cs.c
                end)
            (snapshot ())
        in
        let accept_from (lfd, kind) =
          let continue = ref true in
          while !continue do
            match Faults.accept ~kind lfd with
            | exception
                Unix.Unix_error
                  ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
                continue := false
            | exception Unix.Unix_error (_, _, _) ->
                (* a transient accept failure (ECONNABORTED, EMFILE, an
                   injected fault) must not kill the daemon *)
                continue := false
            | afd, _ ->
                (try Unix.set_nonblock afd with Unix.Unix_error _ -> ());
                (* one-line replies: don't let Nagle hold a router's answer
                   hostage to the client's delayed ACK *)
                if kind = Faults.Tcp then (
                  try Unix.setsockopt afd Unix.TCP_NODELAY true
                  with Unix.Unix_error _ | Invalid_argument _ -> ());
                let now = Unix.gettimeofday () in
                if not !accepting then begin
                  try Unix.close afd with Unix.Unix_error _ -> ()
                end
                else if live_count () >= config.max_conns then begin
                  (* admission control: shed the connection with a retry
                     hint and a clean close *)
                  st.busy_rejected <- st.busy_rejected + 1;
                  let c =
                    Conn.create ~transport:kind ~max_line:config.max_line_bytes
                      ~idle_timeout:(Some (Float.max 1. config.retry_after))
                      ~now afd
                  in
                  let cs = { c; job = None; dead = false; reject = true } in
                  Conn.send_line c (busy_reply st);
                  Conn.close_after_flush c;
                  Conn.handle_write c;
                  if Conn.is_open c then Hashtbl.replace conns afd cs
                end
                else begin
                  st.conns_accepted <- st.conns_accepted + 1;
                  let c =
                    Conn.create ~transport:kind ~max_line:config.max_line_bytes
                      ~idle_timeout:config.idle_timeout ~now afd
                  in
                  Hashtbl.replace conns afd
                    { c; job = None; dead = false; reject = false }
                end
          done
        in
        let on_readable cs =
          match Conn.handle_read cs.c with
          | Conn.Progress -> process_conn cs
          | Conn.Line_too_long ->
              (* bounded reader: reject instead of buffering unboundedly *)
              st.line_too_long <- st.line_too_long + 1;
              send cs "error line-too-long";
              Conn.close_after_flush cs.c
          | Conn.Peer_closed -> (
              match cs.job with
              | Some j ->
                  (* mid-solve disconnect: budget-trip the job, let it
                     finish on the pool, discard its reply *)
                  j.cancel ();
                  cs.dead <- true
              | None -> Conn.close cs.c)
        in
        let drain_wake_pipe () =
          let b = Bytes.create 64 in
          let rec go () =
            match Unix.read wake_r b 0 64 with
            | n when n > 0 -> go ()
            | _ -> ()
            | exception Unix.Unix_error _ -> ()
          in
          go ()
        in
        let rec loop () =
          if Atomic.get drain_requested then start_drain ();
          sweep_closed ();
          if !draining && Hashtbl.length conns = 0 then ()
          else begin
            let now = Unix.gettimeofday () in
            if !draining && now >= !drain_deadline then begin
              (* drain grace expired: cut the stragglers; in-flight
                 futures are finished by the pool's own shutdown *)
              List.iter (fun cs -> Conn.close cs.c) (snapshot ());
              sweep_closed ();
              loop ()
            end
            else begin
              let cstates = snapshot () in
              let reads =
                (wake_r
                :: (if !accepting then List.map fst listener_fds else []))
                @ List.filter_map
                    (fun cs ->
                      if (not cs.dead) && Conn.want_read cs.c then
                        Some (Conn.fd cs.c)
                      else None)
                    cstates
              in
              let writes =
                List.filter_map
                  (fun cs ->
                    if Conn.want_write cs.c then Some (Conn.fd cs.c) else None)
                  cstates
              in
              let timeout =
                if !in_flight > 0 then 0.05
                else begin
                  let next =
                    List.fold_left
                      (fun acc cs ->
                        if Conn.is_open cs.c && cs.job = None then
                          Float.min acc (Conn.deadline cs.c)
                        else acc)
                      (if !draining then !drain_deadline else infinity)
                      cstates
                  in
                  if next = infinity then 1.0
                  else Float.min 1.0 (Float.max 0.005 (next -. now))
                end
              in
              (match Unix.select reads writes [] timeout with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              | exception Unix.Unix_error (Unix.EBADF, _, _) ->
                  (* a descriptor closed under us; the sweep catches it *)
                  ()
              | readable, writable, _ ->
                  if List.mem wake_r readable then drain_wake_pipe ();
                  if !accepting then
                    List.iter
                      (fun (lfd, kind) ->
                        if List.mem lfd readable then accept_from (lfd, kind))
                      listener_fds;
                  List.iter
                    (fun cs ->
                      if Conn.is_open cs.c then begin
                        if List.mem (Conn.fd cs.c) writable then
                          Conn.handle_write cs.c;
                        if (not cs.dead) && List.mem (Conn.fd cs.c) readable
                        then on_readable cs
                      end)
                    cstates);
              poll_jobs ();
              evict_stalled (Unix.gettimeofday ());
              persist_tick st;
              loop ()
            end
          end
        in
        loop ();
        (* the drain's last act: capture the warm state so the next start
           is a warm start *)
        close_state st;
        if not (Float.is_nan !drain_started) then
          st.drain_seconds <- Unix.gettimeofday () -. !drain_started
      in
      if config.jobs = 1 then run None
      else Pool.with_pool ~domains:config.jobs (fun p -> run (Some p)))
