module D = Phom_graph.Digraph
module Budget = Phom_graph.Budget
module Simmat = Phom_sim.Simmat
module Api = Phom.Api
module Pool = Phom_parallel.Pool
module Obs = Phom_obs.Obs

type config = {
  socket_path : string option;
  tcp_port : int option;
  jobs : int;
  cache_bytes : int;
  max_graph_bytes : int;
  max_mat_bytes : int;
  default_timeout : float option;
  default_steps : int option;
  max_conns : int;
  max_pending : int;
  idle_timeout : float option;
  max_line_bytes : int;
  retry_after : float;
  drain_grace : float;
}

let default_config =
  {
    socket_path = None;
    tcp_port = None;
    jobs = 1;
    cache_bytes = 256 * 1024 * 1024;
    max_graph_bytes = 64 * 1024 * 1024;
    max_mat_bytes = 64 * 1024 * 1024;
    default_timeout = Some 5.;
    default_steps = None;
    max_conns = 64;
    max_pending = 32;
    idle_timeout = Some 300.;
    max_line_bytes = 8192;
    retry_after = 1.;
    drain_grace = 5.;
  }

type state = {
  config : config;
  catalog : Catalog.t;
  pool : Pool.t option;  (** borrowed; None = sequential daemon *)
  mutable requests : int;
  mutable busy_rejected : int;  (** admission-control sheds *)
  mutable idle_evicted : int;  (** stalled peers cut by the idle deadline *)
  mutable conns_accepted : int;
  mutable line_too_long : int;  (** bounded-reader rejections *)
  mutable drain_seconds : float;  (** wall time of the last graceful drain *)
}

(* the daemon metrics are probes over the state's own mutable fields: the
   loop keeps counting in plain fields (single-writer, the loop's domain)
   and the registry samples them at dump time; a fresh state re-points the
   probes at itself, so tests that build many daemons read the live one *)
let register_metrics st =
  let fi f = fun () -> float_of_int (f ()) in
  Obs.register_probe "phom_daemon_requests_total" (fi (fun () -> st.requests));
  Obs.register_probe "phom_daemon_connections_shed_total"
    (fi (fun () -> st.busy_rejected));
  Obs.register_probe "phom_daemon_connections_evicted_total"
    (fi (fun () -> st.idle_evicted));
  Obs.register_probe "phom_daemon_connections_accepted_total"
    (fi (fun () -> st.conns_accepted));
  Obs.register_probe "phom_daemon_line_too_long_total"
    (fi (fun () -> st.line_too_long));
  Obs.register_probe "phom_daemon_drain_seconds" (fun () -> st.drain_seconds);
  Obs.register_probe
    ~labels:[ ("version", Version.string) ]
    "phom_build_info"
    (fun () -> 1.)

let make_state ?pool config =
  let st =
    {
      config;
      catalog =
        Catalog.create ~max_graph_bytes:config.max_graph_bytes
          ~max_mat_bytes:config.max_mat_bytes ~cache_bytes:config.cache_bytes ();
      pool;
      requests = 0;
      busy_rejected = 0;
      idle_evicted = 0;
      conns_accepted = 0;
      line_too_long = 0;
      drain_seconds = 0.;
    }
  in
  register_metrics st;
  st

let requests_served st = st.requests

(* ---- replies ---- *)

let ok fmt = Printf.ksprintf (fun s -> "ok " ^ s) fmt
let error fmt = Printf.ksprintf (fun s -> "error " ^ s) fmt

let busy_reply st = error "busy retry-after=%g" st.config.retry_after

let status_token = function
  | Budget.Complete -> "complete"
  | Budget.Exhausted reason ->
      Printf.sprintf "exhausted(%s)" (Budget.string_of_reason reason)

let list_reply st =
  let graphs, mats = Catalog.list st.catalog in
  let g_item (name, g) =
    Printf.sprintf "%s:%dn/%de" name (D.n g) (D.nb_edges g)
  in
  let m_item (name, m) =
    Printf.sprintf "%s:%dx%d" name (Simmat.n1 m) (Simmat.n2 m)
  in
  ok "graphs=[%s] mats=[%s]"
    (String.concat "," (List.map g_item graphs))
    (String.concat "," (List.map m_item mats))

(* Prometheus text over the wire: a header line carrying the line count, so
   single-line clients know how much more to read, then the registry dump.
   The daemon-family values come from probes over [st]'s own fields and the
   cache family from the Lru's own atomics, so this reply and per-reply
   provenance can never disagree. [_st] keeps the probes' target alive. *)
let stats_reply _st =
  let lines = Obs.dump_lines () in
  String.concat "\n" (ok "stats %d" (List.length lines) :: lines)

(* ---- solve ---- *)

let budget_for st (s : Protocol.solve) =
  let timeout =
    match s.Protocol.timeout with
    | Some _ as t -> t
    | None -> st.config.default_timeout
  in
  let steps =
    match s.Protocol.steps with
    | Some _ as n -> n
    | None -> st.config.default_steps
  in
  (* the drain path cancels in-flight requests from the loop's domain while
     a pool worker is ticking the budget, so cancellation must ride the
     budget's hook over an atomic rather than Budget.cancel's plain field *)
  let flag = Atomic.make false in
  let budget =
    Budget.create ?timeout ?steps ~cancel:(fun () -> Atomic.get flag) ()
  in
  (budget, fun () -> Atomic.set flag true)

(* split one solve request into what must run on the loop's domain (name
   resolution, budget anchoring at receipt) and the job proper, which a
   pool worker executes; [cancel] budget-trips the job from outside *)
let prepare_solve st (s : Protocol.solve) =
  let ( let* ) r f =
    match r with Error e -> Error (error "%s" e) | Ok v -> f v
  in
  let* g1 = Catalog.graph st.catalog s.Protocol.g1 in
  let* g2 = Catalog.graph st.catalog s.Protocol.g2 in
  (* the budget is anchored at request receipt: artifact building, solving
     and reply formatting all draw on the same allowance *)
  let budget, cancel = budget_for st s in
  let pool = if s.Protocol.sequential then None else st.pool in
  let job () =
    Faults.solve_delay ();
    let ( let* ) r f = match r with Error e -> error "%s" e | Ok v -> f v in
    let* tc2, closure_prov =
      Catalog.closure ~budget st.catalog ~name:s.Protocol.g2
        ~hops:s.Protocol.hops
    in
    let* mat, mat_prov =
      Catalog.similarity st.catalog ~g1:s.Protocol.g1 ~g2:s.Protocol.g2
        ~sim:s.Protocol.sim
    in
    let t = Phom.Instance.make ~tc2 ~g1 ~g2 ~mat ~xi:s.Protocol.xi () in
    let cands_prov =
      Catalog.candidates ~budget st.catalog ~instance:t ~g1:s.Protocol.g1
        ~g2:s.Protocol.g2 ~sim:s.Protocol.sim ~hops:s.Protocol.hops
    in
    let r =
      Api.solve_within ~algorithm:s.Protocol.algorithm
        ~partition:s.Protocol.partition ~compress:s.Protocol.compress ~budget
        ?pool s.Protocol.problem t
    in
    (* fast paths can finish between poll points; a final poll makes the
       deadline (and a drain cancellation) part of the reply contract *)
    let status =
      match r.Api.status with
      | Budget.Exhausted _ as st -> st
      | Budget.Complete ->
          if Budget.poll budget then Budget.Complete else Budget.status budget
    in
    ok
      "solve problem=%s quality=%.4f mapped=%d/%d matched=%b status=%s \
       cache=closure:%s,mat:%s,cands:%s"
      (Api.problem_name r.Api.problem)
      r.Api.quality
      (Phom.Mapping.size r.Api.mapping)
      (D.n g1) (Api.matches r) (status_token status)
      (Catalog.provenance_name closure_prov)
      (Catalog.provenance_name mat_prov)
      (Catalog.provenance_name cands_prov)
  in
  Ok (cancel, job)

(* the exception guard: user-level errors keep their message; any other
   exception from a handler or solver job must neither kill the daemon nor
   leak internals — it becomes an opaque [error internal] reply *)
let guard f =
  try f () with
  | Invalid_argument m | Failure m | Sys_error m -> error "%s" m
  | _ -> error "internal"

let solve_reply st (s : Protocol.solve) =
  match prepare_solve st s with
  | Error reply -> reply
  | Ok (_cancel, job) -> (
      (* the request rides the shared pool so the loop's own domain does
         not run unbounded solver code; --jobs 1 keeps the historical
         sequential path *)
      match (if s.Protocol.sequential then None else st.pool) with
      | Some p -> Pool.await (Pool.submit p (fun () -> guard job))
      | None -> guard job)

let dispatch st req =
  match req with
  | Protocol.Version -> ok "phomd %s protocol %d" Version.string Version.protocol
  | Protocol.List -> list_reply st
  | Protocol.Stats -> stats_reply st
  | Protocol.Load_graph { name; path } -> (
      match Catalog.load_graph st.catalog ~name ~path with
      | Ok g -> ok "loaded graph %s nodes=%d edges=%d" name (D.n g) (D.nb_edges g)
      | Error e -> error "%s" e)
  | Protocol.Load_mat { name; path } -> (
      match Catalog.load_mat st.catalog ~name ~path with
      | Ok m -> ok "loaded mat %s dims=%dx%d" name (Simmat.n1 m) (Simmat.n2 m)
      | Error e -> error "%s" e)
  | Protocol.Unload name -> (
      match Catalog.unload st.catalog name with
      | Ok artifacts -> ok "unloaded %s artifacts=%d" name artifacts
      | Error e -> error "%s" e)
  | Protocol.Solve s -> solve_reply st s
  | Protocol.Shutdown -> ok "shutting down"
  | Protocol.Quit -> ok "bye"

let execute st req =
  st.requests <- st.requests + 1;
  let reply =
    guard (fun () ->
        Faults.execute_hook ();
        dispatch st req)
  in
  let next =
    match req with
    | Protocol.Shutdown -> `Shutdown
    | Protocol.Quit -> `Quit
    | _ -> `Continue
  in
  (Protocol.sanitize reply, next)

(* like [execute], but a solve comes back as a schedulable job instead of
   blocking the caller; only the multiplexed loop uses this *)
type executed =
  | Reply of string * [ `Continue | `Quit | `Shutdown ]
  | Solve_job of { cancel : unit -> unit; job : unit -> string }

let execute_async st req =
  match req with
  | Protocol.Solve s -> (
      st.requests <- st.requests + 1;
      let prepared =
        try
          Faults.execute_hook ();
          prepare_solve st s
        with
        | Invalid_argument m | Failure m | Sys_error m -> Error (error "%s" m)
        | _ -> Error (error "internal")
      in
      match prepared with
      | Error reply -> Reply (Protocol.sanitize reply, `Continue)
      | Ok (cancel, job) ->
          Solve_job { cancel; job = (fun () -> Protocol.sanitize (guard job)) })
  | _ ->
      let reply, next = execute st req in
      Reply (reply, next)

(* ---- listeners ---- *)

let listen_unix path =
  (* refuse to clobber a foreign file; replace only a stale socket *)
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> invalid_arg (path ^ ": exists and is not a socket")
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  (try
     (* the socket must not be world-connectable regardless of the umask
        the daemon inherited; chmod after bind pins it to owner-only *)
     Unix.chmod path 0o600;
     Unix.listen fd 16
   with e ->
     (* don't leave a half-made socket behind *)
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try Unix.unlink path with Unix.Unix_error _ -> ());
     raise e);
  (fd, path)

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 16;
  let bound =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (addr, port) ->
        Printf.sprintf "%s:%d" (Unix.string_of_inet_addr addr) port
    | Unix.ADDR_UNIX p -> p
  in
  (fd, bound)

(* ---- the multiplexed socket loop ---- *)

type inflight = {
  future : string Pool.future;
  result : string option Atomic.t;
      (* the reply, published by the worker just before it wakes the loop.
         [Pool.peek] alone would race: the wake write happens inside the
         task, before the pool marks the future resolved, so a woken loop
         could peek [None] and sleep a whole poll interval on a job that is
         already done. *)
  cancel : unit -> unit;
}

type cstate = {
  c : Conn.t;
  mutable job : inflight option;
  mutable dead : bool;  (* peer vanished while a job was in flight *)
  reject : bool;  (* admission-control shed: busy reply then close *)
}

let serve ?(ready = fun _ -> ()) config =
  if config.jobs < 1 then invalid_arg "Daemon.serve: jobs must be >= 1";
  if config.socket_path = None && config.tcp_port = None then
    invalid_arg "Daemon.serve: no listener configured (socket or TCP)";
  if config.max_conns < 1 then invalid_arg "Daemon.serve: max_conns must be >= 1";
  if config.max_pending < 1 then
    invalid_arg "Daemon.serve: max_pending must be >= 1";
  if config.max_line_bytes < 1 then
    invalid_arg "Daemon.serve: max_line_bytes must be >= 1";
  (* a dying client must not kill the daemon with SIGPIPE; writes then fail
     with EPIPE, which the connection machinery absorbs *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let unix_listener = Option.map listen_unix config.socket_path in
  let tcp_listener =
    try Option.map listen_tcp config.tcp_port
    with e ->
      (* don't leak the bound unix socket when the TCP bind fails *)
      Option.iter
        (fun (fd, path) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          try Unix.unlink path with Unix.Unix_error _ -> ())
        unix_listener;
      raise e
  in
  let listeners = List.filter_map Fun.id [ unix_listener; tcp_listener ] in
  List.iter
    (fun (fd, _) -> try Unix.set_nonblock fd with Unix.Unix_error _ -> ())
    listeners;
  (* self-pipe: pool workers (job done) and signal handlers (drain) wake
     the select loop without a race against its blocking wait *)
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let wake () =
    try ignore (Unix.write wake_w (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()
  in
  let drain_requested = Atomic.make false in
  let install signal =
    match
      Sys.signal signal
        (Sys.Signal_handle
           (fun _ ->
             Atomic.set drain_requested true;
             wake ()))
    with
    | old -> Some (signal, old)
    | exception (Invalid_argument _ | Sys_error _) -> None
  in
  let installed = List.filter_map install [ Sys.sigterm; Sys.sigint ] in
  let finish () =
    List.iter
      (fun (s, old) ->
        try Sys.set_signal s old with Invalid_argument _ | Sys_error _ -> ())
      installed;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ wake_r; wake_w ];
    List.iter
      (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ())
      listeners;
    Option.iter
      (fun (_, path) -> try Unix.unlink path with Unix.Unix_error _ -> ())
      unix_listener
  in
  Fun.protect ~finally:finish (fun () ->
      let run pool =
        let st = make_state ?pool config in
        ready (List.map snd listeners);
        let listener_fds = List.map fst listeners in
        let conns : (Unix.file_descr, cstate) Hashtbl.t = Hashtbl.create 32 in
        (* mutation discipline: the table is only ever modified outside
           iteration — iterations run over this snapshot *)
        let snapshot () = Hashtbl.fold (fun _ cs acc -> cs :: acc) conns [] in
        let in_flight = ref 0 in
        let accepting = ref true in
        let draining = ref false in
        let drain_deadline = ref infinity in
        let live_count () =
          Hashtbl.fold
            (fun _ cs n ->
              if (not cs.reject) && Conn.is_open cs.c then n + 1 else n)
            conns 0
        in
        Obs.register_probe "phom_daemon_connections_open" (fun () ->
            float_of_int (live_count ()));
        let sweep_closed () =
          let gone =
            Hashtbl.fold
              (fun fd cs acc -> if Conn.is_open cs.c then acc else fd :: acc)
              conns []
          in
          List.iter (Hashtbl.remove conns) gone
        in
        let send cs reply =
          Conn.send_line cs.c reply;
          Conn.handle_write cs.c
        in
        let drain_started = ref nan in
        let start_drain () =
          if not !draining then begin
            draining := true;
            accepting := false;
            drain_started := Unix.gettimeofday ();
            drain_deadline := !drain_started +. config.drain_grace;
            (* budget-trip the in-flight solves (each still flushes its
               best-so-far anytime reply) and flush-close everyone else *)
            List.iter
              (fun cs ->
                match cs.job with
                | Some j -> j.cancel ()
                | None -> Conn.close_after_flush cs.c)
              (snapshot ())
          end
        in
        let rec process_conn cs =
          if
            Conn.is_open cs.c
            && (not (Conn.is_draining cs.c))
            && cs.job = None && (not cs.dead) && (not !draining)
            && not cs.reject
          then
            match Conn.next_line cs.c with
            | None -> ()
            | Some line ->
                let line = String.trim line in
                if line = "" then process_conn cs
                else begin
                  Conn.touch cs.c ~now:(Unix.gettimeofday ());
                  (match Protocol.parse line with
                  | Error e -> send cs (Protocol.sanitize ("error " ^ e))
                  | Ok req -> (
                      match execute_async st req with
                      | Reply (reply, next) -> (
                          send cs reply;
                          match next with
                          | `Continue -> ()
                          | `Quit -> Conn.close_after_flush cs.c
                          | `Shutdown ->
                              Conn.close_after_flush cs.c;
                              start_drain ())
                      | Solve_job { cancel; job } -> (
                          if !in_flight >= config.max_pending then begin
                            (* pending-solve queue is full: shed with a
                               hint instead of queueing unboundedly *)
                            st.busy_rejected <- st.busy_rejected + 1;
                            send cs (busy_reply st)
                          end
                          else
                            match st.pool with
                            | None ->
                                (* sequential daemon (--jobs 1): the
                                   historical blocking path *)
                                send cs (job ())
                            | Some p ->
                                incr in_flight;
                                let result = Atomic.make None in
                                let future =
                                  Pool.submit p (fun () ->
                                      let r = job () in
                                      Atomic.set result (Some r);
                                      wake ();
                                      r)
                                in
                                cs.job <- Some { future; result; cancel })));
                  process_conn cs
                end
        in
        let finish_job cs reply =
          cs.job <- None;
          decr in_flight;
          if cs.dead || not (Conn.is_open cs.c) then Conn.close cs.c
          else begin
            send cs reply;
            Conn.touch cs.c ~now:(Unix.gettimeofday ());
            if !draining then Conn.close_after_flush cs.c else process_conn cs
          end
        in
        let poll_jobs () =
          List.iter
            (fun cs ->
              match cs.job with
              | None -> ()
              | Some j -> (
                  match Atomic.get j.result with
                  | Some reply -> finish_job cs reply
                  | None -> (
                      (* belt and braces: the job guard means the task
                         cannot raise, but a future that failed anyway must
                         still retire its connection *)
                      match Pool.peek j.future with
                      | None -> ()
                      | Some reply -> finish_job cs reply
                      | exception _ -> finish_job cs (error "internal"))))
            (snapshot ())
        in
        let evict_stalled now =
          List.iter
            (fun cs ->
              if Conn.is_open cs.c && cs.job = None && Conn.expired cs.c ~now
              then
                if Conn.is_draining cs.c || cs.reject || cs.dead then
                  (* already told to go away and still not reading *)
                  Conn.close cs.c
                else begin
                  st.idle_evicted <- st.idle_evicted + 1;
                  send cs "error idle-timeout";
                  Conn.close_after_flush cs.c
                end)
            (snapshot ())
        in
        let accept_from lfd =
          let continue = ref true in
          while !continue do
            match Faults.accept lfd with
            | exception
                Unix.Unix_error
                  ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
                continue := false
            | exception Unix.Unix_error (_, _, _) ->
                (* a transient accept failure (ECONNABORTED, EMFILE, an
                   injected fault) must not kill the daemon *)
                continue := false
            | afd, _ ->
                (try Unix.set_nonblock afd with Unix.Unix_error _ -> ());
                let now = Unix.gettimeofday () in
                if not !accepting then begin
                  try Unix.close afd with Unix.Unix_error _ -> ()
                end
                else if live_count () >= config.max_conns then begin
                  (* admission control: shed the connection with a retry
                     hint and a clean close *)
                  st.busy_rejected <- st.busy_rejected + 1;
                  let c =
                    Conn.create ~max_line:config.max_line_bytes
                      ~idle_timeout:(Some (Float.max 1. config.retry_after))
                      ~now afd
                  in
                  let cs = { c; job = None; dead = false; reject = true } in
                  Conn.send_line c (busy_reply st);
                  Conn.close_after_flush c;
                  Conn.handle_write c;
                  if Conn.is_open c then Hashtbl.replace conns afd cs
                end
                else begin
                  st.conns_accepted <- st.conns_accepted + 1;
                  let c =
                    Conn.create ~max_line:config.max_line_bytes
                      ~idle_timeout:config.idle_timeout ~now afd
                  in
                  Hashtbl.replace conns afd
                    { c; job = None; dead = false; reject = false }
                end
          done
        in
        let on_readable cs =
          match Conn.handle_read cs.c with
          | Conn.Progress -> process_conn cs
          | Conn.Line_too_long ->
              (* bounded reader: reject instead of buffering unboundedly *)
              st.line_too_long <- st.line_too_long + 1;
              send cs "error line-too-long";
              Conn.close_after_flush cs.c
          | Conn.Peer_closed -> (
              match cs.job with
              | Some j ->
                  (* mid-solve disconnect: budget-trip the job, let it
                     finish on the pool, discard its reply *)
                  j.cancel ();
                  cs.dead <- true
              | None -> Conn.close cs.c)
        in
        let drain_wake_pipe () =
          let b = Bytes.create 64 in
          let rec go () =
            match Unix.read wake_r b 0 64 with
            | n when n > 0 -> go ()
            | _ -> ()
            | exception Unix.Unix_error _ -> ()
          in
          go ()
        in
        let rec loop () =
          if Atomic.get drain_requested then start_drain ();
          sweep_closed ();
          if !draining && Hashtbl.length conns = 0 then ()
          else begin
            let now = Unix.gettimeofday () in
            if !draining && now >= !drain_deadline then begin
              (* drain grace expired: cut the stragglers; in-flight
                 futures are finished by the pool's own shutdown *)
              List.iter (fun cs -> Conn.close cs.c) (snapshot ());
              sweep_closed ();
              loop ()
            end
            else begin
              let cstates = snapshot () in
              let reads =
                (wake_r :: (if !accepting then listener_fds else []))
                @ List.filter_map
                    (fun cs ->
                      if (not cs.dead) && Conn.want_read cs.c then
                        Some (Conn.fd cs.c)
                      else None)
                    cstates
              in
              let writes =
                List.filter_map
                  (fun cs ->
                    if Conn.want_write cs.c then Some (Conn.fd cs.c) else None)
                  cstates
              in
              let timeout =
                if !in_flight > 0 then 0.05
                else begin
                  let next =
                    List.fold_left
                      (fun acc cs ->
                        if Conn.is_open cs.c && cs.job = None then
                          Float.min acc (Conn.deadline cs.c)
                        else acc)
                      (if !draining then !drain_deadline else infinity)
                      cstates
                  in
                  if next = infinity then 1.0
                  else Float.min 1.0 (Float.max 0.005 (next -. now))
                end
              in
              (match Unix.select reads writes [] timeout with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              | exception Unix.Unix_error (Unix.EBADF, _, _) ->
                  (* a descriptor closed under us; the sweep catches it *)
                  ()
              | readable, writable, _ ->
                  if List.mem wake_r readable then drain_wake_pipe ();
                  if !accepting then
                    List.iter
                      (fun lfd -> if List.mem lfd readable then accept_from lfd)
                      listener_fds;
                  List.iter
                    (fun cs ->
                      if Conn.is_open cs.c then begin
                        if List.mem (Conn.fd cs.c) writable then
                          Conn.handle_write cs.c;
                        if (not cs.dead) && List.mem (Conn.fd cs.c) readable
                        then on_readable cs
                      end)
                    cstates);
              poll_jobs ();
              evict_stalled (Unix.gettimeofday ());
              loop ()
            end
          end
        in
        loop ();
        if not (Float.is_nan !drain_started) then
          st.drain_seconds <- Unix.gettimeofday () -. !drain_started
      in
      if config.jobs = 1 then run None
      else Pool.with_pool ~domains:config.jobs (fun p -> run (Some p)))
