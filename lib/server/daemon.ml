module D = Phom_graph.Digraph
module Budget = Phom_graph.Budget
module Simmat = Phom_sim.Simmat
module Api = Phom.Api
module Pool = Phom_parallel.Pool

type config = {
  socket_path : string option;
  tcp_port : int option;
  jobs : int;
  cache_bytes : int;
  max_graph_bytes : int;
  max_mat_bytes : int;
  default_timeout : float option;
  default_steps : int option;
}

let default_config =
  {
    socket_path = None;
    tcp_port = None;
    jobs = 1;
    cache_bytes = 256 * 1024 * 1024;
    max_graph_bytes = 64 * 1024 * 1024;
    max_mat_bytes = 64 * 1024 * 1024;
    default_timeout = Some 5.;
    default_steps = None;
  }

type state = {
  config : config;
  catalog : Catalog.t;
  pool : Pool.t option;  (** borrowed; None = sequential daemon *)
  mutable requests : int;
}

let make_state ?pool config =
  {
    config;
    catalog =
      Catalog.create ~max_graph_bytes:config.max_graph_bytes
        ~max_mat_bytes:config.max_mat_bytes ~cache_bytes:config.cache_bytes ();
    pool;
    requests = 0;
  }

let requests_served st = st.requests

(* ---- replies ---- *)

let ok fmt = Printf.ksprintf (fun s -> "ok " ^ s) fmt
let error fmt = Printf.ksprintf (fun s -> "error " ^ s) fmt

let status_token = function
  | Budget.Complete -> "complete"
  | Budget.Exhausted reason ->
      Printf.sprintf "exhausted(%s)" (Budget.string_of_reason reason)

let list_reply st =
  let graphs, mats = Catalog.list st.catalog in
  let g_item (name, g) =
    Printf.sprintf "%s:%dn/%de" name (D.n g) (D.nb_edges g)
  in
  let m_item (name, m) =
    Printf.sprintf "%s:%dx%d" name (Simmat.n1 m) (Simmat.n2 m)
  in
  ok "graphs=[%s] mats=[%s]"
    (String.concat "," (List.map g_item graphs))
    (String.concat "," (List.map m_item mats))

let stats_reply st =
  let s = Catalog.cache_stats st.catalog in
  let graphs, mats = Catalog.list st.catalog in
  ok
    "stats requests=%d graphs=%d mats=%d cache entries=%d bytes=%d \
     capacity=%d hits=%d misses=%d evictions=%d"
    st.requests (List.length graphs) (List.length mats) s.Lru.entries
    s.Lru.bytes s.Lru.capacity_bytes s.Lru.hits s.Lru.misses s.Lru.evictions

(* ---- solve ---- *)

let budget_for st (s : Protocol.solve) =
  let timeout =
    match s.Protocol.timeout with
    | Some _ as t -> t
    | None -> st.config.default_timeout
  in
  let steps =
    match s.Protocol.steps with
    | Some _ as n -> n
    | None -> st.config.default_steps
  in
  match (timeout, steps) with
  | None, None -> Budget.unlimited ()
  | _ -> Budget.create ?timeout ?steps ()

let solve_reply st (s : Protocol.solve) =
  let ( let* ) r f = match r with Error e -> error "%s" e | Ok v -> f v in
  let* g1 = Catalog.graph st.catalog s.Protocol.g1 in
  let* g2 = Catalog.graph st.catalog s.Protocol.g2 in
  (* the budget is anchored at request receipt: artifact building, solving
     and reply formatting all draw on the same allowance *)
  let budget = budget_for st s in
  let pool = if s.Protocol.sequential then None else st.pool in
  let job () =
    let* tc2, closure_prov =
      Catalog.closure ~budget st.catalog ~name:s.Protocol.g2
        ~hops:s.Protocol.hops
    in
    let* mat, mat_prov =
      Catalog.similarity st.catalog ~g1:s.Protocol.g1 ~g2:s.Protocol.g2
        ~sim:s.Protocol.sim
    in
    let t = Phom.Instance.make ~tc2 ~g1 ~g2 ~mat ~xi:s.Protocol.xi () in
    let cands_prov =
      Catalog.candidates ~budget st.catalog ~instance:t ~g1:s.Protocol.g1
        ~g2:s.Protocol.g2 ~sim:s.Protocol.sim ~hops:s.Protocol.hops
    in
    let r =
      Api.solve_within ~algorithm:s.Protocol.algorithm
        ~partition:s.Protocol.partition ~compress:s.Protocol.compress ~budget
        ?pool s.Protocol.problem t
    in
    (* fast paths can finish between poll points; a final poll makes the
       deadline part of the reply contract, as in the CLI *)
    let status =
      match r.Api.status with
      | Budget.Exhausted _ as st -> st
      | Budget.Complete ->
          if Budget.poll budget then Budget.Complete else Budget.status budget
    in
    ok
      "solve problem=%s quality=%.4f mapped=%d/%d matched=%b status=%s \
       cache=closure:%s,mat:%s,cands:%s"
      (Api.problem_name r.Api.problem)
      r.Api.quality
      (Phom.Mapping.size r.Api.mapping)
      (D.n g1) (Api.matches r) (status_token status)
      (Catalog.provenance_name closure_prov)
      (Catalog.provenance_name mat_prov)
      (Catalog.provenance_name cands_prov)
  in
  (* the request rides the shared pool so the accept loop's own domain does
     not run unbounded solver code; --jobs 1 keeps the historical
     sequential path *)
  match pool with
  | Some p -> Pool.await (Pool.submit p job)
  | None -> job ()

let execute st req =
  st.requests <- st.requests + 1;
  let reply =
    try
      match req with
      | Protocol.Version ->
          ok "phomd %s protocol %d" Version.string Version.protocol
      | Protocol.List -> list_reply st
      | Protocol.Stats -> stats_reply st
      | Protocol.Load_graph { name; path } -> (
          match Catalog.load_graph st.catalog ~name ~path with
          | Ok g -> ok "loaded graph %s nodes=%d edges=%d" name (D.n g) (D.nb_edges g)
          | Error e -> error "%s" e)
      | Protocol.Load_mat { name; path } -> (
          match Catalog.load_mat st.catalog ~name ~path with
          | Ok m ->
              ok "loaded mat %s dims=%dx%d" name (Simmat.n1 m) (Simmat.n2 m)
          | Error e -> error "%s" e)
      | Protocol.Unload name -> (
          match Catalog.unload st.catalog name with
          | Ok artifacts -> ok "unloaded %s artifacts=%d" name artifacts
          | Error e -> error "%s" e)
      | Protocol.Solve s -> solve_reply st s
      | Protocol.Shutdown -> ok "shutting down"
      | Protocol.Quit -> ok "bye"
    with
    | Invalid_argument m | Failure m | Sys_error m -> error "%s" m
  in
  let next =
    match req with
    | Protocol.Shutdown -> `Shutdown
    | Protocol.Quit -> `Quit
    | _ -> `Continue
  in
  (reply, next)

(* ---- the socket loop ---- *)

let listen_unix path =
  (* refuse to clobber a foreign file; replace only a stale socket *)
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> invalid_arg (path ^ ": exists and is not a socket")
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 16;
  (fd, path)

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 16;
  let bound =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (addr, port) ->
        Printf.sprintf "%s:%d" (Unix.string_of_inet_addr addr) port
    | Unix.ADDR_UNIX p -> p
  in
  (fd, bound)

(* serve one connection to completion; returns [`Shutdown] when the peer
   asked the daemon to stop *)
let handle_connection st fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let outcome = ref `Continue in
  (try
     let stop = ref false in
     while not !stop do
       match input_line ic with
       | exception End_of_file -> stop := true
       | line ->
           let line = String.trim line in
           if line <> "" then begin
             let reply, next =
               match Protocol.parse line with
               | Error e -> ("error " ^ e, `Continue)
               | Ok req -> execute st req
             in
             output_string oc reply;
             output_char oc '\n';
             flush oc;
             match next with
             | `Continue -> ()
             | `Quit -> stop := true
             | `Shutdown ->
                 outcome := `Shutdown;
                 stop := true
           end
     done
   with Sys_error _ | Unix.Unix_error _ -> (* peer vanished mid-request *) ());
  (try flush oc with Sys_error _ | Unix.Unix_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  !outcome

let serve ?(ready = fun _ -> ()) config =
  if config.jobs < 1 then invalid_arg "Daemon.serve: jobs must be >= 1";
  if config.socket_path = None && config.tcp_port = None then
    invalid_arg "Daemon.serve: no listener configured (socket or TCP)";
  (* a dying client must not kill the daemon with SIGPIPE; writes then fail
     with EPIPE, which handle_connection absorbs *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let unix_listener = Option.map listen_unix config.socket_path in
  let tcp_listener =
    try Option.map listen_tcp config.tcp_port
    with e ->
      (* don't leak the bound unix socket when the TCP bind fails *)
      Option.iter
        (fun (fd, path) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          try Unix.unlink path with Unix.Unix_error _ -> ())
        unix_listener;
      raise e
  in
  let listeners = List.filter_map Fun.id [ unix_listener; tcp_listener ] in
  let finish () =
    List.iter
      (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ())
      listeners;
    Option.iter
      (fun (_, path) -> try Unix.unlink path with Unix.Unix_error _ -> ())
      unix_listener
  in
  Fun.protect ~finally:finish (fun () ->
      let run pool =
        let st = make_state ?pool config in
        ready (List.map snd listeners);
        let fds = List.map fst listeners in
        let stop = ref false in
        while not !stop do
          match Unix.select fds [] [] (-1.) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | readable, _, _ ->
              List.iter
                (fun lfd ->
                  if not !stop && List.mem lfd readable then
                    match Unix.accept lfd with
                    | exception Unix.Unix_error (_, _, _) -> ()
                    | conn, _ ->
                        if handle_connection st conn = `Shutdown then
                          stop := true)
                fds
        done
      in
      if config.jobs = 1 then run None
      else Pool.with_pool ~domains:config.jobs (fun p -> run (Some p)))
