(* Replica-aware router: consistent-hash placement, per-endpoint circuit
   breakers with health-gated recovery, busy isolation and load replay.
   See router.mli for the contract. *)

type config = {
  vnodes : int;
  failure_threshold : int;
  cooldown : float;
  cooldown_max : float;
  connect_timeout : float option;
  read_timeout : float option;
}

let default_config =
  {
    vnodes = 64;
    failure_threshold = 3;
    cooldown = 0.5;
    cooldown_max = 30.;
    connect_timeout = Some 2.;
    read_timeout = Some 30.;
  }

type transport = string -> string -> (string, string) result

(* ---- the hash ring ---- *)

(* FNV-1a, then a splitmix64-style finalizer: raw FNV of short, similar
   strings ("host:port#3" vnode labels) leaves the high bits — the ones
   ring ordering sorts by — visibly lumpy; the avalanche evens the ring
   out so 5 replicas actually own ~1/5 of the keys each *)
let hash64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  let mix h =
    let h = Int64.logxor h (Int64.shift_right_logical h 33) in
    let h = Int64.mul h 0xff51afd7ed558ccdL in
    let h = Int64.logxor h (Int64.shift_right_logical h 33) in
    let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
    Int64.logxor h (Int64.shift_right_logical h 33)
  in
  mix !h

let solve_key ~g1 ~g2 = g1 ^ "\x00" ^ g2

(* ring points: (point hash, endpoint index), sorted unsigned so the ring
   wraps exactly like the 64-bit key space does *)
let build_ring ~vnodes names =
  let n = Array.length names in
  let ring = Array.make (n * vnodes) (0L, 0) in
  for i = 0 to n - 1 do
    for v = 0 to vnodes - 1 do
      ring.((i * vnodes) + v) <-
        (hash64 (Printf.sprintf "%s#%d" names.(i) v), i)
    done
  done;
  Array.sort
    (fun (a, ia) (b, ib) ->
      match Int64.unsigned_compare a b with 0 -> compare ia ib | c -> c)
    ring;
  ring

(* walk the ring clockwise from the key's successor, collecting each
   endpoint the first time one of its vnodes appears: the full preference
   order, of which element 0 is the owner *)
let place_on ~ring ~names key =
  let n = Array.length ring in
  let m = Array.length names in
  if n = 0 then []
  else begin
    let h = hash64 key in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Int64.unsigned_compare (fst ring.(mid)) h < 0 then lo := mid + 1
      else hi := mid
    done;
    let start = if !lo = n then 0 else !lo in
    let seen = Array.make m false in
    let order = ref [] in
    let collected = ref 0 in
    let i = ref 0 in
    while !collected < m && !i < n do
      let _, idx = ring.((start + !i) mod n) in
      if not seen.(idx) then begin
        seen.(idx) <- true;
        order := names.(idx) :: !order;
        incr collected
      end;
      incr i
    done;
    List.rev !order
  end

let owner ?vnodes ~endpoints ~key () =
  let vnodes = Option.value vnodes ~default:default_config.vnodes in
  let names = Array.of_list endpoints in
  match place_on ~ring:(build_ring ~vnodes names) ~names key with
  | first :: _ -> Some first
  | [] -> None

(* ---- endpoint state ---- *)

type breaker = Closed | Open | Half_open

type ep = {
  name : string;
  mutable failures : int;  (* consecutive connection-level failures *)
  mutable tripped : bool;  (* breaker open *)
  mutable opened_at : float;
  mutable cooldown : float;  (* current open cooldown *)
  mutable trips : int;  (* lifetime trips; drives the backoff exponent *)
  mutable not_before : float;  (* busy gate: the replica's own hint *)
}

type t = {
  config : config;
  names : string array;  (* creation order *)
  ring : (int64 * int) array;
  eps : (string, ep) Hashtbl.t;
  transport : transport;
  now : unit -> float;
  sleep : float -> unit;
  lock : Mutex.t;
  (* the replay log: successful load lines (one per name) and edit lines
     (in arrival order, each pinned to its post-edit CRC), replayed to a
     recovering replica before its breaker closes *)
  mutable loads : (string * string) list;
  mutable failovers : int;
  mutable breaker_trips : int;
  mutable replays : int;
  mutable replays_refused : int;
  mutable mismatches : int;
}

let dial table connect_timeout read_timeout name line =
  match Hashtbl.find_opt table name with
  | None -> Error (name ^ ": unknown endpoint")
  | Some sockaddr -> (
      match Client.connect ?timeout:connect_timeout sockaddr with
      | Error _ as e -> e
      | Ok conn ->
          let r = Client.send ?timeout:read_timeout conn line in
          Client.close conn;
          r)

let create ?(config = default_config) ?transport ?(now = Unix.gettimeofday)
    ?(sleep = Unix.sleepf) ~endpoints () =
  if endpoints = [] then Error "router: no endpoints"
  else if config.vnodes < 1 then Error "router: vnodes must be >= 1"
  else if config.failure_threshold < 1 then
    Error "router: failure threshold must be >= 1"
  else if List.length (List.sort_uniq compare endpoints) <> List.length endpoints
  then Error "router: duplicate endpoint"
  else
    (* endpoint strings are only resolved when the router dials them
       itself; an injected transport treats them as opaque labels *)
    let transport_result =
      match transport with
      | Some f -> Ok f
      | None ->
          let table = Hashtbl.create 8 in
          let rec parse = function
            | [] -> Ok (dial table config.connect_timeout config.read_timeout)
            | e :: rest -> (
                match Client.sockaddr_of_string e with
                | Error _ as err -> err
                | Ok sa ->
                    Hashtbl.replace table e sa;
                    parse rest)
          in
          parse endpoints
    in
    match transport_result with
    | Error _ as e -> e
    | Ok transport ->
        let names = Array.of_list endpoints in
        let eps = Hashtbl.create 8 in
        Array.iter
          (fun name ->
            Hashtbl.replace eps name
              {
                name;
                failures = 0;
                tripped = false;
                opened_at = 0.;
                cooldown = config.cooldown;
                trips = 0;
                not_before = 0.;
              })
          names;
        Ok
          {
            config;
            names;
            ring = build_ring ~vnodes:config.vnodes names;
            eps;
            transport;
            now;
            sleep;
            lock = Mutex.create ();
            loads = [];
            failovers = 0;
            breaker_trips = 0;
            replays = 0;
            replays_refused = 0;
            mismatches = 0;
          }

let endpoints t = Array.to_list t.names
let place t ~key = place_on ~ring:t.ring ~names:t.names key

let find_ep t name =
  match Hashtbl.find_opt t.eps name with
  | Some ep -> ep
  | None -> invalid_arg ("Router: unknown endpoint " ^ name)

let ep_breaker t ep =
  if not ep.tripped then Closed
  else if t.now () -. ep.opened_at >= ep.cooldown then Half_open
  else Open

(* ---- breaker transitions ---- *)

let trip t ep =
  ep.tripped <- true;
  ep.opened_at <- t.now ();
  ep.trips <- ep.trips + 1;
  t.breaker_trips <- t.breaker_trips + 1;
  ep.cooldown <-
    Float.min t.config.cooldown_max
      (t.config.cooldown *. (2. ** float_of_int (ep.trips - 1)))

let record_failure t ep =
  ep.failures <- ep.failures + 1;
  if ep.tripped then trip t ep (* a failed half-open probe re-arms the open *)
  else if ep.failures >= t.config.failure_threshold then trip t ep

let record_success ep = ep.failures <- 0

let close_breaker ep =
  ep.tripped <- false;
  ep.failures <- 0

(* ---- reply classification ---- *)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  m = 0 || go 0

(* a drain-aborted solve: the replica gave up because it is going down,
   not because the budget was honestly spent — never an answer *)
let is_drain_abort reply = contains reply "status=exhausted(cancelled)"

let is_healthy reply =
  has_prefix "ok health " reply
  && (contains reply "state=ready" || contains reply "state=degraded")

(* ---- recovery: half-open probe + load replay ---- *)

(* returns true iff the endpoint is back in service (breaker closed) *)
let probe_and_recover t ep =
  match t.transport ep.name "health" with
  | Ok reply when is_healthy reply ->
      let rec replay = function
        | [] ->
            close_breaker ep;
            true
        | (_name, line) :: rest -> (
            match t.transport ep.name line with
            | Error _ ->
                record_failure t ep;
                false
            | Ok r ->
                if has_prefix "error" r then
                  (* the file changed while the replica was down; the
                     content-CRC load refused it — the replica rejoins
                     without that name rather than serving drifted data *)
                  t.replays_refused <- t.replays_refused + 1
                else t.replays <- t.replays + 1;
                replay rest)
      in
      replay t.loads
  | Ok _ | Error _ ->
      record_failure t ep;
      false

(* ---- keyed requests with failover ---- *)

type outcome =
  | Reply of string
  | Gated of float  (* busy: retry this endpoint after the given time *)
  | Unavailable  (* breaker open, cooldown running *)
  | Failed of string  (* connection-level failure *)

let try_send t ep line ~cancellable =
  match t.transport ep.name line with
  | Error e ->
      record_failure t ep;
      Failed e
  | Ok reply -> (
      match Client.retry_after_hint reply with
      | Some hint ->
          (* an overloaded replica is not a broken one: gate it out for
             exactly the span it asked for, and count the reply as contact *)
          record_success ep;
          ep.not_before <- t.now () +. Float.max 0. hint;
          Gated ep.not_before
      | None ->
          if cancellable && is_drain_abort reply then begin
            (* the replica is draining; it tripped the budget itself and
               the "answer" is whatever it had when the axe fell *)
            record_failure t ep;
            Failed ("replica draining: " ^ reply)
          end
          else begin
            record_success ep;
            Reply reply
          end)

let attempt t ep line ~cancellable =
  match ep_breaker t ep with
  | Open -> Unavailable
  | Half_open ->
      if probe_and_recover t ep then try_send t ep line ~cancellable
      else Unavailable
  | Closed ->
      if t.now () < ep.not_before then Gated ep.not_before
      else try_send t ep line ~cancellable

let keyed t line ~key ~cancellable =
  let order = place t ~key in
  let max_rounds = 3 in
  let rec round r =
    let gate = ref infinity in
    let last_fail = ref None in
    let rec walk idx = function
      | [] -> None
      | name :: rest -> (
          let ep = find_ep t name in
          match attempt t ep line ~cancellable with
          | Reply reply ->
              if idx > 0 then t.failovers <- t.failovers + 1;
              Some reply
          | Gated at ->
              gate := Float.min !gate at;
              walk (idx + 1) rest
          | Unavailable -> walk (idx + 1) rest
          | Failed e ->
              last_fail := Some e;
              walk (idx + 1) rest)
    in
    match walk 0 order with
    | Some reply -> Ok reply
    | None ->
        if r + 1 >= max_rounds then
          Error
            (match !last_fail with
            | Some e -> e
            | None -> "router: all endpoints unavailable")
        else begin
          (* nothing answered this round: honor the earliest busy gate (or
             take a short breath before re-probing downed replicas) *)
          let now = t.now () in
          let pause =
            if !gate < infinity && !gate > now then !gate -. now else 0.05
          in
          t.sleep pause;
          round (r + 1)
        end
  in
  round 0

(* ---- broadcasts: load / unload / shutdown ---- *)

let broadcast t line ~track =
  let ok_reply = ref None in
  let err_reply = ref None in
  let conn_err = ref None in
  Array.iter
    (fun name ->
      let ep = find_ep t name in
      let reachable =
        match ep_breaker t ep with
        | Closed -> true
        | Half_open -> probe_and_recover t ep
        | Open -> false (* it will catch up through the replay log *)
      in
      if reachable then
        match t.transport ep.name line with
        | Error e ->
            record_failure t ep;
            if !conn_err = None then conn_err := Some e
        | Ok reply ->
            record_success ep;
            if has_prefix "ok" reply then begin
              (match !ok_reply with
              | Some prev when prev <> reply ->
                  (* replicas disagree about the same broadcast: the
                     divergence canary a fleet operator alarms on *)
                  t.mismatches <- t.mismatches + 1
              | _ -> ());
              if !ok_reply = None then ok_reply := Some reply
            end
            else if !err_reply = None then err_reply := Some reply)
    t.names;
  (match (track, !ok_reply) with
  | `Load name, Some _ ->
      t.loads <-
        List.filter (fun (n, _) -> n <> name) t.loads @ [ (name, line) ]
  | `Unload name, Some _ ->
      t.loads <- List.filter (fun (n, _) -> n <> name) t.loads
  | `Edit (e : Protocol.edit), Some reply ->
      (* re-derive the replay line from the reply's crc= token rather than
         recording the client's line verbatim: pinned to the post-edit
         signature, re-delivery during recovery converges (a replica that
         already carries the edit acknowledges it as a no-op) instead of
         double-applying *)
      let crc =
        let marker = " crc=" in
        let n = String.length reply and m = String.length marker in
        let rec find i =
          if i + m > n then None
          else if String.sub reply i m = marker then
            let stop = ref (i + m) in
            while !stop < n && reply.[!stop] <> ' ' do incr stop done;
            Some (String.sub reply (i + m) (!stop - i - m))
          else find (i + 1)
        in
        find 0
      in
      Option.iter
        (fun crc ->
          let verb = match e.op with `Add -> "addedge" | `Del -> "deledge" in
          t.loads <-
            t.loads
            @ [
                ( e.Protocol.name,
                  Printf.sprintf "%s %s %d %d --crc %s" verb e.Protocol.name
                    e.Protocol.v e.Protocol.w crc );
              ])
        crc
  | (`Load _ | `Unload _ | `Edit _ | `None), _ -> ());
  match (!ok_reply, !err_reply, !conn_err) with
  | Some r, _, _ -> Ok r
  | None, Some r, _ -> Ok r
  | None, None, Some e -> Error e
  | None, None, None -> Error "router: all endpoints unavailable"

(* ---- the front door ---- *)

let request t line =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match Protocol.parse line with
      | Ok (Protocol.Solve s) ->
          keyed t line
            ~key:(solve_key ~g1:s.Protocol.g1 ~g2:s.Protocol.g2)
            ~cancellable:true
      | Ok (Protocol.Count c) ->
          keyed t line
            ~key:(solve_key ~g1:c.Protocol.g1 ~g2:c.Protocol.g2)
            ~cancellable:true
      | Ok (Protocol.Load_graph { name; _ } | Protocol.Load_mat { name; _ })
        ->
          broadcast t line ~track:(`Load name)
      | Ok (Protocol.Unload name) -> broadcast t line ~track:(`Unload name)
      | Ok (Protocol.Edit e) ->
          (* an edit is a mutation like load/unload: every replica must
             apply it, and a recovering replica replays it (CRC-pinned)
             after its loads *)
          broadcast t line ~track:(`Edit e)
      | Ok Protocol.Shutdown -> broadcast t line ~track:`None
      | Ok
          ( Protocol.Version | Protocol.Ping | Protocol.Health | Protocol.List
          | Protocol.Stats | Protocol.Quit )
      | Error _ ->
          (* probes and even unparseable lines still deserve a daemon's
             answer (the canonical error message comes from the server);
             key them by their own text so they spread across the fleet *)
          keyed t line ~key:line ~cancellable:false)

let breaker_state t name =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> ep_breaker t (find_ep t name))

let failovers t = t.failovers
let breaker_trips t = t.breaker_trips
let replays t = t.replays
let replays_refused t = t.replays_refused
let mismatches t = t.mismatches
