(** Deterministic socket fault injection for the daemon and its client.

    Modeled on {!Phom_graph.Budget.trip_after}: a test arms an injection
    that lets the first [after] operations of a kind pass through untouched
    and perturbs the next one, so a failure can be planted at an exact
    point of the request lifecycle and the run is reproducible. All daemon
    and client socket I/O goes through {!read}, {!write} and {!accept};
    with nothing armed they are exactly the [Unix] calls.

    The registry is a process-wide, mutex-protected plan so tests can arm
    faults from the test domain while the daemon loop runs in another.
    Production code never arms anything. *)

type op =
  | Read
  | Write
  | Accept
  | Fwrite  (** durable-state file writes (snapshots, journal appends) *)

type kind = Unix_sock | Tcp
(** The transport a connection was accepted on (or a listener serves).
    Every daemon socket operation reports its kind, so injections can be
    scoped to one listener's traffic. *)

type scope =
  | Any  (** fire on either transport (the historical behavior) *)
  | Only of kind
      (** count and fire only on operations of this transport — a fault
          planted on the TCP listener leaves the Unix path untouched, and
          vice versa *)

type action =
  | Short  (** truncate the transfer to a single byte *)
  | Torn
      (** {!Fwrite} only: write a prefix, silently drop the rest, and
          report the full length — the torn page a [kill -9] between
          writes leaves behind. On socket ops it behaves like [Short]. *)
  | Eintr  (** fail once with [EINTR] (callers must retry) *)
  | Fail of Unix.error
      (** fail once with this error ([Fail Unix.ENOSPC] on {!Fwrite}
          models a full disk mid-snapshot) *)
  | Disconnect
      (** the peer vanishes politely: reads see EOF, writes fail with
          [EPIPE], accepts fail with [ECONNABORTED] *)
  | Reset
      (** the peer vanishes rudely (a [kill -9]'d replica): reads and
          writes fail with [ECONNRESET] — planted on a {!Write} this is a
          mid-reply connection reset *)

val inject : ?scope:scope -> op -> after:int -> action -> unit
(** [inject op ~after:n act] lets the next [n] operations of kind [op]
    (within [scope], default [Any]) proceed normally and applies [act] to
    the one after, consuming the injection. Several injections may be
    armed at once; each counts down independently from its arming point.

    @raise Invalid_argument if [after < 0]. *)

val clear : unit -> unit
(** Disarm every pending injection, hook, delay and health flap. *)

val armed : unit -> int
(** Injections not yet fired — lets a test assert its whole plan ran. *)

val read : ?kind:kind -> Unix.file_descr -> bytes -> int -> int -> int
val write : ?kind:kind -> Unix.file_descr -> bytes -> int -> int -> int
val accept : ?kind:kind -> Unix.file_descr -> Unix.file_descr * Unix.sockaddr

val fwrite : Unix.file_descr -> bytes -> int -> int -> int
(** The durable-state write seam: {!Persist} and {!Journal} push every
    byte through here, so tests can plant a torn write, a short write or
    an [ENOSPC] at an exact record boundary and prove recovery quarantines
    (never loads) the damage. *)

(** {1 Request-level seams}

    Socket faults exercise the I/O layer; these reach inside request
    execution itself. *)

val set_execute_hook : (unit -> unit) option -> unit
(** Arm a thunk run at the top of every {!Daemon.execute} dispatch, inside
    its exception guard — a hook that raises proves an arbitrary handler
    exception becomes an opaque [error internal] reply. *)

val execute_hook : unit -> unit
(** Run the armed hook, if any. Called by the daemon; a no-op otherwise. *)

val set_solve_delay : float -> unit
(** Arm a sleep executed at the start of every solve job (before any
    artifact is built), so tests and the smoke scripts can hold a solve
    in flight long enough to disconnect, stall or signal the daemon
    mid-request. [0.] (the default) disarms. *)

val solve_delay : unit -> unit
(** Sleep the armed delay, if any. Called inside the solve job. *)

val set_health_flap : int -> unit
(** Make the next [n] [health] requests answer [error unavailable] instead
    of the real health report — a flapping replica, as seen by a router's
    circuit breaker. The daemon consumes one flap per health dispatch;
    [0] disarms. *)

val health_flap : unit -> bool
(** Consume one armed flap ([true] = this health request must flap).
    Called by the daemon's dispatch; [false] when nothing is armed. *)
