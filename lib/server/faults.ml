type op = Read | Write | Accept | Fwrite

type action =
  | Short
  | Torn
  | Eintr
  | Fail of Unix.error
  | Disconnect

type entry = { op : op; mutable countdown : int; action : action }

(* the plan is shared between the test domain (arming) and the daemon loop
   (firing); one mutex keeps the counters exact *)
let lock = Mutex.create ()
let plan : entry list ref = ref []
let hook : (unit -> unit) option ref = ref None
let delay = Atomic.make 0.

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let inject op ~after action =
  if after < 0 then invalid_arg "Faults.inject: negative trip point";
  locked (fun () -> plan := !plan @ [ { op; countdown = after; action } ])

let clear () =
  locked (fun () ->
      plan := [];
      hook := None);
  Atomic.set delay 0.

let armed () = locked (fun () -> List.length !plan)

(* count one operation of kind [op] against every matching injection and
   return the action of the first one that fires, consuming it *)
let fire op =
  locked (fun () ->
      let fired = ref None in
      plan :=
        List.filter
          (fun e ->
            if e.op <> op then true
            else if e.countdown > 0 then begin
              e.countdown <- e.countdown - 1;
              true
            end
            else if !fired = None then begin
              fired := Some e.action;
              false
            end
            else true)
          !plan;
      !fired)

let read fd buf pos len =
  match fire Read with
  | None -> Unix.read fd buf pos len
  | Some (Short | Torn) -> Unix.read fd buf pos (min 1 len)
  | Some Eintr -> raise (Unix.Unix_error (Unix.EINTR, "read", ""))
  | Some (Fail e) -> raise (Unix.Unix_error (e, "read", ""))
  | Some Disconnect -> 0

let write fd buf pos len =
  match fire Write with
  | None -> Unix.write fd buf pos len
  | Some (Short | Torn) -> Unix.write fd buf pos (min 1 len)
  | Some Eintr -> raise (Unix.Unix_error (Unix.EINTR, "write", ""))
  | Some (Fail e) -> raise (Unix.Unix_error (e, "write", ""))
  | Some Disconnect -> raise (Unix.Unix_error (Unix.EPIPE, "write", ""))

let accept fd =
  match fire Accept with
  | None -> Unix.accept fd
  | Some (Short | Torn | Eintr) ->
      raise (Unix.Unix_error (Unix.EINTR, "accept", ""))
  | Some (Fail e) -> raise (Unix.Unix_error (e, "accept", ""))
  | Some Disconnect -> raise (Unix.Unix_error (Unix.ECONNABORTED, "accept", ""))

let fwrite fd buf pos len =
  match fire Fwrite with
  | None -> Unix.write fd buf pos len
  | Some Short -> Unix.write fd buf pos (min 1 len)
  | Some Torn ->
      (* a crash-consistent tear: a prefix reaches the file, the rest is
         silently dropped while the caller believes the write completed —
         what a kill -9 between page writes leaves behind *)
      let k = max 1 (len / 2) in
      ignore (Unix.write fd buf pos k);
      len
  | Some Eintr -> raise (Unix.Unix_error (Unix.EINTR, "write", ""))
  | Some (Fail e) -> raise (Unix.Unix_error (e, "write", ""))
  | Some Disconnect -> raise (Unix.Unix_error (Unix.EPIPE, "write", ""))

let set_execute_hook h = locked (fun () -> hook := h)

let execute_hook () =
  match locked (fun () -> !hook) with None -> () | Some h -> h ()

let set_solve_delay s = Atomic.set delay (if s > 0. then s else 0.)

let solve_delay () =
  let s = Atomic.get delay in
  if s > 0. then Unix.sleepf s
