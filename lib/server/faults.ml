type op = Read | Write | Accept | Fwrite
type kind = Unix_sock | Tcp
type scope = Any | Only of kind

type action =
  | Short
  | Torn
  | Eintr
  | Fail of Unix.error
  | Disconnect
  | Reset

type entry = { op : op; scope : scope; mutable countdown : int; action : action }

(* the plan is shared between the test domain (arming) and the daemon loop
   (firing); one mutex keeps the counters exact *)
let lock = Mutex.create ()
let plan : entry list ref = ref []
let hook : (unit -> unit) option ref = ref None
let delay = Atomic.make 0.
let health_flaps = Atomic.make 0

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let inject ?(scope = Any) op ~after action =
  if after < 0 then invalid_arg "Faults.inject: negative trip point";
  locked (fun () -> plan := !plan @ [ { op; scope; countdown = after; action } ])

let clear () =
  locked (fun () ->
      plan := [];
      hook := None);
  Atomic.set delay 0.;
  Atomic.set health_flaps 0

let armed () = locked (fun () -> List.length !plan)

(* count one operation of kind [op] on a listener/connection of transport
   [kind] against every matching injection and return the action of the
   first one that fires, consuming it. A [Only k] scope only counts (and
   only fires on) operations of that transport, so a fault planted on the
   TCP listener leaves the Unix path untouched. *)
let fire ?(kind = Unix_sock) op =
  locked (fun () ->
      let matches e =
        e.op = op && match e.scope with Any -> true | Only k -> k = kind
      in
      let fired = ref None in
      plan :=
        List.filter
          (fun e ->
            if not (matches e) then true
            else if e.countdown > 0 then begin
              e.countdown <- e.countdown - 1;
              true
            end
            else if !fired = None then begin
              fired := Some e.action;
              false
            end
            else true)
          !plan;
      !fired)

let read ?kind fd buf pos len =
  match fire ?kind Read with
  | None -> Unix.read fd buf pos len
  | Some (Short | Torn) -> Unix.read fd buf pos (min 1 len)
  | Some Eintr -> raise (Unix.Unix_error (Unix.EINTR, "read", ""))
  | Some (Fail e) -> raise (Unix.Unix_error (e, "read", ""))
  | Some Disconnect -> 0
  | Some Reset -> raise (Unix.Unix_error (Unix.ECONNRESET, "read", ""))

let write ?kind fd buf pos len =
  match fire ?kind Write with
  | None -> Unix.write fd buf pos len
  | Some (Short | Torn) -> Unix.write fd buf pos (min 1 len)
  | Some Eintr -> raise (Unix.Unix_error (Unix.EINTR, "write", ""))
  | Some (Fail e) -> raise (Unix.Unix_error (e, "write", ""))
  | Some Disconnect -> raise (Unix.Unix_error (Unix.EPIPE, "write", ""))
  | Some Reset -> raise (Unix.Unix_error (Unix.ECONNRESET, "write", ""))

let accept ?kind fd =
  match fire ?kind Accept with
  | None -> Unix.accept fd
  | Some (Short | Torn | Eintr) ->
      raise (Unix.Unix_error (Unix.EINTR, "accept", ""))
  | Some (Fail e) -> raise (Unix.Unix_error (e, "accept", ""))
  | Some (Disconnect | Reset) ->
      raise (Unix.Unix_error (Unix.ECONNABORTED, "accept", ""))

let fwrite fd buf pos len =
  match fire Fwrite with
  | None -> Unix.write fd buf pos len
  | Some Short -> Unix.write fd buf pos (min 1 len)
  | Some Torn ->
      (* a crash-consistent tear: a prefix reaches the file, the rest is
         silently dropped while the caller believes the write completed —
         what a kill -9 between page writes leaves behind *)
      let k = max 1 (len / 2) in
      ignore (Unix.write fd buf pos k);
      len
  | Some Eintr -> raise (Unix.Unix_error (Unix.EINTR, "write", ""))
  | Some (Fail e) -> raise (Unix.Unix_error (e, "write", ""))
  | Some (Disconnect | Reset) ->
      raise (Unix.Unix_error (Unix.EPIPE, "write", ""))

let set_execute_hook h = locked (fun () -> hook := h)

let execute_hook () =
  match locked (fun () -> !hook) with None -> () | Some h -> h ()

let set_solve_delay s = Atomic.set delay (if s > 0. then s else 0.)

let solve_delay () =
  let s = Atomic.get delay in
  if s > 0. then Unix.sleepf s

let set_health_flap n = Atomic.set health_flaps (max 0 n)

let health_flap () =
  let rec go () =
    let v = Atomic.get health_flaps in
    if v <= 0 then false
    else if Atomic.compare_and_set health_flaps v (v - 1) then true
    else go ()
  in
  go ()
