(** Replica-aware request router: the client half of the fault-tolerant
    fleet tier.

    A fleet is a static set of phomd replicas, each listening on TCP
    ({!Daemon.config}[.listen]) with the same data loaded. The router owns
    the three client-side concerns that make such a fleet usable:

    {ul
    {- {b Placement.} Every [solve]/[count] names a [(g1, g2)] pair; the
       pair is placed on the ring of replicas by consistent hashing
       (FNV-1a over [g1 ^ "\x00" ^ g2], {!default_config}[.vnodes] virtual
       nodes per replica), so repeated queries for the same pair land on
       the same replica and reuse its warm artifact cache. Adding or
       removing one replica moves only the keys adjacent to its vnodes —
       the rest of the fleet's caches stay warm.}
    {- {b Health-gated failover.} Each endpoint has a circuit breaker:
       {!default_config}[.failure_threshold] consecutive connection-level
       failures open it, and an open breaker removes the replica from
       every placement until its cooldown (exponential, capped) elapses.
       The next request then half-opens it with a [health] probe; a
       [ready]/[degraded] reply closes the breaker (after load replay,
       below), anything else re-opens it with a doubled cooldown.
       Idempotent requests — [solve], [count], and every probe verb —
       fail over to the next replica in preference order; a reply of
       [status=exhausted(cancelled)] (the server-side drain abort) is
       treated as a failure of that replica, not an answer, and the
       request re-runs elsewhere.}
    {- {b Busy isolation.} A replica answering
       [error busy retry-after=<s>] is gated out of placements for [s]
       seconds — its own hint, honored independently per endpoint — while
       the request immediately fails over. Only when {e every} candidate
       is gated does the router sleep until the earliest gate expires.}}

    [load]/[unload] are not keyed: they broadcast to every reachable
    replica so the fleet stays content-identical, and successful loads are
    recorded in a replay log. When a breaker closes, the log is replayed
    to the recovered replica before it rejoins placements; the daemon's
    content-CRC idempotent load makes the replay a no-op on a durable
    replica that already has the data, and refuses (rather than silently
    reloads) a file whose content changed — counted in {!replays_refused}.

    The router is deliberately connection-per-request (like
    {!Client.request}) and mutex-protected, so one instance can be shared
    across domains. *)

type t

type config = {
  vnodes : int;  (** virtual nodes per endpoint on the hash ring *)
  failure_threshold : int;
      (** consecutive connection-level failures that open a breaker *)
  cooldown : float;
      (** seconds an open breaker blocks its endpoint before the first
          half-open probe; doubles on every re-trip *)
  cooldown_max : float;  (** cap on the exponential cooldown *)
  connect_timeout : float option;
  read_timeout : float option;
}

val default_config : config
(** 64 vnodes, threshold 3, 0.5 s cooldown capped at 30 s, 2 s connect
    timeout, 30 s read timeout. *)

type transport = string -> string -> (string, string) result
(** [transport endpoint line] performs one request round-trip. The default
    dials the endpoint with {!Client.connect}/{!Client.send}; tests inject
    a fake to script failure schedules without sockets. [Error] means the
    transport failed (refused, reset, timed out) — an [error ...] reply
    from a live daemon is an {e answer} and arrives as [Ok]. *)

val create :
  ?config:config ->
  ?transport:transport ->
  ?now:(unit -> float) ->
  ?sleep:(float -> unit) ->
  endpoints:string list ->
  unit ->
  (t, string) result
(** Build a router over a static endpoint set ([HOST:PORT] or Unix socket
    paths, as {!Client.sockaddr_of_string} accepts). Fails on an empty or
    duplicated set, or an endpoint that does not parse. [now]/[sleep]
    default to the real clock; tests inject virtual time. *)

val request : t -> string -> (string, string) result
(** Route one request line and return the daemon's one-line reply.
    [solve]/[count] go to the owner of their [(g1, g2)] key (then fail
    over along the preference order); [load]/[unload]/[shutdown] broadcast;
    everything else — probes, [version], [list], an unparseable line — goes
    to any healthy replica. [Error] only when no replica could answer. *)

(** {1 Placement} *)

val hash64 : string -> int64
(** FNV-1a 64-bit — the ring's hash, exposed so tests can pin placements. *)

val solve_key : g1:string -> g2:string -> string
(** The placement key of a [(g1, g2)] pair: [g1 ^ "\x00" ^ g2] (the
    separator cannot occur in catalog names). *)

val place : t -> key:string -> string list
(** Every endpoint in preference order for [key] (ignores breaker state —
    this is the static ring order; [request] applies health gating). *)

val owner :
  ?vnodes:int -> endpoints:string list -> key:string -> unit -> string option
(** First preference for [key] over a bare endpoint list, without building
    a router — lets tests and the chaos harness predict placements. Uses
    {!default_config}[.vnodes] unless overridden. *)

(** {1 Introspection} *)

type breaker = Closed | Open | Half_open
(** [Half_open] = open with an elapsed cooldown: the next request through
    this endpoint starts with a [health] probe. *)

val breaker_state : t -> string -> breaker
(** @raise Invalid_argument on an unknown endpoint. *)

val endpoints : t -> string list
(** The configured endpoints, in creation order. *)

val failovers : t -> int
(** Requests answered by an endpoint other than their first preference. *)

val breaker_trips : t -> int
(** Times any breaker transitioned to [Open] (including re-trips). *)

val replays : t -> int
(** Load lines successfully replayed to recovering replicas. *)

val replays_refused : t -> int
(** Replayed load lines the replica refused — a source file whose content
    changed while the replica was down; the replica rejoins but is missing
    that name, never serving silently-different data. *)

val mismatches : t -> int
(** Broadcast requests whose [ok] replies disagreed across replicas — a
    divergence canary. *)
