let sockaddr_of_string addr =
  match String.rindex_opt addr ':' with
  | Some i
    when i < String.length addr - 1
         && String.for_all
              (function '0' .. '9' -> true | _ -> false)
              (String.sub addr (i + 1) (String.length addr - i - 1)) -> (
      let host = String.sub addr 0 i in
      let port = int_of_string (String.sub addr (i + 1) (String.length addr - i - 1)) in
      if port > 65535 then Error (Printf.sprintf "%s: port out of range" addr)
      else
        match Unix.inet_addr_of_string host with
        | ip -> Ok (Unix.ADDR_INET (ip, port))
        | exception Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } ->
                Error (Printf.sprintf "%s: no address for host %s" addr host)
            | h -> Ok (Unix.ADDR_INET (h.Unix.h_addr_list.(0), port))
            | exception Not_found ->
                Error (Printf.sprintf "%s: unknown host %s" addr host)))
  | _ -> Ok (Unix.ADDR_UNIX addr)

(* raw descriptor plus bytes read past the last returned line; channels
   would buffer invisibly and defeat the read deadline *)
type conn = { fd : Unix.file_descr; mutable pending : string }

let describe_sockaddr = function
  | Unix.ADDR_UNIX p -> p
  | Unix.ADDR_INET (ip, port) ->
      Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port

let rec restart f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart f

let connect ?timeout sockaddr =
  (* a daemon that sheds us can close before our request lands; the write
     must come back as EPIPE (an Error), not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let domain = Unix.domain_of_sockaddr sockaddr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  let fail e =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot connect to %s: %s" (describe_sockaddr sockaddr)
         (Unix.error_message e))
  in
  let finish_ok () =
    (* one-line requests and replies: flush segments immediately on TCP
       instead of waiting out Nagle against the peer's delayed ACK *)
    (match sockaddr with
    | Unix.ADDR_INET _ -> (
        try Unix.setsockopt fd Unix.TCP_NODELAY true
        with Unix.Unix_error _ | Invalid_argument _ -> ())
    | Unix.ADDR_UNIX _ -> ());
    Ok { fd; pending = "" }
  in
  (* Once a TCP connect has been interrupted or returned EINPROGRESS, the
     kernel keeps establishing it in the background; re-calling
     [Unix.connect] then yields EALREADY (or a spurious EISCONN), so the
     only correct resumption is to wait for writability and read SO_ERROR.
     [deadline] is absolute: EINTR restarts must not extend the budget. *)
  let await_established deadline =
    let rec go () =
      let left =
        match deadline with None -> 1.0 | Some d -> d -. Unix.gettimeofday ()
      in
      if left <= 0. then begin
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error
          (Printf.sprintf "cannot connect to %s: timed out after %gs"
             (describe_sockaddr sockaddr)
             (Option.value timeout ~default:0.))
      end
      else
        match Unix.select [] [ fd ] [] left with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | _, [ _ ], _ -> (
            match Unix.getsockopt_error fd with
            | None ->
                Unix.clear_nonblock fd;
                finish_ok ()
            | Some e -> fail e)
        | _ ->
            (* select timed out; without a caller deadline, keep waiting *)
            go ()
    in
    go ()
  in
  match sockaddr with
  | Unix.ADDR_INET _ -> (
      (* TCP: always connect non-blocking — it is the only shape in which
         a timeout can bound [Unix.connect] itself (a SYN to a dead host
         blocks for minutes otherwise); without a timeout the wait is
         unbounded but still interrupt-safe *)
      let deadline = Option.map (fun t -> Unix.gettimeofday () +. t) timeout in
      Unix.set_nonblock fd;
      match Unix.connect fd sockaddr with
      | () ->
          Unix.clear_nonblock fd;
          finish_ok ()
      | exception
          Unix.Unix_error
            ( ( Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR
              | Unix.EALREADY ),
              _,
              _ ) ->
          await_established deadline
      | exception Unix.Unix_error (Unix.EISCONN, _, _) ->
          Unix.clear_nonblock fd;
          finish_ok ()
      | exception Unix.Unix_error (e, _, _) -> fail e)
  | Unix.ADDR_UNIX _ -> (
      (* Unix sockets establish synchronously (EAGAIN here means a full
         backlog, not a connect in progress), so the blocking shape is
         correct; a timeout still rides the non-blocking + select path *)
      match timeout with
      | None -> (
          match restart (fun () -> Unix.connect fd sockaddr) with
          | () -> finish_ok ()
          | exception Unix.Unix_error (Unix.EISCONN, _, _) ->
              (* an EINTR'd connect that completed behind our back *)
              finish_ok ()
          | exception Unix.Unix_error (e, _, _) -> fail e)
      | Some t -> (
          let deadline = Some (Unix.gettimeofday () +. t) in
          Unix.set_nonblock fd;
          match Unix.connect fd sockaddr with
          | () ->
              Unix.clear_nonblock fd;
              finish_ok ()
          | exception
              Unix.Unix_error
                ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
              await_established deadline
          | exception Unix.Unix_error (e, _, _) -> fail e))

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go pos =
    if pos >= n then Ok ()
    else
      match Unix.write fd b pos (n - pos) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ignore (restart (fun () -> Unix.select [] [ fd ] [] 1.0));
          go pos
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | k -> go (pos + k)
  in
  go 0

let post conn line = write_all conn.fd (line ^ "\n")

let receive_line ?timeout conn =
  let deadline = Option.map (fun t -> Unix.gettimeofday () +. t) timeout in
  let buf = Bytes.create 4096 in
  let take_line s =
    match String.index_opt s '\n' with
    | None ->
        conn.pending <- s;
        None
    | Some i ->
        conn.pending <- String.sub s (i + 1) (String.length s - i - 1);
        let l = String.sub s 0 i in
        Some
          (if l <> "" && l.[String.length l - 1] = '\r' then
             String.sub l 0 (String.length l - 1)
           else l)
  in
  let rec go s =
    match take_line s with
    | Some l -> Ok l
    | None -> (
        let wait =
          match deadline with
          | None -> Ok ()
          | Some d -> (
              let left = d -. Unix.gettimeofday () in
              if left <= 0. then Error "timed out waiting for reply"
              else
                match restart (fun () -> Unix.select [ conn.fd ] [] [] left) with
                | [ _ ], _, _ -> Ok ()
                | _ -> Error "timed out waiting for reply")
        in
        match wait with
        | Error _ as e -> e
        | Ok () -> (
            match Unix.read conn.fd buf 0 4096 with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go s
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
              ->
                go s
            | exception Unix.Unix_error (e, _, _) ->
                Error (Unix.error_message e)
            | 0 -> Error "connection closed by daemon"
            | n -> go (s ^ Bytes.sub_string buf 0 n)))
  in
  go conn.pending

(* "ok stats <n>" announces n more lines of Prometheus text; consuming
   them here keeps pipelined connections in sync and gives callers the
   whole report as one string *)
let stats_line_count header =
  match String.split_on_char ' ' header with
  | [ "ok"; "stats"; n ] -> int_of_string_opt n
  | _ -> None

let receive ?timeout conn =
  match receive_line ?timeout conn with
  | Error _ as e -> e
  | Ok header -> (
      match stats_line_count header with
      | None -> Ok header
      | Some n ->
          let rec gather k acc =
            if k = 0 then Ok (String.concat "\n" (header :: List.rev acc))
            else
              match receive_line ?timeout conn with
              | Error _ as e -> e
              | Ok l -> gather (k - 1) (l :: acc)
          in
          gather (max 0 n) [])

let send ?timeout conn line =
  match post conn line with
  | Ok () -> receive ?timeout conn
  | Error _ as e -> (
      (* a daemon that sheds or evicts us writes its parting reply (busy,
         idle-timeout) and closes before our request lands — the write
         fails with EPIPE but the reply is already in our receive buffer,
         and the closed peer makes this read return immediately *)
      match receive ?timeout conn with Ok _ as r -> r | Error _ -> e)

(* "error busy retry-after=<seconds>" — the daemon's shed hint *)
let retry_after_hint reply =
  let marker = "retry-after=" in
  let n = String.length reply and m = String.length marker in
  let prefix = "error busy" in
  if n < String.length prefix || String.sub reply 0 (String.length prefix) <> prefix
  then None
  else
    let rec find i =
      if i + m > n then None
      else if String.sub reply i m = marker then Some (i + m)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some i ->
        let j =
          match String.index_from_opt reply i ' ' with Some j -> j | None -> n
        in
        float_of_string_opt (String.sub reply i (j - i))

type backoff = { retries : int; delay : float; max_delay : float }

let default_backoff = { retries = 0; delay = 0.2; max_delay = 2.0 }

let request ?connect_timeout ?read_timeout ?(backoff = default_backoff) ?rng
    sockaddr line =
  let rng =
    lazy (match rng with Some r -> r | None -> Random.State.make_self_init ())
  in
  let once () =
    match connect ?timeout:connect_timeout sockaddr with
    | Error _ as e -> e
    | Ok conn ->
        let r = send ?timeout:read_timeout conn line in
        close conn;
        r
  in
  let pause attempt hint =
    let exp = backoff.delay *. (2. ** float_of_int attempt) in
    let capped = Float.min backoff.max_delay exp in
    (* jitter in [50%,100%] de-synchronizes a thundering herd of clients
       that were all shed at the same instant *)
    let jittered = capped *. (0.5 +. Random.State.float (Lazy.force rng) 0.5) in
    let d = match hint with Some h -> Float.max h jittered | None -> jittered in
    if d > 0. then Unix.sleepf d
  in
  let rec go attempt =
    let r = once () in
    if attempt >= backoff.retries then r
    else
      match r with
      | Ok reply -> (
          match retry_after_hint reply with
          | Some hint ->
              (* the daemon shed us; honor its hint *)
              pause attempt (Some hint);
              go (attempt + 1)
          | None -> r)
      | Error _ ->
          (* connection-level failures (refused, daemon gone, timeout) are
             treated as transient: requests are idempotent *)
          pause attempt None;
          go (attempt + 1)
  in
  go 0
