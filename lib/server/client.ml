let sockaddr_of_string addr =
  match String.rindex_opt addr ':' with
  | Some i
    when i < String.length addr - 1
         && String.for_all
              (function '0' .. '9' -> true | _ -> false)
              (String.sub addr (i + 1) (String.length addr - i - 1)) -> (
      let host = String.sub addr 0 i in
      let port = int_of_string (String.sub addr (i + 1) (String.length addr - i - 1)) in
      if port > 65535 then Error (Printf.sprintf "%s: port out of range" addr)
      else
        match Unix.inet_addr_of_string host with
        | ip -> Ok (Unix.ADDR_INET (ip, port))
        | exception Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } ->
                Error (Printf.sprintf "%s: no address for host %s" addr host)
            | h -> Ok (Unix.ADDR_INET (h.Unix.h_addr_list.(0), port))
            | exception Not_found ->
                Error (Printf.sprintf "%s: unknown host %s" addr host)))
  | _ -> Ok (Unix.ADDR_UNIX addr)

type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let describe_sockaddr = function
  | Unix.ADDR_UNIX p -> p
  | Unix.ADDR_INET (ip, port) ->
      Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port

let connect sockaddr =
  let domain = Unix.domain_of_sockaddr sockaddr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd sockaddr with
  | () ->
      Ok { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" (describe_sockaddr sockaddr)
           (Unix.error_message e))

let close conn =
  (try flush conn.oc with Sys_error _ -> ());
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let send conn line =
  try
    output_string conn.oc line;
    output_char conn.oc '\n';
    flush conn.oc;
    Ok (input_line conn.ic)
  with
  | End_of_file -> Error "connection closed by daemon"
  | Sys_error m -> Error m
  | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let request sockaddr line =
  match connect sockaddr with
  | Error _ as e -> e
  | Ok conn ->
      let r = send conn line in
      close conn;
      r
