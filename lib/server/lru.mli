(** A byte-accounted, domain-safe LRU cache for large matching artifacts
    (closure matrices, similarity matrices, candidate tables).

    Capacity is measured in bytes via a caller-supplied weight function, not
    in entry counts: one 2000-node closure dwarfs a hundred small ones, so
    counting entries would let the cache blow the memory budget. Because
    entries are large, the table stays small, and eviction scans for the
    least-recently-used entry in O(entries) instead of maintaining an
    intrusive list — simpler, and negligible next to the cost of computing
    any artifact.

    Every operation takes an internal mutex, so pool workers can hit the
    cache concurrently; the hit/miss/eviction counters stay exact (each
    lookup counts exactly one hit or one miss). *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;  (** entries pushed out by capacity pressure *)
  entries : int;
  bytes : int;  (** current resident weight *)
  capacity_bytes : int;
}

type ('k, 'v) t

val create : capacity_bytes:int -> weight:('v -> int) -> unit -> ('k, 'v) t
(** @raise Invalid_argument if [capacity_bytes < 0]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Counts one hit (and refreshes recency) or one miss. *)

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace, then evict least-recently-used entries until the
    resident weight fits the capacity again. A value heavier than the whole
    capacity is not stored at all (it would only evict everything and still
    not fit). Does not touch the hit/miss counters. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v * bool
(** [find_or_add t k f] returns [(v, true)] on a hit. On a miss it runs [f]
    {e outside} the lock (so a slow compute does not block other users),
    inserts the result, and returns [(v, false)]. If another domain
    inserted the key while [f] ran, that resident value wins and is
    returned — the cache never holds two values for one key. *)

val remove_if : ('k, 'v) t -> ('k -> bool) -> int
(** Invalidation sweep (e.g. on catalog [unload]): drop every entry whose
    key satisfies the predicate; returns how many were dropped. Dropped
    entries do not count as evictions. *)

val clear : ('k, 'v) t -> unit
(** Drop every entry; counters are kept. *)

val stats : ('k, 'v) t -> stats

val bindings : ('k, 'v) t -> ('k * 'v) list
(** Every resident entry, least-recently-used first — the snapshot
    exporter's view. Re-inserting in this order reproduces the recency
    order (modulo ties). Does not touch the hit/miss counters. *)

val hits : ('k, 'v) t -> int
(** Lock-free reads of the single-source-of-truth counters: these return
    the same atomic cells {!stats} copies and reply provenance increments,
    so the metrics registry and per-reply provenance can never disagree. *)

val misses : ('k, 'v) t -> int
val evictions : ('k, 'v) t -> int
