(** A minimal phomd client: one line out, one line back.

    The protocol frames every exchange as a single request line answered by
    a single reply line (see {!Protocol}), so the client needs no state —
    [request] opens a connection when given an address string, or reuses an
    open one. The CLI's [phom client] subcommand and the smoke tests are
    built on this. *)

val sockaddr_of_string : string -> (Unix.sockaddr, string) result
(** [sockaddr_of_string addr] interprets [addr] as [HOST:PORT] (TCP, host
    by name or dotted quad) when it contains a colon followed by digits,
    and as a Unix-domain socket path otherwise. *)

type conn

val connect : Unix.sockaddr -> (conn, string) result
val close : conn -> unit

val send : conn -> string -> (string, string) result
(** [send conn line] writes one request line and reads one reply line.
    Errors (refused connection, daemon gone mid-read) come back as
    [Error msg], never as exceptions. *)

val request : Unix.sockaddr -> string -> (string, string) result
(** One-shot: connect, {!send}, close. *)
