(** A phomd client: one line out, one line back, with timeouts and retry.

    The protocol frames every exchange as a single request line answered by
    a single reply line (see {!Protocol}), so the client needs no state —
    {!request} opens a connection per request; {!connect}/{!send} serve
    callers holding a connection open. The CLI's [phom client] subcommand
    and the smoke tests are built on this.

    Every failure comes back as [Error msg], never as an exception. *)

val sockaddr_of_string : string -> (Unix.sockaddr, string) result
(** [sockaddr_of_string addr] interprets [addr] as [HOST:PORT] (TCP, host
    by name or dotted quad) when it contains a colon followed by digits,
    and as a Unix-domain socket path otherwise. *)

type conn

val connect : ?timeout:float -> Unix.sockaddr -> (conn, string) result
(** [timeout] bounds connection establishment (seconds); without it the
    connect blocks indefinitely. TCP dials are non-blocking
    ([EINPROGRESS] + [select] + [SO_ERROR]) so the deadline holds even
    against hosts that drop SYNs instead of refusing them, and the
    established socket gets [TCP_NODELAY] — replies are one short line,
    Nagle only adds latency. *)

val close : conn -> unit

val post : conn -> string -> (unit, string) result
(** Write one request line without waiting for the reply — the seam the
    fault tests use to disconnect between request and reply. *)

val receive : ?timeout:float -> conn -> (string, string) result
(** Read one reply line. [timeout] bounds the whole read (seconds); an
    exhausted deadline is [Error "timed out waiting for reply"]. *)

val send : ?timeout:float -> conn -> string -> (string, string) result
(** [send conn line] writes one request line and reads one reply line;
    [timeout] applies to the read. A failed write still attempts the read:
    a daemon that sheds or evicts a peer sends its parting reply and
    closes before the request lands, so the reply (not the [EPIPE]) is
    the useful answer. *)

val retry_after_hint : string -> float option
(** [Some seconds] when the reply is the daemon's admission-control shed
    ([error busy retry-after=<s>]); [None] otherwise. *)

type backoff = {
  retries : int;  (** additional attempts after the first (0 = one shot) *)
  delay : float;  (** base delay, doubled each attempt *)
  max_delay : float;  (** cap on the exponential *)
}

val default_backoff : backoff
(** [{ retries = 0; delay = 0.2; max_delay = 2.0 }] — one shot, so plain
    callers see the historical behavior. *)

val request :
  ?connect_timeout:float ->
  ?read_timeout:float ->
  ?backoff:backoff ->
  ?rng:Random.State.t ->
  Unix.sockaddr ->
  string ->
  (string, string) result
(** One-shot: connect, {!send}, close — retrying on connection-level
    failures and on [error busy retry-after=<s>] replies. Each pause is
    [min max_delay (delay * 2^attempt)] scaled by a jitter factor in
    [0.5, 1.0] (drawn from [rng], self-seeded by default), and never less
    than the daemon's [retry-after] hint when one was given. Other [error]
    replies are returned as-is: they are answers, not failures. *)
