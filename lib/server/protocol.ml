type solve = {
  problem : Phom.Api.problem;
  g1 : string;
  g2 : string;
  sim : Catalog.sim;
  xi : float;
  hops : int option;
  timeout : float option;
  steps : int option;
  algorithm : Phom.Api.algorithm;
  partition : bool;
  compress : bool;
  sequential : bool;
}

type count = {
  g1 : string;
  g2 : string;
  sim : Catalog.sim;
  xi : float;
  hops : int option;
  timeout : float option;
  steps : int option;
  sequential : bool;
}

type edit = {
  name : string;
  op : [ `Add | `Del ];
  v : int;
  w : int;
  crc : string option;
}

type request =
  | Version
  | Ping
  | Health
  | List
  | Stats
  | Load_graph of { name : string; path : string }
  | Load_mat of { name : string; path : string }
  | Unload of string
  | Edit of edit
  | Solve of solve
  | Count of count
  | Shutdown
  | Quit

(* the one verb table: the parser, the unknown-command error and the
   client's usage hint all derive from it, so they cannot drift when a
   verb lands *)
let verbs =
  [
    "version"; "ping"; "health"; "list"; "stats"; "load"; "unload"; "addedge";
    "deledge"; "solve"; "count"; "shutdown"; "quit";
  ]

let verb_summary = String.concat ", " verbs

let problem_token = function
  | Phom.Api.CPH -> "card"
  | Phom.Api.CPH11 -> "card11"
  | Phom.Api.SPH -> "sim"
  | Phom.Api.SPH11 -> "sim11"

let problem_of_token = function
  | "card" -> Some Phom.Api.CPH
  | "card11" -> Some Phom.Api.CPH11
  | "sim" -> Some Phom.Api.SPH
  | "sim11" -> Some Phom.Api.SPH11
  | _ -> None

let err fmt = Printf.ksprintf (fun m -> Error m) fmt

(* replies are one line on the wire; a reply that echoes hostile request
   bytes (an unknown command full of control characters, say) must not be
   able to smuggle a newline or garble a terminal *)
(* per line, not per reply: a multi-line stats reply carries real newlines
   as its framing, which must survive; any other control character inside a
   line is still escaped (single-line replies echo client input) *)
let sanitize reply =
  let sanitize_line l =
    if String.exists (fun c -> c < ' ' || c = '\x7f') l then String.escaped l
    else l
  in
  String.concat "\n" (List.map sanitize_line (String.split_on_char '\n' reply))

let float_of tok = float_of_string_opt tok
let int_of tok = int_of_string_opt tok

(* the solve flag loop, shared with [count] (which owns a strict subset of
   the flags); [sim_flag]/[mat_flag] are kept apart so their mutual
   exclusion can be checked at the end *)
let parse_solve_flags ?(context = `Solve) init flags =
  let s = ref init in
  let sim_flag = ref None and mat_flag = ref None in
  let rec go = function
    | [] -> Ok ()
    | flag :: _
      when context = `Count
           && List.mem flag [ "--partition"; "--compress"; "--algorithm" ] ->
        err "%s is a solve-only flag (not valid for count)" flag
    | "--partition" :: rest ->
        s := { !s with partition = true };
        go rest
    | "--compress" :: rest ->
        s := { !s with compress = true };
        go rest
    | [ flag ]
      when List.mem flag
             [ "--mat"; "--sim"; "--xi"; "--hops"; "--timeout"; "--steps";
               "--algorithm"; "--jobs" ] ->
        err "%s needs a value" flag
    | "--mat" :: name :: rest ->
        mat_flag := Some name;
        go rest
    | "--sim" :: kind :: rest -> (
        match kind with
        | "equality" ->
            sim_flag := Some Catalog.Equality;
            go rest
        | "shingles" ->
            sim_flag := Some Catalog.Shingles;
            go rest
        | _ -> err "unknown similarity %s (equality or shingles)" kind)
    | "--xi" :: v :: rest -> (
        match float_of v with
        | Some xi when xi >= 0. && xi <= 1. ->
            s := { !s with xi };
            go rest
        | _ -> err "--xi must be a float in [0,1] (got %s)" v)
    | "--hops" :: v :: rest -> (
        match int_of v with
        | Some k when k >= 1 ->
            s := { !s with hops = Some k };
            go rest
        | _ -> err "--hops must be an integer >= 1 (got %s)" v)
    | "--timeout" :: v :: rest -> (
        match float_of v with
        | Some secs when secs > 0. ->
            s := { !s with timeout = Some secs };
            go rest
        | _ -> err "--timeout must be positive seconds (got %s)" v)
    | "--steps" :: v :: rest -> (
        match int_of v with
        | Some n when n >= 0 ->
            s := { !s with steps = Some n };
            go rest
        | _ -> err "--steps must be a non-negative integer (got %s)" v)
    | "--algorithm" :: v :: rest -> (
        match v with
        | "direct" ->
            s := { !s with algorithm = Phom.Api.Direct };
            go rest
        | "naive" ->
            s := { !s with algorithm = Phom.Api.Naive_product };
            go rest
        | "exact" ->
            s := { !s with algorithm = Phom.Api.Exact_bb };
            go rest
        | "dp" ->
            s := { !s with algorithm = Phom.Api.Dp_td };
            go rest
        | _ -> err "unknown algorithm %s (direct, naive, exact or dp)" v)
    | "--jobs" :: v :: rest -> (
        match int_of v with
        | Some n when n >= 1 ->
            s := { !s with sequential = n = 1 };
            go rest
        | _ -> err "--jobs must be an integer >= 1 (got %s)" v)
    | tok :: _ -> err "unknown solve flag %s" tok
  in
  match go flags with
  | Error _ as e -> e
  | Ok () -> (
      match (!mat_flag, !sim_flag) with
      | Some _, Some _ -> err "--mat and --sim are mutually exclusive"
      | Some name, None -> Ok { !s with sim = Catalog.Named name }
      | None, Some sim -> Ok { !s with sim }
      | None, None -> Ok !s)

let parse line =
  let tokens =
    List.filter (fun t -> t <> "") (String.split_on_char ' ' (String.trim line))
  in
  match tokens with
  | [] -> err "empty request"
  | [ "version" ] -> Ok Version
  | [ "ping" ] -> Ok Ping
  | [ "health" ] -> Ok Health
  | [ "list" ] -> Ok List
  | [ "stats" ] -> Ok Stats
  | [ "shutdown" ] -> Ok Shutdown
  | [ "quit" ] -> Ok Quit
  | [ "load"; "graph"; name; path ] -> Ok (Load_graph { name; path })
  | [ "load"; "mat"; name; path ] -> Ok (Load_mat { name; path })
  | "load" :: _ -> err "usage: load (graph|mat) NAME PATH"
  | [ "unload"; name ] -> Ok (Unload name)
  | "unload" :: _ -> err "usage: unload NAME"
  | ("addedge" | "deledge") :: rest -> (
      let verb = List.hd tokens in
      let op = if verb = "addedge" then `Add else `Del in
      let usage () = err "usage: %s GRAPH V W [--crc HEX]" verb in
      let is_hex s =
        s <> ""
        && String.length s <= 16
        && String.for_all
             (function 'a' .. 'f' | 'A' .. 'F' | '0' .. '9' -> true | _ -> false)
             s
      in
      match rest with
      | name :: v :: w :: crc_flags -> (
          match (int_of v, int_of w) with
          | Some v, Some w when v >= 0 && w >= 0 -> (
              match crc_flags with
              | [] -> Ok (Edit { name; op; v; w; crc = None })
              | [ "--crc"; c ] when is_hex c ->
                  Ok (Edit { name; op; v; w; crc = Some c })
              | [ "--crc"; c ] ->
                  err "--crc must be a hex checksum (got %s)" c
              | [ "--crc" ] -> err "--crc needs a value"
              | tok :: _ -> err "unknown %s flag %s" verb tok)
          | _ -> err "%s: V and W must be non-negative node ids" verb)
      | _ -> usage ())
  | "solve" :: problem :: g1 :: g2 :: flags -> (
      match problem_of_token problem with
      | None -> err "unknown problem %s (card, card11, sim or sim11)" problem
      | Some problem -> (
          let init =
            {
              problem;
              g1;
              g2;
              sim = Catalog.Equality;
              xi = 0.75;
              hops = None;
              timeout = None;
              steps = None;
              algorithm = Phom.Api.Direct;
              partition = false;
              compress = false;
              sequential = false;
            }
          in
          match parse_solve_flags init flags with
          | Error _ as e -> e
          | Ok s -> Ok (Solve s)))
  | "solve" :: _ ->
      err "usage: solve (card|card11|sim|sim11) G1 G2 [flags]"
  | "count" :: g1 :: g2 :: flags -> (
      let init =
        {
          problem = Phom.Api.CPH;
          g1;
          g2;
          sim = Catalog.Equality;
          xi = 0.75;
          hops = None;
          timeout = None;
          steps = None;
          algorithm = Phom.Api.Direct;
          partition = false;
          compress = false;
          sequential = false;
        }
      in
      match parse_solve_flags ~context:`Count init flags with
      | Error _ as e -> e
      | Ok s ->
          Ok
            (Count
               {
                 g1 = s.g1;
                 g2 = s.g2;
                 sim = s.sim;
                 xi = s.xi;
                 hops = s.hops;
                 timeout = s.timeout;
                 steps = s.steps;
                 sequential = s.sequential;
               }))
  | "count" :: _ -> err "usage: count G1 G2 [flags]"
  | cmd :: _ -> err "unknown command %s (%s)" cmd verb_summary
