type t = {
  fd : Unix.file_descr;
  transport : Faults.kind;  (* which listener accepted us; scopes faults *)
  max_line : int;
  idle_timeout : float option;
  partial : Buffer.t;  (* bytes of the current, incomplete request line *)
  lines : string Queue.t;  (* complete request lines, oldest first *)
  mutable out : string;  (* reply bytes not yet written *)
  mutable out_pos : int;
  mutable draining : bool;
  mutable closed : bool;
  mutable overflowed : bool;
  mutable idle_deadline : float;
}

(* reading pauses past this many queued-but-unserved requests, so a peer
   that floods pipelined lines while a solve is in flight is backpressured
   by its own socket buffer instead of growing daemon memory *)
let max_queued_lines = 16

let chunk = 4096

let create ?(transport = Faults.Unix_sock) ~max_line ~idle_timeout ~now fd =
  {
    fd;
    transport;
    max_line;
    idle_timeout;
    partial = Buffer.create 256;
    lines = Queue.create ();
    out = "";
    out_pos = 0;
    draining = false;
    closed = false;
    overflowed = false;
    idle_deadline =
      (match idle_timeout with None -> infinity | Some s -> now +. s);
  }

let fd t = t.fd
let is_open t = not t.closed
let is_draining t = t.draining
let deadline t = t.idle_deadline

let touch t ~now =
  match t.idle_timeout with
  | None -> ()
  | Some s -> t.idle_deadline <- now +. s

let expired t ~now = now >= t.idle_deadline

let want_read t =
  (not t.closed) && (not t.draining) && (not t.overflowed)
  && Queue.length t.lines < max_queued_lines

let want_write t = (not t.closed) && t.out_pos < String.length t.out

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.out <- "";
    t.out_pos <- 0;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* move complete lines out of [partial] into [lines]; true iff a line (or
   the unfinished remainder) exceeds the bound *)
let split_lines t =
  let s = Buffer.contents t.partial in
  let n = String.length s in
  let overflow = ref false in
  let start = ref 0 in
  (try
     while true do
       let i = String.index_from s !start '\n' in
       let len = i - !start in
       let len = if len > 0 && s.[!start + len - 1] = '\r' then len - 1 else len in
       if len > t.max_line then overflow := true
       else Queue.add (String.sub s !start len) t.lines;
       start := i + 1
     done
   with Not_found -> ());
  if !start > 0 then begin
    let rest = String.sub s !start (n - !start) in
    Buffer.clear t.partial;
    Buffer.add_string t.partial rest
  end;
  if Buffer.length t.partial > t.max_line then overflow := true;
  !overflow

type read_outcome = Progress | Line_too_long | Peer_closed

let handle_read t =
  if t.closed then Peer_closed
  else begin
    let buf = Bytes.create chunk in
    match Faults.read ~kind:t.transport t.fd buf 0 chunk with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        Progress
    | exception Unix.Unix_error (_, _, _) -> Peer_closed
    | 0 -> Peer_closed
    | n ->
        Buffer.add_subbytes t.partial buf 0 n;
        if split_lines t then begin
          t.overflowed <- true;
          Line_too_long
        end
        else Progress
  end

let next_line t = if t.closed then None else Queue.take_opt t.lines

let send_line t line =
  if not t.closed then begin
    (* compact the already-written prefix before appending *)
    let pending =
      if t.out_pos = 0 then t.out
      else String.sub t.out t.out_pos (String.length t.out - t.out_pos)
    in
    t.out <- pending ^ line ^ "\n";
    t.out_pos <- 0
  end

let handle_write t =
  if not t.closed then begin
    let len = String.length t.out - t.out_pos in
    (if len > 0 then
       match Faults.write ~kind:t.transport t.fd (Bytes.of_string t.out) t.out_pos len with
       | exception
           Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
         ->
           ()
       | exception Unix.Unix_error (_, _, _) ->
           (* the peer vanished; nothing left to flush to *)
           close t
       | n -> t.out_pos <- t.out_pos + n);
    if (not t.closed) && t.out_pos >= String.length t.out then begin
      t.out <- "";
      t.out_pos <- 0;
      if t.draining then close t
    end
  end

let close_after_flush t =
  if not t.closed then begin
    t.draining <- true;
    if not (want_write t) then close t
  end
