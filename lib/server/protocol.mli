(** The phomd line protocol (revision {!Version.protocol}).

    Requests and replies are single lines of UTF-8 text; tokens are
    separated by one or more spaces, so catalog names and file paths must
    not contain whitespace. Every reply is exactly one line starting with
    [ok] or [error], which makes client framing trivial.

    Grammar:
    {v
    request  ::= "version" | "ping" | "health"
               | "list" | "stats" | "shutdown" | "quit"
               | "load" "graph" NAME PATH
               | "load" "mat" NAME PATH
               | "unload" NAME
               | "addedge" GRAPH V W ["--crc" HEX]
               | "deledge" GRAPH V W ["--crc" HEX]
               | "solve" PROBLEM G1 G2 flag*
               | "count" G1 G2 cflag*
    PROBLEM  ::= "card" | "card11" | "sim" | "sim11"      (Table 1)
    flag     ::= cflag
               | "--algorithm" ("direct" | "naive" | "exact" | "dp")
               | "--partition" | "--compress"
    cflag    ::= "--mat" NAME | "--sim" ("equality" | "shingles")
               | "--xi" FLOAT | "--hops" INT
               | "--timeout" SECONDS | "--steps" INT
               | "--jobs" INT
    v}

    [count] (protocol 4) counts the total p-hom mappings of the pattern
    into the data graph under the same candidate semantics as [solve]; it
    always runs the tree-decomposition DP, so the solve-only flags
    [--algorithm], [--partition] and [--compress] are rejected on it.

    [addedge]/[deledge] (protocol 5) mutate a loaded graph in place — one
    directed edge per request — while the daemon maintains the derived
    state (cached closures, artifact keys) incrementally; the reply
    reports the post-edit edge count and content signature ([crc=]).
    [--crc] pins the {e post-edit} signature: if the live graph already
    carries it the request is an acknowledged no-op ([applied=0]), and if
    the edit would produce a different signature it is refused — this is
    what makes re-delivered edit lines (router replay, retries) converge
    instead of double-applying.

    [--jobs 1] forces the request onto the sequential code path (no pool
    job, no partition fan-out across domains); any other value uses the
    daemon's shared pool. [--timeout]/[--steps] bound this one request (they
    default to the daemon's [--default-timeout]/[--default-steps]); replies
    then carry [status=exhausted(...)] with the best-so-far answer, exactly
    like the CLI's exit-code-2 contract. *)

type solve = {
  problem : Phom.Api.problem;
  g1 : string;
  g2 : string;
  sim : Catalog.sim;  (** default [Equality]; [--mat] selects [Named] *)
  xi : float;  (** default 0.75 *)
  hops : int option;
  timeout : float option;
  steps : int option;
  algorithm : Phom.Api.algorithm;
  partition : bool;
  compress : bool;
  sequential : bool;  (** [--jobs 1] *)
}

type count = {
  g1 : string;
  g2 : string;
  sim : Catalog.sim;  (** default [Equality]; [--mat] selects [Named] *)
  xi : float;  (** default 0.75 *)
  hops : int option;
  timeout : float option;
  steps : int option;
  sequential : bool;  (** [--jobs 1] *)
}

type edit = {
  name : string;
  op : [ `Add | `Del ];
  v : int;
  w : int;
  crc : string option;  (** [--crc]: the expected post-edit signature *)
}

type request =
  | Version
  | Ping  (** liveness: replies [ok pong] even while draining *)
  | Health
      (** readiness: one line of [k=v] counters led by
          [state=(ready|degraded|draining)] — see {!Daemon} *)
  | List
  | Stats
  | Load_graph of { name : string; path : string }
  | Load_mat of { name : string; path : string }
  | Unload of string
  | Edit of edit
  | Solve of solve
  | Count of count
  | Shutdown
  | Quit

val verbs : string list
(** Every verb the parser accepts, in documentation order. The
    unknown-command error and the client's usage hint are both generated
    from this list, so it cannot drift from {!parse}. *)

val verb_summary : string
(** {!verbs} joined with [", "]. *)

val parse : string -> (request, string) result
(** Parse one request line. Errors are one-line human-readable messages
    (sent back verbatim as [error ...] replies) and include flag-validation
    failures: ξ outside [0,1], hops < 1, a non-positive timeout, negative
    steps, or [--mat] combined with [--sim]. *)

val problem_token : Phom.Api.problem -> string
(** ["card"], ["card11"], ["sim"], ["sim11"] — the inverse of the PROBLEM
    tokens accepted by {!parse}. *)

val sanitize : string -> string
(** Make a reply safe to put on the wire as one line: if it contains any
    control byte (smuggled in by a hostile request that gets echoed back,
    e.g. an unknown command), the whole reply is [String.escaped];
    well-behaved replies pass through untouched. The daemon runs every
    outbound reply through this. *)
