(** The recovery journal: an append-only, per-line-checksummed log of
    catalog mutations since the last snapshot.

    Recovery = latest snapshot + journal replay, so a crash loses at most
    the in-flight window the fsync policy allows. One event per line:
    {v
    phomd-journal 1
    J1 <crc32-hex of body> <body>
    v}
    where the body is [load-graph <name> <path> <crc>],
    [load-mat <name> <path> <crc>], [unload <name>] or
    [artifact <key-token>]. Load events carry a checksum of the loaded
    value's canonical serialization, so replay detects a source file that
    drifted since the journaled load. Artifact events carry only the cache
    key; replay recomputes the artifact (deterministic, and far smaller on
    disk than the artifact itself).

    A line whose checksum fails — the torn tail of a [kill -9] mid-append —
    is quarantined and {e stops} replay: nothing after a tear can be
    trusted to be in sequence. All writes ride {!Faults.fwrite}. *)

type fsync =
  | Always  (** fsync every append: lose nothing short of media failure *)
  | Interval
      (** fsync when the daemon's periodic {!flush} fires: lose at most
          the flush interval *)
  | Never
      (** never fsync: the page cache still survives [kill -9], but not
          power loss *)

val fsync_to_string : fsync -> string
val fsync_of_string : string -> fsync option

type event =
  | Load_graph of { name : string; path : string; crc : string }
  | Load_mat of { name : string; path : string; crc : string }
  | Unload of string
  | Edit of { name : string; op : string; v : int; w : int; crc : string }
      (** a single-edge edit of a catalog graph: [op] is ["add"] or
          ["del"], [crc] the content signature of the graph {e after} the
          edit — replay re-applies the edit and verifies convergence *)
  | Artifact of string  (** a {!Catalog} artifact key token *)

(** {1 Appending} *)

type t

val open_append : path:string -> fsync:fsync -> (t, string) result
(** Open (creating if needed) for appending; a fresh or empty file gets
    its header line. *)

val append : t -> event -> unit
(** Append one event line (and fsync it under [Always]). Never raises: a
    failed append (ENOSPC, injected fault) increments {!errors} instead of
    killing the serving path — the daemon reports it as a degraded health
    state. Safe to call from any domain. *)

val flush : t -> unit
(** fsync now if anything was appended since the last sync (no-op under
    [Never]). The daemon calls this on its periodic tick. *)

val rotate : t -> unit
(** Truncate back to a bare header — called right after a snapshot lands,
    which supersedes everything the journal recorded. *)

val close : t -> unit
(** Final flush and close; idempotent. *)

val appended : t -> int
(** Events successfully appended since open (rotation does not reset it). *)

val errors : t -> int
(** Appends that failed and were dropped. *)

val path : t -> string
val fsync_policy : t -> fsync

(** {1 Replay} *)

val replay : path:string -> (event list * int, string) result
(** [Ok (events, quarantined)]: the events up to the first unverifiable
    line, in append order; [quarantined] is 1 if a torn or corrupt line
    stopped the scan, 0 on a clean read. An empty file replays as
    [([], 0)]. [Error] means unreadable or not a journal at all. *)
