(* The recovery journal: an append-only log of catalog mutations since the
   last snapshot.

   Snapshots capture the heavy state; the journal captures the in-flight
   window between snapshots — which graphs/matrices were loaded or
   unloaded, and which artifacts were computed — as one line per event,
   each carrying a CRC-32 of its body so a torn tail (the signature of a
   kill -9 mid-append) is detected, quarantined and never replayed.

   Load events record the source path plus a checksum of the loaded
   value's canonical serialization: replay re-reads the file and refuses
   it if the content drifted since the journaled load. Artifact events
   record only the cache key — replay recomputes the artifact from the
   recovered catalog (deterministic, and vastly smaller on disk than the
   artifact itself).

   fsync policy is the durability/throughput dial: [Always] syncs every
   append (lose nothing short of media failure), [Interval] leaves syncing
   to the daemon's periodic flush (lose at most the interval), [Never]
   trusts the page cache (survives kill -9, not power loss). *)

type fsync = Always | Interval | Never

let fsync_to_string = function
  | Always -> "always"
  | Interval -> "interval"
  | Never -> "never"

let fsync_of_string = function
  | "always" -> Some Always
  | "interval" -> Some Interval
  | "never" -> Some Never
  | _ -> None

type event =
  | Load_graph of { name : string; path : string; crc : string }
  | Load_mat of { name : string; path : string; crc : string }
  | Unload of string
  | Edit of { name : string; op : string; v : int; w : int; crc : string }
      (** [op] is ["add"] or ["del"]; [crc] is the content signature of the
          graph {e after} the edit, so replay verifies convergence *)
  | Artifact of string

let header = "phomd-journal 1"

(* paths may contain spaces or control bytes; percent-encode so every
   event stays one clean space-delimited line *)
let encode_path s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c <= ' ' || c = '%' || c = '\x7f' then
        Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c))
      else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let decode_path s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
        | Some c -> Buffer.add_char buf (Char.chr (c land 0xff)); go (i + 3)
        | None -> Buffer.add_char buf s.[i]; go (i + 1)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let body_of_event = function
  | Load_graph { name; path; crc } ->
      Printf.sprintf "load-graph %s %s %s" name (encode_path path) crc
  | Load_mat { name; path; crc } ->
      Printf.sprintf "load-mat %s %s %s" name (encode_path path) crc
  | Unload name -> "unload " ^ name
  | Edit { name; op; v; w; crc } ->
      Printf.sprintf "edit %s %s %d %d %s" name op v w crc
  | Artifact token -> "artifact " ^ token

let event_of_body body =
  match String.split_on_char ' ' body with
  | [ "load-graph"; name; path; crc ] ->
      Some (Load_graph { name; path = decode_path path; crc })
  | [ "load-mat"; name; path; crc ] ->
      Some (Load_mat { name; path = decode_path path; crc })
  | [ "unload"; name ] -> Some (Unload name)
  | [ "edit"; name; op; v; w; crc ] -> (
      match (op, int_of_string_opt v, int_of_string_opt w) with
      | ("add" | "del"), Some v, Some w when v >= 0 && w >= 0 ->
          Some (Edit { name; op; v; w; crc })
      | _ -> None)
  | [ "artifact"; token ] -> Some (Artifact token)
  | _ -> None

let line_of_event e =
  let body = body_of_event e in
  Printf.sprintf "J1 %s %s\n" (Persist.crc32_hex body) body

(* ---- the appender ---- *)

type t = {
  path : string;
  fsync : fsync;
  mutable fd : Unix.file_descr option;
  mutable appended : int;
  mutable errors : int;
  mutable dirty : bool;  (* bytes written since the last fsync *)
  lock : Mutex.t;  (* appends come from pool workers and the loop alike *)
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go pos =
    if pos < n then
      match Faults.fwrite fd b pos (n - pos) with
      | 0 -> raise (Unix.Unix_error (Unix.EIO, "write", ""))
      | k -> go (pos + k)
  in
  go 0

let open_append ~path ~fsync =
  match
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
  | fd -> (
      let t =
        {
          path;
          fsync;
          fd = Some fd;
          appended = 0;
          errors = 0;
          dirty = false;
          lock = Mutex.create ();
        }
      in
      (* a fresh (or empty) journal needs its header before any event *)
      match Unix.fstat fd with
      | { Unix.st_size = 0; _ } -> (
          match write_all fd (header ^ "\n") with
          | () ->
              if fsync = Always then
                (try Unix.fsync fd with Unix.Unix_error _ -> ());
              Ok t
          | exception e ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              let msg =
                match e with
                | Unix.Unix_error (ue, _, _) -> Unix.error_message ue
                | e -> Printexc.to_string e
              in
              Error (Printf.sprintf "%s: %s" path msg))
      | _ -> Ok t
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Printf.sprintf "%s: %s" path (Unix.error_message e)))

let append t e =
  locked t (fun () ->
      match t.fd with
      | None -> ()
      | Some fd -> (
          match write_all fd (line_of_event e) with
          | () ->
              t.appended <- t.appended + 1;
              t.dirty <- true;
              if t.fsync = Always then begin
                (try Unix.fsync fd with Unix.Unix_error _ -> ());
                t.dirty <- false
              end
          | exception _ ->
              (* an append that failed (ENOSPC, a torn device) must not
                 kill the serving path; the daemon surfaces [errors] as a
                 degraded health state *)
              t.errors <- t.errors + 1))

let flush t =
  locked t (fun () ->
      match t.fd with
      | Some fd when t.dirty && t.fsync <> Never ->
          (try Unix.fsync fd with Unix.Unix_error _ -> ());
          t.dirty <- false
      | _ -> ())

let rotate t =
  locked t (fun () ->
      match t.fd with
      | None -> ()
      | Some fd -> (
          (* a snapshot just captured everything the journal recorded; an
             O_APPEND fd writes at the (new) end after truncation, so the
             fd survives the rotation *)
          match
            Unix.ftruncate fd 0;
            write_all fd (header ^ "\n")
          with
          | () ->
              if t.fsync <> Never then
                (try Unix.fsync fd with Unix.Unix_error _ -> ());
              t.dirty <- false
          | exception _ -> t.errors <- t.errors + 1))

let close t =
  locked t (fun () ->
      match t.fd with
      | None -> ()
      | Some fd ->
          if t.dirty && t.fsync <> Never then
            (try Unix.fsync fd with Unix.Unix_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ());
          t.fd <- None)

let appended t = locked t (fun () -> t.appended)
let errors t = locked t (fun () -> t.errors)
let path t = t.path
let fsync_policy t = t.fsync

(* ---- replay ---- *)

let replay ~path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let read_line_opt () =
            match input_line ic with
            | l -> Some l
            | exception End_of_file -> None
          in
          match read_line_opt () with
          | Some h when h = header ->
              let events = ref [] and quarantined = ref 0 in
              let rec go () =
                match read_line_opt () with
                | None -> ()
                | Some line -> (
                    (* a bad line means the append was torn (or the file
                       corrupted); nothing after it can be trusted to be
                       in sequence, so replay stops here *)
                    match String.split_on_char ' ' line with
                    | "J1" :: crc :: rest
                      when rest <> []
                           && Persist.crc32_hex (String.concat " " rest) = crc
                      -> (
                        match event_of_body (String.concat " " rest) with
                        | Some e ->
                            events := e :: !events;
                            go ()
                        | None -> incr quarantined)
                    | _ -> incr quarantined)
              in
              go ();
              Ok (List.rev !events, !quarantined)
          | Some _ -> Error (path ^ ": not a phomd journal (bad header)")
          | None -> Ok ([], 0))
