(* A fixed-size domain pool on stdlib primitives.

   Architecture: [create] spawns [size - 1] worker domains that block on a
   mutex-protected queue of thunks. A batch ([map]) does not enqueue one
   thunk per item; it enqueues up to [size - 1] copies of a single "helper"
   thunk that repeatedly claims the next unclaimed item index from an
   [Atomic.t] counter and runs it — work-stealing by counter, so load
   balances automatically when items have uneven cost. The calling domain
   runs the same helper itself, which makes nested batches deadlock-free:
   a batch's caller can always finish the batch alone, workers never block
   inside a task, and helpers left over from a finished batch exit
   immediately (the counter is already past the end).

   Results and exceptions land in per-index slots written by exactly one
   domain each; the caller observes them only after the batch's remaining
   counter (an atomic) reaches zero, which establishes the happens-before
   edge required by the OCaml memory model. *)

module Obs = Phom_obs.Obs

type t = {
  size : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

(* pool-wide instruments; gauges are balanced (+1/-1 around each queue
   mutation and task run), so pools created and destroyed by tests leave
   them at zero *)
let m_queue_depth = Obs.gauge "phom_pool_queue_depth"
let m_inflight = Obs.gauge "phom_pool_jobs_inflight"
let m_jobs = Obs.counter "phom_pool_jobs_total"
let m_submit_wait = Obs.histogram "phom_pool_submit_wait_seconds"

let busy_counter id =
  Obs.counter ~labels:[ ("worker", string_of_int id) ]
    "phom_pool_worker_busy_us_total"

let rec worker_loop t id busy =
  Mutex.lock t.lock;
  let task =
    let rec wait () =
      if t.stopping then None
      else
        match Queue.take_opt t.queue with
        | Some _ as task ->
            Obs.add_gauge m_queue_depth (-1);
            task
        | None ->
            Condition.wait t.nonempty t.lock;
            wait ()
    in
    wait ()
  in
  Mutex.unlock t.lock;
  match task with
  | None -> ()
  | Some task ->
      (* helpers confine exceptions to their batch's error slots; this
         catch-all only shields the pool from a helper's own bugs *)
      let t0 = Unix.gettimeofday () in
      (try task () with _ -> ());
      Obs.add busy (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
      worker_loop t id busy

let create ?domains () =
  let size =
    match domains with
    | None -> min 64 (max 1 (Domain.recommended_domain_count ()))
    | Some d when d < 1 -> invalid_arg "Pool.create: domains must be >= 1"
    | Some d -> min 64 d
  in
  let t =
    {
      size;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      stopping = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (size - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t i (busy_counter i)));
  t

let size t = if t.stopping then 1 else t.size

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  (* tasks still queued (e.g. unstarted futures) would otherwise never run:
     drain them here and run them in the caller so [await] stays live *)
  let leftovers = ref [] in
  Queue.iter (fun task -> leftovers := task :: !leftovers) t.queue;
  Obs.add_gauge m_queue_depth (-Queue.length t.queue);
  Queue.clear t.queue;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- [];
  List.iter (fun task -> try task () with _ -> ()) (List.rev !leftovers)

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map t f items =
  let n = Array.length items in
  if n = 0 then [||]
  else if size t <= 1 || n = 1 then Array.map f items
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    let remaining = Atomic.make n in
    let run_one i =
      Obs.incr m_jobs;
      Obs.add_gauge m_inflight 1;
      (match f items.(i) with
      | v -> results.(i) <- Some v
      | exception e -> errors.(i) <- Some e);
      Obs.add_gauge m_inflight (-1);
      ignore (Atomic.fetch_and_add remaining (-1))
    in
    let helper () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          run_one i;
          go ()
        end
      in
      go ()
    in
    let helpers = min (t.size - 1) (n - 1) in
    Mutex.lock t.lock;
    for _ = 1 to helpers do
      Queue.add helper t.queue;
      Obs.add_gauge m_queue_depth 1
    done;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.lock;
    helper ();
    (* the caller ran out of unclaimed items; wait for stragglers — spin
       briefly (tasks are usually coarse), then back off politely *)
    let spins = ref 0 in
    while Atomic.get remaining > 0 do
      incr spins;
      if !spins < 10_000 then Domain.cpu_relax () else Unix.sleepf 0.0002
    done;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_list t f items = Array.to_list (map t f (Array.of_list items))

(* Single-task submission, used by the matching daemon's accept loop: a
   request becomes one pool job and the loop blocks on [await] (so the
   request is bounded by its own budget, not the loop's). A future's state
   cell is guarded by its own mutex — the submitting domain and the worker
   that runs the task are the only parties. *)

type 'a future = {
  flock : Mutex.t;
  fcond : Condition.t;
  mutable state : 'a future_state;
}

and 'a future_state = Pending | Done of 'a | Raised of exn

let submit t f =
  let fut = { flock = Mutex.create (); fcond = Condition.create (); state = Pending } in
  let submitted = Unix.gettimeofday () in
  let run () =
    Obs.observe m_submit_wait (Unix.gettimeofday () -. submitted);
    Obs.incr m_jobs;
    Obs.add_gauge m_inflight 1;
    let outcome = match f () with v -> Done v | exception e -> Raised e in
    Obs.add_gauge m_inflight (-1);
    Mutex.lock fut.flock;
    fut.state <- outcome;
    Condition.broadcast fut.fcond;
    Mutex.unlock fut.flock
  in
  if size t <= 1 then begin
    (* sequential pool: the task runs right here, [await] just unwraps *)
    run ();
    fut
  end
  else begin
    Mutex.lock t.lock;
    if t.stopping then begin
      Mutex.unlock t.lock;
      run ()
    end
    else begin
      Queue.add run t.queue;
      Obs.add_gauge m_queue_depth 1;
      Condition.signal t.nonempty;
      Mutex.unlock t.lock
    end;
    fut
  end

let await fut =
  Mutex.lock fut.flock;
  while (match fut.state with Pending -> true | _ -> false) do
    Condition.wait fut.fcond fut.flock
  done;
  let outcome = fut.state in
  Mutex.unlock fut.flock;
  match outcome with
  | Done v -> v
  | Raised e -> raise e
  | Pending -> assert false

let peek fut =
  Mutex.lock fut.flock;
  let outcome = fut.state in
  Mutex.unlock fut.flock;
  match outcome with
  | Pending -> None
  | Done v -> Some v
  | Raised e -> raise e

let both t fa fb =
  match
    map t
      (fun side -> match side with `A -> `RA (fa ()) | `B -> `RB (fb ()))
      [| `A; `B |]
  with
  | [| `RA a; `RB b |] -> (a, b)
  | _ -> assert false
