(** A fixed-size pool of OCaml 5 domains for embarrassingly parallel
    fan-out, built on stdlib [Domain], [Atomic], [Mutex] and [Condition]
    only — no external dependencies.

    The solving seams of this repository decompose into independent units
    (weakly-connected components of [G1], weight classes of the WIS
    reduction, per-site match jobs); a pool runs those units across domains
    while keeping results deterministic: {!map} returns results in input
    order, and a pool of size 1 executes the exact sequential code path, so
    [--jobs 1] is bit-identical to a build without this library.

    Submitting work is only allowed from the domain that created the pool
    or from inside a pool task (nested {!map}/{!both} are safe: the caller
    of a batch always participates in executing it, so progress never
    depends on a free worker). Tasks themselves must be domain-safe: they
    must not share mutable state unless that state is synchronized (see
    {!Phom_graph.Budget.fork} for the budget tokens). *)

type t

val create : ?domains:int -> unit -> t
(** [create ?domains ()] spawns a pool of [domains] workers in total,
    including the calling domain (so [domains - 1] new domains are
    spawned). Default: {!Domain.recommended_domain_count}, clamped to
    [[1, 64]]. [domains = 1] spawns nothing and makes every pool operation
    run sequentially in the caller.

    @raise Invalid_argument if [domains < 1]. *)

val size : t -> int
(** Total workers, including the calling domain; ≥ 1. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f items] applies [f] to every element of [items], running the
    applications across the pool's domains, and returns the results {e in
    input order}. The calling domain participates in the work. If one or
    more applications raise, the whole batch still runs to completion and
    the exception of the {e lowest-indexed} failing element is re-raised —
    deterministic regardless of scheduling. A pool of size 1 (or a batch of
    size ≤ 1) degenerates to [Array.map f items] on the calling domain. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists, preserving order. *)

type 'a future
(** A single submitted task's pending result. *)

val submit : t -> (unit -> 'a) -> 'a future
(** [submit pool f] schedules [f] as one task on the pool and returns
    immediately. On a pool of size 1 (or a shut-down pool) [f] runs in the
    caller before [submit] returns. This is the seam the matching daemon
    uses: its accept loop turns each request into a pool job and blocks on
    {!await}, so a request is bounded by its own budget rather than by the
    loop.

    Submit from the domain that created the pool (or from inside a pool
    task). A task must not {!await} a future submitted {e after} itself —
    workers run the queue in order, so that future could be waiting behind
    the waiter. *)

val await : 'a future -> 'a
(** Block until the task has run; returns its value or re-raises its
    exception. Safe to call from any domain and more than once. If the pool
    is shut down before the task was started, {!shutdown} runs the task in
    the shutting-down caller, so [await] never hangs. *)

val peek : 'a future -> 'a option
(** Non-blocking {!await}: [Some v] once the task has completed with [v],
    [None] while it is still pending (or queued); re-raises the task's
    exception if it failed. Safe from any domain and any number of times.
    This is the seam the multiplexed daemon loop uses to poll in-flight
    solves from [select] without blocking the other connections. *)

val both : t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** [both pool fa fb] evaluates the two thunks, possibly in parallel, and
    returns both results. On a pool of size 1 this is exactly
    [(fa (), fb ())], in that order. Used for divide-and-conquer splits
    (e.g. the Ramsey recursion). *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent. Operations on a shut-down
    pool run sequentially in the caller (size is treated as 1). *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down afterwards,
    whether [f] returns or raises. *)
