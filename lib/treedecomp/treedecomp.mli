(** Tree decompositions of the pattern graph, and their *nice* form.

    The decomposition is computed on the underlying undirected graph of a
    {!Phom_graph.Digraph.t} (edge directions and self-loops are irrelevant
    to width) by greedy vertex elimination: repeatedly eliminate the vertex
    of minimum degree (or minimum fill-in), record the vertex plus its
    current neighbourhood as a bag, and turn the neighbourhood into a
    clique. The bags hang off each other along the elimination order,
    giving a valid tree decomposition whose width is an upper bound on the
    true treewidth — exact on trees, series-parallel graphs and full
    k-trees, heuristic in general.

    The nice form rewrites that tree into the classic four-node grammar
    (leaf / introduce / forget / join, empty root bag) that the
    {!Dp_exact} dynamic program consumes. Everything here is deterministic:
    ties in the elimination order break towards the smallest vertex id, so
    the same graph always yields the same decomposition. *)

type heuristic =
  | Min_degree  (** eliminate the vertex of minimum current degree *)
  | Min_fill  (** eliminate the vertex adding the fewest fill-in edges *)

type t = {
  bags : int array array;  (** bag [i] (sorted) for elimination step [i] *)
  parent : int array;  (** parent bag index, [-1] for a component root *)
  order : int array;  (** elimination order: [order.(i)] eliminated at [i] *)
  width : int;  (** max bag size - 1; [-1] for the empty graph *)
}

val compute : ?heuristic:heuristic -> Phom_graph.Digraph.t -> t
(** Decompose the underlying undirected graph. Defaults to {!Min_degree}. *)

val width : ?heuristic:heuristic -> Phom_graph.Digraph.t -> int
(** [width g] = [(compute g).width] — the cheap eligibility probe used by
    algorithm auto-selection. *)

(** {1 Nice decompositions} *)

type kind =
  | Leaf  (** empty bag, no children *)
  | Introduce of int  (** bag = child bag + the vertex *)
  | Forget of int  (** bag = child bag - the vertex *)
  | Join  (** two children, all three bags equal *)

type nice = {
  nbags : int array array;  (** bag (sorted) per nice node *)
  nkind : kind array;
  nchildren : int array array;  (** child node ids, always smaller than own *)
  root : int;  (** the unique empty-bag root, last node id *)
  nwidth : int;  (** same convention as {!t.width} *)
}

val nice : t -> nice
(** Rewrite into the nice grammar. Children always carry smaller ids than
    their parent, so iterating nodes in id order is a bottom-up traversal.
    Disconnected components are forgotten down to empty bags and merged
    with empty-bag joins, so the result is always a single rooted tree —
    even for the empty graph (a lone [Leaf]). *)

(** {1 Validity checks — used by the test suite} *)

val check : Phom_graph.Digraph.t -> t -> (unit, string) result
(** Every vertex in some bag, occurrences connected in the tree, every
    (undirected) edge covered by a bag. *)

val check_nice : Phom_graph.Digraph.t -> nice -> (unit, string) result
(** The grammar invariants node by node, plus the same decomposition
    validity conditions on the nice tree itself. *)
