module D = Phom_graph.Digraph

type heuristic = Min_degree | Min_fill

type t = {
  bags : int array array;
  parent : int array;
  order : int array;
  width : int;
}

type kind = Leaf | Introduce of int | Forget of int | Join

type nice = {
  nbags : int array array;
  nkind : kind array;
  nchildren : int array array;
  root : int;
  nwidth : int;
}

(* ---------------------------------------------------------------- *)
(* Greedy elimination                                               *)
(* ---------------------------------------------------------------- *)

let compute ?(heuristic = Min_degree) g =
  let n = D.n g in
  (* underlying undirected adjacency; self-loops never affect width *)
  let adj = Array.init n (fun _ -> Hashtbl.create 8) in
  let connect u v =
    if u <> v && not (Hashtbl.mem adj.(u) v) then begin
      Hashtbl.add adj.(u) v ();
      Hashtbl.add adj.(v) u ()
    end
  in
  for v = 0 to n - 1 do
    Array.iter (fun w -> connect v w) (D.succ g v)
  done;
  let alive = Array.make n true in
  let neighbours v =
    List.sort compare (Hashtbl.fold (fun w () acc -> w :: acc) adj.(v) [])
  in
  let fill_in v =
    let ns = neighbours v in
    let missing = ref 0 in
    let rec pairs = function
      | [] -> ()
      | a :: rest ->
          List.iter (fun b -> if not (Hashtbl.mem adj.(a) b) then incr missing) rest;
          pairs rest
    in
    pairs ns;
    !missing
  in
  let score v =
    match heuristic with
    | Min_degree -> Hashtbl.length adj.(v)
    | Min_fill -> fill_in v
  in
  let order = Array.make n (-1) in
  let bags = Array.make n [||] in
  for i = 0 to n - 1 do
    (* minimum score, ties towards the smallest id: deterministic *)
    let best = ref (-1) and best_score = ref max_int in
    for v = 0 to n - 1 do
      if alive.(v) then begin
        let s = score v in
        if s < !best_score then begin
          best := v;
          best_score := s
        end
      end
    done;
    let v = !best in
    let ns = neighbours v in
    order.(i) <- v;
    bags.(i) <- Array.of_list (List.sort compare (v :: ns));
    (* eliminate: clique the neighbourhood, then drop [v] *)
    let rec clique = function
      | [] -> ()
      | a :: rest ->
          List.iter (fun b -> connect a b) rest;
          clique rest
    in
    clique ns;
    List.iter (fun w -> Hashtbl.remove adj.(w) v) ns;
    Hashtbl.reset adj.(v);
    alive.(v) <- false
  done;
  (* bag [i] hangs off the bag of the earliest-eliminated other member;
     bags with no later members root their component *)
  let pos = Array.make n 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  let parent = Array.make n (-1) in
  for i = 0 to n - 1 do
    let p = ref max_int in
    Array.iter (fun w -> if w <> order.(i) then p := min !p pos.(w)) bags.(i);
    if !p < max_int then parent.(i) <- !p
  done;
  let width = Array.fold_left (fun acc b -> max acc (Array.length b - 1)) (-1) bags in
  { bags; parent; order; width }

let width ?heuristic g = (compute ?heuristic g).width

(* ---------------------------------------------------------------- *)
(* Nice form                                                        *)
(* ---------------------------------------------------------------- *)

(* sorted-array set helpers; bags stay sorted ascending throughout *)

let arr_mem x a =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length a && a.(!lo) = x

let arr_add x a =
  let n = Array.length a in
  let out = Array.make (n + 1) x in
  let j = ref 0 in
  for i = 0 to n - 1 do
    if a.(i) < x then begin
      out.(!j) <- a.(i);
      incr j
    end
  done;
  out.(!j) <- x;
  for i = !j to n - 1 do
    out.(i + 1) <- a.(i)
  done;
  out

let arr_remove x a =
  Array.of_list (List.filter (fun y -> y <> x) (Array.to_list a))

let arr_diff a b = Array.to_list a |> List.filter (fun x -> not (arr_mem x b))

let nice (td : t) =
  let n = Array.length td.bags in
  let children = Array.make n [] in
  for i = 0 to n - 1 do
    if td.parent.(i) >= 0 then
      children.(td.parent.(i)) <- i :: children.(td.parent.(i))
  done;
  (* nodes accumulate children-before-parent, so ids are already a
     bottom-up order when the list is reversed at the end *)
  let acc = ref [] and next = ref 0 in
  let push bag kind kids =
    let id = !next in
    incr next;
    acc := (bag, kind, kids) :: !acc;
    id
  in
  (* chain single-child nodes until bag [from] becomes bag [target]:
     forget the extras, then introduce the missing *)
  let retarget id from target =
    let id = ref id and bag = ref from in
    List.iter
      (fun v ->
        bag := arr_remove v !bag;
        id := push !bag (Forget v) [| !id |])
      (arr_diff from target);
    List.iter
      (fun v ->
        bag := arr_add v !bag;
        id := push !bag (Introduce v) [| !id |])
      (arr_diff target from);
    !id
  in
  let rec build i =
    let bag = td.bags.(i) in
    match List.sort compare children.(i) with
    | [] ->
        let leaf = push [||] Leaf [||] in
        retarget leaf [||] bag
    | kids ->
        let tops =
          List.map (fun c -> retarget (build c) td.bags.(c) bag) kids
        in
        List.fold_left
          (fun a b -> push bag Join [| a; b |])
          (List.hd tops) (List.tl tops)
  in
  let roots = ref [] in
  for i = 0 to n - 1 do
    if td.parent.(i) < 0 then
      roots := retarget (build i) td.bags.(i) [||] :: !roots
  done;
  let root =
    match List.rev !roots with
    | [] -> push [||] Leaf [||]
    | r :: rest -> List.fold_left (fun a b -> push [||] Join [| a; b |]) r rest
  in
  let nodes = Array.of_list (List.rev !acc) in
  {
    nbags = Array.map (fun (b, _, _) -> b) nodes;
    nkind = Array.map (fun (_, k, _) -> k) nodes;
    nchildren = Array.map (fun (_, _, c) -> c) nodes;
    root;
    nwidth = td.width;
  }

(* ---------------------------------------------------------------- *)
(* Validity checks                                                  *)
(* ---------------------------------------------------------------- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

(* decomposition validity over an arbitrary rooted forest of bags *)
let check_bags g bags parent =
  let n = D.n g in
  let m = Array.length bags in
  let holds v i = arr_mem v bags.(i) in
  let* () =
    (* every vertex occurs, and its occurrences form one connected
       subtree: exactly one occurrence whose parent lacks the vertex *)
    let rec vertices v =
      if v >= n then Ok ()
      else begin
        let occurs = ref 0 and tops = ref 0 in
        for i = 0 to m - 1 do
          if holds v i then begin
            incr occurs;
            if parent.(i) < 0 || not (holds v parent.(i)) then incr tops
          end
        done;
        if !occurs = 0 then Error (Printf.sprintf "vertex %d in no bag" v)
        else if !tops <> 1 then
          Error (Printf.sprintf "vertex %d occurrences disconnected" v)
        else vertices (v + 1)
      end
    in
    vertices 0
  in
  (* every edge (directions ignored) inside some bag *)
  let covered u v =
    let ok = ref false in
    for i = 0 to m - 1 do
      if holds u i && holds v i then ok := true
    done;
    !ok
  in
  let rec edges v =
    if v >= n then Ok ()
    else
      match
        Array.find_opt (fun w -> w <> v && not (covered v w)) (D.succ g v)
      with
      | Some w -> Error (Printf.sprintf "edge %d->%d covered by no bag" v w)
      | None -> edges (v + 1)
  in
  edges 0

let check g td =
  if D.n g = 0 then Ok () else check_bags g td.bags td.parent

let check_nice g (nt : nice) =
  let m = Array.length nt.nbags in
  let* () =
    if nt.root <> m - 1 then Error "root is not the last node"
    else if Array.length nt.nbags.(nt.root) <> 0 then
      Error "root bag not empty"
    else Ok ()
  in
  let rec grammar i =
    if i >= m then Ok ()
    else
      let bag = nt.nbags.(i) and kids = nt.nchildren.(i) in
      let bad fmt = Printf.ksprintf (fun s -> Error (Printf.sprintf "node %d: %s" i s)) fmt in
      let* () =
        if Array.exists (fun c -> c >= i) kids then bad "child id not below parent"
        else
          match (nt.nkind.(i), kids) with
          | Leaf, [||] ->
              if bag = [||] then Ok () else bad "leaf bag not empty"
          | Introduce v, [| c |] ->
              if arr_mem v nt.nbags.(c) then bad "introduced vertex already present"
              else if bag <> arr_add v nt.nbags.(c) then bad "introduce bag mismatch"
              else Ok ()
          | Forget v, [| c |] ->
              if not (arr_mem v nt.nbags.(c)) then bad "forgotten vertex absent"
              else if bag <> arr_remove v nt.nbags.(c) then bad "forget bag mismatch"
              else Ok ()
          | Join, [| a; b |] ->
              if bag = nt.nbags.(a) && bag = nt.nbags.(b) then Ok ()
              else bad "join bags differ"
          | _ -> bad "kind/arity mismatch"
      in
      grammar (i + 1)
  in
  let* () = grammar 0 in
  if D.n g = 0 then Ok ()
  else begin
    (* same decomposition conditions, over the nice tree itself *)
    let parent = Array.make m (-1) in
    Array.iteri (fun i kids -> Array.iter (fun c -> parent.(c) <- i) kids) nt.nchildren;
    check_bags g nt.nbags parent
  end
