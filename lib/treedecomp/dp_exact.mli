(** Exact p-homomorphism solving and counting by dynamic programming over a
    nice tree decomposition of the pattern.

    The DP consumes raw materials rather than a [Phom.Instance.t] so this
    library can sit below [phom]: the pattern digraph, the data graph's
    (bounded) transitive closure as a bitmatrix, the per-pattern-node
    candidate rows (already ξ-filtered), and a per-pair value function.
    Tables are keyed by bag assignments; edge constraints are enforced at
    introduce nodes, which a valid decomposition guarantees covers every
    pattern edge. Work is O(Σ_bags |cands|^{bag size}) — polynomial for
    bounded width.

    Anytime contract: one {!Phom_graph.Budget} tick per table row
    processed. A tripped optimisation returns the empty mapping (always a
    valid partial p-hom mapping) with the budget's status; a tripped count
    returns [count = 0, exact = false] — a partial count is not a valid
    answer, and callers must never cache it. With a pool, the two subtrees
    of each join node run concurrently on forked budgets; results are
    deterministic and identical to the sequential run whenever the budget
    does not trip. *)

type outcome = {
  mapping : (int * int) list;  (** sorted by pattern node, best found *)
  value : float;  (** objective value of [mapping] *)
  status : Phom_graph.Budget.status;
}

type count_outcome = {
  count : int;  (** number of total valid mappings, saturating at max_int *)
  exact : bool;  (** false when saturated or when the budget tripped *)
  status : Phom_graph.Budget.status;
}

val solve :
  ?budget:Phom_graph.Budget.t ->
  ?pool:Phom_parallel.Pool.t ->
  g1:Phom_graph.Digraph.t ->
  tc2:Phom_graph.Bitmatrix.t ->
  cands:int array array ->
  pair_value:(int -> int -> float) ->
  Treedecomp.nice ->
  outcome
(** Maximum-value partial p-hom mapping: every pattern node maps to one of
    its candidates or stays unmapped (value 0); every pattern edge between
    mapped nodes must land in [tc2]. [pair_value v u >= 0.] is the gain of
    mapping pattern node [v] to data node [u] — [fun _ _ -> 1.] recovers
    maximum cardinality. Ties break towards the lexicographically smallest
    assignment, so the result is independent of table iteration order.
    Injectivity is deliberately out of scope (treewidth DP cannot track
    it); callers wanting 1-1 check the witness and fall back. *)

val count :
  ?budget:Phom_graph.Budget.t ->
  ?pool:Phom_parallel.Pool.t ->
  g1:Phom_graph.Digraph.t ->
  tc2:Phom_graph.Bitmatrix.t ->
  cands:int array array ->
  Treedecomp.nice ->
  count_outcome
(** Number of {e total} valid p-hom mappings — every pattern node mapped to
    one of its candidates, every pattern edge satisfied. [count > 0] iff
    the p-hom decision problem holds on the candidate tables; the empty
    pattern has exactly one (empty) mapping. Arithmetic saturates at
    [max_int] with [exact = false]. Injective counting is #W[1]-hard and
    not offered. *)
