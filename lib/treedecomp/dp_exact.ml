module D = Phom_graph.Digraph
module BM = Phom_graph.Bitmatrix
module Budget = Phom_graph.Budget
module Pool = Phom_parallel.Pool
module Obs = Phom_obs.Obs
module T = Treedecomp

type outcome = {
  mapping : (int * int) list;
  value : float;
  status : Budget.status;
}

type count_outcome = { count : int; exact : bool; status : Budget.status }

(* same safety net as the assignment-tree solver: callers who pass no
   budget still terminate on hostile inputs *)
let default_budget () = Budget.create ~steps:5_000_000 ()

let resolve_budget = function Some b -> b | None -> default_budget ()

(* ---------------------------------------------------------------- *)
(* Per-node plans                                                   *)
(* ---------------------------------------------------------------- *)

type intro_plan = {
  iv : int;  (* the introduced pattern node *)
  ipos : int;  (* its position in this node's bag *)
  self_loop : bool;
  cons : (int * bool * bool) array;
      (* (child-bag position of w, v->w edge, w->v edge) for each bag
         co-member [w] adjacent to [iv] — the only edge checks this node
         performs; a valid decomposition covers every edge this way *)
}

type plan =
  | P_leaf
  | P_intro of intro_plan
  | P_forget of { fpos : int; fv : int }  (* position in child bag, vertex *)
  | P_join

let pos_of v bag =
  let p = ref (-1) in
  Array.iteri (fun i x -> if x = v then p := i) bag;
  assert (!p >= 0);
  !p

let plans g1 (nt : T.nice) =
  Array.init
    (Array.length nt.T.nkind)
    (fun i ->
      match nt.T.nkind.(i) with
      | T.Leaf -> P_leaf
      | T.Join -> P_join
      | T.Forget v ->
          let cbag = nt.T.nbags.(nt.T.nchildren.(i).(0)) in
          P_forget { fpos = pos_of v cbag; fv = v }
      | T.Introduce v ->
          let cbag = nt.T.nbags.(nt.T.nchildren.(i).(0)) in
          let cons = ref [] in
          Array.iteri
            (fun j w ->
              let fwd = D.has_edge g1 v w and bwd = D.has_edge g1 w v in
              if fwd || bwd then cons := (j, fwd, bwd) :: !cons)
            cbag;
          P_intro
            {
              iv = v;
              ipos = pos_of v nt.T.nbags.(i);
              self_loop = D.has_edge g1 v v;
              cons = Array.of_list (List.rev !cons);
            })

(* keys are bag assignments: data-node ids in bag position order, [-1]
   meaning "unmapped" (optimisation only) *)

let key_insert key pos u =
  let n = Array.length key in
  let out = Array.make (n + 1) u in
  Array.blit key 0 out 0 pos;
  Array.blit key pos out (pos + 1) (n - pos);
  out

let key_remove key pos =
  let n = Array.length key in
  let out = Array.make (n - 1) 0 in
  Array.blit key 0 out 0 pos;
  Array.blit key (pos + 1) out pos (n - 1 - pos);
  out

let compatible tc2 (p : intro_plan) key u =
  ((not p.self_loop) || BM.get tc2 u u)
  && Array.for_all
       (fun (j, fwd, bwd) ->
         let u' = key.(j) in
         u' < 0
         || (((not fwd) || BM.get tc2 u u')
            && ((not bwd) || BM.get tc2 u' u)))
       p.cons

(* ---------------------------------------------------------------- *)
(* Traversal: bottom-up over the nice tree, join subtrees fanning    *)
(* out on the pool under forked budgets                              *)
(* ---------------------------------------------------------------- *)

let m_rows = Obs.counter "phom_dp_table_rows_total"
let m_joins = Obs.counter "phom_dp_joins_total"
let m_bags = Obs.counter "phom_dp_bags_total"

let width_hist () =
  Obs.histogram
    ~buckets:[| 1.; 2.; 3.; 4.; 6.; 8.; 12.; 16. |]
    "phom_dp_width"

let observe_shape (nt : T.nice) =
  Obs.add m_bags (Array.length nt.T.nkind);
  Obs.observe (width_hist ()) (float_of_int (max 0 nt.T.nwidth))

let traverse ?pool budget (nt : T.nice) f =
  let m = Array.length nt.T.nkind in
  let tables = Array.make m None in
  let rec compute b node =
    let kids =
      match nt.T.nchildren.(node) with
      | [||] -> [||]
      | [| c |] -> [| compute b c |]
      | [| c1; c2 |] -> (
          match pool with
          | None ->
              let t1 = compute b c1 in
              let t2 = compute b c2 in
              [| t1; t2 |]
          | Some p ->
              (* pre-fork in the owning domain; the parent must not tick
                 while the leases are out, and [Pool.both] runs both
                 tasks to completion even when one of them trips *)
              let b1 = Budget.fork b and b2 = Budget.fork b in
              let r =
                try
                  Ok (Pool.both p (fun () -> compute b1 c1) (fun () -> compute b2 c2))
                with e -> Error e
              in
              Budget.join b b1;
              Budget.join b b2;
              (match r with
              | Ok (t1, t2) -> [| t1; t2 |]
              | Error e -> raise e))
      | _ -> assert false
    in
    let t = f b node kids in
    tables.(node) <- Some t;
    t
  in
  let root = compute budget nt.T.root in
  (root, tables)

(* ---------------------------------------------------------------- *)
(* Optimisation                                                     *)
(* ---------------------------------------------------------------- *)

let solve ?budget ?pool ~g1 ~tc2 ~cands ~pair_value (nt : T.nice) =
  Obs.span "dp" @@ fun () ->
  let budget = resolve_budget budget in
  observe_shape nt;
  let np = plans g1 nt in
  let node_table b node (kids : (int array, float) Hashtbl.t array) =
    let rows = ref 0 in
    let row b =
      Budget.tick_exn b;
      incr rows
    in
    let t =
      match np.(node) with
      | P_leaf ->
          let t = Hashtbl.create 1 in
          row b;
          Hashtbl.replace t [||] 0.;
          t
      | P_intro p ->
          let ct = kids.(0) in
          let t = Hashtbl.create (2 * (Hashtbl.length ct + 1)) in
          Hashtbl.iter
            (fun key v ->
              let emit u gain =
                row b;
                Hashtbl.replace t (key_insert key p.ipos u) (v +. gain)
              in
              (* leaving [iv] unmapped is always allowed: the DP optimises
                 over partial mappings, matching the B&B's "skip" branch *)
              emit (-1) 0.;
              Array.iter
                (fun u ->
                  if compatible tc2 p key u then emit u (pair_value p.iv u))
                cands.(p.iv))
            ct;
          t
      | P_forget { fpos; _ } ->
          let ct = kids.(0) in
          let t = Hashtbl.create (Hashtbl.length ct + 1) in
          Hashtbl.iter
            (fun key v ->
              row b;
              let key' = key_remove key fpos in
              match Hashtbl.find_opt t key' with
              | Some v' when v' >= v -> ()
              | _ -> Hashtbl.replace t key' v)
            ct;
          t
      | P_join ->
          Obs.incr m_joins;
          let t1 = kids.(0) and t2 = kids.(1) in
          let bag = nt.T.nbags.(node) in
          let t = Hashtbl.create (Hashtbl.length t1 + 1) in
          Hashtbl.iter
            (fun key v1 ->
              row b;
              match Hashtbl.find_opt t2 key with
              | None -> ()
              | Some v2 ->
                  (* both subtree values include the bag's own gain *)
                  let bagv = ref 0. in
                  Array.iteri
                    (fun j u ->
                      if u >= 0 then bagv := !bagv +. pair_value bag.(j) u)
                    key;
                  Hashtbl.replace t key (v1 +. v2 -. !bagv))
            t1;
          t
    in
    Obs.add m_rows !rows;
    t
  in
  match traverse ?pool budget nt node_table with
  | exception Budget.Exhausted_budget ->
      (* tables died with the budget; the empty mapping is the one
         witness we can still vouch for *)
      { mapping = []; value = 0.; status = Budget.status budget }
  | root_table, tables ->
      let value = Hashtbl.find root_table [||] in
      let table node = Option.get tables.(node) in
      let chosen = Hashtbl.create 16 in
      (* top-down over the stored tables; at a forget, rediscover the
         extension that produced the kept maximum. Scan order (unmapped
         first, then candidates in row order) fixes ties independently of
         any hashtable iteration order, so sequential and pooled runs
         reconstruct the same mapping. *)
      let rec walk node key =
        match np.(node) with
        | P_leaf -> ()
        | P_intro p ->
            let u = key.(p.ipos) in
            if u >= 0 then Hashtbl.replace chosen p.iv u;
            walk nt.T.nchildren.(node).(0) (key_remove key p.ipos)
        | P_forget { fpos; fv } ->
            let target = Hashtbl.find (table node) key in
            let ct = table nt.T.nchildren.(node).(0) in
            let hit = ref (-2) in
            let try_ext u =
              if !hit = -2 then
                match Hashtbl.find_opt ct (key_insert key fpos u) with
                | Some v when v = target -> hit := u
                | _ -> ()
            in
            try_ext (-1);
            Array.iter try_ext cands.(fv);
            assert (!hit > -2);
            walk nt.T.nchildren.(node).(0) (key_insert key fpos !hit)
        | P_join ->
            walk nt.T.nchildren.(node).(0) key;
            walk nt.T.nchildren.(node).(1) key
      in
      walk nt.T.root [||];
      let mapping =
        List.sort compare (Hashtbl.fold (fun v u acc -> (v, u) :: acc) chosen [])
      in
      { mapping; value; status = Budget.Complete }

(* ---------------------------------------------------------------- *)
(* Counting                                                         *)
(* ---------------------------------------------------------------- *)

(* counts saturate instead of wrapping: homomorphism counts explode
   combinatorially, and a clamped count with [exact = false] beats a
   silently negative one *)
let add_sat sat a b =
  if a > max_int - b then begin
    Atomic.set sat true;
    max_int
  end
  else a + b

let mul_sat sat a b =
  if a > 0 && b > max_int / a then begin
    Atomic.set sat true;
    max_int
  end
  else a * b

let count ?budget ?pool ~g1 ~tc2 ~cands (nt : T.nice) =
  Obs.span "dp" @@ fun () ->
  let budget = resolve_budget budget in
  observe_shape nt;
  let np = plans g1 nt in
  let sat = Atomic.make false in
  let node_table b node (kids : (int array, int) Hashtbl.t array) =
    let rows = ref 0 in
    let row b =
      Budget.tick_exn b;
      incr rows
    in
    let t =
      match np.(node) with
      | P_leaf ->
          let t = Hashtbl.create 1 in
          row b;
          Hashtbl.replace t [||] 1;
          t
      | P_intro p ->
          (* total mappings only: no "unmapped" extension here *)
          let ct = kids.(0) in
          let t = Hashtbl.create (2 * (Hashtbl.length ct + 1)) in
          Hashtbl.iter
            (fun key c ->
              Array.iter
                (fun u ->
                  if compatible tc2 p key u then begin
                    row b;
                    Hashtbl.replace t (key_insert key p.ipos u) c
                  end)
                cands.(p.iv))
            ct;
          t
      | P_forget { fpos; _ } ->
          let ct = kids.(0) in
          let t = Hashtbl.create (Hashtbl.length ct + 1) in
          Hashtbl.iter
            (fun key c ->
              row b;
              let key' = key_remove key fpos in
              let prev =
                match Hashtbl.find_opt t key' with Some p -> p | None -> 0
              in
              Hashtbl.replace t key' (add_sat sat prev c))
            ct;
          t
      | P_join ->
          Obs.incr m_joins;
          let t1 = kids.(0) and t2 = kids.(1) in
          let t = Hashtbl.create (Hashtbl.length t1 + 1) in
          Hashtbl.iter
            (fun key c1 ->
              row b;
              match Hashtbl.find_opt t2 key with
              | None -> ()
              | Some c2 ->
                  (* the forgotten-below vertex sets of the two subtrees
                     are disjoint, so extensions multiply *)
                  Hashtbl.replace t key (mul_sat sat c1 c2))
            t1;
          t
    in
    Obs.add m_rows !rows;
    t
  in
  match traverse ?pool budget nt node_table with
  | exception Budget.Exhausted_budget ->
      (* a partial count is not an anytime answer: report zero, flag it
         inexact, and let the status say why. Never cache this. *)
      { count = 0; exact = false; status = Budget.status budget }
  | root_table, _ ->
      let count =
        match Hashtbl.find_opt root_table [||] with Some c -> c | None -> 0
      in
      { count; exact = not (Atomic.get sat); status = Budget.Complete }
