type t = {
  graph : Digraph.t;
  comp_of_node : int array;
  members : int list array;
  cyclic : bool array;
}

let compress g =
  let scc = Scc.compute g in
  let count = scc.Scc.count in
  let members = Scc.members scc in
  let cyclic = Array.make count false in
  Array.iteri (fun c ms -> if List.length ms > 1 then cyclic.(c) <- true) members;
  Digraph.iter_edges (fun u v -> if u = v then cyclic.(scc.Scc.comp.(u)) <- true) g;
  (* Component-level reachability: same reverse-topological sweep as the
     transitive closure, but over component ids. *)
  let comp_succ = Array.make count [] in
  List.iter (fun (c, d) -> comp_succ.(c) <- d :: comp_succ.(c)) (Scc.condensation_edges g scc);
  let reach = Array.init count (fun _ -> Bitset.create count) in
  let edge_list = ref [] in
  for c = 0 to count - 1 do
    List.iter
      (fun d ->
        Bitset.add reach.(c) d;
        Bitset.union_into ~into:reach.(c) reach.(d))
      comp_succ.(c);
    Bitset.iter (fun d -> edge_list := (c, d) :: !edge_list) reach.(c);
    if cyclic.(c) then edge_list := (c, c) :: !edge_list
  done;
  let labels = Array.init count (fun c -> "bag:" ^ string_of_int c) in
  {
    graph = Digraph.make ~labels ~edges:!edge_list;
    comp_of_node = scc.Scc.comp;
    members;
    cyclic;
  }

let bag t g2 node = List.map (Digraph.label g2) t.members.(node)

let capacity t node = List.length t.members.(node)
