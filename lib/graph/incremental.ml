(* Incremental maintenance of reachability closures under single-edge
   edits. The matrices are dense, so semantic equality is byte equality
   (Bitmatrix.equal compares words): every function here must — and does —
   return exactly the matrix a from-scratch recompute would build, it just
   touches fewer rows.

   Full closure, insert (u, v): a new non-empty path can always be rewritten
   to use the new edge a last time, so for every source x that could reach u
   before the edit (or x = u itself),

     reach'(x) = reach(x) ∪ {v} ∪ reach(v)        (old rows on the right)

   and every other row is unchanged. O(affected rows) word-ors, no search.

   Full closure, delete (u, v): only sources that reached u can lose
   anything; their rows are recomputed on the edited graph. Nodes of one SCC
   share their reach set, so the search runs once per affected condensation
   component and the row is copied to the rest.

   Bounded closure, either op: a ≤k-hop path through the edge spends at
   least one hop on it, so its source sits within k-1 hops of u in the graph
   that contains the edge (the edited graph for an insert, the original for
   a delete). Rows inside that backward frontier are re-propagated with the
   exact per-node BFS of [Bounded_closure.compute]; the rest are copied.

   Maintenance is deliberately unbudgeted: the caches only ever hold
   closures whose computation completed (tripped budgets are never cached),
   and the work here is proportional to the affected region, not the
   graph. *)

let transitive_add ~old ~u ~v =
  let n = Bitmatrix.rows old in
  let t = Bitmatrix.copy old in
  for x = 0 to n - 1 do
    if x = u || Bitmatrix.get old x u then begin
      Bitmatrix.or_row ~from:old ~src:v ~into:t ~dst:x;
      Bitmatrix.set t x v true
    end
  done;
  t

let transitive_del ~after ~old ~u =
  let n = Digraph.n after in
  let t = Bitmatrix.create ~rows:n ~cols:n in
  let scc = Scc.compute after in
  (* comp -> an affected row already recomputed for that component *)
  let done_row = Array.make scc.Scc.count (-1) in
  for x = 0 to n - 1 do
    if x = u || Bitmatrix.get old x u then begin
      let c = scc.Scc.comp.(x) in
      let r = done_row.(c) in
      if r >= 0 then Bitmatrix.or_row ~from:t ~src:r ~into:t ~dst:x
      else begin
        Bitset.iter
          (fun y -> Bitmatrix.set t x y true)
          (Traversal.reachable_nonempty after x);
        done_row.(c) <- x
      end
    end
    else Bitmatrix.or_row ~from:old ~src:x ~into:t ~dst:x
  done;
  t

(* the per-node frontier BFS of Bounded_closure.compute, for one row *)
let bounded_row ~k g m x =
  let n = Digraph.n g in
  let visited = Bitset.create n in
  let frontier = ref [] in
  Array.iter
    (fun w ->
      if not (Bitset.mem visited w) then begin
        Bitset.add visited w;
        Bitmatrix.set m x w true;
        frontier := w :: !frontier
      end)
    (Digraph.succ g x);
  let depth = ref 1 in
  while !depth < k && !frontier <> [] do
    incr depth;
    let next = ref [] in
    List.iter
      (fun y ->
        Array.iter
          (fun w ->
            if not (Bitset.mem visited w) then begin
              Bitset.add visited w;
              Bitmatrix.set m x w true;
              next := w :: !next
            end)
          (Digraph.succ g y))
      !frontier;
    frontier := !next
  done

(* nodes with a path to [u] of length <= depth, plus [u] itself *)
let backward_within g u depth =
  let mark = Array.make (Digraph.n g) false in
  mark.(u) <- true;
  let frontier = ref [ u ] and d = ref 0 in
  while !d < depth && !frontier <> [] do
    incr d;
    let next = ref [] in
    List.iter
      (fun x ->
        Array.iter
          (fun p ->
            if not mark.(p) then begin
              mark.(p) <- true;
              next := p :: !next
            end)
          (Digraph.pred g x))
      !frontier;
    frontier := !next
  done;
  mark

let bounded_update ~k ~witness ~after ~old ~u =
  let n = Digraph.n after in
  let t = Bitmatrix.create ~rows:n ~cols:n in
  if k > 0 then begin
    let affected = backward_within witness u (k - 1) in
    for x = 0 to n - 1 do
      if affected.(x) then bounded_row ~k after t x
      else Bitmatrix.or_row ~from:old ~src:x ~into:t ~dst:x
    done
  end;
  t

let update ~hops ~before ~after ~op ~u ~v closure =
  match hops with
  | None -> (
      match op with
      | `Add -> transitive_add ~old:closure ~u ~v
      | `Del -> transitive_del ~after ~old:closure ~u)
  | Some k ->
      let witness = match op with `Add -> after | `Del -> before in
      bounded_update ~k ~witness ~after ~old:closure ~u
