let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "phg 1\n";
  for v = 0 to Digraph.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "node %d %s\n" v (Digraph.label g v))
  done;
  Digraph.iter_edges
    (fun u v -> Buffer.add_string buf (Printf.sprintf "edge %d %d\n" u v))
    g;
  Buffer.contents buf

let default_max_bytes = 64 * 1024 * 1024

let of_string ?(max_bytes = default_max_bytes) s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if String.length s > max_bytes then
    err "input too large (%d bytes; limit %d bytes)" (String.length s) max_bytes
  else
  let lines = String.split_on_char '\n' s in
  match lines with
  | [] -> err "empty input"
  | header :: rest ->
      if String.trim header <> "phg 1" then err "line 1: missing 'phg 1' header"
      else begin
        let nodes = Hashtbl.create 64 in
        let edges = ref [] in
        let problem = ref None in
        let add_node lineno id lbl =
          if Hashtbl.mem nodes id then
            problem := Some (Printf.sprintf "line %d: duplicate node %d" lineno id)
          else Hashtbl.add nodes id lbl
        in
        List.iteri
          (fun lineno line ->
            let lineno = lineno + 2 in
            let line = String.trim line in
            if !problem = None && line <> "" && line.[0] <> '#' then
              match String.index_opt line ' ' with
              | None -> problem := Some (Printf.sprintf "line %d: malformed" lineno)
              | Some sp -> (
                  let kw = String.sub line 0 sp in
                  let rest = String.sub line (sp + 1) (String.length line - sp - 1) in
                  match kw with
                  | "node" -> (
                      match String.index_opt rest ' ' with
                      | None -> (
                          match int_of_string_opt rest with
                          | Some id -> add_node lineno id ""
                          | None ->
                              problem := Some (Printf.sprintf "line %d: bad node id" lineno))
                      | Some sp2 -> (
                          let id_s = String.sub rest 0 sp2 in
                          let lbl = String.sub rest (sp2 + 1) (String.length rest - sp2 - 1) in
                          match int_of_string_opt id_s with
                          | Some id -> add_node lineno id lbl
                          | None ->
                              problem := Some (Printf.sprintf "line %d: bad node id" lineno)))
                  | "edge" -> (
                      match String.split_on_char ' ' rest with
                      | [ a; b ] -> (
                          match (int_of_string_opt a, int_of_string_opt b) with
                          | Some u, Some v -> edges := (u, v) :: !edges
                          | _ ->
                              problem := Some (Printf.sprintf "line %d: bad edge" lineno))
                      | _ -> problem := Some (Printf.sprintf "line %d: bad edge" lineno))
                  | _ ->
                      problem :=
                        Some (Printf.sprintf "line %d: unknown keyword %S" lineno kw)))
          rest;
        match !problem with
        | Some m -> Error m
        | None ->
            let n = Hashtbl.length nodes in
            let labels = Array.make n "" in
            let bad = ref None in
            Hashtbl.iter
              (fun id lbl ->
                if id < 0 || id >= n then bad := Some id else labels.(id) <- lbl)
              nodes;
            (match !bad with
            | Some id -> err "node ids must be dense 0..n-1 (saw %d of %d nodes)" id n
            | None -> (
                try Ok (Digraph.make ~labels ~edges:!edges)
                with Invalid_argument m -> Error m))
      end

let save path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

(* every [load] failure names the offending file exactly once; parse errors
   additionally carry the line number from [of_string], so the uniform
   shape is "<file>: line <n>: <what>" *)
let load ?(max_bytes = default_max_bytes) path =
  try
    if Sys.is_directory path then Error (path ^ ": is a directory")
    else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        (* refuse pathological files before reading them into memory *)
        let len = in_channel_length ic in
        if len > max_bytes then
          Error
            (Printf.sprintf "%s: file too large (%d bytes; limit %d bytes)" path
               len max_bytes)
        else
          Result.map_error
            (fun m -> path ^ ": " ^ m)
            (of_string ~max_bytes (really_input_string ic len)))
  with
  | Sys_error m -> Error m
  | End_of_file -> Error (path ^ ": truncated read")

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_xml s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_graphml g =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
     <graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n\
    \  <key id=\"label\" for=\"node\" attr.name=\"label\" attr.type=\"string\"/>\n\
    \  <graph id=\"G\" edgedefault=\"directed\">\n";
  for v = 0 to Digraph.n g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "    <node id=\"n%d\"><data key=\"label\">%s</data></node>\n"
         v
         (escape_xml (Digraph.label g v)))
  done;
  Digraph.iter_edges
    (fun u v ->
      Buffer.add_string buf
        (Printf.sprintf "    <edge source=\"n%d\" target=\"n%d\"/>\n" u v))
    g;
  Buffer.add_string buf "  </graph>\n</graphml>\n";
  Buffer.contents buf

let to_dot ?(name = "G") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  for v = 0 to Digraph.n g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%d: %s\"];\n" v v (escape (Digraph.label g v)))
  done;
  Digraph.iter_edges
    (fun u v -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u v))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let mapping_to_dot ?(name = "Match") ~g1 ~g2 mapping =
  let buf = Buffer.create 4096 in
  let covered = Hashtbl.create 16 in
  List.iter (fun (v, _) -> Hashtbl.replace covered v ()) mapping;
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" name);
  Buffer.add_string buf "  subgraph cluster_pattern {\n    label=\"G1 (pattern)\";\n";
  for v = 0 to Digraph.n g1 - 1 do
    let style =
      if Hashtbl.mem covered v then " style=filled fillcolor=lightblue" else ""
    in
    Buffer.add_string buf
      (Printf.sprintf "    p%d [label=\"%s\"%s];\n" v
         (escape (Digraph.label g1 v))
         style)
  done;
  Digraph.iter_edges
    (fun u v -> Buffer.add_string buf (Printf.sprintf "    p%d -> p%d;\n" u v))
    g1;
  Buffer.add_string buf "  }\n  subgraph cluster_data {\n    label=\"G2 (data)\";\n";
  for u = 0 to Digraph.n g2 - 1 do
    Buffer.add_string buf
      (Printf.sprintf "    d%d [label=\"%s\"];\n" u (escape (Digraph.label g2 u)))
  done;
  Digraph.iter_edges
    (fun u v -> Buffer.add_string buf (Printf.sprintf "    d%d -> d%d;\n" u v))
    g2;
  Buffer.add_string buf "  }\n";
  List.iter
    (fun (v, u) ->
      Buffer.add_string buf
        (Printf.sprintf "  p%d -> d%d [style=dashed constraint=false color=blue];\n"
           v u))
    mapping;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
