type reason = Deadline | Steps | Cancelled

type status = Complete | Exhausted of reason

(* State shared by a family of forked tokens (see [fork] below). [ledger]
   is the next unclaimed step index of the global allowance: children claim
   leases of [lease] steps with one fetch-and-add, so the hot tick path
   stays an increment and a compare, and the grants exactly partition
   [initial steps, total) — the global step cap is exact, not approximate.
   [sstop] is the first trip of the whole family: the first exhausted
   member publishes its reason, every sibling adopts it at its next poll
   point. *)
type shared = {
  total : int;  (* the family-wide max_steps *)
  ledger : int Atomic.t;
  sstop : reason option Atomic.t;
}

type t = {
  deadline : float;  (* absolute gettimeofday; [infinity] = none *)
  mutable max_steps : int;  (* [max_int] = none; children grow it by leases *)
  cancel_hook : (unit -> bool) option;
  needs_poll : bool;  (* deadline, hook or family present: worth polling *)
  mutable steps : int;
  mutable stop : reason option;
  mutable shared : shared option;
  is_child : bool;  (* a forked token drawing leases from [shared] *)
}

exception Exhausted_budget

let publish s r = ignore (Atomic.compare_and_set s.sstop None (Some r))

(* every trip goes through here so that a member of a forked family also
   publishes the reason to its siblings *)
let set_stop t r =
  if t.stop = None then begin
    t.stop <- Some r;
    match t.shared with Some s -> publish s r | None -> ()
  end

let make ~deadline ~max_steps ~cancel_hook =
  {
    deadline;
    max_steps;
    cancel_hook;
    needs_poll = deadline < infinity || Option.is_some cancel_hook;
    steps = 0;
    stop = None;
    shared = None;
    is_child = false;
  }

let unlimited () = make ~deadline:infinity ~max_steps:max_int ~cancel_hook:None

let create ?anchor ?timeout ?steps ?cancel () =
  let deadline =
    match timeout with
    | None -> infinity
    | Some s when s < 0. -> invalid_arg "Budget.create: negative timeout"
    | Some s ->
        let base = match anchor with Some a -> a | None -> Unix.gettimeofday () in
        base +. s
  in
  let max_steps =
    match steps with
    | None -> max_int
    | Some n when n < 0 -> invalid_arg "Budget.create: negative steps"
    | Some n -> n
  in
  make ~deadline ~max_steps ~cancel_hook:cancel

let trip_after n =
  if n < 0 then invalid_arg "Budget.trip_after: negative trip point";
  make ~deadline:infinity ~max_steps:n ~cancel_hook:None

let check_clock_and_hook t =
  if t.deadline < infinity && Unix.gettimeofday () > t.deadline then
    set_stop t Deadline
  else begin
    match t.cancel_hook with
    | Some hook when hook () -> set_stop t Cancelled
    | _ -> ()
  end

let poll t =
  (match t.stop with
  | Some _ -> ()
  | None -> (
      (* a sibling's trip wins over a fresh local check, and carries its
         own reason (first-exhausted cancels the family) *)
      match t.shared with
      | Some s -> (
          match Atomic.get s.sstop with
          | Some r -> t.stop <- Some r
          | None -> check_clock_and_hook t)
      | None -> check_clock_and_hook t));
  t.stop = None

(* lease size: one fetch-and-add per 128 ticks keeps contention negligible
   while bounding how far a family can overshoot a deadline-free step cap
   (it cannot overshoot at all: grants never exceed the remaining total) *)
let lease = 128

let rec tick t =
  match t.stop with
  | Some _ -> false
  | None ->
      if t.steps >= t.max_steps then begin
        match t.shared with
        | Some s when t.is_child ->
            (* lease exhausted: claim the next slice of the family
               allowance, or trip the whole family if none is left *)
            let old = Atomic.fetch_and_add s.ledger lease in
            let grant = if old >= s.total then 0 else min lease (s.total - old) in
            if grant = 0 then begin
              (* a sibling may already have tripped for a better reason *)
              (match Atomic.get s.sstop with
              | Some r -> t.stop <- Some r
              | None -> set_stop t Steps);
              false
            end
            else begin
              t.max_steps <- t.max_steps + grant;
              tick t
            end
        | _ ->
            set_stop t Steps;
            false
      end
      else begin
        t.steps <- t.steps + 1;
        let s = t.steps in
        (* poll on powers of two (so short runs under a tight deadline still
           notice it) and every 1024 ticks thereafter *)
        if t.needs_poll && (s land 0x3ff = 0 || s land (s - 1) = 0) then
          poll t
        else true
      end

let tick_exn t = if not (tick t) then raise Exhausted_budget

let exhausted t = t.stop <> None

let cancel t = set_stop t Cancelled

let status t = match t.stop with None -> Complete | Some r -> Exhausted r

let why t = t.stop

let steps_used t = t.steps

let fork parent =
  let s =
    match parent.shared with
    | Some s -> s
    | None ->
        let s =
          {
            total = parent.max_steps;
            ledger = Atomic.make parent.steps;
            sstop = Atomic.make None;
          }
        in
        (* a parent that already tripped spawns already-tripped children *)
        (match parent.stop with Some r -> publish s r | None -> ());
        parent.shared <- Some s;
        s
  in
  {
    deadline = parent.deadline;
    max_steps = 0;  (* first tick claims the first lease *)
    cancel_hook = parent.cancel_hook;
    needs_poll = true;  (* must observe sibling trips *)
    steps = 0;
    stop = Atomic.get s.sstop;
    shared = Some s;
    is_child = true;
  }

let join parent child =
  if not child.is_child then invalid_arg "Budget.join: not a forked token";
  parent.steps <-
    (if parent.steps > max_int - child.steps then max_int
     else parent.steps + child.steps);
  (match child.stop with
  | Some r when parent.stop = None -> parent.stop <- Some r
  | _ -> ());
  (* a sibling may have tripped after this child completed *)
  match parent.shared with
  | Some s when parent.stop = None -> (
      match Atomic.get s.sstop with
      | Some r -> parent.stop <- Some r
      | None -> ())
  | _ -> ()

let string_of_reason = function
  | Deadline -> "deadline"
  | Steps -> "steps"
  | Cancelled -> "cancelled"

let string_of_status = function
  | Complete -> "complete"
  | Exhausted r -> Printf.sprintf "exhausted (%s)" (string_of_reason r)

let pp_status ppf s = Format.pp_print_string ppf (string_of_status s)
