type reason = Deadline | Steps | Cancelled

type status = Complete | Exhausted of reason

type t = {
  deadline : float;  (* absolute gettimeofday; [infinity] = none *)
  max_steps : int;  (* [max_int] = none *)
  cancel_hook : (unit -> bool) option;
  needs_poll : bool;  (* deadline or hook present: worth touching the clock *)
  mutable steps : int;
  mutable stop : reason option;
}

exception Exhausted_budget

let make ~deadline ~max_steps ~cancel_hook =
  {
    deadline;
    max_steps;
    cancel_hook;
    needs_poll = deadline < infinity || Option.is_some cancel_hook;
    steps = 0;
    stop = None;
  }

let unlimited () = make ~deadline:infinity ~max_steps:max_int ~cancel_hook:None

let create ?anchor ?timeout ?steps ?cancel () =
  let deadline =
    match timeout with
    | None -> infinity
    | Some s when s < 0. -> invalid_arg "Budget.create: negative timeout"
    | Some s ->
        let base = match anchor with Some a -> a | None -> Unix.gettimeofday () in
        base +. s
  in
  let max_steps =
    match steps with
    | None -> max_int
    | Some n when n < 0 -> invalid_arg "Budget.create: negative steps"
    | Some n -> n
  in
  make ~deadline ~max_steps ~cancel_hook:cancel

let trip_after n =
  if n < 0 then invalid_arg "Budget.trip_after: negative trip point";
  make ~deadline:infinity ~max_steps:n ~cancel_hook:None

let poll t =
  (match t.stop with
  | Some _ -> ()
  | None ->
      if t.deadline < infinity && Unix.gettimeofday () > t.deadline then
        t.stop <- Some Deadline
      else begin
        match t.cancel_hook with
        | Some hook when hook () -> t.stop <- Some Cancelled
        | _ -> ()
      end);
  t.stop = None

let tick t =
  match t.stop with
  | Some _ -> false
  | None ->
      if t.steps >= t.max_steps then begin
        t.stop <- Some Steps;
        false
      end
      else begin
        t.steps <- t.steps + 1;
        let s = t.steps in
        (* poll on powers of two (so short runs under a tight deadline still
           notice it) and every 1024 ticks thereafter *)
        if t.needs_poll && (s land 0x3ff = 0 || s land (s - 1) = 0) then
          poll t
        else true
      end

let tick_exn t = if not (tick t) then raise Exhausted_budget

let exhausted t = t.stop <> None

let cancel t = if t.stop = None then t.stop <- Some Cancelled

let status t = match t.stop with None -> Complete | Some r -> Exhausted r

let why t = t.stop

let steps_used t = t.steps

let string_of_reason = function
  | Deadline -> "deadline"
  | Steps -> "steps"
  | Cancelled -> "cancelled"

let string_of_status = function
  | Complete -> "complete"
  | Exhausted r -> Printf.sprintf "exhausted (%s)" (string_of_reason r)

let pp_status ppf s = Format.pp_print_string ppf (string_of_status s)
