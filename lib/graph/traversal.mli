(** Standard traversals over {!Digraph}: BFS, DFS, reachability, topological
    order. All are iterative (explicit stacks/queues) so they are safe on
    graphs whose depth exceeds the OCaml call stack. *)

val bfs_order : Digraph.t -> int -> int list
(** Nodes in BFS order from a source (the source included, reachable nodes
    only). *)

val dfs_order : Digraph.t -> int -> int list
(** Nodes in DFS preorder from a source. *)

val reachable : Digraph.t -> int -> Bitset.t
(** [reachable g v] is the set of nodes reachable from [v], including [v]
    itself (via the empty path). *)

val reachable_nonempty : Digraph.t -> int -> Bitset.t
(** [reachable_nonempty g v] is the set of nodes reachable from [v] via a
    path with at least one edge; [v] itself belongs iff it lies on a
    cycle through [v] or has a self-loop. This is the path semantics of
    p-homomorphism. *)

val distances : Digraph.t -> int -> int array
(** BFS distances from a source; unreachable nodes get [-1]. *)

val topological_order : Digraph.t -> int list option
(** [Some order] with every edge going forward in [order] when the graph is
    a DAG, [None] if it has a cycle. *)

val is_dag : Digraph.t -> bool

val shortest_path : Digraph.t -> int -> int -> int list option
(** [shortest_path g u v] is a minimum-edge-count path [u; ...; v] with at
    least one edge, or [None]. [u = v] requires a cycle through [u]. *)
