(** Packed boolean matrices.

    Rows are word-aligned so that whole-row boolean operations (used by the
    transitive-closure computation) are single array sweeps. The main client
    is the reachability matrix [H2] of the paper's algorithms: [get m u v]
    answers "is there a non-empty path from [u] to [v]" in O(1). *)

type t

val create : rows:int -> cols:int -> t
(** All-false matrix. *)

val rows : t -> int
val cols : t -> int

val byte_size : t -> int
(** Heap footprint of the matrix in bytes (words of the packed
    representation, including headers). Used for byte-accounted caching of
    closure artifacts. *)

val get : t -> int -> int -> bool
(** [get m r c]. Raises [Invalid_argument] when out of bounds. *)

val set : t -> int -> int -> bool -> unit
(** [set m r c b] updates one cell in place. *)

val or_row_into : t -> dst:int -> src:int -> unit
(** [or_row_into m ~dst ~src] sets row [dst] to [dst ∨ src]. *)

val or_row : from:t -> src:int -> into:t -> dst:int -> unit
(** [or_row ~from ~src ~into ~dst] sets row [dst] of [into] to its union with
    row [src] of [from]. Both matrices must have the same number of columns. *)

val row_count : t -> int -> int
(** Number of true cells in a row. *)

val count : t -> int
(** Number of true cells in the whole matrix. *)

val copy : t -> t
val equal : t -> t -> bool

val iter_row : (int -> unit) -> t -> int -> unit
(** [iter_row f m r] applies [f] to every column [c] with [get m r c]. *)

val transpose : t -> t

val pp : Format.formatter -> t -> unit
(** Renders as lines of [01] characters, one row per line. *)
