(** Plain-text serialization for {!Digraph} and Graphviz export.

    The text format ("phg 1") is line-oriented:
    {v
    phg 1
    node <id> <label ...rest of line>
    edge <src> <dst>
    # comments and blank lines are ignored
    v}
    Node ids must be the dense range [0 .. n-1] (in any order). *)

val to_string : Digraph.t -> string
val of_string : string -> (Digraph.t, string) result

val save : string -> Digraph.t -> unit
(** [save path g] writes the text format to [path]. *)

val load : string -> (Digraph.t, string) result
(** [load path] parses a file saved by {!save}. *)

val to_dot : ?name:string -> Digraph.t -> string
(** Graphviz [digraph] rendering, nodes labelled [id: label]. *)

val to_graphml : Digraph.t -> string
(** GraphML rendering (for Gephi/yEd and friends), with the node label in a
    ["label"] data key. *)

val mapping_to_dot :
  ?name:string -> g1:Digraph.t -> g2:Digraph.t -> (int * int) list -> string
(** Render two graphs as DOT clusters with dashed cross-edges for each
    mapping pair — the one-glance debugging view of a matching result.
    Pattern nodes covered by the mapping are highlighted. *)
