(** Plain-text serialization for {!Digraph} and Graphviz export.

    The text format ("phg 1") is line-oriented:
    {v
    phg 1
    node <id> <label ...rest of line>
    edge <src> <dst>
    # comments and blank lines are ignored
    v}
    Node ids must be the dense range [0 .. n-1] (in any order). *)

val to_string : Digraph.t -> string

val of_string : ?max_bytes:int -> string -> (Digraph.t, string) result
(** Parse errors — a malformed line, a duplicate [node] definition, sparse
    ids, an edge endpoint out of range, or input larger than [max_bytes]
    (default 64 MiB) — are reported as [Error] with a line number, never as
    an exception. *)

val save : string -> Digraph.t -> unit
(** [save path g] writes the text format to [path]. *)

val load : ?max_bytes:int -> string -> (Digraph.t, string) result
(** [load path] parses a file saved by {!save}. Files larger than
    [max_bytes] (default 64 MiB) are rejected {e before} being read into
    memory, so a multi-GB or pathological file fails fast with a clear
    message instead of OOMing the process.

    Every error names the offending file exactly once, and parse errors
    keep their line number, so the uniform shape is
    ["<file>: line <n>: <what>"] — callers print the message as is, without
    re-prefixing the path. *)

val to_dot : ?name:string -> Digraph.t -> string
(** Graphviz [digraph] rendering, nodes labelled [id: label]. *)

val to_graphml : Digraph.t -> string
(** GraphML rendering (for Gephi/yEd and friends), with the node label in a
    ["label"] data key. *)

val mapping_to_dot :
  ?name:string -> g1:Digraph.t -> g2:Digraph.t -> (int * int) list -> string
(** Render two graphs as DOT clusters with dashed cross-edges for each
    mapping pair — the one-glance debugging view of a matching result.
    Pattern nodes covered by the mapping are highlighted. *)
