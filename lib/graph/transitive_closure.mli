(** Transitive closure with the paper's non-empty-path semantics.

    [(u, v) ∈ E⁺] iff there is a path from [u] to [v] with at least one edge;
    in particular [(u, u) ∈ E⁺] iff [u] lies on a cycle or carries a
    self-loop. Computed by Tarjan condensation followed by a reverse
    topological sweep accumulating reachability bitsets (the approach of
    Nuutila [22] cited by the paper), so cyclic graphs cost no more than
    their condensation DAG. *)

val compute : ?budget:Budget.t -> Digraph.t -> Bitmatrix.t
(** [compute g] is the n×n reachability matrix of [g] ([H2] in the paper's
    algorithm compMaxCard, Fig. 3 lines 5–7). An exhausted [budget] (one
    tick per condensation row operation) stops the sweep early and yields
    an {e under-approximation} of reachability — downstream matchers then
    see fewer candidate paths, never a spurious one, so anytime results
    stay valid. *)

val graph : ?budget:Budget.t -> Digraph.t -> Digraph.t
(** [graph g] is [G⁺] as a digraph with the same nodes and labels. Used to
    make matching symmetric (Section 3.2 Remark: check [G1⁺ ⪯(e,p) G2]).
    Budget semantics as {!compute}. *)

val naive : Digraph.t -> Bitmatrix.t
(** Reference implementation by per-node BFS; O(n·(n+m)). Used by tests as
    an oracle for {!compute}. *)
