let bfs_order g src =
  let seen = Bitset.create (Digraph.n g) in
  let q = Queue.create () in
  Bitset.add seen src;
  Queue.add src q;
  let out = ref [] in
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    out := v :: !out;
    Array.iter
      (fun w ->
        if not (Bitset.mem seen w) then begin
          Bitset.add seen w;
          Queue.add w q
        end)
      (Digraph.succ g v)
  done;
  List.rev !out

let dfs_order g src =
  let seen = Bitset.create (Digraph.n g) in
  let stack = ref [ src ] in
  let out = ref [] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
        stack := rest;
        if not (Bitset.mem seen v) then begin
          Bitset.add seen v;
          out := v :: !out;
          (* push successors in reverse so the smallest is visited first *)
          let ss = Digraph.succ g v in
          for i = Array.length ss - 1 downto 0 do
            if not (Bitset.mem seen ss.(i)) then stack := ss.(i) :: !stack
          done
        end
  done;
  List.rev !out

let reachable g src =
  let seen = Bitset.create (Digraph.n g) in
  List.iter (Bitset.add seen) (bfs_order g src);
  seen

let reachable_nonempty g src =
  let seen = Bitset.create (Digraph.n g) in
  let q = Queue.create () in
  Array.iter
    (fun w ->
      if not (Bitset.mem seen w) then begin
        Bitset.add seen w;
        Queue.add w q
      end)
    (Digraph.succ g src);
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun w ->
        if not (Bitset.mem seen w) then begin
          Bitset.add seen w;
          Queue.add w q
        end)
      (Digraph.succ g v)
  done;
  seen

let distances g src =
  let d = Array.make (Digraph.n g) (-1) in
  d.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun w ->
        if d.(w) < 0 then begin
          d.(w) <- d.(v) + 1;
          Queue.add w q
        end)
      (Digraph.succ g v)
  done;
  d

let topological_order g =
  let n = Digraph.n g in
  let indeg = Array.init n (Digraph.in_degree g) in
  let q = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v q
  done;
  let out = ref [] and seen = ref 0 in
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    incr seen;
    out := v :: !out;
    Array.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w q)
      (Digraph.succ g v)
  done;
  if !seen = n then Some (List.rev !out) else None

let is_dag g = topological_order g <> None

let shortest_path g u v =
  let n = Digraph.n g in
  if n = 0 then None
  else begin
    (* BFS over non-empty paths: parent.(w) set when w first reached. *)
    let parent = Array.make n (-2) in
    let q = Queue.create () in
    Array.iter
      (fun w ->
        if parent.(w) = -2 then begin
          parent.(w) <- u;
          Queue.add w q
        end)
      (Digraph.succ g u);
    let found = ref (parent.(v) <> -2) in
    while (not !found) && not (Queue.is_empty q) do
      let x = Queue.pop q in
      Array.iter
        (fun w ->
          if parent.(w) = -2 then begin
            parent.(w) <- x;
            if w = v then found := true;
            Queue.add w q
          end)
        (Digraph.succ g x)
    done;
    if parent.(v) = -2 then None
    else begin
      (* walk back from v; the first hop out of u has parent u *)
      let rec walk node acc =
        let p = parent.(node) in
        if p = u then u :: node :: acc else walk p (node :: acc)
      in
      Some (walk v [])
    end
  end
