type t = { comp : int array; count : int }

(* Union-find with path halving and union by size. *)
let make_uf n = Array.init n (fun i -> i), Array.make n 1

let rec find parent x =
  let p = parent.(x) in
  if p = x then x
  else begin
    parent.(x) <- parent.(p);
    find parent parent.(x)
  end

let union parent size x y =
  let rx = find parent x and ry = find parent y in
  if rx <> ry then begin
    let big, small = if size.(rx) >= size.(ry) then (rx, ry) else (ry, rx) in
    parent.(small) <- big;
    size.(big) <- size.(big) + size.(small)
  end

let normalize parent n =
  let comp = Array.make n (-1) in
  let count = ref 0 in
  for v = 0 to n - 1 do
    let r = find parent v in
    if comp.(r) < 0 then begin
      comp.(r) <- !count;
      incr count
    end
  done;
  (Array.init n (fun v -> comp.(find parent v)), !count)

let compute g =
  let n = Digraph.n g in
  let parent, size = make_uf n in
  Digraph.iter_edges (fun u v -> union parent size u v) g;
  let comp, count = normalize parent n in
  { comp; count }

let members t =
  let out = Array.make t.count [] in
  for v = Array.length t.comp - 1 downto 0 do
    out.(t.comp.(v)) <- v :: out.(t.comp.(v))
  done;
  out

let of_subset g nodes =
  let sub, old_of_new = Digraph.induced g nodes in
  let t = compute sub in
  let groups = members t in
  let translated =
    Array.to_list (Array.map (List.map (fun v -> old_of_new.(v))) groups)
  in
  List.sort
    (fun a b ->
      match (a, b) with
      | x :: _, y :: _ -> compare x y
      | _ -> compare a b)
    translated
