(** Random graph generators.

    All generators are deterministic given the [Random.State.t] they are
    passed; experiments seed them explicitly so every table and figure is
    replayable.

    [paper_pattern] and [paper_data] implement the synthetic workload of the
    paper's Section 6 verbatim: a pattern [G1] with [m] nodes and [4m] edges,
    and data graphs [G2] derived from [G1] by replacing each edge, with
    probability [noise], by a path of 1–5 fresh nodes and attaching, with
    probability [noise], a fresh subgraph of at most 10 nodes to each node.
    Labels are drawn from a pool of [5m] labels partitioned into [√(5m)]
    groups (see {!Phom_sim.Labelsim} for the induced similarity). *)

val erdos_renyi :
  rng:Random.State.t -> n:int -> m:int -> labels:(int -> string) -> Digraph.t
(** [m] distinct random edges (no self-loops) over [n] nodes. Raises
    [Invalid_argument] if [m] exceeds [n·(n-1)]. *)

val random_dag :
  rng:Random.State.t -> n:int -> m:int -> labels:(int -> string) -> Digraph.t
(** Like {!erdos_renyi} but edges only go forward in a random topological
    order, so the result is acyclic. *)

val random_tree :
  rng:Random.State.t -> n:int -> labels:(int -> string) -> Digraph.t
(** Rooted tree on [n] nodes: node 0 is the root, every other node has one
    incoming edge from a uniformly random earlier node. *)

val series_parallel :
  rng:Random.State.t -> n:int -> labels:(int -> string) -> Digraph.t
(** Series-parallel digraph on [n] nodes grown from a single [0 -> 1] edge
    by the two SP expansions (subdivide an edge / add a parallel length-2
    branch), each adding one node. Treewidth at most 2 by construction —
    the mid-band of the low-treewidth DP workload. Deterministic in [rng]. *)

val random_ktree :
  rng:Random.State.t ->
  n:int ->
  k:int ->
  ?keep:float ->
  labels:(int -> string) ->
  unit ->
  Digraph.t
(** k-tree on [n] nodes: a (k+1)-clique seed, then each new node joins a
    uniformly random existing k-clique; edges point low id -> high id, so
    the skeleton is a DAG. Treewidth exactly [k] once [n > k]. [keep] < 1
    (default 1) retains each edge with that probability — a partial
    k-tree, treewidth at most [k]. Deterministic in [rng]. *)

val preferential_attachment :
  rng:Random.State.t -> n:int -> out:int -> labels:(int -> string) -> Digraph.t
(** Scale-free-ish digraph: each new node links to [out] targets chosen with
    probability proportional to (in-degree + 1). Produces the hub-heavy
    degree distributions of web graphs. *)

(** {1 The paper's synthetic workload (Section 6)} *)

type label_pool = { nlabels : int; ngroups : int }
(** The label pool used by a pattern: [5m] labels in [√(5m)] groups. Label
    [i] is rendered ["L<i>"] and belongs to group [i mod ngroups]. *)

val pool_for : int -> label_pool
(** [pool_for m] is the pool the paper prescribes for a pattern of size [m]. *)

val label_name : int -> string
val group_of_label : label_pool -> string -> int
(** Group of a label; raises [Invalid_argument] on labels not of the form
    ["L<i>"]. *)

val paper_pattern : rng:Random.State.t -> m:int -> Digraph.t * label_pool
(** Pattern graph [G1]: [m] nodes, [4m] distinct random edges, labels drawn
    uniformly from the pool. *)

val paper_data :
  rng:Random.State.t ->
  pool:label_pool ->
  noise:float ->
  Digraph.t ->
  Digraph.t
(** [paper_data ~rng ~pool ~noise g1] builds a data graph [G2] ⊇ a
    subdivision of [G1]: nodes [0 .. n1-1] of the result are the copies of
    [G1]'s nodes (same labels), so the identity is always a p-hom mapping
    witness. [noise] is a probability in [0, 1]. *)

(** {1 Helpers} *)

val subdivide_edges :
  rng:Random.State.t ->
  prob:float ->
  max_len:int ->
  fresh_label:(Random.State.t -> string) ->
  Digraph.t ->
  Digraph.t
(** Replace each edge, with probability [prob], by a path through 1 to
    [max_len] fresh nodes. Original nodes keep their ids. *)
