type t = { comp : int array; count : int }

(* Iterative Tarjan. The classic recursive formulation overflows the stack on
   long paths, so we keep an explicit frame stack of (node, next-successor
   index) pairs. *)
let compute g =
  let n = Digraph.n g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Bitset.create n in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let frames = ref [] in
  let push_node v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    Bitset.add on_stack v;
    frames := (v, ref 0) :: !frames
  in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      push_node root;
      while !frames <> [] do
        match !frames with
        | [] -> ()
        | (v, next) :: rest ->
            let ss = Digraph.succ g v in
            if !next < Array.length ss then begin
              let w = ss.(!next) in
              incr next;
              if index.(w) < 0 then push_node w
              else if Bitset.mem on_stack w then
                lowlink.(v) <- min lowlink.(v) index.(w)
            end
            else begin
              frames := rest;
              (match rest with
              | (p, _) :: _ -> lowlink.(p) <- min lowlink.(p) lowlink.(v)
              | [] -> ());
              if lowlink.(v) = index.(v) then begin
                let c = !next_comp in
                incr next_comp;
                let continue = ref true in
                while !continue do
                  match !stack with
                  | [] -> continue := false
                  | w :: tl ->
                      stack := tl;
                      Bitset.remove on_stack w;
                      comp.(w) <- c;
                      if w = v then continue := false
                done
              end
            end
      done
    end
  done;
  { comp; count = !next_comp }

let members t =
  let out = Array.make t.count [] in
  for v = Array.length t.comp - 1 downto 0 do
    out.(t.comp.(v)) <- v :: out.(t.comp.(v))
  done;
  out

let sizes t =
  let out = Array.make t.count 0 in
  Array.iter (fun c -> out.(c) <- out.(c) + 1) t.comp;
  out

let is_trivial g t c =
  let ms = members t in
  match ms.(c) with
  | [ v ] -> not (Digraph.has_edge g v v)
  | _ -> false

let condensation_edges g t =
  let seen = Hashtbl.create 97 in
  Digraph.fold_edges
    (fun u v acc ->
      let cu = t.comp.(u) and cv = t.comp.(v) in
      if cu <> cv && not (Hashtbl.mem seen (cu, cv)) then begin
        Hashtbl.add seen (cu, cv) ();
        (cu, cv) :: acc
      end
      else acc)
    g []
