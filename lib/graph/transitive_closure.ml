let cyclic_comps g scc =
  let cyclic = Array.make scc.Scc.count false in
  let sz = Scc.sizes scc in
  Array.iteri (fun c s -> if s > 1 then cyclic.(c) <- true) sz;
  Digraph.iter_edges (fun u v -> if u = v then cyclic.(scc.Scc.comp.(u)) <- true) g;
  cyclic

let compute ?budget g =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let n = Digraph.n g in
  let scc = Scc.compute g in
  let count = scc.Scc.count in
  let cyclic = cyclic_comps g scc in
  (* member bits of each component, over node columns *)
  let memb = Bitmatrix.create ~rows:count ~cols:n in
  Array.iteri (fun v c -> Bitmatrix.set memb c v true) scc.Scc.comp;
  (* distinct condensation successors of each component *)
  let comp_succ = Array.make count [] in
  List.iter
    (fun (c, d) -> comp_succ.(c) <- d :: comp_succ.(c))
    (Scc.condensation_edges g scc);
  (* components are numbered in reverse topological order: an edge c→d between
     distinct components has c > d, so sweeping c = 0, 1, ... visits every
     successor before its predecessors. An exhausted budget stops the sweep:
     the matrix built from a prefix under-approximates reachability, which
     every client treats conservatively (fewer candidate paths, never a
     spurious one). *)
  let reach = Bitmatrix.create ~rows:count ~cols:n in
  (try
     for c = 0 to count - 1 do
       List.iter
         (fun d ->
           Budget.tick_exn budget;
           Bitmatrix.or_row ~from:memb ~src:d ~into:reach ~dst:c;
           Bitmatrix.or_row_into reach ~dst:c ~src:d)
         comp_succ.(c);
       Budget.tick_exn budget;
       if cyclic.(c) then Bitmatrix.or_row ~from:memb ~src:c ~into:reach ~dst:c
     done
   with Budget.Exhausted_budget -> ());
  let t = Bitmatrix.create ~rows:n ~cols:n in
  for u = 0 to n - 1 do
    Bitmatrix.or_row ~from:reach ~src:scc.Scc.comp.(u) ~into:t ~dst:u
  done;
  t

let graph ?budget g =
  let t = compute ?budget g in
  let edge_list = ref [] in
  for u = 0 to Digraph.n g - 1 do
    Bitmatrix.iter_row (fun v -> edge_list := (u, v) :: !edge_list) t u
  done;
  Digraph.make ~labels:(Digraph.labels g) ~edges:!edge_list

let naive g =
  let n = Digraph.n g in
  let t = Bitmatrix.create ~rows:n ~cols:n in
  for u = 0 to n - 1 do
    Bitset.iter (fun v -> Bitmatrix.set t u v true) (Traversal.reachable_nonempty g u)
  done;
  t
