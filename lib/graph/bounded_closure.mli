(** Hop-bounded reachability: [(u, v)] iff there is a path from [u] to [v]
    of length between 1 and [k] edges.

    This generalizes both conventional matching and p-hom: with [k = 1] the
    relation is the edge relation (edge-to-edge matching), with [k = ∞] it
    is the transitive closure (unbounded edge-to-path matching), and
    intermediate [k] gives the fixed-length path semantics of Zou et al.'s
    distance-join pattern matching ([32] in the paper) — often what an
    application wants, since a "path" of 40 hyperlinks hardly preserves
    navigational structure. Plug the resulting matrix into
    {!Phom.Instance.make}'s [tc2] to run every algorithm under bounded
    semantics. *)

val compute : ?budget:Budget.t -> k:int -> Digraph.t -> Bitmatrix.t
(** [compute ~k g] by [k] rounds of BFS frontier expansion; O(k·n·m/w) with
    bitset rows. [k ≤ 0] yields the empty relation; [k ≥ n] coincides with
    {!Transitive_closure.compute}. An exhausted [budget] (one tick per BFS
    expansion) stops early with an under-approximation, as in
    {!Transitive_closure.compute}. *)

val relation : ?budget:Budget.t -> ?hops:int -> Digraph.t -> Bitmatrix.t
(** The cache-friendly entry point used by the matching service: [hops =
    None] is {!Transitive_closure.compute} (unbounded p-hom semantics),
    [hops = Some k] is [compute ~k]. Artifact caches key closures by
    [(graph id, hops)] and call only this function, so both semantics share
    one code path and one cache. *)

val distances_within : k:int -> Digraph.t -> int -> int array
(** [distances_within ~k g v].(u) is the length of a shortest non-empty path
    [v → u] if it is ≤ [k], else [-1]. Mostly a test oracle. *)
