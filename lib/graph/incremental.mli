(** Incremental maintenance of reachability closures under single-edge
    edits.

    [update] turns the closure of the graph before an edit into the closure
    of the graph after it, touching only the rows the edit can reach —
    ancestors of the edge's tail for the full transitive closure, the
    [hops - 1] backward frontier of the tail for bounded closures. The
    result is byte-identical ([Bitmatrix.equal]) to recomputing
    [Bounded_closure.relation] from scratch on the edited graph: the
    matrices are dense, so per-row exactness is matrix exactness. *)

val update :
  hops:int option ->
  before:Digraph.t ->
  after:Digraph.t ->
  op:[ `Add | `Del ] ->
  u:int ->
  v:int ->
  Bitmatrix.t ->
  Bitmatrix.t
(** [update ~hops ~before ~after ~op ~u ~v closure] is the closure of
    [after], given [closure] = the closure of [before] under the same
    [hops] ([None] = full transitive closure, [Some k] = [k]-bounded), where
    [after] differs from [before] exactly by the edge [(u, v)] — added for
    [`Add], removed for [`Del]. [closure] must be exact (computed without
    tripping a budget); the update itself is unbudgeted and proportional to
    the affected region. *)
