(** Weakly connected components (union-find), used by the Appendix-B
    partitioning optimization: after dropping unmatchable nodes from [G1],
    each weak component can be matched independently and the mappings
    unioned (Proposition 1). *)

type t = {
  comp : int array;  (** component id per node, ids are [0 .. count-1] *)
  count : int;
}

val compute : Digraph.t -> t

val members : t -> int list array
(** Nodes of each component, ascending. *)

val of_subset : Digraph.t -> int list -> int list list
(** [of_subset g nodes] groups [nodes] into the weak components of the
    subgraph of [g] induced by [nodes]. Each group is ascending; groups are
    ordered by their smallest element. *)
