let bits_per_word = 63

type t = { nrows : int; ncols : int; words_per_row : int; data : int array }

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Bitmatrix.create";
  let words_per_row = max 1 ((cols + bits_per_word - 1) / bits_per_word) in
  { nrows = rows; ncols = cols; words_per_row; data = Array.make (max 1 (rows * words_per_row)) 0 }

let rows m = m.nrows
let cols m = m.ncols

let byte_size m =
  (* header + the packed words; labels the cost a cached closure carries in
     a byte-accounted artifact cache *)
  (4 + Array.length m.data) * (Sys.word_size / 8)

let check m r c =
  if r < 0 || r >= m.nrows || c < 0 || c >= m.ncols then
    invalid_arg "Bitmatrix: index out of bounds"

let get m r c =
  check m r c;
  let w = (r * m.words_per_row) + (c / bits_per_word) in
  m.data.(w) land (1 lsl (c mod bits_per_word)) <> 0

let set m r c b =
  check m r c;
  let w = (r * m.words_per_row) + (c / bits_per_word) in
  let bit = 1 lsl (c mod bits_per_word) in
  if b then m.data.(w) <- m.data.(w) lor bit
  else m.data.(w) <- m.data.(w) land lnot bit

let or_row_into m ~dst ~src =
  if dst < 0 || dst >= m.nrows || src < 0 || src >= m.nrows then
    invalid_arg "Bitmatrix.or_row_into";
  let d = dst * m.words_per_row and s = src * m.words_per_row in
  for w = 0 to m.words_per_row - 1 do
    m.data.(d + w) <- m.data.(d + w) lor m.data.(s + w)
  done

let or_row ~from ~src ~into ~dst =
  if from.ncols <> into.ncols then invalid_arg "Bitmatrix.or_row: column mismatch";
  if src < 0 || src >= from.nrows || dst < 0 || dst >= into.nrows then
    invalid_arg "Bitmatrix.or_row";
  let s = src * from.words_per_row and d = dst * into.words_per_row in
  for w = 0 to from.words_per_row - 1 do
    into.data.(d + w) <- into.data.(d + w) lor from.data.(s + w)
  done

let popcount w =
  let rec go acc w = if w = 0 then acc else go (acc + 1) (w land (w - 1)) in
  go 0 w

let row_count m r =
  if r < 0 || r >= m.nrows then invalid_arg "Bitmatrix.row_count";
  let base = r * m.words_per_row in
  let acc = ref 0 in
  for w = 0 to m.words_per_row - 1 do
    acc := !acc + popcount m.data.(base + w)
  done;
  !acc

let count m =
  let acc = ref 0 in
  for r = 0 to m.nrows - 1 do
    acc := !acc + row_count m r
  done;
  !acc

let copy m = { m with data = Array.copy m.data }

let equal a b =
  a.nrows = b.nrows && a.ncols = b.ncols && a.data = b.data

let iter_row f m r =
  if r < 0 || r >= m.nrows then invalid_arg "Bitmatrix.iter_row";
  let base = r * m.words_per_row in
  for w = 0 to m.words_per_row - 1 do
    let word = m.data.(base + w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        let c = (w * bits_per_word) + b in
        if c < m.ncols && word land (1 lsl b) <> 0 then f c
      done
  done

let transpose m =
  let t = create ~rows:m.ncols ~cols:m.nrows in
  for r = 0 to m.nrows - 1 do
    iter_row (fun c -> set t c r true) m r
  done;
  t

let pp ppf m =
  for r = 0 to m.nrows - 1 do
    for c = 0 to m.ncols - 1 do
      Format.pp_print_char ppf (if get m r c then '1' else '0')
    done;
    if r < m.nrows - 1 then Format.pp_print_newline ppf ()
  done
