(** The Appendix-B compression of [G₂⁺]: every SCC of [G₂] forms a clique in
    the transitive closure, so it is replaced by a single node carrying the
    bag of its labels and a self-loop. The compressed graph [G₂*] has one
    node per SCC and an edge [c → d] iff some member of [c] reaches some
    member of [d] by a non-empty path; since reachability between components
    is transitive, [G₂*] is its own transitive closure (modulo self-loops on
    cyclic components). *)

type t = {
  graph : Digraph.t;
      (** [G₂*]: node [c] has a synthetic label ["bag:c"]; a self-loop marks a
          cyclic component. Its edge relation is transitively closed. *)
  comp_of_node : int array;  (** original node → compressed node *)
  members : int list array;  (** compressed node → original nodes, ascending *)
  cyclic : bool array;
      (** [cyclic.(c)] iff the component has ≥ 2 nodes or a self-loop *)
}

val compress : Digraph.t -> t

val bag : t -> Digraph.t -> int -> string list
(** [bag c g2 node] is the multiset of original labels carried by compressed
    node [node], in ascending node order of [g2]. *)

val capacity : t -> int -> int
(** Number of original nodes a compressed node stands for — the bound on how
    many distinct [G1] nodes may map into it under a 1-1 mapping. *)
