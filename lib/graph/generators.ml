let distinct_random_edges rng ~n ~m ~self_loops =
  let cap = if self_loops then n * n else n * (n - 1) in
  if m > cap then invalid_arg "Generators: too many edges requested";
  let seen = Hashtbl.create (2 * m) in
  let edges = ref [] in
  let count = ref 0 in
  while !count < m do
    let u = Random.State.int rng n and v = Random.State.int rng n in
    if (self_loops || u <> v) && not (Hashtbl.mem seen (u, v)) then begin
      Hashtbl.add seen (u, v) ();
      edges := (u, v) :: !edges;
      incr count
    end
  done;
  !edges

let erdos_renyi ~rng ~n ~m ~labels =
  let edge_list = distinct_random_edges rng ~n ~m ~self_loops:false in
  Digraph.make ~labels:(Array.init n labels) ~edges:edge_list

let random_dag ~rng ~n ~m ~labels =
  if m > n * (n - 1) / 2 then invalid_arg "Generators.random_dag: too many edges";
  (* random permutation = topological order; sample forward pairs *)
  let order = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  let pos = Array.make n 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  let seen = Hashtbl.create (2 * m) in
  let edges = ref [] and count = ref 0 in
  while !count < m do
    let u = Random.State.int rng n and v = Random.State.int rng n in
    if u <> v then begin
      let u, v = if pos.(u) < pos.(v) then (u, v) else (v, u) in
      if not (Hashtbl.mem seen (u, v)) then begin
        Hashtbl.add seen (u, v) ();
        edges := (u, v) :: !edges;
        incr count
      end
    end
  done;
  Digraph.make ~labels:(Array.init n labels) ~edges:!edges

let random_tree ~rng ~n ~labels =
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := (Random.State.int rng v, v) :: !edges
  done;
  Digraph.make ~labels:(Array.init n labels) ~edges:!edges

let series_parallel ~rng ~n ~labels =
  (* grow from a single s->t edge by the two SP expansions, each adding one
     node: subdivide an edge (series) or double it as a length-2 path
     (parallel). Treewidth stays <= 2 by construction. *)
  if n <= 1 then Digraph.make ~labels:(Array.init n labels) ~edges:[]
  else begin
    let edges = ref [ (0, 1) ] in
    for w = 2 to n - 1 do
      let arr = Array.of_list !edges in
      let u, v = arr.(Random.State.int rng (Array.length arr)) in
      if Random.State.bool rng then
        (* series: u -> w -> v replaces u -> v *)
        edges := (u, w) :: (w, v) :: List.filter (( <> ) (u, v)) !edges
      else
        (* parallel: a second branch u -> w -> v beside u -> v *)
        edges := (u, w) :: (w, v) :: !edges
    done;
    Digraph.make ~labels:(Array.init n labels) ~edges:!edges
  end

let random_ktree ~rng ~n ~k ?(keep = 1.0) ~labels () =
  (* seed clique on min n (k+1) nodes, then attach each new node to a
     uniformly random existing k-clique; edges point low id -> high id so
     the skeleton is a DAG. [keep] < 1 drops edges (a partial k-tree),
     which can only lower the treewidth below k. *)
  let base = min n (k + 1) in
  let edges = ref [] in
  for u = 0 to base - 1 do
    for v = u + 1 to base - 1 do
      edges := (u, v) :: !edges
    done
  done;
  if n > base then begin
    let without drop c = Array.of_list (List.filter (( <> ) drop) (Array.to_list c)) in
    let all = Array.init base (fun i -> i) in
    let cliques = ref (Array.map (fun drop -> without drop all) all) in
    for v = base to n - 1 do
      let c = !cliques.(Random.State.int rng (Array.length !cliques)) in
      Array.iter (fun u -> edges := (u, v) :: !edges) c;
      let fresh = Array.map (fun drop -> Array.append (without drop c) [| v |]) c in
      cliques := Array.append !cliques fresh
    done
  end;
  let edges =
    if keep >= 1.0 then !edges
    else List.filter (fun _ -> Random.State.float rng 1.0 < keep) !edges
  in
  Digraph.make ~labels:(Array.init n labels) ~edges

let preferential_attachment ~rng ~n ~out ~labels =
  let indeg = Array.make n 0 in
  let edges = ref [] in
  let pick_target v =
    (* weight ∝ in-degree + 1 among nodes < v *)
    let total = ref 0 in
    for u = 0 to v - 1 do
      total := !total + indeg.(u) + 1
    done;
    let r = ref (Random.State.int rng !total) in
    let chosen = ref 0 in
    (try
       for u = 0 to v - 1 do
         r := !r - (indeg.(u) + 1);
         if !r < 0 then begin
           chosen := u;
           raise Exit
         end
       done
     with Exit -> ());
    !chosen
  in
  for v = 1 to n - 1 do
    for _ = 1 to min out v do
      let u = pick_target v in
      edges := (v, u) :: !edges;
      indeg.(u) <- indeg.(u) + 1
    done
  done;
  Digraph.make ~labels:(Array.init n labels) ~edges:!edges

type label_pool = { nlabels : int; ngroups : int }

let pool_for m =
  let nlabels = 5 * m in
  let ngroups = max 1 (int_of_float (sqrt (float_of_int nlabels))) in
  { nlabels; ngroups }

let label_name i = "L" ^ string_of_int i

let group_of_label pool l =
  if String.length l < 2 || l.[0] <> 'L' then
    invalid_arg "Generators.group_of_label: not a pool label";
  match int_of_string_opt (String.sub l 1 (String.length l - 1)) with
  | Some i -> i mod pool.ngroups
  | None -> invalid_arg "Generators.group_of_label: not a pool label"

let random_pool_label rng pool = label_name (Random.State.int rng pool.nlabels)

let paper_pattern ~rng ~m =
  let pool = pool_for m in
  let g =
    erdos_renyi ~rng ~n:m ~m:(4 * m) ~labels:(fun _ -> random_pool_label rng pool)
  in
  (g, pool)

let subdivide_edges ~rng ~prob ~max_len ~fresh_label g =
  let n0 = Digraph.n g in
  let next = ref n0 in
  let new_labels = ref [] in
  let edges = ref [] in
  Digraph.iter_edges
    (fun u v ->
      if Random.State.float rng 1.0 < prob then begin
        let len = 1 + Random.State.int rng max_len in
        let path = Array.init len (fun _ ->
            let id = !next in
            incr next;
            new_labels := fresh_label rng :: !new_labels;
            id)
        in
        let prev = ref u in
        Array.iter
          (fun w ->
            edges := (!prev, w) :: !edges;
            prev := w)
          path;
        edges := (!prev, v) :: !edges
      end
      else edges := (u, v) :: !edges)
    g;
  let labels =
    Array.append (Digraph.labels g) (Array.of_list (List.rev !new_labels))
  in
  Digraph.make ~labels ~edges:!edges

let attach_subgraphs ~rng ~prob ~max_size ~fresh_label g =
  let next = ref (Digraph.n g) in
  let new_labels = ref [] in
  let extra = ref [] in
  for v = 0 to Digraph.n g - 1 do
    if Random.State.float rng 1.0 < prob then begin
      let size = 1 + Random.State.int rng max_size in
      let ids = Array.init size (fun _ ->
          let id = !next in
          incr next;
          new_labels := fresh_label rng :: !new_labels;
          id)
      in
      (* hook the subgraph below v and sprinkle some internal edges *)
      extra := (v, ids.(0)) :: !extra;
      for i = 1 to size - 1 do
        extra := (ids.(Random.State.int rng i), ids.(i)) :: !extra
      done;
      for _ = 1 to size / 2 do
        let a = ids.(Random.State.int rng size) and b = ids.(Random.State.int rng size) in
        if a <> b then extra := (a, b) :: !extra
      done
    end
  done;
  let labels =
    Array.append (Digraph.labels g) (Array.of_list (List.rev !new_labels))
  in
  Digraph.make ~labels ~edges:(List.rev_append !extra (Digraph.edges g))

let paper_data ~rng ~pool ~noise g1 =
  let fresh_label rng = random_pool_label rng pool in
  let subdivided = subdivide_edges ~rng ~prob:noise ~max_len:5 ~fresh_label g1 in
  attach_subgraphs ~rng ~prob:noise ~max_size:10 ~fresh_label subdivided
