let bits_per_word = 63

type t = { len : int; data : int array }

let words_for len = (len + bits_per_word - 1) / bits_per_word

let create len =
  if len < 0 then invalid_arg "Bitset.create: negative length";
  { len; data = Array.make (max 1 (words_for len)) 0 }

let length s = s.len

let check s i =
  if i < 0 || i >= s.len then invalid_arg "Bitset: index out of bounds"

let mem s i =
  check s i;
  s.data.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add s i =
  check s i;
  let w = i / bits_per_word in
  s.data.(w) <- s.data.(w) lor (1 lsl (i mod bits_per_word))

let remove s i =
  check s i;
  let w = i / bits_per_word in
  s.data.(w) <- s.data.(w) land lnot (1 lsl (i mod bits_per_word))

let copy s = { len = s.len; data = Array.copy s.data }
let clear s = Array.fill s.data 0 (Array.length s.data) 0

let same_universe a b op =
  if a.len <> b.len then invalid_arg ("Bitset." ^ op ^ ": universe mismatch")

let union_into ~into s =
  same_universe into s "union_into";
  for w = 0 to Array.length into.data - 1 do
    into.data.(w) <- into.data.(w) lor s.data.(w)
  done

let inter_into ~into s =
  same_universe into s "inter_into";
  for w = 0 to Array.length into.data - 1 do
    into.data.(w) <- into.data.(w) land s.data.(w)
  done

let diff_into ~into s =
  same_universe into s "diff_into";
  for w = 0 to Array.length into.data - 1 do
    into.data.(w) <- into.data.(w) land lnot s.data.(w)
  done

let is_empty s = Array.for_all (fun w -> w = 0) s.data

let inter a b =
  same_universe a b "inter";
  let data = Array.make (Array.length a.data) 0 in
  for w = 0 to Array.length data - 1 do
    data.(w) <- a.data.(w) land b.data.(w)
  done;
  { len = a.len; data }

let copy_into ~into s =
  same_universe into s "copy_into";
  Array.blit s.data 0 into.data 0 (Array.length s.data)

let disjoint a b =
  same_universe a b "disjoint";
  let n = Array.length a.data in
  let rec go w = w >= n || (a.data.(w) land b.data.(w) = 0 && go (w + 1)) in
  go 0

let popcount w =
  let rec go acc w = if w = 0 then acc else go (acc + 1) (w land (w - 1)) in
  go 0 w

let count s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.data

let inter_count a b =
  same_universe a b "inter_count";
  let acc = ref 0 in
  for w = 0 to Array.length a.data - 1 do
    acc := !acc + popcount (a.data.(w) land b.data.(w))
  done;
  !acc

let equal a b = a.len = b.len && a.data = b.data

let subset a b =
  same_universe a b "subset";
  let ok = ref true in
  for w = 0 to Array.length a.data - 1 do
    if a.data.(w) land lnot b.data.(w) <> 0 then ok := false
  done;
  !ok

let iter f s =
  for w = 0 to Array.length s.data - 1 do
    let word = s.data.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let to_list s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list len xs =
  let s = create len in
  List.iter (add s) xs;
  s

let full len =
  let s = create len in
  for i = 0 to len - 1 do
    add s i
  done;
  s

let choose s =
  let exception Found of int in
  try
    iter (fun i -> raise (Found i)) s;
    None
  with Found i -> Some i

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (to_list s)
