(** Strongly connected components (iterative Tarjan).

    Components are numbered in reverse topological order of the condensation:
    if there is an edge from a node of component [c1] to a node of a distinct
    component [c2], then [c1 > c2]. *)

type t = {
  comp : int array;  (** component id of each node *)
  count : int;  (** number of components *)
}

val compute : Digraph.t -> t

val members : t -> int list array
(** [members scc] lists the nodes of each component, ascending. *)

val sizes : t -> int array

val is_trivial : Digraph.t -> t -> int -> bool
(** [is_trivial g scc c] is true when component [c] is a single node without
    a self-loop — i.e. it contributes no cycle. *)

val condensation_edges : Digraph.t -> t -> (int * int) list
(** Distinct edges between distinct components, as component-id pairs. *)
