(** Fixed-capacity bit sets over the universe [0 .. len-1].

    Backed by an [int array] with 63 usable bits per word. All operations
    assume their arguments were created with the same [len]; mixing lengths
    raises [Invalid_argument]. *)

type t

val create : int -> t
(** [create len] is the empty set over universe [0 .. len-1]. *)

val length : t -> int
(** Universe size the set was created with. *)

val mem : t -> int -> bool
(** [mem s i] tests membership. Raises [Invalid_argument] if [i] is out of
    bounds. *)

val add : t -> int -> unit
(** [add s i] inserts [i] in place. *)

val remove : t -> int -> unit
(** [remove s i] deletes [i] in place. *)

val copy : t -> t
(** Fresh set with the same elements. *)

val clear : t -> unit
(** [clear s] empties [s] in place, keeping its universe — pairs with
    {!copy_into} for allocation-free buffer reuse. *)

val union_into : into:t -> t -> unit
(** [union_into ~into s] sets [into := into ∪ s]. *)

val inter_into : into:t -> t -> unit
(** [inter_into ~into s] sets [into := into ∩ s]. *)

val diff_into : into:t -> t -> unit
(** [diff_into ~into s] sets [into := into \ s]. *)

val copy_into : into:t -> t -> unit
(** [copy_into ~into s] sets [into := s] without allocating — the buffer-reuse
    primitive of the branch-and-bound hot loops. *)

val inter : t -> t -> t
(** [inter a b] is a fresh set holding [a ∩ b]. *)

val is_empty : t -> bool

val count : t -> int
(** Number of elements (population count). *)

val inter_count : t -> t -> int
(** [inter_count a b] is [count (inter a b)] without the allocation. *)

val disjoint : t -> t -> bool
(** [disjoint a b] is true iff [a ∩ b = ∅]; early-exits on the first
    overlapping word, so testing against small sets is cheap. *)

val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is true iff [a ⊆ b]. *)

val iter : (int -> unit) -> t -> unit
(** Iterate over elements in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over elements in increasing order. *)

val to_list : t -> int list
(** Elements in increasing order. *)

val of_list : int -> int list -> t
(** [of_list len xs] builds a set over [0 .. len-1] containing [xs]. *)

val full : int -> t
(** [full len] contains every element of the universe. *)

val choose : t -> int option
(** Smallest element, if any. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{e1, e2, ...}]. *)
