(* reach_i(u) = nodes reachable in 1..i hops; one matrix sweep per round:
   reach_{i+1}(u) = reach_i(u) ∪ ⋃_{w ∈ succ(u)} reach_i(w) — but that
   over-counts (reach_i(w) is 1..i hops from w = 2..i+1 from u, fine, plus
   direct succ gives hop 1). We instead iterate frontiers per node. *)

let compute ?budget ~k g =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  let n = Digraph.n g in
  let m = Bitmatrix.create ~rows:n ~cols:n in
  if k <= 0 then m
  else begin
    (* frontier BFS per node, capped at depth k; bitset visited. One budget
       tick per frontier node expanded; exhaustion stops the sweep, leaving
       an under-approximation (missing reachability bits, never spurious
       ones). *)
    (try
       for u = 0 to n - 1 do
         Budget.tick_exn budget;
         let visited = Bitset.create n in
         let frontier = ref [] in
         Array.iter
           (fun w ->
             if not (Bitset.mem visited w) then begin
               Bitset.add visited w;
               Bitmatrix.set m u w true;
               frontier := w :: !frontier
             end)
           (Digraph.succ g u);
         let depth = ref 1 in
         while !depth < k && !frontier <> [] do
           incr depth;
           let next = ref [] in
           List.iter
             (fun x ->
               Budget.tick_exn budget;
               Array.iter
                 (fun w ->
                   if not (Bitset.mem visited w) then begin
                     Bitset.add visited w;
                     Bitmatrix.set m u w true;
                     next := w :: !next
                   end)
                 (Digraph.succ g x))
             !frontier;
           frontier := !next
         done
       done
     with Budget.Exhausted_budget -> ());
    m
  end

(* the single entry point artifact caches key on: one function, one key
   shape (graph, hops), covering both the bounded and the unbounded
   semantics *)
let relation ?budget ?hops g =
  match hops with
  | None -> Transitive_closure.compute ?budget g
  | Some k -> compute ?budget ~k g

let distances_within ~k g v =
  let d = Traversal.distances g v in
  (* distances gives hop counts with d(v)=0; non-empty-path semantics needs
     the self distance via a cycle instead *)
  let n = Digraph.n g in
  let out = Array.make n (-1) in
  for u = 0 to n - 1 do
    if u <> v && d.(u) > 0 && d.(u) <= k then out.(u) <- d.(u)
  done;
  (* self: shortest cycle through v *)
  (match Traversal.shortest_path g v v with
  | Some path when List.length path - 1 <= k -> out.(v) <- List.length path - 1
  | _ -> ());
  out
