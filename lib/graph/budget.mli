(** Unified resource budgets with anytime semantics.

    The paper's decision problems are NP-complete and its optimization
    problems are inapproximable within [O(1/n^{1-ε})] (Theorems 4.1–4.3), so
    every solver in this repository can blow up on adversarial inputs. A
    {!t} is a single mutable token carrying a wall-clock deadline, a step
    budget and an external cancellation hook; one token is threaded through
    an entire pipeline (closure construction, prefiltering, search) so the
    phases draw on a common allowance.

    Solvers call {!tick} once per unit of work (a search node, a fixpoint
    pass, a BFS visit). The step counter is checked on every tick; the
    clock and the cancellation hook are only polled on power-of-two ticks
    and every 1024 ticks thereafter, so ticking costs an increment and a
    compare on the hot path. Exhaustion is {e sticky}: once a token trips,
    every subsequent {!tick} returns [false] immediately, which lets deep
    recursions unwind cheaply while still returning the best valid result
    found so far. *)

type reason =
  | Deadline  (** the wall-clock deadline passed *)
  | Steps  (** the step budget was consumed *)
  | Cancelled  (** {!cancel} was called or the cancellation hook fired *)

type status =
  | Complete  (** the solver ran to its natural end *)
  | Exhausted of reason
      (** the budget tripped; the accompanying result is the best found so
          far, valid but possibly suboptimal *)

type t

val unlimited : unit -> t
(** A token that never trips. *)

val create :
  ?anchor:float -> ?timeout:float -> ?steps:int -> ?cancel:(unit -> bool) -> unit -> t
(** [create ?anchor ?timeout ?steps ?cancel ()] trips when [timeout]
    wall-clock seconds have elapsed since [anchor] (default: now, as
    [Unix.gettimeofday ()] — pass the process start time to charge startup
    work against the deadline), when [steps] ticks have been consumed, or
    when [cancel ()] returns [true] at a poll point — whichever comes
    first. Omitted dimensions are unlimited.

    @raise Invalid_argument on a negative [timeout] or [steps]. *)

val trip_after : int -> t
(** [trip_after n] is a deterministic fault-injection token: it permits
    exactly [n] ticks and trips on the next one, independent of the clock.
    The test suite drives every solver over a grid of trip points with
    this. Equivalent to [create ~steps:n ()]. *)

val tick : t -> bool
(** Consume one unit of work. [true] means keep going; [false] means the
    budget is exhausted (now or earlier — exhaustion is sticky). *)

exception Exhausted_budget
(** Raised by {!tick_exn}; never escapes a solver — each catches it at its
    boundary and returns its best-so-far result with an [Exhausted]
    status. *)

val tick_exn : t -> unit
(** {!tick}, raising {!Exhausted_budget} instead of returning [false] —
    convenient inside deep recursions that unwind via an exception. *)

val poll : t -> bool
(** Re-check the clock and the cancellation hook immediately, bypassing the
    amortization; [true] means still within budget. Does not consume a
    step. Callers use this for a final "did we make the deadline?" check
    after fast paths that tick too few times to hit a poll point. *)

val exhausted : t -> bool
(** Has the token tripped? Does not consume a step and does not poll. *)

val cancel : t -> unit
(** Trip the token from outside (e.g. a signal handler or a supervising
    thread). Idempotent; an earlier trip reason wins. Cancelling a token
    that has forked children (see {!fork}) trips the children too, at
    their next poll point. *)

(** {1 Domain-safe forking}

    A plain token is a single-domain mutable value. To share one allowance
    across the domains of a {!Phom_parallel.Pool}, the owning domain forks
    one {e child token} per parallel task and joins them back afterwards:

    {[
      let children = List.map (fun w -> (w, Budget.fork b)) work in
      let results = Pool.map pool (fun (w, c) -> solve ~budget:c w) ... in
      List.iter (fun (_, c) -> Budget.join b c) children
    ]}

    The children draw steps from a single atomic ledger in small leases, so
    the family-wide step cap is exact (the grants partition the remaining
    allowance — the family can never consume more total ticks than the
    parent could have), they share the parent's wall-clock deadline and
    cancellation hook, and the first member to trip — for any reason —
    publishes the trip so every sibling stops at its next poll point
    (first-exhausted cancels the family). Anytime semantics survive: each
    task returns its best-so-far result, exactly as in sequential runs.

    Rules: {!fork} must be called by the domain that owns the token being
    forked (pre-fork the children before handing them to pool tasks, or
    fork inside the task that owns a child); a parent must not {!tick}
    while its children are live; {!join} folds a child's consumption and
    trip reason back into the parent, so after joining every child,
    {!steps_used} of the parent counts the whole family's work and
    {!status} reports the family's first trip. A user-supplied [cancel]
    hook is called from worker domains and must be domain-safe. *)

val fork : t -> t
(** [fork parent] is a child token drawing on [parent]'s remaining
    allowance, for use by exactly one parallel task. Forking an
    already-exhausted parent yields an already-tripped child. Children can
    be forked further (the grandchildren draw from the same family
    ledger). *)

val join : t -> t -> unit
(** [join parent child] folds [child]'s step consumption and trip status
    back into [parent]. Call it after the child's task has finished.

    @raise Invalid_argument if [child] was not created by {!fork}. *)

val status : t -> status
val why : t -> reason option
val steps_used : t -> int
(** Ticks consumed so far — exposed for tests and diagnostics. *)

val string_of_reason : reason -> string
(** ["deadline"], ["steps"], ["cancelled"]. *)

val string_of_status : status -> string
(** ["complete"] or ["exhausted (<reason>)"]. *)

val pp_status : Format.formatter -> status -> unit
