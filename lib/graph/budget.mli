(** Unified resource budgets with anytime semantics.

    The paper's decision problems are NP-complete and its optimization
    problems are inapproximable within [O(1/n^{1-ε})] (Theorems 4.1–4.3), so
    every solver in this repository can blow up on adversarial inputs. A
    {!t} is a single mutable token carrying a wall-clock deadline, a step
    budget and an external cancellation hook; one token is threaded through
    an entire pipeline (closure construction, prefiltering, search) so the
    phases draw on a common allowance.

    Solvers call {!tick} once per unit of work (a search node, a fixpoint
    pass, a BFS visit). The step counter is checked on every tick; the
    clock and the cancellation hook are only polled on power-of-two ticks
    and every 1024 ticks thereafter, so ticking costs an increment and a
    compare on the hot path. Exhaustion is {e sticky}: once a token trips,
    every subsequent {!tick} returns [false] immediately, which lets deep
    recursions unwind cheaply while still returning the best valid result
    found so far. *)

type reason =
  | Deadline  (** the wall-clock deadline passed *)
  | Steps  (** the step budget was consumed *)
  | Cancelled  (** {!cancel} was called or the cancellation hook fired *)

type status =
  | Complete  (** the solver ran to its natural end *)
  | Exhausted of reason
      (** the budget tripped; the accompanying result is the best found so
          far, valid but possibly suboptimal *)

type t

val unlimited : unit -> t
(** A token that never trips. *)

val create :
  ?anchor:float -> ?timeout:float -> ?steps:int -> ?cancel:(unit -> bool) -> unit -> t
(** [create ?anchor ?timeout ?steps ?cancel ()] trips when [timeout]
    wall-clock seconds have elapsed since [anchor] (default: now, as
    [Unix.gettimeofday ()] — pass the process start time to charge startup
    work against the deadline), when [steps] ticks have been consumed, or
    when [cancel ()] returns [true] at a poll point — whichever comes
    first. Omitted dimensions are unlimited.

    @raise Invalid_argument on a negative [timeout] or [steps]. *)

val trip_after : int -> t
(** [trip_after n] is a deterministic fault-injection token: it permits
    exactly [n] ticks and trips on the next one, independent of the clock.
    The test suite drives every solver over a grid of trip points with
    this. Equivalent to [create ~steps:n ()]. *)

val tick : t -> bool
(** Consume one unit of work. [true] means keep going; [false] means the
    budget is exhausted (now or earlier — exhaustion is sticky). *)

exception Exhausted_budget
(** Raised by {!tick_exn}; never escapes a solver — each catches it at its
    boundary and returns its best-so-far result with an [Exhausted]
    status. *)

val tick_exn : t -> unit
(** {!tick}, raising {!Exhausted_budget} instead of returning [false] —
    convenient inside deep recursions that unwind via an exception. *)

val poll : t -> bool
(** Re-check the clock and the cancellation hook immediately, bypassing the
    amortization; [true] means still within budget. Does not consume a
    step. Callers use this for a final "did we make the deadline?" check
    after fast paths that tick too few times to hit a poll point. *)

val exhausted : t -> bool
(** Has the token tripped? Does not consume a step and does not poll. *)

val cancel : t -> unit
(** Trip the token from outside (e.g. a signal handler or a supervising
    thread). Idempotent; an earlier trip reason wins. *)

val status : t -> status
val why : t -> reason option
val steps_used : t -> int
(** Ticks consumed so far — exposed for tests and diagnostics. *)

val string_of_reason : reason -> string
(** ["deadline"], ["steps"], ["cancelled"]. *)

val string_of_status : status -> string
(** ["complete"] or ["exhausted (<reason>)"]. *)

val pp_status : Format.formatter -> status -> unit
