(** Finite directed graphs with string-labelled nodes.

    This is the graph model of the paper (Section 3.1): [G = (V, E, L)] with
    [V = {0, .., n-1}], [E ⊆ V × V] and [L : V → label]. Nodes are dense
    integers so that algorithm state can live in arrays; labels carry the
    application payload (page content, URL, element type, ...).

    Values of this type are immutable once built: all accessors are pure and
    adjacency arrays must not be mutated by clients. *)

type t

(** {1 Construction} *)

val make : labels:string array -> edges:(int * int) list -> t
(** [make ~labels ~edges] builds a graph with [Array.length labels] nodes.
    Duplicate edges are collapsed; self-loops are allowed. Raises
    [Invalid_argument] if an endpoint is out of range. *)

val of_adjacency : string array -> int list array -> t
(** [of_adjacency labels succ] builds a graph from successor lists. Raises
    [Invalid_argument] on length mismatch or out-of-range successor. *)

val empty : t
(** The graph with no nodes. *)

(** {1 Basic accessors} *)

val n : t -> int
(** Number of nodes. *)

val nb_edges : t -> int
(** Number of distinct edges. *)

val label : t -> int -> string
(** Label of a node. *)

val labels : t -> string array
(** Fresh copy of the label array. *)

val succ : t -> int -> int array
(** Successors of a node, sorted ascending. The returned array is owned by
    the graph: do not mutate. *)

val pred : t -> int -> int array
(** Predecessors of a node, sorted ascending. Do not mutate. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val degree : t -> int -> int
(** [in_degree + out_degree]. *)

val has_edge : t -> int -> int -> bool
(** O(log out-degree) membership test. *)

val edges : t -> (int * int) list
(** All edges, in lexicographic order. *)

val iter_edges : (int -> int -> unit) -> t -> unit
val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val avg_degree : t -> float
(** Average out-degree, [nb_edges / n] ([0.] for the empty graph). *)

val max_degree : t -> int
(** Maximum total degree over nodes ([0] for the empty graph). *)

(** {1 Derived graphs} *)

val reverse : t -> t
(** Same nodes, every edge flipped. *)

val map_labels : (int -> string -> string) -> t -> t
(** Relabel nodes, keeping the structure. *)

val induced : t -> int list -> t * int array
(** [induced g nodes] is the subgraph induced by [nodes] (duplicates ignored)
    together with [old_of_new]: the original id of each new node. New ids
    preserve the relative order of the original ids. *)

val add_edges : t -> (int * int) list -> t
(** Graph with the extra edges added (endpoints must be in range). *)

val add_edge : t -> int -> int -> t
(** [add_edge g u v] is [g] with the edge [(u, v)] added. O(degree) — only
    the two affected adjacency rows are fresh, the rest is shared with [g].
    Raises [Invalid_argument] if an endpoint is out of range or the edge is
    already present. *)

val remove_edge : t -> int -> int -> t
(** [remove_edge g u v] is [g] without the edge [(u, v)]. O(degree), shares
    untouched rows with [g]. Raises [Invalid_argument] if an endpoint is out
    of range or the edge is absent. *)

val disjoint_union : t -> t -> t
(** Nodes of the second graph are shifted by [n] of the first. *)

(** {1 Comparison and printing} *)

val equal : t -> t -> bool
(** Structural equality: same labels and same edge set. *)

val pp : Format.formatter -> t -> unit
(** Human-readable multi-line rendering. *)
