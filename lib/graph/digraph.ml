type t = {
  node_labels : string array;
  succs : int array array;
  preds : int array array;
  m : int;
}

let sort_dedup arr =
  Array.sort compare arr;
  let n = Array.length arr in
  if n = 0 then arr
  else begin
    let out = ref [ arr.(0) ] in
    for i = 1 to n - 1 do
      if arr.(i) <> arr.(i - 1) then out := arr.(i) :: !out
    done;
    let a = Array.of_list !out in
    Array.sort compare a;
    a
  end

let make ~labels ~edges =
  let n = Array.length labels in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Digraph.make: edge endpoint out of range")
    edges;
  let out_lists = Array.make n [] and in_lists = Array.make n [] in
  List.iter
    (fun (u, v) ->
      out_lists.(u) <- v :: out_lists.(u);
      in_lists.(v) <- u :: in_lists.(v))
    edges;
  let succs = Array.map (fun l -> sort_dedup (Array.of_list l)) out_lists in
  let preds = Array.map (fun l -> sort_dedup (Array.of_list l)) in_lists in
  let m = Array.fold_left (fun acc a -> acc + Array.length a) 0 succs in
  { node_labels = Array.copy labels; succs; preds; m }

let of_adjacency labels succ_lists =
  let n = Array.length labels in
  if Array.length succ_lists <> n then
    invalid_arg "Digraph.of_adjacency: length mismatch";
  let edges = ref [] in
  Array.iteri
    (fun u vs -> List.iter (fun v -> edges := (u, v) :: !edges) vs)
    succ_lists;
  make ~labels ~edges:!edges

let empty = { node_labels = [||]; succs = [||]; preds = [||]; m = 0 }

let n g = Array.length g.node_labels
let nb_edges g = g.m

let check g v =
  if v < 0 || v >= n g then invalid_arg "Digraph: node out of range"

let label g v =
  check g v;
  g.node_labels.(v)

let labels g = Array.copy g.node_labels

let succ g v =
  check g v;
  g.succs.(v)

let pred g v =
  check g v;
  g.preds.(v)

let out_degree g v = Array.length (succ g v)
let in_degree g v = Array.length (pred g v)
let degree g v = out_degree g v + in_degree g v

let mem_sorted arr x =
  let lo = ref 0 and hi = ref (Array.length arr - 1) and found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid) = x then found := true
    else if arr.(mid) < x then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let has_edge g u v =
  check g u;
  check g v;
  mem_sorted g.succs.(u) v

let iter_edges f g =
  Array.iteri (fun u vs -> Array.iter (fun v -> f u v) vs) g.succs

let fold_edges f g init =
  let acc = ref init in
  iter_edges (fun u v -> acc := f u v !acc) g;
  !acc

let edges g = List.rev (fold_edges (fun u v acc -> (u, v) :: acc) g [])

let avg_degree g = if n g = 0 then 0. else float_of_int g.m /. float_of_int (n g)

let max_degree g =
  let best = ref 0 in
  for v = 0 to n g - 1 do
    if degree g v > !best then best := degree g v
  done;
  !best

let reverse g =
  {
    node_labels = g.node_labels;
    succs = Array.map Array.copy g.preds;
    preds = Array.map Array.copy g.succs;
    m = g.m;
  }

let map_labels f g =
  { g with node_labels = Array.mapi f g.node_labels }

let induced g nodes =
  let keep = sort_dedup (Array.of_list nodes) in
  Array.iter (check g) keep;
  let k = Array.length keep in
  let new_of_old = Array.make (n g) (-1) in
  Array.iteri (fun i v -> new_of_old.(v) <- i) keep;
  let labels = Array.map (fun v -> g.node_labels.(v)) keep in
  let edge_list = ref [] in
  Array.iteri
    (fun i v ->
      Array.iter
        (fun w -> if new_of_old.(w) >= 0 then edge_list := (i, new_of_old.(w)) :: !edge_list)
        g.succs.(v))
    keep;
  ignore k;
  (make ~labels ~edges:!edge_list, keep)

let add_edges g extra =
  make ~labels:g.node_labels ~edges:(List.rev_append extra (edges g))

(* single-edge edits share the untouched adjacency rows with the original
   graph; only the two affected rows (and the outer arrays) are fresh *)

let insert_sorted arr x =
  let n = Array.length arr in
  let out = Array.make (n + 1) x in
  let i = ref 0 in
  while !i < n && arr.(!i) < x do
    out.(!i) <- arr.(!i);
    incr i
  done;
  Array.blit arr !i out (!i + 1) (n - !i);
  out

let delete_sorted arr x =
  let out = Array.make (Array.length arr - 1) 0 in
  let j = ref 0 in
  Array.iter
    (fun y ->
      if y <> x then begin
        out.(!j) <- y;
        incr j
      end)
    arr;
  out

let add_edge g u v =
  check g u;
  check g v;
  if mem_sorted g.succs.(u) v then
    invalid_arg "Digraph.add_edge: edge already present";
  let succs = Array.copy g.succs and preds = Array.copy g.preds in
  succs.(u) <- insert_sorted g.succs.(u) v;
  preds.(v) <- insert_sorted g.preds.(v) u;
  { g with succs; preds; m = g.m + 1 }

let remove_edge g u v =
  check g u;
  check g v;
  if not (mem_sorted g.succs.(u) v) then
    invalid_arg "Digraph.remove_edge: no such edge";
  let succs = Array.copy g.succs and preds = Array.copy g.preds in
  succs.(u) <- delete_sorted g.succs.(u) v;
  preds.(v) <- delete_sorted g.preds.(v) u;
  { g with succs; preds; m = g.m - 1 }

let disjoint_union g1 g2 =
  let n1 = n g1 in
  let labels = Array.append g1.node_labels g2.node_labels in
  let e2 = List.map (fun (u, v) -> (u + n1, v + n1)) (edges g2) in
  make ~labels ~edges:(List.rev_append e2 (edges g1))

let equal a b =
  a.node_labels = b.node_labels && a.succs = b.succs

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph (%d nodes, %d edges)" (n g) (nb_edges g);
  for v = 0 to n g - 1 do
    Format.fprintf ppf "@,%d [%s] ->" v g.node_labels.(v);
    Array.iter (fun w -> Format.fprintf ppf " %d" w) g.succs.(v)
  done;
  Format.fprintf ppf "@]"
