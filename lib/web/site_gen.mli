(** Synthetic Web sites and their version archives — the substitute for the
    Stanford WebBase data of the paper's Exp-1 (see DESIGN.md, substitution
    table).

    A site is a hyperlink digraph plus per-page contents. The generator
    produces a hub-heavy hierarchical topology (preferential attachment over
    a tree backbone), matching the degree statistics of Table 2. [evolve]
    produces the next archived version: content drift, link rewiring and
    page churn, at per-category rates — newspapers (site 3) churn an order
    of magnitude faster than stores and organizations, which is what makes
    every matcher's accuracy dip on site 3. *)

type t = {
  graph : Phom_graph.Digraph.t;  (** nodes are pages, labels are page ids *)
  contents : string array;  (** page text, indexed by node *)
}

type params = {
  pages : int;
  edges : int;  (** target edge count *)
  hub_fraction : float;
      (** fraction of pages that are hub/authority pages (with a floor of
          ~40 so reduced-scale sites still have interesting skeletons);
          these are the pages the degree-threshold skeletons keep *)
  max_degree_fraction : float;
      (** the top hub's degree as a fraction of the page count — Table 2's
          maxDeg is 2.5–12% of n depending on the category *)
  hub_affinity : float;
      (** probability that a hub link points at another hub: controls how
          dense the skeleton's core is (Table 2's skeleton edge counts range
          from ~5 to ~43 edges per skeleton node). The dense cores are what
          make SF expensive and exact MCS intractable on skeletons 1 *)
  templates : int;
      (** number of shared page templates ("boilerplate"): pages built from
          the same template are near-duplicates, as on real sites — this is
          what gives every page several high-similarity candidates and makes
          the exact-MCS search space blow up on the large skeletons *)
  vocab_size : int;
  page_length : int;
  edit_rate : float;
      (** per-version probability that a page is {e edited} (edited pages
          get ~30% of their tokens rewritten, dropping their shingle
          similarity with the original below any sensible threshold) *)
  rewire_rate : float;  (** per-version fraction of links re-targeted *)
  page_churn : float;  (** per-version fraction of pages replaced outright *)
  vocab_prefix : string;
}

val generate : rng:Random.State.t -> params -> t

val evolve : rng:Random.State.t -> params -> t -> t
(** One archive step. Page ids (node numbering) are preserved so tests can
    inspect ground truth; the matcher never uses them. *)

val archive : rng:Random.State.t -> params -> versions:int -> t list
(** [versions] snapshots, oldest first: [generate] then repeated [evolve]. *)
