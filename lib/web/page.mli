(** Synthetic Web-page contents.

    The experiments only consume page text through shingle similarity, so a
    page is a bag-of-words document drawn from a category vocabulary. Pages
    of the same site share vocabulary (so cross-page similarities are
    non-zero but moderate); a page and its later versions share most tokens
    (so version similarity is high), with [mutate] controlling the drift. *)

val vocabulary : prefix:string -> int -> string array
(** [vocabulary ~prefix n] is [n] distinct words ["<prefix>w<i>"]. *)

val generate :
  rng:Random.State.t -> vocab:string array -> length:int -> string
(** A document of [length] tokens drawn from [vocab] with a skewed
    (Zipf-like) distribution, so pages share frequent words. *)

val mutate :
  rng:Random.State.t -> vocab:string array -> edit_rate:float -> string -> string
(** Replace each token with probability [edit_rate] by a random vocabulary
    word — one archive-version step of content drift. *)
