(** Skeleton extraction (Section 6, "Skeletons").

    Web graphs are too large to match directly, so the experiments keep only
    "important" nodes: those with degree at least
    [avgDeg(G) + α·maxDeg(G)] (skeletons 1, α = 0.2), or simply the top-k
    nodes by degree (skeletons 2, k = 20, chosen to favour cdkMCS). *)

type t = {
  graph : Phom_graph.Digraph.t;  (** induced subgraph over skeleton nodes *)
  contents : string array;  (** contents of those nodes *)
  nodes : int array;  (** original node ids, ascending *)
}

val by_degree : ?alpha:float -> Site_gen.t -> t
(** Keep nodes with [deg ≥ avgDeg + α·maxDeg]; [α] defaults to 0.2. On a
    non-empty site the result contains at least one node (fallback: the
    max-degree node); an empty site yields an empty skeleton. *)

val top_k : Site_gen.t -> int -> t
(** The [k] highest-degree nodes (ties by node id). *)
