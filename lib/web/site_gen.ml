module D = Phom_graph.Digraph

type t = { graph : D.t; contents : string array }

type params = {
  pages : int;
  edges : int;
  hub_fraction : float;
  max_degree_fraction : float;
  hub_affinity : float;
  templates : int;
  vocab_size : int;
  page_length : int;
  edit_rate : float;
  rewire_rate : float;
  page_churn : float;
  vocab_prefix : string;
}

let vocab_of p = Page.vocabulary ~prefix:p.vocab_prefix p.vocab_size

(* a page is 90% shared template (boilerplate) + 10% unique tail, so
   same-template pages sit around Jaccard ≈ 0.8 and a page's own later
   versions at 1.0 until edited *)
let template_fraction = 0.9

let fresh_page rng p vocab templates =
  let t = templates.(Random.State.int rng (Array.length templates)) in
  let unique_len =
    max 1 (int_of_float (float_of_int p.page_length *. (1. -. template_fraction)))
  in
  t ^ " " ^ Page.generate ~rng ~vocab ~length:unique_len

(* Hub-stratified topology: a uniform tree backbone (every page reachable
   from the root) plus an explicit stratum of hub pages whose degrees are
   drawn between the skeleton threshold and [max_degree_fraction·n]. Real
   Web degree distributions vary a lot per category (Table 2: maxDeg is
   2.5–12% of n, skeleton sizes 0.8–2% of n), so the stratum is
   parameterized rather than emergent — this pins the Table-2 statistics at
   every scale, which emergent preferential attachment does not. *)
let topology rng p =
  let n = p.pages in
  let edges = ref [] in
  let edge_count = ref 0 in
  let add u v =
    if u <> v then begin
      edges := (u, v) :: !edges;
      incr edge_count
    end
  in
  (* backbone *)
  for v = 1 to n - 1 do
    add (Random.State.int rng v) v
  done;
  (* hub stratum *)
  let nhubs = min (n / 2) (max 40 (int_of_float (p.hub_fraction *. float_of_int n))) in
  let dmax = max 4 (int_of_float (p.max_degree_fraction *. float_of_int n)) in
  let avg = 2. *. float_of_int p.edges /. float_of_int n in
  (* every hub must clear deg ≥ avgDeg + 0.2·maxDeg with margin *)
  let dmin = int_of_float (avg +. (0.25 *. float_of_int dmax)) in
  let hub_degree () =
    let u = Random.State.float rng 1.0 in
    dmin + int_of_float (float_of_int (dmax - dmin) *. (u ** 3.))
  in
  let hubs = Array.init nhubs (fun _ -> Random.State.int rng n) in
  let wanted = Array.map (fun _ -> hub_degree ()) hubs in
  (* keep the total within the edge budget by scaling hub degrees *)
  let budget = max 0 (p.edges - !edge_count) in
  let total_wanted = Array.fold_left ( + ) 0 wanted in
  let scale =
    if total_wanted = 0 then 1.0
    else Float.min 1.0 (float_of_int budget /. float_of_int total_wanted)
  in
  Array.iteri
    (fun i h ->
      let d = int_of_float (float_of_int wanted.(i) *. scale) in
      for _ = 1 to d do
        let other =
          if Random.State.float rng 1.0 < p.hub_affinity then
            hubs.(Random.State.int rng nhubs)
          else Random.State.int rng n
        in
        if Random.State.bool rng then add h other else add other h
      done)
    hubs;
  (* fill any remaining budget with uniform links *)
  while !edge_count < p.edges do
    add (Random.State.int rng n) (Random.State.int rng n)
  done;
  !edges

let make_templates rng p vocab =
  let tlen =
    max 1 (int_of_float (float_of_int p.page_length *. template_fraction))
  in
  Array.init (max 1 p.templates) (fun _ -> Page.generate ~rng ~vocab ~length:tlen)

let generate ~rng p =
  let labels = Array.init p.pages (fun i -> "page" ^ string_of_int i) in
  let graph = D.make ~labels ~edges:(topology rng p) in
  let vocab = vocab_of p in
  let templates = make_templates rng p vocab in
  let contents = Array.init p.pages (fun _ -> fresh_page rng p vocab templates) in
  { graph; contents }

let evolve ~rng p site =
  let vocab = vocab_of p in
  let templates = make_templates rng p vocab in
  let contents =
    Array.map
      (fun doc ->
        if Random.State.float rng 1.0 < p.page_churn then
          fresh_page rng p vocab templates
        else if Random.State.float rng 1.0 < p.edit_rate then
          Page.mutate ~rng ~vocab ~edit_rate:0.3 doc
        else doc)
      site.contents
  in
  let n = D.n site.graph in
  let edges =
    List.map
      (fun (u, v) ->
        if Random.State.float rng 1.0 < p.rewire_rate then
          (u, Random.State.int rng n)
        else (u, v))
      (D.edges site.graph)
  in
  { graph = D.make ~labels:(D.labels site.graph) ~edges; contents }

let archive ~rng p ~versions =
  if versions <= 0 then []
  else begin
    let first = generate ~rng p in
    let rec go acc prev k =
      if k = 0 then List.rev acc
      else begin
        let next = evolve ~rng p prev in
        go (next :: acc) next (k - 1)
      end
    in
    go [ first ] first (versions - 1)
  end
