module D = Phom_graph.Digraph
module Simmat = Phom_sim.Simmat
module Shingle = Phom_sim.Shingle
module SF = Phom_sim.Similarity_flooding
module Api = Phom.Api
module Instance = Phom.Instance
module Mcs = Phom_baselines.Mcs
module Simulation = Phom_baselines.Simulation

type method_ =
  | CompMaxCard
  | CompMaxCard11
  | CompMaxSim
  | CompMaxSim11
  | SF
  | CdkMcs
  | GraphSimulation
  | BlondelSim
  | PathFeatures
  | Ged

let method_name = function
  | CompMaxCard -> "compMaxCard"
  | CompMaxCard11 -> "compMaxCard1-1"
  | CompMaxSim -> "compMaxSim"
  | CompMaxSim11 -> "compMaxSim1-1"
  | SF -> "SF"
  | CdkMcs -> "cdkMCS"
  | GraphSimulation -> "graphSimulation"
  | BlondelSim -> "blondel"
  | PathFeatures -> "pathFeatures"
  | Ged -> "editDistance"

let all_methods =
  [ CompMaxCard; CompMaxCard11; CompMaxSim; CompMaxSim11; SF; CdkMcs; GraphSimulation ]

let extended_methods = all_methods @ [ BlondelSim; PathFeatures; Ged ]

type verdict = { matched : bool option; quality : float; seconds : float }

let timed f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let problem_of = function
  | CompMaxCard -> Api.CPH
  | CompMaxCard11 -> Api.CPH11
  | CompMaxSim -> Api.SPH
  | CompMaxSim11 -> Api.SPH11
  | SF | CdkMcs | GraphSimulation | BlondelSim | PathFeatures | Ged ->
      invalid_arg "problem_of"

let match_skeletons ?(xi = 0.75) ?(threshold = 0.75) ?(mcs_time_limit = 10.)
    ?(sf_impl = Phom_sim.Similarity_flooding.Edge_pairs) method_
    (pattern : Skeleton.t) (data : Skeleton.t) =
  let mat = Shingle.matrix pattern.Skeleton.contents data.Skeleton.contents in
  let g1 = pattern.Skeleton.graph and g2 = data.Skeleton.graph in
  match method_ with
  | CompMaxCard | CompMaxCard11 | CompMaxSim | CompMaxSim11 ->
      let t = Instance.make ~g1 ~g2 ~mat ~xi () in
      let r, seconds = timed (fun () -> Api.solve (problem_of method_) t) in
      {
        matched = Some (r.Api.quality >= threshold);
        quality = r.Api.quality;
        seconds;
      }
  | SF ->
      let (flooded : Simmat.t), seconds =
        timed (fun () -> SF.flood ~impl:sf_impl ~init:mat g1 g2)
      in
      let q = SF.match_quality ~init:mat ~flooded ~xi in
      { matched = Some (q >= threshold); quality = q; seconds }
  | CdkMcs -> (
      let outcome, seconds =
        timed (fun () ->
            Mcs.run
              ~node_compat:(fun v u -> Simmat.get mat v u >= xi)
              ~budget:(Phom_graph.Budget.create ~timeout:mcs_time_limit ())
              g1 g2)
      in
      match outcome with
      | Mcs.Timed_out _ -> { matched = None; quality = 0.; seconds }
      | Mcs.Completed m ->
          let q = Mcs.quality g1 m in
          { matched = Some (q >= threshold); quality = q; seconds })
  | BlondelSim ->
      (* Blondel structural similarity, capped into [0,1], combined with the
         content similarity and judged by the SF rule *)
      let flooded, seconds =
        timed (fun () ->
            let structural = Phom_sim.Blondel.similarity g1 g2 in
            Simmat.pointwise_max (Simmat.scale 0.999 structural) mat)
      in
      let q = Phom_sim.Similarity_flooding.match_quality ~init:mat ~flooded ~xi in
      { matched = Some (q >= threshold); quality = q; seconds }
  | PathFeatures ->
      let s, seconds =
        timed (fun () ->
            let module PF = Phom_baselines.Path_features in
            (* features over content-hash labels: relabel pages by a coarse
               content bucket so label paths are comparable across versions *)
            let bucket doc =
              match Phom_sim.Shingle.shingles ~w:4 doc with
              | [||] -> "empty"
              | sh -> string_of_int (sh.(0) mod 1024)
            in
            let relabel (sk : Skeleton.t) =
              D.map_labels
                (fun v _ -> bucket sk.Skeleton.contents.(v))
                sk.Skeleton.graph
            in
            PF.similarity (relabel pattern) (relabel data))
      in
      { matched = Some (s >= threshold); quality = s; seconds }
  | Ged ->
      let s, seconds =
        timed (fun () ->
            let module G = Phom_baselines.Ged in
            G.similarity ~costs:(G.costs_of_simmat mat) g1 g2)
      in
      { matched = Some (s >= threshold); quality = s; seconds }
  | GraphSimulation ->
      let sim, seconds =
        timed (fun () -> Simulation.of_simmat ~mat ~xi g1 g2)
      in
      let simulated =
        Array.fold_left
          (fun acc s -> if Phom_graph.Bitset.is_empty s then acc else acc + 1)
          0 sim
      in
      let q =
        if D.n g1 = 0 then 1.0
        else float_of_int simulated /. float_of_int (D.n g1)
      in
      {
        matched = Some (Simulation.matches_whole_graph sim);
        quality = q;
        seconds;
      }

let accuracy ?xi ?threshold ?mcs_time_limit ?sf_impl ?pool method_ ~pattern
    ~versions =
  (* per-version match jobs are independent (each builds its own matrix and
     instance over shared read-only skeletons), so they fan out across the
     pool; Pool.map keeps verdict order, hence identical accuracy output *)
  let judge =
    match_skeletons ?xi ?threshold ?mcs_time_limit ?sf_impl method_ pattern
  in
  let verdicts =
    match pool with
    | Some p when Phom_parallel.Pool.size p > 1 ->
        Phom_parallel.Pool.map_list p judge versions
    | _ -> List.map judge versions
  in
  let times = List.map (fun v -> v.seconds) verdicts in
  let mean_time =
    match times with
    | [] -> 0.
    | _ -> List.fold_left ( +. ) 0. times /. float_of_int (List.length times)
  in
  let decided = List.filter_map (fun v -> v.matched) verdicts in
  if decided = [] then (None, mean_time)
  else begin
    let hits = List.length (List.filter Fun.id decided) in
    (* the paper counts a timeout as a miss only when some runs completed;
       all-timeout is reported N/A *)
    let total = List.length verdicts in
    (Some (100. *. float_of_int hits /. float_of_int total), mean_time)
  end
