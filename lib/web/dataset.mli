(** The three site categories of Table 2, with parameters matched to the
    paper's statistics, and a scale knob so the default bench run stays
    fast. [Full] reproduces the paper's page counts (20,000 / 5,400 /
    7,000); [Reduced k] divides page and edge counts by [k]. *)

type scale = Full | Reduced of int

type site_spec = {
  name : string;  (** "site 1" (online stores), ... *)
  description : string;
  params : Site_gen.params;
}

val sites : scale -> site_spec list
(** The three categories, in the paper's order. *)

type table2_row = {
  site : string;
  nodes : int;
  edges : int;
  avg_deg : float;
  max_deg : int;
  skel1_nodes : int;
  skel1_edges : int;
  skel2_nodes : int;
  skel2_edges : int;
}

val table2_row :
  rng:Random.State.t -> ?alpha:float -> ?k:int -> site_spec -> table2_row
(** Generate one site and measure it like Table 2 (α = 0.2, k = 20). *)

val archive_skeletons :
  rng:Random.State.t ->
  ?versions:int ->
  skeleton:[ `Alpha of float | `Top of int ] ->
  site_spec ->
  Skeleton.t * Skeleton.t list
(** The Exp-1 data: an archive of [versions] (default 11) snapshots, the
    oldest as the pattern, skeletons extracted per the chosen rule. *)
