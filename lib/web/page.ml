let vocabulary ~prefix n =
  Array.init n (fun i -> Printf.sprintf "%sw%d" prefix i)

(* Zipf-ish skew: word rank r is picked with probability ∝ 1/(r+1), via a
   simple inverse-CDF on the harmonic weights. *)
let pick_skewed rng vocab =
  let n = Array.length vocab in
  let h = log (float_of_int (n + 1)) in
  let x = Random.State.float rng h in
  let r = int_of_float (exp x) - 1 in
  vocab.(min (n - 1) (max 0 r))

let generate ~rng ~vocab ~length =
  let buf = Buffer.create (length * 8) in
  for i = 0 to length - 1 do
    if i > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf (pick_skewed rng vocab)
  done;
  Buffer.contents buf

let mutate ~rng ~vocab ~edit_rate doc =
  let tokens = String.split_on_char ' ' doc in
  let mutated =
    List.map
      (fun tok ->
        if Random.State.float rng 1.0 < edit_rate then pick_skewed rng vocab
        else tok)
      tokens
  in
  String.concat " " mutated
