module D = Phom_graph.Digraph

type scale = Full | Reduced of int

type site_spec = {
  name : string;
  description : string;
  params : Site_gen.params;
}

let scale_int scale x =
  match scale with Full -> x | Reduced k -> max 10 (x / k)

let sites scale =
  let s = scale_int scale in
  [
    {
      name = "site 1";
      description = "online stores";
      params =
        {
          Site_gen.pages = s 20_000;
          edges = s 42_000;
          hub_fraction = 0.011;
          max_degree_fraction = 0.0255;
          hub_affinity = 0.5;
          templates = 12;
          vocab_size = 4_000;
          page_length = 60;
          edit_rate = 0.015;
          rewire_rate = 0.008;
          page_churn = 0.004;
          vocab_prefix = "store";
        };
    };
    {
      name = "site 2";
      description = "international organizations";
      params =
        {
          Site_gen.pages = s 5_400;
          edges = s 33_114;
          hub_fraction = 0.008;
          max_degree_fraction = 0.12;
          hub_affinity = 0.02;
          templates = 8;
          vocab_size = 3_000;
          page_length = 60;
          edit_rate = 0.01;
          rewire_rate = 0.005;
          page_churn = 0.002;
          vocab_prefix = "org";
        };
    };
    {
      name = "site 3";
      description = "online newspapers";
      params =
        {
          Site_gen.pages = s 7_000;
          edges = s 16_800;
          hub_fraction = 0.02;
          max_degree_fraction = 0.071;
          hub_affinity = 0.4;
          templates = 20;
          vocab_size = 5_000;
          page_length = 60;
          edit_rate = 0.03;
          rewire_rate = 0.08;
          page_churn = 0.02;
          vocab_prefix = "news";
        };
    };
  ]

type table2_row = {
  site : string;
  nodes : int;
  edges : int;
  avg_deg : float;
  max_deg : int;
  skel1_nodes : int;
  skel1_edges : int;
  skel2_nodes : int;
  skel2_edges : int;
}

let table2_row ~rng ?(alpha = 0.2) ?(k = 20) spec =
  let site = Site_gen.generate ~rng spec.params in
  let g = site.Site_gen.graph in
  let s1 = Skeleton.by_degree ~alpha site in
  let s2 = Skeleton.top_k site k in
  {
    site = spec.name;
    nodes = D.n g;
    edges = D.nb_edges g;
    (* the paper reports average total degree, 2m/n *)
    avg_deg = 2. *. D.avg_degree g;
    max_deg = D.max_degree g;
    skel1_nodes = D.n s1.Skeleton.graph;
    skel1_edges = D.nb_edges s1.Skeleton.graph;
    skel2_nodes = D.n s2.Skeleton.graph;
    skel2_edges = D.nb_edges s2.Skeleton.graph;
  }

let archive_skeletons ~rng ?(versions = 11) ~skeleton spec =
  let snapshots = Site_gen.archive ~rng spec.params ~versions in
  let extract site =
    match skeleton with
    | `Alpha alpha -> Skeleton.by_degree ~alpha site
    | `Top k -> Skeleton.top_k site k
  in
  match List.map extract snapshots with
  | [] -> invalid_arg "Dataset.archive_skeletons: versions must be positive"
  | pattern :: rest -> (pattern, rest)
