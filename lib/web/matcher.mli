(** The end-to-end Web-site matching pipeline of Exp-1: skeleton contents →
    shingle similarity matrix → one of the seven matchers → match decision
    under the quality threshold of 0.75. *)

type method_ =
  | CompMaxCard
  | CompMaxCard11
  | CompMaxSim
  | CompMaxSim11
  | SF  (** similarity flooding over the skeleton graphs *)
  | CdkMcs  (** exact maximum common subgraph with a time budget *)
  | GraphSimulation
  | BlondelSim
      (** Blondel et al. vertex similarity with the SF match rule — the
          second vertex-similarity measure the paper tested ("results
          similar to those of SF") *)
  | PathFeatures
      (** the feature-based bag-of-paths measure the paper's conclusion
          defers to future work *)
  | Ged
      (** assignment-based approximate graph edit distance (the
          edit-distance similarity of ref [31]), with shingle-based node
          substitution costs *)

val method_name : method_ -> string

val all_methods : method_ list
(** The seven methods of the paper's Table 3. *)

val extended_methods : method_ list
(** [all_methods] plus {!BlondelSim}, {!PathFeatures} and {!Ged} — used by
    the ablation bench. *)

type verdict = {
  matched : bool option;
      (** [None] when the method did not run to completion (cdkMCS) *)
  quality : float;
  seconds : float;  (** wall-clock time of the matching step *)
}

val match_skeletons :
  ?xi:float ->
  ?threshold:float ->
  ?mcs_time_limit:float ->
  ?sf_impl:Phom_sim.Similarity_flooding.impl ->
  method_ ->
  Skeleton.t ->
  Skeleton.t ->
  verdict
(** [match_skeletons m pattern data] decides whether [data] matches the
    [pattern]. [xi] (default 0.75) thresholds the shingle similarities;
    [threshold] (default 0.75) is the quality cut-off; [mcs_time_limit]
    (default 10 s) bounds the cdkMCS search. The shingle matrix is computed
    inside and counted in [seconds] only for SF (whose fixpoint is part of
    its method); for the other methods [seconds] covers the matching
    algorithm proper, as in the paper's scalability columns. *)

val accuracy :
  ?xi:float ->
  ?threshold:float ->
  ?mcs_time_limit:float ->
  ?sf_impl:Phom_sim.Similarity_flooding.impl ->
  ?pool:Phom_parallel.Pool.t ->
  method_ ->
  pattern:Skeleton.t ->
  versions:Skeleton.t list ->
  float option * float
(** Percentage of versions matched to the pattern (the paper's accuracy
    measure) and the mean matching time in seconds. [None] when the method
    timed out on every version (the paper's "N/A"). With a [pool], the
    per-version match jobs run across its domains; the verdict (and the
    accuracy) is unchanged, though per-job [seconds] may reflect
    contention. *)
