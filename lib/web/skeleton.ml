module D = Phom_graph.Digraph

type t = { graph : D.t; contents : string array; nodes : int array }

let extract site node_list =
  let graph, nodes = D.induced site.Site_gen.graph node_list in
  let contents = Array.map (fun v -> site.Site_gen.contents.(v)) nodes in
  { graph; contents; nodes }

let by_degree ?(alpha = 0.2) site =
  let g = site.Site_gen.graph in
  if D.n g = 0 then extract site []
  else begin
  let threshold =
    D.avg_degree g +. (alpha *. float_of_int (D.max_degree g))
  in
  let kept = ref [] in
  for v = D.n g - 1 downto 0 do
    if float_of_int (D.degree g v) >= threshold then kept := v :: !kept
  done;
  let kept =
    match !kept with
    | [] ->
        (* degenerate graphs: keep the single best node *)
        let best = ref 0 in
        for v = 1 to D.n g - 1 do
          if D.degree g v > D.degree g !best then best := v
        done;
        [ !best ]
    | l -> l
  in
  extract site kept
  end

let top_k site k =
  let g = site.Site_gen.graph in
  let order = Array.init (D.n g) Fun.id in
  Array.sort
    (fun a b ->
      let c = compare (D.degree g b) (D.degree g a) in
      if c <> 0 then c else compare a b)
    order;
  extract site (Array.to_list (Array.sub order 0 (min k (Array.length order))))
