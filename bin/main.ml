(* The phom command-line tool: generate graphs, compute (1-1) p-hom
   matchings between graph files, decide the exact problems, and export DOT.

   Graph files use the "phg 1" text format of Phom_graph.Graph_io.

   Exit codes: 0 = success, 1 = error (bad input, bad flags), 2 = the
   command answered but a resource budget (--timeout / --steps) ran out
   first, so the answer may be incomplete. *)

open Cmdliner
module D = Phom_graph.Digraph
module IO = Phom_graph.Graph_io
module G = Phom_graph.Generators
module Budget = Phom_graph.Budget
module Simmat = Phom_sim.Simmat
module Shingle = Phom_sim.Shingle
module Api = Phom.Api

(* captured before any work so --timeout charges startup + parsing against
   the deadline *)
let start_time = Unix.gettimeofday ()

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("error: " ^ s);
      exit 1)
    fmt

(* every user-input failure becomes "error: ..." on stderr + exit 1, never
   an uncaught exception *)
let guard f =
  try f () with
  | Invalid_argument msg | Failure msg | Sys_error msg -> die "%s" msg

(* IO.load errors already name the file (and line, for parse errors) *)
let load_graph path =
  match IO.load path with Ok g -> g | Error msg -> die "%s" msg

(* ---- shared arguments ---- *)

let pattern_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PATTERN" ~doc:"Pattern graph file (G1).")

let data_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"DATA" ~doc:"Data graph file (G2).")

let xi_arg =
  Arg.(value & opt float 0.75 & info [ "xi" ] ~docv:"XI" ~doc:"Similarity threshold in [0,1].")

let check_xi xi =
  if not (xi >= 0. && xi <= 1.) then die "--xi must be in [0,1] (got %g)" xi

let sim_arg =
  let choices = Arg.enum [ ("equality", `Equality); ("shingles", `Shingles) ] in
  Arg.(
    value & opt choices `Equality
    & info [ "sim" ] ~docv:"KIND"
        ~doc:"Node similarity: $(b,equality) compares labels exactly; \
              $(b,shingles) treats labels as documents and uses w-shingling.")

let mat_file_arg =
  Arg.(
    value & opt (some file) None
    & info [ "mat" ] ~docv:"FILE"
        ~doc:"Read the similarity matrix from a 'phs 1' file (overrides \
              $(b,--sim)); lets an external page checker or model drive the \
              matching.")

let matrix_of ?file kind g1 g2 =
  match file with
  | Some path -> (
      match Simmat.load path with
      | Ok m ->
          if Simmat.n1 m <> D.n g1 || Simmat.n2 m <> D.n g2 then
            die "matrix in %s is %dx%d but graphs are %dx%d" path (Simmat.n1 m)
              (Simmat.n2 m) (D.n g1) (D.n g2)
          else m
      | Error msg -> die "%s" msg)
  | None -> (
      match kind with
      | `Equality -> Simmat.of_label_equality g1 g2
      | `Shingles -> Shingle.matrix (D.labels g1) (D.labels g2))

let hops_arg =
  Arg.(
    value & opt (some int) None
    & info [ "k"; "hops" ] ~docv:"K"
        ~doc:"Bound mapped paths to at most $(docv) hops (default unbounded; \
              1 = conventional edge-to-edge matching).")

let instance_of ?budget ?hops g1 g2 mat xi =
  let tc2 =
    match hops with
    | None -> None
    | Some k when k < 1 -> die "--hops must be at least 1 (got %d)" k
    | Some k -> Some (Phom_graph.Bounded_closure.compute ?budget ~k g2)
  in
  Phom.Instance.make ?budget ?tc2 ~g1 ~g2 ~mat ~xi ()

(* ---- budget arguments ---- *)

let timeout_arg =
  Arg.(
    value & opt (some float) None
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:"Wall-clock budget in seconds, anchored at process start. When \
              it runs out the command reports the best answer found so far \
              and exits with code 2.")

let steps_arg =
  Arg.(
    value & opt (some int) None
    & info [ "steps" ] ~docv:"N"
        ~doc:"Deterministic work-step budget (search nodes, fixpoint rows). \
              Exhaustion reports the best answer so far and exits with \
              code 2.")

let check_budget_flags timeout steps =
  (match timeout with
  | Some s when not (s > 0.) -> die "--timeout must be positive (got %g)" s
  | _ -> ());
  match steps with
  | Some n when n < 0 -> die "--steps must be non-negative (got %d)" n
  | _ -> ()

(* ---- parallelism ---- *)

let jobs_arg =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker domains for the parallel solving runtime (components of \
              the pattern fan out across domains when $(b,--partition) is \
              set). Default: the hardware's recommended domain count. \
              $(b,--jobs 1) is fully sequential and bit-identical to a \
              build without parallelism.")

(* [--jobs 1] must not even construct a pool: the sequential code path is
   the byte-identical baseline the cram suite pins down *)
let with_pool jobs f =
  if jobs < 1 then die "--jobs must be at least 1 (got %d)" jobs;
  if jobs = 1 then f None
  else Phom_parallel.Pool.with_pool ~domains:jobs (fun p -> f (Some p))

(* The fork/exec and OCaml runtime boot happen before [start_time] is
   captured, so a deadline anchored there would under-count what the user
   actually waits for.  Charge a conservative allowance for that pre-main
   work: --timeout bounds the observed end-to-end command, and a timeout at
   or below the allowance honestly reports incomplete instead of pretending
   the command fit inside it. *)
let startup_allowance = 0.005

(* [None] when neither flag is given (solvers then use their own defaults),
   otherwise a single token shared by the whole command *)
let budget_of ?default_steps timeout steps =
  check_budget_flags timeout steps;
  match (timeout, steps) with
  | None, None -> (
      match default_steps with
      | None -> None
      | Some n -> Some (Budget.create ~steps:n ()))
  | _ ->
      Some
        (Budget.create
           ~anchor:(start_time -. startup_allowance)
           ?timeout ?steps ())

(* final check for fast paths that finished between poll points: a command
   that beat its own solver but overshot the deadline still reports 2 *)
let tripped budget status =
  match status with
  | Budget.Exhausted _ -> true
  | Budget.Complete -> (
      match budget with Some b -> not (Budget.poll b) | None -> false)

let exhausted_line budget =
  match budget with
  | Some b -> (
      match Budget.why b with
      | Some r -> Printf.sprintf "incomplete (budget exhausted: %s)" (Budget.string_of_reason r)
      | None -> "incomplete (budget exhausted)")
  | None -> "incomplete (budget exhausted)"

let weights_arg =
  let choices =
    Arg.enum
      [ ("uniform", `Uniform); ("degree", `Degree); ("hub", `Hub); ("authority", `Authority) ]
  in
  Arg.(
    value & opt choices `Uniform
    & info [ "weights"; "w" ] ~docv:"KIND"
        ~doc:"Node-importance weights for the SPH problems: $(b,uniform), \
              $(b,degree), $(b,hub) or $(b,authority).")

let weights_of kind g1 =
  match kind with
  | `Uniform -> Phom.Weights.uniform g1
  | `Degree -> Phom.Weights.degree g1
  | `Hub -> Phom.Weights.hub g1
  | `Authority -> Phom.Weights.authority g1

let problem_arg =
  let choices =
    Arg.enum
      [ ("cph", Api.CPH); ("cph11", Api.CPH11); ("sph", Api.SPH); ("sph11", Api.SPH11) ]
  in
  Arg.(
    value & opt choices Api.CPH
    & info [ "problem"; "p" ] ~docv:"PROBLEM"
        ~doc:"Optimization problem: $(b,cph), $(b,cph11), $(b,sph) or $(b,sph11).")

let algorithm_arg =
  let choices =
    Arg.enum
      [ ("direct", Api.Direct); ("naive", Api.Naive_product);
        ("exact", Api.Exact_bb); ("dp", Api.Dp_td) ]
  in
  Arg.(
    value & opt choices Api.Direct
    & info [ "algorithm"; "a" ] ~docv:"ALGO"
        ~doc:"$(b,direct) = compMaxCard/compMaxSim, $(b,naive) = product graph, \
              $(b,exact) = branch and bound (tree-decomposition DP on narrow \
              patterns, see $(b,--max-width)), $(b,dp) = force the DP.")

let max_width_arg =
  Arg.(
    value & opt (some int) None
    & info [ "max-width" ] ~docv:"W"
        ~doc:"Decomposition-width ceiling up to which $(b,--algorithm exact) \
              routes to the tree-decomposition DP instead of branch and bound \
              (default 4; -1 disables the DP route).")

let partition_arg =
  Arg.(value & flag & info [ "partition" ] ~doc:"Enable the Appendix-B G1 partitioning.")

let compress_arg =
  Arg.(value & flag & info [ "compress" ] ~doc:"Enable the Appendix-B G2 compression.")

(* ---- match ---- *)

let match_cmd =
  let dot_out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "dot-out" ] ~docv:"FILE"
          ~doc:"Also write a Graphviz visualization of the mapping to $(docv).")
  in
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"Print the full match report: similarities and the witness \
                path for every mapped pattern edge.")
  in
  let run pattern data xi sim mat_file problem algorithm max_width partition
      compress hops weights dot_out explain timeout steps jobs =
    guard @@ fun () ->
    check_xi xi;
    let budget = budget_of timeout steps in
    let g1 = load_graph pattern and g2 = load_graph data in
    let mat = matrix_of ?file:mat_file sim g1 g2 in
    let t = instance_of ?budget ?hops g1 g2 mat xi in
    let weights = weights_of weights g1 in
    let r =
      with_pool jobs (fun pool ->
          Api.solve_within ~algorithm ?max_width ~partition ~compress ~weights
            ?budget ?pool problem t)
    in
    if explain then print_string (Api.report t r)
    else begin
      Printf.printf "problem   : %s\n" (Api.problem_name problem);
      Printf.printf "quality   : %.4f\n" r.Api.quality;
      Printf.printf "matched   : %b (threshold 0.75)\n" (Api.matches r);
      Printf.printf "mapping   : %d of %d pattern nodes\n"
        (Phom.Mapping.size r.Api.mapping) (D.n g1);
      List.iter
        (fun (v, u) ->
          Printf.printf "  %d [%s] -> %d [%s]\n" v (D.label g1 v) u (D.label g2 u))
        r.Api.mapping
    end;
    (match dot_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (IO.mapping_to_dot ~g1 ~g2 r.Api.mapping));
        Printf.printf "wrote %s\n" path);
    if tripped budget r.Api.status then begin
      Printf.printf "status    : %s\n" (exhausted_line budget);
      exit 2
    end
  in
  let term =
    Term.(
      const run $ pattern_arg $ data_arg $ xi_arg $ sim_arg $ mat_file_arg
      $ problem_arg $ algorithm_arg $ max_width_arg $ partition_arg
      $ compress_arg $ hops_arg $ weights_arg $ dot_out_arg $ explain_arg
      $ timeout_arg $ steps_arg $ jobs_arg)
  in
  Cmd.v
    (Cmd.info "match"
       ~doc:"Compute a maximum (1-1) p-hom mapping between two graph files. \
             Exits 2 when --timeout/--steps ran out (best-so-far answer).")
    term

(* ---- compare ---- *)

let compare_cmd =
  let run pattern data xi sim mat_file hops timeout steps =
    guard @@ fun () ->
    check_xi xi;
    check_budget_flags timeout steps;
    let any_tripped = ref false in
    (* a fresh token per method, so one runaway baseline cannot starve the
       rest of the table; each gets the full allowance *)
    let fresh ?timeout:dt ?steps:ds () =
      match (timeout, steps, dt, ds) with
      | None, None, None, None -> None
      | None, None, _, _ -> Some (Budget.create ?timeout:dt ?steps:ds ())
      | _ -> Some (Budget.create ?timeout ?steps ())
    in
    let note budget =
      match budget with
      | Some b when Budget.exhausted b -> any_tripped := true
      | _ -> ()
    in
    let g1 = load_graph pattern and g2 = load_graph data in
    let mat = matrix_of ?file:mat_file sim g1 g2 in
    let t = instance_of ?hops g1 g2 mat xi in
    Printf.printf "%-22s %-10s %s\n" "method" "quality" "matched@0.75";
    List.iter
      (fun p ->
        let budget = fresh () in
        let r = Api.solve_within ?budget p t in
        (match r.Api.status with Budget.Exhausted _ -> any_tripped := true | _ -> ());
        Printf.printf "%-22s %-10.4f %b\n" (Api.problem_name p) r.Api.quality
          (Api.matches r))
      [ Api.CPH; Api.CPH11; Api.SPH; Api.SPH11 ];
    let module Sim = Phom_baselines.Simulation in
    let sim_budget = fresh () in
    let sim_rel = Sim.of_simmat ?budget:sim_budget ~mat ~xi g1 g2 in
    note sim_budget;
    Printf.printf "%-22s %-10s %b\n" "graphSimulation" "-"
      (Sim.matches_whole_graph sim_rel);
    let module Ull = Phom_baselines.Ullmann in
    Printf.printf "%-22s %-10s %s\n" "subgraphIsomorphism" "-"
      (match
         Ull.exists
           ~node_compat:(fun v u -> Simmat.get mat v u >= xi)
           ?budget:(fresh ()) g1 g2
       with
      | Some b -> string_of_bool b
      | None ->
          any_tripped := true;
          "gave up");
    let module Mcs = Phom_baselines.Mcs in
    (match
       Mcs.run
         ~node_compat:(fun v u -> Simmat.get mat v u >= xi)
         ?budget:(fresh ~timeout:10. ~steps:10_000_000 ())
         g1 g2
     with
    | Mcs.Completed m ->
        Printf.printf "%-22s %-10.4f %b\n" "maxCommonSubgraph" (Mcs.quality g1 m)
          (Mcs.quality g1 m >= 0.75)
    | Mcs.Timed_out m ->
        any_tripped := true;
        Printf.printf "%-22s %-10.4f timeout (best so far)\n" "maxCommonSubgraph"
          (Mcs.quality g1 m));
    let module Ged = Phom_baselines.Ged in
    let ged_budget = fresh () in
    let s = Ged.similarity ~costs:(Ged.costs_of_simmat mat) ?budget:ged_budget g1 g2 in
    note ged_budget;
    Printf.printf "%-22s %-10.4f %b\n" "editDistance" s (s >= 0.75);
    let module PF = Phom_baselines.Path_features in
    let pf = PF.similarity g1 g2 in
    Printf.printf "%-22s %-10.4f %b\n" "pathFeatures" pf (pf >= 0.75);
    if !any_tripped then exit 2
  in
  let term =
    Term.(
      const run $ pattern_arg $ data_arg $ xi_arg $ sim_arg $ mat_file_arg
      $ hops_arg $ timeout_arg $ steps_arg)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Run every matching notion on two graph files and tabulate. Exits \
             2 when any method's budget ran out.")
    term

(* ---- decide ---- *)

let decide_cmd =
  let injective_arg =
    Arg.(value & flag & info [ "injective"; "1-1" ] ~doc:"Decide 1-1 p-hom instead of p-hom.")
  in
  let run pattern data xi sim mat_file injective hops timeout steps =
    guard @@ fun () ->
    check_xi xi;
    (* an unbudgeted exact decision could run forever; keep the old default *)
    let budget = budget_of ~default_steps:5_000_000 timeout steps in
    let g1 = load_graph pattern and g2 = load_graph data in
    let mat = matrix_of ?file:mat_file sim g1 g2 in
    let t = instance_of ?budget ?hops g1 g2 mat xi in
    match Phom.Prefilter.decide ~injective ?budget t with
    | Some true ->
        Printf.printf "yes: G1 %s G2 at xi = %g\n"
          (if injective then "<=(1-1)" else "<=(e,p)")
          xi
    | Some false -> print_endline "no"
    | None ->
        print_endline "undecided (budget exhausted)";
        exit 2
  in
  let term =
    Term.(
      const run $ pattern_arg $ data_arg $ xi_arg $ sim_arg $ mat_file_arg
      $ injective_arg $ hops_arg $ timeout_arg $ steps_arg)
  in
  Cmd.v
    (Cmd.info "decide"
       ~doc:"Decide the NP-complete (1-1) p-hom problem exactly. Exits 2 when \
             undecided within the budget (default: 5,000,000 steps).")
    term

(* ---- witnesses ---- *)

let witnesses_cmd =
  let injective_arg =
    Arg.(value & flag & info [ "injective"; "1-1" ] ~doc:"Enumerate 1-1 mappings.")
  in
  let limit_arg =
    Arg.(value & opt int 20 & info [ "limit" ] ~doc:"Maximum mappings to list.")
  in
  let run pattern data xi sim mat_file hops injective limit timeout steps =
    guard @@ fun () ->
    check_xi xi;
    let budget = budget_of timeout steps in
    let g1 = load_graph pattern and g2 = load_graph data in
    let mat = matrix_of ?file:mat_file sim g1 g2 in
    let t = instance_of ?budget ?hops g1 g2 mat xi in
    let mappings, exhaustive =
      Phom.Exact.enumerate_optimal ~injective ~limit ?budget
        ~objective:Phom.Exact.Cardinality t
    in
    Printf.printf "%d optimal mapping(s)%s\n" (List.length mappings)
      (if exhaustive then "" else " (truncated)");
    List.iteri
      (fun i m ->
        Printf.printf "#%d:" (i + 1);
        List.iter
          (fun (v, u) ->
            Printf.printf " %s->%s" (D.label g1 v) (D.label g2 u))
          m;
        print_newline ())
      mappings;
    match budget with
    | Some b when Budget.exhausted b || not (Budget.poll b) -> exit 2
    | _ -> ()
  in
  let term =
    Term.(
      const run $ pattern_arg $ data_arg $ xi_arg $ sim_arg $ mat_file_arg
      $ hops_arg $ injective_arg $ limit_arg $ timeout_arg $ steps_arg)
  in
  Cmd.v
    (Cmd.info "witnesses"
       ~doc:"Enumerate all optimal (1-1) p-hom mappings between two graphs. \
             Exits 2 when --timeout/--steps truncated the enumeration.")
    term

(* ---- count ---- *)

let count_cmd =
  let run pattern data xi sim mat_file hops timeout steps jobs =
    guard @@ fun () ->
    check_xi xi;
    let budget = budget_of timeout steps in
    let g1 = load_graph pattern and g2 = load_graph data in
    let mat = matrix_of ?file:mat_file sim g1 g2 in
    let t = instance_of ?budget ?hops g1 g2 mat xi in
    let r = with_pool jobs (fun pool -> Api.count ?budget ?pool t) in
    Printf.printf "mappings  : %d%s\n" r.Phom.Dp.count
      (if r.Phom.Dp.exact then "" else " (saturated, lower bound)");
    Printf.printf "width     : %d\n" r.Phom.Dp.width;
    if tripped budget r.Phom.Dp.status then begin
      Printf.printf "status    : %s\n" (exhausted_line budget);
      exit 2
    end
  in
  let term =
    Term.(
      const run $ pattern_arg $ data_arg $ xi_arg $ sim_arg $ mat_file_arg
      $ hops_arg $ timeout_arg $ steps_arg $ jobs_arg)
  in
  Cmd.v
    (Cmd.info "count"
       ~doc:"Count the p-hom mappings of the pattern into the data graph via \
             the tree-decomposition DP (count > 0 iff G1 <=(e,p) G2). Exits 2 \
             when --timeout/--steps ran out (the count is then 0 and \
             meaningless).")
    term

(* ---- generate ---- *)

let generate_cmd =
  let kind_arg =
    let choices =
      Arg.enum
        [ ("er", `Er); ("dag", `Dag); ("tree", `Tree); ("sp", `Sp);
          ("ktree", `Ktree); ("pattern", `Pattern); ("data", `Data) ]
    in
    Arg.(
      required & pos 0 (some choices) None
      & info [] ~docv:"KIND"
          ~doc:"$(b,er), $(b,dag), $(b,tree), $(b,sp) (series-parallel, \
                treewidth <= 2), $(b,ktree) (partial k-tree, see $(b,--tw) \
                and $(b,--keep)), $(b,pattern) (paper synthetic G1) or \
                $(b,data) (paper synthetic G2 for --from pattern).")
  in
  let out_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT" ~doc:"Output file.")
  in
  let n_arg = Arg.(value & opt int 100 & info [ "n"; "nodes" ] ~doc:"Number of nodes (m for pattern).") in
  let m_arg = Arg.(value & opt (some int) None & info [ "m"; "edges" ] ~doc:"Number of edges.") in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let noise_arg = Arg.(value & opt float 0.1 & info [ "noise" ] ~doc:"Noise rate for data graphs.") in
  let from_arg =
    Arg.(value & opt (some file) None & info [ "from" ] ~doc:"Pattern file (for data graphs).")
  in
  let tw_arg =
    Arg.(
      value & opt int 2
      & info [ "tw" ] ~docv:"K" ~doc:"Treewidth bound for $(b,ktree) graphs.")
  in
  let keep_arg =
    Arg.(
      value & opt float 1.0
      & info [ "keep" ] ~docv:"P"
          ~doc:"For $(b,ktree): keep each edge with probability $(docv) \
                (1.0 = the full k-tree).")
  in
  let run kind out n m seed noise from tw keep =
    guard @@ fun () ->
    if n < 0 then die "--nodes must be non-negative (got %d)" n;
    if tw < 1 then die "--tw must be at least 1 (got %d)" tw;
    if not (keep >= 0. && keep <= 1.) then
      die "--keep must be in [0,1] (got %g)" keep;
    let rng = Random.State.make [| seed |] in
    let labels i = "n" ^ string_of_int i in
    let g =
      match kind with
      | `Er -> G.erdos_renyi ~rng ~n ~m:(Option.value m ~default:(2 * n)) ~labels
      | `Dag -> G.random_dag ~rng ~n ~m:(Option.value m ~default:(2 * n)) ~labels
      | `Tree -> G.random_tree ~rng ~n ~labels
      | `Sp -> G.series_parallel ~rng ~n ~labels
      | `Ktree -> G.random_ktree ~rng ~n ~k:tw ~keep ~labels ()
      | `Pattern -> fst (G.paper_pattern ~rng ~m:n)
      | `Data -> (
          match from with
          | None -> die "data generation needs --from PATTERN"
          | Some path ->
              let g1 = load_graph path in
              let pool = G.pool_for (D.n g1) in
              G.paper_data ~rng ~pool ~noise g1)
    in
    IO.save out g;
    Printf.printf "wrote %s: %d nodes, %d edges\n" out (D.n g) (D.nb_edges g)
  in
  let term =
    Term.(
      const run $ kind_arg $ out_arg $ n_arg $ m_arg $ seed_arg $ noise_arg
      $ from_arg $ tw_arg $ keep_arg)
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate random graphs in phg format.") term

(* ---- stats ---- *)

let stats_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Graph file.")
  in
  let run path =
    guard @@ fun () ->
    let g = load_graph path in
    let scc = Phom_graph.Scc.compute g in
    Printf.printf "nodes      : %d\n" (D.n g);
    Printf.printf "edges      : %d\n" (D.nb_edges g);
    Printf.printf "avg degree : %.2f\n" (D.avg_degree g);
    Printf.printf "max degree : %d\n" (D.max_degree g);
    Printf.printf "SCCs       : %d\n" scc.Phom_graph.Scc.count;
    Printf.printf "acyclic    : %b\n" (Phom_graph.Traversal.is_dag g)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print graph statistics.") Term.(const run $ file_arg)

(* ---- dot ---- *)

let dot_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Graph file.")
  in
  let run path = guard @@ fun () -> print_string (IO.to_dot (load_graph path)) in
  Cmd.v (Cmd.info "dot" ~doc:"Convert a graph file to Graphviz DOT on stdout.") Term.(const run $ file_arg)

(* ---- edit ---- *)

(* the offline counterpart of the daemon's addedge/deledge verbs: same
   single-edge semantics (duplicate adds and missing dels are errors, not
   silent no-ops), applied to a phg file instead of a loaded catalog entry *)
let edit_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Graph file.")
  in
  let add_arg =
    Arg.(
      value & opt_all string []
      & info [ "add" ] ~docv:"V,W"
          ~doc:"Add the directed edge $(docv) (node ids; repeatable). \
                Adding an edge that is already present is an error.")
  in
  let del_arg =
    Arg.(
      value & opt_all string []
      & info [ "del" ] ~docv:"V,W"
          ~doc:"Delete the directed edge $(docv) (repeatable; deletions run \
                after additions). Deleting an absent edge is an error.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUT"
          ~doc:"Write the edited graph to $(docv) instead of editing FILE \
                in place.")
  in
  let run path adds dels out =
    guard @@ fun () ->
    let parse_pair flag s =
      let bad () = die "--%s wants V,W as non-negative node ids (got %s)" flag s in
      match String.index_opt s ',' with
      | None -> bad ()
      | Some i -> (
          let v = String.sub s 0 i
          and w = String.sub s (i + 1) (String.length s - i - 1) in
          match (int_of_string_opt v, int_of_string_opt w) with
          | Some v, Some w when v >= 0 && w >= 0 -> (v, w)
          | _ -> bad ())
    in
    let g = load_graph path in
    let g =
      List.fold_left
        (fun g s ->
          let v, w = parse_pair "add" s in
          D.add_edge g v w)
        g adds
    in
    let g =
      List.fold_left
        (fun g s ->
          let v, w = parse_pair "del" s in
          D.remove_edge g v w)
        g dels
    in
    let out = Option.value out ~default:path in
    IO.save out g;
    Printf.printf "wrote %s: %d nodes, %d edges (+%d -%d)\n" out (D.n g)
      (D.nb_edges g) (List.length adds) (List.length dels)
  in
  Cmd.v
    (Cmd.info "edit"
       ~doc:"Apply single-edge additions and deletions to a graph file — \
             the offline counterpart of the daemon's $(b,addedge) and \
             $(b,deledge) verbs. All edits validate (range, duplicates, \
             missing edges) or the file is left untouched.")
    Term.(const run $ file_arg $ add_arg $ del_arg $ out_arg)

(* ---- client ---- *)

let client_cmd =
  let addr_arg =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"ADDR"
          ~doc:"Daemon address: a Unix-domain socket path, or HOST:PORT for \
                TCP. Omit it when routing with $(b,--endpoints).")
  in
  let endpoints_arg =
    Arg.(
      value & opt (some string) None
      & info [ "endpoints" ] ~docv:"ADDR,ADDR,..."
          ~doc:"Fleet mode: route the request across this comma-separated \
                replica set instead of a single ADDR. Solves and counts go \
                to the consistent-hash owner of their graph pair and fail \
                over to the next replica when it is down, draining or busy; \
                loads and unloads broadcast to every reachable replica. \
                Every positional argument is request text (there is no \
                ADDR). Mutually exclusive with $(b,--hold) and \
                $(b,--no-read).")
  in
  let request_arg =
    Arg.(
      value & pos_right 0 string []
      & info [] ~docv:"REQUEST"
          ~doc:"The request line, as protocol tokens. Put $(b,--) before \
                them (or quote the whole request) so solve flags like \
                $(b,--xi) reach the daemon instead of this tool.")
  in
  let connect_timeout_arg =
    Arg.(
      value & opt (some float) None
      & info [ "connect-timeout" ] ~docv:"SECS"
          ~doc:"Give up if the connection is not established within $(docv) \
                seconds.")
  in
  let read_timeout_arg =
    Arg.(
      value & opt (some float) None
      & info [ "read-timeout" ] ~docv:"SECS"
          ~doc:"Give up if the reply does not arrive within $(docv) seconds.")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retry up to $(docv) times on connection failures and on \
                $(b,error busy retry-after=<s>) replies, with exponential \
                back-off and jitter (never pausing less than the daemon's \
                hint). 0 (the default) means one shot.")
  in
  let retry_delay_arg =
    Arg.(
      value & opt float 0.2
      & info [ "retry-delay" ] ~docv:"SECS"
          ~doc:"Base back-off delay, doubled on every retry and capped at \
                ten times $(docv).")
  in
  let hold_arg =
    Arg.(
      value & opt (some float) None
      & info [ "hold" ] ~docv:"SECS"
          ~doc:"Testing aid: connect, send nothing, stay silent for $(docv) \
                seconds, then exit 0. Exercises the daemon's idle-eviction \
                path.")
  in
  let no_read_arg =
    Arg.(
      value
      & flag
      & info [ "no-read" ]
          ~doc:"Testing aid: send the request, then close the connection \
                without reading the reply (a mid-solve disconnect).")
  in
  let place_arg =
    Arg.(
      value & opt (some string) None
      & info [ "place" ] ~docv:"G1,G2"
          ~doc:"With $(b,--endpoints): print the replica preference order \
                for the graph pair $(docv) (owner first, one endpoint per \
                line) and exit without contacting the fleet. The chaos \
                harness uses this to find which replica to kill.")
  in
  let run addr endpoints request connect_timeout read_timeout retries
      retry_delay hold no_read place =
    guard @@ fun () ->
    (* mirror the CLI budget contract: 0 ok, 1 error, 2 answered but a
       budget tripped *)
    let finish reply =
      print_endline reply;
      if String.length reply >= 5 && String.sub reply 0 5 = "error" then
        exit 1
      else if
        let exhausted = "status=exhausted" in
        let n = String.length reply and m = String.length exhausted in
        let rec scan i =
          i + m <= n && (String.sub reply i m = exhausted || scan (i + 1))
        in
        scan 0
      then exit 2
    in
    let request_line () =
      let line = String.concat " " request in
      if String.trim line = "" then
        die "empty request (try one of: %s)" Phom_server.Protocol.verb_summary;
      line
    in
    match endpoints with
    | Some spec -> (
        (* with --endpoints there is no ADDR: the first positional token is
           the request verb, which cmdliner has parsed into [addr] *)
        let request =
          match addr with Some a -> a :: request | None -> request
        in
        let request_line () =
          let line = String.concat " " request in
          if String.trim line = "" then
            die "empty request (try one of: %s)"
              Phom_server.Protocol.verb_summary;
          line
        in
        if hold <> None || no_read then
          die "--hold and --no-read drive a single connection; they need \
               ADDR, not --endpoints";
        let eps =
          String.split_on_char ',' spec |> List.map String.trim
          |> List.filter (fun s -> s <> "")
        in
        (match place with
        | Some pair ->
            (let g1, g2 =
               match String.index_opt pair ',' with
               | Some i ->
                   ( String.sub pair 0 i,
                     String.sub pair (i + 1) (String.length pair - i - 1) )
               | None -> die "--place wants G1,G2"
             in
             (* placement is pure ring arithmetic; an inert transport keeps
                this usable before any replica is even up *)
             match
               Phom_server.Router.create
                 ~transport:(fun _ _ -> Ok "")
                 ~endpoints:eps ()
             with
             | Error msg -> die "%s" msg
             | Ok router ->
                 List.iter print_endline
                   (Phom_server.Router.place router
                      ~key:(Phom_server.Router.solve_key ~g1 ~g2)));
            exit 0
        | None -> ());
        let line = request_line () in
        let config =
          {
            Phom_server.Router.default_config with
            connect_timeout =
              (match connect_timeout with
              | None -> Phom_server.Router.default_config.connect_timeout
              | some -> some);
            read_timeout =
              (match read_timeout with
              | None -> Phom_server.Router.default_config.read_timeout
              | some -> some);
          }
        in
        match Phom_server.Router.create ~config ~endpoints:eps () with
        | Error msg -> die "%s" msg
        | Ok router -> (
            match Phom_server.Router.request router line with
            | Error msg -> die "%s" msg
            | Ok reply -> finish reply))
    | None -> (
    if place <> None then die "--place needs --endpoints";
    let addr =
      match addr with
      | Some a -> a
      | None -> die "missing ADDR (or use --endpoints for a fleet)"
    in
    let with_addr k =
      match Phom_server.Client.sockaddr_of_string addr with
      | Error msg -> die "%s" msg
      | Ok sockaddr -> k sockaddr
    in
    match hold with
    | Some secs ->
        with_addr (fun sockaddr ->
            match Phom_server.Client.connect ?timeout:connect_timeout sockaddr with
            | Error msg -> die "%s" msg
            | Ok conn ->
                Unix.sleepf (Float.max 0. secs);
                Phom_server.Client.close conn)
    | None -> (
        let line = request_line () in
        with_addr @@ fun sockaddr ->
        if no_read then (
          match Phom_server.Client.connect ?timeout:connect_timeout sockaddr with
          | Error msg -> die "%s" msg
          | Ok conn ->
              let r = Phom_server.Client.post conn line in
              Phom_server.Client.close conn;
              match r with Error msg -> die "%s" msg | Ok () -> ())
        else
          let backoff =
            {
              Phom_server.Client.retries = max 0 retries;
              delay = Float.max 0. retry_delay;
              max_delay = Float.max 0. retry_delay *. 10.;
            }
          in
          match
            Phom_server.Client.request ?connect_timeout ?read_timeout ~backoff
              sockaddr line
          with
          | Error msg -> die "%s" msg
          | Ok reply -> finish reply))
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one request line to a running phomd and print the reply. \
             Exits 0 on an ok reply, 1 on an error reply or connection \
             failure, 2 when the reply reports an exhausted budget. \
             $(b,--retries) adds exponential back-off against busy or \
             briefly-absent daemons.")
    Term.(
      const run $ addr_arg $ endpoints_arg $ request_arg $ connect_timeout_arg
      $ read_timeout_arg $ retries_arg $ retry_delay_arg $ hold_arg
      $ no_read_arg $ place_arg)

let () =
  let doc = "graph matching by p-homomorphism (Fan et al., VLDB 2010)" in
  let info = Cmd.info "phom" ~version:Phom_server.Version.string ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            match_cmd; compare_cmd; decide_cmd; witnesses_cmd; count_cmd;
            generate_cmd; stats_cmd; dot_cmd; edit_cmd; client_cmd;
          ]))
