(* phomd: the resident matching service. Loads graphs and similarity
   matrices once into a catalog, keeps derived artifacts (closures,
   similarity matrices, candidate tables) in a byte-capped LRU cache, and
   answers line-protocol requests over a Unix-domain (and optionally TCP)
   socket, running each solve as a budgeted job on a shared domain pool.

   The protocol grammar lives in Phom_server.Protocol; `phom client` is the
   matching one-shot client. *)

open Cmdliner
module Daemon = Phom_server.Daemon

let socket_arg =
  Arg.(
    value & opt (some string) None
    & info [ "socket"; "s" ] ~docv:"PATH"
        ~doc:"Listen on a Unix-domain socket at $(docv). An existing socket \
              is connect-probed first: if a live daemon answers $(b,ping) \
              there, startup is refused; a stale socket left by a crash is \
              replaced. Any other existing file is refused. Unlinked on \
              shutdown.")

let tcp_arg =
  Arg.(
    value & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT"
        ~doc:"Also listen on 127.0.0.1:$(docv). Port 0 picks an ephemeral \
              port, reported in the startup banner.")

let listen_arg =
  Arg.(
    value & opt_all string []
    & info [ "listen" ] ~docv:"HOST:PORT"
        ~doc:"Also listen on $(docv) (repeatable — one flag per listener). \
              $(docv) takes a numeric IP or a resolvable host name; an \
              empty host or $(b,*) binds all interfaces; port 0 picks an \
              ephemeral port, reported in the startup banner. This is the \
              fleet-facing transport: point $(b,phom client --endpoints) at \
              these addresses.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Worker domains for the shared solving pool. $(b,--jobs 1) \
              (the default) answers every request sequentially, \
              bit-identical to the CLI.")

let cache_mb_arg =
  Arg.(
    value & opt int 256
    & info [ "cache-mb" ] ~docv:"MB"
        ~doc:"Artifact-cache capacity in MiB (closures, similarity \
              matrices, candidate tables). Least-recently-used artifacts \
              are evicted when the budget is exceeded.")

let max_graph_mb_arg =
  Arg.(
    value & opt int 64
    & info [ "max-graph-mb" ] ~docv:"MB"
        ~doc:"Refuse to load graph files larger than $(docv) MiB.")

let max_mat_mb_arg =
  Arg.(
    value & opt int 64
    & info [ "max-mat-mb" ] ~docv:"MB"
        ~doc:"Refuse to load similarity-matrix files larger than $(docv) MiB.")

let default_timeout_arg =
  Arg.(
    value & opt (some float) (Some 5.)
    & info [ "default-timeout" ] ~docv:"SECS"
        ~doc:"Per-request wall-clock budget applied when a solve names no \
              $(b,--timeout) of its own, so one hard query cannot occupy \
              the daemon forever. 0 disables the default.")

let default_steps_arg =
  Arg.(
    value & opt (some int) None
    & info [ "default-steps" ] ~docv:"N"
        ~doc:"Per-request step budget applied when a solve names no \
              $(b,--steps) of its own.")

let max_conns_arg =
  Arg.(
    value & opt int 64
    & info [ "max-conns" ] ~docv:"N"
        ~doc:"Admission control: connections beyond $(docv) are answered \
              $(b,error busy retry-after=<s>) and closed immediately.")

let max_pending_arg =
  Arg.(
    value & opt int 32
    & info [ "max-pending" ] ~docv:"N"
        ~doc:"Solves in flight beyond $(docv) are shed with the same busy \
              reply; the connection stays open.")

let idle_timeout_arg =
  Arg.(
    value & opt float 300.
    & info [ "idle-timeout" ] ~docv:"SECS"
        ~doc:"Evict a connection idle for $(docv) seconds with \
              $(b,error idle-timeout), so stalled peers cannot pin \
              connection slots. 0 disables eviction.")

let retry_after_arg =
  Arg.(
    value & opt float 1.
    & info [ "retry-after" ] ~docv:"SECS"
        ~doc:"The back-off hint carried by busy replies.")

let drain_grace_arg =
  Arg.(
    value & opt float 5.
    & info [ "drain-grace" ] ~docv:"SECS"
        ~doc:"On shutdown or SIGTERM/SIGINT, wait up to $(docv) seconds for \
              in-flight replies to flush before cutting stragglers.")

let fault_delay_arg =
  Arg.(
    value & opt float 0.
    & info [ "fault-delay" ] ~docv:"SECS"
        ~doc:"Testing aid: sleep $(docv) seconds at the start of every \
              solve, so fault-injection tests can reliably catch a solve \
              in flight. 0 (the default) disables.")

let fault_health_flap_arg =
  Arg.(
    value & opt int 0
    & info [ "fault-health-flap" ] ~docv:"N"
        ~doc:"Testing aid: answer the first $(docv) $(b,health) requests \
              with $(b,error unavailable) before recovering — a flapping \
              replica, for exercising a router's circuit breaker. 0 (the \
              default) disables.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress the startup banner.")

let metrics_dump_arg =
  Arg.(
    value & opt (some string) None
    & info [ "metrics-dump" ] ~docv:"FILE"
        ~doc:"After the daemon drains, write a final snapshot of the \
              metrics registry to $(docv) in Prometheus text format (the \
              same text the $(b,stats) command serves live). The write is \
              atomic: $(docv) holds either its previous content or the \
              complete dump, never a torn blend.")

let state_dir_arg =
  Arg.(
    value & opt (some string) None
    & info [ "state-dir" ] ~docv:"DIR"
        ~doc:"Make the daemon crash-durable: keep checksummed snapshots of \
              the catalog and artifact cache plus a recovery journal in \
              $(docv), and recover from them on start (corrupt entries are \
              quarantined and reported by $(b,health), never served). \
              Without it the daemon is ephemeral, as before.")

let fsync_arg =
  let parse s =
    match Phom_server.Journal.fsync_of_string s with
    | Some f -> Ok f
    | None -> Error (`Msg (s ^ ": expected always, interval or never"))
  in
  let print ppf f =
    Format.pp_print_string ppf (Phom_server.Journal.fsync_to_string f)
  in
  Arg.(
    value
    & opt (conv (parse, print)) Phom_server.Journal.Interval
    & info [ "fsync" ] ~docv:"POLICY"
        ~doc:"Journal durability policy: $(b,always) fsyncs every appended \
              event (lose nothing short of media failure), $(b,interval) \
              fsyncs on the daemon's periodic tick (lose at most a tick), \
              $(b,never) trusts the page cache (survives kill -9, not \
              power loss). Only meaningful with $(b,--state-dir).")

let snapshot_interval_arg =
  Arg.(
    value & opt float 60.
    & info [ "snapshot-interval" ] ~docv:"SECS"
        ~doc:"Seconds between periodic state snapshots (with \
              $(b,--state-dir)). A snapshot also lands on every graceful \
              drain.")

let run socket tcp listen jobs cache_mb max_graph_mb max_mat_mb default_timeout
    default_steps max_conns max_pending idle_timeout retry_after drain_grace
    fault_delay fault_health_flap quiet metrics_dump state_dir fsync
    snapshot_interval =
  if socket = None && tcp = None && listen = [] then begin
    prerr_endline
      "error: nothing to listen on (give --socket, --tcp and/or --listen)";
    exit 1
  end;
  if jobs < 1 then begin
    Printf.eprintf "error: --jobs must be at least 1 (got %d)\n" jobs;
    exit 1
  end;
  let mb_check name v =
    if v < 1 then begin
      Printf.eprintf "error: %s must be at least 1 (got %d)\n" name v;
      exit 1
    end
  in
  mb_check "--cache-mb" cache_mb;
  mb_check "--max-graph-mb" max_graph_mb;
  mb_check "--max-mat-mb" max_mat_mb;
  if max_conns < 1 then begin
    Printf.eprintf "error: --max-conns must be at least 1 (got %d)\n" max_conns;
    exit 1
  end;
  if max_pending < 1 then begin
    Printf.eprintf "error: --max-pending must be at least 1 (got %d)\n"
      max_pending;
    exit 1
  end;
  let default_timeout =
    match default_timeout with
    | Some t when t <= 0. -> None
    | t -> t
  in
  Phom_server.Faults.set_solve_delay fault_delay;
  Phom_server.Faults.set_health_flap fault_health_flap;
  let config =
    {
      Daemon.socket_path = socket;
      tcp_port = tcp;
      listen;
      jobs;
      cache_bytes = cache_mb * 1024 * 1024;
      max_graph_bytes = max_graph_mb * 1024 * 1024;
      max_mat_bytes = max_mat_mb * 1024 * 1024;
      default_timeout;
      default_steps;
      max_conns;
      max_pending;
      idle_timeout = (if idle_timeout <= 0. then None else Some idle_timeout);
      max_line_bytes = 8192;
      retry_after = Float.max 0. retry_after;
      drain_grace = Float.max 0. drain_grace;
      state_dir;
      fsync;
      snapshot_interval = Float.max 1. snapshot_interval;
    }
  in
  let ready listeners =
    if not quiet then begin
      List.iter
        (fun l -> Printf.printf "phomd %s listening on %s\n"
            Phom_server.Version.string l)
        listeners;
      (* the smoke scripts wait for this line before connecting *)
      flush stdout
    end
  in
  let dump_metrics () =
    match metrics_dump with
    | None -> ()
    | Some file -> (
        (* atomic so a crash mid-dump (or a concurrent scrape) never sees
           a torn metrics file *)
        match
          Phom_server.Persist.write_file_atomic ~path:file
            (Phom_obs.Obs.dump ())
        with
        | Ok () -> ()
        | Error msg -> prerr_endline ("error: " ^ msg))
  in
  match Daemon.serve ~ready config with
  | () -> dump_metrics ()
  | exception Invalid_argument msg | exception Sys_error msg | exception Failure msg ->
      prerr_endline ("error: " ^ msg);
      exit 1
  | exception Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "error: %s%s: %s\n" fn
        (if arg = "" then "" else " " ^ arg)
        (Unix.error_message e);
      exit 1

let () =
  let doc = "p-homomorphism matching service daemon" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs in the foreground, answering one-line requests over the \
         configured sockets until a $(b,shutdown) request arrives. Load \
         graphs once, then solve repeatedly: closures, similarity matrices \
         and candidate tables are cached across requests, so warm queries \
         skip the expensive shared-state derivation.";
      `P
        "Each solve runs under a per-request budget (its own \
         $(b,--timeout)/$(b,--steps), else the daemon defaults) and replies \
         with status=complete or status=exhausted(...) plus hit/miss \
         provenance for every cached artifact it touched. Use $(b,phom \
         client) to talk to the daemon from the command line.";
    ]
  in
  let info =
    Cmd.info "phomd" ~version:Phom_server.Version.string ~doc ~man
  in
  let term =
    Term.(
      const run $ socket_arg $ tcp_arg $ listen_arg $ jobs_arg $ cache_mb_arg
      $ max_graph_mb_arg $ max_mat_mb_arg $ default_timeout_arg
      $ default_steps_arg $ max_conns_arg $ max_pending_arg
      $ idle_timeout_arg $ retry_after_arg $ drain_grace_arg
      $ fault_delay_arg $ fault_health_flap_arg $ quiet_arg $ metrics_dump_arg
      $ state_dir_arg $ fsync_arg $ snapshot_interval_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
