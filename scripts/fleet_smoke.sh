#!/bin/sh
# Fleet chaos smoke test: three phomd replicas on loopback TCP behind the
# replica-aware router. A single sequential daemon answers the reference
# query first; then the replica that owns the (pat, store) pair is killed
# -9 while the routed solve is inside an injected delay, and the router
# must fail over and return the byte-identical cold reply. A final phase
# restarts the dead replica on its old port and re-broadcasts the loads:
# the survivors take the content-CRC idempotent reload silently and the
# fleet answers the query again. `make fleet-smoke` is the local entry
# point.
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
PHOMD="$ROOT/_build/default/bin/phomd.exe"
PHOM="$ROOT/_build/default/bin/main.exe"

dune build bin/main.exe bin/phomd.exe

DIR=$(mktemp -d)

cleanup() {
    for pidfile in "$DIR"/*.pid; do
        [ -f "$pidfile" ] && kill -9 "$(cat "$pidfile")" 2>/dev/null || true
    done
    rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
    echo "fleet-smoke: FAIL: $1" >&2
    for log in "$DIR"/*.log; do
        echo "--- $log ---" >&2
        cat "$log" >&2 || true
    done
    exit 1
}

# start_daemon LOG LISTEN [phomd args...]; echoes the bound HOST:PORT and
# records the pid in LOG's sibling .pid file (start_daemon runs inside
# command substitutions, so a shell variable would not survive the
# subshell)
start_daemon() {
    log=$1
    listen=$2
    shift 2
    "$PHOMD" --listen "$listen" "$@" > "$log" 2>&1 &
    echo $! > "${log%.log}.pid"
    i=0
    until grep -q 'listening on' "$log" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -le 100 ] || fail "daemon did not come up ($log)"
        sleep 0.1
    done
    sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\)$/\1/p' "$log" | head -1
}

SOLVE="solve card pat store --sim shingles --xi 0.5"

# ---- phase 1: single-node reference over TCP ----

REF_ADDR=$(start_daemon "$DIR/ref.log" 127.0.0.1:0 --jobs 1)
echo "fleet-smoke: reference daemon on $REF_ADDR"

VERSION=$("$PHOM" client "$REF_ADDR" version) || fail "version over TCP"
case "$VERSION" in
"ok phomd "*) ;;
*) fail "unexpected version reply: $VERSION" ;;
esac

"$PHOM" client "$REF_ADDR" load graph pat "$ROOT/data/fig1_pattern.phg" \
    || fail "reference load pattern"
"$PHOM" client "$REF_ADDR" load graph store "$ROOT/data/fig1_store.phg" \
    || fail "reference load data graph"
EXPECTED=$("$PHOM" client "$REF_ADDR" -- $SOLVE) || fail "reference solve"
case "$EXPECTED" in
*"status=complete"*) ;;
*) fail "reference reply is not complete: $EXPECTED" ;;
esac
"$PHOM" client "$REF_ADDR" shutdown > /dev/null || fail "reference shutdown"

# ---- phase 2: three replicas, loads broadcast through the router ----

A=$(start_daemon "$DIR/a.log" 127.0.0.1:0 --jobs 2 --fault-delay 0.5)
B=$(start_daemon "$DIR/b.log" 127.0.0.1:0 --jobs 2 --fault-delay 0.5)
C=$(start_daemon "$DIR/c.log" 127.0.0.1:0 --jobs 2 --fault-delay 0.5)
EPS="$A,$B,$C"
echo "fleet-smoke: fleet up on $EPS"

"$PHOM" client --endpoints "$EPS" load graph pat \
    "$ROOT/data/fig1_pattern.phg" || fail "fleet load pattern"
"$PHOM" client --endpoints "$EPS" load graph store \
    "$ROOT/data/fig1_store.phg" || fail "fleet load data graph"

OWNER=$("$PHOM" client --endpoints "$EPS" --place pat,store | head -1)
case "$OWNER" in
"$A") OWNER_PID=$(cat "$DIR/a.pid") ;;
"$B") OWNER_PID=$(cat "$DIR/b.pid") ;;
"$C") OWNER_PID=$(cat "$DIR/c.pid") ;;
*) fail "--place named an unknown replica: $OWNER" ;;
esac
echo "fleet-smoke: (pat, store) is owned by $OWNER (pid $OWNER_PID)"

# ---- phase 3: kill -9 the owner mid-solve, require identical failover ----

"$PHOM" client --endpoints "$EPS" -- $SOLVE > "$DIR/failover.txt" 2>&1 &
SOLVER_PID=$!
sleep 0.2
kill -9 "$OWNER_PID"
wait "$SOLVER_PID" || fail "routed solve died with the replica"
GOT=$(cat "$DIR/failover.txt")
[ "$GOT" = "$EXPECTED" ] || fail "failover reply differs from single node:
  expected: $EXPECTED
  got:      $GOT"
echo "fleet-smoke: owner killed -9 mid-solve, failover reply byte-identical"

# the survivor that answered is warm now: same answer, cache hits
AGAIN=$("$PHOM" client --endpoints "$EPS" -- $SOLVE) || fail "second solve"
[ "${AGAIN% cache=*}" = "${EXPECTED% cache=*}" ] \
    || fail "warm failover reply drifted: $AGAIN"
case "$AGAIN" in
*"cache=closure:hit,mat:hit,cands:hit"*) ;;
*) fail "survivor did not serve from its cache: $AGAIN" ;;
esac

# ---- phase 4: restart the dead replica on its old port and rejoin ----

OWNER_PORT=${OWNER##*:}
RESTARTED=$(start_daemon "$DIR/restart.log" "127.0.0.1:$OWNER_PORT" --jobs 2)
[ "$RESTARTED" = "$OWNER" ] || fail "restart bound $RESTARTED, not $OWNER"

# re-broadcast the loads: the restarted replica loads fresh, the warm
# survivors take the content-CRC idempotent reload without complaint
"$PHOM" client --endpoints "$EPS" load graph pat \
    "$ROOT/data/fig1_pattern.phg" || fail "rejoin load pattern"
"$PHOM" client --endpoints "$EPS" load graph store \
    "$ROOT/data/fig1_store.phg" || fail "rejoin load data graph"

FINAL=$("$PHOM" client --endpoints "$EPS" -- $SOLVE) \
    || fail "solve after rejoin"
[ "${FINAL% cache=*}" = "${EXPECTED% cache=*}" ] \
    || fail "post-rejoin reply drifted: $FINAL"

for ep in $A $B $C; do
    H=$("$PHOM" client "$ep" health) || fail "health on $ep"
    case "$H" in
    "ok health state=ready"*) ;;
    *) fail "$ep is not ready after the chaos: $H" ;;
    esac
done

echo "fleet-smoke: OK (kill -9 mid-solve, byte-identical failover, rejoin)"
