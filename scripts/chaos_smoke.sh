#!/bin/sh
# Chaos smoke test for the durable daemon: kill -9 phomd mid-solve, restart
# it on the same state directory, and require full recovery — the restarted
# daemon must replace the stale socket, report `health` ready with nothing
# quarantined, and serve the pre-crash warm query byte-identically from the
# recovered artifact cache. A second phase corrupts the snapshot on disk
# and requires the quarantine path: the daemon must come up degraded,
# report the quarantined record, and keep serving everything that survived
# its checksums. `make chaos-smoke` is the local entry point.
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
PHOMD="$ROOT/_build/default/bin/phomd.exe"
PHOM="$ROOT/_build/default/bin/main.exe"

dune build bin/main.exe bin/phomd.exe

DIR=$(mktemp -d)
SOCK="$DIR/phomd.sock"
STATE="$DIR/state"
LOG="$DIR/life1.log"
DAEMON_PID=""

cleanup() {
    # the state dir lives under $DIR, so one sweep removes socket, logs
    # and durable state alike
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
    echo "chaos-smoke: FAIL: $1" >&2
    echo "--- daemon log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

start_daemon() {
    # fsync always: every journaled event must survive the kill -9 below;
    # a 1s snapshot interval and an injected 0.5s solve delay make "killed
    # mid-solve" and "killed around a snapshot" easy to hit
    "$PHOMD" --socket "$SOCK" --state-dir "$STATE" --fsync always \
        --snapshot-interval 1 --fault-delay 0.5 --jobs 2 > "$LOG" 2>&1 &
    DAEMON_PID=$!
    i=0
    until grep -q listening "$LOG" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -le 100 ] || fail "daemon did not come up"
        sleep 0.1
    done
}

SOLVE="solve card pat store --sim shingles --xi 0.5"

# ---- life 1: load, warm the cache, die mid-solve ----

start_daemon
echo "chaos-smoke: life 1 up on $SOCK"

PONG=$("$PHOM" client "$SOCK" ping) || fail "ping"
[ "$PONG" = "ok pong" ] || fail "unexpected ping reply: $PONG"

"$PHOM" client "$SOCK" load graph pat "$ROOT/data/fig1_pattern.phg" \
    || fail "load pattern"
"$PHOM" client "$SOCK" load graph store "$ROOT/data/fig1_store.phg" \
    || fail "load data graph"

"$PHOM" client "$SOCK" -- $SOLVE > /dev/null || fail "cold solve"
WARM1=$("$PHOM" client "$SOCK" -- $SOLVE) || fail "warm solve"
case "$WARM1" in
*"cache=closure:hit,mat:hit,cands:hit"*) ;;
*) fail "warm solve was not served from the cache: $WARM1" ;;
esac

# let the periodic snapshot land, then kill -9 while a solve (stretched by
# the injected delay) is in flight
sleep 1.5
"$PHOM" client "$SOCK" -- $SOLVE > /dev/null 2>&1 &
SOLVER_PID=$!
sleep 0.2
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
wait "$SOLVER_PID" 2>/dev/null || true
[ -S "$SOCK" ] || fail "kill -9 should leave the socket behind"
echo "chaos-smoke: life 1 killed -9 mid-solve"

# ---- life 2: restart on the same socket and state dir ----

LOG="$DIR/life2.log"
start_daemon
echo "chaos-smoke: life 2 recovered on the stale socket"

HEALTH=$("$PHOM" client "$SOCK" health) || fail "health after recovery"
case "$HEALTH" in
"ok health state=ready"*) ;;
*) fail "recovered daemon is not ready: $HEALTH" ;;
esac
case "$HEALTH" in
*"quarantined=0"*) ;;
*) fail "clean recovery must quarantine nothing: $HEALTH" ;;
esac

# the first query after the crash must be served from the recovered cache,
# byte-identical to the pre-crash warm reply
WARM2=$("$PHOM" client "$SOCK" -- $SOLVE) || fail "solve after recovery"
[ "$WARM2" = "$WARM1" ] || fail "recovered reply differs:
  before: $WARM1
  after:  $WARM2"

STATS=$("$PHOM" client "$SOCK" stats) || fail "stats after recovery"
for metric in phom_persist_snapshot_total phom_journal_events_total \
    phom_recovery_quarantined_total; do
    case "$STATS" in
    *"$metric"*) ;;
    *) fail "stats is missing the $metric series" ;;
    esac
done

"$PHOM" client "$SOCK" shutdown || fail "life 2 shutdown"
wait "$DAEMON_PID" || fail "life 2 exited non-zero"
DAEMON_PID=""
[ ! -e "$SOCK" ] || fail "socket not unlinked on shutdown"
[ -f "$STATE/state.snap" ] || fail "graceful shutdown left no snapshot"
echo "chaos-smoke: OK (kill -9 mid-solve, warm recovery, byte-identical reply)"

# ---- life 3: corrupt the snapshot, require quarantine, keep serving ----

# flip eight bytes inside the store graph's snapshot payload: the record
# fails its checksum, must be quarantined (with everything derived from
# it), and must never be served
OFF=$(grep -a -b -o 'record graph store ' "$STATE/state.snap" | head -1 | cut -d: -f1)
[ -n "$OFF" ] || fail "snapshot is missing the store record"
HDR=$(grep -a -m1 '^record graph store ' "$STATE/state.snap")
PAYLOAD_OFF=$((OFF + ${#HDR} + 1 + 4))
printf 'XXXXXXXX' | dd of="$STATE/state.snap" bs=1 seek="$PAYLOAD_OFF" \
    conv=notrunc 2>/dev/null || fail "could not corrupt the snapshot"

LOG="$DIR/life3.log"
start_daemon
echo "chaos-smoke: life 3 up on a corrupted snapshot"

HEALTH=$("$PHOM" client "$SOCK" health) || fail "health after corruption"
case "$HEALTH" in
"ok health state=degraded"*) ;;
*) fail "corruption must degrade health: $HEALTH" ;;
esac
case "$HEALTH" in
*"quarantined=0"*) fail "corrupt record was not quarantined: $HEALTH" ;;
*"quarantined="*) ;;
*) fail "health lost its quarantine counter: $HEALTH" ;;
esac

# the quarantined graph is gone — never served corrupt — and reloading it
# brings the daemon straight back to full service
"$PHOM" client "$SOCK" list | grep -q 'store' \
    && fail "quarantined graph must not be listed"
"$PHOM" client "$SOCK" load graph store "$ROOT/data/fig1_store.phg" \
    || fail "reload after quarantine"
AFTER=$("$PHOM" client "$SOCK" -- $SOLVE) || fail "solve after quarantine"
case "$AFTER" in
"ok solve problem=CPH"*) ;;
*) fail "solve after quarantine went wrong: $AFTER" ;;
esac

"$PHOM" client "$SOCK" shutdown || fail "life 3 shutdown"
wait "$DAEMON_PID" || fail "life 3 exited non-zero"
DAEMON_PID=""

echo "chaos-smoke: OK (corrupt snapshot quarantined, degraded daemon kept serving)"
