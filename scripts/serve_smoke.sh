#!/bin/sh
# Daemon smoke test: start phomd on a temp socket (durable, with a state
# dir), drive it with three client queries (one deliberately tripping its
# step budget), and assert a clean shutdown that unlinks the socket and
# leaves a snapshot. Also checks that an unusable state dir refuses to
# start. Exercises exactly what the CI daemon-smoke job runs;
# `make serve-smoke` is the local entry point.
#
# With --faults, a second soak runs against a daemon with an injected
# per-solve delay and a short idle deadline, while misbehaving peers (a
# silent holder, a solve-and-vanish client) share the socket with healthy
# retrying clients — every healthy query must still complete and the
# shutdown must stay clean.
set -eu

FAULTS=no
[ "${1:-}" = "--faults" ] && FAULTS=yes

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
PHOMD="$ROOT/_build/default/bin/phomd.exe"
PHOM="$ROOT/_build/default/bin/main.exe"

dune build bin/main.exe bin/phomd.exe

DIR=$(mktemp -d)
SOCK="$DIR/phomd.sock"
LOG="$DIR/phomd.log"
DAEMON_PID=""

cleanup() {
    # state dirs live under $DIR too, so one sweep removes socket, logs
    # and durable state alike
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
    echo "serve-smoke: FAIL: $1" >&2
    echo "--- daemon log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

# an unusable state dir must refuse to start, not come up amnesiac: point
# --state-dir below a regular file (works even as root, where permission
# bits alone would not stop us)
: > "$DIR/not-a-dir"
set +e
BAD=$("$PHOMD" --socket "$DIR/bad.sock" --state-dir "$DIR/not-a-dir/state" 2>&1)
RC=$?
set -e
[ "$RC" -ne 0 ] || fail "daemon started despite an unusable state dir"
case "$BAD" in
*"state directory"*) ;;
*) fail "unusable state dir error is unhelpful: $BAD" ;;
esac
echo "serve-smoke: unusable state dir refused at startup"

"$PHOMD" --socket "$SOCK" --jobs 2 --state-dir "$DIR/state" > "$LOG" 2>&1 &
DAEMON_PID=$!

i=0
until grep -q listening "$LOG" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "daemon did not come up"
    sleep 0.1
done

echo "serve-smoke: daemon up on $SOCK"

"$PHOM" client "$SOCK" load graph pat "$ROOT/data/fig1_pattern.phg" \
    || fail "load pattern"
"$PHOM" client "$SOCK" load graph store "$ROOT/data/fig1_store.phg" \
    || fail "load data graph"

# query 1: cold solve, every artifact computed
"$PHOM" client "$SOCK" -- solve card pat store --sim shingles --xi 0.5 \
    || fail "cold solve"

# query 2: warm solve, must be answered from the artifact cache
WARM=$("$PHOM" client "$SOCK" -- solve card pat store --sim shingles --xi 0.5) \
    || fail "warm solve"
case "$WARM" in
*"cache=closure:hit,mat:hit,cands:hit"*) ;;
*) fail "warm solve was not served from the cache: $WARM" ;;
esac

# the stats reply is Prometheus text and must cover every instrumented
# layer: cache, catalog, daemon, solver spans (the warm solve above ran
# through them) — one required series per family
STATS=$("$PHOM" client "$SOCK" stats) || fail "stats"
for metric in \
    phom_cache_hits_total \
    phom_cache_misses_total \
    phom_catalog_graphs \
    phom_daemon_requests_total \
    phom_daemon_connections_accepted_total \
    phom_solver_solves_total \
    phom_span_seconds_count \
    phom_build_info; do
    case "$STATS" in
    *"$metric"*) ;;
    *) fail "stats is missing the $metric series" ;;
    esac
done
echo "serve-smoke: stats covers cache/catalog/daemon/solver families"

# query 3: a 2-step budget must trip into an anytime answer with exit code 2
set +e
TRIPPED=$("$PHOM" client "$SOCK" -- solve card11 pat store --sim shingles --steps 2)
RC=$?
set -e
[ "$RC" -eq 2 ] || fail "budget trip reported exit $RC, expected 2 ($TRIPPED)"
case "$TRIPPED" in
*"status=exhausted(steps)"*) ;;
*) fail "budget trip missing from reply: $TRIPPED" ;;
esac

"$PHOM" client "$SOCK" shutdown || fail "shutdown request"
wait "$DAEMON_PID" || fail "daemon exited non-zero"
DAEMON_PID=""
[ ! -e "$SOCK" ] || fail "socket not unlinked on shutdown"
[ -f "$DIR/state/state.snap" ] || fail "durable daemon left no snapshot behind"

echo "serve-smoke: OK (cold + warm + budget-tripped queries, clean shutdown)"

[ "$FAULTS" = yes ] || exit 0

# ---- fault soak: healthy clients vs misbehaving peers ----

SOCK="$DIR/phomd_faults.sock"
LOG="$DIR/phomd_faults.log"

"$PHOMD" --socket "$SOCK" --jobs 3 --idle-timeout 2 --fault-delay 0.3 \
    > "$LOG" 2>&1 &
DAEMON_PID=$!

i=0
until grep -q listening "$LOG" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "faulty daemon did not come up"
    sleep 0.1
done

echo "serve-smoke: fault soak on $SOCK (0.3s injected solve delay)"

"$PHOM" client --retries 5 "$SOCK" load graph pat "$ROOT/data/fig1_pattern.phg" \
    || fail "faults: load pattern"
"$PHOM" client --retries 5 "$SOCK" load graph store "$ROOT/data/fig1_store.phg" \
    || fail "faults: load data graph"

# misbehavers: a peer that connects and goes silent (evicted at its idle
# deadline) and one that starts a solve and vanishes without reading
"$PHOM" client --hold 4 "$SOCK" &
HOLD_PID=$!
"$PHOM" client --no-read "$SOCK" -- solve card pat store --sim equality --hops 2 --xi 0.9 \
    || fail "faults: no-read solve post"

# four healthy retrying clients run concurrently through the injected
# delay; each must come back with a complete answer
pids=""
for n in 1 2 3 4; do
    (
        OUT=$("$PHOM" client --retries 8 --retry-delay 0.1 "$SOCK" -- \
            solve card pat store --sim shingles --xi 0.5) || exit 1
        case "$OUT" in
        *"status=complete"*) exit 0 ;;
        *) echo "serve-smoke: healthy client $n got: $OUT" >&2; exit 1 ;;
        esac
    ) &
    pids="$pids $!"
done
for p in $pids; do
    wait "$p" || fail "faults: a healthy solve failed under the soak"
done

wait "$HOLD_PID" || fail "faults: hold client exited non-zero"

STATS=$("$PHOM" client --retries 5 "$SOCK" stats) || fail "faults: stats"
case "$STATS" in
*"phom_daemon_connections_evicted_total 1"*) ;;
*) fail "faults: silent peer was not evicted: $STATS" ;;
esac

"$PHOM" client --retries 5 "$SOCK" shutdown || fail "faults: shutdown request"
wait "$DAEMON_PID" || fail "faults: daemon exited non-zero"
DAEMON_PID=""
[ ! -e "$SOCK" ] || fail "faults: socket not unlinked on shutdown"

echo "serve-smoke: OK (fault soak: 4 healthy solves beat a holder and a vanisher, clean shutdown)"
