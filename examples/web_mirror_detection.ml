(* Web mirror detection (the paper's Exp-1 scenario, in miniature).

   We simulate an archive of a site — eleven snapshots of an online store —
   extract degree-based skeletons, and check which later versions still
   match the oldest snapshot under each method. A mirror (or an old version
   of the same site) should match; an unrelated site should not.

   Run with: dune exec examples/web_mirror_detection.exe *)

module D = Phom_graph.Digraph
module Dataset = Phom_web.Dataset
module Matcher = Phom_web.Matcher
module Skeleton = Phom_web.Skeleton
module Site_gen = Phom_web.Site_gen

let () =
  let rng = Random.State.make [| 2024 |] in
  let spec = List.hd (Dataset.sites (Dataset.Reduced 20)) in
  Printf.printf "=== Web mirror detection on simulated %s (%s) ===\n\n"
    spec.Dataset.name spec.Dataset.description;

  let pattern, versions =
    Dataset.archive_skeletons ~rng ~versions:11 ~skeleton:(`Alpha 0.2) spec
  in
  Printf.printf "pattern skeleton: %d nodes, %d edges; %d later versions\n\n"
    (D.n pattern.Skeleton.graph)
    (D.nb_edges pattern.Skeleton.graph)
    (List.length versions);

  print_endline "method           accuracy   mean time";
  List.iter
    (fun m ->
      let acc, time = Matcher.accuracy ~mcs_time_limit:2.0 m ~pattern ~versions in
      Printf.printf "%-16s %-10s %.3fs\n"
        (Matcher.method_name m)
        (match acc with None -> "N/A" | Some a -> Printf.sprintf "%.0f%%" a)
        time)
    Matcher.all_methods;

  (* an unrelated site must not match *)
  let imposter_spec = List.nth (Dataset.sites (Dataset.Reduced 20)) 2 in
  let imposter = Site_gen.generate ~rng imposter_spec.Dataset.params in
  let imposter_skel = Skeleton.by_degree ~alpha:0.2 imposter in
  let v = Matcher.match_skeletons Matcher.CompMaxCard pattern imposter_skel in
  Printf.printf
    "\nunrelated site (%s) vs pattern: %s (quality %.2f)\n"
    imposter_spec.Dataset.description
    (match v.Matcher.matched with
    | Some true -> "MATCH (unexpected!)"
    | Some false -> "no match (correct)"
    | None -> "N/A")
    v.Matcher.quality
