(* XML schema embedding — the paper notes (Related Work / Section 3.2) that
   information-preserving schema embedding [14] is a special case of p-hom.

   A source DTD embeds into an integrated ("global") schema when every
   element type finds a similar type and every parent-child edge of the
   source is realized by a {e path} in the target — child elements may be
   nested deeper under intermediate wrappers. That is 1-1 p-hom verbatim.

   Run with: dune exec examples/schema_embedding.exe *)

module D = Phom_graph.Digraph
module Simmat = Phom_sim.Simmat
module Api = Phom.Api

(* source DTD: a small bookstore feed *)
let source =
  D.make
    ~labels:[| "catalog"; "book"; "title"; "author"; "price" |]
    ~edges:[ (0, 1); (1, 2); (1, 3); (1, 4) ]

(* target: an integrated commerce schema with wrapper elements *)
let target =
  D.make
    ~labels:
      [|
        "store"; "inventory"; "item"; "metadata"; "name"; "creator";
        "pricing"; "amount"; "currency"; "reviews";
      |]
    ~edges:
      [
        (0, 1); (1, 2); (2, 3); (3, 4); (3, 5); (2, 6); (6, 7); (6, 8); (2, 9);
      ]

(* element-name similarity, as a schema matcher would produce *)
let name_sim =
  let table =
    [
      ("catalog", "store", 0.8);
      ("catalog", "inventory", 0.7);
      ("book", "item", 0.9);
      ("title", "name", 0.85);
      ("author", "creator", 0.8);
      ("price", "amount", 0.75);
      ("price", "pricing", 0.9);
    ]
  in
  Simmat.of_fun ~n1:(D.n source) ~n2:(D.n target) (fun v u ->
      let lv = D.label source v and lu = D.label target u in
      match List.find_opt (fun (a, b, _) -> a = lv && b = lu) table with
      | Some (_, _, s) -> s
      | None -> 0.)

let () =
  print_endline "=== XML schema embedding as 1-1 p-hom ===\n";
  let t = Phom.Instance.make ~g1:source ~g2:target ~mat:name_sim ~xi:0.7 () in
  (match Api.decide_one_one_phom t with
  | Some true -> print_endline "the source DTD embeds into the integrated schema:"
  | Some false -> print_endline "no embedding exists at ξ = 0.7:"
  | None -> print_endline "undecided:");
  let r = Api.solve Api.CPH11 t in
  List.iter
    (fun (v, u) ->
      let path =
        (* show how the parent edge is realized *)
        match D.pred source v with
        | [||] -> ""
        | parents -> (
            let p = parents.(0) in
            match Phom.Mapping.apply r.Api.mapping p with
            | None -> ""
            | Some pu -> (
                match Phom_graph.Traversal.shortest_path target pu u with
                | Some path ->
                    "  via " ^ String.concat "/" (List.map (D.label target) path)
                | None -> ""))
      in
      Printf.printf "  %-8s -> %-10s%s\n" (D.label source v) (D.label target u)
        path)
    r.Api.mapping;
  Printf.printf "\nembedding covers %.0f%% of the source schema\n"
    (100. *. r.Api.quality);

  (* tightening the threshold shows which correspondences are load-bearing *)
  let t_strict = Phom.Instance.make ~g1:source ~g2:target ~mat:name_sim ~xi:0.85 () in
  let r_strict = Api.solve Api.CPH11 t_strict in
  Printf.printf "at ξ = 0.85 only %.0f%% embeds (name/creator drop out)\n"
    (100. *. r_strict.Api.quality)
