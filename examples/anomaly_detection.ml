(* Web-graph anomaly detection (Papadimitriou et al. [23], one of the
   motivating applications in the paper's introduction).

   A crawler snapshots a site daily; consecutive snapshots should match.
   When a deploy goes wrong — here, a navigation change that cuts a whole
   section over to a flat layout plus a content wipe of its pages — the
   match quality to the previous snapshot drops and the day is flagged.
   p-hom is the right notion for the comparison: ordinary day-to-day drift
   inserts redirects and wrapper pages (edges become paths), which must NOT
   raise an alarm.

   Run with: dune exec examples/anomaly_detection.exe *)

module D = Phom_graph.Digraph
module Site_gen = Phom_web.Site_gen
module Skeleton = Phom_web.Skeleton
module Matcher = Phom_web.Matcher

let params =
  {
    Site_gen.pages = 400;
    hub_fraction = 0.02;
    max_degree_fraction = 0.06;
    hub_affinity = 0.3;
    edges = 900;
    templates = 6;
    vocab_size = 800;
    page_length = 50;
    edit_rate = 0.02;
    rewire_rate = 0.01;
    page_churn = 0.005;
    vocab_prefix = "site";
  }

(* the incident: one day, a large set of pages is wiped (content replaced by
   an error template) and their links removed *)
let break_site rng (site : Site_gen.t) =
  let n = D.n site.Site_gen.graph in
  let broken = Array.make n false in
  (* the outage takes down a stripe of the site including its hub pages *)
  for v = 0 to n - 1 do
    if v mod 2 = 0 && Random.State.float rng 1.0 < 0.95 then broken.(v) <- true
  done;
  let contents =
    Array.mapi
      (fun v doc -> if broken.(v) then "service unavailable error 503" else doc)
      site.Site_gen.contents
  in
  let edges =
    List.filter
      (fun (u, v) -> not (broken.(u) || broken.(v)))
      (D.edges site.Site_gen.graph)
  in
  { Site_gen.graph = D.make ~labels:(D.labels site.Site_gen.graph) ~edges; contents }

let () =
  print_endline "=== Web-graph anomaly detection with p-hom matching ===\n";
  let rng = Random.State.make [| 7 |] in
  let days = Site_gen.archive ~rng params ~versions:8 in
  (* inject the incident on day 6 (index 5), recovery after *)
  let days =
    List.mapi (fun i day -> if i = 5 then break_site rng day else day) days
  in
  let skeletons = List.map (Skeleton.by_degree ~alpha:0.2) days in
  print_endline "day  vs previous day   quality   verdict";
  let rec scan i = function
    | prev :: (curr :: _ as rest) ->
        let v = Matcher.match_skeletons Matcher.CompMaxCard prev curr in
        Printf.printf "%-4d %-17s %.2f      %s\n" (i + 1)
          (Printf.sprintf "day %d" i)
          v.Matcher.quality
          (match v.Matcher.matched with
          | Some true -> "ok"
          | Some false -> "ANOMALY — investigate this deploy"
          | None -> "n/a");
        scan (i + 1) rest
    | _ -> ()
  in
  scan 0 skeletons;
  print_endline
    "\nNormal drift (redirects, wrappers, content edits) stays above the\n\
     threshold because edges may map to paths; the structural break does not."
