(* Quickstart: the two online stores of the paper's Figure 1.

   The pattern store Gp asks: does the data store G carry the same items,
   navigable the same way? Conventional matching (homomorphism, subgraph
   isomorphism, simulation) says no — labels differ ("audio" vs "digital")
   and single hyperlinks in Gp correspond to multi-hop paths in G. p-hom
   matching with a page-similarity matrix says yes, and produces the witness
   mapping. Run with: dune exec examples/quickstart.exe *)

module D = Phom_graph.Digraph
module Simmat = Phom_sim.Simmat
module Api = Phom.Api

let gp =
  D.make
    ~labels:[| "A"; "books"; "audio"; "textbooks"; "abooks"; "albums" |]
    ~edges:[ (0, 1); (0, 2); (1, 3); (1, 4); (2, 4); (2, 5) ]

let g =
  D.make
    ~labels:
      [|
        "B"; "books"; "sports"; "digital"; "categories"; "school"; "arts";
        "audiobooks"; "booksets"; "DVDs"; "CDs"; "features"; "genres"; "albums";
      |]
    ~edges:
      [
        (0, 1); (0, 2); (0, 3); (1, 4); (4, 5); (4, 6); (4, 8); (4, 7);
        (3, 11); (3, 12); (3, 9); (3, 10); (11, 7); (12, 13);
      ]

(* the similarity a page checker assigns to (pattern page, data page) pairs
   — e.g. shingle overlap; Example 3.1's mate() *)
let mate =
  let m = Simmat.create ~n1:(D.n gp) ~n2:(D.n g) in
  List.iter
    (fun (v, u, s) -> Simmat.set m v u s)
    [
      (0, 0, 0.7) (* A ~ B *);
      (2, 3, 0.7) (* audio ~ digital *);
      (1, 1, 1.0) (* books ~ books *);
      (4, 7, 0.8) (* abooks ~ audiobooks *);
      (1, 8, 0.6) (* books ~ booksets *);
      (3, 5, 0.6) (* textbooks ~ school *);
      (5, 13, 0.85) (* albums ~ albums *);
    ];
  m

let () =
  print_endline "=== p-hom quickstart: matching two online stores (Fig. 1) ===\n";
  Printf.printf "pattern Gp: %d pages, %d links\n" (D.n gp) (D.nb_edges gp);
  Printf.printf "data    G : %d pages, %d links\n\n" (D.n g) (D.nb_edges g);

  (* conventional notions fail *)
  let module Ull = Phom_baselines.Ullmann in
  let module Sim = Phom_baselines.Simulation in
  Printf.printf "subgraph isomorphism: %s\n"
    (match Ull.exists gp g with
    | Some true -> "match"
    | Some false -> "NO match"
    | None -> "gave up");
  Printf.printf "graph simulation    : %s\n\n"
    (if Sim.matches_whole_graph (Sim.compute gp g) then "match" else "NO match");

  (* p-hom with node similarity and edge-to-path mapping succeeds *)
  let t = Phom.Instance.make ~g1:gp ~g2:g ~mat:mate ~xi:0.6 () in
  (match Api.decide_one_one_phom t with
  | Some true -> print_endline "1-1 p-hom           : match  (Gp ⪯¹⁻¹ G at ξ = 0.6)"
  | Some false -> print_endline "1-1 p-hom           : NO match"
  | None -> print_endline "1-1 p-hom           : undecided");

  let r = Api.solve Api.CPH11 t in
  Printf.printf "\ncompMaxCard1-1 mapping (qualCard = %.2f):\n" r.Api.quality;
  List.iter
    (fun (v, u) ->
      Printf.printf "  %-10s -> %-12s (similarity %.2f)\n" (D.label gp v)
        (D.label g u) (Simmat.get mate v u))
    r.Api.mapping;

  (* show one edge-to-path witness *)
  (match Phom_graph.Traversal.shortest_path g 1 5 with
  | Some path ->
      Printf.printf
        "\nedge (books → textbooks) of Gp maps to the G path: %s\n"
        (String.concat " / " (List.map (D.label g) path))
  | None -> ());

  print_endline "\nDone. See examples/web_mirror_detection.ml for the full pipeline."
