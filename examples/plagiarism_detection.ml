(* Software plagiarism detection over program dependence graphs (PDGs) —
   one of the applications motivating the paper (GPlag [20]).

   A plagiarist typically (a) renames identifiers, (b) inserts no-op
   statements, and (c) pads with dead code. On the PDG these are exactly
   (a) node labels that are similar but not equal, (b) edges stretched into
   paths, and (c) attached subgraphs — so subgraph isomorphism misses the
   copy while 1-1 p-hom pins it down.

   Run with: dune exec examples/plagiarism_detection.exe *)

module D = Phom_graph.Digraph
module Simmat = Phom_sim.Simmat
module Shingle = Phom_sim.Shingle
module Api = Phom.Api

(* PDG of the original function: nodes are statements labelled by their
   (tokenized) source text; edges are data/control dependences *)
let original =
  D.make
    ~labels:
      [|
        "entry fib n";
        "if n less than two";
        "return n";
        "a = fib ( n - 1 )";
        "b = fib ( n - 2 )";
        "return a + b";
      |]
    ~edges:[ (0, 1); (1, 2); (1, 3); (1, 4); (3, 5); (4, 5) ]

(* the plagiarized copy: renamed identifiers, a logging no-op inserted on a
   dependence chain, and a dead-code block hanging off the entry *)
let plagiarized =
  D.make
    ~labels:
      [|
        "entry fibonacci num";
        "if num less than two";
        "return num";
        "log call depth";
        "x = fibonacci ( num - 1 )";
        "y = fibonacci ( num - 2 )";
        "return x + y";
        "unused = 0";
        "print banner";
      |]
    ~edges:
      [
        (0, 1); (1, 2); (1, 3); (3, 4) (* no-op stretches the chain *);
        (1, 5); (4, 6); (5, 6); (0, 7); (7, 8) (* dead code *);
      ]

(* an independently written program with superficially similar text *)
let independent =
  D.make
    ~labels:
      [|
        "entry sum list";
        "acc = 0";
        "for item in list";
        "acc = acc + item";
        "return acc";
      |]
    ~edges:[ (0, 1); (1, 2); (2, 3); (3, 4); (3, 2) ]

(* plagiarism detectors normalize identifiers before comparing statements:
   every token that is not a language keyword/operator becomes "id", so
   renaming variables does not hide the statement's shape *)
let keywords =
  [
    "entry"; "if"; "return"; "for"; "in"; "less"; "than"; "two"; "log";
    "call"; "print"; "0"; "1"; "2";
  ]

let normalize stmt =
  Shingle.tokenize stmt
  |> List.map (fun tok -> if List.mem tok keywords then tok else "id")
  |> String.concat " "

let statement_similarity g1 g2 =
  Shingle.matrix ~w:2
    (Array.map normalize (D.labels g1))
    (Array.map normalize (D.labels g2))

let verdict name g1 g2 =
  let mat = statement_similarity g1 g2 in
  let t = Phom.Instance.make ~g1 ~g2 ~mat ~xi:0.3 () in
  let r = Api.solve Api.CPH11 t in
  let module Ull = Phom_baselines.Ullmann in
  Printf.printf "%-22s 1-1 p-hom quality = %.2f → %-12s (subgraph iso: %s)\n"
    name r.Api.quality
    (if Api.matches ~threshold:0.8 r then "PLAGIARISM" else "clean")
    (match Ull.exists g1 g2 with
    | Some true -> "detected"
    | Some false -> "missed"
    | None -> "gave up");
  r

let () =
  print_endline "=== PDG plagiarism detection with 1-1 p-hom ===\n";
  Printf.printf "original PDG: %d statements, %d dependences\n\n" (D.n original)
    (D.nb_edges original);
  let r = verdict "obfuscated copy:" original plagiarized in
  ignore (verdict "independent program:" original independent);
  print_endline "\nwitness mapping into the obfuscated copy:";
  List.iter
    (fun (v, u) ->
      Printf.printf "  %-22s -> %s\n" (D.label original v) (D.label plagiarized u))
    r.Api.mapping;
  (* how many distinct maximal correspondences exist (evidence strength) *)
  let mat = statement_similarity original plagiarized in
  let t = Phom.Instance.make ~g1:original ~g2:plagiarized ~mat ~xi:0.3 () in
  let witnesses, exhaustive =
    Phom.Exact.enumerate_optimal ~injective:true
      ~objective:Phom.Exact.Cardinality t
  in
  Printf.printf "\n%d maximal correspondence(s)%s support the verdict\n"
    (List.length witnesses)
    (if exhaustive then "" else " (at least)")
