open Helpers
module TM = Phom_baselines.Tree_match
module Exact = Phom.Exact

let tree_pattern () =
  (* a → {b, c} *)
  graph [ "a"; "b"; "c" ] [ (0, 1); (0, 2) ]

let test_is_tree () =
  Alcotest.(check bool) "tree" true (TM.is_tree (tree_pattern ()));
  Alcotest.(check bool) "forest" true (TM.is_tree (graph [ "a"; "b" ] []));
  Alcotest.(check bool) "diamond not" false
    (TM.is_tree (graph [ "a"; "b"; "c"; "d" ] [ (0, 1); (0, 2); (1, 3); (2, 3) ]));
  Alcotest.(check bool) "cycle not" false
    (TM.is_tree (graph [ "a"; "b" ] [ (0, 1); (1, 0) ]))

let test_decide_paths () =
  let g1 = tree_pattern () in
  (* data: a → x → b, a → c: both children reachable by paths *)
  let g2 = graph [ "a"; "x"; "b"; "c" ] [ (0, 1); (1, 2); (0, 3) ] in
  let t = eq_instance g1 g2 in
  Alcotest.(check bool) "matches" true (TM.decide t);
  (match TM.witness t with
  | None -> Alcotest.fail "expected a witness"
  | Some m ->
      check_valid t m;
      Alcotest.(check int) "total" 3 (Mapping.size m));
  (* break it: no c anywhere below a *)
  let g2' = graph [ "a"; "b"; "c" ] [ (0, 1) ] in
  Alcotest.(check bool) "no match" false (TM.decide (eq_instance g1 g2'))

let test_rejects_non_tree () =
  let dag = graph [ "a"; "b"; "c"; "d" ] [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let t = eq_instance dag dag in
  Alcotest.check_raises "not a forest"
    (Invalid_argument "Tree_match: pattern is not a forest") (fun () ->
      ignore (TM.supports t))

let test_count_embeddings () =
  (* pattern a→b over data a→{b,b}: two embeddings *)
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "b"; "b" ] [ (0, 1); (0, 2) ] in
  Alcotest.(check (float 1e-9)) "two" 2.0
    (TM.count_embeddings (eq_instance g1 g2));
  (* forest of two independent 'a' roots over data with 3 a's: 3 × 3 *)
  let f = graph [ "a"; "a" ] [] in
  let d = graph [ "a"; "a"; "a" ] [] in
  Alcotest.(check (float 1e-9)) "product" 9.0 (TM.count_embeddings (eq_instance f d));
  (* empty pattern: exactly the empty mapping *)
  Alcotest.(check (float 1e-9)) "empty" 1.0
    (TM.count_embeddings (eq_instance (graph [] []) d))

let tree_gen ?(max_n = 6) () : D.t QCheck.Gen.t =
 fun st ->
  let n = 1 + Random.State.int st max_n in
  let labels =
    Array.init n (fun _ ->
        small_labels.(Random.State.int st (Array.length small_labels)))
  in
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := (Random.State.int st v, v) :: !edges
  done;
  D.make ~labels ~edges:!edges

let tree_instance_gen () : Instance.t QCheck.Gen.t =
 fun st ->
  let g1 = tree_gen () st in
  let g2 = digraph_gen ~max_n:7 () st in
  Instance.make ~g1 ~g2 ~mat:(Simmat.of_label_equality g1 g2) ~xi:0.5 ()

let prop_agrees_with_exact =
  qtest ~count:150 "tree_match: decision agrees with the exact solver"
    (tree_instance_gen ()) print_instance (fun t ->
      match Exact.decide t with
      | None -> true
      | Some answer -> TM.decide t = answer)

let prop_witness_valid_and_total =
  qtest ~count:100 "tree_match: witnesses are valid total mappings"
    (tree_instance_gen ()) print_instance (fun t ->
      match TM.witness t with
      | None -> TM.decide t = false
      | Some m -> Instance.is_valid t m && Mapping.size m = D.n t.g1)

let prop_count_matches_enumeration =
  qtest ~count:80 "tree_match: count = exhaustive enumeration"
    (QCheck.Gen.map
       (fun t -> t)
       ((fun st ->
          let g1 = tree_gen ~max_n:3 () st in
          let g2 = digraph_gen ~max_n:4 () st in
          Instance.make ~g1 ~g2 ~mat:(Simmat.of_label_equality g1 g2) ~xi:0.5 ())
         : Instance.t QCheck.Gen.t))
    print_instance
    (fun t ->
      (* brute force: all total functions that are valid mappings *)
      let n1 = D.n t.g1 and n2 = D.n t.g2 in
      let total = ref 0 in
      let rec go v acc =
        if v = n1 then begin
          if Instance.is_valid t (Mapping.normalize acc) then incr total
        end
        else
          for u = 0 to n2 - 1 do
            go (v + 1) ((v, u) :: acc)
          done
      in
      if n2 = 0 then true
      else begin
        go 0 [];
        abs_float (TM.count_embeddings t -. float_of_int !total) < 1e-6
      end)

let suite =
  [
    ( "tree_match",
      [
        Alcotest.test_case "is_tree" `Quick test_is_tree;
        Alcotest.test_case "decide over paths" `Quick test_decide_paths;
        Alcotest.test_case "rejects non-tree patterns" `Quick test_rejects_non_tree;
        Alcotest.test_case "embedding counting" `Quick test_count_embeddings;
        prop_agrees_with_exact;
        prop_witness_valid_and_total;
        prop_count_matches_enumeration;
      ] );
  ]
