Robustness: resource budgets and hardened error paths. Exit codes are part
of the CLI contract: 0 = success, 1 = bad input, 2 = answered incompletely
because a --timeout / --steps budget ran out.

A zero step budget exhausts immediately: the command still answers (with
the best mapping found so far, here none) and exits 2.

  $ ../../bin/main.exe match ../../data/fig1_pattern.phg ../../data/fig1_store.phg --mat ../../data/fig1_mate.phs --xi 0.6 --steps 0
  problem   : CPH
  quality   : 0.0000
  matched   : false (threshold 0.75)
  mapping   : 0 of 6 pattern nodes
  status    : incomplete (budget exhausted: steps)
  [2]

A wall-clock budget smaller than the process startup allowance can never be
met end to end, so the command reports incomplete in bounded time.

  $ ../../bin/main.exe match ../../data/fig1_pattern.phg ../../data/fig1_store.phg --mat ../../data/fig1_mate.phs --xi 0.6 --timeout 0.001
  problem   : CPH
  quality   : 0.0000
  matched   : false (threshold 0.75)
  mapping   : 0 of 6 pattern nodes
  status    : incomplete (budget exhausted: deadline)
  [2]

With an ample budget the same command completes normally (exit 0, no
status line).

  $ ../../bin/main.exe match ../../data/fig1_pattern.phg ../../data/fig1_store.phg --mat ../../data/fig1_mate.phs --xi 0.6 --steps 1000000 -p cph11
  problem   : CPH1-1
  quality   : 1.0000
  matched   : true (threshold 0.75)
  mapping   : 6 of 6 pattern nodes
    0 [A] -> 0 [B]
    1 [books] -> 1 [books]
    2 [audio] -> 3 [digital]
    3 [textbooks] -> 5 [school]
    4 [abooks] -> 7 [audiobooks]
    5 [albums] -> 13 [albums]

Decision procedures degrade to "undecided" instead of guessing.

  $ ../../bin/main.exe decide ../../data/fig1_pattern.phg ../../data/fig1_store.phg --mat ../../data/fig1_mate.phs --xi 0.6 --steps 0
  undecided (budget exhausted)
  [2]

Witness enumeration reports a truncated listing.

  $ ../../bin/main.exe witnesses ../../data/fig1_pattern.phg ../../data/fig1_store.phg --mat ../../data/fig1_mate.phs --xi 0.6 --1-1 --steps 0
  0 optimal mapping(s) (truncated)
  [2]

Budget flags are validated up front.

  $ ../../bin/main.exe match ../../data/fig1_pattern.phg ../../data/fig1_store.phg --xi 0.6 --timeout 0
  error: --timeout must be positive (got 0)
  [1]

  $ ../../bin/main.exe match ../../data/fig1_pattern.phg ../../data/fig1_store.phg --xi 0.6 --steps=-1
  error: --steps must be non-negative (got -1)
  [1]

Malformed inputs: every user-input failure is "error: ..." on stderr plus
exit 1 — never a backtrace.

A graph file that declares the same node twice:

  $ printf 'phg 1\nnode 0 a\nnode 1 b\nnode 0 c\n' > dup.phg
  $ ../../bin/main.exe stats dup.phg
  error: dup.phg: line 4: duplicate node 0
  [1]

A file that is not a phg graph at all:

  $ printf 'not a graph\n' > junk.phg
  $ ../../bin/main.exe stats junk.phg
  error: junk.phg: line 1: missing 'phg 1' header
  [1]

A missing file:

  $ ../../bin/main.exe stats no_such_file.phg
  error: no_such_file.phg: No such file or directory
  [1]

A similarity matrix with too few rows:

  $ printf 'phs 1\n2 2\n1.0 0.5\n' > short.phs
  $ ../../bin/main.exe match ../../data/fig1_pattern.phg ../../data/fig1_store.phg --mat short.phs --xi 0.5
  error: short.phs: missing rows
  [1]

A matrix whose shape does not fit the graphs:

  $ printf 'phs 1\n2 2\n1.0 0.5\n0.5 1.0\n' > tiny.phs
  $ ../../bin/main.exe match ../../data/fig1_pattern.phg ../../data/fig1_store.phg --mat tiny.phs --xi 0.5
  error: matrix in tiny.phs is 2x2 but graphs are 6x14
  [1]

Out-of-range parameters:

  $ ../../bin/main.exe match ../../data/fig1_pattern.phg ../../data/fig1_store.phg --xi 1.5
  error: --xi must be in [0,1] (got 1.5)
  [1]

  $ ../../bin/main.exe decide ../../data/fig1_pattern.phg ../../data/fig1_store.phg --xi 0.6 --hops 0
  error: --hops must be at least 1 (got 0)
  [1]
