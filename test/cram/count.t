The count verb (protocol 4), end to end: homomorphism counting over the
daemon's artifact cache, plus the offline `phom count` command on the same
instance.

Start the daemon and load the Figure-1 graphs:

  $ ../../bin/phomd.exe --socket c.sock --jobs 2 > phomd.log 2>&1 &
  $ for i in $(seq 1 150); do grep -q listening phomd.log 2> /dev/null && break; sleep 0.1; done
  $ ../../bin/main.exe client c.sock load graph pat ../../data/fig1_pattern.phg
  ok loaded graph pat nodes=6 edges=6
  $ ../../bin/main.exe client c.sock load graph store ../../data/fig1_store.phg
  ok loaded graph store nodes=14 edges=14
  $ ../../bin/main.exe client c.sock load mat mate ../../data/fig1_mate.phs
  ok loaded mat mate dims=6x14

A cold count computes the artifact chain and the count itself; Figure 1
has exactly one p-hom mapping at xi = 0.6 under the paper's mate() matrix,
and the pattern's decomposition has width 2:

  $ ../../bin/main.exe client c.sock -- count pat store --mat mate --xi 0.6
  ok count value=1 exact=true width=2 status=complete cache=closure:miss,mat:catalog,cands:miss,count:miss

Re-running the same query is a pure cache hit, including the count answer
itself; --jobs 1 (the sequential path) must read the same warm artifacts:

  $ ../../bin/main.exe client c.sock -- count pat store --mat mate --xi 0.6
  ok count value=1 exact=true width=2 status=complete cache=closure:hit,mat:catalog,cands:hit,count:hit
  $ ../../bin/main.exe client c.sock -- count pat store --mat mate --xi 0.6 --jobs 1
  ok count value=1 exact=true width=2 status=complete cache=closure:hit,mat:catalog,cands:hit,count:hit

Count and solve share the candidate-table artifact (the key is the pair,
sim, hops and xi — not the request kind):

  $ ../../bin/main.exe client c.sock -- solve card pat store --mat mate --xi 0.6
  ok solve problem=CPH quality=1.0000 mapped=6/6 matched=true status=complete cache=closure:hit,mat:catalog,cands:hit

The solve-only knobs are rejected on count — it always runs the DP:

  $ ../../bin/main.exe client c.sock -- count pat store --algorithm exact
  error --algorithm is a solve-only flag (not valid for count)
  [1]
  $ ../../bin/main.exe client c.sock -- count pat store --partition
  error --partition is a solve-only flag (not valid for count)
  [1]

A tripped budget yields the anytime non-answer (count 0, inexact), exits 2,
and is never cached — the next full-budget query recomputes (count:miss):

  $ ../../bin/main.exe client c.sock -- count pat store --sim shingles --xi 0.6 --steps 1
  ok count value=0 exact=false width=2 status=exhausted(steps) cache=closure:hit,mat:miss,cands:miss,count:miss
  [2]
  $ ../../bin/main.exe client c.sock -- count pat store --sim shingles --xi 0.6 --steps 1
  ok count value=0 exact=false width=2 status=exhausted(steps) cache=closure:hit,mat:hit,cands:hit,count:miss
  [2]

The offline CLI agrees with the daemon on the same instance:

  $ ../../bin/main.exe count ../../data/fig1_pattern.phg ../../data/fig1_store.phg --mat ../../data/fig1_mate.phs --xi 0.6
  mappings  : 1
  width     : 2

Shut down:

  $ ../../bin/main.exe client c.sock shutdown
  ok shutting down
  $ wait
