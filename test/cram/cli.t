The phom CLI, end to end. Everything here is seeded and deterministic.

Generate a pattern and a data graph:

  $ ../../bin/main.exe generate tree tree.phg -n 5 --seed 1
  wrote tree.phg: 5 nodes, 4 edges

  $ ../../bin/main.exe generate pattern g1.phg -n 10 --seed 7
  wrote g1.phg: 10 nodes, 40 edges

  $ ../../bin/main.exe generate data g2.phg --from g1.phg --noise 0.2 --seed 8
  wrote g2.phg: 107 nodes, 155 edges

Graph statistics:

  $ ../../bin/main.exe stats tree.phg
  nodes      : 5
  edges      : 4
  avg degree : 0.80
  max degree : 2
  SCCs       : 5
  acyclic    : true

The Figure-1 stores match as 1-1 p-hom at xi = 0.6:

  $ ../../bin/main.exe decide ../../data/fig1_pattern.phg ../../data/fig1_store.phg --mat ../../data/fig1_mate.phs --xi 0.6 --1-1
  yes: G1 <=(1-1) G2 at xi = 0.6

...but not at xi = 0.75:

  $ ../../bin/main.exe decide ../../data/fig1_pattern.phg ../../data/fig1_store.phg --mat ../../data/fig1_mate.phs --xi 0.75
  no

...and not under edge-to-edge semantics (k = 1):

  $ ../../bin/main.exe decide ../../data/fig1_pattern.phg ../../data/fig1_store.phg --mat ../../data/fig1_mate.phs --xi 0.6 -k 1
  no

The full mapping:

  $ ../../bin/main.exe match ../../data/fig1_pattern.phg ../../data/fig1_store.phg --mat ../../data/fig1_mate.phs --xi 0.6 -p cph11
  problem   : CPH1-1
  quality   : 1.0000
  matched   : true (threshold 0.75)
  mapping   : 6 of 6 pattern nodes
    0 [A] -> 0 [B]
    1 [books] -> 1 [books]
    2 [audio] -> 3 [digital]
    3 [textbooks] -> 5 [school]
    4 [abooks] -> 7 [audiobooks]
    5 [albums] -> 13 [albums]

It is the unique optimal 1-1 witness:

  $ ../../bin/main.exe witnesses ../../data/fig1_pattern.phg ../../data/fig1_store.phg --mat ../../data/fig1_mate.phs --xi 0.6 --1-1
  1 optimal mapping(s)
  #1: A->B books->books audio->digital textbooks->school abooks->audiobooks albums->albums

DOT export is well-formed:

  $ ../../bin/main.exe dot tree.phg | head -2
  digraph G {
    n0 [label="0: n0"];
