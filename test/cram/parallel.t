The parallel runtime's determinism contract: --jobs 1 is the sequential
code path, and --jobs N must produce byte-identical output on the same
seeded input.

  $ ../../bin/main.exe generate pattern g1.phg -n 40 --seed 7
  wrote g1.phg: 40 nodes, 160 edges

  $ ../../bin/main.exe generate data g2.phg --from g1.phg --seed 8
  wrote g2.phg: 205 nodes, 352 edges

  $ ../../bin/main.exe match g1.phg g2.phg --partition --jobs 1 > jobs1.out
  $ ../../bin/main.exe match g1.phg g2.phg --partition --jobs 4 > jobs4.out
  $ cmp jobs1.out jobs4.out && echo byte-identical
  byte-identical

  $ head -4 jobs1.out
  problem   : CPH
  quality   : 1.0000
  matched   : true (threshold 0.75)
  mapping   : 40 of 40 pattern nodes

The same holds for the similarity objective with per-node weights:

  $ ../../bin/main.exe match g1.phg g2.phg --problem sph --partition --jobs 1 > sph1.out
  $ ../../bin/main.exe match g1.phg g2.phg --problem sph --partition --jobs 4 > sph4.out
  $ cmp sph1.out sph4.out && echo byte-identical
  byte-identical

A budgeted parallel run still exits through the anytime contract (0 or 2,
never a crash), and --jobs validates its argument:

  $ ../../bin/main.exe match g1.phg g2.phg --partition --jobs 4 --steps 50 > /dev/null 2>&1; test $? -eq 0 -o $? -eq 2 && echo anytime
  anytime

  $ ../../bin/main.exe match g1.phg g2.phg --jobs 0
  error: --jobs must be at least 1 (got 0)
  [1]
