Crash durability, end to end: run phomd with --state-dir, warm the cache,
kill -9 the daemon, and restart it on the same state directory. The
restarted daemon replaces the stale socket, recovers the catalog and the
artifact cache from the snapshot + journal, reports ready, and serves the
same answer warm.

Start a durable daemon (fsync always: every journaled event survives the
kill) and check the liveness verbs:

  $ ../../bin/phomd.exe --socket d.sock --state-dir state --fsync always > phomd.log 2>&1 &
  $ PHOMD=$!
  $ for i in $(seq 1 150); do grep -q listening phomd.log 2> /dev/null && break; sleep 0.1; done
  $ ../../bin/main.exe client d.sock ping
  ok pong
  $ ../../bin/main.exe client d.sock health | cut -d' ' -f1-4
  ok health state=ready persist=true

Load the Figure-1 graphs and warm the artifact cache:

  $ ../../bin/main.exe client d.sock load graph pat ../../data/fig1_pattern.phg
  ok loaded graph pat nodes=6 edges=6
  $ ../../bin/main.exe client d.sock load graph store ../../data/fig1_store.phg
  ok loaded graph store nodes=14 edges=14
  $ ../../bin/main.exe client d.sock -- solve card pat store --sim shingles --xi 0.5 > cold.txt 2>&1 || true
  $ grep -o 'cache=[^ ]*' cold.txt
  cache=closure:miss,mat:miss,cands:miss
  $ ../../bin/main.exe client d.sock -- solve card pat store --sim shingles --xi 0.5 > warm1.txt 2>&1 || true
  $ grep -o 'cache=[^ ]*' warm1.txt
  cache=closure:hit,mat:hit,cands:hit

Kill the daemon without ceremony; the socket and state files are left
behind:

  $ kill -9 $PHOMD
  $ wait $PHOMD 2> /dev/null || true
  $ [ -S d.sock ] && echo socket left behind
  socket left behind

Restart on the same socket and state directory: the dead socket is
connect-probed and replaced, and recovery rebuilds everything from the
journal:

  $ ../../bin/phomd.exe --socket d.sock --state-dir state --fsync always > phomd2.log 2>&1 &
  $ PHOMD=$!
  $ for i in $(seq 1 150); do grep -q listening phomd2.log 2> /dev/null && break; sleep 0.1; done
  $ ../../bin/main.exe client d.sock health | cut -d' ' -f1-4
  ok health state=ready persist=true
The only snapshot predates the loads (the daemon was killed before its
periodic tick), so everything comes back through journal replay: two load
events plus three artifact recomputations, nothing quarantined:

  $ ../../bin/main.exe client d.sock health | grep -o 'journal_replayed=[0-9]*'
  journal_replayed=5
  $ ../../bin/main.exe client d.sock health | grep -o 'quarantined=[0-9]*'
  quarantined=0
  $ ../../bin/main.exe client d.sock list
  ok graphs=[pat:6n/6e,store:14n/14e] mats=[]

The first query after the crash is already warm, and the reply is
byte-identical to the pre-crash warm answer:

  $ ../../bin/main.exe client d.sock -- solve card pat store --sim shingles --xi 0.5 > warm2.txt 2>&1 || true
  $ cmp warm1.txt warm2.txt && echo identical after recovery
  identical after recovery

While this daemon lives, a second daemon refuses its socket instead of
clobbering it:

  $ ../../bin/phomd.exe --socket d.sock --state-dir state2 2>&1
  error: d.sock: a live daemon is already listening here
  [1]

The recovery counters are exported through the metrics registry too:

  $ ../../bin/main.exe client d.sock stats | grep -E '^phom_(journal_replayed_total|recovery_quarantined_total) '
  phom_journal_replayed_total 5
  phom_recovery_quarantined_total 0

A graceful shutdown snapshots the state and leaves only intact state
files (snapshot + rotated journal), no scratch files:

  $ ../../bin/main.exe client d.sock shutdown
  ok shutting down
  $ wait $PHOMD
  $ ls state
  state.journal
  state.snap
