Dynamic graphs, end to end: drive a durable daemon through load → edit →
warm re-solve, kill -9 it, and check that recovery replays the edits (so
the restarted daemon serves the edited graph, warm) and that CRC-pinned
edit lines are idempotent on replay and over the wire.

  $ ../../bin/phomd.exe --socket d.sock --state-dir state --fsync always > phomd.log 2>&1 &
  $ PHOMD=$!
  $ for i in $(seq 1 150); do grep -q listening phomd.log 2> /dev/null && break; sleep 0.1; done
  $ ../../bin/main.exe client d.sock ping
  ok pong

Load the Figure-1 graphs and warm the cache with one solve:

  $ ../../bin/main.exe client d.sock load graph pat ../../data/fig1_pattern.phg
  ok loaded graph pat nodes=6 edges=6
  $ ../../bin/main.exe client d.sock load graph store ../../data/fig1_store.phg
  ok loaded graph store nodes=14 edges=14
  $ ../../bin/main.exe client d.sock -- solve card pat store --sim shingles --xi 0.5 > cold.txt 2>&1 || true
  $ grep -o 'cache=[^ ]*' cold.txt
  cache=closure:miss,mat:miss,cands:miss

An edge edit mutates the loaded graph in place. The cached closure is not
dropped: it is maintained incrementally and re-keyed under the new content
signature (closures=1), and the reply reports the new signature:

  $ ../../bin/main.exe client d.sock addedge store 0 5
  ok edited store op=add v=0 w=5 edges=15 crc=ba0a9ba2 applied=1 closures=1
  $ ../../bin/main.exe client d.sock -- solve card pat store --sim shingles --xi 0.5 > after_add.txt 2>&1 || true
  $ grep -o 'cache=[^ ]*' after_add.txt
  cache=closure:hit,mat:hit,cands:miss

The re-solve hit the maintained closure and the (label-keyed, hence
edit-invariant) similarity matrix; only the candidate table was rebuilt.
Deleting the same edge restores the original content, so the original
signature — and with it every pre-edit artifact — is live again:

  $ ../../bin/main.exe client d.sock deledge store 0 5 | grep -o 'applied=[0-9]*'
  applied=1
  $ ../../bin/main.exe client d.sock -- solve card pat store --sim shingles --xi 0.5 > undone.txt 2>&1 || true
  $ grep -o 'cache=[^ ]*' undone.txt
  cache=closure:hit,mat:hit,cands:hit
  $ sed 's/ cache=[^ ]*//' cold.txt > cold_n.txt
  $ sed 's/ cache=[^ ]*//' undone.txt > undone_n.txt
  $ cmp cold_n.txt undone_n.txt && echo same answer as before the round trip
  same answer as before the round trip

Re-apply the edit, remember its signature, and take the pre-crash warm
answer:

  $ CRC=$(../../bin/main.exe client d.sock addedge store 0 5 | grep -o 'crc=[^ ]*' | cut -d= -f2)
  $ ../../bin/main.exe client d.sock -- solve card pat store --sim shingles --xi 0.5 > warm_pre.txt 2>&1 || true
  $ grep -o 'cache=[^ ]*' warm_pre.txt
  cache=closure:hit,mat:hit,cands:hit

Duplicate adds and missing dels are clean errors, and a CRC-pinned retry
of an already-applied edit is an idempotent no-op:

  $ ../../bin/main.exe client d.sock addedge store 0 5
  error edge 0->5 is already present in store
  [1]
  $ ../../bin/main.exe client d.sock deledge store 5 0
  error no edge 5->0 in store
  [1]
  $ ../../bin/main.exe client d.sock -- addedge store 0 5 --crc $CRC | grep -o 'applied=[0-9]*'
  applied=0

Kill the daemon without ceremony and restart it on the same state
directory. Recovery replays the journal — including the edit events,
which converge via their pinned signatures — so the edited graph comes
back with nothing quarantined:

  $ kill -9 $PHOMD
  $ wait $PHOMD 2> /dev/null || true
  $ ../../bin/phomd.exe --socket d.sock --state-dir state --fsync always > phomd2.log 2>&1 &
  $ PHOMD=$!
  $ for i in $(seq 1 150); do grep -q listening phomd2.log 2> /dev/null && break; sleep 0.1; done
  $ ../../bin/main.exe client d.sock health | cut -d' ' -f1-4
  ok health state=ready persist=true
  $ ../../bin/main.exe client d.sock health | grep -o 'quarantined=[0-9]*'
  quarantined=0
  $ ../../bin/main.exe client d.sock list
  ok graphs=[pat:6n/6e,store:14n/15e] mats=[]

The recovered daemon still carries the edit (15 edges), its signature
matches the pre-crash one, and the first query is warm and byte-identical
to the pre-crash answer:

  $ ../../bin/main.exe client d.sock -- addedge store 0 5 --crc $CRC | grep -o 'applied=[0-9]*'
  applied=0
  $ ../../bin/main.exe client d.sock -- solve card pat store --sim shingles --xi 0.5 > warm_post.txt 2>&1 || true
  $ cmp warm_pre.txt warm_post.txt && echo identical after recovery
  identical after recovery

  $ ../../bin/main.exe client d.sock shutdown
  ok shutting down
  $ wait $PHOMD
