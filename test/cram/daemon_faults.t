Fault tolerance of the multiplexed daemon: a stalled client and a
mid-solve disconnect must not delay a healthy client, and SIGTERM during
an in-flight solve drains gracefully — the reply is flushed before the
socket path is unlinked.

Start a daemon with 2 solve workers, a short idle deadline and a 1-second
artificial delay at the start of every solve (so concurrency and drain
windows are deterministic):

  $ ../../bin/phomd.exe --socket d.sock --jobs 3 --idle-timeout 1 --fault-delay 1 > phomd.log 2>&1 &
  $ DPID=$!
  $ for i in $(seq 1 150); do grep -q listening phomd.log 2> /dev/null && break; sleep 0.1; done
  $ ../../bin/main.exe client d.sock load graph pat ../../data/fig1_pattern.phg
  ok loaded graph pat nodes=6 edges=6
  $ ../../bin/main.exe client d.sock load graph store ../../data/fig1_store.phg
  ok loaded graph store nodes=14 edges=14

One peer connects and goes silent; another starts a solve and vanishes
without reading its reply. Neither may delay the healthy client below —
its solve (1 s of injected delay plus real work) completes while both
misbehaving peers are still being dealt with. The two concurrent solves
use disjoint artifact keys so the healthy provenance stays deterministic:

  $ ../../bin/main.exe client --hold 3 d.sock &
  $ HOLD=$!
  $ ../../bin/main.exe client --no-read d.sock -- solve card pat store --sim equality --hops 2 --xi 0.9
  $ ../../bin/main.exe client d.sock -- solve card pat store --sim shingles --xi 0.5
  ok solve problem=CPH quality=0.3333 mapped=2/6 matched=false status=complete cache=closure:miss,mat:miss,cands:miss

The daemon is unharmed by the disconnected solver, and the silent peer
was evicted at its idle deadline (the hold client exits cleanly — its
connection was closed under it, which it never noticed):

  $ ../../bin/main.exe client d.sock version
  ok phomd 1.7.0 protocol 5
  $ wait $HOLD
  $ ../../bin/main.exe client d.sock stats | grep -E '^phom_daemon_connections_(shed|evicted)_total '
  phom_daemon_connections_evicted_total 1
  phom_daemon_connections_shed_total 0

Clear the artifact cache so the drain reply below has cold, deterministic
provenance:

  $ ../../bin/main.exe client d.sock unload store
  ok unloaded store artifacts=4
  $ ../../bin/main.exe client d.sock load graph store ../../data/fig1_store.phg
  ok loaded graph store nodes=14 edges=14

SIGTERM lands while a solve is inside its injected 1-second delay. The
drain budget-trips the request, the anytime reply still reaches the
client (exit 2, like any exhausted budget), the daemon exits cleanly and
the socket path is gone:

  $ ../../bin/main.exe client d.sock -- solve card pat store --sim shingles --xi 0.5 > drain_reply.txt 2>&1 &
  $ CPID=$!
  $ sleep 0.4
  $ kill -TERM $DPID
  $ wait $CPID; echo "client exit: $?"
  client exit: 2
  $ cat drain_reply.txt
  ok solve problem=CPH quality=0.0000 mapped=0/6 matched=false status=exhausted(cancelled) cache=closure:miss,mat:miss,cands:miss
  $ wait $DPID; echo "daemon exit: $?"
  daemon exit: 0
  $ [ -S d.sock ] || echo socket gone
  socket gone
