Every matching notion on the Figure-1 stores at once.

  $ ../../bin/main.exe compare ../../data/fig1_pattern.phg ../../data/fig1_store.phg --mat ../../data/fig1_mate.phs --xi 0.6
  method                 quality    matched@0.75
  CPH                    1.0000     true
  CPH1-1                 1.0000     true
  SPH                    0.7750     true
  SPH1-1                 0.7750     true
  graphSimulation        -          false
  subgraphIsomorphism    -          false
  maxCommonSubgraph      0.6667     false
  editDistance           0.5413     false
  pathFeatures           0.0377     false
