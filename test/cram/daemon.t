The matching service daemon, end to end over a Unix-domain socket: start
phomd, load the Figure-1 graphs, solve repeatedly (the second query must be
served from the artifact cache), inspect the stats, unload, and shut down.

Start the daemon in the background and wait for its socket:

  $ ../../bin/phomd.exe --socket d.sock --jobs 2 --metrics-dump metrics.prom > phomd.log 2>&1 &
  $ for i in $(seq 1 150); do grep -q listening phomd.log 2> /dev/null && break; sleep 0.1; done
  $ cat phomd.log
  phomd 1.7.0 listening on d.sock

Both binaries report the same version:

  $ ../../bin/main.exe --version
  1.7.0
  $ ../../bin/phomd.exe --version
  1.7.0
  $ ../../bin/main.exe client d.sock version
  ok phomd 1.7.0 protocol 5

Load the Figure-1 graphs and the external similarity matrix:

  $ ../../bin/main.exe client d.sock list
  ok graphs=[] mats=[]
  $ ../../bin/main.exe client d.sock load graph pat ../../data/fig1_pattern.phg
  ok loaded graph pat nodes=6 edges=6
  $ ../../bin/main.exe client d.sock load graph store ../../data/fig1_store.phg
  ok loaded graph store nodes=14 edges=14
  $ ../../bin/main.exe client d.sock load mat mate ../../data/fig1_mate.phs
  ok loaded mat mate dims=6x14
  $ ../../bin/main.exe client d.sock list
  ok graphs=[pat:6n/6e,store:14n/14e] mats=[mate:6x14]

The catalog refuses to load over a live name, and loads report file and
line on parse errors:

  $ ../../bin/main.exe client d.sock load graph pat ../../data/fig1_store.phg
  error name pat is already loaded (unload it first)
  [1]
  $ echo garbage > bad.phg
  $ ../../bin/main.exe client d.sock load graph bad bad.phg
  error bad.phg: line 1: missing 'phg 1' header
  [1]

A cold solve computes every artifact; re-running the same query is served
from the cache with an identical answer (Fig. 1 matches at xi = 0.6 under
the paper's mate() matrix):

  $ ../../bin/main.exe client d.sock -- solve card11 pat store --mat mate --xi 0.6
  ok solve problem=CPH1-1 quality=1.0000 mapped=6/6 matched=true status=complete cache=closure:miss,mat:catalog,cands:miss
  $ ../../bin/main.exe client d.sock -- solve card11 pat store --mat mate --xi 0.6
  ok solve problem=CPH1-1 quality=1.0000 mapped=6/6 matched=true status=complete cache=closure:hit,mat:catalog,cands:hit
A different problem over the same pair reuses the same candidate table —
the artifact key is (pair, sim, hops, xi), not the problem:

  $ ../../bin/main.exe client d.sock -- solve sim pat store --mat mate --xi 0.6
  ok solve problem=SPH quality=0.7750 mapped=6/6 matched=true status=complete cache=closure:hit,mat:catalog,cands:hit

The stats command returns Prometheus text behind an `ok stats <n>` header
whose count matches the body:

  $ ../../bin/main.exe client d.sock stats > stats.prom
  $ head -1 stats.prom | sed 's/[0-9][0-9]*$/N/'
  ok stats N
  $ [ "$(head -1 stats.prom | cut -d' ' -f3)" = "$(($(wc -l < stats.prom) - 1))" ] && echo count ok
  count ok

The cache counters agree exactly with the reply provenance above (four
hits, two misses, two resident artifacts), and the daemon/catalog families
report live state:

  $ grep -E '^phom_(cache_(hits|misses|evictions)_total|cache_entries|catalog_(graphs|mats)|daemon_requests_total) ' stats.prom
  phom_cache_entries 2
  phom_cache_evictions_total 0
  phom_cache_hits_total 4
  phom_cache_misses_total 2
  phom_catalog_graphs 2
  phom_catalog_mats 1
  phom_daemon_requests_total 12
  $ grep -c '^phom_pool_jobs_total ' stats.prom
  1

A request-level budget trips during the search into an anytime best-so-far
answer (exit code 2, like the CLI); the closure was already warm, and the
candidate table — fully built before the trip — is cached for later
queries:

  $ ../../bin/main.exe client d.sock -- solve card pat store --sim shingles --steps 2
  ok solve problem=CPH quality=0.3333 mapped=2/6 matched=false status=exhausted(steps) cache=closure:hit,mat:miss,cands:miss
  [2]

Unloading a graph invalidates every artifact derived from it:

  $ ../../bin/main.exe client d.sock unload store
  ok unloaded store artifacts=4
  $ ../../bin/main.exe client d.sock -- solve card pat store
  error unknown graph store (load it first)
  [1]
  $ ../../bin/main.exe client d.sock unload store
  error name store is not loaded
  [1]

Protocol errors do not kill the connection:

  $ ../../bin/main.exe client d.sock frobnicate
  error unknown command frobnicate (version, ping, health, list, stats, load, unload, addedge, deledge, solve, count, shutdown, quit)
  [1]

Shut the daemon down; it unlinks its socket on the way out:

  $ ../../bin/main.exe client d.sock shutdown
  ok shutting down
  $ wait
  $ [ -S d.sock ] || echo socket gone
  socket gone

--metrics-dump wrote a final snapshot of the same registry on the way out:

  $ grep -q 'phom_build_info{version="1.7.0"} 1' metrics.prom && echo build info ok
  build info ok
  $ grep -E '^phom_cache_hits_total ' metrics.prom
  phom_cache_hits_total 5

The dump is atomic — its scratch file never survives:

  $ [ -e metrics.prom.tmp ] || echo no tmp left behind
  no tmp left behind

A client connecting to a dead daemon fails cleanly:

  $ ../../bin/main.exe client d.sock version
  error: cannot connect to d.sock: No such file or directory
  [1]
