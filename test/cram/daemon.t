The matching service daemon, end to end over a Unix-domain socket: start
phomd, load the Figure-1 graphs, solve repeatedly (the second query must be
served from the artifact cache), inspect the stats, unload, and shut down.

Start the daemon in the background and wait for its socket:

  $ ../../bin/phomd.exe --socket d.sock --jobs 2 > phomd.log 2>&1 &
  $ for i in $(seq 1 150); do grep -q listening phomd.log 2> /dev/null && break; sleep 0.1; done
  $ cat phomd.log
  phomd 1.2.0 listening on d.sock

Both binaries report the same version:

  $ ../../bin/main.exe --version
  1.2.0
  $ ../../bin/phomd.exe --version
  1.2.0
  $ ../../bin/main.exe client d.sock version
  ok phomd 1.2.0 protocol 1

Load the Figure-1 graphs and the external similarity matrix:

  $ ../../bin/main.exe client d.sock list
  ok graphs=[] mats=[]
  $ ../../bin/main.exe client d.sock load graph pat ../../data/fig1_pattern.phg
  ok loaded graph pat nodes=6 edges=6
  $ ../../bin/main.exe client d.sock load graph store ../../data/fig1_store.phg
  ok loaded graph store nodes=14 edges=14
  $ ../../bin/main.exe client d.sock load mat mate ../../data/fig1_mate.phs
  ok loaded mat mate dims=6x14
  $ ../../bin/main.exe client d.sock list
  ok graphs=[pat:6n/6e,store:14n/14e] mats=[mate:6x14]

The catalog refuses to load over a live name, and loads report file and
line on parse errors:

  $ ../../bin/main.exe client d.sock load graph pat ../../data/fig1_store.phg
  error name pat is already loaded (unload it first)
  [1]
  $ echo garbage > bad.phg
  $ ../../bin/main.exe client d.sock load graph bad bad.phg
  error bad.phg: line 1: missing 'phg 1' header
  [1]

A cold solve computes every artifact; re-running the same query is served
from the cache with an identical answer (Fig. 1 matches at xi = 0.6 under
the paper's mate() matrix):

  $ ../../bin/main.exe client d.sock -- solve card11 pat store --mat mate --xi 0.6
  ok solve problem=CPH1-1 quality=1.0000 mapped=6/6 matched=true status=complete cache=closure:miss,mat:catalog,cands:miss
  $ ../../bin/main.exe client d.sock -- solve card11 pat store --mat mate --xi 0.6
  ok solve problem=CPH1-1 quality=1.0000 mapped=6/6 matched=true status=complete cache=closure:hit,mat:catalog,cands:hit
A different problem over the same pair reuses the same candidate table —
the artifact key is (pair, sim, hops, xi), not the problem:

  $ ../../bin/main.exe client d.sock -- solve sim pat store --mat mate --xi 0.6
  ok solve problem=SPH quality=0.7750 mapped=6/6 matched=true status=complete cache=closure:hit,mat:catalog,cands:hit

The stats report the cache hits (bytes vary with word size, so keep the
counters only):

  $ ../../bin/main.exe client d.sock stats | sed 's/bytes=[0-9]* capacity=[0-9]*/bytes=_ capacity=_/'
  ok stats requests=12 graphs=2 mats=1 cache entries=2 bytes=_ capacity=_ hits=4 misses=2 evictions=0 busy=0 evicted=0

A request-level budget trips during the search into an anytime best-so-far
answer (exit code 2, like the CLI); the closure was already warm, and the
candidate table — fully built before the trip — is cached for later
queries:

  $ ../../bin/main.exe client d.sock -- solve card pat store --sim shingles --steps 2
  ok solve problem=CPH quality=0.3333 mapped=2/6 matched=false status=exhausted(steps) cache=closure:hit,mat:miss,cands:miss
  [2]

Unloading a graph invalidates every artifact derived from it:

  $ ../../bin/main.exe client d.sock unload store
  ok unloaded store artifacts=4
  $ ../../bin/main.exe client d.sock -- solve card pat store
  error unknown graph store (load it first)
  [1]
  $ ../../bin/main.exe client d.sock unload store
  error name store is not loaded
  [1]

Protocol errors do not kill the connection:

  $ ../../bin/main.exe client d.sock frobnicate
  error unknown command frobnicate (version, list, stats, load, unload, solve, shutdown, quit)
  [1]

Shut the daemon down; it unlinks its socket on the way out:

  $ ../../bin/main.exe client d.sock shutdown
  ok shutting down
  $ wait
  $ [ -S d.sock ] || echo socket gone
  socket gone

A client connecting to a dead daemon fails cleanly:

  $ ../../bin/main.exe client d.sock version
  error: cannot connect to d.sock: No such file or directory
  [1]
