(* Concrete reconstructions of the paper's running examples. Figure 1's two
   online stores are described only pictorially; the structures below are
   chosen so that every claim the text makes about them holds (see the
   assertions in Test_paper_examples). *)

module D = Phom_graph.Digraph
module Simmat = Phom_sim.Simmat

(* ---- Figure 1: the online stores Gp and G ---- *)

(* Gp nodes *)
let p_a = 0
let p_books = 1
let p_audio = 2
let p_textbooks = 3
let p_abooks = 4
let p_albums = 5

let gp =
  D.make
    ~labels:[| "A"; "books"; "audio"; "textbooks"; "abooks"; "albums" |]
    ~edges:
      [
        (p_a, p_books);
        (p_a, p_audio);
        (p_books, p_textbooks);
        (p_books, p_abooks);
        (p_audio, p_abooks);
        (p_audio, p_albums);
      ]

(* G nodes *)
let g_b = 0
let g_books = 1
let g_sports = 2
let g_digital = 3
let g_categories = 4
let g_school = 5
let g_arts = 6
let g_audiobooks = 7
let g_booksets = 8
let g_dvds = 9
let g_cds = 10
let g_features = 11
let g_genres = 12
let g_albums = 13

let g =
  D.make
    ~labels:
      [|
        "B"; "books"; "sports"; "digital"; "categories"; "school"; "arts";
        "audiobooks"; "booksets"; "DVDs"; "CDs"; "features"; "genres"; "albums";
      |]
    ~edges:
      [
        (g_b, g_books);
        (g_b, g_sports);
        (g_b, g_digital);
        (g_books, g_categories);
        (g_categories, g_school);
        (g_categories, g_arts);
        (g_categories, g_booksets);
        (g_categories, g_audiobooks);
        (g_digital, g_features);
        (g_digital, g_genres);
        (g_digital, g_dvds);
        (g_digital, g_cds);
        (g_features, g_audiobooks);
        (g_genres, g_albums);
      ]

(* the page-checker similarity mate() of Example 3.1 *)
let mate =
  let m = Simmat.create ~n1:(D.n gp) ~n2:(D.n g) in
  Simmat.set m p_a g_b 0.7;
  Simmat.set m p_audio g_digital 0.7;
  Simmat.set m p_books g_books 1.0;
  Simmat.set m p_abooks g_audiobooks 0.8;
  Simmat.set m p_books g_booksets 0.6;
  Simmat.set m p_textbooks g_school 0.6;
  Simmat.set m p_albums g_albums 0.85;
  m

(* the p-hom mapping of Examples 1.1/3.1 (also 1-1, Example 3.2) *)
let sigma_fig1 =
  [
    (p_a, g_b);
    (p_books, g_books);
    (p_audio, g_digital);
    (p_textbooks, g_school);
    (p_abooks, g_audiobooks);
    (p_albums, g_albums);
  ]

(* ---- Figure 2: the three pairs G1..G6 ---- *)

(* G1 ⪯(e,p) G2 but G1 ⋠¹⁻¹ G2: both A nodes share G2's single A *)
let g1_fig2 = D.make ~labels:[| "A"; "A"; "B"; "C" |] ~edges:[ (0, 2); (1, 2); (2, 3) ]
let g2_fig2 = D.make ~labels:[| "A"; "B"; "C"; "C" |] ~edges:[ (0, 1); (1, 2); (1, 3) ]

(* G3 ⋠(e,p) G4: G4's two D nodes are reachable from A and B separately *)
let g3_fig2 = D.make ~labels:[| "A"; "B"; "D" |] ~edges:[ (0, 2); (1, 2) ]
let g4_fig2 = D.make ~labels:[| "A"; "B"; "D"; "D" |] ~edges:[ (0, 2); (1, 3) ]

(* G5 ⪯(e,p) G6 but not 1-1: both B nodes must take G6's single B *)
let g5_v1 = 1
let g5_v2 = 2

let g5_fig2 =
  D.make
    ~labels:[| "A"; "B"; "B"; "D"; "E" |]
    ~edges:[ (0, g5_v1); (0, g5_v2); (g5_v1, 3); (g5_v2, 4) ]

let g6_fig2 =
  D.make ~labels:[| "A"; "B"; "D"; "E" |] ~edges:[ (0, 1); (1, 2); (1, 3) ]

(* ---- Example 3.3 (metrics): a G5/G6 variant where the paper's numbers
   hold exactly. In the paper's prose the optimal SPH¹⁻¹ mapping covers
   {A, v2} at 0.7 while the optimal CPH¹⁻¹ covers {A, v1, D, E} at 0.8 and
   0.36 similarity; that requires v2's edges to block D and E, so here v2
   (not v1) is the parent of both. *)

let ex33_g5 =
  D.make
    ~labels:[| "A"; "B"; "B"; "D"; "E" |]
    ~edges:[ (0, 1); (0, 2); (2, 3); (2, 4) ]
(* v1 = 1, v2 = 2, D = 3, E = 4; v2→D and v2→E *)

let ex33_g6 = D.make ~labels:[| "A"; "B"; "D"; "E" |] ~edges:[ (0, 1) ]

let ex33_mat =
  let m = Simmat.create ~n1:5 ~n2:4 in
  Simmat.set m 0 0 1.0;
  (* mat0(A,A) *)
  Simmat.set m 3 2 1.0;
  (* mat0(D,D) *)
  Simmat.set m 4 3 1.0;
  (* mat0(E,E) *)
  Simmat.set m 2 1 1.0;
  (* mat0(v2,B) *)
  Simmat.set m 1 1 0.6;
  (* mat0(v1,B) *)
  m

let ex33_weights = [| 1.; 1.; 6.; 1.; 1. |]

(* ---- Example 5.1: the subgraphs G1' and G2' of Gp and G ---- *)

let ex51_g1 =
  (* books, textbooks, abooks *)
  fst (D.induced gp [ p_books; p_textbooks; p_abooks ])

let ex51_g2 =
  (* books, categories, booksets, school, audiobooks *)
  fst (D.induced g [ g_books; g_categories; g_booksets; g_school; g_audiobooks ])
