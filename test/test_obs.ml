(* The observability layer: registry semantics, the lock-free hot paths
   under real domain parallelism, and the daemon's stats reply agreeing
   exactly with per-reply cache provenance (both read the same atomics). *)

module Obs = Phom_obs.Obs
module Pool = Phom_parallel.Pool
module Lru = Phom_server.Lru
module Daemon = Phom_server.Daemon
module Protocol = Phom_server.Protocol

let fig1_pattern = Filename.concat "../data" "fig1_pattern.phg"
let fig1_store = Filename.concat "../data" "fig1_store.phg"

(* ---- registry semantics ---- *)

let test_counter () =
  let c = Obs.counter "test_obs_counter_total" in
  let before = Obs.counter_value c in
  Obs.incr c;
  Obs.incr c;
  Obs.add c 5;
  Obs.add c (-3);
  (* counters are monotonic: negative deltas are dropped *)
  Alcotest.(check int) "incr/add, negatives ignored" (before + 7)
    (Obs.counter_value c);
  (* same name + labels = same instrument *)
  Obs.incr (Obs.counter "test_obs_counter_total");
  Alcotest.(check int) "registry returns the same cell" (before + 8)
    (Obs.counter_value c);
  (* distinct labels = distinct instrument *)
  let c' = Obs.counter ~labels:[ ("k", "v") ] "test_obs_counter_total" in
  Alcotest.(check int) "labels split the series" 0 (Obs.counter_value c')

let test_gauge () =
  let g = Obs.gauge "test_obs_gauge" in
  Obs.set_gauge g 10;
  Obs.add_gauge g (-4);
  Obs.add_gauge g 1;
  Alcotest.(check int) "set/add in both directions" 7 (Obs.gauge_value g)

let test_histogram () =
  let h = Obs.histogram ~buckets:[| 0.1; 1.0; 10.0 |] "test_obs_hist" in
  List.iter (Obs.observe h) [ 0.05; 0.5; 5.0; 100.0 ];
  Alcotest.(check int) "count" 4 (Obs.histogram_count h);
  Alcotest.(check (float 1e-6)) "sum" 105.55 (Obs.histogram_sum h);
  (* nearest-rank over bucket upper bounds *)
  Alcotest.(check (float 1e-9)) "p50" 1.0 (Obs.quantile h 0.5);
  Alcotest.(check bool) "p99 overflows to +Inf" true
    (Obs.quantile h 0.99 = Float.infinity);
  let empty = Obs.histogram ~buckets:[| 1.0 |] "test_obs_hist_empty" in
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Obs.quantile empty 0.5))

let test_disabled () =
  let c = Obs.counter "test_obs_disabled_total" in
  let h = Obs.histogram "test_obs_disabled_hist" in
  Obs.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled true)
    (fun () ->
      Obs.incr c;
      Obs.add c 7;
      Obs.observe h 0.5);
  Alcotest.(check int) "disabled counter unmoved" 0 (Obs.counter_value c);
  Alcotest.(check int) "disabled histogram unmoved" 0 (Obs.histogram_count h)

let test_probe_replaced () =
  Obs.register_probe "test_obs_probe" (fun () -> 1.0);
  Obs.register_probe "test_obs_probe" (fun () -> 2.0);
  let line =
    List.find
      (fun l -> String.length l >= 14 && String.sub l 0 14 = "test_obs_probe")
      (Obs.dump_lines ())
  in
  (* re-registration re-points the probe — fresh daemon states rely on it *)
  Alcotest.(check string) "latest registration wins" "test_obs_probe 2" line

let test_dump_parseable () =
  let lines = Obs.dump_lines () in
  Alcotest.(check bool) "non-empty" true (lines <> []);
  List.iter
    (fun l ->
      match String.rindex_opt l ' ' with
      | None -> Alcotest.failf "metric line without a value: %S" l
      | Some i -> (
          let v = String.sub l (i + 1) (String.length l - i - 1) in
          match float_of_string_opt v with
          | Some _ -> ()
          | None -> Alcotest.failf "unparseable value %S in %S" v l))
    lines;
  (* dumping twice without recording is stable, so dumps are diffable *)
  Alcotest.(check bool) "dump is deterministic" true
    (Obs.dump_lines () = lines);
  (* at least the span family from earlier suites must be present *)
  Alcotest.(check bool) "span family present" true
    (List.exists
       (fun l -> Helpers.contains_substring ~needle:"phom_span_seconds" l)
       lines)

(* ---- hot paths under domain parallelism ---- *)

let test_domains_hammer () =
  let c = Obs.counter "test_obs_hammer_total" in
  let h = Obs.histogram ~buckets:[| 0.5 |] "test_obs_hammer_seconds" in
  let domains = 4 and tasks = 8 and per_task = 10_000 in
  Pool.with_pool ~domains (fun pool ->
      ignore
        (Pool.map pool
           (fun _ ->
             for _ = 1 to per_task do
               Obs.incr c;
               Obs.observe h 0.25
             done)
           (Array.init tasks Fun.id)));
  let n = tasks * per_task in
  Alcotest.(check int) "no lost counter updates" n (Obs.counter_value c);
  Alcotest.(check int) "no lost observations" n (Obs.histogram_count h);
  (* 0.25 is exact in the 1e-6 fixed-point sum: the total must be exact *)
  Alcotest.(check (float 1e-6)) "exact fixed-point sum"
    (0.25 *. float_of_int n)
    (Obs.histogram_sum h)

(* ---- daemon stats vs reply provenance ---- *)

let exec st line =
  match Protocol.parse line with
  | Error m -> Alcotest.failf "parse %S: %s" line m
  | Ok req -> fst (Daemon.execute st req)

let count_needle needle s = Helpers.count_substring ~needle s

let metric_value lines name =
  let prefix = name ^ " " in
  match
    List.find_opt
      (fun l ->
        String.length l > String.length prefix
        && String.sub l 0 (String.length prefix) = prefix)
      lines
  with
  | None -> Alcotest.failf "metric %s missing from stats" name
  | Some l ->
      int_of_float
        (float_of_string
           (String.sub l (String.length prefix)
              (String.length l - String.length prefix)))

let test_daemon_stats_agree () =
  let st = Daemon.make_state Daemon.default_config in
  ignore (exec st ("load graph pat " ^ fig1_pattern));
  ignore (exec st ("load graph store " ^ fig1_store));
  let solves =
    [
      "solve card pat store --sim shingles --xi 0.5";
      "solve card pat store --sim shingles --xi 0.5";
      "solve sim pat store --sim shingles --xi 0.5";
      "solve card11 pat store --sim shingles --xi 0.6";
    ]
  in
  let replies = List.map (exec st) solves in
  let hits = List.fold_left (fun a r -> a + count_needle ":hit" r) 0 replies in
  let misses =
    List.fold_left (fun a r -> a + count_needle ":miss" r) 0 replies
  in
  Alcotest.(check bool) "the run exercises both outcomes" true
    (hits > 0 && misses > 0);
  let reply = exec st "stats" in
  match String.split_on_char '\n' reply with
  | [] -> Alcotest.fail "empty stats reply"
  | header :: body ->
      Alcotest.(check string) "header counts the body"
        (Printf.sprintf "ok stats %d" (List.length body))
        header;
      (* the cache family reads the same atomics provenance increments,
         so the agreement is exact, not approximate *)
      Alcotest.(check int) "hits agree with provenance" hits
        (metric_value body "phom_cache_hits_total");
      Alcotest.(check int) "misses agree with provenance" misses
        (metric_value body "phom_cache_misses_total");
      Alcotest.(check int) "no evictions in this run" 0
        (metric_value body "phom_cache_evictions_total");
      Alcotest.(check int) "catalog gauges are live" 2
        (metric_value body "phom_catalog_graphs");
      (* the requests probe samples mid-request: the stats request itself
         is already counted *)
      Alcotest.(check int) "requests probe is the live field"
        (Daemon.requests_served st)
        (metric_value body "phom_daemon_requests_total")

(* ---- Lru accessors and stats copy the same cells ---- *)

let test_lru_single_source () =
  let cache = Lru.create ~capacity_bytes:64 ~weight:(fun _ -> 24) () in
  ignore (Lru.find cache "a");
  (* miss *)
  Lru.put cache "a" ();
  ignore (Lru.find cache "a");
  (* hit *)
  Lru.put cache "b" ();
  Lru.put cache "c" ();
  (* 3 * 24 > 64: evicts *)
  ignore (Lru.find cache "b");
  let s = Lru.stats cache in
  Alcotest.(check int) "hits" (Lru.hits cache) s.Lru.hits;
  Alcotest.(check int) "misses" (Lru.misses cache) s.Lru.misses;
  Alcotest.(check int) "evictions" (Lru.evictions cache) s.Lru.evictions;
  Alcotest.(check int) "two hits" 2 (Lru.hits cache);
  Alcotest.(check int) "one miss" 1 (Lru.misses cache);
  Alcotest.(check int) "one eviction" 1 (Lru.evictions cache)

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "counter" `Quick test_counter;
        Alcotest.test_case "gauge" `Quick test_gauge;
        Alcotest.test_case "histogram" `Quick test_histogram;
        Alcotest.test_case "disabled registry records nothing" `Quick
          test_disabled;
        Alcotest.test_case "probe re-registration re-points" `Quick
          test_probe_replaced;
        Alcotest.test_case "dump is parseable" `Quick test_dump_parseable;
        Alcotest.test_case "domains hammer one counter" `Quick
          test_domains_hammer;
        Alcotest.test_case "daemon stats agree with provenance" `Quick
          test_daemon_stats_agree;
        Alcotest.test_case "Lru counters are the single source" `Quick
          test_lru_single_source;
      ] );
  ]
