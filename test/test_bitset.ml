open Helpers
module Bitset = Phom_graph.Bitset

let test_basic () =
  let s = Bitset.create 100 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  Alcotest.(check int) "count" 4 (Bitset.count s);
  Alcotest.(check bool) "mem 63" true (Bitset.mem s 63);
  Alcotest.(check bool) "mem 62" false (Bitset.mem s 62);
  Bitset.remove s 63;
  Alcotest.(check bool) "removed" false (Bitset.mem s 63);
  Alcotest.(check (list int)) "to_list" [ 0; 64; 99 ] (Bitset.to_list s)

let test_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> ignore (Bitset.mem s (-1)));
  Alcotest.check_raises "too big" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> Bitset.add s 10)

let test_set_ops () =
  let a = Bitset.of_list 10 [ 1; 2; 3 ] and b = Bitset.of_list 10 [ 2; 3; 4 ] in
  let u = Bitset.copy a in
  Bitset.union_into ~into:u b;
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Bitset.to_list u);
  let i = Bitset.copy a in
  Bitset.inter_into ~into:i b;
  Alcotest.(check (list int)) "inter" [ 2; 3 ] (Bitset.to_list i);
  let d = Bitset.copy a in
  Bitset.diff_into ~into:d b;
  Alcotest.(check (list int)) "diff" [ 1 ] (Bitset.to_list d);
  Alcotest.(check bool) "subset yes" true (Bitset.subset i a);
  Alcotest.(check bool) "subset no" false (Bitset.subset a b)

let test_universe_mismatch () =
  let a = Bitset.create 5 and b = Bitset.create 6 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Bitset.union_into: universe mismatch") (fun () ->
      Bitset.union_into ~into:a b)

let test_full_choose () =
  let f = Bitset.full 70 in
  Alcotest.(check int) "full count" 70 (Bitset.count f);
  Alcotest.(check (option int)) "choose" (Some 0) (Bitset.choose f);
  Alcotest.(check (option int)) "choose empty" None (Bitset.choose (Bitset.create 3))

let test_iter_order () =
  let s = Bitset.of_list 200 [ 199; 5; 63; 64; 128 ] in
  Alcotest.(check (list int)) "ascending" [ 5; 63; 64; 128; 199 ] (Bitset.to_list s)

(* the MWC hot loop leans on inter/inter_count/disjoint/copy_into/clear;
   exercise them at universe sizes straddling the 63-bit word boundary
   (one word, exactly one word, one bit into the second word, two words,
   one bit into the third) plus the empty/full extremes *)
let test_hot_ops_word_boundaries () =
  List.iter
    (fun n ->
      let all = List.init n Fun.id in
      let evens = Bitset.of_list n (List.filter (fun i -> i mod 2 = 0) all) in
      let thirds = Bitset.of_list n (List.filter (fun i -> i mod 3 = 0) all) in
      let expected = List.filter (fun i -> i mod 6 = 0) all in
      let name fmt = Printf.sprintf "n=%d: %s" n fmt in
      Alcotest.(check (list int))
        (name "inter") expected
        (Bitset.to_list (Bitset.inter evens thirds));
      Alcotest.(check int)
        (name "inter_count")
        (List.length expected)
        (Bitset.inter_count evens thirds);
      Alcotest.(check bool) (name "disjoint overlapping") false
        (Bitset.disjoint evens thirds);
      let odds = Bitset.of_list n (List.filter (fun i -> i mod 2 = 1) all) in
      Alcotest.(check bool) (name "disjoint complements") true
        (Bitset.disjoint evens odds);
      let buf = Bitset.create n in
      Bitset.copy_into ~into:buf evens;
      Alcotest.(check bool) (name "copy_into") true (Bitset.equal buf evens);
      Bitset.clear buf;
      Alcotest.(check bool) (name "clear empties") true (Bitset.is_empty buf);
      Alcotest.(check int) (name "clear count") 0 (Bitset.count buf);
      let full = Bitset.full n and empty = Bitset.create n in
      Alcotest.(check int) (name "full popcount") n (Bitset.count full);
      Alcotest.(check int)
        (name "inter_count vs full")
        (Bitset.count thirds)
        (Bitset.inter_count full thirds);
      Alcotest.(check bool) (name "empty disjoint full") true
        (Bitset.disjoint empty full);
      Alcotest.(check int)
        (name "fold sum")
        (List.fold_left ( + ) 0 all)
        (Bitset.fold ( + ) full 0);
      (* the extreme bits of the universe survive a copy_into round-trip *)
      let ends = Bitset.of_list n (List.sort_uniq compare [ 0; n - 1 ]) in
      let buf2 = Bitset.create n in
      Bitset.copy_into ~into:buf2 ends;
      Alcotest.(check (list int))
        (name "boundary bits")
        (List.sort_uniq compare [ 0; n - 1 ])
        (Bitset.to_list buf2))
    [ 1; 62; 63; 64; 126; 127 ]

let gen_int_list : int list QCheck.Gen.t =
 fun st ->
  List.init (Random.State.int st 40) (fun _ -> Random.State.int st 120)

let prop_of_list_roundtrip =
  qtest "bitset: of_list = sorted dedup" gen_int_list
    (fun l -> String.concat "," (List.map string_of_int l))
    (fun l ->
      let s = Bitset.of_list 120 l in
      Bitset.to_list s = List.sort_uniq compare l)

let prop_count_matches =
  qtest "bitset: count = |to_list|" gen_int_list
    (fun l -> String.concat "," (List.map string_of_int l))
    (fun l ->
      let s = Bitset.of_list 120 l in
      Bitset.count s = List.length (Bitset.to_list s))

(* model-based: a random script of operations against Stdlib.Set *)
module Int_set = Set.Make (Int)

type op = Add of int | Remove of int | Union of int list | Diff of int list

let gen_script : op list QCheck.Gen.t =
 fun st ->
  List.init
    (5 + Random.State.int st 40)
    (fun _ ->
      match Random.State.int st 4 with
      | 0 -> Add (Random.State.int st 80)
      | 1 -> Remove (Random.State.int st 80)
      | 2 -> Union (List.init (Random.State.int st 5) (fun _ -> Random.State.int st 80))
      | _ -> Diff (List.init (Random.State.int st 5) (fun _ -> Random.State.int st 80)))

let print_script ops =
  String.concat ";"
    (List.map
       (function
         | Add i -> Printf.sprintf "add %d" i
         | Remove i -> Printf.sprintf "del %d" i
         | Union l -> "union " ^ String.concat "," (List.map string_of_int l)
         | Diff l -> "diff " ^ String.concat "," (List.map string_of_int l))
       ops)

let prop_model_based =
  qtest ~count:100 "bitset: agrees with Set.Make(Int) on random scripts"
    gen_script print_script (fun ops ->
      let s = Bitset.create 80 in
      let model = ref Int_set.empty in
      List.iter
        (function
          | Add i ->
              Bitset.add s i;
              model := Int_set.add i !model
          | Remove i ->
              Bitset.remove s i;
              model := Int_set.remove i !model
          | Union l ->
              Bitset.union_into ~into:s (Bitset.of_list 80 l);
              model := Int_set.union !model (Int_set.of_list l)
          | Diff l ->
              Bitset.diff_into ~into:s (Bitset.of_list 80 l);
              model := Int_set.diff !model (Int_set.of_list l))
        ops;
      Bitset.to_list s = Int_set.elements !model
      && Bitset.count s = Int_set.cardinal !model)

let suite =
  [
    ( "bitset",
      [
        Alcotest.test_case "basic add/remove/count" `Quick test_basic;
        Alcotest.test_case "bounds checking" `Quick test_bounds;
        Alcotest.test_case "union/inter/diff/subset" `Quick test_set_ops;
        Alcotest.test_case "universe mismatch" `Quick test_universe_mismatch;
        Alcotest.test_case "full and choose" `Quick test_full_choose;
        Alcotest.test_case "iteration is ascending" `Quick test_iter_order;
        Alcotest.test_case "hot ops on word boundaries" `Quick
          test_hot_ops_word_boundaries;
        prop_of_list_roundtrip;
        prop_count_matches;
        prop_model_based;
      ] );
  ]
