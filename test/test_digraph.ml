open Helpers

let diamond () =
  graph [ "a"; "b"; "c"; "d" ] [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_basic () =
  let g = diamond () in
  Alcotest.(check int) "n" 4 (D.n g);
  Alcotest.(check int) "m" 4 (D.nb_edges g);
  Alcotest.(check string) "label" "c" (D.label g 2);
  Alcotest.(check (array int)) "succ 0" [| 1; 2 |] (D.succ g 0);
  Alcotest.(check (array int)) "pred 3" [| 1; 2 |] (D.pred g 3);
  Alcotest.(check bool) "has_edge" true (D.has_edge g 1 3);
  Alcotest.(check bool) "no edge" false (D.has_edge g 3 1);
  Alcotest.(check int) "out_degree" 2 (D.out_degree g 0);
  Alcotest.(check int) "degree" 2 (D.degree g 0)

let test_dedup_and_self_loop () =
  let g = graph [ "a"; "b" ] [ (0, 1); (0, 1); (1, 1) ] in
  Alcotest.(check int) "deduped" 2 (D.nb_edges g);
  Alcotest.(check bool) "self loop kept" true (D.has_edge g 1 1)

let test_invalid_edge () =
  Alcotest.check_raises "endpoint range"
    (Invalid_argument "Digraph.make: edge endpoint out of range") (fun () ->
      ignore (graph [ "a" ] [ (0, 1) ]))

let test_reverse () =
  let g = diamond () in
  let r = D.reverse g in
  Alcotest.(check bool) "edge flipped" true (D.has_edge r 3 1);
  Alcotest.(check bool) "double reverse" true (D.equal g (D.reverse r))

let test_induced () =
  let g = diamond () in
  let sub, old_of_new = D.induced g [ 0; 1; 3 ] in
  Alcotest.(check int) "nodes" 3 (D.n sub);
  Alcotest.(check (array int)) "id map" [| 0; 1; 3 |] old_of_new;
  Alcotest.(check int) "edges kept" 2 (D.nb_edges sub);
  Alcotest.(check bool) "0->1" true (D.has_edge sub 0 1);
  Alcotest.(check bool) "1->3 renamed" true (D.has_edge sub 1 2)

let test_induced_dedups_input () =
  let g = diamond () in
  let sub, _ = D.induced g [ 3; 0; 3; 0 ] in
  Alcotest.(check int) "dedup" 2 (D.n sub)

let test_disjoint_union () =
  let g = D.disjoint_union (diamond ()) (graph [ "x" ] []) in
  Alcotest.(check int) "n" 5 (D.n g);
  Alcotest.(check string) "shifted label" "x" (D.label g 4);
  Alcotest.(check int) "m" 4 (D.nb_edges g)

let test_add_edges_and_map_labels () =
  let g = D.add_edges (diamond ()) [ (3, 0) ] in
  Alcotest.(check bool) "new edge" true (D.has_edge g 3 0);
  let g2 = D.map_labels (fun i l -> l ^ string_of_int i) g in
  Alcotest.(check string) "mapped" "b1" (D.label g2 1)

let test_stats () =
  let g = diamond () in
  Alcotest.(check (float 1e-9)) "avg" 1.0 (D.avg_degree g);
  Alcotest.(check int) "max deg" 2 (D.max_degree g);
  Alcotest.(check (float 1e-9)) "empty avg" 0.0 (D.avg_degree D.empty)

let prop_edges_roundtrip =
  qtest "digraph: edges/of_edges roundtrip" (digraph_gen ()) print_digraph
    (fun g ->
      let g' = D.make ~labels:(D.labels g) ~edges:(D.edges g) in
      D.equal g g')

let prop_pred_succ_dual =
  qtest "digraph: pred is dual of succ" (digraph_gen ()) print_digraph (fun g ->
      D.fold_edges (fun u v acc -> acc && Array.mem u (D.pred g v)) g true
      && D.nb_edges (D.reverse g) = D.nb_edges g)

let suite =
  [
    ( "digraph",
      [
        Alcotest.test_case "basic accessors" `Quick test_basic;
        Alcotest.test_case "dedup and self loops" `Quick test_dedup_and_self_loop;
        Alcotest.test_case "invalid edges rejected" `Quick test_invalid_edge;
        Alcotest.test_case "reverse" `Quick test_reverse;
        Alcotest.test_case "induced subgraph" `Quick test_induced;
        Alcotest.test_case "induced dedups node list" `Quick test_induced_dedups_input;
        Alcotest.test_case "disjoint union" `Quick test_disjoint_union;
        Alcotest.test_case "add_edges / map_labels" `Quick test_add_edges_and_map_labels;
        Alcotest.test_case "degree statistics" `Quick test_stats;
        prop_edges_roundtrip;
        prop_pred_succ_dual;
      ] );
  ]
