(* The bitset MWC engine vs its references: the legacy colouring B&B on
   cardinality, exhaustive subset search on weights, the sequential run on
   parallel chunks, and the anytime contract under tripped budgets. *)
module U = Phom_wis.Ungraph
module Mwc = Phom_wis.Mwc
module Wis = Phom_wis.Wis
module Budget = Phom_graph.Budget
module Pool = Phom_parallel.Pool

let random_graph rng ~n ~p ~max_w =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then edges := (u, v) :: !edges
    done
  done;
  let weights =
    Array.init n (fun _ -> float_of_int (1 + Random.State.int rng max_w))
  in
  U.create ~weights n !edges

let clique_weight g c = List.fold_left (fun acc v -> acc +. U.weight g v) 0. c

(* 200 seeded instances: the new engine and the legacy B&B must prove the
   same maximum cardinality (the witness clique may differ — optima are not
   unique — so we compare sizes and validate the witness) *)
let test_agrees_with_legacy () =
  let rng = Random.State.make [| 71; 2010 |] in
  for i = 1 to 200 do
    let n = 4 + Random.State.int rng 40 in
    let p = 0.2 +. Random.State.float rng 0.6 in
    let g = random_graph rng ~n ~p ~max_w:1 in
    let legacy, legacy_status = Wis.exact_max_clique_legacy g in
    let r = Mwc.solve_cardinality g in
    let name fmt = Printf.sprintf "instance %d (n=%d): %s" i n fmt in
    Alcotest.(check bool) (name "legacy complete") true
      (legacy_status = Budget.Complete);
    Alcotest.(check bool) (name "mwc complete") true
      (r.Mwc.status = Budget.Complete);
    Alcotest.(check bool) (name "mwc clique valid") true
      (U.is_clique g r.Mwc.clique);
    Alcotest.(check int) (name "same optimum")
      (List.length legacy)
      (List.length r.Mwc.clique);
    Alcotest.(check (float 1e-9)) (name "weight = size")
      (float_of_int (List.length r.Mwc.clique))
      r.Mwc.weight
  done

(* weighted optima against exhaustive subset search on small graphs:
   integer weights keep the float sums exact *)
let test_weighted_vs_brute_force () =
  let rng = Random.State.make [| 72; 2010 |] in
  for i = 1 to 60 do
    let n = 3 + Random.State.int rng 10 in
    let p = 0.2 +. Random.State.float rng 0.6 in
    let g = random_graph rng ~n ~p ~max_w:9 in
    let best = ref 0. in
    for mask = 1 to (1 lsl n) - 1 do
      let members =
        List.filter (fun v -> mask land (1 lsl v) <> 0) (List.init n Fun.id)
      in
      if U.is_clique g members then
        best := Float.max !best (clique_weight g members)
    done;
    let r = Mwc.solve g in
    let name fmt = Printf.sprintf "instance %d (n=%d): %s" i n fmt in
    Alcotest.(check bool) (name "complete") true (r.Mwc.status = Budget.Complete);
    Alcotest.(check bool) (name "clique valid") true
      (U.is_clique g r.Mwc.clique);
    Alcotest.(check (float 1e-9)) (name "weight consistent")
      (clique_weight g r.Mwc.clique)
      r.Mwc.weight;
    Alcotest.(check (float 1e-9)) (name "optimal weight") !best r.Mwc.weight
  done

(* --jobs invariance: the pool path must return the same clique (not just
   the same weight) as the sequential run. Graphs are kept above the
   engine's parallel cutoff so the chunked code path actually runs. *)
let test_jobs_invariant () =
  let rng = Random.State.make [| 73; 2010 |] in
  Pool.with_pool ~domains:3 (fun pool ->
      for i = 1 to 6 do
        let n = 70 + Random.State.int rng 30 in
        let p = 0.3 +. Random.State.float rng 0.4 in
        let max_w = if i mod 2 = 0 then 9 else 1 in
        let g = random_graph rng ~n ~p ~max_w in
        let seq = Mwc.solve g in
        let par = Mwc.solve ~pool g in
        let name fmt = Printf.sprintf "instance %d (n=%d): %s" i n fmt in
        Alcotest.(check bool) (name "seq complete") true
          (seq.Mwc.status = Budget.Complete);
        Alcotest.(check bool) (name "par complete") true
          (par.Mwc.status = Budget.Complete);
        Alcotest.(check (list int)) (name "same clique") seq.Mwc.clique
          par.Mwc.clique;
        Alcotest.(check (float 1e-9)) (name "same weight") seq.Mwc.weight
          par.Mwc.weight
      done)

(* the anytime contract across a grid of budget trips: every answer is a
   valid clique with a consistent weight, a tripped run says Exhausted, and
   more budget never yields a lighter answer (the engine is deterministic,
   so a longer run explores a superset of a shorter one) *)
let test_anytime_trip_grid () =
  let rng = Random.State.make [| 74; 2010 |] in
  let g = random_graph rng ~n:60 ~p:0.5 ~max_w:7 in
  let prev = ref 0. in
  List.iter
    (fun steps ->
      let budget = Budget.create ~steps () in
      let r = Mwc.solve ~budget g in
      let name fmt = Printf.sprintf "steps=%d: %s" steps fmt in
      Alcotest.(check bool) (name "clique valid") true
        (U.is_clique g r.Mwc.clique);
      Alcotest.(check (float 1e-9)) (name "weight consistent")
        (clique_weight g r.Mwc.clique)
        r.Mwc.weight;
      Alcotest.(check bool) (name "status matches budget") true
        (r.Mwc.status = Budget.status budget);
      Alcotest.(check bool) (name "monotone in budget") true
        (r.Mwc.weight >= !prev);
      prev := r.Mwc.weight)
    [ 1; 2; 5; 20; 100; 1_000; 50_000; 10_000_000 ];
  (* the largest allowance must prove optimality *)
  let r = Mwc.solve ~budget:(Budget.create ~steps:10_000_000 ()) g in
  Alcotest.(check bool) "full budget completes" true
    (r.Mwc.status = Budget.Complete)

let test_trivial_graphs () =
  let empty = U.create 0 [] in
  let r = Mwc.solve empty in
  Alcotest.(check (list int)) "empty graph" [] r.Mwc.clique;
  let singleton = U.create ~weights:[| 3.5 |] 1 [] in
  let r = Mwc.solve singleton in
  Alcotest.(check (list int)) "singleton clique" [ 0 ] r.Mwc.clique;
  Alcotest.(check (float 1e-9)) "singleton weight" 3.5 r.Mwc.weight;
  (* edgeless: the heaviest vertex alone *)
  let e4 = U.create ~weights:[| 1.; 4.; 2.; 3. |] 4 [] in
  let r = Mwc.solve e4 in
  Alcotest.(check (list int)) "edgeless picks heaviest" [ 1 ] r.Mwc.clique

let suite =
  [
    ( "mwc",
      [
        Alcotest.test_case "trivial graphs" `Quick test_trivial_graphs;
        Alcotest.test_case "agrees with legacy B&B on 200 instances" `Quick
          test_agrees_with_legacy;
        Alcotest.test_case "weighted optimum vs brute force" `Quick
          test_weighted_vs_brute_force;
        Alcotest.test_case "pool run identical to sequential" `Quick
          test_jobs_invariant;
        Alcotest.test_case "anytime validity across budget trips" `Quick
          test_anytime_trip_grid;
      ] );
  ]
