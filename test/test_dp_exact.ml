(* The tree-decomposition DP against ground truth: brute-force enumeration
   over the candidate rows gives the exact count of total valid mappings
   and the exact (injective) optima on ~200 seeded small instances; the DP
   must agree on every one. Plus anytime trip-grid coverage, pool
   determinism, Api-level agreement with the B&B, and hand-checked counting
   semantics. *)

open Helpers
module G = Phom_graph.Generators
module Budget = Phom_graph.Budget
module Pool = Phom_parallel.Pool
module Exact = Phom.Exact
module Dp = Phom.Dp
module Api = Phom.Api

let labels = [| "A"; "B"; "C" |]

(* deterministic instance [i]: a low-treewidth-leaning pattern of 2-6 nodes
   (tree / series-parallel / 2-tree / ER round-robin), a data graph of up
   to 8 nodes, a graded similarity matrix at xi = 0.5 *)
let instance_of_seed i =
  let rng = Random.State.make [| 0xd9a; 0x3c7; i |] in
  let lbl _ = labels.(Random.State.int rng (Array.length labels)) in
  let n1 = 2 + Random.State.int rng 5 in
  let g1 =
    match i mod 4 with
    | 0 -> G.random_tree ~rng ~n:n1 ~labels:lbl
    | 1 -> G.series_parallel ~rng ~n:n1 ~labels:lbl
    | 2 -> G.random_ktree ~rng ~n:n1 ~k:2 ~labels:lbl ()
    | _ ->
        let m = min (Random.State.int rng (2 * n1)) (n1 * (n1 - 1) / 2) in
        G.erdos_renyi ~rng ~n:n1 ~m ~labels:lbl
  in
  let n2 = n1 + Random.State.int rng (9 - n1) in
  let g2 =
    let m = min (Random.State.int rng (3 * n2)) (n2 * (n2 - 1) / 2) in
    G.erdos_renyi ~rng ~n:n2 ~m ~labels:lbl
  in
  let mat =
    Simmat.of_fun ~n1 ~n2 (fun _ _ ->
        match Random.State.int rng 10 with
        | 0 | 1 -> 0.5
        | 2 -> 0.65
        | 3 -> 0.8
        | 4 -> 1.0
        | _ -> Random.State.float rng 0.45)
  in
  let weights = Array.init n1 (fun _ -> 0.25 +. Random.State.float rng 0.75) in
  (Instance.make ~g1 ~g2 ~mat ~xi:0.5 (), weights)

(* ground truth by exhaustive enumeration over candidate rows with an
   explicit "unmapped" branch: the count of total valid mappings and the
   four optima (cardinality / similarity, free / injective) *)
type brute = {
  b_count : int;
  b_card : int;
  b_sim : float;
  b_card_inj : int;
  b_sim_inj : float;
}

let brute_force ~weights (t : Instance.t) =
  let n1 = D.n t.g1 in
  let cands = Instance.candidates t in
  let assigned = Array.make n1 (-1) in
  let used = Hashtbl.create 8 in
  let count = ref 0 in
  let card = ref 0 and sim = ref 0. in
  let card_inj = ref 0 and sim_inj = ref 0. in
  let ok v u =
    Array.for_all
      (fun v' -> v' = v || assigned.(v') < 0 || BM.get t.tc2 u assigned.(v'))
      (D.succ t.g1 v)
    && Array.for_all
         (fun v' -> v' = v || assigned.(v') < 0 || BM.get t.tc2 assigned.(v') u)
         (D.pred t.g1 v)
    && ((not (D.has_edge t.g1 v v)) || BM.get t.tc2 u u)
  in
  let rec go v mapped value inj =
    if v = n1 then begin
      if mapped = n1 then incr count;
      if mapped > !card then card := mapped;
      if value > !sim then sim := value;
      if inj then begin
        if mapped > !card_inj then card_inj := mapped;
        if value > !sim_inj then sim_inj := value
      end
    end
    else begin
      go (v + 1) mapped value inj;
      Array.iter
        (fun u ->
          if ok v u then begin
            assigned.(v) <- u;
            let dup = Hashtbl.mem used u in
            Hashtbl.add used u ();
            go (v + 1) (mapped + 1)
              (value +. (weights.(v) *. Simmat.get t.mat v u))
              (inj && not dup);
            Hashtbl.remove used u;
            assigned.(v) <- (-1)
          end)
        cands.(v)
    end
  in
  go 0 0 0. true;
  {
    b_count = !count;
    b_card = !card;
    b_sim = !sim;
    b_card_inj = !card_inj;
    b_sim_inj = !sim_inj;
  }

let check_complete name (o : Exact.outcome) =
  Alcotest.(check bool) (name ^ " complete") true (o.Exact.status = Budget.Complete)

(* unnormalized similarity value, matching the brute-force accumulator *)
let raw_sim ~weights ~mat m =
  List.fold_left (fun acc (v, u) -> acc +. (weights.(v) *. Simmat.get mat v u)) 0. m

let check_instance i =
  let t, weights = instance_of_seed i in
  let b = brute_force ~weights t in
  let name s = Printf.sprintf "seed %d: %s" i s in
  (* counting *)
  let c = Dp.count t in
  Alcotest.(check int) (name "count") b.b_count c.Dp.count;
  Alcotest.(check bool) (name "count exact") true c.Dp.exact;
  Alcotest.(check bool)
    (name "count complete")
    true
    (c.Dp.status = Budget.Complete);
  (* free optima *)
  let oc = Dp.solve ~objective:Exact.Cardinality t in
  check_complete (name "card") oc;
  Alcotest.(check bool)
    (name "card mapping valid")
    true
    (Instance.is_valid t oc.Exact.mapping);
  Alcotest.(check int) (name "card optimum") b.b_card (Mapping.size oc.Exact.mapping);
  let os = Dp.solve ~objective:(Exact.Similarity weights) t in
  check_complete (name "sim") os;
  Alcotest.(check bool)
    (name "sim mapping valid")
    true
    (Instance.is_valid t os.Exact.mapping);
  Alcotest.(check (float 1e-6))
    (name "sim optimum")
    b.b_sim
    (raw_sim ~weights ~mat:t.Instance.mat os.Exact.mapping);
  (* injective optima: DP relaxation + B&B fallback *)
  let oci = Dp.solve ~injective:true ~objective:Exact.Cardinality t in
  check_complete (name "card inj") oci;
  Alcotest.(check bool)
    (name "card inj valid")
    true
    (Instance.is_valid ~injective:true t oci.Exact.mapping);
  Alcotest.(check int)
    (name "card inj optimum")
    b.b_card_inj
    (Mapping.size oci.Exact.mapping);
  let osi = Dp.solve ~injective:true ~objective:(Exact.Similarity weights) t in
  check_complete (name "sim inj") osi;
  Alcotest.(check bool)
    (name "sim inj valid")
    true
    (Instance.is_valid ~injective:true t osi.Exact.mapping);
  Alcotest.(check (float 1e-6))
    (name "sim inj optimum")
    b.b_sim_inj
    (raw_sim ~weights ~mat:t.Instance.mat osi.Exact.mapping)

let chunk lo hi () =
  for i = lo to hi - 1 do
    check_instance i
  done

let test_trip_grid () =
  let t, _ = instance_of_seed 1 in
  let full = Budget.create ~steps:1_000_000 () in
  let o = Dp.solve ~budget:full ~objective:Exact.Cardinality t in
  check_complete "full run" o;
  let solve_rows = Budget.steps_used full in
  Alcotest.(check bool) "dp did work" true (solve_rows > 0);
  let grid total f =
    let step = max 1 (total / 13) in
    let k = ref 0 in
    while !k < total do
      f !k;
      k := !k + step
    done
  in
  grid solve_rows (fun k ->
      let b = Budget.trip_after k in
      let o = Dp.solve ~budget:b ~objective:Exact.Cardinality t in
      (match o.Exact.status with
      | Budget.Exhausted _ -> ()
      | Budget.Complete -> Alcotest.failf "trip %d: solve completed" k);
      Alcotest.(check bool)
        (Printf.sprintf "trip %d mapping valid" k)
        true
        (Instance.is_valid t o.Exact.mapping));
  let cfull = Budget.create ~steps:1_000_000 () in
  let c = Dp.count ~budget:cfull t in
  Alcotest.(check bool) "count complete" true (c.Dp.status = Budget.Complete);
  let count_rows = Budget.steps_used cfull in
  grid count_rows (fun k ->
      let c = Dp.count ~budget:(Budget.trip_after k) t in
      (match c.Dp.status with
      | Budget.Exhausted _ -> ()
      | Budget.Complete -> Alcotest.failf "trip %d: count completed" k);
      Alcotest.(check bool)
        (Printf.sprintf "trip %d count withdrawn" k)
        true
        (c.Dp.count = 0 && not c.Dp.exact))

let test_pool_determinism () =
  Pool.with_pool ~domains:3 (fun pool ->
      for i = 0 to 9 do
        let t, weights = instance_of_seed i in
        let seq = Dp.solve ~objective:(Exact.Similarity weights) t in
        let par = Dp.solve ~pool ~objective:(Exact.Similarity weights) t in
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "seed %d pooled mapping identical" i)
          seq.Exact.mapping par.Exact.mapping;
        let cs = Dp.count t and cp = Dp.count ~pool t in
        Alcotest.(check int)
          (Printf.sprintf "seed %d pooled count identical" i)
          cs.Dp.count cp.Dp.count
      done)

let problems = [ Api.CPH; Api.CPH11; Api.SPH; Api.SPH11 ]

let test_api_agreement () =
  for i = 0 to 19 do
    let t, weights = instance_of_seed i in
    List.iter
      (fun problem ->
        let name s =
          Printf.sprintf "seed %d %s: %s" i (Api.problem_name problem) s
        in
        let dp = Api.solve_within ~algorithm:Api.Dp_td ~weights problem t in
        (* max_width -1 keeps the legacy B&B honestly un-routed *)
        let bb =
          Api.solve_within ~algorithm:Api.Exact_bb ~max_width:(-1) ~weights
            problem t
        in
        (* default max_width: these narrow patterns ride the routed path *)
        let routed = Api.solve_within ~algorithm:Api.Exact_bb ~weights problem t in
        Alcotest.(check bool)
          (name "dp valid")
          true
          (Instance.is_valid ~injective:(Api.injective problem) t dp.Api.mapping);
        Alcotest.(check (float 1e-6)) (name "dp = b&b") bb.Api.quality dp.Api.quality;
        Alcotest.(check (float 1e-6))
          (name "routed = b&b")
          bb.Api.quality routed.Api.quality)
      problems
  done

let test_count_vs_decide () =
  for i = 0 to 49 do
    let t, _ = instance_of_seed i in
    let c = Api.count t in
    Alcotest.(check (option bool))
      (Printf.sprintf "seed %d count>0 iff phom" i)
      (Api.decide_phom t)
      (Some (c.Dp.count > 0))
  done

let test_hand_counts () =
  (* the empty pattern has exactly the empty mapping *)
  let t = eq_instance (D.make ~labels:[||] ~edges:[]) (graph [ "a" ] []) in
  Alcotest.(check int) "empty pattern" 1 (Dp.count t).Dp.count;
  (* one node, two matching candidates *)
  let t = eq_instance (graph [ "a" ] []) (graph [ "a"; "a"; "b" ] []) in
  Alcotest.(check int) "two candidates" 2 (Dp.count t).Dp.count;
  (* a -> b with two valid sources for a *)
  let t =
    eq_instance
      (graph [ "a"; "b" ] [ (0, 1) ])
      (graph [ "a"; "a"; "b" ] [ (0, 2); (1, 2) ])
  in
  Alcotest.(check int) "two paths" 2 (Dp.count t).Dp.count;
  (* unmatchable node kills every total mapping *)
  let t = eq_instance (graph [ "z" ] []) (graph [ "a" ] []) in
  Alcotest.(check int) "empty candidate row" 0 (Dp.count t).Dp.count;
  (* self-loops need a tc2 self-witness *)
  let looped = graph [ "a" ] [ (0, 0) ] in
  Alcotest.(check int)
    "self-loop unmatched"
    0
    (Dp.count (eq_instance looped (graph [ "a" ] []))).Dp.count;
  Alcotest.(check int)
    "self-loop matched"
    1
    (Dp.count (eq_instance looped looped)).Dp.count

let test_saturation () =
  (* 25 isolated pattern nodes with 40 candidates each: 40^25 total
     mappings overflow 63-bit ints, so the count clamps and drops [exact] *)
  let g1 = D.make ~labels:(Array.make 25 "a") ~edges:[] in
  let g2 = D.make ~labels:(Array.make 40 "a") ~edges:[] in
  let c = Dp.count (eq_instance g1 g2) in
  Alcotest.(check int) "saturates" max_int c.Dp.count;
  Alcotest.(check bool) "inexact" false c.Dp.exact;
  Alcotest.(check bool) "still complete" true (c.Dp.status = Budget.Complete)

let suite =
  let chunks = 5 and per = 40 in
  [
    ( "dp exact",
      List.init chunks (fun c ->
          let lo = c * per and hi = (c + 1) * per in
          Alcotest.test_case
            (Printf.sprintf "brute-force cross-check, seeds %d-%d" lo (hi - 1))
            `Slow (chunk lo hi))
      @ [
          Alcotest.test_case "anytime trip grid" `Quick test_trip_grid;
          Alcotest.test_case "pool determinism" `Quick test_pool_determinism;
          Alcotest.test_case "api agreement" `Slow test_api_agreement;
          Alcotest.test_case "count iff decide" `Slow test_count_vs_decide;
          Alcotest.test_case "hand-checked counts" `Quick test_hand_counts;
          Alcotest.test_case "saturating count" `Quick test_saturation;
        ] );
  ]
