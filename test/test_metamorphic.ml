(* Metamorphic suite: transformations of a matching instance with a known
   effect on the answer, checked over seeded random instances.

   - renaming the data graph (permuting node ids, carrying labels and the
     similarity columns along) leaves the exact optimum unchanged for all
     four problems;
   - permuting the order edges are fed to [Digraph.make] changes nothing
     at all — the heuristic returns the identical mapping, because graphs
     normalize their adjacency;
   - appending isolated, similarity-0 nodes to the data graph changes
     neither the heuristic nor the exact answer;
   - adding edges to the data graph can only help: the exact optimum must
     not decrease.

   All randomness is seeded — no [Random.self_init]. *)

module D = Phom_graph.Digraph
module Simmat = Phom_sim.Simmat
module Instance = Phom.Instance
module Api = Phom.Api

let seeds_per_property = 40
let eps = 1e-9
let labels = [| "A"; "B"; "C"; "D" |]
let problems = [ Api.CPH; Api.CPH11; Api.SPH; Api.SPH11 ]

(* small enough that the exact solver is instant on every seed *)
let instance_of_seed salt i =
  let rng = Random.State.make [| 0x6d3; salt; i |] in
  let n1 = 2 + Random.State.int rng 5 in
  let n2 = n1 + Random.State.int rng (11 - n1) in
  let random_graph n edge_prob =
    let lbls =
      Array.init n (fun _ -> labels.(Random.State.int rng (Array.length labels)))
    in
    let edges = ref [] in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if Random.State.float rng 1.0 < edge_prob then edges := (u, v) :: !edges
      done
    done;
    D.make ~labels:lbls ~edges:!edges
  in
  let g1 = random_graph n1 0.25 in
  let g2 = random_graph n2 0.3 in
  let mat =
    Simmat.of_fun ~n1 ~n2 (fun _ _ ->
        match Random.State.int rng 10 with
        | 0 | 1 -> 0.55
        | 2 -> 0.75
        | 3 -> 1.0
        | _ -> Random.State.float rng 0.45)
  in
  (rng, g1, g2, mat)

let exact problem t = Api.solve_within ~algorithm:Api.Exact_bb problem t
let heur problem t = Api.solve_within ~algorithm:Api.Direct problem t

let check_complete name (r : Api.result) =
  Alcotest.(check bool)
    (name ^ ": exact completes")
    true
    (r.Api.status = Phom_graph.Budget.Complete)

let check_quality_eq name a b =
  if Float.abs (a -. b) > eps then
    Alcotest.failf "%s: quality changed %.9f -> %.9f" name a b

(* --- renaming invariance ---------------------------------------------- *)

(* a uniform random permutation of 0..n-1 *)
let permutation rng n =
  let p = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- t
  done;
  p

let test_renaming i =
  let rng, g1, g2, mat = instance_of_seed 1 i in
  let n1 = D.n g1 and n2 = D.n g2 in
  let perm = permutation rng n2 in
  let inv = Array.make n2 0 in
  Array.iteri (fun u u' -> inv.(u') <- u) perm;
  let g2' =
    D.make
      ~labels:(Array.init n2 (fun u' -> D.label g2 inv.(u')))
      ~edges:(List.map (fun (u, v) -> (perm.(u), perm.(v))) (D.edges g2))
  in
  let mat' = Simmat.of_fun ~n1 ~n2 (fun v u' -> Simmat.get mat v inv.(u')) in
  let t = Instance.make ~g1 ~g2 ~mat ~xi:0.5 () in
  let t' = Instance.make ~g1 ~g2:g2' ~mat:mat' ~xi:0.5 () in
  List.iter
    (fun p ->
      let name = Printf.sprintf "seed %d %s renaming" i (Api.problem_name p) in
      let r = exact p t and r' = exact p t' in
      check_complete name r;
      check_complete name r';
      check_quality_eq name r.Api.quality r'.Api.quality)
    problems

(* --- adjacency-order invariance --------------------------------------- *)

let shuffle rng l =
  let a = Array.of_list l in
  let p = permutation rng (Array.length a) in
  Array.to_list (Array.map (fun i -> a.(i)) p)

let test_edge_order i =
  let rng, g1, g2, mat = instance_of_seed 2 i in
  let reorder g = D.make ~labels:(D.labels g) ~edges:(shuffle rng (D.edges g)) in
  let g1' = reorder g1 and g2' = reorder g2 in
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: reordered graphs are equal" i)
    true
    (D.equal g1 g1' && D.equal g2 g2');
  let t = Instance.make ~g1 ~g2 ~mat ~xi:0.5 () in
  let t' = Instance.make ~g1:g1' ~g2:g2' ~mat ~xi:0.5 () in
  List.iter
    (fun p ->
      let name = Printf.sprintf "seed %d %s edge order" i (Api.problem_name p) in
      let r = heur p t and r' = heur p t' in
      Alcotest.(check (list (pair int int)))
        (name ^ ": identical mapping") r.Api.mapping r'.Api.mapping;
      check_quality_eq name r.Api.quality r'.Api.quality)
    problems

(* --- isolated-node invariance ------------------------------------------ *)

let test_isolated_nodes i =
  let rng, g1, g2, mat = instance_of_seed 3 i in
  let n1 = D.n g1 and n2 = D.n g2 in
  let extra = 1 + Random.State.int rng 3 in
  let g2' =
    D.make
      ~labels:
        (Array.init (n2 + extra) (fun u ->
             if u < n2 then D.label g2 u else "ISOLATED"))
      ~edges:(D.edges g2)
  in
  (* the new nodes clear no threshold: similarity 0 everywhere *)
  let mat' =
    Simmat.of_fun ~n1 ~n2:(n2 + extra) (fun v u ->
        if u < n2 then Simmat.get mat v u else 0.0)
  in
  let t = Instance.make ~g1 ~g2 ~mat ~xi:0.5 () in
  let t' = Instance.make ~g1 ~g2:g2' ~mat:mat' ~xi:0.5 () in
  List.iter
    (fun p ->
      let name =
        Printf.sprintf "seed %d %s isolated nodes" i (Api.problem_name p)
      in
      check_quality_eq (name ^ " (heuristic)") (heur p t).Api.quality
        (heur p t').Api.quality;
      let r = exact p t and r' = exact p t' in
      check_complete name r;
      check_complete name r';
      check_quality_eq (name ^ " (exact)") r.Api.quality r'.Api.quality)
    problems

(* --- edge-addition monotonicity ---------------------------------------- *)

let test_added_edges i =
  let rng, g1, g2, mat = instance_of_seed 4 i in
  let n2 = D.n g2 in
  let extra =
    List.init 3 (fun _ ->
        (Random.State.int rng n2, Random.State.int rng n2))
  in
  let g2' = D.add_edges g2 extra in
  let t = Instance.make ~g1 ~g2 ~mat ~xi:0.5 () in
  let t' = Instance.make ~g1 ~g2:g2' ~mat ~xi:0.5 () in
  List.iter
    (fun p ->
      let name = Printf.sprintf "seed %d %s" i (Api.problem_name p) in
      let r = exact p t and r' = exact p t' in
      check_complete name r;
      check_complete name r';
      if r'.Api.quality < r.Api.quality -. eps then
        Alcotest.failf
          "%s: adding G2 edges decreased the optimum %.9f -> %.9f" name
          r.Api.quality r'.Api.quality)
    problems

let over_seeds f () =
  for i = 0 to seeds_per_property - 1 do
    f i
  done

let suite =
  [
    ( "metamorphic",
      [
        Alcotest.test_case "G2 renaming preserves the exact optimum" `Slow
          (over_seeds test_renaming);
        Alcotest.test_case "edge input order changes nothing" `Quick
          (over_seeds test_edge_order);
        Alcotest.test_case "isolated similarity-0 G2 nodes change nothing"
          `Slow (over_seeds test_isolated_nodes);
        Alcotest.test_case "adding G2 edges never hurts the optimum" `Slow
          (over_seeds test_added_edges);
      ] );
  ]
