open Helpers
module Product = Phom_wis.Product
module U = Phom_wis.Ungraph

let build ?injective (t : Instance.t) =
  Product.build ?injective ~g1:t.g1 ~tc2:t.tc2 ~mat:t.mat ~xi:t.xi ()

let test_pairs_respect_threshold () =
  let g1 = graph [ "a"; "b" ] [] and g2 = graph [ "a"; "c" ] [] in
  let t = eq_instance g1 g2 in
  let p = build t in
  Alcotest.(check int) "only (a,a)" 1 (Array.length p.Product.pairs);
  Alcotest.(check (list (pair int int))) "the pair" [ (0, 0) ]
    (Array.to_list p.Product.pairs)

let test_self_loop_filter () =
  let g1 = graph [ "a" ] [ (0, 0) ] and g2 = graph [ "a" ] [] in
  let p = build (eq_instance g1 g2) in
  Alcotest.(check int) "loop node needs cyclic target" 0
    (Array.length p.Product.pairs)

let test_injective_edges () =
  (* two pattern nodes, one shared target: compatible only when not 1-1 *)
  let g1 = graph [ "a"; "a" ] [] and g2 = graph [ "a" ] [] in
  let t = eq_instance g1 g2 in
  let plain = build t in
  let inj = build ~injective:true t in
  Alcotest.(check int) "plain: compatible" 1 (U.nb_edges plain.Product.graph);
  Alcotest.(check int) "1-1: conflicting" 0 (U.nb_edges inj.Product.graph)

let test_weights () =
  let g1 = graph [ "a" ] [] and g2 = graph [ "a" ] [] in
  let t = eq_instance g1 g2 in
  let p =
    Product.build ~weights:[| 3. |] ~g1:t.g1 ~tc2:t.tc2 ~mat:t.mat ~xi:t.xi ()
  in
  Alcotest.(check (float 1e-9)) "w(v)·mat(v,u)" 3.0 (U.weight p.Product.graph 0)

(* Claim 2 of the paper: cliques of the product graph are exactly the p-hom
   mappings of induced subgraphs *)
let prop_cliques_are_mappings =
  qtest ~count:120 "product: cliques ↔ valid mappings (Claim 2)"
    (instance_gen ~max_n1:5 ~max_n2:5 ()) print_instance (fun t ->
      let p = build t in
      let np = Array.length p.Product.pairs in
      if np = 0 then true
      else begin
        (* enumerate all subsets of product nodes up to size limits *)
        let ok = ref true in
        let limit = min np 10 in
        for mask = 0 to (1 lsl limit) - 1 do
          let nodes = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init limit Fun.id) in
          if List.length nodes <= 4 then begin
            let mapping_pairs = List.map (fun i -> p.Product.pairs.(i)) nodes in
            let is_clique = U.is_clique p.Product.graph nodes in
            let is_mapping =
              Mapping.is_function mapping_pairs
              && Instance.is_valid t (List.sort compare mapping_pairs)
            in
            if is_clique <> is_mapping then ok := false
          end
        done;
        !ok
      end)

let prop_injective_cliques_are_1_1 =
  qtest ~count:100 "product: 1-1 cliques are injective mappings"
    (instance_gen ~max_n1:4 ~max_n2:5 ()) print_instance (fun t ->
      let p = build ~injective:true t in
      let clique = Phom_wis.Wis.max_clique p.Product.graph in
      let m = Product.mapping_of_clique p clique in
      Instance.is_valid ~injective:true t m)

let suite =
  [
    ( "product",
      [
        Alcotest.test_case "pairs respect ξ" `Quick test_pairs_respect_threshold;
        Alcotest.test_case "self-loop filter" `Quick test_self_loop_filter;
        Alcotest.test_case "1-1 adjacency" `Quick test_injective_edges;
        Alcotest.test_case "node weights" `Quick test_weights;
        prop_cliques_are_mappings;
        prop_injective_cliques_are_1_1;
      ] );
  ]
