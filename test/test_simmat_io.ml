open Helpers

let test_roundtrip () =
  let m = Simmat.of_fun ~n1:3 ~n2:2 (fun v u -> float_of_int ((v + u) mod 2) /. 2.) in
  match Simmat.of_string (Simmat.to_string m) with
  | Error e -> Alcotest.fail e
  | Ok m' ->
      for v = 0 to 2 do
        for u = 0 to 1 do
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "(%d,%d)" v u)
            (Simmat.get m v u) (Simmat.get m' v u)
        done
      done

let test_parse_errors () =
  let check_err name input =
    match Simmat.of_string input with
    | Ok _ -> Alcotest.failf "%s: expected error" name
    | Error _ -> ()
  in
  check_err "no header" "1 1\n0.5\n";
  check_err "bad dims" "phs 1\nx y\n";
  check_err "short row" "phs 1\n1 3\n0.5 0.5\n";
  check_err "out of range" "phs 1\n1 1\n1.5\n";
  check_err "bad float" "phs 1\n1 1\nabc\n";
  check_err "missing rows" "phs 1\n2 1\n0.5\n"

let test_empty_matrix () =
  let m = Simmat.create ~n1:0 ~n2:0 in
  match Simmat.of_string (Simmat.to_string m) with
  | Error e -> Alcotest.fail e
  | Ok m' ->
      Alcotest.(check int) "n1" 0 (Simmat.n1 m');
      Alcotest.(check int) "n2" 0 (Simmat.n2 m')

let test_file_roundtrip () =
  let m = Simmat.of_fun ~n1:2 ~n2:2 (fun v u -> if v = u then 1.0 else 0.25) in
  let path = Filename.temp_file "phom_simmat" ".phs" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Simmat.save path m;
      match Simmat.load path with
      | Error e -> Alcotest.fail e
      | Ok m' -> Alcotest.(check (float 1e-9)) "diag" 1.0 (Simmat.get m' 1 1))

let prop_roundtrip =
  let gen : Simmat.t QCheck.Gen.t =
   fun st ->
    let n1 = Random.State.int st 5 and n2 = Random.State.int st 5 in
    Simmat.of_fun ~n1 ~n2 (fun _ _ -> Random.State.float st 1.0)
  in
  qtest ~count:60 "simmat io: roundtrip within 1e-6" gen
    (fun m -> Simmat.to_string m)
    (fun m ->
      match Simmat.of_string (Simmat.to_string m) with
      | Error _ -> false
      | Ok m' ->
          let ok = ref true in
          for v = 0 to Simmat.n1 m - 1 do
            for u = 0 to Simmat.n2 m - 1 do
              if abs_float (Simmat.get m v u -. Simmat.get m' v u) > 1e-6 then
                ok := false
            done
          done;
          !ok)

let suite =
  [
    ( "simmat_io",
      [
        Alcotest.test_case "string roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "empty matrix" `Quick test_empty_matrix;
        Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
        prop_roundtrip;
      ] );
  ]
