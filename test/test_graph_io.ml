open Helpers
module IO = Phom_graph.Graph_io

let test_roundtrip () =
  let g = graph [ "hello world"; "b"; "c" ] [ (0, 1); (1, 2); (2, 0) ] in
  match IO.of_string (IO.to_string g) with
  | Error e -> Alcotest.fail e
  | Ok g' -> Alcotest.(check bool) "roundtrip" true (D.equal g g')

let test_parse_errors () =
  let check_err name input =
    match IO.of_string input with
    | Ok _ -> Alcotest.failf "%s: expected error" name
    | Error _ -> ()
  in
  check_err "no header" "node 0 a\n";
  check_err "bad edge" "phg 1\nedge 0\n";
  check_err "bad id" "phg 1\nnode x lbl\n";
  check_err "sparse ids" "phg 1\nnode 0 a\nnode 5 b\n";
  check_err "edge out of range" "phg 1\nnode 0 a\nedge 0 3\n"

let test_comments_and_blanks () =
  let input = "phg 1\n# comment\n\nnode 0 a\nnode 1 b\nedge 0 1\n" in
  match IO.of_string input with
  | Error e -> Alcotest.fail e
  | Ok g ->
      Alcotest.(check int) "nodes" 2 (D.n g);
      Alcotest.(check int) "edges" 1 (D.nb_edges g)

let test_file_roundtrip () =
  let g = graph [ "a"; "b" ] [ (0, 1) ] in
  let path = Filename.temp_file "phom_test" ".phg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      IO.save path g;
      match IO.load path with
      | Error e -> Alcotest.fail e
      | Ok g' -> Alcotest.(check bool) "file roundtrip" true (D.equal g g'))

let test_load_missing () =
  match IO.load "/nonexistent/definitely/missing.phg" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ()

(* load errors uniformly report "<file>: line <n>: <what>" — the file
   exactly once, plus the offending line for parse errors *)
let test_load_error_names_file_and_line () =
  let check_load name content ~line =
    let path = Filename.temp_file "phom_ioerr" ".phg" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out path in
        output_string oc content;
        close_out oc;
        match IO.load path with
        | Ok _ -> Alcotest.failf "%s: expected error" name
        | Error msg ->
            Alcotest.(check bool)
              (name ^ ": names the file once")
              true
              (count_substring ~needle:(Filename.basename path) msg = 1);
            Alcotest.(check bool)
              (name ^ ": names line " ^ string_of_int line)
              true
              (contains_substring
                 ~needle:(Printf.sprintf "line %d:" line)
                 msg))
  in
  check_load "bad header" "not a graph\n" ~line:1;
  check_load "duplicate node" "phg 1\nnode 0 a\nnode 1 b\nnode 0 c\n" ~line:4;
  check_load "bad edge" "phg 1\nnode 0 a\nedge 0\n" ~line:3;
  check_load "unknown keyword" "phg 1\nnode 0 a\nfrob 1 2\n" ~line:3

let test_dot () =
  let g = graph [ "a\"quote" ] [ (0, 0) ] in
  let dot = IO.to_dot ~name:"T" g in
  Alcotest.(check bool) "digraph header" true
    (String.length dot > 10 && String.sub dot 0 9 = "digraph T");
  Alcotest.(check bool) "escaped quote" true
    (contains_substring ~needle:"a\\\"quote" dot)

let test_graphml () =
  let g = graph [ "a<b"; "c&d" ] [ (0, 1) ] in
  let xml = IO.to_graphml g in
  Alcotest.(check bool) "escaped lt" true (contains_substring ~needle:"a&lt;b" xml);
  Alcotest.(check bool) "escaped amp" true (contains_substring ~needle:"c&amp;d" xml);
  Alcotest.(check bool) "edge present" true
    (contains_substring ~needle:"<edge source=\"n0\" target=\"n1\"/>" xml);
  Alcotest.(check bool) "well-formed-ish" true
    (contains_substring ~needle:"</graphml>" xml)

let test_mapping_dot () =
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "x"; "b" ] [ (0, 1); (1, 2) ] in
  let dot = IO.mapping_to_dot ~g1 ~g2 [ (0, 0); (1, 2) ] in
  Alcotest.(check bool) "pattern cluster" true
    (contains_substring ~needle:"cluster_pattern" dot);
  Alcotest.(check bool) "cross edge" true
    (contains_substring ~needle:"p1 -> d2 [style=dashed" dot);
  Alcotest.(check bool) "covered highlight" true
    (contains_substring ~needle:"fillcolor=lightblue" dot)

let prop_roundtrip =
  qtest "graph_io: to_string/of_string roundtrip" (digraph_gen ()) print_digraph
    (fun g ->
      match IO.of_string (IO.to_string g) with
      | Ok g' -> D.equal g g'
      | Error _ -> false)

let suite =
  [
    ( "graph_io",
      [
        Alcotest.test_case "string roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "comments and blank lines" `Quick test_comments_and_blanks;
        Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
        Alcotest.test_case "missing file" `Quick test_load_missing;
        Alcotest.test_case "load errors name file and line" `Quick
          test_load_error_names_file_and_line;
        Alcotest.test_case "dot export" `Quick test_dot;
        Alcotest.test_case "graphml export" `Quick test_graphml;
        Alcotest.test_case "mapping dot" `Quick test_mapping_dot;
        prop_roundtrip;
      ] );
  ]
