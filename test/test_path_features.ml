open Helpers
module PF = Phom_baselines.Path_features

let test_identical () =
  let g = graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2) ] in
  Alcotest.(check (float 1e-9)) "self similarity" 1.0 (PF.similarity g g)

let test_disjoint_labels () =
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let g2 = graph [ "x"; "y" ] [ (0, 1) ] in
  Alcotest.(check (float 1e-9)) "no common features" 0.0 (PF.similarity g1 g2)

let test_blind_to_global_structure () =
  (* the paper's criticism (citing [25,30]): same local paths, different
     wiring. A 6-cycle of ab and three disjoint ab-cycles have identical
     length-≤2 walk label sets. *)
  let six_cycle =
    graph [ "a"; "b"; "a"; "b"; "a"; "b" ]
      [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0) ]
  in
  let three_two_cycles =
    graph [ "a"; "b"; "a"; "b"; "a"; "b" ]
      [ (0, 1); (1, 0); (2, 3); (3, 2); (4, 5); (5, 4) ]
  in
  Alcotest.(check (float 1e-9)) "feature-blind" 1.0
    (PF.similarity ~max_len:2 six_cycle three_two_cycles);
  (* while 1-1 p-hom distinguishes them at ξ=1: the 6-cycle maps into the
     2-cycles only via paths, and injectivity is satisfiable, so check the
     reverse direction: a 2-cycle pattern maps into the 6-cycle easily *)
  Alcotest.(check bool) "they are not isomorphic" true
    (Phom_baselines.Ullmann.exists six_cycle three_two_cycles <> Some true
    || Phom_baselines.Ullmann.exists three_two_cycles six_cycle <> Some true)

let test_max_len () =
  let g1 = graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2) ] in
  let g2 = graph [ "a"; "b"; "c" ] [ (0, 1) ] in
  (* at max_len 1 both have features {a,b,c}; g1 has extra longer paths *)
  Alcotest.(check (float 1e-9)) "unigrams equal" 1.0
    (PF.similarity ~max_len:1 g1 g2);
  Alcotest.(check bool) "longer paths differ" true
    (PF.similarity ~max_len:3 g1 g2 < 1.0)

let test_matches_threshold () =
  let g = graph [ "a"; "b" ] [ (0, 1) ] in
  Alcotest.(check bool) "self matches" true (PF.matches g g);
  Alcotest.(check bool) "custom threshold" true (PF.matches ~threshold:1.0 g g)

let test_cap () =
  (* tiny cap still terminates and returns something sane *)
  let rng = Random.State.make [| 4 |] in
  let g =
    Phom_graph.Generators.erdos_renyi ~rng ~n:50 ~m:400 ~labels:(fun i ->
        "l" ^ string_of_int (i mod 5))
  in
  let f = PF.features ~max_len:4 ~cap:100 g in
  Alcotest.(check bool) "bounded" true (Array.length f <= 100)

let prop_bounds_and_symmetry =
  qtest ~count:60 "path features: similarity in [0,1], symmetric"
    (QCheck.Gen.pair (digraph_gen ~max_n:6 ()) (digraph_gen ~max_n:6 ()))
    (fun (a, b) -> print_digraph a ^ " / " ^ print_digraph b)
    (fun (g1, g2) ->
      let s = PF.similarity g1 g2 in
      s >= 0. && s <= 1. && abs_float (s -. PF.similarity g2 g1) < 1e-12)

let suite =
  [
    ( "path_features",
      [
        Alcotest.test_case "identical graphs" `Quick test_identical;
        Alcotest.test_case "disjoint labels" `Quick test_disjoint_labels;
        Alcotest.test_case "blind to global structure" `Quick
          test_blind_to_global_structure;
        Alcotest.test_case "max_len" `Quick test_max_len;
        Alcotest.test_case "match threshold" `Quick test_matches_threshold;
        Alcotest.test_case "feature cap" `Quick test_cap;
        prop_bounds_and_symmetry;
      ] );
  ]
