open Helpers
module Opts = Phom.Opts
module CMC = Phom.Comp_max_card

let test_matchable_nodes () =
  let g1 = graph [ "a"; "zz"; "b" ] [] and g2 = graph [ "a"; "b" ] [] in
  let t = eq_instance g1 g2 in
  Alcotest.(check (list int)) "zz dropped" [ 0; 2 ] (Opts.matchable_nodes t)

(* the Fig. 10(a) scenario: removing an unmatchable node disconnects G1 *)
let test_partitioned_fig10 () =
  let g1 =
    graph [ "A"; "B"; "C"; "D"; "E"; "F"; "G" ]
      [ (0, 1); (0, 2); (2, 3); (2, 4); (4, 5); (4, 6) ]
  in
  (* G2 has everything except C, so C's removal splits G1 into {A,B},
     {D}, {E,F,G} *)
  let g2 =
    graph [ "A"; "B"; "D"; "E"; "F"; "G" ]
      [ (0, 1); (2, 3); (3, 4); (3, 5); (4, 5) ]
  in
  let t = eq_instance g1 g2 in
  let m = Opts.partitioned (fun ?budget:_ sub _ -> CMC.run sub) t in
  check_valid t m;
  (* A,B map directly; D is a singleton; E,F,G need E→F and E→G paths *)
  Alcotest.(check int) "six of seven nodes" 6 (Mapping.size m)

let test_partitioned_singleton_shortcut () =
  let g1 = graph [ "a" ] [] and g2 = graph [ "a"; "a" ] [] in
  let t = eq_instance g1 g2 in
  let m = Opts.partitioned (fun ?budget:_ sub _ -> CMC.run sub) t in
  Alcotest.(check int) "mapped" 1 (Mapping.size m)

let test_compress_basic () =
  (* G2 is a 3-cycle: compresses to one self-loop node of capacity 3 *)
  let g1 = graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2); (2, 0) ] in
  let g2 = graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2); (2, 0) ] in
  let t = eq_instance g1 g2 in
  let c = Opts.compress t in
  Alcotest.(check int) "one compressed node" 1 (D.n c.Opts.sub.Instance.g2);
  Alcotest.(check int) "capacity 3" 3
    (Phom.Matching_list.Int_map.find 0 c.Opts.capacities);
  let m_compressed = CMC.run ~capacities:c.Opts.capacities ~injective:true c.Opts.sub in
  let m = Opts.decompress ~injective:true c m_compressed in
  check_valid ~injective:true t m;
  Alcotest.(check int) "all three mapped" 3 (Mapping.size m)

let test_capacity_binding () =
  (* three pattern nodes compete 1-1 for a 2-cycle clique (capacity 2):
     only two can be placed, and decompression must pick distinct members *)
  let g1 = graph [ "a"; "a"; "a" ] [] in
  let g2 = graph [ "a"; "a" ] [ (0, 1); (1, 0) ] in
  let t = eq_instance g1 g2 in
  let c = Opts.compress t in
  Alcotest.(check int) "one clique" 1 (D.n c.Opts.sub.Instance.g2);
  let m =
    Opts.decompress ~injective:true c
      (CMC.run ~injective:true ~capacities:c.Opts.capacities c.Opts.sub)
  in
  check_valid ~injective:true t m;
  Alcotest.(check int) "capacity respected" 2 (Mapping.size m)

let test_decompress_drops_ineligible () =
  (* the clique has 2 members but only one clears ξ for the pattern node:
     plain decompression must choose the eligible member *)
  let g1 = graph [ "a" ] [] in
  let g2 = graph [ "a"; "b" ] [ (0, 1); (1, 0) ] in
  let mat = Simmat.of_label_equality g1 g2 in
  let t = Instance.make ~g1 ~g2 ~mat ~xi:0.5 () in
  let c = Opts.compress t in
  let m = Opts.decompress c (Phom.Comp_max_card.run c.Opts.sub) in
  check_mapping "eligible member chosen" [ (0, 0) ] m

let prop_partitioned_valid =
  qtest ~count:120 "opts: partitioned mapping is valid" (instance_gen ())
    print_instance (fun t ->
      Instance.is_valid t (Opts.partitioned (fun ?budget:_ sub _ -> CMC.run sub) t))

let prop_partitioned_no_worse =
  qtest ~count:120 "opts: partitioning never hurts the greedy result"
    (instance_gen ()) print_instance (fun t ->
      let direct = Instance.qual_card t (CMC.run t) in
      let parts =
        Instance.qual_card t (Opts.partitioned (fun ?budget:_ sub _ -> CMC.run sub) t)
      in
      (* Proposition 1: per-component optima union to the global optimum;
         for the greedy algorithm we only check it stays valid and sane —
         tiny slack for heuristic pick-order differences *)
      parts >= direct -. 0.51 && parts <= 1.0 +. 1e-9)

let prop_compressed_valid =
  qtest ~count:120 "opts: compression round-trips to valid mappings"
    (instance_gen ()) print_instance (fun t ->
      let plain = Opts.with_compression (fun sub -> CMC.run sub) t in
      let c = Opts.compress t in
      let inj =
        Opts.decompress ~injective:true c
          (CMC.run ~injective:true ~capacities:c.Opts.capacities c.Opts.sub)
      in
      Instance.is_valid t plain && Instance.is_valid ~injective:true t inj)

let prop_compression_preserves_decision =
  qtest ~count:80 "opts: compression preserves p-hom existence"
    (instance_gen ~max_n1:4 ~max_n2:6 ()) print_instance (fun t ->
      match Phom.Exact.decide t with
      | None -> true
      | Some yes -> (
          let c = Opts.compress t in
          match Phom.Exact.decide c.Opts.sub with
          | None -> true
          | Some yes' -> yes = yes'))

let suite =
  [
    ( "opts",
      [
        Alcotest.test_case "matchable nodes" `Quick test_matchable_nodes;
        Alcotest.test_case "partitioning (Fig 10a)" `Quick test_partitioned_fig10;
        Alcotest.test_case "singleton shortcut" `Quick
          test_partitioned_singleton_shortcut;
        Alcotest.test_case "compression with capacities" `Quick test_compress_basic;
        Alcotest.test_case "capacity binds under 1-1" `Quick test_capacity_binding;
        Alcotest.test_case "decompression respects ξ" `Quick
          test_decompress_drops_ineligible;
        prop_partitioned_valid;
        prop_partitioned_no_worse;
        prop_compressed_valid;
        prop_compression_preserves_decision;
      ] );
  ]
