open Helpers
module M = Phom_sim.Matops

let chain = lazy (graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2) ])

(* dense oracle: adjacency as a 0/1 matrix, textbook multiplication *)
let adjacency g =
  let n = D.n g in
  let a = Array.make_matrix n n 0. in
  D.iter_edges (fun u v -> a.(u).(v) <- 1.) g;
  a

let dense_mul a b =
  let n = Array.length a and m = Array.length b.(0) in
  let k = Array.length b in
  Array.init n (fun i ->
      Array.init m (fun j ->
          let acc = ref 0. in
          for l = 0 to k - 1 do
            acc := !acc +. (a.(i).(l) *. b.(l).(j))
          done;
          !acc))

let of_matrix rows =
  M.init ~rows:(Array.length rows) ~cols:(Array.length rows.(0)) (fun i j ->
      rows.(i).(j))

let matrices_equal a b eps =
  let ok = ref (a.M.rows = Array.length b) in
  for i = 0 to a.M.rows - 1 do
    for j = 0 to a.M.cols - 1 do
      if abs_float (M.get a i j -. b.(i).(j)) > eps then ok := false
    done
  done;
  !ok

let test_left_mul () =
  let g = Lazy.force chain in
  let x = of_matrix [| [| 1.; 0. |]; [| 0.; 2. |]; [| 3.; 0. |] |] in
  let xa = Array.init 3 (fun i -> Array.init 2 (M.get x i)) in
  Alcotest.(check bool) "A·x" true
    (matrices_equal (M.left_mul `A g x) (dense_mul (adjacency g) xa) 1e-9);
  let at =
    Array.init 3 (fun i -> Array.init 3 (fun j -> (adjacency g).(j).(i)))
  in
  Alcotest.(check bool) "Aᵀ·x" true
    (matrices_equal (M.left_mul `AT g x) (dense_mul at xa) 1e-9)

let test_right_mul () =
  let g = Lazy.force chain in
  let x = of_matrix [| [| 1.; 2.; 3. |]; [| 0.; 1.; 0. |] |] in
  let xa = Array.init 2 (fun i -> Array.init 3 (M.get x i)) in
  Alcotest.(check bool) "x·A" true
    (matrices_equal (M.right_mul x `A g) (dense_mul xa (adjacency g)) 1e-9)

let test_normalize () =
  let m = of_matrix [| [| 2.; 4. |] |] in
  let n = M.normalize_max m in
  Alcotest.(check (float 1e-9)) "max is 1" 1.0 (M.get n 0 1);
  let f = M.normalize_frobenius (of_matrix [| [| 3.; 4. |] |]) in
  Alcotest.(check (float 1e-9)) "frobenius" 0.8 (M.get f 0 1);
  (* zero matrices are untouched *)
  let z = M.normalize_max (M.zero ~rows:1 ~cols:1) in
  Alcotest.(check (float 1e-9)) "zero safe" 0.0 (M.get z 0 0)

let test_scale_rows_cols () =
  let m = M.scale_rows_cols ~row:[| 2.; 3. |] ~col:[| 10. |]
      (of_matrix [| [| 1. |]; [| 1. |] |])
  in
  Alcotest.(check (float 1e-9)) "(0,0)" 20. (M.get m 0 0);
  Alcotest.(check (float 1e-9)) "(1,0)" 30. (M.get m 1 0)

let test_dimension_checks () =
  Alcotest.check_raises "add" (Invalid_argument "Matops.entrywise: dimension mismatch")
    (fun () -> ignore (M.add (M.zero ~rows:1 ~cols:2) (M.zero ~rows:2 ~cols:1)));
  Alcotest.check_raises "left_mul"
    (Invalid_argument "Matops.left_mul: graph size mismatch") (fun () ->
      ignore (M.left_mul `A (Lazy.force chain) (M.zero ~rows:2 ~cols:2)))

let prop_left_mul_matches_oracle =
  qtest ~count:60 "matops: A·x = dense oracle" (digraph_gen ~max_n:6 ())
    print_digraph (fun g ->
      let n = D.n g in
      let x = M.init ~rows:n ~cols:3 (fun i j -> float_of_int ((i + (2 * j)) mod 5)) in
      let xa = Array.init n (fun i -> Array.init 3 (M.get x i)) in
      matrices_equal (M.left_mul `A g x) (dense_mul (adjacency g) xa) 1e-9)

let suite =
  [
    ( "matops",
      [
        Alcotest.test_case "left multiplication" `Quick test_left_mul;
        Alcotest.test_case "right multiplication" `Quick test_right_mul;
        Alcotest.test_case "normalization" `Quick test_normalize;
        Alcotest.test_case "row/col scaling" `Quick test_scale_rows_cols;
        Alcotest.test_case "dimension checks" `Quick test_dimension_checks;
        prop_left_mul_matches_oracle;
      ] );
  ]
