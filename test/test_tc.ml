open Helpers

let test_dag () =
  let g = graph [ "a"; "b"; "c"; "d" ] [ (0, 1); (1, 2) ] in
  let t = TC.compute g in
  Alcotest.(check bool) "0->2" true (BM.get t 0 2);
  Alcotest.(check bool) "no self" false (BM.get t 0 0);
  Alcotest.(check bool) "isolated" false (BM.get t 3 3);
  Alcotest.(check int) "count" 3 (BM.count t)

let test_cycle () =
  let g = graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2); (2, 0) ] in
  let t = TC.compute g in
  Alcotest.(check int) "full" 9 (BM.count t);
  Alcotest.(check bool) "self via cycle" true (BM.get t 1 1)

let test_self_loop () =
  let g = graph [ "a"; "b" ] [ (0, 0); (0, 1) ] in
  let t = TC.compute g in
  Alcotest.(check bool) "self loop" true (BM.get t 0 0);
  Alcotest.(check bool) "1 no self" false (BM.get t 1 1)

let test_graph_form () =
  let g = graph [ "a"; "b"; "c" ] [ (0, 1); (1, 2) ] in
  let plus = TC.graph g in
  Alcotest.(check int) "edges" 3 (D.nb_edges plus);
  Alcotest.(check bool) "0->2 edge" true (D.has_edge plus 0 2);
  Alcotest.(check string) "labels kept" "b" (D.label plus 1)

let prop_matches_naive =
  qtest ~count:80 "tc: condensation sweep = per-node BFS" (digraph_gen ~max_n:12 ())
    print_digraph (fun g -> BM.equal (TC.compute g) (TC.naive g))

let prop_idempotent =
  qtest ~count:50 "tc: closure of closure = closure (modulo new cycles)"
    (dag_gen ~max_n:9 ()) print_digraph (fun g ->
      (* on DAGs the closure graph is transitively closed already *)
      let plus = TC.graph g in
      BM.equal (TC.compute plus) (TC.compute g))

let prop_transitive =
  qtest ~count:60 "tc: relation is transitive" (digraph_gen ~max_n:10 ())
    print_digraph (fun g ->
      let t = TC.compute g in
      let n = D.n g in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          for c = 0 to n - 1 do
            if BM.get t a b && BM.get t b c && not (BM.get t a c) then ok := false
          done
        done
      done;
      !ok)

let prop_contains_edges =
  qtest ~count:60 "tc: contains every edge" (digraph_gen ()) print_digraph
    (fun g ->
      let t = TC.compute g in
      D.fold_edges (fun u v acc -> acc && BM.get t u v) g true)

let suite =
  [
    ( "transitive_closure",
      [
        Alcotest.test_case "simple DAG" `Quick test_dag;
        Alcotest.test_case "cycle closes fully" `Quick test_cycle;
        Alcotest.test_case "self loops" `Quick test_self_loop;
        Alcotest.test_case "closure as a digraph" `Quick test_graph_form;
        prop_matches_naive;
        prop_idempotent;
        prop_transitive;
        prop_contains_edges;
      ] );
  ]
