open Helpers

let test_validation () =
  let g1 = graph [ "a" ] [] and g2 = graph [ "a"; "b" ] [] in
  let bad_mat = Simmat.create ~n1:2 ~n2:2 in
  Alcotest.check_raises "mat dims"
    (Invalid_argument "Instance.make: mat dimensions do not match the graphs")
    (fun () -> ignore (Instance.make ~g1 ~g2 ~mat:bad_mat ~xi:0.5 ()));
  let mat = Simmat.of_label_equality g1 g2 in
  Alcotest.check_raises "xi range"
    (Invalid_argument "Instance.make: xi outside [0,1]") (fun () ->
      ignore (Instance.make ~g1 ~g2 ~mat ~xi:1.5 ()));
  let bad_tc = BM.create ~rows:3 ~cols:3 in
  Alcotest.check_raises "tc dims"
    (Invalid_argument "Instance.make: tc2 dimensions do not match g2") (fun () ->
      ignore (Instance.make ~tc2:bad_tc ~g1 ~g2 ~mat ~xi:0.5 ()))

let test_candidates_filter_self_loops () =
  let g1 = graph [ "a"; "a" ] [ (0, 0) ] in
  (* g2: one 'a' on a cycle, one plain 'a' *)
  let g2 = graph [ "a"; "a"; "x" ] [ (0, 2); (2, 0) ] in
  let t = eq_instance g1 g2 in
  let c = Instance.candidates t in
  Alcotest.(check (array int)) "loop node: only cyclic target" [| 0 |] c.(0);
  Alcotest.(check (array int)) "plain node: both" [| 0; 1 |] c.(1)

let test_candidates_sorted_by_similarity () =
  let g1 = graph [ "a" ] [] and g2 = graph [ "x"; "y"; "z" ] [] in
  let mat = Simmat.create ~n1:1 ~n2:3 in
  Simmat.set mat 0 0 0.8;
  Simmat.set mat 0 1 0.9;
  Simmat.set mat 0 2 0.85;
  let t = Instance.make ~g1 ~g2 ~mat ~xi:0.7 () in
  Alcotest.(check (array int)) "descending" [| 1; 2; 0 |]
    (Instance.candidates t).(0)

let test_choose_best () =
  let g1 = graph [ "a" ] [] and g2 = graph [ "x"; "y" ] [] in
  let mat = Simmat.create ~n1:1 ~n2:2 in
  Simmat.set mat 0 0 0.6;
  Simmat.set mat 0 1 0.9;
  let t = Instance.make ~g1 ~g2 ~mat ~xi:0.5 () in
  let goods = Phom.Matching_list.Int_set.of_list [ 0; 1 ] in
  Alcotest.(check int) "max similarity" 1 (Instance.choose_best t 0 goods);
  Alcotest.check_raises "empty set"
    (Invalid_argument "Instance.choose_best: empty candidate set") (fun () ->
      ignore (Instance.choose_best t 0 Phom.Matching_list.Int_set.empty))

let test_custom_tc2_changes_semantics () =
  let g1 = graph [ "a"; "b" ] [ (0, 1) ] in
  let g2 = graph [ "a"; "x"; "b" ] [ (0, 1); (1, 2) ] in
  let mat = Simmat.of_label_equality g1 g2 in
  let bounded = Phom_graph.Bounded_closure.compute ~k:1 g2 in
  let t1 = Instance.make ~tc2:bounded ~g1 ~g2 ~mat ~xi:0.5 () in
  Alcotest.(check (option bool)) "edge-to-edge fails" (Some false)
    (Phom.Exact.decide t1);
  let t2 = Instance.make ~g1 ~g2 ~mat ~xi:0.5 () in
  Alcotest.(check (option bool)) "p-hom succeeds" (Some true) (Phom.Exact.decide t2)

let suite =
  [
    ( "instance",
      [
        Alcotest.test_case "construction validation" `Quick test_validation;
        Alcotest.test_case "self-loop candidate filter" `Quick
          test_candidates_filter_self_loops;
        Alcotest.test_case "candidates sorted by similarity" `Quick
          test_candidates_sorted_by_similarity;
        Alcotest.test_case "choose_best" `Quick test_choose_best;
        Alcotest.test_case "custom closure changes semantics" `Quick
          test_custom_tc2_changes_semantics;
      ] );
  ]
